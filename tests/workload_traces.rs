//! Trace round-trips through the simulator: a recorded workload replays
//! to bit-identical results, and external traces drive the fabric.

use sirius::core::units::Rate;
use sirius::core::SiriusConfig;
use sirius::sim::{SiriusSim, SiriusSimConfig};
use sirius::workload::{trace, Pareto, Pattern, WorkloadSpec};

fn net() -> SiriusConfig {
    let mut c = SiriusConfig::scaled(16, 4);
    c.servers_per_node = 2;
    c.server_rate = Rate::from_gbps(100);
    c
}

#[test]
fn recorded_trace_replays_identically() {
    let wl = WorkloadSpec {
        servers: 32,
        server_rate: Rate::from_gbps(100),
        load: 0.3,
        sizes: Pareto::paper_default().truncated(1e6),
        flows: 400,
        pattern: Pattern::Uniform,
        seed: 5,
    }
    .generate();

    let replayed = trace::from_csv(&trace::to_csv(&wl)).unwrap();
    assert_eq!(wl, replayed);

    let a = SiriusSim::new(SiriusSimConfig::new(net()).with_seed(2)).run(&wl);
    let b = SiriusSim::new(SiriusSimConfig::new(net()).with_seed(2)).run(&replayed);
    assert_eq!(a.delivered_bytes, b.delivered_bytes);
    let fa: Vec<_> = a.flows.iter().map(|f| f.completion).collect();
    let fb: Vec<_> = b.flows.iter().map(|f| f.completion).collect();
    assert_eq!(fa, fb, "trace replay must be bit-identical");
}

#[test]
fn hand_written_trace_drives_the_fabric() {
    let text = "\
id,src_server,dst_server,bytes,arrival_ps
0,0,9,5000,0
1,4,21,540,1000
2,9,0,123456,2000
";
    let wl = trace::from_csv(text).unwrap();
    let m = SiriusSim::new(SiriusSimConfig::new(net())).run(&wl);
    assert_eq!(m.incomplete_flows, 0);
    assert_eq!(m.delivered_bytes, 5000 + 540 + 123456);
}
