//! Cross-crate consistency: the logical cyclic schedule (`sirius-core`)
//! and the physical layer (`sirius-optics` AWGRs wired per the topology)
//! must agree — light launched on the scheduled wavelength must land on
//! the scheduled destination, with no output-port contention anywhere in
//! the core.

use sirius_core::schedule::{Schedule, SlotInEpoch};
use sirius_core::topology::{NodeId, Topology, UplinkId};
use sirius_core::SiriusConfig;
use sirius_optics::awgr::Awgr;

/// Trace one transmission through the physical model: node -> TX grating
/// input port -> AWGR wavelength routing -> RX node.
fn physical_dest(topo: &Topology, i: NodeId, u: UplinkId, slot: u16) -> NodeId {
    let grating = Awgr::new(topo.grating_ports() as u16);
    let g = topo.tx_grating(i, u);
    let input = topo.port_of(i) as u16;
    // The network-wide wavelength at slot t is t (laser sharing, §4.5).
    let output = grating.route(input, slot);
    topo.rx_node(g, output as u32)
}

#[test]
fn awgr_routing_realizes_the_schedule_exactly() {
    for cfg in [
        SiriusConfig::four_node_prototype(),
        SiriusConfig::scaled(32, 8),
        SiriusConfig::paper_sim(),
    ] {
        let topo = Topology::new(&cfg);
        let sched = Schedule::new(&cfg);
        for u in 0..topo.uplinks() as u16 {
            for t in 0..cfg.grating_ports as u16 {
                for i in 0..cfg.nodes as u32 {
                    let logical = sched.dest(NodeId(i), UplinkId(u), SlotInEpoch(t));
                    let physical = physical_dest(&topo, NodeId(i), UplinkId(u), t);
                    assert_eq!(
                        logical, physical,
                        "node {i} uplink {u} slot {t}: schedule says {logical}, optics deliver to {physical}"
                    );
                }
            }
        }
    }
}

#[test]
fn no_grating_output_contention_at_any_slot() {
    let cfg = SiriusConfig::paper_sim();
    let topo = Topology::new(&cfg);
    let grating = Awgr::new(cfg.grating_ports as u16);
    for t in 0..cfg.grating_ports as u16 {
        for g in topo.gratings() {
            let mut outputs_used = vec![false; cfg.grating_ports];
            // Every input of this grating carries the same wavelength t.
            for p in 0..cfg.grating_ports as u16 {
                let q = grating.route(p, t) as usize;
                assert!(
                    !outputs_used[q],
                    "grating {g:?}: two inputs collide on output {q} at slot {t}"
                );
                outputs_used[q] = true;
            }
        }
    }
}

#[test]
fn one_wavelength_per_slot_enables_laser_sharing() {
    // §4.5: "laser sharing is made possible by Sirius' use of load
    // balanced routing as it allows all transceivers on a node to use the
    // same wavelength at any timeslot". Verify the schedule only ever
    // needs wavelength == slot on every uplink.
    let cfg = SiriusConfig::paper_sim();
    let topo = Topology::new(&cfg);
    let sched = Schedule::new(&cfg);
    let grating = Awgr::new(cfg.grating_ports as u16);
    for i in (0..cfg.nodes as u32).step_by(17) {
        for t in 0..cfg.grating_ports as u16 {
            for u in 0..topo.uplinks() as u16 {
                let dst = sched.dest(NodeId(i), UplinkId(u), SlotInEpoch(t));
                // Which wavelength would physically reach dst from here?
                let g = topo.tx_grating(NodeId(i), UplinkId(u));
                let input = topo.port_of(NodeId(i)) as u16;
                // Find dst's port on this grating.
                let q = (0..cfg.grating_ports as u32)
                    .find(|&q| topo.rx_node(g, q) == dst)
                    .expect("dst not on this grating");
                let needed = grating.wavelength_for(input, q as u16);
                assert_eq!(
                    needed,
                    sched.wavelength(SlotInEpoch(t)).0,
                    "uplink {u} of node {i} would need a different wavelength at slot {t}"
                );
            }
        }
    }
}

#[test]
fn grating_count_and_size_match_deployment_arithmetic() {
    // §4.1: "A large datacenter with 4,096 racks could thus be connected
    // through just 16-port gratings" — with 256 uplinks and 16-port
    // gratings, groups = 4096/16 = 256 = uplinks.
    let mut cfg = SiriusConfig::paper_sim();
    cfg.nodes = 4096;
    cfg.grating_ports = 16;
    cfg.base_uplinks = 256;
    cfg.uplink_factor = 1.0;
    cfg.validate().unwrap();
    let topo = Topology::new(&cfg);
    assert_eq!(topo.uplinks(), 256);
    assert_eq!(topo.grating_count(), 256 * 256);
    // And the rack-based maximum: 100-port gratings x 256 uplinks.
    let mut big = cfg.clone();
    big.nodes = 25_600;
    big.grating_ports = 100;
    big.base_uplinks = 256;
    big.validate().unwrap();
    assert_eq!(Topology::new(&big).nodes(), 25_600);
}
