//! Protocol-level integration: the request/grant machinery observed from
//! outside through the simulator's aggregate counters.

use sirius::core::units::{Rate, Time};
use sirius::core::SiriusConfig;
use sirius::sim::{CcMode, SiriusSim, SiriusSimConfig};
use sirius::workload::{Flow, Pareto, Pattern, WorkloadSpec};

fn net() -> SiriusConfig {
    let mut c = SiriusConfig::scaled(16, 4);
    c.servers_per_node = 2;
    c.server_rate = Rate::from_gbps(100);
    c
}

fn workload(load: f64, flows: u64, seed: u64) -> Vec<Flow> {
    WorkloadSpec {
        servers: 32,
        server_rate: Rate::from_gbps(100),
        load,
        sizes: Pareto::paper_default().truncated(1e6),
        flows,
        pattern: Pattern::Uniform,
        seed,
    }
    .generate()
}

#[test]
fn every_relayed_cell_was_granted() {
    // Conservation: cells move only against grants. Grants received =
    // grants issued (control is lossless); every granted-and-used grant
    // becomes exactly one relay arrival; nothing arrives untracked.
    let wl = workload(0.5, 1000, 1);
    let m = SiriusSim::new(SiriusSimConfig::new(net())).run(&wl);
    let cc = m.cc;
    assert_eq!(cc.grants_received, cc.grants_issued);
    assert_eq!(cc.requests_received, cc.requests_sent);
    assert_eq!(cc.untracked_arrivals, 0, "arrival without grant");
    assert_eq!(cc.bound_exceeded, 0, "Q bound violated");
    // used grants = issued - declined - expired-in-vain; every used grant
    // carries one cell, and every non-intra-rack cell is granted exactly
    // once, so grants used >= total cells relayed.
    let used = cc.grants_issued - cc.grants_declined - cc.grants_expired;
    assert!(used > 0);
}

#[test]
fn protocol_is_lossless_under_pressure() {
    let wl = workload(1.0, 2000, 2);
    let mut cfg = SiriusSimConfig::new(net());
    cfg.drain_timeout = sirius::core::Duration::from_ms(3);
    let m = SiriusSim::new(cfg).run(&wl);
    assert_eq!(m.cc.untracked_arrivals, 0);
    assert_eq!(m.cc.bound_exceeded, 0);
    assert_eq!(m.cc.grants_expired, 0, "no grants lost without failures");
}

#[test]
fn denials_appear_only_under_contention() {
    // A single tiny flow cannot be denied: there is no competing request.
    let wl = vec![Flow {
        id: 0,
        src_server: 0,
        dst_server: 9,
        bytes: 400,
        arrival: Time::ZERO,
    }];
    let m = SiriusSim::new(SiriusSimConfig::new(net())).run(&wl);
    assert_eq!(m.cc.requests_denied, 0);
    assert_eq!(m.cc.grants_issued, 1);
    // Re-requests may fire before the grant lands, so several requests
    // can be sent for one cell; the surplus is declined, never denied.
    assert!(m.cc.requests_sent >= 1);

    // At saturation, denials are the normal shedding mechanism.
    let wl = workload(1.0, 1500, 3);
    let mut cfg = SiriusSimConfig::new(net());
    cfg.drain_timeout = sirius::core::Duration::from_us(500);
    let m = SiriusSim::new(cfg).run(&wl);
    assert!(m.cc.requests_denied > 0);
}

#[test]
fn greedy_mode_floods_queues_where_protocol_does_not() {
    let wl = workload(0.75, 2500, 4);
    let mut cfg = SiriusSimConfig::new(net());
    cfg.drain_timeout = sirius::core::Duration::from_ms(1);
    let proto = SiriusSim::new(cfg.clone()).run(&wl);
    let greedy = SiriusSim::new(cfg.with_mode(CcMode::Greedy)).run(&wl);
    assert!(
        greedy.peak_node_fabric_cells > 2 * proto.peak_node_fabric_cells,
        "greedy {} vs protocol {}",
        greedy.peak_node_fabric_cells,
        proto.peak_node_fabric_cells
    );
    // And the greedy run keeps no CC state at all.
    assert_eq!(greedy.cc.grants_issued, 0);
}

#[test]
fn queue_threshold_caps_relay_occupancy_exactly() {
    // With Q = 2, no relay queue may ever hold more than 2 cells; the
    // stats would flag any excess.
    let mut n = net();
    n.queue_threshold = 2;
    let wl = workload(0.9, 2000, 5);
    let mut cfg = SiriusSimConfig::new(n);
    cfg.drain_timeout = sirius::core::Duration::from_ms(1);
    let m = SiriusSim::new(cfg).run(&wl);
    assert_eq!(m.cc.bound_exceeded, 0, "relay queue exceeded Q=2");
}
