//! End-to-end integration: workload generation -> Sirius simulation ->
//! metrics, across crates.

use sirius::core::units::{Duration, Rate, Time};
use sirius::core::SiriusConfig;
use sirius::sim::{CcMode, SiriusSim, SiriusSimConfig};
use sirius::workload::{Flow, Pareto, Pattern, WorkloadSpec};

fn net() -> SiriusConfig {
    let mut c = SiriusConfig::scaled(16, 4);
    c.servers_per_node = 2;
    c.server_rate = Rate::from_gbps(100);
    c
}

fn workload(load: f64, flows: u64, seed: u64) -> Vec<Flow> {
    WorkloadSpec {
        servers: 32,
        server_rate: Rate::from_gbps(100),
        load,
        sizes: Pareto::paper_default().truncated(1e6),
        flows,
        pattern: Pattern::Uniform,
        seed,
    }
    .generate()
}

#[test]
fn every_byte_is_delivered_exactly_once_in_order() {
    let wl = workload(0.3, 800, 1);
    let m = SiriusSim::new(SiriusSimConfig::new(net())).run(&wl);
    assert_eq!(m.incomplete_flows, 0);
    assert_eq!(
        m.delivered_bytes,
        wl.iter().map(|f| f.bytes).sum::<u64>(),
        "byte conservation across the fabric"
    );
    // Every flow's completion is at or after its arrival.
    for (f, r) in wl.iter().zip(&m.flows) {
        assert!(r.completion.unwrap() > f.arrival);
        assert_eq!(r.bytes, f.bytes);
    }
}

#[test]
fn protocol_and_ideal_modes_agree_on_delivered_work() {
    let wl = workload(0.4, 600, 2);
    let total: u64 = wl.iter().map(|f| f.bytes).sum();
    for mode in [CcMode::Protocol, CcMode::Ideal] {
        let m = SiriusSim::new(SiriusSimConfig::new(net()).with_mode(mode)).run(&wl);
        assert_eq!(m.delivered_bytes, total, "{mode:?} lost bytes");
    }
}

#[test]
fn single_cell_flow_latency_is_a_few_epochs() {
    // The §4.3 trade-off: "this will introduce an initial epoch-length
    // worth of latency for each flow" — a one-cell flow completes within
    // a handful of epochs, never milliseconds.
    let n = net();
    let wl = vec![Flow {
        id: 0,
        src_server: 0,
        dst_server: 9, // different rack
        bytes: 100,
        arrival: Time::ZERO,
    }];
    let m = SiriusSim::new(SiriusSimConfig::new(n.clone())).run(&wl);
    let fct = m.flows[0].fct().unwrap();
    assert!(
        fct >= n.epoch(),
        "cannot beat the request/grant pipeline: {fct}"
    );
    assert!(fct < n.epoch() * 10, "one cell took {fct}");
}

#[test]
fn ideal_mode_beats_protocol_latency_for_one_cell() {
    let n = net();
    let wl = vec![Flow {
        id: 0,
        src_server: 0,
        dst_server: 9,
        bytes: 100,
        arrival: Time::ZERO,
    }];
    let p = SiriusSim::new(SiriusSimConfig::new(n.clone())).run(&wl);
    let i = SiriusSim::new(SiriusSimConfig::new(n).with_mode(CcMode::Ideal)).run(&wl);
    assert!(
        i.flows[0].fct().unwrap() < p.flows[0].fct().unwrap(),
        "ideal {} !< protocol {}",
        i.flows[0].fct().unwrap(),
        p.flows[0].fct().unwrap()
    );
}

#[test]
fn reorder_buffer_stays_small_at_moderate_load() {
    // §4.2: "due to the low queuing ensured by the congestion control,
    // only a small reordering buffer is sufficient". At this 16-node
    // scale the per-pair slot budget is tight (see baselines.rs), so we
    // assert at a comfortable load; the paper-scale number (163 KB/flow)
    // is reproduced by the fig10 harness.
    let wl = workload(0.3, 1500, 3);
    let m = SiriusSim::new(SiriusSimConfig::new(net())).run(&wl);
    assert!(
        m.peak_reorder_flow_bytes < 400_000,
        "reorder buffer blew up: {} B (paper: 163 KB at paper scale)",
        m.peak_reorder_flow_bytes
    );
}

#[test]
fn overload_is_graceful_not_fatal() {
    // At 1.3x offered load the fabric cannot drain, but the run must
    // terminate at the drain timeout with partial delivery, not hang or
    // panic.
    let wl = workload(1.3, 1200, 4);
    let mut cfg = SiriusSimConfig::new(net());
    cfg.drain_timeout = Duration::from_ms(1);
    let m = SiriusSim::new(cfg).run(&wl);
    assert!(m.delivered_bytes > 0);
    assert!(m.completed_flows() > 0);
}

#[test]
fn results_identical_across_repeated_runs() {
    let wl = workload(0.6, 700, 5);
    let run = || {
        let m = SiriusSim::new(SiriusSimConfig::new(net()).with_seed(9)).run(&wl);
        (
            m.delivered_bytes,
            m.peak_node_fabric_cells,
            m.peak_reorder_flow_bytes,
            m.flows.iter().map(|f| f.completion).collect::<Vec<_>>(),
        )
    };
    assert_eq!(run(), run(), "simulation must be deterministic");
}

#[test]
fn permutation_and_incast_patterns_complete() {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    let mut rng = SmallRng::seed_from_u64(6);
    for pattern in [
        Pattern::random_permutation(&mut rng, 32),
        Pattern::Incast {
            targets: vec![4, 9],
        },
    ] {
        let wl = WorkloadSpec {
            servers: 32,
            server_rate: Rate::from_gbps(100),
            load: 0.2,
            sizes: Pareto::paper_default().truncated(1e5),
            flows: 300,
            pattern,
            seed: 7,
        }
        .generate();
        let m = SiriusSim::new(SiriusSimConfig::new(net())).run(&wl);
        assert_eq!(m.incomplete_flows, 0);
    }
}
