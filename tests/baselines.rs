//! Sirius against the electrical baselines: the qualitative claims of §7
//! must hold at reduced scale — who wins, and roughly by how much.

use sirius::core::units::Rate;
use sirius::core::SiriusConfig;
use sirius::sim::{CcMode, EsnConfig, EsnSim, SiriusSim, SiriusSimConfig};
use sirius::workload::{Flow, Pareto, Pattern, WorkloadSpec};
use sirius_core::units::Duration;

fn net() -> SiriusConfig {
    let mut c = SiriusConfig::scaled(16, 4);
    c.servers_per_node = 2;
    c.server_rate = Rate::from_gbps(100);
    c
}

fn esn(osub: f64) -> EsnConfig {
    EsnConfig {
        servers: 32,
        server_rate: Rate::from_gbps(100),
        servers_per_rack: 2,
        oversubscription: osub,
        base_latency: Duration::from_us(3),
    }
}

fn workload(load: f64, flows: u64, seed: u64) -> Vec<Flow> {
    WorkloadSpec {
        servers: 32,
        server_rate: Rate::from_gbps(100),
        load,
        sizes: Pareto::paper_default().truncated(1e6),
        flows,
        pattern: Pattern::Uniform,
        seed,
    }
    .generate()
}

#[test]
fn sirius_tracks_esn_goodput_at_moderate_load() {
    // Fig. 9b: "closely matching the performance achieved by ESN (Ideal)".
    // At this reduced scale (16 nodes) the protocol quantum — one grant
    // per (intermediate, destination) per epoch — caps per-destination
    // service at (N-1) cells/epoch, which is only ~1.6x the offered
    // per-node rate here (at the paper's N = 128 the headroom is much
    // larger and the curves overlap). Assert the reduced-scale bound; the
    // paper-scale comparison lives in the fig9 harness / EXPERIMENTS.md.
    let wl = workload(0.5, 2500, 1);
    let s = SiriusSim::new(SiriusSimConfig::new(net())).run(&wl);
    let e = EsnSim::new(esn(1.0)).run(&wl);
    let gs = s.normalized_goodput(32, Rate::from_gbps(100));
    let ge = e.normalized_goodput(32, Rate::from_gbps(100));
    assert!(
        gs > 0.6 * ge,
        "Sirius goodput {gs:.3} far below ESN {ge:.3} at 50% load"
    );
}

#[test]
fn oversubscribed_esn_collapses_under_inter_rack_load() {
    // Fig. 9: "SIRIUS significantly outperforms ESN-OSUB (Ideal) ...
    // goodput (increased by up to a factor of 6.7)". At reduced scale the
    // factor is smaller but the ordering is robust.
    let wl = workload(0.9, 2500, 2);
    let s = SiriusSim::new(SiriusSimConfig::new(net())).run(&wl);
    let o = EsnSim::new(esn(3.0)).run(&wl);
    let gs = s.normalized_goodput(32, Rate::from_gbps(100));
    let go = o.normalized_goodput(32, Rate::from_gbps(100));
    assert!(
        gs > 1.2 * go,
        "Sirius {gs:.3} should clearly beat OSUB {go:.3} at high load"
    );
}

#[test]
fn esn_fct_is_a_lower_bound_at_low_load() {
    // The fluid ESN has no cell padding, no epoch pipeline: at low load
    // its short-flow tail must not exceed Sirius'.
    let wl = workload(0.1, 2000, 3);
    let s = SiriusSim::new(SiriusSimConfig::new(net())).run(&wl);
    let e = EsnSim::new(esn(1.0)).run(&wl);
    let fs = s.fct_percentile(99.0, 100_000).unwrap();
    let fe = e.fct_percentile(99.0, 100_000).unwrap();
    assert!(
        fe <= fs,
        "idealized ESN p99 {fe} should lower-bound Sirius {fs} at low load"
    );
}

#[test]
fn queue_threshold_trade_off_matches_fig10() {
    // Q = 2 struggles to absorb bursts (lower goodput at high load);
    // Q = 16 queues more (higher occupancy). Q = 4 is the paper's pick.
    let wl = workload(0.9, 3000, 4);
    let run_q = |q: usize| {
        let mut n = net();
        n.queue_threshold = q;
        SiriusSim::new(SiriusSimConfig::new(n)).run(&wl)
    };
    let m2 = run_q(2);
    let m16 = run_q(16);
    let g2 = m2.normalized_goodput(32, Rate::from_gbps(100));
    let g16 = m16.normalized_goodput(32, Rate::from_gbps(100));
    assert!(
        g16 >= g2 * 0.98,
        "larger Q should not lose goodput: Q2 {g2:.3} vs Q16 {g16:.3}"
    );
    assert!(
        m16.peak_node_fabric_cells >= m2.peak_node_fabric_cells,
        "Q16 occupancy {} < Q2 {}",
        m16.peak_node_fabric_cells,
        m2.peak_node_fabric_cells
    );
}

#[test]
fn ideal_sirius_upper_bounds_protocol_goodput() {
    let wl = workload(1.0, 2500, 5);
    let mut cfg = SiriusSimConfig::new(net());
    cfg.drain_timeout = Duration::from_ms(1);
    let p = SiriusSim::new(cfg.clone()).run(&wl);
    let i = SiriusSim::new(cfg.with_mode(CcMode::Ideal)).run(&wl);
    let gp = p.normalized_goodput(32, Rate::from_gbps(100));
    let gi = i.normalized_goodput(32, Rate::from_gbps(100));
    assert!(
        gi >= gp * 0.95,
        "ideal goodput {gi:.3} should not trail protocol {gp:.3}"
    );
}
