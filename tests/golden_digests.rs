//! Golden run digests for the `paper_sim` configuration (ROADMAP item):
//! the order-sensitive delivered-cell digest of one reference run per
//! congestion-control mode, checked into `tests/golden/paper_sim.digests`.
//!
//! Any behavior-preserving refactor of the simulator can now be *proved*
//! behavior-preserving: if the digests match, the refactored simulator
//! delivered the identical cell sequence and ended in the identical
//! aggregate state. A digest change is not necessarily a bug — but it is
//! always a behavior change, and must be a conscious one.
//!
//! To regenerate after an intentional behavior change:
//!
//! ```sh
//! GOLDEN_BLESS=1 cargo test --test golden_digests
//! ```
//!
//! and commit the updated `tests/golden/paper_sim.digests` together with
//! the change that caused it.

use sirius::core::SiriusConfig;
use sirius::sim::{CcMode, SiriusSim, SiriusSimConfig};
use sirius::workload::{Flow, Pareto, Pattern, WorkloadSpec};
use std::path::PathBuf;

const SEED: u64 = 17;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("paper_sim.digests")
}

fn reference_workload(net: &SiriusConfig) -> Vec<Flow> {
    WorkloadSpec {
        servers: net.total_servers() as u32,
        server_rate: net.server_rate,
        load: 0.3,
        sizes: Pareto::paper_default().truncated(1e5),
        flows: 300,
        pattern: Pattern::Uniform,
        seed: SEED,
    }
    .generate()
}

fn mode_name(mode: CcMode) -> &'static str {
    match mode {
        CcMode::Protocol => "protocol",
        CcMode::Ideal => "ideal",
        CcMode::Greedy => "greedy",
    }
}

/// The exact command that refreshes the golden file; printed verbatim in
/// every mismatch message so the fix is copy-pasteable.
const BLESS_CMD: &str = "GOLDEN_BLESS=1 cargo test --test golden_digests";

/// Pure comparison of measured digests against golden-file contents.
/// Errors carry both digests and the regeneration command, so the
/// failure output alone is enough to diagnose and (if the behavior
/// change was intentional) repair the mismatch.
fn verify_against_golden(golden: &str, measured: &[(CcMode, u64)]) -> Result<(), String> {
    for &(mode, digest) in measured {
        let name = mode_name(mode);
        let want = golden
            .lines()
            .find_map(|l| l.strip_prefix(&format!("{name} ")))
            .ok_or_else(|| format!("no golden entry for mode {name}; regenerate: {BLESS_CMD}"))?;
        let want = u64::from_str_radix(want.trim(), 16)
            .map_err(|e| format!("malformed golden digest for mode {name} ({e}): {want:?}"))?;
        if digest != want {
            return Err(format!(
                "{name}: run digest {digest:016x} != golden {want:016x} — the simulator's \
                 behavior changed; if intentional, regenerate with: {BLESS_CMD}"
            ));
        }
    }
    Ok(())
}

#[test]
fn paper_sim_digests_match_golden_file() {
    let net = SiriusConfig::paper_sim();
    let wl = reference_workload(&net);
    let mut lines = String::new();
    let mut measured = Vec::new();
    for mode in [CcMode::Protocol, CcMode::Ideal, CcMode::Greedy] {
        let m = SiriusSim::new(
            SiriusSimConfig::new(net.clone())
                .with_mode(mode)
                .with_seed(SEED),
        )
        .run(&wl);
        lines.push_str(&format!("{} {:016x}\n", mode_name(mode), m.digest));
        measured.push((mode, m.digest));
    }

    let path = golden_path();
    if std::env::var_os("GOLDEN_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &lines).unwrap();
        eprintln!("blessed {} with:\n{lines}", path.display());
        return;
    }

    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run: {BLESS_CMD}",
            path.display()
        )
    });
    if let Err(msg) = verify_against_golden(&golden, &measured) {
        panic!("{}: {msg}", path.display());
    }
}

/// A digest drift must fail loudly with both digests and the exact
/// bless command — never silently pass or produce an opaque error.
#[test]
fn mutated_golden_digest_fails_with_actionable_message() {
    let measured = [(CcMode::Protocol, 0x1234_5678_9abc_def0u64)];
    let golden = "protocol 123456789abcdef0\n";
    assert_eq!(verify_against_golden(golden, &measured), Ok(()));

    let mutated = "protocol 0000000000000bad\n";
    let msg = verify_against_golden(mutated, &measured).unwrap_err();
    assert!(
        msg.contains("123456789abcdef0"),
        "actual digest missing: {msg}"
    );
    assert!(
        msg.contains("0000000000000bad"),
        "expected digest missing: {msg}"
    );
    assert!(msg.contains(BLESS_CMD), "bless command missing: {msg}");

    let missing = verify_against_golden("ideal 0\n", &measured).unwrap_err();
    assert!(missing.contains("protocol") && missing.contains(BLESS_CMD));
}
