//! Golden run digests for the `paper_sim` configuration (ROADMAP item):
//! the order-sensitive delivered-cell digest of one reference run per
//! congestion-control mode, checked into `tests/golden/paper_sim.digests`.
//!
//! Any behavior-preserving refactor of the simulator can now be *proved*
//! behavior-preserving: if the digests match, the refactored simulator
//! delivered the identical cell sequence and ended in the identical
//! aggregate state. A digest change is not necessarily a bug — but it is
//! always a behavior change, and must be a conscious one.
//!
//! To regenerate after an intentional behavior change:
//!
//! ```sh
//! GOLDEN_BLESS=1 cargo test --test golden_digests
//! ```
//!
//! and commit the updated `tests/golden/paper_sim.digests` together with
//! the change that caused it.

use sirius::core::SiriusConfig;
use sirius::sim::{CcMode, SiriusSim, SiriusSimConfig};
use sirius::workload::{Flow, Pareto, Pattern, WorkloadSpec};
use std::path::PathBuf;

const SEED: u64 = 17;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("paper_sim.digests")
}

fn reference_workload(net: &SiriusConfig) -> Vec<Flow> {
    WorkloadSpec {
        servers: net.total_servers() as u32,
        server_rate: net.server_rate,
        load: 0.3,
        sizes: Pareto::paper_default().truncated(1e5),
        flows: 300,
        pattern: Pattern::Uniform,
        seed: SEED,
    }
    .generate()
}

fn mode_name(mode: CcMode) -> &'static str {
    match mode {
        CcMode::Protocol => "protocol",
        CcMode::Ideal => "ideal",
        CcMode::Greedy => "greedy",
    }
}

#[test]
fn paper_sim_digests_match_golden_file() {
    let net = SiriusConfig::paper_sim();
    let wl = reference_workload(&net);
    let mut lines = String::new();
    let mut measured = Vec::new();
    for mode in [CcMode::Protocol, CcMode::Ideal, CcMode::Greedy] {
        let m = SiriusSim::new(
            SiriusSimConfig::new(net.clone())
                .with_mode(mode)
                .with_seed(SEED),
        )
        .run(&wl);
        lines.push_str(&format!("{} {:016x}\n", mode_name(mode), m.digest));
        measured.push((mode, m.digest));
    }

    let path = golden_path();
    if std::env::var_os("GOLDEN_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &lines).unwrap();
        eprintln!("blessed {} with:\n{lines}", path.display());
        return;
    }

    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run GOLDEN_BLESS=1 cargo test --test golden_digests",
            path.display()
        )
    });
    for (mode, digest) in measured {
        let name = mode_name(mode);
        let want = golden
            .lines()
            .find_map(|l| l.strip_prefix(&format!("{name} ")))
            .unwrap_or_else(|| panic!("no golden entry for mode {name}"));
        let want = u64::from_str_radix(want.trim(), 16).expect("malformed golden digest");
        assert_eq!(
            digest, want,
            "{name}: run digest {digest:016x} != golden {want:016x} — the simulator's \
             behavior changed; if intentional, regenerate with GOLDEN_BLESS=1 \
             cargo test --test golden_digests"
        );
    }
}
