//! Cross-crate property tests: random small geometries and workloads
//! against the end-to-end invariants (byte conservation, losslessness,
//! schedule/AWGR agreement).

use proptest::prelude::*;
use sirius::core::units::Rate;
use sirius::core::SiriusConfig;
use sirius::sim::{CcMode, SiriusSim, SiriusSimConfig};
use sirius::workload::{Pareto, Pattern, WorkloadSpec};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any valid small geometry delivers every byte of a modest workload
    /// exactly once, in both congestion-control modes.
    #[test]
    fn bytes_conserved_on_random_geometries(
        groups in 2usize..5,
        g in 2usize..6,
        spn in 1usize..4,
        load in 0.05f64..0.4,
        seed in 0u64..50,
        ideal in proptest::bool::ANY,
    ) {
        let nodes = groups * g;
        let mut net = SiriusConfig::scaled(nodes, g);
        net.servers_per_node = spn;
        net.server_rate = Rate::from_gbps(200);
        prop_assume!(net.validate().is_ok());
        let wl = WorkloadSpec {
            servers: net.total_servers() as u32,
            server_rate: Rate::from_gbps(200),
            load,
            sizes: Pareto::paper_default().truncated(2e5),
            flows: 150,
            pattern: Pattern::Uniform,
            seed,
        }
        .generate();
        let mode = if ideal { CcMode::Ideal } else { CcMode::Protocol };
        let m = SiriusSim::new(SiriusSimConfig::new(net).with_mode(mode)).run(&wl);
        prop_assert_eq!(m.incomplete_flows, 0, "stuck flows at load {}", load);
        prop_assert_eq!(m.delivered_bytes, wl.iter().map(|f| f.bytes).sum::<u64>());
        prop_assert_eq!(m.cc.untracked_arrivals, 0);
        prop_assert_eq!(m.cc.bound_exceeded, 0);
    }
}
