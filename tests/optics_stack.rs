//! The optical substrate composed end to end: guardbands derived from the
//! transceiver models drive the network simulator; the pipelined laser
//! bank sustains the actual cyclic schedule; the link budget closes for
//! the deployed grating sizes.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use sirius::core::units::{Duration, Rate};
use sirius::core::SiriusConfig;
use sirius::optics::awgr::Awgr;
use sirius::optics::laser::{TunableLaserBank, TunableSource};
use sirius::optics::link_budget::LinkBudget;
use sirius::optics::transceiver::{v1, v2};
use sirius::sim::{SiriusSim, SiriusSimConfig};
use sirius::workload::{Pareto, Pattern, WorkloadSpec};

#[test]
fn v2_guardband_drives_a_working_network() {
    // Derive the guardband from the v2 transceiver model (3.84 ns), build
    // a network with 10x slots, and run traffic through it.
    let mut rng = SmallRng::seed_from_u64(1);
    let t = v2::transceiver(&mut rng);
    let guard = t.reconfiguration_time();
    assert_eq!(guard, Duration::from_ps(3_840));

    let mut net = SiriusConfig::scaled(16, 4);
    net.servers_per_node = 2;
    net.server_rate = Rate::from_gbps(100);
    net.guardband = guard;
    // Keep guardband ~10% of slot: shrink the cell to 9x the guardband.
    net.cell_bytes = net.channel_rate.bytes_in(guard * 9) as u32;
    net.payload_bytes = net.cell_bytes - 22;
    net.validate().unwrap();
    let overhead = net.guardband.as_ps() as f64 / net.slot().as_ps() as f64;
    assert!((overhead - 0.10).abs() < 0.02, "overhead {overhead}");

    let wl = WorkloadSpec {
        servers: 32,
        server_rate: Rate::from_gbps(100),
        load: 0.3,
        sizes: Pareto::paper_default().truncated(1e5),
        flows: 300,
        pattern: Pattern::Uniform,
        seed: 2,
    }
    .generate();
    let m = SiriusSim::new(SiriusSimConfig::new(net)).run(&wl);
    assert_eq!(m.incomplete_flows, 0, "v2-guardband network must deliver");
}

#[test]
fn v1_and_v2_match_the_paper_prototypes() {
    let mut rng = SmallRng::seed_from_u64(3);
    let t1 = v1::transceiver();
    let t2 = v2::transceiver(&mut rng);
    // v1: 100 ns guardband budget; v2: 3.84 ns.
    assert!(t1.reconfiguration_time() <= Duration::from_ns(100));
    assert!(t1.reconfiguration_time() > Duration::from_ns(90));
    assert_eq!(t2.reconfiguration_time(), Duration::from_ns_f64(3.84));
}

#[test]
fn pipelined_bank_sustains_the_real_schedule() {
    // §4.5: a bank of two tunable lasers (plus a spare) hides the 92 ns
    // worst-case tune behind 100 ns slots — verified against the actual
    // wavelength sequence of the cyclic schedule.
    let net = SiriusConfig::paper_sim();
    let bank = TunableLaserBank::paper_bank();
    assert!(bank.sustains(net.slot()));
    // The schedule's wavelength sequence is 0,1,2,...,G-1 repeating.
    let seq: Vec<usize> = (0..10_000).map(|k| k % net.grating_ports).collect();
    assert_eq!(
        bank.simulate_stalls(&seq, net.slot()),
        Duration::ZERO,
        "bank stalled on the cyclic schedule"
    );
}

#[test]
fn link_budget_closes_for_deployed_grating_sizes() {
    // The paper's budget assumes a 100-port (6 dB) grating; smaller
    // deployments only have more headroom.
    let base = LinkBudget::paper();
    for ports in [16u16, 32, 64, 100] {
        let mut b = base;
        b.grating_loss_db = Awgr::new(ports).insertion_loss_db();
        assert!(b.closes(), "budget fails at {ports}-port gratings");
        assert!(
            b.max_shared_transceivers() >= 8,
            "sharing degrades at {ports} ports"
        );
    }
    // 512-port gratings (research prototypes) need more laser power.
    let mut b = base;
    b.grating_loss_db = Awgr::new(512).insertion_loss_db();
    assert!(b.max_shared_transceivers() < 8);
}

#[test]
fn chip_tuning_beats_every_slot_budget() {
    // The fabricated chip must retune inside even a 38 ns slot's
    // guardband; the DSDBR cannot.
    let mut rng = SmallRng::seed_from_u64(4);
    let chip = sirius::optics::laser::FixedLaserBank::paper_chip(&mut rng);
    let dsdbr = sirius::optics::laser::DsdbrLaser::paper_prototype();
    let slot38_guard = Duration::from_ps(3_840);
    assert!(chip.worst_tuning_latency() < slot38_guard);
    assert!(dsdbr.worst_tuning_latency() > slot38_guard);
}
