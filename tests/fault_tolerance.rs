//! Fault-tolerance integration suite (§4.5): the quantitative robustness
//! claims of the paper, measured end-to-end through the emergent
//! detection pipeline.
//!
//! * Detection latency: silence on scheduled slots is noticed within
//!   `silence_threshold + 1` epochs — "a few microseconds" at the paper's
//!   1.6 us epoch.
//! * Graceful degradation: with `k` of `N` nodes down, post-failure
//!   goodput tracks `AdjustedSchedule::capacity_factor = 1 - k/N` within
//!   5% (measured for k = 1, 4, 16 of 32).
//! * Grey failures are localized to the degraded TX column, and every
//!   lost cell is attributed to a declared fault window.
//! * Fault scripts perturb nothing they shouldn't: double runs stay
//!   bit-identical.

use sirius::core::fault::FaultConfig;
use sirius::core::topology::NodeId;
use sirius::core::units::{Duration, Rate, Time};
use sirius::core::SiriusConfig;
use sirius::optics::ber::Modulation;
use sirius::sim::{FaultInjector, RunMetrics, SiriusSim, SiriusSimConfig};
use sirius::workload::{Flow, Pareto, Pattern, WorkloadSpec};

/// 32-rack network sized so the optical fabric (not the server NICs) is
/// the binding constraint at saturation: 4 uplinks x 50 Gbps = 200 Gbps
/// of fabric TX per node, halved by the two VLB hops, equals the 2 x 50
/// Gbps of attached servers. Only then does dead-slot capacity loss show
/// up as goodput loss.
fn fabric_limited_net() -> SiriusConfig {
    let mut c = SiriusConfig::scaled(32, 8);
    c.servers_per_node = 2;
    c.server_rate = Rate::from_gbps(50);
    c.uplink_factor = 1.0;
    c
}

/// Saturation workload over the first `servers` server IDs, with all
/// arrivals shifted past `start`: crashing the *last* racks before
/// `start` leaves a steady-state run among the survivors only.
fn survivor_workload(
    net: &SiriusConfig,
    servers: u32,
    flows: u64,
    seed: u64,
    start: Time,
) -> Vec<Flow> {
    let mut wl = WorkloadSpec {
        servers,
        server_rate: net.server_rate,
        load: 1.0,
        sizes: Pareto::paper_default().truncated(1e5),
        flows,
        pattern: Pattern::Uniform,
        seed,
    }
    .generate();
    for f in &mut wl {
        f.arrival += start.since(Time::ZERO);
    }
    wl
}

fn goodput(m: &RunMetrics, horizon: Time, servers: u64, rate: Rate) -> f64 {
    m.goodput_within(horizon, servers, rate)
}

#[test]
fn goodput_tracks_capacity_factor_for_1_4_16_failed_nodes() {
    let net = fabric_limited_net();
    let n = net.nodes as u32;
    let start = net.epoch() * 12; // routing settles before traffic starts
    for failed in [1u32, 4, 16] {
        let survivors = n - failed;
        let servers = survivors * net.servers_per_node as u32;
        // Scale flow count with the survivor population so every variant
        // offers the same per-server load over a comparable span.
        let flows = servers as u64 * 60;
        let wl = survivor_workload(&net, servers, flows, 41, Time::ZERO + start);
        // Measure strictly inside the arrival span: saturation must hold
        // across the whole window for the ratio to mean capacity.
        let last = wl.last().unwrap().arrival.since(Time::ZERO).as_ps();
        let horizon = Time::from_ps(last * 4 / 5);
        assert!(
            horizon.since(Time::ZERO) > net.epoch() * 60,
            "span too short"
        );
        let mut cfg = SiriusSimConfig::new(net.clone()).with_seed(41);
        cfg.drain_timeout = Duration::from_ms(2);

        let healthy = SiriusSim::new(cfg.clone()).run(&wl);

        // Crash the last `failed` racks at epoch 0 — no flow touches
        // them, but every one of their schedule slots goes dark.
        let mut inj = FaultInjector::new(41);
        for k in 0..failed {
            inj.push(sirius::sim::FaultEvent::Crash {
                node: NodeId(n - 1 - k),
                epoch: 0,
            });
        }
        let degraded = SiriusSim::new(cfg).with_faults(inj).run(&wl);

        let fr = degraded.fault.as_ref().unwrap();
        let cf = fr.capacity_factor_end;
        let expect = 1.0 - failed as f64 / n as f64;
        assert!(
            (cf - expect).abs() < 1e-9,
            "{failed} failed: capacity factor {cf} != {expect}"
        );

        let rate = net.server_rate;
        let g_healthy = goodput(&healthy, horizon, servers as u64, rate);
        let g_degraded = goodput(&degraded, horizon, servers as u64, rate);
        assert!(g_healthy > 0.5, "healthy run not saturated: {g_healthy}");
        let ratio = g_degraded / g_healthy;
        assert!(
            (ratio - cf).abs() <= 0.05,
            "{failed}/{n} failed: goodput ratio {ratio:.4} vs capacity factor {cf:.4}"
        );
    }
}

#[test]
fn detection_latency_is_bounded_for_staggered_crashes() {
    // Four crashes at different epochs; every one must be suspected
    // within silence_threshold + 1 epochs of its ground-truth death and
    // excluded exactly one update epoch later.
    let net = fabric_limited_net();
    let wl = survivor_workload(&net, 48, 1500, 43, Time::ZERO); // nodes 0..24
    let inj = FaultInjector::new(43)
        .crash(NodeId(28), 5)
        .crash(NodeId(29), 15)
        .crash(NodeId(30), 25)
        .crash(NodeId(31), 35);
    let mut cfg = SiriusSimConfig::new(net).with_seed(43).with_audit(true);
    cfg.drain_timeout = Duration::from_us(300);
    let m = SiriusSim::new(cfg).with_faults(inj).run(&wl);
    let fr = m.fault.unwrap();
    let threshold = FaultConfig::default().silence_threshold;
    assert_eq!(fr.failures.len(), 4);
    for rec in &fr.failures {
        let lat = rec
            .detection_epochs()
            .unwrap_or_else(|| panic!("{:?} never suspected", rec.node));
        assert!(
            lat <= threshold + 1,
            "{:?}: detection latency {lat} epochs",
            rec.node
        );
        assert_eq!(
            rec.excluded_at.unwrap(),
            rec.first_suspected.unwrap() + 1,
            "{:?}: exclusion not one update epoch after suspicion",
            rec.node
        );
    }
    assert!(m.audit.unwrap().is_clean());
}

#[test]
fn grey_failure_is_localized_and_attributed() {
    // One TX column degraded to -20 dBm receive power (essentially dead
    // through KP4 FEC): the per-column silence detector must localize
    // exactly that (node, uplink), and the audit must attribute every
    // lost cell to the declared grey window. The schedule connects each
    // pair exactly once per epoch, so the peers served by the dead column
    // genuinely lose all evidence the node is alive and suspect it — but
    // the keepalives still arriving on the healthy columns veto the
    // exclusion at the next update epoch, and the system settles with
    // full node capacity plus a localized bad link.
    let net = fabric_limited_net();
    let wl = survivor_workload(&net, net.total_servers() as u32, 1200, 47, Time::ZERO);
    let inj = FaultInjector::new(47).grey_link_from_ber(
        NodeId(7),
        2,
        -20.0,
        Modulation::Pam4_50,
        net.cell_bytes,
        4,
        300,
    );
    let mut cfg = SiriusSimConfig::new(net).with_seed(47).with_audit(true);
    cfg.drain_timeout = Duration::from_us(300);
    let m = SiriusSim::new(cfg).with_faults(inj).run(&wl);
    let fr = m.fault.unwrap();
    assert!(fr.cells_lost_grey > 0, "dead link lost nothing");
    assert_eq!(fr.grey_links_declared, 1);
    assert_eq!(
        fr.grey_links_localized, 1,
        "grey column not localized by the per-column detector"
    );
    assert_eq!(
        fr.exclusions, fr.readmissions,
        "grey-link exclusion was not vetoed by healthy-column keepalives"
    );
    assert!(fr.exclusions <= 2, "grey link caused flapping exclusions");
    assert_eq!(
        fr.capacity_factor_end, 1.0,
        "grey link must not permanently kill the whole node"
    );
    let audit = m.audit.unwrap();
    assert!(
        audit.is_clean(),
        "unattributed losses: {:?}",
        audit.violations.first()
    );
}

#[test]
fn fault_scripts_keep_double_runs_bit_identical() {
    // The injector draws from its own RNG stream, once per scheduled
    // slot — never per cell — so an identical (config, seed, script)
    // reruns to the same digest even with every fault class active.
    let net = fabric_limited_net();
    let wl = survivor_workload(&net, 48, 600, 53, Time::ZERO);
    let run = || {
        let inj = FaultInjector::new(53)
            .crash(NodeId(30), 10)
            .recover(NodeId(30), 80)
            .grey_link(NodeId(5), 1, 0.3, 20, 120)
            .mistune(NodeId(9), 2, 140, 180)
            .control_loss(0.2, 0, 200);
        let mut cfg = SiriusSimConfig::new(net.clone()).with_seed(53);
        cfg.drain_timeout = Duration::from_us(300);
        SiriusSim::new(cfg).with_faults(inj).run(&wl)
    };
    let a = run();
    let b = run();
    assert_eq!(a.digest, b.digest, "fault run digest diverged");
    assert_eq!(a.delivered_bytes, b.delivered_bytes);
    let fa = a.fault.unwrap();
    let fb = b.fault.unwrap();
    assert_eq!(fa.cells_lost_grey, fb.cells_lost_grey);
    assert_eq!(fa.cells_lost_mistune, fb.cells_lost_mistune);
    assert_eq!(fa.requests_lost, fb.requests_lost);
    assert_eq!(fa.grants_lost, fb.grants_lost);
    assert_eq!(fa.suspicion_events, fb.suspicion_events);
    // The script actually exercised each class.
    assert!(fa.cells_lost_grey > 0);
    assert!(fa.requests_lost + fa.grants_lost > 0);
}
