//! Fault-tolerance integration suite (§4.5): the quantitative robustness
//! claims of the paper, measured end-to-end through the emergent
//! detection pipeline.
//!
//! * Detection latency: silence on scheduled slots is noticed within
//!   `silence_threshold + 1` epochs — "a few microseconds" at the paper's
//!   1.6 us epoch.
//! * Graceful degradation: with `k` of `N` nodes down, post-failure
//!   goodput tracks `AdjustedSchedule::capacity_factor = 1 - k/N` within
//!   5% (measured for k = 1, 4, 16 of 32).
//! * Grey failures are localized to the degraded TX column, and every
//!   lost cell is attributed to a declared fault window.
//! * Link-granular repair: a single grey TX column costs `1/(N*U)` of
//!   capacity (one schedule column), not the `1/N` the whole-node §4.5
//!   rule would pay — measured as goodput >= `1 - k/(N*U)` - 5% for `k`
//!   single-column faults, strictly above the `1 - k/N` node floor on
//!   the same fault script.
//! * Fault scripts perturb nothing they shouldn't: double runs stay
//!   bit-identical.

use sirius::core::fault::FaultConfig;
use sirius::core::topology::NodeId;
use sirius::core::units::{Duration, Rate, Time};
use sirius::core::SiriusConfig;
use sirius::optics::ber::Modulation;
use sirius::sim::{FaultInjector, RunMetrics, SiriusSim, SiriusSimConfig};
use sirius::workload::{Flow, Pareto, Pattern, WorkloadSpec};

/// 32-rack network sized so the optical fabric (not the server NICs) is
/// the binding constraint at saturation: 4 uplinks x 50 Gbps = 200 Gbps
/// of fabric TX per node, halved by the two VLB hops, equals the 2 x 50
/// Gbps of attached servers. Only then does dead-slot capacity loss show
/// up as goodput loss.
fn fabric_limited_net() -> SiriusConfig {
    let mut c = SiriusConfig::scaled(32, 8);
    c.servers_per_node = 2;
    c.server_rate = Rate::from_gbps(50);
    c.uplink_factor = 1.0;
    c
}

/// Saturation workload over the first `servers` server IDs, with all
/// arrivals shifted past `start`: crashing the *last* racks before
/// `start` leaves a steady-state run among the survivors only.
fn survivor_workload(
    net: &SiriusConfig,
    servers: u32,
    flows: u64,
    seed: u64,
    start: Time,
) -> Vec<Flow> {
    let mut wl = WorkloadSpec {
        servers,
        server_rate: net.server_rate,
        load: 1.0,
        sizes: Pareto::paper_default().truncated(1e5),
        flows,
        pattern: Pattern::Uniform,
        seed,
    }
    .generate();
    for f in &mut wl {
        f.arrival += start.since(Time::ZERO);
    }
    wl
}

fn goodput(m: &RunMetrics, horizon: Time, servers: u64, rate: Rate) -> f64 {
    m.goodput_within(horizon, servers, rate)
}

#[test]
fn goodput_tracks_capacity_factor_for_1_4_16_failed_nodes() {
    let net = fabric_limited_net();
    let n = net.nodes as u32;
    let start = net.epoch() * 12; // routing settles before traffic starts
    for failed in [1u32, 4, 16] {
        let survivors = n - failed;
        let servers = survivors * net.servers_per_node as u32;
        // Scale flow count with the survivor population so every variant
        // offers the same per-server load over a comparable span.
        let flows = servers as u64 * 60;
        let wl = survivor_workload(&net, servers, flows, 41, Time::ZERO + start);
        // Measure strictly inside the arrival span: saturation must hold
        // across the whole window for the ratio to mean capacity.
        let last = wl.last().unwrap().arrival.since(Time::ZERO).as_ps();
        let horizon = Time::from_ps(last * 4 / 5);
        assert!(
            horizon.since(Time::ZERO) > net.epoch() * 60,
            "span too short"
        );
        let mut cfg = SiriusSimConfig::new(net.clone()).with_seed(41);
        cfg.drain_timeout = Duration::from_ms(2);

        let healthy = SiriusSim::new(cfg.clone()).run(&wl);

        // Crash the last `failed` racks at epoch 0 — no flow touches
        // them, but every one of their schedule slots goes dark.
        let mut inj = FaultInjector::new(41);
        for k in 0..failed {
            inj.push(sirius::sim::FaultEvent::Crash {
                node: NodeId(n - 1 - k),
                epoch: 0,
            });
        }
        let degraded = SiriusSim::new(cfg).with_faults(inj).run(&wl);

        let fr = degraded.fault.as_ref().unwrap();
        let cf = fr.capacity_factor_end;
        let expect = 1.0 - failed as f64 / n as f64;
        assert!(
            (cf - expect).abs() < 1e-9,
            "{failed} failed: capacity factor {cf} != {expect}"
        );

        let rate = net.server_rate;
        let g_healthy = goodput(&healthy, horizon, servers as u64, rate);
        let g_degraded = goodput(&degraded, horizon, servers as u64, rate);
        assert!(g_healthy > 0.5, "healthy run not saturated: {g_healthy}");
        let ratio = g_degraded / g_healthy;
        assert!(
            (ratio - cf).abs() <= 0.05,
            "{failed}/{n} failed: goodput ratio {ratio:.4} vs capacity factor {cf:.4}"
        );
    }
}

#[test]
fn detection_latency_is_bounded_for_staggered_crashes() {
    // Four crashes at different epochs; every one must be suspected
    // within silence_threshold + 1 epochs of its ground-truth death and
    // excluded exactly one update epoch later.
    let net = fabric_limited_net();
    let wl = survivor_workload(&net, 48, 1500, 43, Time::ZERO); // nodes 0..24
    let inj = FaultInjector::new(43)
        .crash(NodeId(28), 5)
        .crash(NodeId(29), 15)
        .crash(NodeId(30), 25)
        .crash(NodeId(31), 35);
    let mut cfg = SiriusSimConfig::new(net).with_seed(43).with_audit(true);
    cfg.drain_timeout = Duration::from_us(300);
    let m = SiriusSim::new(cfg).with_faults(inj).run(&wl);
    let fr = m.fault.unwrap();
    let threshold = FaultConfig::default().silence_threshold;
    assert_eq!(fr.failures.len(), 4);
    for rec in &fr.failures {
        let lat = rec
            .detection_epochs()
            .unwrap_or_else(|| panic!("{:?} never suspected", rec.node));
        assert!(
            lat <= threshold + 1,
            "{:?}: detection latency {lat} epochs",
            rec.node
        );
        assert_eq!(
            rec.excluded_at.unwrap(),
            rec.first_suspected.unwrap() + 1,
            "{:?}: exclusion not one update epoch after suspicion",
            rec.node
        );
    }
    assert!(m.audit.unwrap().is_clean());
}

#[test]
fn grey_failure_is_localized_and_attributed() {
    // One TX column degraded to -20 dBm receive power (essentially dead
    // through KP4 FEC): the per-column silence detector must localize
    // exactly that (node, uplink), and the audit must attribute every
    // lost cell to the declared grey window. The schedule connects each
    // pair exactly once per epoch, so the peers served by the dead column
    // genuinely lose all evidence the node is alive and suspect it — but
    // the repair is column-granular: only the suspect (uplink, slot)
    // column is dropped from the schedule, the node keeps relaying on its
    // healthy columns, and the whole-node §4.5 rule never fires. When the
    // grey window heals, the still-running keepalive carrier on the dead
    // slots readmits the column.
    let net = fabric_limited_net();
    let wl = survivor_workload(&net, net.total_servers() as u32, 1200, 47, Time::ZERO);
    let inj = FaultInjector::new(47).grey_link_from_ber(
        NodeId(7),
        2,
        -20.0,
        Modulation::Pam4_50,
        net.cell_bytes,
        4,
        300,
    );
    let mut cfg = SiriusSimConfig::new(net).with_seed(47).with_audit(true);
    cfg.drain_timeout = Duration::from_us(300);
    let m = SiriusSim::new(cfg).with_faults(inj).run(&wl);
    let fr = m.fault.unwrap();
    assert!(fr.cells_lost_grey > 0, "dead link lost nothing");
    assert_eq!(fr.grey_links_declared, 1);
    assert_eq!(
        fr.grey_links_localized, 1,
        "grey column not localized by the per-column detector"
    );
    assert_eq!(
        fr.exclusions, 0,
        "single grey column must not cost the whole node"
    );
    assert!(
        fr.column_omissions >= 1,
        "grey column was never dropped from the schedule"
    );
    assert!(
        fr.column_omissions <= 3,
        "grey column caused flapping repairs"
    );
    assert_eq!(
        fr.column_omissions, fr.column_readmissions,
        "healed grey column was not readmitted"
    );
    let rec = fr
        .links
        .iter()
        .find(|r| r.node == NodeId(7) && r.uplink == 2)
        .expect("no link record for the declared grey column");
    assert_eq!(
        rec.omitted_at.expect("suspected column never omitted"),
        rec.first_suspected + 1,
        "column omission not one update epoch after suspicion"
    );
    assert_eq!(
        fr.capacity_factor_end, 1.0,
        "grey link must not permanently cost capacity"
    );
    let audit = m.audit.unwrap();
    assert!(
        audit.is_clean(),
        "unattributed losses: {:?}",
        audit.violations.first()
    );
}

#[test]
fn bank_drift_detection_lags_the_ramp_but_lands_inside_the_window() {
    // Slow failure: chip 0 (capacity 4) of the laser bank feeding
    // (group 0, uplink 2) ages from -4 dBm (healthy) to -26 dBm (dead)
    // over epochs [50, 300). The AWGR input is 2 % 8 = 2, so channels
    // 0..4 land on output ports 2..6: nodes 2..6, column 2 grey out
    // *together*, with a drop probability that ramps with the power.
    //
    // The detection-latency claim under test: a drifting bank cannot be
    // caught at crash speed (`silence_threshold + 1`) because the early
    // ramp still delivers almost every slot — suspicion necessarily
    // trails the ground-truth onset — but the per-column detector must
    // still localize the columns well before the window closes, never
    // escalate to whole-node exclusion, and the audit must attribute
    // every loss to the declared (ramp-long) grey windows.
    let net = fabric_limited_net();
    let wl = survivor_workload(&net, net.total_servers() as u32, 1200, 53, Time::ZERO);
    let (from, until) = (50u64, 300u64);
    let inj = FaultInjector::new(53).bank_drift(
        0,
        2,
        0,
        4,
        -4.0,
        -26.0,
        Modulation::Pam4_50,
        net.cell_bytes,
        from,
        until,
    );
    let mut cfg = SiriusSimConfig::new(net.clone())
        .with_seed(53)
        .with_audit(true);
    cfg.drain_timeout = Duration::from_us(300);
    let m = SiriusSim::new(cfg).with_faults(inj).run(&wl);
    let fr = m.fault.unwrap();
    assert!(fr.cells_lost_grey > 0, "drifting bank lost nothing");
    assert_eq!(fr.exclusions, 0, "column drift must not cost whole nodes");

    let blast: Vec<NodeId> = (2..6).map(NodeId).collect();
    for rec in &fr.links {
        assert!(
            blast.contains(&rec.node) && rec.uplink == 2,
            "suspicion leaked outside the chip's blast radius: {:?}/{}",
            rec.node,
            rec.uplink
        );
    }
    let suspected: Vec<_> = fr
        .links
        .iter()
        .filter(|r| blast.contains(&r.node) && r.uplink == 2)
        .collect();
    assert!(!suspected.is_empty(), "drift was never localized");
    let threshold = FaultConfig::default().silence_threshold;
    for rec in &suspected {
        let lat = rec.first_suspected - from;
        // Detection latency: slower than any fail-stop detection can be
        // (the early ramp is indistinguishable from healthy) ...
        assert!(
            lat > threshold + 1,
            "{:?}: drift suspected at crash speed ({lat} epochs) — \
             the ramp model is not actually gradual",
            rec.node
        );
        assert!(
            rec.first_suspected >= from + 30,
            "{:?}: suspected at epoch {} while the link was still healthy",
            rec.node,
            rec.first_suspected
        );
        // ... but still inside the fault window, off the near-dead tail
        // of the ramp.
        assert!(
            rec.first_suspected < until,
            "{:?}: not localized until after the window closed",
            rec.node
        );
    }
    assert!(
        fr.column_omissions >= 1,
        "no drifted column was ever repaired out of the schedule"
    );
    let audit = m.audit.unwrap();
    assert!(
        audit.is_clean(),
        "unattributed losses: {:?}",
        audit.violations.first()
    );
}

#[test]
fn single_column_repair_detects_omits_and_readmits_on_schedule() {
    // A fully dead TX column (erasure probability 1.0) over a bounded
    // window, timed exactly: suspicion within `silence_threshold + 1`
    // epochs of the window opening, omission one update epoch later, and
    // readmission within a few epochs of the window healing — the same
    // latency bounds the node-granular pipeline proves for crashes, now
    // at 1/(N*U) capacity cost instead of 1/N.
    let net = fabric_limited_net();
    let n = net.nodes as f64;
    let u = 4.0; // uplinks at uplink_factor 1.0: g / groups_ratio
    let wl = survivor_workload(&net, net.total_servers() as u32, 600, 59, Time::ZERO);
    let inj = FaultInjector::new(59).grey_link(NodeId(7), 2, 1.0, 5, 60);
    let mut cfg = SiriusSimConfig::new(net).with_seed(59).with_audit(true);
    cfg.drain_timeout = Duration::from_us(300);
    let m = SiriusSim::new(cfg).with_faults(inj).run(&wl);
    let fr = m.fault.unwrap();
    let thr = FaultConfig::default().silence_threshold;

    assert_eq!(fr.exclusions, 0);
    assert_eq!(fr.column_omissions, 1);
    assert_eq!(fr.column_readmissions, 1);
    let rec = &fr.links[0];
    assert_eq!((rec.node, rec.uplink), (NodeId(7), 2));
    let sus = rec.first_suspected;
    assert!(
        (5..=5 + thr + 2).contains(&sus),
        "column suspected at {sus}, window opened at 5"
    );
    assert_eq!(
        rec.omitted_at.unwrap(),
        sus + 1,
        "omission not one update epoch after suspicion"
    );
    let readmit = rec.readmitted_at.expect("healed column never readmitted");
    assert!(
        (60..=60 + thr + 2).contains(&readmit),
        "readmission at {readmit}, window healed at 60"
    );
    // While omitted, exactly one of N*U columns is dark.
    assert_eq!(fr.capacity_factor_end, 1.0);
    let one_column = 1.0 / (n * u);
    assert!(one_column < 1.0 / n, "column cost must undercut node cost");
    let audit = m.audit.unwrap();
    assert!(audit.is_clean(), "{:?}", audit.violations.first());
}

#[test]
fn column_escalation_restores_the_whole_node_rule() {
    // Two of four TX columns dead on one node: at the default escalation
    // fraction (0.5) that is exactly the threshold, so the repair gives
    // up on column granularity and applies the paper's §4.5 whole-node
    // exclusion — and keepalives on the two surviving columns must NOT
    // resurrect the node while the suspect columns stay silent.
    let net = fabric_limited_net();
    let wl = survivor_workload(&net, 62, 800, 61, Time::ZERO); // nodes 0..31
    let inj = FaultInjector::new(61)
        .grey_link(NodeId(31), 0, 1.0, 0, u64::MAX)
        .grey_link(NodeId(31), 1, 1.0, 0, u64::MAX);
    let mut cfg = SiriusSimConfig::new(net.clone())
        .with_seed(61)
        .with_audit(true);
    cfg.drain_timeout = Duration::from_us(200);
    let m = SiriusSim::new(cfg).with_faults(inj).run(&wl);
    let fr = m.fault.unwrap();
    assert_eq!(
        fr.exclusions, 1,
        "half-dead node not escalated to exclusion"
    );
    assert_eq!(fr.readmissions, 0, "escalated node flapped back in");
    assert_eq!(
        fr.column_omissions, 0,
        "columns suspected together must escalate, not repair piecemeal"
    );
    let expect = 1.0 - 1.0 / net.nodes as f64;
    assert!(
        (fr.capacity_factor_end - expect).abs() < 1e-9,
        "escalated capacity {} != {expect}",
        fr.capacity_factor_end
    );
    let audit = m.audit.unwrap();
    assert!(audit.is_clean(), "{:?}", audit.violations.first());
}

#[test]
fn link_granular_repair_beats_node_granular_floor() {
    // The tentpole claim: for k single-column grey faults, column-granular
    // repair retains goodput >= 1 - k/(N*U) - 5%, strictly above the
    // 1 - k/N floor that whole-node exclusion (the escalation-fraction-0
    // comparison mode, i.e. the paper's §4.5 rule) pays on the *same*
    // fault script. Faults land on the last 4 nodes; traffic runs among
    // the other 28, so the ratio to the healthy run measures pure fabric
    // capacity, exactly like the crash-based capacity-factor test.
    let net = fabric_limited_net();
    let n = net.nodes as u32;
    let uplinks = 4u32;
    let k = 4u32;
    let survivors = n - k;
    let servers = survivors * net.servers_per_node as u32;
    let start = net.epoch() * 12; // repair settles before traffic starts
    let wl = survivor_workload(&net, servers, servers as u64 * 40, 67, Time::ZERO + start);
    let last = wl.last().unwrap().arrival.since(Time::ZERO).as_ps();
    let horizon = Time::from_ps(last * 4 / 5);
    let script = || {
        let mut inj = FaultInjector::new(67);
        for i in 0..k {
            inj = inj.grey_link(NodeId(n - 1 - i), 1, 1.0, 0, u64::MAX);
        }
        inj
    };
    let mut cfg = SiriusSimConfig::new(net.clone()).with_seed(67);
    cfg.drain_timeout = Duration::from_ms(2);

    let healthy = SiriusSim::new(cfg.clone()).run(&wl);
    let link = SiriusSim::new(cfg.clone()).with_faults(script()).run(&wl);
    let node = SiriusSim::new(cfg.clone().with_column_escalation_fraction(0.0))
        .with_faults(script())
        .run(&wl);

    // Column-granular: k columns dark, zero nodes excluded.
    let fl = link.fault.as_ref().unwrap();
    assert_eq!(fl.exclusions, 0, "column faults must not exclude nodes");
    assert_eq!(fl.column_omissions as u32, k);
    assert_eq!(fl.column_readmissions, 0, "permanently dead column healed?");
    let cf_link = 1.0 - k as f64 / (n * uplinks) as f64;
    assert!(
        (fl.capacity_factor_end - cf_link).abs() < 1e-9,
        "link-granular capacity {} != {cf_link}",
        fl.capacity_factor_end
    );

    // Node-granular comparison mode: the same script costs whole nodes.
    let fn_ = node.fault.as_ref().unwrap();
    assert_eq!(fn_.exclusions as u32, k, "node mode must exclude per fault");
    assert_eq!(fn_.readmissions, 0, "dead-column node flapped back in");
    assert_eq!(fn_.column_omissions, 0, "node mode must not repair columns");
    let cf_node = 1.0 - k as f64 / n as f64;
    assert!(
        (fn_.capacity_factor_end - cf_node).abs() < 1e-9,
        "node-granular capacity {} != {cf_node}",
        fn_.capacity_factor_end
    );

    // Goodput: link-granular holds the 1 - k/(N*U) bound and strictly
    // beats both the node-granular floor and the node-granular run.
    let rate = net.server_rate;
    let g_healthy = goodput(&healthy, horizon, servers as u64, rate);
    assert!(g_healthy > 0.5, "healthy run not saturated: {g_healthy}");
    let ratio_link = goodput(&link, horizon, servers as u64, rate) / g_healthy;
    let ratio_node = goodput(&node, horizon, servers as u64, rate) / g_healthy;
    assert!(
        ratio_link >= cf_link - 0.05,
        "link-granular goodput ratio {ratio_link:.4} below bound {cf_link:.4} - 5%"
    );
    assert!(
        (ratio_node - cf_node).abs() <= 0.05,
        "node-granular ratio {ratio_node:.4} off its {cf_node:.4} floor"
    );
    assert!(
        ratio_link > cf_node,
        "link-granular ratio {ratio_link:.4} not above the node floor {cf_node:.4}"
    );
    assert!(
        ratio_link > ratio_node,
        "link granularity did not beat node granularity ({ratio_link:.4} vs {ratio_node:.4})"
    );

    // Determinism: the repaired run replays bit-identically.
    let link2 = SiriusSim::new(cfg).with_faults(script()).run(&wl);
    assert_eq!(link.digest, link2.digest, "repaired run digest diverged");
    let fl2 = link2.fault.unwrap();
    assert_eq!(fl.column_omissions, fl2.column_omissions);
    assert_eq!(fl.cells_rerouted, fl2.cells_rerouted);
}

#[test]
fn correlated_bank_failure_is_one_domain_not_k_exclusions() {
    // The correlated-domain claim: a dead laser-bank chip (uplink 1) plus
    // a destroyed AWGR grating band (uplink 2) silence TWO columns on each
    // of four nodes of group 3 — exactly the per-node escalation threshold
    // (fraction 0.5 of 4 uplinks). Cross-node correlation must recognize
    // the fleet-wide column pattern and keep the repair column-granular:
    // 8 columns at 1/(N*U) each, ZERO whole-node exclusions — while the
    // node-granular comparison mode pays 4 whole nodes on the same script.
    let net = fabric_limited_net();
    let n = net.nodes as u32; // 32, groups of 8
    let uplinks = 4u32;
    let start = net.epoch() * 12;
    // Blast radius: chip 0 (channels 0..4) of the bank feeding input 1 of
    // group 3's uplink-1 AWGR dies -> outputs (1+w)%8 = ports 1..5 ->
    // nodes 25..29 on uplink 1; the grating band [1, 5) of the uplink-2
    // AWGR -> the same nodes 25..29 on uplink 2.
    let blast = 4u32;
    let servers = 48u32; // nodes 0..24 carry the traffic
    let wl = survivor_workload(&net, servers, servers as u64 * 40, 71, Time::ZERO + start);
    let last = wl.last().unwrap().arrival.since(Time::ZERO).as_ps();
    let horizon = Time::from_ps(last * 4 / 5);
    let script = || {
        FaultInjector::new(71)
            .bank_failure(3, 1, 0, 4, 0, u64::MAX)
            .grating_fault(3, 2, 1, 5, 0, u64::MAX)
    };
    let mut cfg = SiriusSimConfig::new(net.clone()).with_seed(71);
    cfg.drain_timeout = Duration::from_ms(2);

    let healthy = SiriusSim::new(cfg.clone()).run(&wl);
    let link = SiriusSim::new(cfg.clone()).with_faults(script()).run(&wl);
    let node = SiriusSim::new(cfg.clone().with_column_escalation_fraction(0.0))
        .with_faults(script())
        .run(&wl);

    // Correlated diagnosis: one domain per uplink column, each spanning
    // the four blast nodes, detected within the silence bound.
    let fl = link.fault.as_ref().unwrap();
    let thr = FaultConfig::default().silence_threshold;
    assert_eq!(
        fl.correlated_domains.len(),
        2,
        "expected one correlated domain per damaged uplink: {:?}",
        fl.correlated_domains
    );
    for d in &fl.correlated_domains {
        assert!(
            d.uplink == 1 || d.uplink == 2,
            "domain on uplink {}",
            d.uplink
        );
        assert_eq!(d.nodes, blast, "domain width {} != blast radius", d.nodes);
        assert!(
            d.detected_at <= thr + 1,
            "domain detected at {} epochs",
            d.detected_at
        );
    }
    // Repair stayed column-granular: 2 columns per blast node, no
    // whole-node exclusions despite each node sitting AT the escalation
    // threshold — that suppression is exactly the blast-radius bound.
    assert_eq!(fl.exclusions, 0, "correlated domain cost whole nodes");
    assert_eq!(fl.column_omissions as u32, 2 * blast);
    assert_eq!(fl.column_readmissions, 0, "dead domain healed?");
    for rec in &fl.links {
        assert!(
            rec.first_suspected <= thr + 1,
            "column ({:?},{}) suspected at {}",
            rec.node,
            rec.uplink,
            rec.first_suspected
        );
        assert_eq!(
            rec.omitted_at.expect("suspected column never omitted"),
            rec.first_suspected + 1
        );
    }
    let cf_link = 1.0 - (2 * blast) as f64 / (n * uplinks) as f64;
    assert!(
        (fl.capacity_factor_end - cf_link).abs() < 1e-9,
        "correlated capacity {} != {cf_link}",
        fl.capacity_factor_end
    );

    // Node-granular comparison mode: the same physics costs 4 whole nodes.
    let fn_ = node.fault.as_ref().unwrap();
    assert_eq!(
        fn_.exclusions as u32, blast,
        "node mode must pay the k/N floor"
    );
    assert_eq!(fn_.column_omissions, 0);
    let cf_node = 1.0 - blast as f64 / n as f64;
    assert!(
        (fn_.capacity_factor_end - cf_node).abs() < 1e-9,
        "node-granular capacity {} != {cf_node}",
        fn_.capacity_factor_end
    );
    assert!(cf_link > cf_node, "column repair must beat the node floor");

    // Goodput follows the capacity factors: the correlated repair holds
    // its k/(N*U) bound and beats the node-granular run on the same
    // script.
    let rate = net.server_rate;
    let g_healthy = goodput(&healthy, horizon, servers as u64, rate);
    assert!(g_healthy > 0.5, "healthy run not saturated: {g_healthy}");
    let ratio_link = goodput(&link, horizon, servers as u64, rate) / g_healthy;
    let ratio_node = goodput(&node, horizon, servers as u64, rate) / g_healthy;
    assert!(
        ratio_link >= cf_link - 0.05,
        "correlated goodput ratio {ratio_link:.4} below {cf_link:.4} - 5%"
    );
    assert!(
        ratio_link > ratio_node,
        "column-granular domain repair did not beat node granularity \
         ({ratio_link:.4} vs {ratio_node:.4})"
    );

    // Determinism: the correlated-repair run replays bit-identically.
    let link2 = SiriusSim::new(cfg).with_faults(script()).run(&wl);
    assert_eq!(link.digest, link2.digest, "correlated run digest diverged");
}

#[test]
fn byzantine_node_is_filtered_and_quarantined() {
    // A compromised node forges cells on its idle slots and floods
    // intermediates with counterfeit requests. The RX-side filter must
    // drop EVERY counterfeit (header validation against the flow table
    // and the epoch schedule), attribute them to the true transmitter,
    // and quarantine the liar after one epoch over the threshold — with
    // honest traffic completing untouched and conservation exact.
    let mut net = SiriusConfig::scaled(16, 4);
    net.servers_per_node = 2;
    net.server_rate = Rate::from_gbps(50);
    let liar = NodeId(15);
    // Traffic among nodes 0..15 only; the liar's own slots stay idle, so
    // its forge probability applies to every scheduled opportunity.
    let wl = survivor_workload(&net, 30, 600, 73, Time::ZERO);
    let script = || FaultInjector::new(73).byzantine(liar, 0.9, 8, 0, u64::MAX);
    let mut cfg = SiriusSimConfig::new(net.clone())
        .with_seed(73)
        .with_audit(true);
    cfg.drain_timeout = Duration::from_ms(4);
    let m = SiriusSim::new(cfg.clone()).with_faults(script()).run(&wl);
    let fr = m.fault.as_ref().unwrap();

    // The attack ran: cells were forged and requests inflated.
    assert!(fr.cells_forged > 0, "no cells forged");
    assert!(fr.requests_forged > 0, "no requests forged");
    // Damage bound: every forged cell that landed was caught by the RX
    // filter — none was ever delivered (conservation would break and the
    // audit below would flag it).
    assert_eq!(
        fr.cells_forged_dropped, fr.cells_forged,
        "a counterfeit escaped the RX filter"
    );
    assert!(fr.max_forged_per_epoch > 0);
    // Quarantine: attributed to the right node, within a few epochs,
    // sticky (healthy keepalives must not readmit a liar).
    assert_eq!(
        fr.byz_quarantined.len(),
        1,
        "liar not quarantined exactly once"
    );
    let q = &fr.byz_quarantined[0];
    assert_eq!(q.node, liar, "quarantined the wrong node");
    assert!(
        q.quarantined_at <= 4,
        "quarantine at epoch {}",
        q.quarantined_at
    );
    assert_eq!(fr.exclusions, 1, "quarantine must exclude the liar");
    assert_eq!(fr.readmissions, 0, "quarantined liar flapped back in");
    // Honest traffic is unharmed and the ledger balances with forgery
    // accounted (forged cells live outside flow conservation).
    assert_eq!(
        m.incomplete_flows, 0,
        "Byzantine node stranded honest flows"
    );
    let audit = m.audit.as_ref().unwrap();
    assert!(audit.is_clean(), "{:?}", audit.violations.first());

    // Determinism: forge draws ride the per-node fault streams.
    let m2 = SiriusSim::new(cfg).with_faults(script()).run(&wl);
    assert_eq!(m.digest, m2.digest, "Byzantine run digest diverged");
    let fr2 = m2.fault.as_ref().unwrap();
    assert_eq!(fr.cells_forged, fr2.cells_forged);
    assert_eq!(fr.requests_forged, fr2.requests_forged);
}

#[test]
fn fault_scripts_keep_double_runs_bit_identical() {
    // The injector draws from its own RNG stream, once per scheduled
    // slot — never per cell — so an identical (config, seed, script)
    // reruns to the same digest even with every fault class active.
    let net = fabric_limited_net();
    let wl = survivor_workload(&net, 48, 600, 53, Time::ZERO);
    let run = || {
        let inj = FaultInjector::new(53)
            .crash(NodeId(30), 10)
            .recover(NodeId(30), 80)
            .grey_link(NodeId(5), 1, 0.3, 20, 120)
            .mistune(NodeId(9), 2, 140, 180)
            .control_loss(0.2, 0, 200);
        let mut cfg = SiriusSimConfig::new(net.clone()).with_seed(53);
        cfg.drain_timeout = Duration::from_us(300);
        SiriusSim::new(cfg).with_faults(inj).run(&wl)
    };
    let a = run();
    let b = run();
    assert_eq!(a.digest, b.digest, "fault run digest diverged");
    assert_eq!(a.delivered_bytes, b.delivered_bytes);
    let fa = a.fault.unwrap();
    let fb = b.fault.unwrap();
    assert_eq!(fa.cells_lost_grey, fb.cells_lost_grey);
    assert_eq!(fa.cells_lost_mistune, fb.cells_lost_mistune);
    assert_eq!(fa.requests_lost, fb.requests_lost);
    assert_eq!(fa.grants_lost, fb.grants_lost);
    assert_eq!(fa.suspicion_events, fb.suspicion_events);
    assert_eq!(fa.column_omissions, fb.column_omissions);
    assert_eq!(fa.column_readmissions, fb.column_readmissions);
    assert_eq!(fa.cells_rerouted, fb.cells_rerouted);
    // The script actually exercised each class.
    assert!(fa.cells_lost_grey > 0);
    assert!(fa.requests_lost + fa.grants_lost > 0);
}
