//! Synchronization + calibration integrated with the network geometry:
//! per-node epoch offsets derived from noisy delay measurements keep slot
//! arrivals aligned well inside the guardband, and the network-wide
//! frequency sync stays inside the symbol budget.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sirius::core::SiriusConfig;
use sirius::sync::clock::{gauss, LocalClock};
use sirius::sync::delay::{arrival_misalignment, epoch_start_offsets, DelayEstimator};
use sirius::sync::engine::SyncEngine;
use sirius::sync::leader::LeaderSchedule;
use sirius::sync::pll::Pll;
use sirius::sync::provider::{SimTime, TimeProvider};
use sirius::sync::sync_sim::{run, run_with_byzantine, SyncResult, SyncSimConfig};
use sirius::sync::transport::{SimTransport, Transport, UdpTransport};
use sirius::sync::SyncError;
use sirius_core::units::Duration;

#[test]
fn calibration_fits_inside_the_guardband_budget() {
    // 128 racks at fiber lengths 5..500 m, 50 ps timestamp noise, 100
    // loopback samples each (one per epoch: 160 us of calibration).
    let net = SiriusConfig::paper_sim();
    let mut rng = SmallRng::seed_from_u64(1);
    let true_delays: Vec<Duration> = (0..net.nodes)
        .map(|_| Duration::from_ps(rng.gen_range(5u64..500) * 5_000))
        .collect();
    let estimates: Vec<Duration> = true_delays
        .iter()
        .map(|&d| {
            let mut est = DelayEstimator::new();
            for _ in 0..100 {
                est.record(&mut rng, d, 50.0);
            }
            est.estimate().unwrap()
        })
        .collect();
    let offsets = epoch_start_offsets(&estimates);
    let mis = arrival_misalignment(&true_delays, &offsets);
    let worst_ps = mis.iter().map(|m| m.abs()).max().unwrap();
    // The 10 ns guardband absorbs laser tuning (912 ps) + CDR + preamble;
    // arrival misalignment must be a small fraction of what remains.
    assert!(
        worst_ps < 500,
        "misalignment {worst_ps} ps eats into the guardband"
    );
}

#[test]
fn sync_error_is_negligible_vs_symbol_time() {
    // §6: ±5 ps deviation vs 40 ps symbols at 25 GBaud — an order of
    // magnitude of margin for the phase-caching CDR.
    let r = run(&SyncSimConfig::paper(8), 40_000, &[]);
    let symbol_ps = 40.0;
    assert!(
        r.max_deviation_ps < symbol_ps / 4.0,
        "deviation {} ps vs symbol {} ps",
        r.max_deviation_ps,
        symbol_ps
    );
}

#[test]
fn sync_survives_cascading_leader_failures() {
    // Kill three successive leaders; the rotation must keep the rest
    // locked.
    let r = run(
        &SyncSimConfig::paper(8),
        60_000,
        &[(0, 20_000), (1, 30_000), (2, 40_000)],
    );
    assert!(
        r.max_deviation_ps < 15.0,
        "deviation after cascading failures: {} ps",
        r.max_deviation_ps
    );
}

#[test]
fn epoch_offsets_monotone_in_distance() {
    // Sanity of the §A.2 rule: farther node starts earlier.
    let delays: Vec<Duration> = (1..=10).map(|k| Duration::from_ps(k * 100_000)).collect();
    let offsets = epoch_start_offsets(&delays);
    for w in offsets.windows(2) {
        assert!(w[0] >= w[1], "offsets must shrink with distance");
    }
}

// --- seam equivalence ---------------------------------------------------
//
// The trait-seam refactor (SyncEngine over SimTime + SimTransport) claims
// bit-identical behavior to the pre-seam sync_sim loops. The reference
// implementation below is a verbatim transcription of those loops, kept
// here — outside the crate — precisely so the production code cannot
// drift away from it silently: every shared-RNG draw, every floating
// -point expression shape, in the original order.

/// Pre-refactor `sync_sim::run` / `run_with_byzantine`, unified only by
/// the `byzantine_mode` flag that selects which of the two (otherwise
/// transcribed verbatim) bodies runs.
fn reference_run(
    cfg: &SyncSimConfig,
    epochs: u64,
    events: &[(usize, u64)],
    byzantine_mode: bool,
) -> SyncResult {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut clocks: Vec<LocalClock> = (0..cfg.nodes)
        .map(|_| LocalClock::new(&mut rng, cfg.oscillator))
        .collect();
    let mut leaders = LeaderSchedule::new(cfg.nodes, cfg.rotation_epochs);
    let mut excluded = vec![false; cfg.nodes];
    let warmup = (epochs / 5).max(5_000.min(epochs / 2));
    let mut max_dev = 0f64;
    let mut max_offset = 0f64;
    let mut window_max = [0f64; 4];
    let mut ev_iter = events.iter().peekable();
    for e in 0..epochs {
        while let Some(&&(node, at)) = ev_iter.peek() {
            if at <= e {
                if byzantine_mode {
                    clocks[node].byzantine = true;
                } else {
                    leaders.mark_failed(node);
                }
                excluded[node] = true;
                ev_iter.next();
            } else {
                break;
            }
        }
        for (i, c) in clocks.iter_mut().enumerate() {
            if byzantine_mode || !excluded[i] {
                c.advance(&mut rng, cfg.epoch_us);
            }
        }
        if let Some(lead) = leaders.leader_at(e) {
            let ref_phase = clocks[lead].phase_ps;
            for i in 0..cfg.nodes {
                if i == lead || (!byzantine_mode && excluded[i]) {
                    continue;
                }
                let measured =
                    clocks[i].phase_ps - ref_phase + gauss(&mut rng) * cfg.detector_noise_ps;
                let (dp, df) = cfg.pll.update(measured);
                clocks[i].adjust_phase(dp);
                clocks[i].adjust_frequency(df);
            }
        }
        if e >= warmup {
            let mut min = f64::INFINITY;
            let mut max = f64::NEG_INFINITY;
            for (c, &x) in clocks.iter().zip(&excluded) {
                if !x {
                    min = min.min(c.phase_ps);
                    max = max.max(c.phase_ps);
                }
            }
            let dev = if min.is_finite() { max - min } else { 0.0 };
            max_dev = max_dev.max(dev);
            let quarter = ((e - warmup) * 4 / (epochs - warmup).max(1)).min(3) as usize;
            window_max[quarter] = window_max[quarter].max(dev);
            for (i, c) in clocks.iter().enumerate() {
                if !excluded[i] {
                    max_offset = max_offset.max(c.offset_ppm.abs());
                }
            }
        }
    }
    SyncResult {
        max_deviation_ps: max_dev,
        window_max_ps: window_max,
        epochs,
        max_honest_offset_ppm: max_offset,
    }
}

fn assert_results_bit_identical(a: &SyncResult, b: &SyncResult, what: &str) {
    assert_eq!(
        a.max_deviation_ps.to_bits(),
        b.max_deviation_ps.to_bits(),
        "{what}: max_deviation_ps {} vs {}",
        a.max_deviation_ps,
        b.max_deviation_ps
    );
    for q in 0..4 {
        assert_eq!(
            a.window_max_ps[q].to_bits(),
            b.window_max_ps[q].to_bits(),
            "{what}: window_max_ps[{q}] {} vs {}",
            a.window_max_ps[q],
            b.window_max_ps[q]
        );
    }
    assert_eq!(a.epochs, b.epochs, "{what}: epochs");
    assert_eq!(
        a.max_honest_offset_ppm.to_bits(),
        b.max_honest_offset_ppm.to_bits(),
        "{what}: max_honest_offset_ppm {} vs {}",
        a.max_honest_offset_ppm,
        b.max_honest_offset_ppm
    );
}

#[test]
fn seam_equivalence_clean_run() {
    for nodes in [2, 3, 8] {
        let cfg = SyncSimConfig::paper(nodes);
        let new = run(&cfg, 12_000, &[]);
        let old = reference_run(&cfg, 12_000, &[], false);
        assert_results_bit_identical(&new, &old, &format!("{nodes}-node clean run"));
    }
}

#[test]
fn seam_equivalence_under_leader_handoffs() {
    // Failures hit sitting leaders mid-rotation, so the comparison
    // covers mark_failed propagation and handoff epochs too.
    let cfg = SyncSimConfig::paper(5);
    let failures = [(0, 2_000), (2, 6_000), (1, 9_000)];
    let new = run(&cfg, 15_000, &failures);
    let old = reference_run(&cfg, 15_000, &failures, false);
    assert_results_bit_identical(&new, &old, "cascading leader failures");
}

#[test]
fn seam_equivalence_byzantine_verdicts() {
    // Both PLL variants: the slew-limited verdict (how far honest clocks
    // get dragged) must come out bit-for-bit the same.
    for pll in [Pll::paper_tuning(), Pll::unfiltered()] {
        let mut cfg = SyncSimConfig::paper(8);
        cfg.pll = pll;
        let byz = [(0, 3_000)];
        let new = run_with_byzantine(&cfg, 14_000, &byz);
        let old = reference_run(&cfg, 14_000, &byz, true);
        assert_results_bit_identical(&new, &old, "byzantine verdict");
    }
}

#[test]
fn seam_equivalence_per_epoch_phase_trajectories() {
    // Stronger than comparing aggregates: drive the engine harness and
    // the reference clocks side by side and require every node's phase
    // to match bit-for-bit at every epoch, across a leader handoff.
    let cfg = SyncSimConfig::paper(4);
    let fail_at = 1_000u64;

    // Reference side.
    let mut ref_rng = SmallRng::seed_from_u64(cfg.seed);
    let mut ref_clocks: Vec<LocalClock> = (0..cfg.nodes)
        .map(|_| LocalClock::new(&mut ref_rng, cfg.oscillator))
        .collect();
    let mut ref_leaders = LeaderSchedule::new(cfg.nodes, cfg.rotation_epochs);
    let mut ref_failed = vec![false; cfg.nodes];

    // Engine side.
    let rng = std::rc::Rc::new(std::cell::RefCell::new(SmallRng::seed_from_u64(cfg.seed)));
    let mut engines: Vec<SyncEngine<SimTime>> = (0..cfg.nodes)
        .map(|i| {
            SyncEngine::new(
                i,
                LeaderSchedule::new(cfg.nodes, cfg.rotation_epochs),
                cfg.pll,
                SimTime::new(rng.clone(), cfg.oscillator),
            )
        })
        .collect();
    let mut transport = SimTransport::new(cfg.detector_noise_ps, rng);
    let mut failed = vec![false; cfg.nodes];

    for e in 0..3_000u64 {
        if e == fail_at {
            ref_leaders.mark_failed(0);
            ref_failed[0] = true;
            for en in engines.iter_mut() {
                en.mark_failed(0);
            }
            failed[0] = true;
        }
        for (i, c) in ref_clocks.iter_mut().enumerate() {
            if !ref_failed[i] {
                c.advance(&mut ref_rng, cfg.epoch_us);
            }
        }
        if let Some(lead) = ref_leaders.leader_at(e) {
            let ref_phase = ref_clocks[lead].phase_ps;
            for i in 0..cfg.nodes {
                if i == lead || ref_failed[i] {
                    continue;
                }
                let measured = ref_clocks[i].phase_ps - ref_phase
                    + gauss(&mut ref_rng) * cfg.detector_noise_ps;
                let (dp, df) = cfg.pll.update(measured);
                ref_clocks[i].adjust_phase(dp);
                ref_clocks[i].adjust_frequency(df);
            }
        }

        for (i, en) in engines.iter_mut().enumerate() {
            if !failed[i] {
                en.clock_mut().advance(cfg.epoch_us);
            }
        }
        if let Some(lead) = engines[0].leader_at(e) {
            engines[lead].step(e, &mut transport).unwrap();
            for i in 0..cfg.nodes {
                if i != lead && !failed[i] {
                    engines[i].step(e, &mut transport).unwrap();
                }
            }
        }

        for i in 0..cfg.nodes {
            assert_eq!(
                ref_clocks[i].phase_ps.to_bits(),
                engines[i].clock().phase_ps().to_bits(),
                "node {i} phase diverged at epoch {e}: {} vs {}",
                ref_clocks[i].phase_ps,
                engines[i].clock().phase_ps()
            );
        }
    }
}

// --- the same engine over real sockets ----------------------------------

#[test]
fn sync_engine_runs_over_udp_loopback() {
    // The seam's point: the identical SyncEngine, strict lockstep step()
    // and all, over real UDP sockets instead of SimTransport. Two nodes
    // in threads; node phases are OsTime-free here — a fixed-phase fake
    // keeps the test deterministic and fast.
    #[derive(Debug)]
    struct FixedClock(f64);
    impl TimeProvider for FixedClock {
        fn phase_ps(&self) -> f64 {
            self.0
        }
        fn adjust_phase(&mut self, d: f64) {
            self.0 += d;
        }
        fn adjust_frequency(&mut self, _d: f64) {}
    }

    let mut transports = UdpTransport::bind_cluster(2).unwrap();
    let mut t1 = transports.pop().unwrap();
    let mut t0 = transports.pop().unwrap();
    t1.set_timeout(std::time::Duration::from_millis(500));

    let follower = std::thread::spawn(move || {
        let mut en = SyncEngine::new(
            1,
            LeaderSchedule::new(2, 4),
            Pll::paper_tuning(),
            FixedClock(100.0),
        );
        let mut measured = Vec::new();
        for e in 0..4u64 {
            match en.step(e, &mut t1).unwrap() {
                sirius::sync::Step::Followed { measured_ps } => measured.push(measured_ps),
                other => panic!("node 1 expected to follow epoch {e}, got {other:?}"),
            }
        }
        (measured, en.clock().phase_ps())
    });

    let mut leader = SyncEngine::new(
        0,
        LeaderSchedule::new(2, 4),
        Pll::paper_tuning(),
        FixedClock(0.0),
    );
    // Epochs 0..4 all belong to node 0 (rotation 4).
    for e in 0..4u64 {
        assert!(matches!(
            leader.step(e, &mut t0).unwrap(),
            sirius::sync::Step::Led(_)
        ));
        std::thread::sleep(std::time::Duration::from_millis(5));
    }

    let (measured, final_phase) = follower.join().unwrap();
    assert_eq!(measured.len(), 4);
    // First measurement sees the full 100 ps offset; the PLL then pulls
    // the follower toward the leader (kp = 0.7 per update).
    assert_eq!(measured[0], 100.0);
    assert!(
        final_phase < 2.0,
        "follower phase {final_phase} ps after 4 PLL updates"
    );
}

#[test]
fn udp_taxonomy_maps_real_conditions() {
    // The three real-network failure modes the ISSUE names, end to end
    // through real sockets, each landing on its typed variant.
    let mut ts = UdpTransport::bind_cluster(2).unwrap();

    // Timeout: nothing in flight.
    ts[1].set_timeout(std::time::Duration::from_millis(15));
    assert!(matches!(
        ts[1].recv_beacon(0, 0),
        Err(SyncError::Timeout { .. })
    ));

    // Duplicate: the same epoch-0 beacon delivered twice.
    let b = sirius::sync::Beacon {
        leader: 0,
        epoch: 0,
        phase_ps: 1.0,
    };
    ts[0].broadcast(&b).unwrap();
    ts[0].broadcast(&b).unwrap();
    ts[1].set_timeout(std::time::Duration::from_millis(300));
    assert_eq!(ts[1].recv_beacon(0, 0), Ok(b));
    ts[1].set_timeout(std::time::Duration::from_millis(20));
    let _ = ts[1].recv_beacon(1, 0); // absorbs + classifies the dup
    assert_eq!(ts[1].stats.duplicates, 1);

    // Reordered: epoch 3 arrives after epoch 4 was already applied.
    ts[1].set_timeout(std::time::Duration::from_millis(300));
    ts[0]
        .broadcast(&sirius::sync::Beacon {
            leader: 1,
            epoch: 4,
            phase_ps: 4.0,
        })
        .unwrap();
    ts[0]
        .broadcast(&sirius::sync::Beacon {
            leader: 0,
            epoch: 3,
            phase_ps: 3.0,
        })
        .unwrap();
    assert!(ts[1].recv_beacon(4, 1).is_ok());
    ts[1].set_timeout(std::time::Duration::from_millis(20));
    let _ = ts[1].recv_beacon(5, 1); // absorbs + classifies the stale 3
    assert_eq!(ts[1].stats.stale, 1);
}
