//! Synchronization + calibration integrated with the network geometry:
//! per-node epoch offsets derived from noisy delay measurements keep slot
//! arrivals aligned well inside the guardband, and the network-wide
//! frequency sync stays inside the symbol budget.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sirius::core::SiriusConfig;
use sirius::sync::delay::{arrival_misalignment, epoch_start_offsets, DelayEstimator};
use sirius::sync::sync_sim::{run, SyncSimConfig};
use sirius_core::units::Duration;

#[test]
fn calibration_fits_inside_the_guardband_budget() {
    // 128 racks at fiber lengths 5..500 m, 50 ps timestamp noise, 100
    // loopback samples each (one per epoch: 160 us of calibration).
    let net = SiriusConfig::paper_sim();
    let mut rng = SmallRng::seed_from_u64(1);
    let true_delays: Vec<Duration> = (0..net.nodes)
        .map(|_| Duration::from_ps(rng.gen_range(5u64..500) * 5_000))
        .collect();
    let estimates: Vec<Duration> = true_delays
        .iter()
        .map(|&d| {
            let mut est = DelayEstimator::new();
            for _ in 0..100 {
                est.record(&mut rng, d, 50.0);
            }
            est.estimate().unwrap()
        })
        .collect();
    let offsets = epoch_start_offsets(&estimates);
    let mis = arrival_misalignment(&true_delays, &offsets);
    let worst_ps = mis.iter().map(|m| m.abs()).max().unwrap();
    // The 10 ns guardband absorbs laser tuning (912 ps) + CDR + preamble;
    // arrival misalignment must be a small fraction of what remains.
    assert!(
        worst_ps < 500,
        "misalignment {worst_ps} ps eats into the guardband"
    );
}

#[test]
fn sync_error_is_negligible_vs_symbol_time() {
    // §6: ±5 ps deviation vs 40 ps symbols at 25 GBaud — an order of
    // magnitude of margin for the phase-caching CDR.
    let r = run(&SyncSimConfig::paper(8), 40_000, &[]);
    let symbol_ps = 40.0;
    assert!(
        r.max_deviation_ps < symbol_ps / 4.0,
        "deviation {} ps vs symbol {} ps",
        r.max_deviation_ps,
        symbol_ps
    );
}

#[test]
fn sync_survives_cascading_leader_failures() {
    // Kill three successive leaders; the rotation must keep the rest
    // locked.
    let r = run(
        &SyncSimConfig::paper(8),
        60_000,
        &[(0, 20_000), (1, 30_000), (2, 40_000)],
    );
    assert!(
        r.max_deviation_ps < 15.0,
        "deviation after cascading failures: {} ps",
        r.max_deviation_ps
    );
}

#[test]
fn epoch_offsets_monotone_in_distance() {
    // Sanity of the §A.2 rule: farther node starts earlier.
    let delays: Vec<Duration> = (1..=10).map(|k| Duration::from_ps(k * 100_000)).collect();
    let offsets = epoch_start_offsets(&delays);
    for w in offsets.windows(2) {
        assert!(w[0] >= w[1], "offsets must shrink with distance");
    }
}
