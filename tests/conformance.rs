//! Workspace conformance suite: the invariant audit and the determinism
//! guarantee, exercised at the paper's deployment scale (§7: 128 nodes,
//! 16-port gratings, 3072 servers) for all three congestion-control modes.
//!
//! Two properties every figure in the reproduction rests on:
//!
//! 1. **Invariants hold at scale.** The audit layer re-derives cell
//!    conservation, the §4.3 relay bound, in-order release, and
//!    receive-port exclusivity every epoch; a clean run reports zero
//!    violations in all three modes.
//! 2. **Runs are reproducible.** Identical `(config, seed)` produces a
//!    bit-identical delivered-cell digest and flow table, so any reported
//!    number can be regenerated exactly.

use sirius::core::SiriusConfig;
use sirius::sim::{CcMode, RunMetrics, SiriusSim, SiriusSimConfig};
use sirius::workload::{Flow, Pareto, Pattern, WorkloadSpec};

/// Paper-scale network with a short, fully-completing workload: flow
/// sizes are truncated at 100 KB so the suite stays fast in debug builds
/// while still spanning hundreds of epochs of fabric activity.
fn paper_workload(net: &SiriusConfig, load: f64, flows: u64, seed: u64) -> Vec<Flow> {
    WorkloadSpec {
        servers: net.total_servers() as u32,
        server_rate: net.server_rate,
        load,
        sizes: Pareto::paper_default().truncated(1e5),
        flows,
        pattern: Pattern::Uniform,
        seed,
    }
    .generate()
}

fn run_audited(mode: CcMode, seed: u64) -> (RunMetrics, u64) {
    let net = SiriusConfig::paper_sim();
    let wl = paper_workload(&net, 0.3, 300, 17);
    let expect: u64 = wl.iter().map(|f| f.bytes).sum();
    let m = SiriusSim::new(
        SiriusSimConfig::new(net)
            .with_mode(mode)
            .with_seed(seed)
            .with_audit(true),
    )
    .run(&wl);
    (m, expect)
}

fn assert_clean(mode: CcMode) {
    let (m, expect) = run_audited(mode, 3);
    assert_eq!(m.incomplete_flows, 0, "{mode:?}: flows stuck at low load");
    assert_eq!(m.delivered_bytes, expect, "{mode:?}: byte conservation");
    let audit = m.audit.expect("audit was enabled");
    assert!(
        audit.is_clean(),
        "{mode:?}: {} violations, first: {:?}",
        audit.total_violations,
        audit.violations.first()
    );
    assert!(audit.epochs_checked > 0);
    assert_eq!(audit.cells_released, audit.cells_injected);
    assert_eq!(audit.cells_buffered, 0);
    assert_eq!(audit.cells_blackholed, 0);
}

#[test]
fn protocol_paper_scale_audit_is_clean() {
    assert_clean(CcMode::Protocol);
}

#[test]
fn ideal_paper_scale_audit_is_clean() {
    assert_clean(CcMode::Ideal);
}

#[test]
fn greedy_paper_scale_audit_is_clean() {
    // Greedy abandons the §4.3 bound (the audit skips that check for it)
    // but conservation, in-order release, and RX exclusivity still hold.
    assert_clean(CcMode::Greedy);
}

#[test]
fn double_run_is_bit_identical_in_every_mode() {
    for mode in [CcMode::Protocol, CcMode::Ideal, CcMode::Greedy] {
        let (a, _) = run_audited(mode, 5);
        let (b, _) = run_audited(mode, 5);
        assert_eq!(a.digest, b.digest, "{mode:?}: digest diverged");
        assert_eq!(a.delivered_bytes, b.delivered_bytes);
        assert_eq!(a.span, b.span);
        assert_eq!(a.peak_node_fabric_cells, b.peak_node_fabric_cells);
        assert_eq!(a.peak_node_local_cells, b.peak_node_local_cells);
        assert_eq!(a.peak_reorder_flow_bytes, b.peak_reorder_flow_bytes);
        let fa: Vec<_> = a
            .flows
            .iter()
            .map(|f| (f.completion, f.delivered))
            .collect();
        let fb: Vec<_> = b
            .flows
            .iter()
            .map(|f| (f.completion, f.delivered))
            .collect();
        assert_eq!(fa, fb, "{mode:?}: flow tables diverged");
    }
}

#[test]
fn different_seeds_change_the_protocol_run() {
    // The protocol's intermediate choice is randomized, so distinct sim
    // seeds must explore distinct executions (same workload throughout).
    let net = SiriusConfig::paper_sim();
    let wl = paper_workload(&net, 0.3, 300, 17);
    let run = |seed| {
        SiriusSim::new(
            SiriusSimConfig::new(net.clone())
                .with_seed(seed)
                .with_audit(true),
        )
        .run(&wl)
    };
    let a = run(1);
    let b = run(2);
    assert_ne!(a.digest, b.digest, "seed does not influence the execution");
    // Both still deliver everything, cleanly.
    assert_eq!(a.delivered_bytes, b.delivered_bytes);
    assert!(a.audit.unwrap().is_clean());
    assert!(b.audit.unwrap().is_clean());
}
