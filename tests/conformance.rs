//! Workspace conformance suite: the invariant audit and the determinism
//! guarantee, exercised at the paper's deployment scale (§7: 128 nodes,
//! 16-port gratings, 3072 servers) for all three congestion-control modes.
//!
//! Two properties every figure in the reproduction rests on:
//!
//! 1. **Invariants hold at scale.** The audit layer re-derives cell
//!    conservation, the §4.3 relay bound, in-order release, and
//!    receive-port exclusivity every epoch; a clean run reports zero
//!    violations in all three modes.
//! 2. **Runs are reproducible.** Identical `(config, seed)` produces a
//!    bit-identical delivered-cell digest and flow table, so any reported
//!    number can be regenerated exactly.

use sirius::core::topology::NodeId;
use sirius::core::SiriusConfig;
use sirius::sim::{
    CcMode, EsnConfig, EsnSim, FaultInjector, RunMetrics, SiriusSim, SiriusSimConfig,
};
use sirius::workload::{Flow, Pareto, Pattern, WorkloadSpec};

/// Paper-scale network with a short, fully-completing workload: flow
/// sizes are truncated at 100 KB so the suite stays fast in debug builds
/// while still spanning hundreds of epochs of fabric activity.
fn paper_workload(net: &SiriusConfig, load: f64, flows: u64, seed: u64) -> Vec<Flow> {
    WorkloadSpec {
        servers: net.total_servers() as u32,
        server_rate: net.server_rate,
        load,
        sizes: Pareto::paper_default().truncated(1e5),
        flows,
        pattern: Pattern::Uniform,
        seed,
    }
    .generate()
}

fn run_audited(mode: CcMode, seed: u64) -> (RunMetrics, u64) {
    let net = SiriusConfig::paper_sim();
    let wl = paper_workload(&net, 0.3, 300, 17);
    let expect: u64 = wl.iter().map(|f| f.bytes).sum();
    let m = SiriusSim::new(
        SiriusSimConfig::new(net)
            .with_mode(mode)
            .with_seed(seed)
            .with_audit(true),
    )
    .run(&wl);
    (m, expect)
}

fn assert_clean(mode: CcMode) {
    let (m, expect) = run_audited(mode, 3);
    assert_eq!(m.incomplete_flows, 0, "{mode:?}: flows stuck at low load");
    assert_eq!(m.delivered_bytes, expect, "{mode:?}: byte conservation");
    let audit = m.audit.expect("audit was enabled");
    assert!(
        audit.is_clean(),
        "{mode:?}: {} violations, first: {:?}",
        audit.total_violations,
        audit.violations.first()
    );
    assert!(audit.epochs_checked > 0);
    assert_eq!(audit.cells_released, audit.cells_injected);
    assert_eq!(audit.cells_buffered, 0);
    assert_eq!(audit.cells_blackholed, 0);
}

#[test]
fn protocol_paper_scale_audit_is_clean() {
    assert_clean(CcMode::Protocol);
}

#[test]
fn ideal_paper_scale_audit_is_clean() {
    assert_clean(CcMode::Ideal);
}

#[test]
fn greedy_paper_scale_audit_is_clean() {
    // Greedy abandons the §4.3 bound (the audit skips that check for it)
    // but conservation, in-order release, and RX exclusivity still hold.
    assert_clean(CcMode::Greedy);
}

#[test]
fn double_run_is_bit_identical_in_every_mode() {
    for mode in [CcMode::Protocol, CcMode::Ideal, CcMode::Greedy] {
        let (a, _) = run_audited(mode, 5);
        let (b, _) = run_audited(mode, 5);
        assert_eq!(a.digest, b.digest, "{mode:?}: digest diverged");
        assert_eq!(a.delivered_bytes, b.delivered_bytes);
        assert_eq!(a.span, b.span);
        assert_eq!(a.peak_node_fabric_cells, b.peak_node_fabric_cells);
        assert_eq!(a.peak_node_local_cells, b.peak_node_local_cells);
        assert_eq!(a.peak_reorder_flow_bytes, b.peak_reorder_flow_bytes);
        let fa: Vec<_> = a
            .flows
            .iter()
            .map(|f| (f.completion, f.delivered))
            .collect();
        let fb: Vec<_> = b
            .flows
            .iter()
            .map(|f| (f.completion, f.delivered))
            .collect();
        assert_eq!(fa, fb, "{mode:?}: flow tables diverged");
    }
}

#[test]
fn failure_detection_is_emergent_at_paper_scale() {
    // Kill one node mid-run with NO hint to the routing plane: the only
    // path from the scripted crash to an exclusion is through per-node
    // silence detectors fed by actual slot receptions. The failure-aware
    // audit stays on, so every blackholed cell must fall inside the
    // declared crash window and every suspicion must be justified.
    let net = SiriusConfig::paper_sim();
    let wl = paper_workload(&net, 0.3, 300, 17);
    let victim = NodeId(40);
    let inj = FaultInjector::new(3).crash(victim, 5);
    let m = SiriusSim::new(
        SiriusSimConfig::new(net.clone())
            .with_seed(3)
            .with_audit(true),
    )
    .with_faults(inj)
    .run(&wl);
    let fr = m.fault.expect("fault report missing");
    let rec = &fr.failures[0];
    assert_eq!(rec.node, victim);
    let threshold = sirius::core::fault::FaultConfig::default().silence_threshold;
    let lat = rec.detection_epochs().expect("crash never suspected");
    assert!(
        lat <= threshold + 1,
        "detection took {lat} epochs (threshold {threshold})"
    );
    assert_eq!(
        rec.excluded_at.unwrap(),
        rec.first_suspected.unwrap() + 1,
        "exclusion must land one update epoch after suspicion"
    );
    // All losses attributed: the audit saw only justified suspicions and
    // only blackholes inside the declared crash window.
    let audit = m.audit.expect("audit was enabled");
    assert!(
        audit.is_clean(),
        "failure-aware audit violations: {:?}",
        audit.violations.first()
    );
    assert_eq!(audit.false_suspicions, 0);
    // The §4.5 rule: capacity drops by exactly 1/N.
    let expect = 1.0 - 1.0 / net.nodes as f64;
    assert!((fr.capacity_factor_end - expect).abs() < 1e-9);
}

#[test]
fn esn_fluid_audit_is_clean_at_paper_scale() {
    // The electrical baselines get the same treatment as the cell-level
    // simulator: an independent re-check of the water-filling rates
    // (feasibility, non-negativity, max-min maximality) plus end-of-run
    // byte conservation.
    let net = SiriusConfig::paper_sim();
    let wl = paper_workload(&net, 0.3, 300, 17);
    for osub in [1.0, 3.0] {
        let m = EsnSim::new(EsnConfig {
            servers: net.total_servers() as u32,
            server_rate: net.server_rate,
            servers_per_rack: net.servers_per_node as u32,
            oversubscription: osub,
            base_latency: sirius::core::units::Duration::from_us(3),
        })
        .with_audit(true)
        .run(&wl);
        let audit = m.audit.expect("esn audit was enabled");
        assert!(
            audit.is_clean(),
            "ESN(1:{osub}) violations: {:?}",
            audit.violations.first()
        );
        assert!(audit.epochs_checked > 0);
        assert_eq!(audit.cells_released, audit.cells_injected);
    }
}

#[test]
fn different_seeds_change_the_protocol_run() {
    // The protocol's intermediate choice is randomized, so distinct sim
    // seeds must explore distinct executions (same workload throughout).
    let net = SiriusConfig::paper_sim();
    let wl = paper_workload(&net, 0.3, 300, 17);
    let run = |seed| {
        SiriusSim::new(
            SiriusSimConfig::new(net.clone())
                .with_seed(seed)
                .with_audit(true),
        )
        .run(&wl)
    };
    let a = run(1);
    let b = run(2);
    assert_ne!(a.digest, b.digest, "seed does not influence the execution");
    // Both still deliver everything, cleanly.
    assert_eq!(a.delivered_bytes, b.delivered_bytes);
    assert!(a.audit.unwrap().is_clean());
    assert!(b.audit.unwrap().is_clean());
}
