//! Integer time, rate and size units used across the whole workspace.
//!
//! Every simulator in this repository uses **picosecond-granularity integer
//! time**. Sirius end-to-end reconfiguration is measured in hundreds of
//! picoseconds (the custom laser chip tunes in 912 ps, the time-sync protocol
//! is accurate to ±5 ps), so nanoseconds are too coarse and floating point
//! would accumulate error over the ~10^16 ps of a simulated day. A `u64`
//! picosecond counter covers ~213 days, far more than any experiment needs.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

/// An instant in simulated time, in picoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(pub u64);

/// A span of simulated time, in picoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(pub u64);

impl Duration {
    pub const ZERO: Duration = Duration(0);

    /// One picosecond.
    pub const fn from_ps(ps: u64) -> Duration {
        Duration(ps)
    }
    /// One nanosecond = 1 000 ps.
    pub const fn from_ns(ns: u64) -> Duration {
        Duration(ns * 1_000)
    }
    /// One microsecond = 1 000 000 ps.
    pub const fn from_us(us: u64) -> Duration {
        Duration(us * 1_000_000)
    }
    /// One millisecond.
    pub const fn from_ms(ms: u64) -> Duration {
        Duration(ms * 1_000_000_000)
    }
    /// One second.
    pub const fn from_secs(s: u64) -> Duration {
        Duration(s * 1_000_000_000_000)
    }
    /// Fractional nanoseconds, rounded to the nearest picosecond.
    pub fn from_ns_f64(ns: f64) -> Duration {
        assert!(ns >= 0.0, "negative duration");
        Duration((ns * 1_000.0).round() as u64)
    }

    pub const fn as_ps(self) -> u64 {
        self.0
    }
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000_000.0
    }

    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }

    pub fn max(self, other: Duration) -> Duration {
        Duration(self.0.max(other.0))
    }
    pub fn min(self, other: Duration) -> Duration {
        Duration(self.0.min(other.0))
    }

    /// Multiply by a non-negative float, rounding to the nearest picosecond.
    pub fn mul_f64(self, k: f64) -> Duration {
        assert!(k >= 0.0, "negative scale");
        Duration((self.0 as f64 * k).round() as u64)
    }
}

impl Time {
    pub const ZERO: Time = Time(0);

    pub const fn from_ps(ps: u64) -> Time {
        Time(ps)
    }
    pub const fn as_ps(self) -> u64 {
        self.0
    }
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000_000.0
    }

    /// Duration since an earlier instant. Panics if `earlier` is later.
    pub fn since(self, earlier: Time) -> Duration {
        Duration(
            self.0
                .checked_sub(earlier.0)
                .expect("Time::since: earlier instant is in the future"),
        )
    }

    pub fn saturating_since(self, earlier: Time) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }
}

impl Add<Duration> for Time {
    type Output = Time;
    fn add(self, rhs: Duration) -> Time {
        Time(self.0 + rhs.0)
    }
}
impl AddAssign<Duration> for Time {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}
impl Sub<Duration> for Time {
    type Output = Time;
    fn sub(self, rhs: Duration) -> Time {
        Time(self.0 - rhs.0)
    }
}
impl Sub<Time> for Time {
    type Output = Duration;
    fn sub(self, rhs: Time) -> Duration {
        self.since(rhs)
    }
}
impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}
impl AddAssign for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}
impl Sub for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        Duration(
            self.0
                .checked_sub(rhs.0)
                .expect("Duration subtraction underflow"),
        )
    }
}
impl SubAssign for Duration {
    fn sub_assign(&mut self, rhs: Duration) {
        *self = *self - rhs;
    }
}
impl Mul<u64> for Duration {
    type Output = Duration;
    fn mul(self, rhs: u64) -> Duration {
        Duration(self.0 * rhs)
    }
}
impl Div<u64> for Duration {
    type Output = Duration;
    fn div(self, rhs: u64) -> Duration {
        Duration(self.0 / rhs)
    }
}
impl Div<Duration> for Duration {
    type Output = u64;
    fn div(self, rhs: Duration) -> u64 {
        self.0 / rhs.0
    }
}
impl Rem<Duration> for Duration {
    type Output = Duration;
    fn rem(self, rhs: Duration) -> Duration {
        Duration(self.0 % rhs.0)
    }
}
impl Sum for Duration {
    fn sum<I: Iterator<Item = Duration>>(iter: I) -> Duration {
        Duration(iter.map(|d| d.0).sum())
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ps = self.0;
        if ps >= 1_000_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ps >= 1_000_000_000 {
            write!(f, "{:.3}ms", self.as_ms_f64())
        } else if ps >= 1_000_000 {
            write!(f, "{:.3}us", self.as_us_f64())
        } else if ps >= 1_000 {
            write!(f, "{:.3}ns", self.as_ns_f64())
        } else {
            write!(f, "{}ps", ps)
        }
    }
}
impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", Duration(self.0))
    }
}

/// A link or channel rate in bits per second.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Rate(pub u64);

impl Rate {
    pub const fn from_gbps(g: u64) -> Rate {
        Rate(g * 1_000_000_000)
    }
    pub const fn from_bps(b: u64) -> Rate {
        Rate(b)
    }
    pub const fn as_bps(self) -> u64 {
        self.0
    }
    pub fn as_gbps_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time to serialize `bytes` onto a link of this rate, rounded up to a
    /// whole picosecond.
    pub fn tx_time(self, bytes: u64) -> Duration {
        assert!(self.0 > 0, "zero rate");
        // ps = bits * 1e12 / bps, computed in u128 to avoid overflow.
        let bits = (bytes as u128) * 8;
        let ps = (bits * 1_000_000_000_000).div_ceil(self.0 as u128);
        Duration(ps as u64)
    }

    /// Bytes fully serialized in `d` at this rate (rounded down).
    pub fn bytes_in(self, d: Duration) -> u64 {
        ((d.0 as u128 * self.0 as u128) / (8 * 1_000_000_000_000)) as u64
    }

    pub fn mul_f64(self, k: f64) -> Rate {
        assert!(k >= 0.0);
        Rate((self.0 as f64 * k).round() as u64)
    }
}

impl Mul<u64> for Rate {
    type Output = Rate;
    fn mul(self, rhs: u64) -> Rate {
        Rate(self.0 * rhs)
    }
}

/// Speed of light in fiber: ~2/3 c, i.e. light covers 1 m in ~5 ns.
/// Expressed as picoseconds of propagation delay per metre of fiber.
pub const FIBER_PS_PER_METER: u64 = 5_000;

/// Propagation delay along `meters` of standard single-mode fiber.
pub fn fiber_delay(meters: u64) -> Duration {
    Duration(meters * FIBER_PS_PER_METER)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(Duration::from_ns(1), Duration::from_ps(1_000));
        assert_eq!(Duration::from_us(1), Duration::from_ns(1_000));
        assert_eq!(Duration::from_ms(1), Duration::from_us(1_000));
        assert_eq!(Duration::from_secs(1), Duration::from_ms(1_000));
    }

    #[test]
    fn a_simulated_day_fits_in_u64() {
        let day = Duration::from_secs(24 * 3600);
        assert!(day.as_ps() < u64::MAX / 100);
    }

    #[test]
    fn tx_time_matches_paper_cell_maths() {
        // The paper: 562-byte cells on 50 Gbps channels occupy ~90 ns slots.
        let d = Rate::from_gbps(50).tx_time(562);
        assert_eq!(d, Duration::from_ps(89_920));
        // 576 B packets at 50 Gb/s: the paper quotes 92 ns.
        let d = Rate::from_gbps(50).tx_time(576);
        assert_eq!(d, Duration::from_ps(92_160));
    }

    #[test]
    fn tx_time_rounds_up() {
        // 1 byte at 3 bps: 8 bits / 3 bps = 2.666... s.
        let d = Rate::from_bps(3).tx_time(1);
        assert_eq!(d.as_ps(), 2_666_666_666_667);
    }

    #[test]
    fn bytes_in_inverts_tx_time() {
        let r = Rate::from_gbps(50);
        for n in [1u64, 7, 64, 562, 1500, 9000] {
            let d = r.tx_time(n);
            assert!(r.bytes_in(d) >= n);
            assert!(r.bytes_in(d) <= n + 1);
        }
    }

    #[test]
    fn time_arithmetic() {
        let t = Time::ZERO + Duration::from_ns(100);
        assert_eq!(t.since(Time::ZERO), Duration::from_ns(100));
        assert_eq!(t - Time::ZERO, Duration::from_ns(100));
        assert_eq!((t + Duration::from_ns(50)) - t, Duration::from_ns(50));
    }

    #[test]
    #[should_panic(expected = "earlier instant is in the future")]
    fn since_panics_on_reversed_order() {
        let _ = Time::ZERO.since(Time::from_ps(1));
    }

    #[test]
    fn fiber_delay_500m_is_2_5us() {
        // A 500 m datacenter span: the paper quotes 2.5 us of detour latency.
        assert_eq!(fiber_delay(500), Duration::from_ns(2_500));
        assert_eq!(fiber_delay(500).as_us_f64(), 2.5);
    }

    #[test]
    fn display_picks_sensible_unit() {
        assert_eq!(format!("{}", Duration::from_ps(912)), "912ps");
        assert_eq!(format!("{}", Duration::from_ns_f64(3.84)), "3.840ns");
        assert_eq!(format!("{}", Duration::from_us(100)), "100.000us");
    }

    #[test]
    fn duration_scaling() {
        assert_eq!(Duration::from_ns(100).mul_f64(0.1), Duration::from_ns(10));
        assert_eq!(
            Duration::from_ns(100) * 16,
            Duration::from_us(1) + Duration::from_ns(600)
        );
        assert_eq!(Duration::from_ns(100) / Duration::from_ns(30), 3);
    }
}
