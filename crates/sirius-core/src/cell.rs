//! Fixed-size cells — the unit of transmission in Sirius (§4.2).
//!
//! Sirius transmits fixed-size cells so that every timeslot carries exactly
//! one cell; variable-size packets are segmented into cells at the source
//! server and reassembled (in order, via [`crate::reorder`]) at the
//! destination. Requests and grants of the congestion-control protocol are
//! piggybacked in the cell header (§4.3), so control traffic consumes no
//! extra slots; the simulator models this by exchanging control messages at
//! the same connection opportunities that carry (possibly idle) cells.

use crate::topology::{NodeId, ServerId};

/// Identifier of an application flow (five-tuple stand-in).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowId(pub u64);

/// A fixed-size cell in flight. `Copy` and 32 bytes so the hot loop never
/// heap-allocates per cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cell {
    /// Flow this cell belongs to.
    pub flow: FlowId,
    /// Sequence number of this cell within the flow (for reordering).
    pub seq: u32,
    /// Application payload bytes carried (== payload capacity except for the
    /// final runt cell of a flow).
    pub payload: u32,
    /// Node that originated the cell.
    pub src: NodeId,
    /// Final destination node.
    pub dst: NodeId,
    /// Destination server (delivery + reorder happens per server).
    pub dst_server: ServerId,
    /// True on the last cell of the flow.
    pub last: bool,
}

impl Cell {
    /// Number of cells needed to carry `bytes` of payload with the given
    /// per-cell payload capacity.
    pub fn count_for(bytes: u64, payload_capacity: u32) -> u64 {
        debug_assert!(payload_capacity > 0);
        bytes.div_ceil(payload_capacity as u64).max(1)
    }

    /// Payload carried by cell `seq` (0-based) of a flow of `bytes` total.
    pub fn payload_of(seq: u64, bytes: u64, payload_capacity: u32) -> u32 {
        let n = Cell::count_for(bytes, payload_capacity);
        debug_assert!(seq < n);
        if seq + 1 < n {
            payload_capacity
        } else {
            // Final cell carries the remainder (or a zero-byte flow's
            // single empty cell).
            (bytes - seq * payload_capacity as u64) as u32
        }
    }
}

/// A congestion-control request: "may I send one cell destined to `dst`
/// through you?" — piggybacked from `from` to the intermediate carrying it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    pub from: NodeId,
    pub dst: NodeId,
}

/// A congestion-control grant: "send me one cell destined to `dst`" —
/// piggybacked from the intermediate `from` back to the requester.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grant {
    pub from: NodeId,
    pub dst: NodeId,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_is_small() {
        // Keep the hot-path struct compact; the simulator moves millions.
        assert!(std::mem::size_of::<Cell>() <= 40);
    }

    #[test]
    fn count_for_rounds_up() {
        assert_eq!(Cell::count_for(1, 540), 1);
        assert_eq!(Cell::count_for(540, 540), 1);
        assert_eq!(Cell::count_for(541, 540), 2);
        assert_eq!(Cell::count_for(5400, 540), 10);
        // Zero-byte flows still need one cell to signal completion.
        assert_eq!(Cell::count_for(0, 540), 1);
    }

    #[test]
    fn payload_of_splits_exactly() {
        let bytes = 1234u64;
        let cap = 540u32;
        let n = Cell::count_for(bytes, cap);
        let total: u64 = (0..n).map(|s| Cell::payload_of(s, bytes, cap) as u64).sum();
        assert_eq!(total, bytes);
        assert_eq!(Cell::payload_of(0, bytes, cap), 540);
        assert_eq!(Cell::payload_of(2, bytes, cap), 154);
    }

    #[test]
    fn payload_of_full_multiple() {
        // Flow of exactly k cells: last cell is full.
        assert_eq!(Cell::payload_of(1, 1080, 540), 540);
    }
}
