//! Network-wide configuration for a Sirius deployment.

use crate::units::{Duration, Rate};
use std::fmt;

/// Errors raised when validating a [`SiriusConfig`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// The node count must be a positive multiple of the grating port count.
    NodesNotMultipleOfGrating { nodes: usize, grating_ports: usize },
    /// Base uplinks must equal `nodes / grating_ports` so that one epoch
    /// connects every node pair exactly once.
    WrongBaseUplinks { expected: usize, got: usize },
    /// A field that must be positive was zero.
    ZeroField(&'static str),
    /// The guardband must be shorter than the slot.
    GuardbandTooLong { slot: Duration, guard: Duration },
    /// Queue threshold Q must be at least 2 (see paper §4.3).
    QueueThresholdTooSmall(usize),
    /// More total uplinks than can be wired to distinct gratings.
    TooManyUplinks { uplinks: usize, max: usize },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::NodesNotMultipleOfGrating { nodes, grating_ports } => write!(
                f,
                "node count {nodes} is not a positive multiple of grating port count {grating_ports}"
            ),
            ConfigError::WrongBaseUplinks { expected, got } => write!(
                f,
                "base uplink count {got} != nodes/grating_ports = {expected}"
            ),
            ConfigError::ZeroField(name) => write!(f, "{name} must be positive"),
            ConfigError::GuardbandTooLong { slot, guard } => {
                write!(f, "guardband {guard} must be shorter than slot {slot}")
            }
            ConfigError::QueueThresholdTooSmall(q) => {
                write!(f, "queue threshold Q={q} but the protocol requires Q >= 2")
            }
            ConfigError::TooManyUplinks { uplinks, max } => {
                write!(f, "{uplinks} uplinks requested but at most {max} are wirable")
            }
        }
    }
}
impl std::error::Error for ConfigError {}

/// Static description of a Sirius deployment (rack-based by default).
///
/// The defaults reproduce the paper's §7 simulation setup: 128 racks × 24
/// servers, 8 base uplinks of 50 Gbps each (so 16-port gratings and a 16-slot
/// epoch), 90 ns transmission slots + 10 ns guardband, 562-byte cells,
/// uplink factor 1.5 and congestion-control queue threshold Q = 4.
#[derive(Debug, Clone, PartialEq)]
pub struct SiriusConfig {
    /// Number of nodes attached to the optical core (racks, or servers in a
    /// server-based deployment).
    pub nodes: usize,
    /// Ports per grating (= wavelengths each tunable laser cycles through,
    /// = timeslots per epoch).
    pub grating_ports: usize,
    /// Base uplinks per node; must equal `nodes / grating_ports` so the base
    /// schedule connects each pair exactly once per epoch.
    pub base_uplinks: usize,
    /// Multiplier on uplink count to compensate for the 2x worst-case
    /// throughput loss of Valiant load balancing (paper uses 1.5).
    pub uplink_factor: f64,
    /// Rate of one optical channel / uplink (50 Gbps in the paper).
    pub channel_rate: Rate,
    /// Total cell size on the wire, including preamble and headers.
    pub cell_bytes: u32,
    /// Cell payload capacity (cell minus headers/preamble/FEC share).
    pub payload_bytes: u32,
    /// Guardband between slots during which the path reconfigures.
    pub guardband: Duration,
    /// Congestion-control relay-queue threshold Q (paper default 4).
    pub queue_threshold: usize,
    /// Loss backstop: epochs after which an outstanding grant whose cell
    /// never arrived (nor was declined) is reclaimed. Unused grants are
    /// normally released by an explicit piggybacked decline; this timeout
    /// only fires when a granted cell is lost, e.g. to a node failure.
    /// (The paper leaves grant-loss handling unspecified.)
    pub grant_timeout_epochs: u64,
    /// Servers attached to each node (rack deployment); 1 = server-based.
    pub servers_per_node: usize,
    /// Downlink rate from the node switch to each server.
    pub server_rate: Rate,
    /// One-way propagation delay between a node and the grating layer,
    /// applied to every cell (uniform fiber lengths after the §A.2
    /// per-node epoch-offset calibration).
    pub propagation: Duration,
}

impl Default for SiriusConfig {
    fn default() -> Self {
        SiriusConfig::paper_sim()
    }
}

impl SiriusConfig {
    /// The exact large-scale simulation setup of the paper's §7.
    pub fn paper_sim() -> SiriusConfig {
        SiriusConfig {
            nodes: 128,
            grating_ports: 16,
            base_uplinks: 8,
            uplink_factor: 1.5,
            channel_rate: Rate::from_gbps(50),
            cell_bytes: 562,
            // 562 B total minus preamble + header overhead. We budget 22 B:
            // 8 B preamble/sync, 14 B routing/seq/piggyback header, leaving
            // a 540 B payload (the paper quotes "576 B cells plus overhead"
            // for its 100 ns example and 562 B total for the 90 ns slots).
            payload_bytes: 540,
            guardband: Duration::from_ns(10),
            queue_threshold: 4,
            grant_timeout_epochs: 256,
            servers_per_node: 24,
            server_rate: Rate::from_gbps(50),
            propagation: Duration::from_ns(500), // 100 m scale fiber run
        }
    }

    /// A small four-node network mirroring the paper's Fig. 5 example and
    /// hardware prototype scale: 4 nodes, 2 uplinks, 2-port gratings.
    pub fn four_node_prototype() -> SiriusConfig {
        SiriusConfig {
            nodes: 4,
            grating_ports: 2,
            base_uplinks: 2,
            uplink_factor: 1.0,
            servers_per_node: 1,
            ..SiriusConfig::paper_sim()
        }
    }

    /// A reduced-scale variant for fast tests/benches: `nodes` must be a
    /// multiple of `grating_ports`.
    pub fn scaled(nodes: usize, grating_ports: usize) -> SiriusConfig {
        SiriusConfig {
            nodes,
            grating_ports,
            base_uplinks: nodes / grating_ports,
            ..SiriusConfig::paper_sim()
        }
    }

    /// Total uplinks per node after applying the load-balancing factor.
    pub fn total_uplinks(&self) -> usize {
        ((self.base_uplinks as f64) * self.uplink_factor).round() as usize
    }

    /// Serialization time of one cell on one channel.
    pub fn cell_tx_time(&self) -> Duration {
        self.channel_rate.tx_time(self.cell_bytes as u64)
    }

    /// Full slot duration = cell transmission + guardband.
    pub fn slot(&self) -> Duration {
        self.cell_tx_time() + self.guardband
    }

    /// Slots per epoch (= grating ports = wavelengths cycled).
    pub fn epoch_slots(&self) -> u64 {
        self.grating_ports as u64
    }

    /// Wall-clock length of one epoch.
    pub fn epoch(&self) -> Duration {
        self.slot() * self.epoch_slots()
    }

    /// Aggregate base uplink bandwidth of one node (before the uplink
    /// factor), i.e. the bandwidth the node is entitled to inject.
    pub fn node_bandwidth(&self) -> Rate {
        self.channel_rate * self.base_uplinks as u64
    }

    /// Number of node groups; uplink `u` of a node in group `k` is wired to
    /// the grating serving group `(k + shift(u)) mod groups`.
    pub fn groups(&self) -> usize {
        self.nodes / self.grating_ports
    }

    /// Validate all invariants. Call once before building a network.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.nodes == 0 {
            return Err(ConfigError::ZeroField("nodes"));
        }
        if self.grating_ports == 0 {
            return Err(ConfigError::ZeroField("grating_ports"));
        }
        if !self.nodes.is_multiple_of(self.grating_ports) {
            return Err(ConfigError::NodesNotMultipleOfGrating {
                nodes: self.nodes,
                grating_ports: self.grating_ports,
            });
        }
        let expected = self.nodes / self.grating_ports;
        if self.base_uplinks != expected {
            return Err(ConfigError::WrongBaseUplinks {
                expected,
                got: self.base_uplinks,
            });
        }
        if self.uplink_factor <= 0.0 {
            return Err(ConfigError::ZeroField("uplink_factor"));
        }
        if self.channel_rate.as_bps() == 0 {
            return Err(ConfigError::ZeroField("channel_rate"));
        }
        if self.cell_bytes == 0 {
            return Err(ConfigError::ZeroField("cell_bytes"));
        }
        if self.payload_bytes == 0 || self.payload_bytes > self.cell_bytes {
            return Err(ConfigError::ZeroField("payload_bytes"));
        }
        if self.queue_threshold < 2 {
            return Err(ConfigError::QueueThresholdTooSmall(self.queue_threshold));
        }
        if self.servers_per_node == 0 {
            return Err(ConfigError::ZeroField("servers_per_node"));
        }
        // Each uplink is wired to a distinct (group-shift) grating column; we
        // cannot usefully wire more uplinks than `nodes` (shift space).
        if self.total_uplinks() > self.nodes {
            return Err(ConfigError::TooManyUplinks {
                uplinks: self.total_uplinks(),
                max: self.nodes,
            });
        }
        Ok(())
    }

    /// Total servers in the deployment.
    pub fn total_servers(&self) -> usize {
        self.nodes * self.servers_per_node
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sim_validates() {
        let c = SiriusConfig::paper_sim();
        c.validate().unwrap();
        assert_eq!(c.total_uplinks(), 12);
        assert_eq!(c.groups(), 8);
        assert_eq!(c.total_servers(), 3072);
    }

    #[test]
    fn paper_slot_and_epoch_durations() {
        let c = SiriusConfig::paper_sim();
        // 562 B at 50 Gbps = 89.92 ns; +10 ns guard = 99.92 ns ~ the paper's
        // "total slot duration of 100 ns".
        assert_eq!(c.cell_tx_time(), Duration::from_ps(89_920));
        assert_eq!(c.slot(), Duration::from_ps(99_920));
        // 16-slot epoch ~ 1.6 us, as in §4.2.
        let epoch_us = c.epoch().as_us_f64();
        assert!((epoch_us - 1.6).abs() < 0.01, "epoch = {epoch_us} us");
    }

    #[test]
    fn four_node_prototype_validates() {
        let c = SiriusConfig::four_node_prototype();
        c.validate().unwrap();
        assert_eq!(c.total_uplinks(), 2);
        assert_eq!(c.groups(), 2);
    }

    #[test]
    fn rejects_bad_geometry() {
        let mut c = SiriusConfig::paper_sim();
        c.nodes = 100; // not a multiple of 16
        assert!(matches!(
            c.validate(),
            Err(ConfigError::NodesNotMultipleOfGrating { .. })
        ));

        let mut c = SiriusConfig::paper_sim();
        c.base_uplinks = 7;
        assert!(matches!(
            c.validate(),
            Err(ConfigError::WrongBaseUplinks { .. })
        ));

        let mut c = SiriusConfig::paper_sim();
        c.queue_threshold = 1;
        assert!(matches!(
            c.validate(),
            Err(ConfigError::QueueThresholdTooSmall(1))
        ));

        let mut c = SiriusConfig::paper_sim();
        c.uplink_factor = 50.0;
        assert!(matches!(
            c.validate(),
            Err(ConfigError::TooManyUplinks { .. })
        ));
    }

    #[test]
    fn node_bandwidth_is_base_uplinks_times_channel() {
        let c = SiriusConfig::paper_sim();
        assert_eq!(c.node_bandwidth(), Rate::from_gbps(400));
    }

    #[test]
    fn error_display_is_informative() {
        let e = ConfigError::GuardbandTooLong {
            slot: Duration::from_ns(100),
            guard: Duration::from_ns(200),
        };
        assert!(format!("{e}").contains("guardband"));
    }
}
