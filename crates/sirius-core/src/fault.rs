//! Failure detection and handling (§4.5 "Fault tolerance").
//!
//! The passive core cannot fail in interesting ways (no moving parts, no
//! power), but nodes and transceivers can, and Valiant load balancing means
//! a failed node blackholes a slice of *everyone's* traffic until detected.
//! Sirius turns the cyclic schedule into a cheap failure detector: every
//! node hears from every other node once per epoch (a few microseconds), so
//! silence on the scheduled slot is evidence of failure, including for grey
//! failures that only show up on specific paths.
//!
//! This module implements that detector: per-peer "last heard" epochs, a
//! configurable silence threshold, and a network-wide failure view that the
//! VLB picker consumes. Bandwidth after a failure degrades proportionally
//! (1/N per failed node) as the paper describes.

use crate::topology::NodeId;
use crate::vlb::Vlb;

/// Configuration of the failure detector.
#[derive(Debug, Clone, Copy)]
pub struct FaultConfig {
    /// Consecutive silent epochs on a scheduled slot before a peer is
    /// declared failed. The schedule guarantees one opportunity per epoch,
    /// so this directly bounds detection latency in epochs.
    pub silence_threshold: u64,
    /// Fraction of a node's TX columns that must be simultaneously
    /// suspected before link-granular repair escalates to whole-node
    /// exclusion (the §4.5 rule). `0.0` disables column repair entirely —
    /// any suspected column evicts the node, reproducing the paper's
    /// node-granular behavior for comparison.
    pub column_escalation_fraction: f64,
    /// Number of *distinct nodes* that must be simultaneously suspect on
    /// the same uplink column before the diagnosis flips from independent
    /// transceiver failures to a correlated shared-component fault (a dead
    /// laser-bank chip or AWGR grating band): the repair then stays
    /// column-granular fleet-wide instead of escalating node by node.
    pub correlation_threshold: usize,
    /// Per-epoch forged-cell suspicion count at which a node's data plane
    /// is declared Byzantine and the node is quarantined (whole-node
    /// exclusion). Mirrors the §4.4 slew clamp: damage per epoch is
    /// bounded by the threshold, then the liar is evicted.
    pub byz_quarantine_threshold: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        // 3 epochs ~ 5 us at paper scale: "interconnection of rack-pairs
        // every few microseconds allows for low overhead yet fast failure
        // detection" (§4.5).
        //
        // Escalation at half the columns: below that, each bad column is
        // omitted individually at 1/(N·U) capacity cost; at or above it,
        // the transceiver bank is likely sick as a whole and §4.5
        // whole-node exclusion applies.
        // Correlation at 3 nodes: two independent transceivers sharing a
        // column is plausible bad luck; three is a shared component.
        //
        // Byzantine quarantine at 6 forged cells per epoch: low enough
        // that a liar steals at most a handful of slots per epoch, high
        // enough that a single corrupted header never evicts a node.
        FaultConfig {
            silence_threshold: 3,
            column_escalation_fraction: 0.5,
            correlation_threshold: 3,
            byz_quarantine_threshold: 6,
        }
    }
}

impl FaultConfig {
    /// Number of simultaneously suspected TX columns at which link repair
    /// escalates to whole-node exclusion. Never below 1: a fraction of
    /// `0.0` means the very first suspected column escalates (the paper's
    /// node-granular rule).
    pub fn escalation_threshold(&self, uplinks: usize) -> usize {
        ((self.column_escalation_fraction * uplinks as f64).ceil() as usize).max(1)
    }
}

/// Per-node failure detector driven by scheduled-slot receptions.
#[derive(Debug)]
pub struct FailureDetector {
    cfg: FaultConfig,
    /// Last epoch we heard anything (data or idle keepalive) from each peer.
    last_heard: Vec<u64>,
    /// Peers currently suspected failed.
    suspected: Vec<bool>,
}

impl FailureDetector {
    pub fn new(n: usize, cfg: FaultConfig) -> FailureDetector {
        FailureDetector {
            cfg,
            last_heard: vec![0; n],
            suspected: vec![false; n],
        }
    }

    /// Record a reception (any slot content, including idle) from `peer`.
    pub fn heard_from(&mut self, peer: NodeId, epoch: u64) {
        self.last_heard[peer.0 as usize] = epoch;
        self.suspected[peer.0 as usize] = false;
    }

    /// Advance to `epoch`; returns peers newly suspected this epoch.
    pub fn tick(&mut self, epoch: u64) -> Vec<NodeId> {
        let mut newly = Vec::new();
        for (i, &lh) in self.last_heard.iter().enumerate() {
            if !self.suspected[i] && epoch.saturating_sub(lh) >= self.cfg.silence_threshold {
                self.suspected[i] = true;
                newly.push(NodeId(i as u32));
            }
        }
        newly
    }

    /// Forget all history as of `epoch` (a rebooted node must not suspect
    /// the whole world just because its counters predate the outage).
    pub fn reset(&mut self, epoch: u64) {
        self.last_heard.fill(epoch);
        self.suspected.fill(false);
    }

    pub fn is_suspected(&self, peer: NodeId) -> bool {
        self.suspected[peer.0 as usize]
    }

    pub fn last_heard(&self, peer: NodeId) -> u64 {
        self.last_heard[peer.0 as usize]
    }

    pub fn suspected_count(&self) -> usize {
        self.suspected.iter().filter(|&&s| s).count()
    }
}

/// Network-wide failure bookkeeping: ground truth (which nodes are actually
/// down) kept strictly apart from the *routing view* (which nodes the VLB
/// picker detours around).
///
/// Ground truth changes the instant a node dies or reboots; the routing
/// view only changes through **staged updates** applied at an epoch
/// boundary, mirroring the consistent-update model of
/// [`crate::repair::AdjustedSchedule`] — all nodes flip together, one epoch
/// after the detector (or operator) decides. `visible_at` records the epoch
/// each exclusion actually took effect: it is a *measurement* of the
/// detection + dissemination pipeline, not an input to it.
#[derive(Debug)]
pub struct FailurePlane {
    /// Ground-truth failed nodes.
    failed: Vec<bool>,
    /// Ground truth: epoch of the current (or last) failure.
    fail_epoch: Vec<Option<u64>>,
    /// Routing view: nodes currently excluded from VLB detours.
    excluded: Vec<bool>,
    /// Measured epoch at which the current exclusion took effect.
    visible_at: Vec<Option<u64>>,
    /// Staged routing updates `(apply_epoch, node, exclude)`, kept sorted
    /// by apply epoch.
    staged: Vec<(u64, NodeId, bool)>,
}

impl FailurePlane {
    pub fn new(n: usize) -> FailurePlane {
        FailurePlane {
            failed: vec![false; n],
            fail_epoch: vec![None; n],
            excluded: vec![false; n],
            visible_at: vec![None; n],
            staged: Vec::new(),
        }
    }

    /// Ground truth: `node` dies at `epoch`. Routing is *not* touched —
    /// exclusion must be detected and staged.
    pub fn fail(&mut self, node: NodeId, epoch: u64) {
        self.failed[node.0 as usize] = true;
        self.fail_epoch[node.0 as usize] = Some(epoch);
    }

    /// Ground truth: `node` comes back up. Routing is *not* touched —
    /// readmission must be observed (the node heard again) and staged, so a
    /// recover cannot resurrect a peer out-of-band mid-detection.
    pub fn recover(&mut self, node: NodeId) {
        self.failed[node.0 as usize] = false;
    }

    pub fn is_failed(&self, node: NodeId) -> bool {
        self.failed[node.0 as usize]
    }

    /// Epoch of the node's current (or most recent) ground-truth failure.
    pub fn fail_epoch(&self, node: NodeId) -> Option<u64> {
        self.fail_epoch[node.0 as usize]
    }

    /// Routing view: is `node` currently excluded from detours?
    pub fn is_excluded(&self, node: NodeId) -> bool {
        self.excluded[node.0 as usize]
    }

    /// Measured epoch the current exclusion became routing-visible.
    pub fn visible_at(&self, node: NodeId) -> Option<u64> {
        self.visible_at[node.0 as usize]
    }

    /// Stage exclusion of `node` from routing at epoch `at`.
    pub fn stage_exclude(&mut self, node: NodeId, at: u64) {
        self.staged.push((at, node, true));
        self.staged.sort_by_key(|&(e, n, _)| (e, n.0));
    }

    /// Stage readmission of `node` into routing at epoch `at`.
    pub fn stage_restore(&mut self, node: NodeId, at: u64) {
        self.staged.push((at, node, false));
        self.staged.sort_by_key(|&(e, n, _)| (e, n.0));
    }

    /// The direction of the latest still-pending staged update for `node`,
    /// if any (`true` = exclude).
    pub fn pending(&self, node: NodeId) -> Option<bool> {
        self.staged
            .iter()
            .rev()
            .find(|&&(_, n, _)| n == node)
            .map(|&(_, _, x)| x)
    }

    /// Apply all staged updates due at `epoch` to the routing view and the
    /// VLB picker. Returns the applied transitions `(node, excluded)` in
    /// apply order; `visible_at` is stamped with the epoch an exclusion
    /// actually activated.
    pub fn sync_to_vlb(&mut self, vlb: &mut Vlb, epoch: u64) -> Vec<(NodeId, bool)> {
        let mut applied = Vec::new();
        while let Some(&(at, node, exclude)) = self.staged.first() {
            if at > epoch {
                break;
            }
            self.staged.remove(0);
            let slot = &mut self.excluded[node.0 as usize];
            if *slot == exclude {
                continue; // duplicate stage; already in that state
            }
            *slot = exclude;
            if exclude {
                vlb.mark_failed(node);
                self.visible_at[node.0 as usize] = Some(epoch);
            } else {
                vlb.mark_recovered(node);
                self.visible_at[node.0 as usize] = None;
            }
            applied.push((node, exclude));
        }
        applied
    }

    /// Fraction of per-node uplink bandwidth lost: failing one of N nodes
    /// removes 1/N of every node's detour capacity (§4.5).
    pub fn bandwidth_loss_fraction(&self) -> f64 {
        let n = self.failed.len() as f64;
        self.failed.iter().filter(|&&f| f).count() as f64 / n
    }
}

/// Per-link (grey) failure detection: a transceiver that fails on one
/// uplink column only drops the cells of that column while the node stays
/// otherwise healthy — "grey failures that are sporadic or do not present
/// themselves till a link is actually used" (§4.5). The cyclic schedule
/// turns every (peer, column) pair into its own heartbeat: silence on one
/// column while others stay live isolates the bad transceiver.
#[derive(Debug)]
pub struct LinkDetector {
    cfg: FaultConfig,
    uplinks: usize,
    /// last_heard[peer * uplinks + column].
    last_heard: Vec<u64>,
    suspected: Vec<bool>,
}

impl LinkDetector {
    pub fn new(n: usize, uplinks: usize, cfg: FaultConfig) -> LinkDetector {
        LinkDetector {
            cfg,
            uplinks,
            last_heard: vec![0; n * uplinks],
            suspected: vec![false; n * uplinks],
        }
    }

    fn idx(&self, peer: NodeId, column: usize) -> usize {
        peer.0 as usize * self.uplinks + column
    }

    /// Record a reception from `peer` on RX `column`.
    pub fn heard_from(&mut self, peer: NodeId, column: usize, epoch: u64) {
        let i = self.idx(peer, column);
        self.last_heard[i] = epoch;
        self.suspected[i] = false;
    }

    /// Advance to `epoch`; returns newly suspected `(peer, column)` links.
    pub fn tick(&mut self, epoch: u64) -> Vec<(NodeId, usize)> {
        let mut newly = Vec::new();
        for peer in 0..self.last_heard.len() / self.uplinks {
            for col in 0..self.uplinks {
                let i = peer * self.uplinks + col;
                if !self.suspected[i]
                    && epoch.saturating_sub(self.last_heard[i]) >= self.cfg.silence_threshold
                {
                    self.suspected[i] = true;
                    newly.push((NodeId(peer as u32), col));
                }
            }
        }
        newly
    }

    pub fn is_suspected(&self, peer: NodeId, column: usize) -> bool {
        self.suspected[self.idx(peer, column)]
    }

    /// Last epoch anything was heard from `peer` on `column`.
    pub fn last_heard(&self, peer: NodeId, column: usize) -> u64 {
        self.last_heard[self.idx(peer, column)]
    }

    /// How many of `peer`'s TX columns are currently suspected — the
    /// quantity compared against
    /// [`FaultConfig::escalation_threshold`] to decide link-granular
    /// repair vs whole-node exclusion.
    pub fn suspected_count(&self, peer: NodeId) -> usize {
        let base = peer.0 as usize * self.uplinks;
        self.suspected[base..base + self.uplinks]
            .iter()
            .filter(|&&b| b)
            .count()
    }

    /// How many distinct peers are currently suspect on uplink `column` —
    /// the cross-node correlation signal: independent transceiver
    /// failures scatter across columns, while a shared laser-bank chip or
    /// AWGR grating band silences the *same* column on many nodes at
    /// once. Compared against [`FaultConfig::correlation_threshold`] at
    /// the fault boundary (O(N), boundary-only).
    pub fn column_suspected_nodes(&self, column: usize) -> usize {
        debug_assert!(column < self.uplinks);
        self.suspected[column..]
            .iter()
            .step_by(self.uplinks)
            .filter(|&&b| b)
            .count()
    }

    /// A peer is *grey*-failed if some, but not all, of its links are
    /// suspected — alive enough to answer on other columns, dead on these.
    pub fn is_grey(&self, peer: NodeId) -> bool {
        let base = peer.0 as usize * self.uplinks;
        let bad = self.suspected[base..base + self.uplinks]
            .iter()
            .filter(|&&b| b)
            .count();
        bad > 0 && bad < self.uplinks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detector_fires_after_threshold() {
        let mut fd = FailureDetector::new(
            4,
            FaultConfig {
                silence_threshold: 3,
                ..FaultConfig::default()
            },
        );
        for e in 0..3 {
            for p in 0..4 {
                fd.heard_from(NodeId(p), e);
            }
            assert!(fd.tick(e).is_empty());
        }
        // Node 2 goes silent after epoch 2.
        for e in 3..5 {
            for p in [0u32, 1, 3] {
                fd.heard_from(NodeId(p), e);
            }
            assert!(fd.tick(e).is_empty(), "too early at epoch {e}");
        }
        fd.heard_from(NodeId(0), 5);
        fd.heard_from(NodeId(1), 5);
        fd.heard_from(NodeId(3), 5);
        let newly = fd.tick(5);
        assert_eq!(newly, vec![NodeId(2)]);
        assert!(fd.is_suspected(NodeId(2)));
        assert_eq!(fd.suspected_count(), 1);
    }

    #[test]
    fn detector_clears_on_recovery() {
        let mut fd = FailureDetector::new(
            2,
            FaultConfig {
                silence_threshold: 2,
                ..FaultConfig::default()
            },
        );
        fd.tick(5);
        assert!(fd.is_suspected(NodeId(1)));
        fd.heard_from(NodeId(1), 6);
        assert!(!fd.is_suspected(NodeId(1)));
    }

    #[test]
    fn failure_plane_staged_exclusion() {
        let mut fp = FailurePlane::new(8);
        let mut vlb = Vlb::new(8);
        fp.fail(NodeId(3), 10);
        assert!(fp.is_failed(NodeId(3)));
        assert_eq!(fp.fail_epoch(NodeId(3)), Some(10));
        // Ground-truth failure alone changes nothing in routing.
        assert!(fp.sync_to_vlb(&mut vlb, 12).is_empty());
        assert!(vlb.is_alive(NodeId(3)));
        // A detector stages the exclusion for epoch 14; it applies there
        // and the activation epoch is the measured visibility.
        fp.stage_exclude(NodeId(3), 14);
        assert!(fp.sync_to_vlb(&mut vlb, 13).is_empty());
        assert_eq!(fp.sync_to_vlb(&mut vlb, 14), vec![(NodeId(3), true)]);
        assert!(!vlb.is_alive(NodeId(3)));
        assert!(fp.is_excluded(NodeId(3)));
        assert_eq!(fp.visible_at(NodeId(3)), Some(14));
        // Recovery is ground truth only; routing waits for a staged
        // readmission.
        fp.recover(NodeId(3));
        assert!(fp.sync_to_vlb(&mut vlb, 15).is_empty());
        assert!(!vlb.is_alive(NodeId(3)));
        fp.stage_restore(NodeId(3), 16);
        assert_eq!(fp.sync_to_vlb(&mut vlb, 16), vec![(NodeId(3), false)]);
        assert!(vlb.is_alive(NodeId(3)));
        assert_eq!(fp.visible_at(NodeId(3)), None);
    }

    #[test]
    fn fail_recover_fail_flap_does_not_resurrect_mid_detection() {
        // Regression: the old plane unconditionally `mark_recovered` any
        // not-failed node on every sync, so a fail -> recover -> fail flap
        // (or a recover racing an in-progress detection) could resurrect a
        // peer in the routing view out-of-band. Now routing only moves
        // through staged updates.
        let mut fp = FailurePlane::new(4);
        let mut vlb = Vlb::new(4);
        fp.fail(NodeId(1), 5);
        fp.stage_exclude(NodeId(1), 7); // detector in flight
        assert!(fp.sync_to_vlb(&mut vlb, 6).is_empty());
        // The node blips back up and immediately dies again, before the
        // staged exclusion even applied.
        fp.recover(NodeId(1));
        fp.fail(NodeId(1), 6);
        // Routing must NOT have resurrected it in between...
        assert!(fp.sync_to_vlb(&mut vlb, 6).is_empty());
        assert!(vlb.is_alive(NodeId(1)));
        // ...and the staged exclusion still lands at its boundary.
        assert_eq!(fp.sync_to_vlb(&mut vlb, 7), vec![(NodeId(1), true)]);
        assert!(!vlb.is_alive(NodeId(1)));
        // A duplicate staged exclusion is a no-op, not a double-kill.
        fp.stage_exclude(NodeId(1), 8);
        assert!(fp.sync_to_vlb(&mut vlb, 8).is_empty());
        assert!(!vlb.is_alive(NodeId(1)));
        assert_eq!(fp.visible_at(NodeId(1)), Some(7));
    }

    #[test]
    fn detector_reset_grants_a_grace_period() {
        let mut fd = FailureDetector::new(
            3,
            FaultConfig {
                silence_threshold: 2,
                ..FaultConfig::default()
            },
        );
        // A rebooted node's counters all predate the outage...
        assert_eq!(fd.tick(10).len(), 3);
        // ...so it resets to the reboot epoch and re-earns suspicions.
        fd.reset(20);
        assert!(fd.tick(21).is_empty());
        assert_eq!(fd.last_heard(NodeId(0)), 20);
        assert_eq!(fd.tick(22).len(), 3);
    }

    #[test]
    fn grey_failure_isolates_the_bad_transceiver() {
        // Peer 2's column 1 transceiver dies; its other columns keep
        // talking. The link detector pins the failure to (2, 1) and
        // classifies peer 2 as grey, not dead.
        let mut ld = LinkDetector::new(
            4,
            3,
            FaultConfig {
                silence_threshold: 3,
                ..FaultConfig::default()
            },
        );
        for e in 0..10u64 {
            for p in 0..4u32 {
                for c in 0..3usize {
                    if !(p == 2 && c == 1 && e >= 4) {
                        ld.heard_from(NodeId(p), c, e);
                    }
                }
            }
            let newly = ld.tick(e);
            // Last heard at epoch 3; threshold 3 -> suspected at epoch 6.
            if e < 6 {
                assert!(newly.is_empty(), "too early at epoch {e}: {newly:?}");
            } else if e == 6 {
                assert_eq!(newly, vec![(NodeId(2), 1)]);
            }
        }
        assert!(ld.is_suspected(NodeId(2), 1));
        assert!(!ld.is_suspected(NodeId(2), 0));
        assert!(ld.is_grey(NodeId(2)));
        assert!(!ld.is_grey(NodeId(0)));
    }

    #[test]
    fn total_silence_is_not_grey() {
        let mut ld = LinkDetector::new(
            2,
            2,
            FaultConfig {
                silence_threshold: 1,
                ..FaultConfig::default()
            },
        );
        ld.tick(5); // peer 1 never heard at all
        assert!(ld.is_suspected(NodeId(1), 0) && ld.is_suspected(NodeId(1), 1));
        assert!(!ld.is_grey(NodeId(1)), "fully dead, not grey");
    }

    #[test]
    fn grey_link_recovers() {
        let mut ld = LinkDetector::new(
            2,
            2,
            FaultConfig {
                silence_threshold: 2,
                ..FaultConfig::default()
            },
        );
        ld.tick(4);
        assert!(ld.is_suspected(NodeId(0), 0));
        ld.heard_from(NodeId(0), 0, 5);
        assert!(!ld.is_suspected(NodeId(0), 0));
    }

    #[test]
    fn column_correlation_counts_distinct_nodes() {
        // Nodes 0, 2 and 3 all go silent on column 1 (a shared bank chip);
        // node 1 additionally loses column 0 (an unrelated transceiver).
        let mut ld = LinkDetector::new(
            4,
            3,
            FaultConfig {
                silence_threshold: 1,
                ..FaultConfig::default()
            },
        );
        for e in 0..4u64 {
            for p in 0..4u32 {
                for c in 0..3usize {
                    let bank_dead = c == 1 && p != 1 && e >= 2;
                    let lone_dead = p == 1 && c == 0 && e >= 2;
                    if !(bank_dead || lone_dead) {
                        ld.heard_from(NodeId(p), c, e);
                    }
                }
            }
            ld.tick(e);
        }
        assert_eq!(ld.column_suspected_nodes(1), 3);
        assert_eq!(ld.column_suspected_nodes(0), 1);
        assert_eq!(ld.column_suspected_nodes(2), 0);
        let cfg = FaultConfig::default();
        assert!(ld.column_suspected_nodes(1) >= cfg.correlation_threshold);
        assert!(ld.column_suspected_nodes(0) < cfg.correlation_threshold);
    }

    #[test]
    fn bandwidth_loss_matches_paper_rule() {
        let mut fp = FailurePlane::new(128);
        fp.fail(NodeId(0), 0);
        assert!((fp.bandwidth_loss_fraction() - 1.0 / 128.0).abs() < 1e-12);
        fp.fail(NodeId(1), 0);
        assert!((fp.bandwidth_loss_fraction() - 2.0 / 128.0).abs() < 1e-12);
    }
}
