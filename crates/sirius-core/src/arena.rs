//! A slab arena for [`Cell`]s with a free list.
//!
//! Every queue in [`crate::node::SiriusNode`] (LOCAL, VOQ, relay) holds
//! `u32` handles into one shared per-node arena instead of owning
//! `Cell`s. Moving a cell between queues — the grant path, the reclaim
//! path, relay rerouting — then moves 4 bytes instead of a 32-byte cell,
//! and a steady-state run performs zero queue-side heap traffic once the
//! arena and queues reach their high-water marks: freed slots are
//! recycled LIFO through the free list.
//!
//! Handles are plain indices; validity is the owning queue's discipline
//! (a handle lives in exactly one queue between `insert` and `remove`).
//! Debug builds track freed slots and panic on use-after-free or
//! double-free.
//!
//! Because arenas are strictly per-node owned plain data (no interior
//! mutability, no shared allocation), a `&mut [SiriusNode]` range can be
//! handed to another thread wholesale — the sharded slot engine relies
//! on `CellArena: Send` to partition nodes across workers.

use crate::cell::Cell;

/// The sharded slot engine moves whole per-node arenas across threads.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<CellArena>()
};

/// Slab of cells + LIFO free list. See the module docs.
#[derive(Debug, Default, Clone)]
pub struct CellArena {
    slots: Vec<Cell>,
    free: Vec<u32>,
    #[cfg(debug_assertions)]
    freed: Vec<bool>,
}

impl CellArena {
    pub fn new() -> CellArena {
        CellArena::default()
    }

    /// Store `cell`, recycling a freed slot when one exists. Returns the
    /// handle to pass to [`get`](Self::get) / [`remove`](Self::remove).
    #[inline]
    pub fn insert(&mut self, cell: Cell) -> u32 {
        match self.free.pop() {
            Some(h) => {
                self.slots[h as usize] = cell;
                #[cfg(debug_assertions)]
                {
                    self.freed[h as usize] = false;
                }
                h
            }
            None => {
                let h = u32::try_from(self.slots.len()).expect("cell arena handle overflow");
                self.slots.push(cell);
                #[cfg(debug_assertions)]
                self.freed.push(false);
                h
            }
        }
    }

    /// Read the cell behind a live handle.
    #[inline]
    pub fn get(&self, h: u32) -> &Cell {
        #[cfg(debug_assertions)]
        debug_assert!(
            !self.freed[h as usize],
            "cell arena: read of freed slot {h}"
        );
        &self.slots[h as usize]
    }

    /// Take the cell out and free its slot.
    #[inline]
    pub fn remove(&mut self, h: u32) -> Cell {
        #[cfg(debug_assertions)]
        {
            debug_assert!(
                !self.freed[h as usize],
                "cell arena: double free of slot {h}"
            );
            self.freed[h as usize] = true;
        }
        self.free.push(h);
        self.slots[h as usize]
    }

    /// Live cells (inserted and not yet removed).
    pub fn len(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Slots ever allocated — the arena's high-water mark. Steady after
    /// warm-up; allocation-regression tests pin it.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::FlowId;
    use crate::topology::{NodeId, ServerId};

    fn cell(seq: u32) -> Cell {
        Cell {
            flow: FlowId(7),
            seq,
            payload: 540,
            src: NodeId(0),
            dst: NodeId(1),
            dst_server: ServerId(2),
            last: false,
        }
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut a = CellArena::new();
        let h0 = a.insert(cell(0));
        let h1 = a.insert(cell(1));
        assert_eq!(a.len(), 2);
        assert_eq!(a.get(h0).seq, 0);
        assert_eq!(a.get(h1).seq, 1);
        assert_eq!(a.remove(h0).seq, 0);
        assert_eq!(a.len(), 1);
        assert!(!a.is_empty());
        assert_eq!(a.remove(h1).seq, 1);
        assert!(a.is_empty());
    }

    #[test]
    fn free_slots_are_recycled_and_capacity_is_stable() {
        let mut a = CellArena::new();
        let hs: Vec<u32> = (0..64).map(|k| a.insert(cell(k))).collect();
        assert_eq!(a.capacity(), 64);
        for &h in &hs {
            a.remove(h);
        }
        // A full churn cycle reuses the freed slots: no growth.
        for round in 0..10 {
            let hs: Vec<u32> = (0..64).map(|k| a.insert(cell(k * round))).collect();
            assert_eq!(a.capacity(), 64, "arena grew on round {round}");
            for &h in &hs {
                a.remove(h);
            }
        }
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "double free")]
    fn double_free_panics_in_debug() {
        let mut a = CellArena::new();
        let h = a.insert(cell(0));
        a.remove(h);
        a.remove(h);
    }
}
