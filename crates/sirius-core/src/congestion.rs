//! The request/grant congestion-control protocol (§4.3, Fig. 15).
//!
//! Queuing in Sirius happens only at intermediate nodes: node `I` can
//! forward at most one cell per epoch to destination `D` (per uplink column
//! covering that pair), so if several sources relay cells for `D` through
//! `I` in the same epoch, a queue builds. The protocol bounds that queue at
//! `Q` cells by requiring a request/grant round before a cell may be sent:
//!
//! * **Requests** — at the start of each epoch the source scans its `LOCAL`
//!   buffer in FIFO order and, for each queued cell, picks a uniformly
//!   random intermediate to ask for permission, sending at most one request
//!   to any given intermediate per epoch.
//! * **Grants** — each node considers the requests received in the previous
//!   epoch, picks one request per destination `D` uniformly at random, and
//!   grants it iff `queued(D) + outstanding_grants(D) < Q`.
//! * **Transmission** — on receiving a grant `(I, D)`, the source moves one
//!   cell for `D` from `LOCAL` into the virtual output queue for `I`; it is
//!   transmitted at the next scheduled slot to `I`.
//!
//! Requests and grants are piggybacked on cells, so each phase costs one
//! epoch of latency but zero bandwidth. The paper leaves the handling of
//! *unused* grants unspecified (a source may receive two grants for the
//! same cell); we expire outstanding grants after a configurable number of
//! epochs so the reservation is reclaimed — see
//! [`CongestionState::begin_epoch`].
//!
//! This module holds the per-node protocol state; the driving of request /
//! grant delivery across the network lives in the simulator, which delivers
//! them with one-epoch latency exactly as piggybacking would.

use crate::topology::NodeId;
use rand::Rng;

/// Statistics the protocol keeps for observability and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CcStats {
    pub requests_sent: u64,
    pub requests_received: u64,
    pub grants_issued: u64,
    pub grants_received: u64,
    /// Grants received when no matching cell was waiting (the cell was
    /// already granted through another intermediate).
    pub grants_unused: u64,
    /// Outstanding grants reclaimed by timeout at the intermediate (only
    /// fires when a granted cell was lost, e.g. to a node failure).
    pub grants_expired: u64,
    /// Grants explicitly declined by the source (no waiting cell).
    pub grants_declined: u64,
    /// Requests dropped because the per-destination grant was already taken
    /// or the queue bound was hit.
    pub requests_denied: u64,
    /// Relay cells that arrived after their grant expired (lost-cell
    /// backstop fired spuriously; should be 0 without failures).
    pub untracked_arrivals: u64,
    /// Epoch-arrivals that pushed a relay queue beyond Q (should be 0
    /// without failures).
    pub bound_exceeded: u64,
}

impl CcStats {
    /// Field-wise accumulation (for network-wide totals).
    pub fn add(&mut self, o: &CcStats) {
        self.requests_sent += o.requests_sent;
        self.requests_received += o.requests_received;
        self.grants_issued += o.grants_issued;
        self.grants_received += o.grants_received;
        self.grants_unused += o.grants_unused;
        self.grants_expired += o.grants_expired;
        self.grants_declined += o.grants_declined;
        self.requests_denied += o.requests_denied;
        self.untracked_arrivals += o.untracked_arrivals;
        self.bound_exceeded += o.bound_exceeded;
    }
}

/// Per-node state of the congestion-control protocol.
///
/// Indices are destination node ids (`0..n`).
#[derive(Debug)]
pub struct CongestionState {
    node: NodeId,
    q: u32,
    grant_timeout_epochs: u64,
    /// As an intermediate: cells currently queued here per destination.
    queued: Vec<u32>,
    /// As an intermediate: grants issued whose cell has not yet arrived.
    outstanding: Vec<u32>,
    /// Expiry bookkeeping for outstanding grants: the epoch at which each
    /// outstanding grant lapses, FIFO per destination. `outstanding[d]`
    /// never exceeds `q` (grants are only issued while
    /// `queued + outstanding < q`), so each destination owns a flat ring
    /// of `q` slots at `expiry[d*q..]` — length `outstanding[d]`, front at
    /// `expiry_head[d]` — instead of a heap-allocated deque.
    expiry: Vec<u64>,
    expiry_head: Vec<u32>,
    /// Requests received during the current epoch, processed next epoch:
    /// per destination, the list of requesters.
    inbox: Vec<Vec<NodeId>>,
    /// Destinations with a non-empty inbox (to avoid scanning all n).
    inbox_dirty: Vec<u32>,
    /// Requests accumulated the previous epoch, being granted this epoch.
    pending: Vec<Vec<NodeId>>,
    pending_dirty: Vec<u32>,
    stats: CcStats,
}

impl CongestionState {
    pub fn new(node: NodeId, n: usize, q: usize, grant_timeout_epochs: u64) -> CongestionState {
        assert!(q >= 2, "the protocol requires Q >= 2 (paper §4.3)");
        CongestionState {
            node,
            q: q as u32,
            grant_timeout_epochs,
            queued: vec![0; n],
            outstanding: vec![0; n],
            expiry: vec![0; n * q],
            expiry_head: vec![0; n],
            inbox: vec![Vec::new(); n],
            inbox_dirty: Vec::new(),
            pending: vec![Vec::new(); n],
            pending_dirty: Vec::new(),
            stats: CcStats::default(),
        }
    }

    pub fn node(&self) -> NodeId {
        self.node
    }
    pub fn stats(&self) -> CcStats {
        self.stats
    }
    /// Cells queued here (as intermediate) for destination `d`.
    pub fn queued(&self, d: NodeId) -> u32 {
        self.queued[d.0 as usize]
    }
    /// Outstanding (unexpired, unconsumed) grants for destination `d`.
    pub fn outstanding(&self, d: NodeId) -> u32 {
        self.outstanding[d.0 as usize]
    }

    /// Front of destination `d`'s expiry ring (undefined when
    /// `outstanding[d] == 0` — callers gate on the counter).
    #[inline]
    fn expiry_front(&self, d: usize) -> u64 {
        self.expiry[d * self.q as usize + self.expiry_head[d] as usize]
    }

    #[inline]
    fn expiry_pop_front(&mut self, d: usize) {
        let h = self.expiry_head[d] + 1;
        self.expiry_head[d] = if h == self.q { 0 } else { h };
    }

    /// Append to `d`'s ring; the caller increments `outstanding[d]` (the
    /// ring length) right after.
    #[inline]
    fn expiry_push_back(&mut self, d: usize, lapse: u64) {
        let q = self.q as usize;
        let mut idx = self.expiry_head[d] as usize + self.outstanding[d] as usize;
        if idx >= q {
            idx -= q;
        }
        self.expiry[d * q + idx] = lapse;
    }

    /// Epoch boundary: expire stale grants and rotate the request inbox so
    /// that requests received last epoch become grantable this epoch.
    pub fn begin_epoch(&mut self, epoch: u64) {
        // Expire outstanding grants that were never used. Every expiry
        // push/pop pairs with an `outstanding` increment/decrement, so the
        // contiguous counter tells us which rings to even look at.
        for d in 0..self.outstanding.len() {
            while self.outstanding[d] > 0 && self.expiry_front(d) <= epoch {
                self.expiry_pop_front(d);
                self.outstanding[d] -= 1;
                self.stats.grants_expired += 1;
            }
        }
        // Unserved requests from last epoch are dropped (the source will
        // re-request); rotate inbox -> pending.
        for &d in &self.pending_dirty {
            self.pending[d as usize].clear();
        }
        self.pending_dirty.clear();
        std::mem::swap(&mut self.inbox, &mut self.pending);
        std::mem::swap(&mut self.inbox_dirty, &mut self.pending_dirty);
    }

    /// A request from `from` for destination `dst` arrived (piggybacked on a
    /// cell this epoch); it will be considered for a grant next epoch.
    pub fn receive_request(&mut self, from: NodeId, dst: NodeId) {
        let d = dst.0 as usize;
        if self.inbox[d].is_empty() {
            self.inbox_dirty.push(dst.0);
        }
        self.inbox[d].push(from);
        self.stats.requests_received += 1;
    }

    /// Issue this epoch's grants: for every destination with pending
    /// requests, grant randomly-chosen requesters while the queue bound
    /// `queued(D) + outstanding(D) < Q` holds. Granting up to the bound
    /// (rather than a single request per destination) lets an intermediate
    /// absorb colliding requesters instead of starving them — the bound,
    /// not the grant cadence, is what keeps queues small. Returns
    /// `(requester, destination)` pairs.
    pub fn issue_grants<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        epoch: u64,
    ) -> Vec<(NodeId, NodeId)> {
        self.issue_grants_filtered(rng, epoch, |_| true)
    }

    /// [`issue_grants`](Self::issue_grants) restricted to destinations this
    /// intermediate can still forward to: under link-granular repair
    /// (§4.5) an omitted TX column can sever `self -> D` while `self` stays
    /// otherwise healthy, and granting such a request would queue a cell
    /// here that can never depart. Ineligible destinations' requests are
    /// denied (the sources re-roll a different intermediate next epoch).
    pub fn issue_grants_filtered<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        epoch: u64,
        eligible: impl Fn(NodeId) -> bool,
    ) -> Vec<(NodeId, NodeId)> {
        let mut grants = Vec::new();
        for di in 0..self.pending_dirty.len() {
            let d = self.pending_dirty[di] as usize;
            debug_assert!(!self.pending[d].is_empty());
            if !eligible(NodeId(d as u32)) {
                self.stats.requests_denied += self.pending[d].len() as u64;
                continue;
            }
            // Random service order: shuffle by swapping the pick to the end.
            while !self.pending[d].is_empty() && self.queued[d] + self.outstanding[d] < self.q {
                let k = rng.gen_range(0..self.pending[d].len());
                let pick = self.pending[d].swap_remove(k);
                self.expiry_push_back(d, epoch + self.grant_timeout_epochs);
                self.outstanding[d] += 1;
                self.stats.grants_issued += 1;
                grants.push((pick, NodeId(d as u32)));
            }
            self.stats.requests_denied += self.pending[d].len() as u64;
        }
        grants
    }

    /// A granted relay cell for destination `d` arrived: one outstanding
    /// grant is consumed and the cell joins the relay queue.
    ///
    /// If the matching grant already expired (only possible when the cell
    /// was delayed past the loss-backstop timeout), the arrival is counted
    /// as untracked rather than corrupting the accounting.
    pub fn relay_arrived(&mut self, d: NodeId) {
        let d = d.0 as usize;
        if self.outstanding[d] > 0 {
            // Consume the oldest grant's expiry slot.
            self.expiry_pop_front(d);
            self.outstanding[d] -= 1;
        } else {
            self.stats.untracked_arrivals += 1;
        }
        self.queued[d] += 1;
        if self.queued[d] > self.q {
            self.stats.bound_exceeded += 1;
        }
    }

    /// The source declined a grant for destination `d` (it had no waiting
    /// cell — typically because another intermediate granted the same cell
    /// first). The reservation is released immediately; the decline is
    /// piggybacked on the next scheduled cell in the real system.
    pub fn grant_declined(&mut self, d: NodeId) {
        let d = d.0 as usize;
        if self.outstanding[d] > 0 {
            // The declined grant is the most recently issued one: shrinking
            // the ring length (`outstanding`) drops the back entry.
            self.outstanding[d] -= 1;
            self.stats.grants_declined += 1;
        }
    }

    /// A relay cell for destination `d` was transmitted onward.
    pub fn relay_departed(&mut self, d: NodeId) {
        let d = d.0 as usize;
        debug_assert!(self.queued[d] > 0);
        self.queued[d] -= 1;
    }

    /// Bookkeeping hooks for the source side (stats only; the LOCAL and VOQ
    /// queues live in [`crate::node`]).
    pub fn note_request_sent(&mut self) {
        self.stats.requests_sent += 1;
    }
    pub fn note_grant_received(&mut self, used: bool) {
        self.stats.grants_received += 1;
        if !used {
            self.stats.grants_unused += 1;
        }
    }

    /// Upper bound the protocol enforces on any relay queue.
    pub fn q(&self) -> u32 {
        self.q
    }
}

/// Per-epoch request generator for the source side.
///
/// Enforces "at most one request per intermediate per epoch" and "one
/// request per LOCAL cell, FIFO order, until intermediates run out".
#[derive(Debug)]
pub struct RequestRound {
    used: Vec<bool>,
    used_list: Vec<u32>,
    remaining: usize,
}

impl RequestRound {
    pub fn new(n: usize) -> RequestRound {
        RequestRound {
            used: vec![false; n],
            used_list: Vec::new(),
            remaining: n,
        }
    }

    /// Reset for a new epoch without reallocating.
    pub fn reset(&mut self) {
        for &u in &self.used_list {
            self.used[u as usize] = false;
        }
        self.used_list.clear();
        self.remaining = self.used.len();
    }

    /// True if no intermediate can be requested any more this epoch.
    pub fn exhausted(&self) -> bool {
        self.remaining == 0
    }

    /// Try to claim intermediate `i`; returns true if it was still free.
    pub fn claim(&mut self, i: NodeId) -> bool {
        let idx = i.0 as usize;
        if self.used[idx] {
            false
        } else {
            self.used[idx] = true;
            self.used_list.push(i.0);
            self.remaining -= 1;
            true
        }
    }

    /// Number of intermediates still unclaimed.
    pub fn remaining(&self) -> usize {
        self.remaining
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn cc(q: usize) -> CongestionState {
        CongestionState::new(NodeId(0), 8, q, 4)
    }

    #[test]
    #[should_panic(expected = "Q >= 2")]
    fn q_below_two_rejected() {
        let _ = cc(1);
    }

    #[test]
    fn grant_happy_path() {
        let mut c = cc(4);
        let mut rng = SmallRng::seed_from_u64(1);
        let d = NodeId(3);
        c.begin_epoch(0);
        c.receive_request(NodeId(1), d);
        c.begin_epoch(1);
        let g = c.issue_grants(&mut rng, 1);
        assert_eq!(g, vec![(NodeId(1), d)]);
        assert_eq!(c.outstanding(d), 1);
        c.relay_arrived(d);
        assert_eq!(c.outstanding(d), 0);
        assert_eq!(c.queued(d), 1);
        c.relay_departed(d);
        assert_eq!(c.queued(d), 0);
    }

    #[test]
    fn grants_per_destination_capped_by_q() {
        let mut c = cc(4); // Q = 4
        let mut rng = SmallRng::seed_from_u64(2);
        let d = NodeId(5);
        c.begin_epoch(0);
        for s in 1..7 {
            c.receive_request(NodeId(s), d);
        }
        c.begin_epoch(1);
        let g = c.issue_grants(&mut rng, 1);
        // 6 requests, bound Q=4 with nothing queued: exactly 4 granted.
        assert_eq!(g.len(), 4, "grants must fill the Q budget, no more");
        assert!(g.iter().all(|&(_, dst)| dst == d));
        assert_eq!(c.outstanding(d), 4);
        assert_eq!(c.stats().requests_denied, 2);
        // Distinct requesters (each request is granted at most once).
        let mut src: Vec<u32> = g.iter().map(|(s, _)| s.0).collect();
        src.sort_unstable();
        src.dedup();
        assert_eq!(src.len(), 4);
    }

    #[test]
    fn filtered_grants_deny_unreachable_destinations() {
        let mut c = cc(4);
        let mut rng = SmallRng::seed_from_u64(17);
        let reachable = NodeId(2);
        let severed = NodeId(6);
        c.begin_epoch(0);
        c.receive_request(NodeId(1), reachable);
        c.receive_request(NodeId(3), severed);
        c.receive_request(NodeId(4), severed);
        c.begin_epoch(1);
        let g = c.issue_grants_filtered(&mut rng, 1, |d| d != severed);
        assert_eq!(g, vec![(NodeId(1), reachable)]);
        assert_eq!(c.outstanding(severed), 0, "no grant onto a severed pair");
        assert_eq!(c.stats().requests_denied, 2);
        // The denied requesters are not stuck: next epoch's inbox is fresh.
        c.begin_epoch(2);
        assert!(c.issue_grants_filtered(&mut rng, 2, |_| true).is_empty());
    }

    #[test]
    fn queue_bound_blocks_grants() {
        let mut c = cc(2);
        let mut rng = SmallRng::seed_from_u64(3);
        let d = NodeId(2);
        // Fill the bound: grant -> arrive, twice.
        for epoch in 0..2 {
            c.begin_epoch(2 * epoch);
            c.receive_request(NodeId(1), d);
            c.begin_epoch(2 * epoch + 1);
            let g = c.issue_grants(&mut rng, 2 * epoch + 1);
            assert_eq!(g.len(), 1);
            c.relay_arrived(d);
        }
        assert_eq!(c.queued(d), 2);
        // Queue is at Q: next request must be denied.
        c.begin_epoch(10);
        c.receive_request(NodeId(1), d);
        c.begin_epoch(11);
        assert!(c.issue_grants(&mut rng, 11).is_empty());
        // Drain one cell -> grants flow again.
        c.relay_departed(d);
        c.begin_epoch(12);
        c.receive_request(NodeId(1), d);
        c.begin_epoch(13);
        assert_eq!(c.issue_grants(&mut rng, 13).len(), 1);
    }

    #[test]
    fn outstanding_counts_toward_bound() {
        // Long grant timeout so expiry cannot release the bound mid-test.
        let mut c = CongestionState::new(NodeId(0), 8, 2, 100);
        let mut rng = SmallRng::seed_from_u64(4);
        let d = NodeId(7);
        // Two grants issued but cells not yet arrived.
        for epoch in 0..2u64 {
            c.begin_epoch(2 * epoch);
            c.receive_request(NodeId(1), d);
            c.begin_epoch(2 * epoch + 1);
            assert_eq!(c.issue_grants(&mut rng, 2 * epoch + 1).len(), 1);
        }
        assert_eq!(c.outstanding(d), 2);
        // Third request denied even though queue is empty.
        c.begin_epoch(4);
        c.receive_request(NodeId(1), d);
        c.begin_epoch(5);
        assert!(c.issue_grants(&mut rng, 5).is_empty());
    }

    #[test]
    fn unused_grants_expire_and_free_the_bound() {
        let mut c = CongestionState::new(NodeId(0), 8, 2, 3);
        let mut rng = SmallRng::seed_from_u64(5);
        let d = NodeId(1);
        c.begin_epoch(0);
        c.receive_request(NodeId(2), d);
        c.begin_epoch(1);
        assert_eq!(c.issue_grants(&mut rng, 1).len(), 1);
        assert_eq!(c.outstanding(d), 1);
        // Grant never used; expires at epoch 1+3=4.
        c.begin_epoch(4);
        assert_eq!(c.outstanding(d), 0);
        assert_eq!(c.stats().grants_expired, 1);
    }

    #[test]
    fn stale_requests_do_not_linger() {
        let mut c = cc(4);
        let mut rng = SmallRng::seed_from_u64(6);
        let d = NodeId(4);
        c.begin_epoch(0);
        c.receive_request(NodeId(1), d);
        // Two epoch boundaries pass without issuing grants: the request
        // must have been dropped (sources re-request each epoch).
        c.begin_epoch(1);
        c.begin_epoch(2);
        assert!(c.issue_grants(&mut rng, 2).is_empty());
    }

    #[test]
    fn grants_are_uniform_over_requesters() {
        // Hold the queue at Q-1 so exactly one grant fits per epoch, then
        // check the served requester is picked uniformly.
        let mut c = CongestionState::new(NodeId(0), 16, 2, 1000);
        let mut rng = SmallRng::seed_from_u64(7);
        let d = NodeId(6);
        // Prime: one cell permanently queued for d.
        c.begin_epoch(0);
        c.receive_request(NodeId(1), d);
        c.begin_epoch(1);
        assert_eq!(c.issue_grants(&mut rng, 1).len(), 1);
        c.relay_arrived(d);
        let mut wins = [0u32; 4];
        for epoch in 1..4000u64 {
            c.begin_epoch(2 * epoch);
            for s in 0..4 {
                c.receive_request(NodeId(s), d);
            }
            c.begin_epoch(2 * epoch + 1);
            let g = c.issue_grants(&mut rng, 2 * epoch + 1);
            assert_eq!(g.len(), 1, "queued=1, Q=2: one grant fits");
            wins[g[0].0 .0 as usize] += 1;
            // The granted cell arrives and the old one departs: queue
            // returns to exactly one.
            c.relay_arrived(d);
            c.relay_departed(d);
        }
        for &w in &wins {
            assert!((w as f64 - 1000.0).abs() < 150.0, "biased grants: {wins:?}");
        }
    }

    #[test]
    fn request_round_caps_one_per_intermediate() {
        let mut r = RequestRound::new(4);
        assert!(r.claim(NodeId(2)));
        assert!(!r.claim(NodeId(2)));
        assert!(r.claim(NodeId(0)));
        assert!(r.claim(NodeId(1)));
        assert!(r.claim(NodeId(3)));
        assert!(r.exhausted());
        r.reset();
        assert!(!r.exhausted());
        assert!(r.claim(NodeId(2)));
        assert_eq!(r.remaining(), 3);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// Drive a random but *causally consistent* sequence of protocol
        /// events against one intermediate and check the invariants the
        /// rest of the stack relies on.
        fn run_random_protocol(ops: Vec<u8>, q: usize, seed: u64) -> Result<(), TestCaseError> {
            let n = 6usize;
            let mut cc = CongestionState::new(NodeId(0), n, q, 4);
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut epoch = 0u64;
            // Cells we are allowed to deliver (granted, not yet arrived)
            // and relay cells queued (arrived, not yet departed), per dest.
            let mut deliverable = vec![0u32; n];
            let mut queued = vec![0u32; n];
            for op in ops {
                match op % 5 {
                    0 => {
                        epoch += 1;
                        cc.begin_epoch(epoch);
                        // Grant expiry may have reclaimed some deliverable
                        // budget; resynchronize our model.
                        for (d, v) in deliverable.iter_mut().enumerate() {
                            *v = (*v).min(cc.outstanding(NodeId(d as u32)));
                        }
                        let grants = cc.issue_grants(&mut rng, epoch);
                        for (_, d) in grants {
                            deliverable[d.0 as usize] += 1;
                        }
                    }
                    1 => {
                        let from = NodeId(1 + (op as u32 % 5).min(4));
                        let dst = NodeId(op as u32 % n as u32);
                        cc.receive_request(from, dst);
                    }
                    2 => {
                        // Deliver a granted cell if one is in flight.
                        if let Some(d) = (0..n).find(|&d| deliverable[d] > 0) {
                            deliverable[d] -= 1;
                            cc.relay_arrived(NodeId(d as u32));
                            queued[d] += 1;
                        }
                    }
                    3 => {
                        // Depart a queued relay cell.
                        if let Some(d) = (0..n).find(|&d| queued[d] > 0) {
                            queued[d] -= 1;
                            cc.relay_departed(NodeId(d as u32));
                        }
                    }
                    _ => {
                        // Decline the newest grant if any is outstanding.
                        if let Some(d) = (0..n).find(|&d| deliverable[d] > 0) {
                            deliverable[d] -= 1;
                            cc.grant_declined(NodeId(d as u32));
                        }
                    }
                }
                // Invariants.
                for d in 0..n {
                    let node = NodeId(d as u32);
                    prop_assert_eq!(cc.queued(node), queued[d], "queued mismatch");
                    prop_assert!(
                        cc.queued(node) <= q as u32,
                        "queue bound violated without loss"
                    );
                    prop_assert!(
                        cc.outstanding(node) >= deliverable[d],
                        "outstanding below in-flight"
                    );
                    prop_assert!(
                        cc.queued(node) + cc.outstanding(node) <= q as u32 + deliverable[d],
                        "bound accounting drifted"
                    );
                }
            }
            let s = cc.stats();
            prop_assert_eq!(s.untracked_arrivals, 0);
            prop_assert_eq!(s.bound_exceeded, 0);
            Ok(())
        }

        proptest! {
            #[test]
            fn protocol_invariants_hold_under_random_schedules(
                ops in proptest::collection::vec(0u8..=255, 1..400),
                q in 2usize..6,
                seed in 0u64..1000,
            ) {
                run_random_protocol(ops, q, seed)?;
            }
        }
    }

    #[test]
    fn multiple_destinations_granted_same_epoch() {
        let mut c = cc(4);
        let mut rng = SmallRng::seed_from_u64(8);
        c.begin_epoch(0);
        c.receive_request(NodeId(1), NodeId(2));
        c.receive_request(NodeId(1), NodeId(3));
        c.receive_request(NodeId(4), NodeId(5));
        c.begin_epoch(1);
        let mut g = c.issue_grants(&mut rng, 1);
        g.sort_by_key(|(_, d)| d.0);
        assert_eq!(g.len(), 3);
        assert_eq!(g[0].1, NodeId(2));
        assert_eq!(g[1].1, NodeId(3));
        assert_eq!(g[2].1, NodeId(5));
    }
}
