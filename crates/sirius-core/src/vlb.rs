//! Valiant load-balanced routing (§4.2).
//!
//! Sirius routes traffic from a node uniformly across all other nodes on a
//! cell-by-cell basis; the chosen *intermediate* then forwards the cell to
//! its destination on its own scheduled slot. This converts any demand
//! matrix into a uniform one, which is exactly what the static cyclic
//! schedule provides capacity for, at a worst-case 2x throughput cost
//! (compensated by the uplink factor).
//!
//! We pick intermediates uniformly from all nodes except the source and the
//! destination, so every cell takes exactly two optical hops. (Routing *via*
//! the destination would collapse to a direct hop; excluding it keeps the
//! congestion-control queue bound meaningful at every receiver and matches
//! the distributed-DRRM analogy of §4.3.) Failed nodes are excluded.

use crate::topology::NodeId;
use rand::Rng;

/// Chooses intermediates for Valiant load balancing.
///
/// Keeps an alive-node list so failures (§4.5) shrink the detour set instead
/// of blackholing traffic.
#[derive(Debug, Clone)]
pub struct Vlb {
    alive: Vec<bool>,
    alive_count: usize,
}

impl Vlb {
    pub fn new(nodes: usize) -> Vlb {
        Vlb {
            alive: vec![true; nodes],
            alive_count: nodes,
        }
    }

    pub fn nodes(&self) -> usize {
        self.alive.len()
    }

    pub fn alive_count(&self) -> usize {
        self.alive_count
    }

    pub fn is_alive(&self, n: NodeId) -> bool {
        self.alive[n.0 as usize]
    }

    /// Mark a node failed: it will no longer be chosen as an intermediate.
    pub fn mark_failed(&mut self, n: NodeId) {
        if std::mem::replace(&mut self.alive[n.0 as usize], false) {
            self.alive_count -= 1;
        }
    }

    /// Mark a node recovered.
    pub fn mark_recovered(&mut self, n: NodeId) {
        if !std::mem::replace(&mut self.alive[n.0 as usize], true) {
            self.alive_count += 1;
        }
    }

    /// Pick an intermediate for a cell `src -> dst`, uniformly among alive
    /// nodes excluding both endpoints. Returns `None` if no eligible
    /// intermediate exists (e.g. a 2-node network or mass failure).
    pub fn pick<R: Rng + ?Sized>(&self, rng: &mut R, src: NodeId, dst: NodeId) -> Option<NodeId> {
        let n = self.alive.len();
        // Eligible count: alive nodes minus alive endpoints.
        let mut eligible = self.alive_count;
        if self.is_alive(src) {
            eligible -= 1;
        }
        if dst != src && self.is_alive(dst) {
            eligible -= 1;
        }
        if eligible == 0 {
            return None;
        }
        // Rejection sampling: with few failures this takes ~1 draw. Bound
        // the draws so a near-total failure (tiny alive fraction) cannot
        // stall the per-cell hot path for an unbounded number of rounds.
        for _ in 0..MAX_REJECTION_DRAWS {
            let c = NodeId(rng.gen_range(0..n as u32));
            if c != src && c != dst && self.alive[c.0 as usize] {
                return Some(c);
            }
        }
        // Fallback: one uniform draw over the eligible set by rank — O(n)
        // scan, still exactly uniform, and only reached when the eligible
        // fraction is so small that `MAX_REJECTION_DRAWS` misses repeatedly
        // (probability <= (1 - eligible/n)^MAX_REJECTION_DRAWS).
        let rank = rng.gen_range(0..eligible as u32);
        let mut seen = 0;
        for (i, &alive) in self.alive.iter().enumerate() {
            let c = NodeId(i as u32);
            if alive && c != src && c != dst {
                if seen == rank {
                    return Some(c);
                }
                seen += 1;
            }
        }
        unreachable!("eligible count disagrees with the alive list")
    }

    /// Like [`pick`](Self::pick), but restricted to intermediates for which
    /// `usable` returns true — e.g. nodes still reachable from the source
    /// *and* able to reach the destination through a column-repaired
    /// schedule (§4.5 link-granular repair). The distribution is exactly
    /// uniform over the surviving eligible set.
    ///
    /// This is a separate entry point rather than the default so the
    /// healthy fast path keeps its O(1) eligible count (and its exact RNG
    /// draw sequence, which run digests depend on).
    pub fn pick_where<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        src: NodeId,
        dst: NodeId,
        usable: impl Fn(NodeId) -> bool,
    ) -> Option<NodeId> {
        let n = self.alive.len();
        let ok = |c: NodeId| c != src && c != dst && self.alive[c.0 as usize] && usable(c);
        let eligible = (0..n as u32).filter(|&i| ok(NodeId(i))).count();
        if eligible == 0 {
            return None;
        }
        for _ in 0..MAX_REJECTION_DRAWS {
            let c = NodeId(rng.gen_range(0..n as u32));
            if ok(c) {
                return Some(c);
            }
        }
        let rank = rng.gen_range(0..eligible as u32);
        let mut seen = 0;
        for i in 0..n as u32 {
            let c = NodeId(i);
            if ok(c) {
                if seen == rank {
                    return Some(c);
                }
                seen += 1;
            }
        }
        unreachable!("eligible count disagrees with the filtered alive list")
    }
}

/// Rejection-sampling attempts before [`Vlb::pick`] falls back to a linear
/// scan. 32 misses at even a 10% alive fraction has probability ~3e-2;
/// below that the O(n) fallback is cheap relative to the failure state.
const MAX_REJECTION_DRAWS: usize = 32;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn never_picks_endpoints() {
        let v = Vlb::new(8);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let i = v.pick(&mut rng, NodeId(2), NodeId(5)).unwrap();
            assert_ne!(i, NodeId(2));
            assert_ne!(i, NodeId(5));
        }
    }

    #[test]
    fn uniform_over_eligible_nodes() {
        let v = Vlb::new(10);
        let mut rng = SmallRng::seed_from_u64(7);
        let mut counts = [0u32; 10];
        let n = 80_000;
        for _ in 0..n {
            let i = v.pick(&mut rng, NodeId(0), NodeId(1)).unwrap();
            counts[i.0 as usize] += 1;
        }
        assert_eq!(counts[0], 0);
        assert_eq!(counts[1], 0);
        let expect = n as f64 / 8.0;
        for &c in &counts[2..] {
            assert!(
                (c as f64 - expect).abs() < expect * 0.1,
                "non-uniform: {counts:?}"
            );
        }
    }

    #[test]
    fn excludes_failed_nodes() {
        let mut v = Vlb::new(5);
        v.mark_failed(NodeId(3));
        assert_eq!(v.alive_count(), 4);
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..500 {
            let i = v.pick(&mut rng, NodeId(0), NodeId(1)).unwrap();
            assert_ne!(i, NodeId(3));
        }
        v.mark_recovered(NodeId(3));
        assert_eq!(v.alive_count(), 5);
        let mut saw3 = false;
        for _ in 0..500 {
            saw3 |= v.pick(&mut rng, NodeId(0), NodeId(1)).unwrap() == NodeId(3);
        }
        assert!(saw3);
    }

    #[test]
    fn none_when_no_intermediate_exists() {
        let v = Vlb::new(2);
        let mut rng = SmallRng::seed_from_u64(9);
        assert_eq!(v.pick(&mut rng, NodeId(0), NodeId(1)), None);

        let mut v = Vlb::new(4);
        v.mark_failed(NodeId(2));
        v.mark_failed(NodeId(3));
        assert_eq!(v.pick(&mut rng, NodeId(0), NodeId(1)), None);
    }

    #[test]
    fn self_traffic_excludes_only_source() {
        // src == dst (intra-node traffic shouldn't reach VLB, but the API
        // must not underflow the eligible count).
        let v = Vlb::new(3);
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..100 {
            let i = v.pick(&mut rng, NodeId(1), NodeId(1)).unwrap();
            assert_ne!(i, NodeId(1));
        }
    }

    #[test]
    fn near_total_failure_terminates_and_stays_uniform() {
        // 4096 nodes with three survivors: a random draw hits an eligible
        // node with probability ~2/4096, so the bounded rejection loop
        // almost always misses and the linear-scan fallback must both
        // terminate and stay exactly uniform over the eligible pair.
        let n = 4096;
        let mut v = Vlb::new(n);
        for i in 0..n {
            if ![17, 1000, 3000].contains(&i) {
                v.mark_failed(NodeId(i as u32));
            }
        }
        assert_eq!(v.alive_count(), 3);
        let mut rng = SmallRng::seed_from_u64(13);
        let (mut a, mut b) = (0u32, 0u32);
        for _ in 0..2000 {
            let i = v.pick(&mut rng, NodeId(17), NodeId(5)).unwrap();
            match i.0 {
                1000 => a += 1,
                3000 => b += 1,
                other => panic!("picked ineligible node {other}"),
            }
        }
        assert!(a > 800 && b > 800, "skewed fallback: {a} vs {b}");

        // One survivor that is also the source: nothing eligible.
        let mut v = Vlb::new(64);
        for i in 1..64 {
            v.mark_failed(NodeId(i));
        }
        assert_eq!(v.pick(&mut rng, NodeId(0), NodeId(9)), None);
    }

    #[test]
    fn filtered_pick_respects_predicate_and_stays_uniform() {
        let v = Vlb::new(10);
        let mut rng = SmallRng::seed_from_u64(21);
        // Only even intermediates are usable (say, odd ones lost the TX
        // column serving the destination's group).
        let mut counts = [0u32; 10];
        let n = 40_000;
        for _ in 0..n {
            let i = v
                .pick_where(&mut rng, NodeId(0), NodeId(2), |c| c.0 % 2 == 0)
                .unwrap();
            counts[i.0 as usize] += 1;
        }
        // Eligible: {4, 6, 8} (0 is src, 2 is dst, odds filtered).
        for (i, &c) in counts.iter().enumerate() {
            if [4, 6, 8].contains(&i) {
                let expect = n as f64 / 3.0;
                assert!(
                    (c as f64 - expect).abs() < expect * 0.1,
                    "non-uniform: {counts:?}"
                );
            } else {
                assert_eq!(c, 0, "picked filtered-out node {i}");
            }
        }
    }

    #[test]
    fn filtered_pick_none_when_filter_empties_the_set() {
        let mut v = Vlb::new(6);
        v.mark_failed(NodeId(4));
        let mut rng = SmallRng::seed_from_u64(23);
        // Filter passes only the failed node and the endpoints.
        assert_eq!(
            v.pick_where(&mut rng, NodeId(0), NodeId(1), |c| c.0 <= 1 || c.0 == 4),
            None
        );
        // Unfiltered pick still succeeds.
        assert!(v.pick(&mut rng, NodeId(0), NodeId(1)).is_some());
    }

    #[test]
    fn filtered_pick_matches_pick_with_trivial_filter() {
        // With `|_| true` the two entry points draw from identical
        // distributions (they share the rejection-sampling structure).
        let v = Vlb::new(8);
        let mut rng_a = SmallRng::seed_from_u64(29);
        let mut rng_b = SmallRng::seed_from_u64(29);
        for _ in 0..2000 {
            let a = v.pick(&mut rng_a, NodeId(1), NodeId(6)).unwrap();
            let b = v
                .pick_where(&mut rng_b, NodeId(1), NodeId(6), |_| true)
                .unwrap();
            assert_eq!(a, b, "trivial filter diverged from plain pick");
        }
    }

    #[test]
    fn double_failure_is_idempotent() {
        let mut v = Vlb::new(4);
        v.mark_failed(NodeId(0));
        v.mark_failed(NodeId(0));
        assert_eq!(v.alive_count(), 3);
        v.mark_recovered(NodeId(0));
        v.mark_recovered(NodeId(0));
        assert_eq!(v.alive_count(), 4);
    }
}
