//! # sirius-core
//!
//! The network-layer contribution of *"Sirius: A Flat Datacenter Network
//! with Nanosecond Optical Switching"* (SIGCOMM 2020): a flat,
//! optically-switched topology with a static cyclic schedule, Valiant
//! load-balanced routing, and a request/grant congestion-control protocol
//! that bounds in-network queuing.
//!
//! The crate is deliberately simulator-agnostic: it holds the topology,
//! schedule and per-node protocol state machines; the cell-level network
//! simulator in `sirius-sim` drives them, and the physical substrate
//! (lasers, gratings, clock recovery) lives in `sirius-optics` and
//! `sirius-sync`.
//!
//! ## Map of the design (paper section -> module)
//!
//! | Paper | Module |
//! |-------|--------|
//! | §4.1 physical topology | [`topology`] |
//! | §4.2 routing & scheduling | [`schedule`], [`vlb`], [`cell`], [`reorder`] |
//! | §4.3 congestion control | [`congestion`], [`node`] |
//! | §4.5 fault tolerance | [`fault`] |
//!
//! ## Quick example
//!
//! ```
//! use sirius_core::config::SiriusConfig;
//! use sirius_core::schedule::{Schedule, SlotInEpoch};
//! use sirius_core::topology::{NodeId, UplinkId};
//!
//! // The paper's §7 deployment: 128 racks, 8x50G uplinks, 16-port gratings.
//! let cfg = SiriusConfig::paper_sim();
//! let sched = Schedule::new(&cfg);
//!
//! // Node 5 is connected to some destination on every uplink every slot...
//! let d = sched.dest(NodeId(5), UplinkId(2), SlotInEpoch(7));
//! // ...and every pair of nodes is connected at least once per epoch.
//! assert!(!sched.connections(NodeId(5), d).is_empty());
//! assert!((sched.epoch_len().as_us_f64() - 1.6).abs() < 0.01);
//! ```

pub mod arena;
pub mod cell;
pub mod config;
pub mod congestion;
pub mod deployment;
pub mod fault;
pub mod node;
pub mod reorder;
pub mod repair;
pub mod schedule;
pub mod topology;
pub mod units;
pub mod vlb;

pub use cell::{Cell, FlowId, Grant, Request};
pub use config::{ConfigError, SiriusConfig};
pub use congestion::{CcStats, CongestionState};
pub use node::{SiriusNode, SlotTx};
pub use reorder::ReorderBuffer;
pub use schedule::{Connection, Schedule, SlotInEpoch, Wavelength};
pub use topology::{GratingId, NodeId, ServerId, Topology, UplinkId};
pub use units::{Duration, Rate, Time};
pub use vlb::Vlb;
