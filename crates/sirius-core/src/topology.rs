//! Physical topology: nodes, uplinks, and the passive grating layer.
//!
//! Sirius wires every node to the optical core through `U` uplinks. Nodes are
//! partitioned into *groups* of `G` consecutive ids (`G` = grating ports).
//! For each uplink column `u` there is one grating per group; uplink `u` of
//! node `i` feeds input port `i mod G` of grating `(u, i / G)`, and output
//! port `q` of grating `(u, k)` feeds receive port `u` of node
//! `((k + shift(u)) mod groups) * G + q`.
//!
//! Because an AWGR routes input port `p` carrying wavelength `w` to output
//! port `(p + w) mod G` (§3.1), a node that tunes its lasers to wavelength
//! `w` at timeslot `t = w` reaches destination group `(k + shift(u))` at
//! within-group offset `(p + w) mod G` — exactly the cyclic schedule of
//! [`crate::schedule::Schedule`]. The topology and the schedule are two views
//! of the same codesign; an integration test drives light through this
//! physical model and checks it lands on the scheduled destination.

use crate::config::SiriusConfig;
use std::fmt;

/// Identifier of a node (rack switch or server) attached to the core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

/// Index of an uplink column (0-based). Each node has one TX and one RX port
/// per uplink column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct UplinkId(pub u16);

/// Identifier of a physical grating: the uplink column it serves and the
/// source group wired to its inputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GratingId {
    pub uplink: UplinkId,
    pub src_group: u32,
}

/// Identifier of a server: the node it hangs off and its index within it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ServerId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}
impl fmt::Display for ServerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// The static physical wiring of a Sirius deployment.
///
/// This is the "flat" topology of §4.1: a single layer of passive gratings,
/// no switches and no transceivers inside the core.
#[derive(Debug, Clone)]
pub struct Topology {
    nodes: usize,
    grating_ports: usize,
    groups: usize,
    /// Group shift of each uplink column (see [`shifts`](Self::shifts)).
    shifts: Vec<u32>,
    servers_per_node: usize,
}

impl Topology {
    /// Build the wiring for a validated configuration.
    ///
    /// Uplink columns `0..base_uplinks` get shifts `0..groups`, which is
    /// exactly enough for each node to reach every node (including itself,
    /// used as a calibration/loopback slot) once per epoch. Extra uplinks
    /// from the load-balancing factor get shifts spread evenly over the
    /// groups so the additional capacity is as uniform as a static wiring
    /// allows.
    pub fn new(cfg: &SiriusConfig) -> Topology {
        cfg.validate().expect("invalid SiriusConfig");
        let groups = cfg.groups();
        let total = cfg.total_uplinks();
        let mut shifts: Vec<u32> = (0..cfg.base_uplinks as u32).collect();
        let extra = total - cfg.base_uplinks;
        for e in 0..extra {
            // Spread extra columns evenly across the group-shift space.
            shifts.push(((e * groups) / extra.max(1)) as u32 % groups as u32);
        }
        Topology {
            nodes: cfg.nodes,
            grating_ports: cfg.grating_ports,
            groups,
            shifts,
            servers_per_node: cfg.servers_per_node,
        }
    }

    pub fn nodes(&self) -> usize {
        self.nodes
    }
    pub fn grating_ports(&self) -> usize {
        self.grating_ports
    }
    pub fn groups(&self) -> usize {
        self.groups
    }
    pub fn uplinks(&self) -> usize {
        self.shifts.len()
    }
    pub fn servers_per_node(&self) -> usize {
        self.servers_per_node
    }
    pub fn total_servers(&self) -> usize {
        self.nodes * self.servers_per_node
    }

    /// Group shift of uplink column `u`.
    pub fn shift(&self, u: UplinkId) -> u32 {
        self.shifts[u.0 as usize]
    }
    /// All uplink-column group shifts.
    pub fn shifts(&self) -> &[u32] {
        &self.shifts
    }

    /// Group that node `i` belongs to.
    pub fn group_of(&self, i: NodeId) -> u32 {
        i.0 / self.grating_ports as u32
    }
    /// Position of node `i` within its group (= its grating input port).
    pub fn port_of(&self, i: NodeId) -> u32 {
        i.0 % self.grating_ports as u32
    }

    /// The grating that TX uplink `u` of node `i` is spliced into.
    pub fn tx_grating(&self, i: NodeId, u: UplinkId) -> GratingId {
        GratingId {
            uplink: u,
            src_group: self.group_of(i),
        }
    }

    /// The node whose RX port `u` hangs off output `q` of grating `g`.
    pub fn rx_node(&self, g: GratingId, q: u32) -> NodeId {
        debug_assert!((q as usize) < self.grating_ports);
        let dst_group = (g.src_group + self.shift(g.uplink)) % self.groups as u32;
        NodeId(dst_group * self.grating_ports as u32 + q)
    }

    /// Total gratings in the core: one per (uplink column, group).
    pub fn grating_count(&self) -> usize {
        self.uplinks() * self.groups
    }

    /// Iterate over every grating id.
    pub fn gratings(&self) -> impl Iterator<Item = GratingId> + '_ {
        let groups = self.groups as u32;
        (0..self.uplinks() as u16).flat_map(move |u| {
            (0..groups).map(move |k| GratingId {
                uplink: UplinkId(u),
                src_group: k,
            })
        })
    }

    /// The node a server is attached to.
    pub fn node_of_server(&self, s: ServerId) -> NodeId {
        NodeId(s.0 / self.servers_per_node as u32)
    }

    /// Servers attached to a node.
    pub fn servers_of(&self, n: NodeId) -> impl Iterator<Item = ServerId> {
        let base = n.0 * self.servers_per_node as u32;
        (base..base + self.servers_per_node as u32).map(ServerId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper() -> Topology {
        Topology::new(&SiriusConfig::paper_sim())
    }

    #[test]
    fn paper_dimensions() {
        let t = paper();
        assert_eq!(t.nodes(), 128);
        assert_eq!(t.groups(), 8);
        assert_eq!(t.uplinks(), 12);
        assert_eq!(t.grating_count(), 12 * 8);
        // Base shifts cover every group exactly once.
        let mut base: Vec<u32> = t.shifts()[..8].to_vec();
        base.sort_unstable();
        assert_eq!(base, (0..8).collect::<Vec<_>>());
        // Extra shifts are spread: 4 extras over 8 groups -> 0,2,4,6.
        assert_eq!(&t.shifts()[8..], &[0, 2, 4, 6]);
    }

    #[test]
    fn groups_partition_nodes() {
        let t = paper();
        for i in 0..t.nodes() as u32 {
            let n = NodeId(i);
            assert_eq!(t.group_of(n) * t.grating_ports() as u32 + t.port_of(n), i);
        }
    }

    #[test]
    fn rx_wiring_is_a_bijection_per_uplink() {
        let t = paper();
        for u in 0..t.uplinks() as u16 {
            let mut seen = vec![false; t.nodes()];
            for k in 0..t.groups() as u32 {
                let g = GratingId {
                    uplink: UplinkId(u),
                    src_group: k,
                };
                for q in 0..t.grating_ports() as u32 {
                    let n = t.rx_node(g, q);
                    assert!(!seen[n.0 as usize], "node {n} wired twice on column {u}");
                    seen[n.0 as usize] = true;
                }
            }
            assert!(seen.iter().all(|&s| s), "column {u} misses nodes");
        }
    }

    #[test]
    fn server_node_mapping_roundtrips() {
        let t = paper();
        for n in 0..t.nodes() as u32 {
            for s in t.servers_of(NodeId(n)) {
                assert_eq!(t.node_of_server(s), NodeId(n));
            }
        }
        assert_eq!(t.total_servers(), 3072);
    }

    #[test]
    fn four_node_matches_fig5() {
        // The paper's Fig. 5: 4 nodes, 2 uplinks, 2-port gratings.
        let t = Topology::new(&SiriusConfig::four_node_prototype());
        assert_eq!(t.nodes(), 4);
        assert_eq!(t.uplinks(), 2);
        assert_eq!(t.groups(), 2);
        assert_eq!(t.grating_count(), 4);
        // Uplink 0 of node 0 reaches its own group {0,1}; uplink 1 reaches {2,3}.
        let g0 = t.tx_grating(NodeId(0), UplinkId(0));
        let reach0: Vec<_> = (0..2).map(|q| t.rx_node(g0, q).0).collect();
        assert_eq!(reach0, vec![0, 1]);
        let g1 = t.tx_grating(NodeId(0), UplinkId(1));
        let reach1: Vec<_> = (0..2).map(|q| t.rx_node(g1, q).0).collect();
        assert_eq!(reach1, vec![2, 3]);
    }
}
