//! Consistent schedule adjustment around failures (§4.5), at two grains.
//!
//! "For any failures that cannot be remedied immediately, the network
//! schedule for all the nodes can be adjusted to omit the failed node ...
//! albeit at the expense of extra mechanisms for consistent updates of the
//! nodes' schedules."
//!
//! Physics constrains what "adjust" can mean: the gratings are passive and
//! every transceiver on a node shares one wavelength per slot, so a slot
//! whose permutation lands on a dead receive port cannot be retargeted
//! without colliding with a live one. What *can* be done consistently:
//!
//! * mark the slots whose destination is the failed node as **dead** so
//!   senders skip protocol work for them (and can use them for
//!   calibration bursts);
//! * stop selecting the failed node as a Valiant intermediate (see
//!   [`crate::vlb`]) — this is what actually restores correctness;
//! * schedule the change at a future **update epoch** so every node flips
//!   at the same boundary (the consistent-update mechanism the paper
//!   alludes to; dissemination rides the cyclic schedule, so one epoch of
//!   lead time reaches everyone).
//!
//! The paper's rule excludes the *whole node* on any failure, costing
//! `1/N` of every node's uplink bandwidth. But a grey failure localized
//! to a single TX column (one uplink's slots) only poisons that column's
//! cells; omitting just the **(node, uplink) column** keeps the node's
//! other `U-1` uplinks and every RX port in service, costing `1/(N·U)`
//! instead. Both grains share the same staged, epoch-versioned update
//! path, and [`AdjustedSchedule::capacity_factor`] reports the combined
//! proportional loss `1 - failed/N - grey_columns/(N·U)`.

use crate::schedule::{Schedule, SlotInEpoch};
use crate::topology::{NodeId, UplinkId};

/// Repairs applied by one [`AdjustedSchedule::advance_to`] call, split by
/// grain. `true` means omit, `false` means readmit.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct AppliedRepairs {
    /// Whole-node transitions (the §4.5 rule / escalation path).
    pub nodes: Vec<(NodeId, bool)>,
    /// Single TX-column transitions (link-granular repair).
    pub columns: Vec<(NodeId, UplinkId, bool)>,
}

impl AppliedRepairs {
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty() && self.columns.is_empty()
    }
}

/// A schedule plus an epoch-versioned set of omitted (failed) nodes and
/// omitted (grey) TX columns.
#[derive(Debug)]
pub struct AdjustedSchedule {
    base: Schedule,
    /// Current omitted node set (applied).
    omitted: Vec<bool>,
    omitted_count: usize,
    /// Current omitted TX columns (applied), indexed `node * U + uplink`.
    omitted_col: Vec<bool>,
    omitted_col_count: usize,
    /// Pending updates: (activation epoch, node, column, omit?), sorted.
    /// `column == None` is a whole-node transition.
    pending: Vec<(u64, NodeId, Option<UplinkId>, bool)>,
}

impl AdjustedSchedule {
    pub fn new(base: Schedule) -> AdjustedSchedule {
        let n = base.nodes();
        let cols = n * base.uplinks();
        AdjustedSchedule {
            base,
            omitted: vec![false; n],
            omitted_count: 0,
            omitted_col: vec![false; cols],
            omitted_col_count: 0,
            pending: Vec::new(),
        }
    }

    pub fn base(&self) -> &Schedule {
        &self.base
    }

    fn col_idx(&self, node: NodeId, uplink: UplinkId) -> usize {
        node.0 as usize * self.base.uplinks() + uplink.0 as usize
    }

    fn stage(&mut self, epoch: u64, node: NodeId, col: Option<UplinkId>, omit: bool) {
        self.pending.push((epoch, node, col, omit));
        self.pending
            .sort_by_key(|&(e, n, c, _)| (e, n.0, c.map(|u| u.0)));
    }

    /// Stage the omission of `node`, activating at `epoch` (which must be
    /// far enough ahead for dissemination — at least one full epoch).
    pub fn stage_omit(&mut self, node: NodeId, epoch: u64) {
        self.stage(epoch, node, None, true);
    }

    /// Stage the re-admission of a repaired `node` at `epoch`.
    pub fn stage_readmit(&mut self, node: NodeId, epoch: u64) {
        self.stage(epoch, node, None, false);
    }

    /// Stage the omission of a single TX column — `node`'s `uplink` —
    /// activating at `epoch`. The node's other uplinks and all its RX
    /// ports stay in service.
    pub fn stage_omit_column(&mut self, node: NodeId, uplink: UplinkId, epoch: u64) {
        self.stage(epoch, node, Some(uplink), true);
    }

    /// Stage the re-admission of a repaired TX column at `epoch`.
    pub fn stage_readmit_column(&mut self, node: NodeId, uplink: UplinkId, epoch: u64) {
        self.stage(epoch, node, Some(uplink), false);
    }

    /// Apply all staged updates whose activation epoch has arrived.
    /// Returns the real transitions applied this call, split by grain;
    /// duplicate stagings are idempotent and report nothing.
    pub fn advance_to(&mut self, epoch: u64) -> AppliedRepairs {
        let mut applied = AppliedRepairs::default();
        while let Some(&(e, node, col, omit)) = self.pending.first() {
            if e > epoch {
                break;
            }
            self.pending.remove(0);
            match col {
                None => {
                    let slot = &mut self.omitted[node.0 as usize];
                    if *slot != omit {
                        *slot = omit;
                        self.omitted_count = if omit {
                            self.omitted_count + 1
                        } else {
                            self.omitted_count - 1
                        };
                        applied.nodes.push((node, omit));
                    }
                }
                Some(u) => {
                    let idx = self.col_idx(node, u);
                    let slot = &mut self.omitted_col[idx];
                    if *slot != omit {
                        *slot = omit;
                        self.omitted_col_count = if omit {
                            self.omitted_col_count + 1
                        } else {
                            self.omitted_col_count - 1
                        };
                        applied.columns.push((node, u, omit));
                    }
                }
            }
        }
        applied
    }

    pub fn is_omitted(&self, node: NodeId) -> bool {
        self.omitted[node.0 as usize]
    }

    /// Is this single TX column omitted? Independent of whole-node
    /// omission — an omitted node may have zero omitted columns.
    pub fn is_column_omitted(&self, node: NodeId, uplink: UplinkId) -> bool {
        self.omitted_col[self.col_idx(node, uplink)]
    }

    /// Any column omitted anywhere? `false` on the healthy fast path, so
    /// callers can skip per-destination reachability filtering entirely.
    pub fn has_omitted_columns(&self) -> bool {
        self.omitted_col_count > 0
    }

    /// The newest pending transition for this column, if any.
    pub fn pending_column(&self, node: NodeId, uplink: UplinkId) -> Option<bool> {
        self.pending
            .iter()
            .rev()
            .find(|&&(_, n, c, _)| n == node && c == Some(uplink))
            .map(|&(_, _, _, omit)| omit)
    }

    /// Currently omitted columns, for bookkeeping sweeps.
    pub fn omitted_columns(&self) -> Vec<(NodeId, UplinkId)> {
        let u = self.base.uplinks();
        self.omitted_col
            .iter()
            .enumerate()
            .filter(|&(_, &o)| o)
            .map(|(idx, _)| (NodeId((idx / u) as u32), UplinkId((idx % u) as u16)))
            .collect()
    }

    /// Can `i` reach `j` directly through the adjusted schedule — both
    /// endpoints live and at least one of the columns serving the
    /// `i -> j` group offset not omitted at `i`?
    pub fn pair_usable(&self, i: NodeId, j: NodeId) -> bool {
        if self.omitted[i.0 as usize] || self.omitted[j.0 as usize] {
            return false;
        }
        if self.omitted_col_count == 0 {
            return true;
        }
        let d = self.base.group_offset(i, j);
        self.base
            .columns_for_group_offset(d)
            .iter()
            .any(|&u| !self.is_column_omitted(i, u))
    }

    /// Destination of a slot, or `None` if the slot is dead: its scheduled
    /// destination is omitted, the source itself is omitted, or the
    /// source's TX column is omitted.
    pub fn dest(&self, i: NodeId, u: UplinkId, t: SlotInEpoch) -> Option<NodeId> {
        if self.omitted[i.0 as usize] || self.omitted_col[self.col_idx(i, u)] {
            return None;
        }
        let d = self.base.dest(i, u, t);
        if self.omitted[d.0 as usize] {
            None
        } else {
            Some(d)
        }
    }

    /// Fraction of the fabric's uplink slots still usable:
    /// `1 - failed/N - live_grey_columns/(N·U)`. Columns on an omitted
    /// node are already covered by the `failed/N` term and don't
    /// double-count.
    pub fn capacity_factor(&self) -> f64 {
        let n = self.base.nodes();
        let u = self.base.uplinks();
        let mut f = 1.0 - self.omitted_count as f64 / n as f64;
        if self.omitted_col_count > 0 {
            let live_cols = self
                .omitted_col
                .iter()
                .enumerate()
                .filter(|&(idx, &o)| o && !self.omitted[idx / u])
                .count();
            f -= live_cols as f64 / (n * u) as f64;
        }
        f
    }

    /// Dead slots per epoch for a live node (usable for calibration
    /// bursts / keepalives).
    pub fn dead_slots_per_epoch(&self, i: NodeId) -> usize {
        if self.omitted[i.0 as usize] {
            return 0;
        }
        let mut dead = 0;
        for u in 0..self.base.uplinks() as u16 {
            for t in 0..self.base.epoch_slots() as u16 {
                if self.dest(i, UplinkId(u), SlotInEpoch(t)).is_none() {
                    dead += 1;
                }
            }
        }
        dead
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SiriusConfig;

    fn adj() -> AdjustedSchedule {
        AdjustedSchedule::new(Schedule::new(&SiriusConfig::scaled(16, 4)))
    }

    #[test]
    fn updates_activate_atomically_at_their_epoch() {
        let mut a = adj();
        a.stage_omit(NodeId(3), 10);
        assert!(a.advance_to(9).is_empty());
        assert!(!a.is_omitted(NodeId(3)));
        let applied = a.advance_to(10);
        assert_eq!(applied.nodes, vec![(NodeId(3), true)]);
        assert!(applied.columns.is_empty());
        assert!(a.is_omitted(NodeId(3)));
    }

    #[test]
    fn dead_slots_match_the_proportional_rule() {
        let mut a = adj();
        a.stage_omit(NodeId(5), 0);
        a.advance_to(0);
        // Every live node loses exactly the slots that pointed at node 5:
        // base columns connect each pair once per epoch, extras can add a
        // second — so dead slots = connections_per_epoch(i, 5).
        for i in 0..16u32 {
            if i == 5 {
                continue;
            }
            let expect = a.base().connections_per_epoch(NodeId(i), NodeId(5));
            assert_eq!(
                a.dead_slots_per_epoch(NodeId(i)),
                expect,
                "node {i} dead slots"
            );
        }
        assert!((a.capacity_factor() - 15.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn dest_filters_failed_endpoints() {
        let mut a = adj();
        a.stage_omit(NodeId(2), 0);
        a.advance_to(0);
        for u in 0..a.base().uplinks() as u16 {
            for t in 0..a.base().epoch_slots() as u16 {
                for i in 0..16u32 {
                    let d = a.dest(NodeId(i), UplinkId(u), SlotInEpoch(t));
                    if i == 2 {
                        assert_eq!(d, None, "omitted node must not transmit");
                    } else if let Some(d) = d {
                        assert_ne!(d, NodeId(2), "slot still points at the corpse");
                    }
                }
            }
        }
    }

    #[test]
    fn readmission_restores_capacity() {
        let mut a = adj();
        a.stage_omit(NodeId(7), 5);
        a.stage_readmit(NodeId(7), 50);
        a.advance_to(5);
        assert!((a.capacity_factor() - 15.0 / 16.0).abs() < 1e-12);
        a.advance_to(50);
        assert_eq!(a.capacity_factor(), 1.0);
        assert!(!a.is_omitted(NodeId(7)));
        assert_eq!(a.dead_slots_per_epoch(NodeId(0)), 0);
    }

    #[test]
    fn duplicate_updates_are_idempotent() {
        let mut a = adj();
        a.stage_omit(NodeId(1), 3);
        a.stage_omit(NodeId(1), 4);
        a.advance_to(10);
        assert!(a.is_omitted(NodeId(1)));
        assert!((a.capacity_factor() - 15.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn multiple_failures_accumulate() {
        let mut a = adj();
        for k in 0..4 {
            a.stage_omit(NodeId(k), 0);
        }
        a.advance_to(0);
        assert!((a.capacity_factor() - 12.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn column_omission_costs_one_over_nu() {
        let mut a = adj();
        let u = a.base().uplinks();
        a.stage_omit_column(NodeId(3), UplinkId(1), 10);
        assert!(a.advance_to(9).is_empty());
        assert!(!a.is_column_omitted(NodeId(3), UplinkId(1)));
        let applied = a.advance_to(10);
        assert_eq!(applied.columns, vec![(NodeId(3), UplinkId(1), true)]);
        assert!(applied.nodes.is_empty());
        assert!(a.is_column_omitted(NodeId(3), UplinkId(1)));
        assert!(a.has_omitted_columns());
        let expect = 1.0 - 1.0 / (16.0 * u as f64);
        assert!(
            (a.capacity_factor() - expect).abs() < 1e-12,
            "one grey column must cost 1/(N*U), got {}",
            a.capacity_factor()
        );
        // The dead slots are exactly that column's slots at node 3, and
        // nothing anywhere else.
        assert_eq!(
            a.dead_slots_per_epoch(NodeId(3)) as u64,
            a.base().epoch_slots()
        );
        for i in 0..16u32 {
            if i == 3 {
                continue;
            }
            assert_eq!(a.dead_slots_per_epoch(NodeId(i)), 0, "node {i}");
        }
    }

    #[test]
    fn column_readmission_restores_capacity_and_reports_transition() {
        let mut a = adj();
        a.stage_omit_column(NodeId(2), UplinkId(0), 5);
        a.stage_readmit_column(NodeId(2), UplinkId(0), 20);
        a.advance_to(5);
        assert!(a.has_omitted_columns());
        assert_eq!(a.pending_column(NodeId(2), UplinkId(0)), Some(false));
        let applied = a.advance_to(20);
        assert_eq!(applied.columns, vec![(NodeId(2), UplinkId(0), false)]);
        assert!(!a.has_omitted_columns());
        assert_eq!(a.capacity_factor(), 1.0);
        assert_eq!(a.pending_column(NodeId(2), UplinkId(0)), None);
    }

    #[test]
    fn duplicate_column_updates_are_idempotent() {
        let mut a = adj();
        a.stage_omit_column(NodeId(4), UplinkId(2), 3);
        a.stage_omit_column(NodeId(4), UplinkId(2), 4);
        let applied = a.advance_to(10);
        assert_eq!(applied.columns.len(), 1);
        let u = a.base().uplinks() as f64;
        assert!((a.capacity_factor() - (1.0 - 1.0 / (16.0 * u))).abs() < 1e-12);
    }

    #[test]
    fn node_omission_subsumes_its_columns_in_capacity() {
        // A grey column on a node that later dies entirely must not be
        // double-counted: the node term covers all its columns.
        let mut a = adj();
        a.stage_omit_column(NodeId(6), UplinkId(1), 0);
        a.advance_to(0);
        a.stage_omit(NodeId(6), 1);
        a.advance_to(1);
        assert!((a.capacity_factor() - 15.0 / 16.0).abs() < 1e-12);
        assert_eq!(
            a.omitted_columns(),
            vec![(NodeId(6), UplinkId(1))],
            "column state survives node omission for later readmission"
        );
    }

    #[test]
    fn pair_usable_tracks_column_coverage() {
        let mut a = adj();
        let src = NodeId(3);
        let dst = NodeId(9);
        assert!(a.pair_usable(src, dst));
        let d = a.base().group_offset(src, dst);
        let cols: Vec<UplinkId> = a.base().columns_for_group_offset(d).to_vec();
        assert!(!cols.is_empty());
        // Kill all but the last column serving this offset: still usable.
        for (k, &u) in cols.iter().enumerate() {
            if k + 1 < cols.len() {
                a.stage_omit_column(src, u, 0);
            }
        }
        a.advance_to(0);
        assert!(a.pair_usable(src, dst), "one live column should suffice");
        // Kill the last: the src->dst group offset is now unreachable.
        a.stage_omit_column(src, *cols.last().unwrap(), 1);
        a.advance_to(1);
        assert!(!a.pair_usable(src, dst));
        // Other sources are unaffected.
        assert!(a.pair_usable(NodeId(0), dst));
        // dest() agrees: no slot at src reaches dst any more.
        for u in 0..a.base().uplinks() as u16 {
            for t in 0..a.base().epoch_slots() as u16 {
                assert_ne!(a.dest(src, UplinkId(u), SlotInEpoch(t)), Some(dst));
            }
        }
    }

    #[test]
    fn mixed_grain_transitions_apply_in_one_advance() {
        let mut a = adj();
        a.stage_omit(NodeId(1), 7);
        a.stage_omit_column(NodeId(2), UplinkId(3), 7);
        let applied = a.advance_to(7);
        assert_eq!(applied.nodes, vec![(NodeId(1), true)]);
        assert_eq!(applied.columns, vec![(NodeId(2), UplinkId(3), true)]);
        let u = a.base().uplinks() as f64;
        let expect = 1.0 - 1.0 / 16.0 - 1.0 / (16.0 * u);
        assert!((a.capacity_factor() - expect).abs() < 1e-12);
    }
}
