//! Consistent schedule adjustment around failures (§4.5).
//!
//! "For any failures that cannot be remedied immediately, the network
//! schedule for all the nodes can be adjusted to omit the failed node ...
//! albeit at the expense of extra mechanisms for consistent updates of the
//! nodes' schedules."
//!
//! Physics constrains what "adjust" can mean: the gratings are passive and
//! every transceiver on a node shares one wavelength per slot, so a slot
//! whose permutation lands on a dead receive port cannot be retargeted
//! without colliding with a live one. What *can* be done consistently:
//!
//! * mark the slots whose destination is the failed node as **dead** so
//!   senders skip protocol work for them (and can use them for
//!   calibration bursts);
//! * stop selecting the failed node as a Valiant intermediate (see
//!   [`crate::vlb`]) — this is what actually restores correctness;
//! * schedule the change at a future **update epoch** so every node flips
//!   at the same boundary (the consistent-update mechanism the paper
//!   alludes to; dissemination rides the cyclic schedule, so one epoch of
//!   lead time reaches everyone).
//!
//! The resulting capacity loss is exactly the dead-slot fraction, i.e.
//! `failed/N` of every node's uplink bandwidth — the paper's
//! proportional-loss rule — and is what [`AdjustedSchedule::capacity_factor`]
//! reports.

use crate::schedule::{Schedule, SlotInEpoch};
use crate::topology::{NodeId, UplinkId};

/// A schedule plus an epoch-versioned set of omitted (failed) nodes.
#[derive(Debug)]
pub struct AdjustedSchedule {
    base: Schedule,
    /// Current omitted set (applied).
    omitted: Vec<bool>,
    omitted_count: usize,
    /// A pending update: (activation epoch, node, omit?).
    pending: Vec<(u64, NodeId, bool)>,
}

impl AdjustedSchedule {
    pub fn new(base: Schedule) -> AdjustedSchedule {
        let n = base.nodes();
        AdjustedSchedule {
            base,
            omitted: vec![false; n],
            omitted_count: 0,
            pending: Vec::new(),
        }
    }

    pub fn base(&self) -> &Schedule {
        &self.base
    }

    /// Stage the omission of `node`, activating at `epoch` (which must be
    /// far enough ahead for dissemination — at least one full epoch).
    pub fn stage_omit(&mut self, node: NodeId, epoch: u64) {
        self.pending.push((epoch, node, true));
        self.pending.sort_by_key(|&(e, n, _)| (e, n.0));
    }

    /// Stage the re-admission of a repaired `node` at `epoch`.
    pub fn stage_readmit(&mut self, node: NodeId, epoch: u64) {
        self.pending.push((epoch, node, false));
        self.pending.sort_by_key(|&(e, n, _)| (e, n.0));
    }

    /// Apply all staged updates whose activation epoch has arrived.
    /// Returns the changes applied this call.
    pub fn advance_to(&mut self, epoch: u64) -> Vec<(NodeId, bool)> {
        let mut applied = Vec::new();
        while let Some(&(e, node, omit)) = self.pending.first() {
            if e > epoch {
                break;
            }
            self.pending.remove(0);
            let slot = &mut self.omitted[node.0 as usize];
            if *slot != omit {
                *slot = omit;
                self.omitted_count = if omit {
                    self.omitted_count + 1
                } else {
                    self.omitted_count - 1
                };
                applied.push((node, omit));
            }
        }
        applied
    }

    pub fn is_omitted(&self, node: NodeId) -> bool {
        self.omitted[node.0 as usize]
    }

    /// Destination of a slot, or `None` if the slot is dead (its scheduled
    /// destination is omitted) or the source itself is omitted.
    pub fn dest(&self, i: NodeId, u: UplinkId, t: SlotInEpoch) -> Option<NodeId> {
        if self.omitted[i.0 as usize] {
            return None;
        }
        let d = self.base.dest(i, u, t);
        if self.omitted[d.0 as usize] {
            None
        } else {
            Some(d)
        }
    }

    /// Fraction of each node's uplink slots still usable: `1 - failed/N`
    /// (the paper's proportional bandwidth-loss rule).
    pub fn capacity_factor(&self) -> f64 {
        1.0 - self.omitted_count as f64 / self.base.nodes() as f64
    }

    /// Dead slots per epoch for a live node (usable for calibration
    /// bursts / keepalives).
    pub fn dead_slots_per_epoch(&self, i: NodeId) -> usize {
        if self.omitted[i.0 as usize] {
            return 0;
        }
        let mut dead = 0;
        for u in 0..self.base.uplinks() as u16 {
            for t in 0..self.base.epoch_slots() as u16 {
                if self.dest(i, UplinkId(u), SlotInEpoch(t)).is_none() {
                    dead += 1;
                }
            }
        }
        dead
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SiriusConfig;

    fn adj() -> AdjustedSchedule {
        AdjustedSchedule::new(Schedule::new(&SiriusConfig::scaled(16, 4)))
    }

    #[test]
    fn updates_activate_atomically_at_their_epoch() {
        let mut a = adj();
        a.stage_omit(NodeId(3), 10);
        assert!(a.advance_to(9).is_empty());
        assert!(!a.is_omitted(NodeId(3)));
        let applied = a.advance_to(10);
        assert_eq!(applied, vec![(NodeId(3), true)]);
        assert!(a.is_omitted(NodeId(3)));
    }

    #[test]
    fn dead_slots_match_the_proportional_rule() {
        let mut a = adj();
        a.stage_omit(NodeId(5), 0);
        a.advance_to(0);
        // Every live node loses exactly the slots that pointed at node 5:
        // base columns connect each pair once per epoch, extras can add a
        // second — so dead slots = connections_per_epoch(i, 5).
        for i in 0..16u32 {
            if i == 5 {
                continue;
            }
            let expect = a.base().connections_per_epoch(NodeId(i), NodeId(5));
            assert_eq!(
                a.dead_slots_per_epoch(NodeId(i)),
                expect,
                "node {i} dead slots"
            );
        }
        assert!((a.capacity_factor() - 15.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn dest_filters_failed_endpoints() {
        let mut a = adj();
        a.stage_omit(NodeId(2), 0);
        a.advance_to(0);
        for u in 0..a.base().uplinks() as u16 {
            for t in 0..a.base().epoch_slots() as u16 {
                for i in 0..16u32 {
                    let d = a.dest(NodeId(i), UplinkId(u), SlotInEpoch(t));
                    if i == 2 {
                        assert_eq!(d, None, "omitted node must not transmit");
                    } else if let Some(d) = d {
                        assert_ne!(d, NodeId(2), "slot still points at the corpse");
                    }
                }
            }
        }
    }

    #[test]
    fn readmission_restores_capacity() {
        let mut a = adj();
        a.stage_omit(NodeId(7), 5);
        a.stage_readmit(NodeId(7), 50);
        a.advance_to(5);
        assert!((a.capacity_factor() - 15.0 / 16.0).abs() < 1e-12);
        a.advance_to(50);
        assert_eq!(a.capacity_factor(), 1.0);
        assert!(!a.is_omitted(NodeId(7)));
        assert_eq!(a.dead_slots_per_epoch(NodeId(0)), 0);
    }

    #[test]
    fn duplicate_updates_are_idempotent() {
        let mut a = adj();
        a.stage_omit(NodeId(1), 3);
        a.stage_omit(NodeId(1), 4);
        a.advance_to(10);
        assert!(a.is_omitted(NodeId(1)));
        assert!((a.capacity_factor() - 15.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn multiple_failures_accumulate() {
        let mut a = adj();
        for k in 0..4 {
            a.stage_omit(NodeId(k), 0);
        }
        a.advance_to(0);
        assert!((a.capacity_factor() - 12.0 / 16.0).abs() < 1e-12);
    }
}
