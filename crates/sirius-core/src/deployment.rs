//! Deployment planning: the §4.1 sizing arithmetic as checked code.
//!
//! The paper derives several headline deployment points:
//!
//! * **Server-based cluster** — accelerator servers with 48 x 50 Gbps
//!   channels, each channel on a different 100-port grating, connect
//!   "4,800 servers (48 x 100), serving as a large cluster".
//! * **Rack-based datacenter** — rack switches with 512 SERDES (256
//!   uplinks) and 100-port gratings reach "25,600 (100 x 256) racks".
//! * **A large datacenter with 4,096 racks could thus be connected
//!   through just 16-port gratings."
//!
//! [`plan`] reproduces that arithmetic generically — given node count and
//! per-node uplinks, it returns the grating size, epoch, laser chip count
//! (via the §4.5 link budget) and validates the geometry against
//! [`crate::config::SiriusConfig`] — so a would-be operator can size a
//! deployment the way the authors did.

use crate::config::{ConfigError, SiriusConfig};
use crate::units::{Duration, Rate};

/// Whether the optical endpoints are servers or rack switches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeploymentKind {
    /// Servers attach directly: all-optical, non-CMOS network (§4.5).
    ServerBased,
    /// Rack switches attach; servers hang off electrical ToRs.
    RackBased,
}

/// A sized deployment.
#[derive(Debug, Clone)]
pub struct Plan {
    pub kind: DeploymentKind,
    pub nodes: usize,
    pub base_uplinks: usize,
    pub uplink_factor: f64,
    pub grating_ports: usize,
    pub gratings: usize,
    pub epoch: Duration,
    /// Tunable laser chips per node at 8-way sharing (+1 spare).
    pub laser_chips_per_node: usize,
    /// Aggregate injectable bandwidth (before the uplink factor).
    pub bisection: Rate,
}

/// Size a deployment: `nodes` endpoints, each with `base_uplinks` channels
/// of `channel` rate, cells of `slot` duration, lasers shared `share`-ways.
pub fn plan(
    kind: DeploymentKind,
    nodes: usize,
    base_uplinks: usize,
    channel: Rate,
    slot: Duration,
    share: usize,
) -> Result<Plan, ConfigError> {
    if base_uplinks == 0 {
        return Err(ConfigError::ZeroField("base_uplinks"));
    }
    if !nodes.is_multiple_of(base_uplinks) {
        return Err(ConfigError::NodesNotMultipleOfGrating {
            nodes,
            grating_ports: nodes / base_uplinks.max(1),
        });
    }
    let grating_ports = nodes / base_uplinks;
    // Validate via the real config machinery.
    let mut cfg = SiriusConfig::scaled(nodes, grating_ports);
    cfg.channel_rate = channel;
    cfg.validate()?;
    let groups = nodes / grating_ports;
    Ok(Plan {
        kind,
        nodes,
        base_uplinks,
        uplink_factor: cfg.uplink_factor,
        grating_ports,
        gratings: base_uplinks * groups,
        epoch: slot * grating_ports as u64,
        laser_chips_per_node: base_uplinks.div_ceil(share.max(1)) + 1,
        bisection: Rate::from_bps(channel.as_bps() * base_uplinks as u64 * nodes as u64 / 2),
    })
}

/// Maximum endpoints reachable with `uplinks` per node and `ports`-port
/// gratings (the paper's "W x uplinks" rule).
pub fn max_nodes(uplinks: usize, ports: usize) -> usize {
    uplinks * ports
}

#[cfg(test)]
mod tests {
    use super::*;

    const SLOT: Duration = Duration::from_ps(99_920);

    #[test]
    fn server_cluster_4800_gpus() {
        // §4.1: 48 x 50 Gbps channels on 100-port gratings -> 4,800
        // servers.
        assert_eq!(max_nodes(48, 100), 4_800);
        let p = plan(
            DeploymentKind::ServerBased,
            4_800,
            48,
            Rate::from_gbps(50),
            SLOT,
            8,
        )
        .unwrap();
        assert_eq!(p.grating_ports, 100);
        assert_eq!(p.gratings, 48 * 48);
        // 48 uplinks / 8-way sharing + spare = 7 chips per server.
        assert_eq!(p.laser_chips_per_node, 7);
        // Epoch = 100 slots ~ 10 us.
        assert!((p.epoch.as_us_f64() - 9.992).abs() < 0.01);
    }

    #[test]
    fn rack_datacenter_25600_racks() {
        // §4.1: 256 uplinks, 100-port gratings -> 25,600 racks.
        assert_eq!(max_nodes(256, 100), 25_600);
        let p = plan(
            DeploymentKind::RackBased,
            25_600,
            256,
            Rate::from_gbps(50),
            SLOT,
            8,
        )
        .unwrap();
        assert_eq!(p.grating_ports, 100);
        // "a rack with 256 uplinks would only need 32 tunable laser
        // chips" (+1 spare here).
        assert_eq!(p.laser_chips_per_node, 33);
        // 6x the size of a large (4,096-rack) datacenter today.
        assert!(p.nodes > 6 * 4_096);
    }

    #[test]
    fn large_datacenter_16_port_gratings() {
        // §4.1: "A large datacenter with 4,096 racks could thus be
        // connected through just 16-port gratings."
        let p = plan(
            DeploymentKind::RackBased,
            4_096,
            256,
            Rate::from_gbps(50),
            SLOT,
            8,
        )
        .unwrap();
        assert_eq!(p.grating_ports, 16);
        assert!((p.epoch.as_us_f64() - 1.6).abs() < 0.01);
    }

    #[test]
    fn paper_sim_geometry() {
        let p = plan(
            DeploymentKind::RackBased,
            128,
            8,
            Rate::from_gbps(50),
            SLOT,
            8,
        )
        .unwrap();
        assert_eq!(p.grating_ports, 16);
        assert_eq!(p.gratings, 8 * 8);
        assert_eq!(p.laser_chips_per_node, 2);
        // Bisection: 128 x 400G / 2 = 25.6 Tbps.
        assert_eq!(p.bisection, Rate::from_bps(25_600_000_000_000));
    }

    #[test]
    fn bad_geometry_is_rejected() {
        assert!(plan(
            DeploymentKind::RackBased,
            100,
            7,
            Rate::from_gbps(50),
            SLOT,
            8
        )
        .is_err());
        assert!(plan(
            DeploymentKind::RackBased,
            100,
            0,
            Rate::from_gbps(50),
            SLOT,
            8
        )
        .is_err());
    }
}
