//! The static, contention-free cyclic schedule (§4.2).
//!
//! Sirius is "scheduler-less": there is no demand collection and no runtime
//! schedule computation. Every node follows the same precomputed cyclic
//! schedule — at timeslot `t` of the epoch every laser in the datacenter is
//! tuned to wavelength `t` (this is what makes laser sharing possible,
//! §4.5), and uplink column `u` of node `i` is therefore connected to
//!
//! ```text
//! dest(i, u, t) = ((group(i) + shift(u)) mod groups) * G + ((port(i) + t) mod G)
//! ```
//!
//! The schedule has three properties the rest of the stack relies on,
//! all of which are property-tested below:
//!
//! 1. **Contention-free**: at every slot, `i -> dest(i, u, t)` is a
//!    permutation for each column `u`, so no receive port ever sees two
//!    senders (the optical core has no buffers, §4.2).
//! 2. **Complete**: over one epoch the base columns connect every ordered
//!    node pair exactly once — the "equal-rate connectivity between all
//!    nodes" that Valiant load balancing needs.
//! 3. **Periodic**: every pair reconnects every epoch, which underpins
//!    piggybacked congestion control (§4.3), rotating-leader time sync
//!    (§4.4) and phase caching (§4.5).

use crate::config::SiriusConfig;
use crate::topology::{NodeId, Topology, UplinkId};
use crate::units::Duration;

/// A wavelength index on the grating's cyclic grid (0..G).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Wavelength(pub u16);

/// A timeslot index within the epoch (0..G).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SlotInEpoch(pub u16);

/// One connection opportunity from a source node: which uplink column and
/// which slot of the epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Connection {
    pub uplink: UplinkId,
    pub slot: SlotInEpoch,
}

/// The precomputed cyclic schedule for a given topology.
#[derive(Debug, Clone)]
pub struct Schedule {
    nodes: usize,
    g: usize,
    groups: usize,
    shifts: Vec<u32>,
    /// `columns_for_shift[d]` = uplink columns whose group shift is `d`.
    columns_for_shift: Vec<Vec<UplinkId>>,
    slot_len: Duration,
}

impl Schedule {
    pub fn new(cfg: &SiriusConfig) -> Schedule {
        let topo = Topology::new(cfg);
        Schedule::from_topology(&topo, cfg.slot())
    }

    pub fn from_topology(topo: &Topology, slot_len: Duration) -> Schedule {
        let mut columns_for_shift = vec![Vec::new(); topo.groups()];
        for (u, &s) in topo.shifts().iter().enumerate() {
            columns_for_shift[s as usize].push(UplinkId(u as u16));
        }
        Schedule {
            nodes: topo.nodes(),
            g: topo.grating_ports(),
            groups: topo.groups(),
            shifts: topo.shifts().to_vec(),
            columns_for_shift,
            slot_len,
        }
    }

    pub fn nodes(&self) -> usize {
        self.nodes
    }
    pub fn uplinks(&self) -> usize {
        self.shifts.len()
    }
    /// Slots per epoch (= grating ports).
    pub fn epoch_slots(&self) -> u64 {
        self.g as u64
    }
    pub fn slot_len(&self) -> Duration {
        self.slot_len
    }
    pub fn epoch_len(&self) -> Duration {
        self.slot_len * self.g as u64
    }

    /// The wavelength every laser in the network uses at epoch slot `t`.
    /// One wavelength for the whole datacenter per slot is what allows a
    /// single tunable laser to be shared by all of a node's transceivers.
    pub fn wavelength(&self, t: SlotInEpoch) -> Wavelength {
        debug_assert!((t.0 as usize) < self.g);
        Wavelength(t.0)
    }

    /// Epoch slot given an absolute slot counter.
    pub fn slot_in_epoch(&self, abs_slot: u64) -> SlotInEpoch {
        SlotInEpoch((abs_slot % self.g as u64) as u16)
    }

    /// Epoch index given an absolute slot counter.
    pub fn epoch_of(&self, abs_slot: u64) -> u64 {
        abs_slot / self.g as u64
    }

    /// Destination of uplink `u` of node `i` at epoch slot `t`.
    pub fn dest(&self, i: NodeId, u: UplinkId, t: SlotInEpoch) -> NodeId {
        let g = self.g as u32;
        let group = i.0 / g;
        let port = i.0 % g;
        let shift = self.shifts[u.0 as usize];
        let dst_group = (group + shift) % self.groups as u32;
        NodeId(dst_group * g + (port + t.0 as u32) % g)
    }

    /// Which node is transmitting into RX column `u` of node `j` at slot `t`
    /// (the inverse of [`dest`](Self::dest)).
    pub fn source(&self, j: NodeId, u: UplinkId, t: SlotInEpoch) -> NodeId {
        let g = self.g as u32;
        let groups = self.groups as u32;
        let dst_group = j.0 / g;
        let q = j.0 % g;
        let shift = self.shifts[u.0 as usize];
        let src_group = (dst_group + groups - shift % groups) % groups;
        let port = (q + g - t.0 as u32 % g) % g;
        NodeId(src_group * g + port)
    }

    /// All connection opportunities from `i` to `j` within one epoch.
    ///
    /// The base columns provide exactly one; extra load-balancing columns
    /// can add a second for some group offsets.
    pub fn connections(&self, i: NodeId, j: NodeId) -> Vec<Connection> {
        let g = self.g as u32;
        let groups = self.groups as u32;
        let d = ((j.0 / g) + groups - (i.0 / g)) % groups;
        let t = SlotInEpoch((((j.0 % g) + g - (i.0 % g)) % g) as u16);
        self.columns_for_shift[d as usize]
            .iter()
            .map(|&u| Connection { uplink: u, slot: t })
            .collect()
    }

    /// Uplink columns whose shift connects group offset `d`.
    pub fn columns_for_group_offset(&self, d: u32) -> &[UplinkId] {
        &self.columns_for_shift[d as usize]
    }

    /// Group offset from `i` to `j` — the index into
    /// [`columns_for_group_offset`](Self::columns_for_group_offset) naming
    /// the TX columns that carry `i -> j` traffic.
    pub fn group_offset(&self, i: NodeId, j: NodeId) -> u32 {
        let g = self.g as u32;
        let groups = self.groups as u32;
        ((j.0 / g) + groups - (i.0 / g)) % groups
    }

    /// Connections from `i` to `j` per epoch (1 for base-only offsets, 2
    /// where an extra column duplicates coverage).
    pub fn connections_per_epoch(&self, i: NodeId, j: NodeId) -> usize {
        let g = self.g as u32;
        let groups = self.groups as u32;
        let d = ((j.0 / g) + groups - (i.0 / g)) % groups;
        self.columns_for_shift[d as usize].len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sched(cfg: &SiriusConfig) -> Schedule {
        Schedule::new(cfg)
    }

    #[test]
    fn fig5_schedule_reproduced() {
        // Paper Fig. 5b: 4 nodes, 2 uplinks, wavelengths A,B = 0,1.
        // (Node 1,port 1) slot A -> (1,1); slot B -> (2,1) [1-indexed there].
        let s = sched(&SiriusConfig::four_node_prototype());
        // 0-indexed: node 0 uplink 0: slot0 -> node 0 (self), slot1 -> node 1
        assert_eq!(s.dest(NodeId(0), UplinkId(0), SlotInEpoch(0)), NodeId(0));
        assert_eq!(s.dest(NodeId(0), UplinkId(0), SlotInEpoch(1)), NodeId(1));
        // node 0 uplink 1: slot0 -> node 2, slot1 -> node 3
        assert_eq!(s.dest(NodeId(0), UplinkId(1), SlotInEpoch(0)), NodeId(2));
        assert_eq!(s.dest(NodeId(0), UplinkId(1), SlotInEpoch(1)), NodeId(3));
        // node 1 uplink 0: slot0 -> node 1 (self), slot1 -> node 0 (wraps)
        assert_eq!(s.dest(NodeId(1), UplinkId(0), SlotInEpoch(0)), NodeId(1));
        assert_eq!(s.dest(NodeId(1), UplinkId(0), SlotInEpoch(1)), NodeId(0));
    }

    #[test]
    fn contention_free_every_slot_paper_scale() {
        let s = sched(&SiriusConfig::paper_sim());
        for u in 0..s.uplinks() as u16 {
            for t in 0..s.epoch_slots() as u16 {
                let mut seen = vec![false; s.nodes()];
                for i in 0..s.nodes() as u32 {
                    let d = s.dest(NodeId(i), UplinkId(u), SlotInEpoch(t));
                    assert!(
                        !seen[d.0 as usize],
                        "two senders hit {d} on column {u} slot {t}"
                    );
                    seen[d.0 as usize] = true;
                }
            }
        }
    }

    #[test]
    fn base_columns_connect_every_pair_once_per_epoch() {
        let cfg = SiriusConfig::scaled(32, 8);
        let s = sched(&cfg);
        let base = cfg.base_uplinks;
        let mut count = vec![vec![0u32; s.nodes()]; s.nodes()];
        for u in 0..base as u16 {
            for t in 0..s.epoch_slots() as u16 {
                for i in 0..s.nodes() as u32 {
                    let d = s.dest(NodeId(i), UplinkId(u), SlotInEpoch(t));
                    count[i as usize][d.0 as usize] += 1;
                }
            }
        }
        for (i, row) in count.iter().enumerate() {
            for (j, &c) in row.iter().enumerate() {
                assert_eq!(c, 1, "pair ({i},{j}) connected {c} times");
            }
        }
    }

    #[test]
    fn source_inverts_dest() {
        let s = sched(&SiriusConfig::paper_sim());
        for u in 0..s.uplinks() as u16 {
            for t in (0..s.epoch_slots() as u16).step_by(3) {
                for i in (0..s.nodes() as u32).step_by(7) {
                    let d = s.dest(NodeId(i), UplinkId(u), SlotInEpoch(t));
                    assert_eq!(s.source(d, UplinkId(u), SlotInEpoch(t)), NodeId(i));
                }
            }
        }
    }

    #[test]
    fn connections_find_the_right_slot() {
        let s = sched(&SiriusConfig::paper_sim());
        for i in (0..s.nodes() as u32).step_by(11) {
            for j in (0..s.nodes() as u32).step_by(5) {
                let conns = s.connections(NodeId(i), NodeId(j));
                assert!(!conns.is_empty(), "no path {i}->{j}");
                assert_eq!(conns.len(), s.connections_per_epoch(NodeId(i), NodeId(j)));
                for c in conns {
                    assert_eq!(s.dest(NodeId(i), c.uplink, c.slot), NodeId(j));
                }
            }
        }
    }

    #[test]
    fn uplink_factor_increases_pair_capacity() {
        // With the paper's 1.5x factor, some group offsets get two columns.
        let s = sched(&SiriusConfig::paper_sim());
        let counts: Vec<usize> = (0..8)
            .map(|d| s.columns_for_group_offset(d).len())
            .collect();
        assert_eq!(counts.iter().sum::<usize>(), 12);
        assert!(counts.iter().all(|&c| c == 1 || c == 2));
        assert_eq!(counts.iter().filter(|&&c| c == 2).count(), 4);
    }

    #[test]
    fn epoch_timing_matches_config() {
        let cfg = SiriusConfig::paper_sim();
        let s = sched(&cfg);
        assert_eq!(s.epoch_len(), cfg.epoch());
        assert_eq!(s.slot_in_epoch(16).0, 0);
        assert_eq!(s.slot_in_epoch(17).0, 1);
        assert_eq!(s.epoch_of(31), 1);
    }

    proptest! {
        /// Contention-freedom and invertibility over random geometries.
        #[test]
        fn schedule_is_permutation_for_any_geometry(
            groups in 1usize..6,
            g in 1usize..12,
            factor in 1.0f64..2.0,
        ) {
            let nodes = groups * g;
            let mut cfg = SiriusConfig::scaled(nodes, g);
            cfg.uplink_factor = factor;
            if cfg.validate().is_err() {
                return Ok(());
            }
            let s = Schedule::new(&cfg);
            for u in 0..s.uplinks() as u16 {
                for t in 0..s.epoch_slots() as u16 {
                    let mut seen = vec![false; nodes];
                    for i in 0..nodes as u32 {
                        let d = s.dest(NodeId(i), UplinkId(u), SlotInEpoch(t));
                        prop_assert!(!seen[d.0 as usize]);
                        seen[d.0 as usize] = true;
                        prop_assert_eq!(s.source(d, UplinkId(u), SlotInEpoch(t)), NodeId(i));
                    }
                }
            }
        }

        /// Every ordered pair is connected at least once per epoch.
        #[test]
        fn full_reachability(groups in 1usize..5, g in 1usize..9) {
            let nodes = groups * g;
            let cfg = SiriusConfig::scaled(nodes, g);
            if cfg.validate().is_err() {
                return Ok(());
            }
            let s = Schedule::new(&cfg);
            for i in 0..nodes as u32 {
                for j in 0..nodes as u32 {
                    prop_assert!(!s.connections(NodeId(i), NodeId(j)).is_empty());
                }
            }
        }
    }
}
