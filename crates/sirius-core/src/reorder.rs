//! Per-flow reorder buffer at the receiving server (§4.2 "Cell reordering").
//!
//! Cells of a flow take different intermediate paths, so they can arrive out
//! of order. The receiver buffers out-of-order cells and releases the
//! in-order prefix to the application. Because the congestion-control
//! protocol bounds queuing at intermediates, the buffer stays small — the
//! paper reports a 163 KB peak per flow at the default Q=4 (Fig. 10d), and
//! our Fig. 10 harness measures the same quantity.
//!
//! # Receiver-partition contract
//!
//! A reorder buffer belongs to exactly one receiving server, and a flow
//! delivers into exactly one buffer — so an engine that partitions
//! arrival processing by receiving node may hand each worker a disjoint
//! `&mut` slice of the per-server buffer array (`[lo*spn, hi*spn)` for
//! node range `[lo, hi)`) with no synchronization beyond the phase
//! barrier. Everything a worker needs is behind that `&mut`: `accept`
//! and `finish_flow` touch only `self`. The compile-time `Send`
//! assertion below keeps the type eligible for that hand-off (e.g. an
//! `Rc` smuggled into the map would break it silently otherwise).

use crate::cell::FlowId;
use std::collections::hash_map::Entry;
use std::collections::{BTreeMap, HashMap};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative hasher for the simulator-internal [`FlowId`] keys: one
/// `accept` per delivered cell makes the flow-map probe a hot-path cost,
/// and SipHash's DoS resistance buys nothing against keys we generate
/// ourselves. Iteration order is never observed (the map is only probed
/// and drained per flow), so the hash choice cannot affect behavior.
#[derive(Default)]
struct FlowIdHasher(u64);

impl Hasher for FlowIdHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        // Fallback for non-u64 key fragments (unused by FlowId).
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x100_0000_01b3);
        }
    }
    fn write_u64(&mut self, v: u64) {
        // Fibonacci multiply + fold: the high bits HashMap uses get
        // avalanche from the whole key.
        let h = v.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        self.0 = h ^ (h >> 32);
    }
}

type FlowMap = HashMap<FlowId, FlowReorder, BuildHasherDefault<FlowIdHasher>>;

/// Reorder state for a single flow.
#[derive(Debug, Default)]
struct FlowReorder {
    /// Next in-order sequence number expected.
    next: u32,
    /// Buffered out-of-order cells: seq -> payload bytes.
    pending: BTreeMap<u32, u32>,
    /// Bytes currently buffered.
    buffered_bytes: u64,
}

/// Outcome of accepting one cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivered {
    /// Payload bytes released to the application by this arrival (0 if the
    /// cell was buffered out of order).
    pub bytes: u64,
    /// Number of cells released (the arriving cell plus any unblocked ones).
    pub cells: u32,
}

/// Reorder buffers for all flows terminating at one server.
#[derive(Debug, Default)]
pub struct ReorderBuffer {
    flows: FlowMap,
    /// Peak buffered bytes observed for any single flow (paper Fig. 10d is
    /// "peak size of the reorder buffer at the servers per flow").
    peak_flow_bytes: u64,
    /// Current total buffered bytes across flows.
    total_bytes: u64,
    /// Peak total buffered bytes across flows.
    peak_total_bytes: u64,
    /// Cells that arrived more than once (should stay 0: the core is
    /// lossless and we do not retransmit).
    duplicates: u64,
    /// Peak number of flows simultaneously holding reorder state — the
    /// memory-boundedness invariant the scale-out series gates on:
    /// completed flows are evicted eagerly, so this tracks concurrency,
    /// not total flows ever seen.
    peak_resident: usize,
}

// See "Receiver-partition contract" in the module docs: per-server
// buffers are handed to worker threads as disjoint `&mut` ranges.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<ReorderBuffer>()
};

impl ReorderBuffer {
    pub fn new() -> ReorderBuffer {
        ReorderBuffer::default()
    }

    /// Accept cell `seq` of `flow` carrying `payload` bytes; returns how
    /// much data became deliverable in order.
    pub fn accept(&mut self, flow: FlowId, seq: u32, payload: u32) -> Delivered {
        let len = self.flows.len();
        let st = match self.flows.entry(flow) {
            Entry::Occupied(e) => e.into_mut(),
            Entry::Vacant(v) => {
                // Sample the peak on insert only, so it counts exactly
                // the flows resident at once (completed ones are already
                // evicted by `finish_flow`).
                self.peak_resident = self.peak_resident.max(len + 1);
                v.insert(FlowReorder::default())
            }
        };
        if seq < st.next || st.pending.contains_key(&seq) {
            self.duplicates += 1;
            return Delivered { bytes: 0, cells: 0 };
        }
        if seq != st.next {
            // Out of order: buffer it.
            st.pending.insert(seq, payload);
            st.buffered_bytes += payload as u64;
            self.total_bytes += payload as u64;
            self.peak_flow_bytes = self.peak_flow_bytes.max(st.buffered_bytes);
            self.peak_total_bytes = self.peak_total_bytes.max(self.total_bytes);
            return Delivered { bytes: 0, cells: 0 };
        }
        // In order: deliver it plus any unblocked prefix.
        let mut bytes = payload as u64;
        let mut cells = 1;
        st.next += 1;
        while let Some(p) = st.pending.remove(&st.next) {
            bytes += p as u64;
            st.buffered_bytes -= p as u64;
            self.total_bytes -= p as u64;
            st.next += 1;
            cells += 1;
        }
        Delivered { bytes, cells }
    }

    /// Forget a completed flow (frees its map entry).
    pub fn finish_flow(&mut self, flow: FlowId) {
        if let Entry::Occupied(e) = self.flows.entry(flow) {
            debug_assert!(
                e.get().pending.is_empty(),
                "finishing flow with undelivered cells"
            );
            self.total_bytes -= e.get().buffered_bytes;
            e.remove();
        }
    }

    /// Peak bytes buffered by any single flow so far.
    pub fn peak_flow_bytes(&self) -> u64 {
        self.peak_flow_bytes
    }
    /// Peak bytes buffered across all flows at this server.
    pub fn peak_total_bytes(&self) -> u64 {
        self.peak_total_bytes
    }
    /// Currently buffered bytes.
    pub fn buffered_bytes(&self) -> u64 {
        self.total_bytes
    }
    /// Duplicate deliveries seen (0 in a correct lossless run).
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }
    /// Flows currently holding reorder state at this server. Completed
    /// flows are evicted by [`finish_flow`](ReorderBuffer::finish_flow),
    /// so over a long run this tracks concurrently active flows, not
    /// total flows ever seen.
    pub fn resident_flows(&self) -> usize {
        self.flows.len()
    }
    /// Peak of [`resident_flows`](ReorderBuffer::resident_flows) over the
    /// buffer's lifetime.
    pub fn peak_resident_flows(&self) -> usize {
        self.peak_resident
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    const F: FlowId = FlowId(1);

    #[test]
    fn in_order_delivery_is_immediate() {
        let mut rb = ReorderBuffer::new();
        for seq in 0..10 {
            let d = rb.accept(F, seq, 540);
            assert_eq!(d.bytes, 540);
            assert_eq!(d.cells, 1);
        }
        assert_eq!(rb.buffered_bytes(), 0);
        assert_eq!(rb.peak_flow_bytes(), 0);
    }

    #[test]
    fn out_of_order_buffers_then_releases() {
        let mut rb = ReorderBuffer::new();
        assert_eq!(rb.accept(F, 1, 540).bytes, 0);
        assert_eq!(rb.accept(F, 2, 540).bytes, 0);
        assert_eq!(rb.buffered_bytes(), 1080);
        let d = rb.accept(F, 0, 540);
        assert_eq!(d.bytes, 1620);
        assert_eq!(d.cells, 3);
        assert_eq!(rb.buffered_bytes(), 0);
        assert_eq!(rb.peak_flow_bytes(), 1080);
    }

    #[test]
    fn duplicates_are_dropped() {
        let mut rb = ReorderBuffer::new();
        rb.accept(F, 0, 540);
        assert_eq!(rb.accept(F, 0, 540).bytes, 0);
        rb.accept(F, 2, 540);
        assert_eq!(rb.accept(F, 2, 540).bytes, 0);
        assert_eq!(rb.duplicates(), 2);
    }

    #[test]
    fn flows_are_independent() {
        let mut rb = ReorderBuffer::new();
        let f2 = FlowId(2);
        rb.accept(F, 1, 100);
        let d = rb.accept(f2, 0, 200);
        assert_eq!(d.bytes, 200);
        assert_eq!(rb.buffered_bytes(), 100);
        rb.accept(F, 0, 100);
        rb.finish_flow(F);
        rb.finish_flow(f2);
        assert_eq!(rb.buffered_bytes(), 0);
    }

    #[test]
    fn finish_flow_evicts_resident_state() {
        let mut rb = ReorderBuffer::new();
        rb.accept(FlowId(1), 0, 100);
        rb.accept(FlowId(2), 0, 100);
        assert_eq!(rb.resident_flows(), 2);
        rb.finish_flow(FlowId(1));
        assert_eq!(rb.resident_flows(), 1);
        rb.finish_flow(FlowId(2));
        assert_eq!(rb.resident_flows(), 0);
        // Finishing an unknown flow is a no-op.
        rb.finish_flow(FlowId(99));
        assert_eq!(rb.resident_flows(), 0);
    }

    #[test]
    fn resident_state_stays_bounded_over_many_flows() {
        // Stream 10,000 short flows through one server, finishing each as
        // it completes: resident state must track concurrency (1 here),
        // not flow count, or a long run leaks one map entry per flow.
        let mut rb = ReorderBuffer::new();
        for f in 0..10_000u64 {
            let flow = FlowId(f);
            assert_eq!(rb.accept(flow, 1, 540).bytes, 0);
            assert_eq!(rb.accept(flow, 0, 540).bytes, 1080);
            rb.finish_flow(flow);
            assert!(rb.resident_flows() <= 1, "flow state leaked at {f}");
        }
        assert_eq!(rb.resident_flows(), 0);
        assert_eq!(rb.buffered_bytes(), 0);
        assert_eq!(rb.duplicates(), 0);
        // The lifetime peak saw the concurrency bound, not the flow count.
        assert_eq!(rb.peak_resident_flows(), 1);
    }

    #[test]
    fn peak_resident_counts_concurrent_flows_exactly() {
        let mut rb = ReorderBuffer::new();
        rb.accept(FlowId(1), 0, 100);
        rb.accept(FlowId(2), 0, 100);
        // Re-touching a resident flow must not inflate the peak.
        rb.accept(FlowId(1), 1, 100);
        assert_eq!(rb.peak_resident_flows(), 2);
        rb.finish_flow(FlowId(1));
        rb.finish_flow(FlowId(2));
        // The peak is a lifetime high-water mark.
        assert_eq!(rb.peak_resident_flows(), 2);
        assert_eq!(rb.resident_flows(), 0);
    }

    #[test]
    fn peak_total_tracks_across_flows() {
        let mut rb = ReorderBuffer::new();
        rb.accept(FlowId(1), 5, 100);
        rb.accept(FlowId(2), 5, 100);
        assert_eq!(rb.peak_total_bytes(), 200);
    }

    #[test]
    fn random_permutation_delivers_everything_once() {
        let mut rng = SmallRng::seed_from_u64(42);
        for trial in 0..20 {
            let n = 50 + trial;
            let mut order: Vec<u32> = (0..n).collect();
            order.shuffle(&mut rng);
            let mut rb = ReorderBuffer::new();
            let mut delivered = 0u64;
            let mut cells = 0u32;
            for seq in order {
                let d = rb.accept(F, seq, 540);
                delivered += d.bytes;
                cells += d.cells;
            }
            assert_eq!(delivered, n as u64 * 540);
            assert_eq!(cells, n);
            assert_eq!(rb.buffered_bytes(), 0);
            assert_eq!(rb.duplicates(), 0);
        }
    }

    proptest! {
        /// Any arrival order (with duplicates) delivers each byte exactly once,
        /// in order, and the buffer drains completely.
        #[test]
        fn prop_exactly_once_in_order(mut seqs in proptest::collection::vec(0u32..40, 1..200)) {
            // Ensure the full range [0, max] is present so the flow completes.
            let max = *seqs.iter().max().unwrap();
            for s in 0..=max {
                seqs.push(s);
            }
            let mut rb = ReorderBuffer::new();
            let mut delivered_cells = 0u64;
            for &s in &seqs {
                let d = rb.accept(F, s, 10);
                delivered_cells += d.cells as u64;
            }
            prop_assert_eq!(delivered_cells, max as u64 + 1);
            prop_assert_eq!(rb.buffered_bytes(), 0);
        }
    }
}
