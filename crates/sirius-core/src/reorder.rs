//! Per-flow reorder buffer at the receiving server (§4.2 "Cell reordering").
//!
//! Cells of a flow take different intermediate paths, so they can arrive out
//! of order. The receiver buffers out-of-order cells and releases the
//! in-order prefix to the application. Because the congestion-control
//! protocol bounds queuing at intermediates, the buffer stays small — the
//! paper reports a 163 KB peak per flow at the default Q=4 (Fig. 10d), and
//! our Fig. 10 harness measures the same quantity.

use crate::cell::FlowId;
use std::collections::hash_map::Entry;
use std::collections::{BTreeMap, HashMap};

/// Reorder state for a single flow.
#[derive(Debug, Default)]
struct FlowReorder {
    /// Next in-order sequence number expected.
    next: u32,
    /// Buffered out-of-order cells: seq -> payload bytes.
    pending: BTreeMap<u32, u32>,
    /// Bytes currently buffered.
    buffered_bytes: u64,
}

/// Outcome of accepting one cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivered {
    /// Payload bytes released to the application by this arrival (0 if the
    /// cell was buffered out of order).
    pub bytes: u64,
    /// Number of cells released (the arriving cell plus any unblocked ones).
    pub cells: u32,
}

/// Reorder buffers for all flows terminating at one server.
#[derive(Debug, Default)]
pub struct ReorderBuffer {
    flows: HashMap<FlowId, FlowReorder>,
    /// Peak buffered bytes observed for any single flow (paper Fig. 10d is
    /// "peak size of the reorder buffer at the servers per flow").
    peak_flow_bytes: u64,
    /// Current total buffered bytes across flows.
    total_bytes: u64,
    /// Peak total buffered bytes across flows.
    peak_total_bytes: u64,
    /// Cells that arrived more than once (should stay 0: the core is
    /// lossless and we do not retransmit).
    duplicates: u64,
}

impl ReorderBuffer {
    pub fn new() -> ReorderBuffer {
        ReorderBuffer::default()
    }

    /// Accept cell `seq` of `flow` carrying `payload` bytes; returns how
    /// much data became deliverable in order.
    pub fn accept(&mut self, flow: FlowId, seq: u32, payload: u32) -> Delivered {
        let st = self.flows.entry(flow).or_default();
        if seq < st.next || st.pending.contains_key(&seq) {
            self.duplicates += 1;
            return Delivered { bytes: 0, cells: 0 };
        }
        if seq != st.next {
            // Out of order: buffer it.
            st.pending.insert(seq, payload);
            st.buffered_bytes += payload as u64;
            self.total_bytes += payload as u64;
            self.peak_flow_bytes = self.peak_flow_bytes.max(st.buffered_bytes);
            self.peak_total_bytes = self.peak_total_bytes.max(self.total_bytes);
            return Delivered { bytes: 0, cells: 0 };
        }
        // In order: deliver it plus any unblocked prefix.
        let mut bytes = payload as u64;
        let mut cells = 1;
        st.next += 1;
        while let Some(p) = st.pending.remove(&st.next) {
            bytes += p as u64;
            st.buffered_bytes -= p as u64;
            self.total_bytes -= p as u64;
            st.next += 1;
            cells += 1;
        }
        Delivered { bytes, cells }
    }

    /// Forget a completed flow (frees its map entry).
    pub fn finish_flow(&mut self, flow: FlowId) {
        if let Entry::Occupied(e) = self.flows.entry(flow) {
            debug_assert!(
                e.get().pending.is_empty(),
                "finishing flow with undelivered cells"
            );
            self.total_bytes -= e.get().buffered_bytes;
            e.remove();
        }
    }

    /// Peak bytes buffered by any single flow so far.
    pub fn peak_flow_bytes(&self) -> u64 {
        self.peak_flow_bytes
    }
    /// Peak bytes buffered across all flows at this server.
    pub fn peak_total_bytes(&self) -> u64 {
        self.peak_total_bytes
    }
    /// Currently buffered bytes.
    pub fn buffered_bytes(&self) -> u64 {
        self.total_bytes
    }
    /// Duplicate deliveries seen (0 in a correct lossless run).
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    const F: FlowId = FlowId(1);

    #[test]
    fn in_order_delivery_is_immediate() {
        let mut rb = ReorderBuffer::new();
        for seq in 0..10 {
            let d = rb.accept(F, seq, 540);
            assert_eq!(d.bytes, 540);
            assert_eq!(d.cells, 1);
        }
        assert_eq!(rb.buffered_bytes(), 0);
        assert_eq!(rb.peak_flow_bytes(), 0);
    }

    #[test]
    fn out_of_order_buffers_then_releases() {
        let mut rb = ReorderBuffer::new();
        assert_eq!(rb.accept(F, 1, 540).bytes, 0);
        assert_eq!(rb.accept(F, 2, 540).bytes, 0);
        assert_eq!(rb.buffered_bytes(), 1080);
        let d = rb.accept(F, 0, 540);
        assert_eq!(d.bytes, 1620);
        assert_eq!(d.cells, 3);
        assert_eq!(rb.buffered_bytes(), 0);
        assert_eq!(rb.peak_flow_bytes(), 1080);
    }

    #[test]
    fn duplicates_are_dropped() {
        let mut rb = ReorderBuffer::new();
        rb.accept(F, 0, 540);
        assert_eq!(rb.accept(F, 0, 540).bytes, 0);
        rb.accept(F, 2, 540);
        assert_eq!(rb.accept(F, 2, 540).bytes, 0);
        assert_eq!(rb.duplicates(), 2);
    }

    #[test]
    fn flows_are_independent() {
        let mut rb = ReorderBuffer::new();
        let f2 = FlowId(2);
        rb.accept(F, 1, 100);
        let d = rb.accept(f2, 0, 200);
        assert_eq!(d.bytes, 200);
        assert_eq!(rb.buffered_bytes(), 100);
        rb.accept(F, 0, 100);
        rb.finish_flow(F);
        rb.finish_flow(f2);
        assert_eq!(rb.buffered_bytes(), 0);
    }

    #[test]
    fn peak_total_tracks_across_flows() {
        let mut rb = ReorderBuffer::new();
        rb.accept(FlowId(1), 5, 100);
        rb.accept(FlowId(2), 5, 100);
        assert_eq!(rb.peak_total_bytes(), 200);
    }

    #[test]
    fn random_permutation_delivers_everything_once() {
        let mut rng = SmallRng::seed_from_u64(42);
        for trial in 0..20 {
            let n = 50 + trial;
            let mut order: Vec<u32> = (0..n).collect();
            order.shuffle(&mut rng);
            let mut rb = ReorderBuffer::new();
            let mut delivered = 0u64;
            let mut cells = 0u32;
            for seq in order {
                let d = rb.accept(F, seq, 540);
                delivered += d.bytes;
                cells += d.cells;
            }
            assert_eq!(delivered, n as u64 * 540);
            assert_eq!(cells, n);
            assert_eq!(rb.buffered_bytes(), 0);
            assert_eq!(rb.duplicates(), 0);
        }
    }

    proptest! {
        /// Any arrival order (with duplicates) delivers each byte exactly once,
        /// in order, and the buffer drains completely.
        #[test]
        fn prop_exactly_once_in_order(mut seqs in proptest::collection::vec(0u32..40, 1..200)) {
            // Ensure the full range [0, max] is present so the flow completes.
            let max = *seqs.iter().max().unwrap();
            for s in 0..=max {
                seqs.push(s);
            }
            let mut rb = ReorderBuffer::new();
            let mut delivered_cells = 0u64;
            for &s in &seqs {
                let d = rb.accept(F, s, 10);
                delivered_cells += d.cells as u64;
            }
            prop_assert_eq!(delivered_cells, max as u64 + 1);
            prop_assert_eq!(rb.buffered_bytes(), 0);
        }
    }
}
