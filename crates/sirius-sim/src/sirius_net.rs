//! Slot-synchronous cell-level simulator of a Sirius deployment (§7).
//!
//! The fabric is perfectly synchronous — that is the whole point of the
//! paper's time-synchronization machinery — so the simulator advances
//! slot-by-slot over dense arrays instead of a per-cell event heap:
//!
//! * At every **epoch boundary** servers inject cells into their rack's
//!   `LOCAL` buffer (credit-limited by the server link rate, modelling the
//!   one-hop server<->rack flow control of §4.3), the congestion-control
//!   round runs (grant issue for last epoch's requests, then fresh
//!   requests), and failure visibility is refreshed.
//! * At every **slot**, each node transmits on each uplink to the
//!   destination dictated by the static schedule; cells arrive after the
//!   fiber propagation delay and are either relayed or delivered to the
//!   per-server reorder buffers.
//!
//! Requests and grants are piggybacked on cells in the real system; the
//! simulator exchanges them at epoch boundaries with the one-epoch
//! pipelining the paper describes (requests sent during epoch `e` are
//! granted at `e+1`; granted cells transmit from `e+1` onward).
//!
//! Two congestion-control modes reproduce the paper's §7 comparison:
//! [`CcMode::Protocol`] is the request/grant protocol; [`CcMode::Ideal`]
//! is the SIRIUS (IDEAL) upper bound with per-flow queues and idealized
//! (zero-latency, global-knowledge) back-pressure.
//!
//! This module holds configuration, construction and the epoch-boundary
//! congestion-control round; the per-slot hot loop lives in
//! `crate::engine` (crate-private), decomposed into fault / detect /
//! tx / deliver planes with the invariant audit behind a zero-cost
//! observer.

use crate::audit::{Audit, LossCause, RunDigest};
use crate::engine::{
    AuditObserver, DeliverPlane, DestTable, DetectPlane, FaultPlane, NullObserver, SlotObserver,
    TxPlane,
};
use crate::faults::{FaultEvent, FaultInjector};
use crate::metrics::{FctHistogram, FlowRecord, RunMetrics};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sirius_core::cell::{Cell, FlowId};
use sirius_core::config::SiriusConfig;
use sirius_core::fault::{FailurePlane, FaultConfig, LinkDetector};
use sirius_core::node::SiriusNode;
use sirius_core::repair::AdjustedSchedule;
use sirius_core::schedule::Schedule;
use sirius_core::topology::{NodeId, ServerId};
use sirius_core::units::{Duration, Time};
use sirius_core::vlb::Vlb;
use sirius_optics::awgr::Awgr;
use sirius_workload::Flow;
use std::collections::VecDeque;

/// Congestion-control mode for a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CcMode {
    /// The paper's request/grant protocol (§4.3).
    Protocol,
    /// SIRIUS (IDEAL): per-flow queues + instant back-pressure (§7).
    Ideal,
    /// Ablation: no congestion control at all — cells are launched at any
    /// intermediate with a free slot and no queue bound. This is the
    /// failure mode §4.3 opens with ("if this keeps occurring, queues can
    /// grow very large"); the `ablation` harness quantifies it.
    Greedy,
}

/// Simulation parameters beyond the network config itself.
#[derive(Debug, Clone)]
pub struct SiriusSimConfig {
    pub network: SiriusConfig,
    pub mode: CcMode,
    pub seed: u64,
    /// Give up this long after the last flow arrival (overload runs never
    /// drain; the paper measures goodput over the simulated span).
    pub drain_timeout: Duration,
    /// Hard cap on simulated slots (safety net).
    pub max_slots: u64,
    /// Run the per-epoch invariant audit (see [`crate::audit`]). Defaults
    /// to on in debug builds (where every test exercises it) and off in
    /// release, keeping the paper-scale sweeps at full throughput.
    pub audit: bool,
    /// Failure-detector parameters (§4.5): the silence threshold bounds
    /// detection latency in epochs.
    pub fault: FaultConfig,
    /// Relay-vs-VOQ arbitration burst (see
    /// [`sirius_core::node::SiriusNode::set_relay_burst`]).
    pub relay_burst: u8,
    /// Worker shards for the slot engine (`1` = serial, the default).
    /// Sharded runs are digest-identical to serial (see
    /// `crate::engine::shard`); Ideal mode and audit-enabled runs fall
    /// back to the serial loop regardless. Defaults to `SIRIUS_SHARDS`
    /// when that is set to an integer ≥ 1.
    pub shards: usize,
    /// Record per-plane wall-clock breakdown (`tx_secs` / `deliver_secs`
    /// / `merge_secs` in [`crate::RunMetrics`]). Off by default: the
    /// clock reads cost real time on the hot path, and the breakdown is
    /// a bench-harness concern. Never affects behavior or digests.
    pub plane_timing: bool,
}

impl SiriusSimConfig {
    pub fn new(network: SiriusConfig) -> SiriusSimConfig {
        SiriusSimConfig {
            network,
            mode: CcMode::Protocol,
            seed: 1,
            drain_timeout: Duration::from_ms(2),
            max_slots: 200_000_000,
            audit: cfg!(debug_assertions),
            fault: FaultConfig::default(),
            relay_burst: sirius_core::node::RELAY_BURST,
            shards: crate::engine::shard::env_default_shards(),
            plane_timing: false,
        }
    }

    pub fn with_mode(mut self, mode: CcMode) -> SiriusSimConfig {
        self.mode = mode;
        self
    }
    pub fn with_seed(mut self, seed: u64) -> SiriusSimConfig {
        self.seed = seed;
        self
    }
    pub fn with_audit(mut self, audit: bool) -> SiriusSimConfig {
        self.audit = audit;
        self
    }
    pub fn with_silence_threshold(mut self, epochs: u64) -> SiriusSimConfig {
        self.fault.silence_threshold = epochs;
        self
    }
    /// Fraction of a node's TX columns that must be suspect before the
    /// repair escalates from column-granular omission to whole-node
    /// exclusion (see [`FaultConfig::column_escalation_fraction`]). `0.0`
    /// reproduces the paper's §4.5 node-granular rule exactly — the first
    /// suspected column excludes the whole node.
    pub fn with_column_escalation_fraction(mut self, fraction: f64) -> SiriusSimConfig {
        self.fault.column_escalation_fraction = fraction;
        self
    }
    pub fn with_relay_burst(mut self, burst: u8) -> SiriusSimConfig {
        self.relay_burst = burst;
        self
    }
    /// Shard the slot engine's TX phase across `shards` worker threads
    /// (see [`SiriusSimConfig::shards`]). `1` is a true no-spawn serial
    /// path.
    pub fn with_shards(mut self, shards: usize) -> SiriusSimConfig {
        assert!(shards >= 1, "shards must be >= 1");
        self.shards = shards;
        self
    }
    /// Record the per-plane wall-clock breakdown (see
    /// [`SiriusSimConfig::plane_timing`]).
    pub fn with_plane_timing(mut self, on: bool) -> SiriusSimConfig {
        self.plane_timing = on;
        self
    }
}

/// Per-flow simulation state.
#[derive(Debug, Clone)]
pub(crate) struct FlowSt {
    pub(crate) bytes: u64,
    pub(crate) arrival: Time,
    pub(crate) src_server: u32,
    pub(crate) dst_server: u32,
    pub(crate) cells_total: u64,
    pub(crate) cells_injected: u64,
    pub(crate) delivered: u64,
    pub(crate) completion: Option<Time>,
}

// The deliver plane may be sharded by receiver: workers then write flow
// records (each touching only flows terminating in its receiver range)
// from worker threads, so `FlowSt` must be `Send`. Compile-time check,
// mirroring `SiriusNode`'s.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<FlowSt>()
};

/// Slab of per-flow state. The slice path ([`SiriusSim::run`]) populates
/// it once and never frees; the streaming path ([`SiriusSim::run_streaming`])
/// allocates per admission and evicts on completion, so the slab's
/// occupancy tracks flows *in flight*, not flows *ever seen* — the
/// memory bound that lets the scale-out series push total flow counts
/// into the millions. Slot indices are the engine's `FlowId`s; a slot is
/// only reused after its flow completed (every cell delivered and the
/// reorder entry retired), so a recycled id can never collide with a
/// live cell.
#[derive(Debug, Default)]
pub(crate) struct FlowTable {
    slots: Vec<FlowSt>,
    free: Vec<u32>,
    occupied: Vec<bool>,
    admitted: u64,
    resident: u64,
    resident_peak: u64,
}

impl FlowTable {
    /// Bulk-load a materialized workload (slice path): slot `i` is flow
    /// `i`, nothing is ever freed.
    fn populate(&mut self, workload: &[Flow], payload: u32) {
        debug_assert!(self.slots.is_empty());
        self.slots = workload
            .iter()
            .map(|f| FlowSt {
                bytes: f.bytes,
                arrival: f.arrival,
                src_server: f.src_server,
                dst_server: f.dst_server,
                cells_total: Cell::count_for(f.bytes, payload),
                cells_injected: 0,
                delivered: 0,
                completion: None,
            })
            .collect();
        self.occupied = vec![true; self.slots.len()];
        self.admitted = self.slots.len() as u64;
        self.resident = self.admitted;
        self.resident_peak = self.admitted;
    }

    /// Admit one flow into a free slot (streaming path).
    fn alloc(&mut self, f: &Flow, payload: u32) -> u32 {
        let st = FlowSt {
            bytes: f.bytes,
            arrival: f.arrival,
            src_server: f.src_server,
            dst_server: f.dst_server,
            cells_total: Cell::count_for(f.bytes, payload),
            cells_injected: 0,
            delivered: 0,
            completion: None,
        };
        let fi = match self.free.pop() {
            Some(fi) => {
                debug_assert!(!self.occupied[fi as usize]);
                self.slots[fi as usize] = st;
                self.occupied[fi as usize] = true;
                fi
            }
            None => {
                self.slots.push(st);
                self.occupied.push(true);
                (self.slots.len() - 1) as u32
            }
        };
        self.admitted += 1;
        self.resident += 1;
        self.resident_peak = self.resident_peak.max(self.resident);
        fi
    }

    /// Free a completed flow's slot for reuse.
    fn evict(&mut self, fi: u32) {
        debug_assert!(self.occupied[fi as usize]);
        self.occupied[fi as usize] = false;
        self.free.push(fi);
        self.resident -= 1;
    }

    /// Slab size (largest flow id ever issued + 1).
    pub(crate) fn len(&self) -> usize {
        self.slots.len()
    }

    /// Flows admitted over the whole run.
    pub(crate) fn admitted(&self) -> u64 {
        self.admitted
    }

    /// High-water mark of simultaneously resident flows.
    pub(crate) fn resident_peak(&self) -> u64 {
        self.resident_peak
    }

    /// Raw element view of the slab for the deliver phase (see
    /// [`crate::engine::deliver::FlowSlots`]): arrival effects are
    /// receiver-local but flow ids are receiver-interleaved in slot
    /// order, so shard workers index disjoint *elements*, never disjoint
    /// ranges. The view is valid for one slot: the slab only grows (and
    /// the `Vec` only reallocates) at epoch boundaries, and eviction is
    /// replayed serially in the epilogue.
    pub(crate) fn raw_view(&mut self) -> crate::engine::deliver::FlowSlots {
        crate::engine::deliver::FlowSlots::new(self.slots.as_mut_ptr(), self.slots.len())
    }

    /// Occupied slots in slot order (for the slice path this is every
    /// flow in workload order, so digests and records are unchanged).
    pub(crate) fn iter_occupied(&self) -> impl Iterator<Item = &FlowSt> {
        self.slots
            .iter()
            .zip(&self.occupied)
            .filter_map(|(f, &occ)| occ.then_some(f))
    }
}

impl std::ops::Index<usize> for FlowTable {
    type Output = FlowSt;
    #[inline]
    fn index(&self, i: usize) -> &FlowSt {
        &self.slots[i]
    }
}

impl std::ops::IndexMut<usize> for FlowTable {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut FlowSt {
        &mut self.slots[i]
    }
}

/// Where the slot loop's flows come from: a pre-populated slice or a
/// lazy stream. The loop only ever asks three questions — "has another
/// flow arrived by `now`?", "are we done?", "when do we give up?" — so
/// both sources stay O(1) in state beyond the [`FlowTable`] itself.
pub(crate) trait FlowSource {
    /// Admit the next flow with `arrival <= now` into the table,
    /// returning its slot, or `None` if no further flow has arrived yet.
    fn pop_arrived(&mut self, now: Time, table: &mut FlowTable) -> Option<u32>;
    /// True once every flow this source will ever produce has completed.
    fn finished(&self, table: &FlowTable, completed: u64) -> bool;
    /// Absolute give-up time (last arrival + drain timeout). A stream
    /// reports `u64::MAX` ps until it knows its last arrival.
    fn deadline(&self) -> Time;
}

/// Slice-path source over a pre-populated [`FlowTable`]: reproduces the
/// original admission scan exactly (slot `i` is workload flow `i`).
pub(crate) struct SliceSource {
    next: usize,
    total: u64,
    deadline: Time,
}

impl FlowSource for SliceSource {
    fn pop_arrived(&mut self, now: Time, table: &mut FlowTable) -> Option<u32> {
        if self.next < table.len() && table[self.next].arrival <= now {
            let fi = self.next as u32;
            self.next += 1;
            Some(fi)
        } else {
            None
        }
    }

    fn finished(&self, _table: &FlowTable, completed: u64) -> bool {
        completed >= self.total
    }

    fn deadline(&self) -> Time {
        self.deadline
    }
}

/// Streaming source: pulls flows from an iterator one admission at a
/// time, holding a single-flow lookahead. The lookahead refills
/// immediately after each admission, so exhaustion (and with it the
/// drain deadline) is discovered at the same epoch boundary the last
/// flow is admitted — matching when the slice path would have known it.
pub(crate) struct StreamSource<I: Iterator<Item = Flow>> {
    iter: I,
    lookahead: Option<Flow>,
    drain: Duration,
    last_arrival: Time,
    deadline: Time,
    payload: u32,
    total_servers: usize,
}

impl<I: Iterator<Item = Flow>> StreamSource<I> {
    pub(crate) fn new(
        mut iter: I,
        drain: Duration,
        payload: u32,
        total_servers: usize,
    ) -> StreamSource<I> {
        let lookahead = iter.next();
        let deadline = if lookahead.is_none() {
            Time::ZERO + drain
        } else {
            Time::from_ps(u64::MAX)
        };
        StreamSource {
            iter,
            lookahead,
            drain,
            last_arrival: Time::ZERO,
            deadline,
            payload,
            total_servers,
        }
    }
}

impl<I: Iterator<Item = Flow>> FlowSource for StreamSource<I> {
    fn pop_arrived(&mut self, now: Time, table: &mut FlowTable) -> Option<u32> {
        if self.lookahead.as_ref()?.arrival > now {
            return None;
        }
        let f = self.lookahead.take().unwrap();
        assert!(
            (f.src_server as usize) < self.total_servers
                && (f.dst_server as usize) < self.total_servers,
            "workload references servers outside the deployment"
        );
        assert!(
            f.arrival >= self.last_arrival,
            "streamed workload arrivals must be nondecreasing"
        );
        self.last_arrival = f.arrival;
        let fi = table.alloc(&f, self.payload);
        self.lookahead = self.iter.next();
        if self.lookahead.is_none() {
            self.deadline = self.last_arrival + self.drain;
        }
        Some(fi)
    }

    fn finished(&self, table: &FlowTable, completed: u64) -> bool {
        self.lookahead.is_none() && completed >= table.admitted()
    }

    fn deadline(&self) -> Time {
        self.deadline
    }
}

/// Per-server injection state.
#[derive(Debug, Default)]
pub(crate) struct ServerSt {
    /// Flows with cells still to inject, served round-robin.
    pub(crate) active: VecDeque<u32>,
    /// Byte credit accumulated from the server link.
    pub(crate) credit: i64,
}

/// A scheduled fail-stop crash: node `node` dies at `epoch`. Detection is
/// *emergent* — routing learns of the failure only once the silence-driven
/// detectors notice the missing scheduled slots (§4.5); there is no
/// detection-latency hint to give. Shorthand for
/// [`FaultEvent::Crash`] via [`SiriusSim::inject_failures`].
#[derive(Debug, Clone, Copy)]
pub struct ScheduledFailure {
    pub node: NodeId,
    pub epoch: u64,
}

/// The simulator itself. Build with [`SiriusSim::new`], then
/// [`run`](SiriusSim::run) a workload.
///
/// State is grouped by engine plane (see `crate::engine`); the
/// remaining fields are the cross-plane routing state (schedule, VLB,
/// nodes) and the workload bookkeeping the epoch boundary drives.
pub struct SiriusSim {
    pub(crate) cfg: SiriusSimConfig,
    /// Data-plane schedule with consistent-update dead-slot overlays; the
    /// base physical schedule is `sched.base()`.
    pub(crate) sched: AdjustedSchedule,
    pub(crate) vlb: Vlb,
    pub(crate) nodes: Vec<SiriusNode>,
    pub(crate) flows: FlowTable,
    pub(crate) servers: Vec<ServerSt>,
    pub(crate) rng: SmallRng,
    pub(crate) prop_slots: usize,
    pub(crate) failure_plane: FailurePlane,
    /// Precomputed base-schedule destinations (static for the whole run).
    pub(crate) tables: DestTable,
    pub(crate) faults: FaultPlane,
    pub(crate) detect: DetectPlane,
    pub(crate) tx: TxPlane,
    pub(crate) delivery: DeliverPlane,
    pub(crate) audit: Audit,
    /// Per-node grey-erasure RNG streams (empty until a fault script is
    /// armed in [`SiriusSim::run`]); node `i`'s draw sequence depends
    /// only on the seed and `i`, never on the shard partition.
    pub(crate) fault_rngs: Vec<SmallRng>,
    /// Serial-path reuse buffer for the shared faulty-slot range
    /// function's output (the sharded path keeps one per shard).
    pub(crate) fault_scratch: crate::engine::shard::ShardOut,
    /// Serial-path reuse buffer for the shared deliver range function's
    /// output (the sharded path keeps one per shard).
    pub(crate) deliver_scratch: crate::engine::deliver::DeliverOut,
    /// Per-plane wall-clock accumulators (populated only when
    /// [`SiriusSimConfig::plane_timing`] is on).
    pub(crate) plane_times: crate::engine::PlaneTimes,
    /// Streaming mode: free a flow's slab slot the moment it completes,
    /// folding its terminal state into [`SiriusSim::stream_fold`] so the
    /// run digest still covers every flow. Slice runs keep this off and
    /// their digests byte-identical to before.
    pub(crate) evict_completed: bool,
    /// Digest accumulator over evicted flows' terminal (delivered,
    /// completion) pairs, in eviction order. Eviction happens only in
    /// serial phases (epoch boundary, ring drain), so sharded and serial
    /// streaming runs fold identically.
    pub(crate) stream_fold: RunDigest,
    /// O(1)-memory FCT histogram folded alongside [`SiriusSim::stream_fold`]
    /// at eviction time. Metrics-only: it never feeds the run digest, so
    /// streaming digests stay byte-identical to before it existed.
    pub(crate) fct_hist: FctHistogram,
    payload: u32,
    epoch_credit_bytes: i64,
}

impl SiriusSim {
    pub fn new(cfg: SiriusSimConfig) -> SiriusSim {
        cfg.network.validate().expect("invalid network config");
        let net = &cfg.network;
        let sched = Schedule::new(net);
        let n = net.nodes;
        let uplinks = sched.uplinks();
        let mut grant_timeout = net.grant_timeout_epochs;
        // A grant must survive the request->grant->send->arrive pipeline,
        // which includes the fiber flight time.
        let prop_slots = net.propagation.as_ps().div_ceil(net.slot().as_ps());
        let prop_epochs = prop_slots / net.epoch_slots() + 1;
        // Floor: the worst legitimate VOQ wait. A granted cell for
        // intermediate I queues behind at most Q cells per destination
        // (each holding one of I's `queued + outstanding < Q` reservation
        // units), i.e. < Q*n cells, and relay-burst arbitration guarantees
        // the VOQ at least one departure every `RELAY_BURST + 1` scheduled
        // slots to I — so a grant that outlives `(RELAY_BURST+1) * Q * n`
        // epochs plus the flight time is genuinely lost (node failure),
        // never merely slow. A smaller timeout fires the loss backstop
        // spuriously at saturation and corrupts the conservation
        // accounting the audit layer checks.
        let voq_wait_bound =
            (cfg.relay_burst as u64 + 1) * (net.queue_threshold as u64) * (n as u64);
        grant_timeout = grant_timeout
            .max(16 + prop_epochs)
            .max(voq_wait_bound + prop_epochs);
        let nodes: Vec<SiriusNode> = (0..n as u32)
            .map(|i| {
                let mut node = match cfg.mode {
                    CcMode::Protocol => {
                        SiriusNode::new(NodeId(i), n, net.queue_threshold, grant_timeout)
                    }
                    CcMode::Ideal | CcMode::Greedy => {
                        SiriusNode::new_ideal(NodeId(i), n, net.queue_threshold)
                    }
                };
                node.set_relay_burst(cfg.relay_burst);
                node
            })
            .collect();
        let servers = (0..net.total_servers())
            .map(|_| ServerSt::default())
            .collect();
        let ring_len = prop_slots as usize + 1;
        // i128: millisecond-scale epochs (the granularity sweep's MEMS
        // point) overflow i64 in `rate x epoch`.
        let epoch_credit_bytes = ((net.server_rate.as_bps() as i128 / 8)
            * net.epoch().as_ps() as i128
            / 1_000_000_000_000) as i64;
        let audit = Audit::new(
            cfg.audit,
            n,
            sched.uplinks(),
            net.queue_threshold,
            // The greedy ablation deliberately abandons the §4.3 bound.
            cfg.mode != CcMode::Greedy,
        );
        let tables = DestTable::new(&sched);
        let total_servers = net.total_servers();
        let queue_threshold = net.queue_threshold as u32;
        let payload = net.payload_bytes;
        SiriusSim {
            audit,
            tables,
            sched: AdjustedSchedule::new(sched),
            vlb: Vlb::new(n),
            nodes,
            flows: FlowTable::default(),
            servers,
            rng: SmallRng::seed_from_u64(cfg.seed),
            prop_slots: prop_slots as usize,
            failure_plane: FailurePlane::new(n),
            faults: FaultPlane::new(cfg.seed, n, uplinks, net.grating_ports),
            detect: DetectPlane::new(n, cfg.fault),
            tx: TxPlane::new(cfg.mode, n, queue_threshold),
            delivery: DeliverPlane::new(ring_len, total_servers),
            fault_rngs: Vec::new(),
            fault_scratch: Default::default(),
            deliver_scratch: Default::default(),
            plane_times: Default::default(),
            evict_completed: false,
            stream_fold: RunDigest::new(),
            fct_hist: FctHistogram::default(),
            payload,
            epoch_credit_bytes,
            cfg,
        }
    }

    /// Attach a scripted fault plane (builder form).
    pub fn with_faults(mut self, injector: FaultInjector) -> SiriusSim {
        self.set_faults(injector);
        self
    }

    /// Attach a scripted fault plane.
    ///
    /// # Panics
    /// On a malformed script ([`FaultInjector::validate`]): inverted
    /// windows, out-of-range nodes/uplinks/groups/chips/port bands, or
    /// contradictory events. A script that silently never fires is worse
    /// than a loud constructor.
    pub fn set_faults(&mut self, injector: FaultInjector) {
        if let Err(e) = injector.validate(
            self.cfg.network.nodes,
            self.sched.base().uplinks(),
            self.cfg.network.grating_ports,
        ) {
            panic!("invalid fault script: {e}");
        }
        self.faults.injector = injector;
    }

    /// Schedule fail-stop node crashes (shorthand for a [`FaultInjector`]
    /// script of [`FaultEvent::Crash`] events).
    pub fn inject_failures(&mut self, failures: Vec<ScheduledFailure>) {
        for f in failures {
            self.faults.injector.push(FaultEvent::Crash {
                node: f.node,
                epoch: f.epoch,
            });
        }
    }

    fn node_of_server(&self, s: u32) -> NodeId {
        NodeId(s / self.cfg.network.servers_per_node as u32)
    }

    /// Run the workload to completion (or drain timeout); consumes the sim.
    pub fn run(mut self, workload: &[Flow]) -> RunMetrics {
        let wall_start = std::time::Instant::now();
        let total_servers = self.cfg.network.total_servers();
        self.flows.populate(workload, self.payload);
        assert!(
            workload
                .iter()
                .all(|f| (f.src_server as usize) < total_servers
                    && (f.dst_server as usize) < total_servers),
            "workload references servers outside the deployment"
        );
        let last_arrival = workload.last().map(|f| f.arrival).unwrap_or(Time::ZERO);
        let deadline = last_arrival + self.cfg.drain_timeout;

        // Declare every scripted fault window up front so the audit holds
        // its invariants *with attribution*: losses must fall inside a
        // declared window of the matching cause, and detector suspicions
        // outside any window are false positives.
        if !self.faults.injector.is_empty() {
            self.fault_rngs = self.faults.injector.node_streams(self.nodes.len());
            self.audit
                .set_silence_threshold(self.cfg.fault.silence_threshold);
            if self.faults.injector.has_link_faults() {
                self.detect.link_det = Some(LinkDetector::new(
                    self.cfg.network.nodes,
                    self.sched.base().uplinks(),
                    self.cfg.fault,
                ));
            }
            if self.faults.injector.has_byzantine() {
                // Precompute the schedule inverse the RX filter attributes
                // counterfeits with (who was scheduled into this port at
                // that slot).
                self.faults.arm_byzantine(self.sched.base());
            }
            let events: Vec<FaultEvent> = self.faults.injector.events().to_vec();
            for e in &events {
                match *e {
                    FaultEvent::Crash { node, epoch } => {
                        let until = events
                            .iter()
                            .filter_map(|e2| match *e2 {
                                FaultEvent::Recover { node: n2, epoch: r }
                                    if n2 == node && r > epoch =>
                                {
                                    Some(r)
                                }
                                _ => None,
                            })
                            .min()
                            .unwrap_or(u64::MAX);
                        self.audit
                            .declare_window(LossCause::Crash, node, epoch, until);
                    }
                    FaultEvent::GreyLink {
                        node, from, until, ..
                    } => {
                        self.audit
                            .declare_window(LossCause::Grey, node, from, until);
                    }
                    FaultEvent::Mistune {
                        node, from, until, ..
                    } => {
                        self.audit
                            .declare_window(LossCause::Mistune, node, from, until);
                    }
                    // Correlated domains expand to per-node grey columns
                    // (p = 1.0 for an outright failure, a rising ramp for
                    // a drift), so the audit windows are Grey windows on
                    // every node in the blast radius — same mapping as
                    // `FaultInjector::refresh`. A drift's window covers
                    // the whole ramp: losses during the early (barely
                    // degraded) phase are legitimate grey losses too.
                    FaultEvent::BankFailure {
                        group,
                        uplink,
                        chip,
                        chip_capacity,
                        from,
                        until,
                    }
                    | FaultEvent::BankDrift {
                        group,
                        uplink,
                        chip,
                        chip_capacity,
                        from,
                        until,
                        ..
                    } => {
                        let g = self.cfg.network.grating_ports;
                        let awgr = Awgr::new(g as u16);
                        let input = uplink % g as u16;
                        for port in awgr.dead_outputs_for_chip(input, chip, chip_capacity) {
                            let node = group as usize * g + port as usize;
                            if node < self.cfg.network.nodes {
                                self.audit.declare_window(
                                    LossCause::Grey,
                                    NodeId(node as u32),
                                    from,
                                    until,
                                );
                            }
                        }
                    }
                    FaultEvent::GratingFault {
                        group,
                        port_lo,
                        port_hi,
                        from,
                        until,
                        ..
                    } => {
                        let g = self.cfg.network.grating_ports;
                        for port in port_lo..port_hi.min(g as u16) {
                            let node = group as usize * g + port as usize;
                            if node < self.cfg.network.nodes {
                                self.audit.declare_window(
                                    LossCause::Grey,
                                    NodeId(node as u32),
                                    from,
                                    until,
                                );
                            }
                        }
                    }
                    FaultEvent::Byzantine {
                        node, from, until, ..
                    } => {
                        // Forgeries (and their RX-side drops) must fall
                        // inside a declared Byzantine window or the audit
                        // flags them.
                        self.audit
                            .declare_window(LossCause::Byzantine, node, from, until);
                    }
                    _ => {}
                }
            }
        }

        let src = SliceSource {
            next: 0,
            total: workload.len() as u64,
            deadline,
        };
        self.dispatch(src, wall_start)
    }

    /// Run a *streamed* workload to completion (or drain timeout),
    /// holding flow state only for flows in flight: each flow's slab
    /// slot (and reorder entry) is freed the moment it completes, so
    /// memory tracks concurrency, not total flow count. The delivered-
    /// cell digest covers exactly what [`SiriusSim::run`] covers, but
    /// evicted flows fold into a side accumulator in eviction order, so
    /// streaming digests are comparable only to streaming digests (the
    /// slice path's golden digests are untouched). [`RunMetrics::flows`]
    /// is empty — per-flow records for millions of flows are exactly the
    /// memory this path exists to avoid.
    ///
    /// # Panics
    /// If a fault script is attached: slab slots are reused, and the
    /// fault planes' flow-id attribution (the Byzantine RX filter)
    /// assumes ids are stable for the whole run.
    pub fn run_streaming<I: Iterator<Item = Flow>>(mut self, flows: I) -> RunMetrics {
        assert!(
            self.faults.injector.is_empty(),
            "run_streaming does not support fault scripts (flow ids are recycled)"
        );
        let wall_start = std::time::Instant::now();
        self.evict_completed = true;
        let src = StreamSource::new(
            flows,
            self.cfg.drain_timeout,
            self.payload,
            self.cfg.network.total_servers(),
        );
        self.dispatch(src, wall_start)
    }

    /// Shared tail of [`SiriusSim::run`] / [`SiriusSim::run_streaming`]:
    /// pick the loop instantiation and collect metrics.
    fn dispatch<S: FlowSource>(mut self, mut src: S, wall_start: std::time::Instant) -> RunMetrics {
        let slot_ps = self.cfg.network.slot().as_ps();
        let epoch_slots = self.cfg.network.epoch_slots();
        // The slot loop is monomorphized per observer: when the audit is
        // on, it temporarily owns the `Audit` and forwards every probe;
        // when off, the NullObserver instantiation compiles the probes
        // away entirely (see `crate::engine::observer`).
        let abs_slot = if self.audit.enabled() {
            let audit = std::mem::replace(&mut self.audit, Audit::new(false, 0, 0, 0, false));
            let mut obs = AuditObserver::new(audit);
            let s = self.run_loop(&mut src, &mut obs);
            self.audit = obs.into_audit();
            s
        } else if self.cfg.shards > 1 && self.cfg.mode != CcMode::Ideal && self.nodes.len() > 1 {
            // Sharded TX phase, digest-identical to serial (Ideal mode's
            // shared back-pressure state is inherently sequential, so it
            // stays on the serial loop).
            let shards = self.cfg.shards;
            self.run_loop_sharded(&mut src, shards)
        } else {
            self.run_loop(&mut src, &mut NullObserver)
        };

        self.finish(
            Time::from_ps(abs_slot * slot_ps),
            abs_slot / epoch_slots,
            wall_start.elapsed().as_secs_f64(),
        )
    }

    /// Fold a completed flow's terminal state into the streaming digest
    /// accumulator and free its slab slot.
    pub(crate) fn fold_and_evict(&mut self, fi: u32) {
        let f = &self.flows[fi as usize];
        debug_assert!(f.completion.is_some());
        self.stream_fold.update(f.delivered);
        self.stream_fold.update(
            f.completion
                .map(|c| c.since(Time::ZERO).as_ps())
                .unwrap_or(u64::MAX),
        );
        if let Some(c) = f.completion {
            self.fct_hist.record(c.since(f.arrival));
        }
        self.flows.evict(fi);
    }

    /// Epoch boundary: flow admission + injection, then the CC round.
    pub(crate) fn epoch_boundary<S: FlowSource, O: SlotObserver>(
        &mut self,
        epoch: u64,
        now: Time,
        src: &mut S,
        obs: &mut O,
    ) {
        // 1. Admit flows that have arrived.
        while let Some(fi) = src.pop_arrived(now, &mut self.flows) {
            let (bytes, src_server, dst_server) = {
                let f = &self.flows[fi as usize];
                (f.bytes, f.src_server, f.dst_server)
            };
            let src_node = self.node_of_server(src_server);
            let dst_node = self.node_of_server(dst_server);
            if src_node == dst_node {
                // Intra-rack traffic bypasses the optical core (§4.2):
                // delivered after one server-link serialization.
                let done = now + self.cfg.network.server_rate.tx_time(bytes);
                self.flows[fi as usize].completion = Some(done);
                self.flows[fi as usize].delivered = bytes;
                self.delivery.delivered_bytes += bytes;
                self.delivery.completed += 1;
                self.delivery.last_delivery = self.delivery.last_delivery.max(done);
                if self.evict_completed {
                    self.fold_and_evict(fi);
                }
            } else {
                self.servers[src_server as usize].active.push_back(fi);
            }
        }

        // 2. Server injection: every server earns one epoch of link credit
        //    and injects cells round-robin across its active flows.
        for s in 0..self.servers.len() {
            if self.failure_plane.is_failed(self.node_of_server(s as u32)) {
                // Servers behind a crashed ToR are off the fabric entirely.
                self.servers[s].credit = 0;
                continue;
            }
            if self.servers[s].active.is_empty() {
                // Credit does not accumulate while idle (non-work-conserving
                // credits would let a server burst above its link rate).
                self.servers[s].credit = 0;
                continue;
            }
            self.servers[s].credit += self.epoch_credit_bytes;
            while let Some(&fi) = self.servers[s].active.front() {
                let spn = self.cfg.network.servers_per_node as u32;
                let f = &mut self.flows[fi as usize];
                let seq = f.cells_injected;
                let pay = Cell::payload_of(seq, f.bytes, self.payload);
                if self.servers[s].credit < pay as i64 {
                    break;
                }
                self.servers[s].credit -= pay as i64;
                let src_node = NodeId(f.src_server / spn);
                let dst_node = NodeId(f.dst_server / spn);
                let cell = Cell {
                    flow: FlowId(fi as u64),
                    seq: seq as u32,
                    payload: pay,
                    src: src_node,
                    dst: dst_node,
                    dst_server: ServerId(f.dst_server),
                    last: seq + 1 == f.cells_total,
                };
                f.cells_injected += 1;
                let finished = f.cells_injected == f.cells_total;
                self.nodes[src_node.0 as usize].enqueue_local(cell);
                obs.note_injected();
                // Round-robin: rotate the flow to the back (or drop it).
                let fi = self.servers[s].active.pop_front().unwrap();
                if !finished {
                    self.servers[s].active.push_back(fi);
                }
            }
        }

        if self.cfg.mode != CcMode::Protocol {
            return;
        }

        // 3. Begin epoch on every node (rotates request inboxes, expires
        //    grants).
        for node in &mut self.nodes {
            node.begin_epoch(epoch);
        }

        // 4. Issue grants for requests received last epoch; deliver them to
        //    the sources, which move granted cells into VOQs.
        let control_loss = self.faults.active.control_loss;
        for i in 0..self.nodes.len() {
            let ni = NodeId(i as u32);
            if self.failure_plane.is_failed(ni) || self.failure_plane.is_excluded(ni) {
                continue;
            }
            // With a column-repaired schedule the intermediate must not
            // grant requests for destinations its own TX columns can no
            // longer reach (denied requests re-roll a fresh detour at the
            // source). The unfiltered path is kept for the healthy case so
            // fault-free runs keep their exact RNG draw sequence (and
            // golden digests).
            let grants = if self.sched.has_omitted_columns() {
                let sched = &self.sched;
                self.nodes[i]
                    .cc
                    .issue_grants_filtered(&mut self.rng, epoch, |d| sched.pair_usable(ni, d))
            } else {
                self.nodes[i].cc.issue_grants(&mut self.rng, epoch)
            };
            for (src, dst) in grants {
                if self.failure_plane.is_failed(src) || self.failure_plane.is_excluded(src) {
                    continue; // the loss backstop reclaims this grant
                }
                // ControlLoss window: the grant is corrupted in flight.
                // Grant expiry at the intermediate reclaims the slot.
                if control_loss > 0.0 && self.faults.injector.draw(control_loss) {
                    self.faults.report.grants_lost += 1;
                    continue;
                }
                let used = self.nodes[src.0 as usize].receive_grant(ni, dst);
                if !used {
                    // Source had no waiting cell: decline (piggybacked on
                    // the next scheduled cell back to the intermediate).
                    self.nodes[i].cc.grant_declined(dst);
                }
            }
        }

        // 5. Generate this epoch's requests (piggybacked on this epoch's
        //    cells; considered for grants next epoch).
        for i in 0..self.nodes.len() {
            let ni = NodeId(i as u32);
            if self.failure_plane.is_failed(ni) || self.failure_plane.is_excluded(ni) {
                continue;
            }
            let vlb = &self.vlb;
            let sched = &self.sched;
            // Same split as grant issue: under column repair, a VLB detour
            // must be reachable from the source *and* able to reach the
            // destination through the repaired schedule.
            let reqs = if sched.has_omitted_columns() {
                self.nodes[i].gen_requests(&mut self.rng, |rng, src, dst| {
                    vlb.pick_where(rng, src, dst, |m| {
                        sched.pair_usable(src, m) && sched.pair_usable(m, dst)
                    })
                })
            } else {
                self.nodes[i].gen_requests(&mut self.rng, |rng, src, dst| vlb.pick(rng, src, dst))
            };
            for (intermediate, dst) in reqs {
                if self.failure_plane.is_failed(intermediate) {
                    // A request addressed to a dead node vanishes with it;
                    // the sticky VOQ entry re-requests next epoch.
                    continue;
                }
                // ControlLoss window: the request is corrupted in flight.
                if control_loss > 0.0 && self.faults.injector.draw(control_loss) {
                    self.faults.report.requests_lost += 1;
                    continue;
                }
                self.nodes[intermediate.0 as usize]
                    .cc
                    .receive_request(ni, dst);
            }
        }

        // 6. Byzantine request inflation: a compromised node floods random
        //    intermediates with counterfeit requests for cells that do not
        //    exist. The damage shows up as declined grants (the liar has
        //    no waiting cell when granted) — capacity stolen from honest
        //    requesters — and is bounded per epoch by `extra_requests`.
        //    Draws come from the liar's own fault stream, after any TX
        //    forge draws of the preceding epoch, so the sequence stays
        //    shard-partition-independent.
        if self.faults.active.any_byz() {
            let n = self.nodes.len() as u32;
            for bi in 0..self.faults.active.byz_nodes.len() {
                let b = self.faults.active.byz_nodes[bi];
                let extra = self.faults.active.byz_extra_of(b);
                if extra == 0
                    || self.failure_plane.is_failed(b)
                    || self.failure_plane.is_excluded(b)
                {
                    continue;
                }
                for _ in 0..extra {
                    let rng = &mut self.fault_rngs[b.0 as usize];
                    let dst = NodeId(rng.gen_range(0..n));
                    let intermediate = NodeId(rng.gen_range(0..n));
                    if self.failure_plane.is_failed(intermediate) {
                        continue;
                    }
                    self.nodes[intermediate.0 as usize]
                        .cc
                        .receive_request(b, dst);
                    self.faults.report.requests_forged += 1;
                }
            }
        }
    }

    fn finish(self, end: Time, epochs: u64, wall_secs: f64) -> RunMetrics {
        let total_flows = self.flows.admitted();
        let span = if self.delivery.last_delivery > Time::ZERO {
            self.delivery.last_delivery.since(Time::ZERO)
        } else {
            end.since(Time::ZERO)
        };
        // Fold the summary into the delivered-cell digest: two runs agree
        // iff they delivered the same cells in the same order *and* ended
        // in the same aggregate state. Streaming runs fold evicted flows
        // through the side accumulator plus whatever is still resident;
        // slice runs fold every flow in slot order, exactly as before.
        let mut digest = self.delivery.digest;
        digest.update(self.delivery.delivered_bytes);
        digest.update(span.as_ps());
        digest.update(total_flows - self.delivery.completed);
        if self.evict_completed {
            digest.update(self.stream_fold.value());
        }
        for f in self.flows.iter_occupied() {
            digest.update(f.delivered);
            digest.update(
                f.completion
                    .map(|c| c.since(Time::ZERO).as_ps())
                    .unwrap_or(u64::MAX),
            );
        }
        let audit = if self.audit.enabled() {
            Some(self.audit.finish())
        } else {
            None
        };
        let fault = if !self.faults.injector.is_empty() {
            let mut fr = self.faults.report;
            fr.capacity_factor_end = self.sched.capacity_factor();
            // Grey-localization score: of the (node, uplink) TX columns the
            // script degraded, how many did the per-column detector flag?
            let mut declared: Vec<(NodeId, u16)> = Vec::new();
            for e in self.faults.injector.events() {
                if let FaultEvent::GreyLink { node, uplink, .. } = *e {
                    if !declared.contains(&(node, uplink)) {
                        declared.push((node, uplink));
                    }
                }
            }
            fr.grey_links_declared = declared.len() as u32;
            fr.grey_links_localized = declared
                .iter()
                .filter(|l| self.detect.links_suspected.contains(l))
                .count() as u32;
            Some(fr)
        } else {
            None
        };
        RunMetrics {
            flows: if self.evict_completed {
                Vec::new()
            } else {
                self.flows
                    .iter_occupied()
                    .map(|f| FlowRecord {
                        bytes: f.bytes,
                        arrival: f.arrival,
                        completion: f.completion,
                        delivered: f.delivered,
                    })
                    .collect()
            },
            delivered_bytes: self.delivery.delivered_bytes,
            span,
            peak_node_fabric_cells: self
                .nodes
                .iter()
                .map(|n| n.peak_fabric_cells())
                .max()
                .unwrap_or(0),
            peak_node_local_cells: self
                .nodes
                .iter()
                .map(|n| n.peak_local_cells())
                .max()
                .unwrap_or(0),
            peak_reorder_flow_bytes: self
                .delivery
                .reorder
                .iter()
                .map(|r| r.peak_flow_bytes())
                .max()
                .unwrap_or(0),
            resident_flows_max: self.flows.resident_peak().max(
                self.delivery
                    .reorder
                    .iter()
                    .map(|r| r.peak_resident_flows() as u64)
                    .max()
                    .unwrap_or(0),
            ),
            cell_bytes: self.cfg.network.cell_bytes,
            incomplete_flows: total_flows - self.delivery.completed,
            cc: {
                let mut total = sirius_core::congestion::CcStats::default();
                for n in &self.nodes {
                    total.add(&n.cc.stats());
                }
                total
            },
            digest: digest.value(),
            audit,
            fault,
            wall_secs,
            cells_delivered: self.delivery.cells_delivered,
            epochs_simulated: epochs,
            tx_secs: self.plane_times.tx.as_secs_f64(),
            deliver_secs: self.plane_times.deliver.as_secs_f64(),
            merge_secs: self.plane_times.merge.as_secs_f64(),
            fct_hist: if self.evict_completed {
                Some(self.fct_hist)
            } else {
                None
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sirius_core::units::Rate;
    use sirius_workload::{Pareto, Pattern, WorkloadSpec};

    fn tiny_net() -> SiriusConfig {
        let mut c = SiriusConfig::scaled(16, 4);
        c.servers_per_node = 2;
        c.server_rate = Rate::from_gbps(50);
        c
    }

    fn tiny_workload(net: &SiriusConfig, load: f64, flows: u64, seed: u64) -> Vec<Flow> {
        WorkloadSpec {
            servers: net.total_servers() as u32,
            server_rate: net.server_rate,
            load,
            sizes: Pareto::paper_default().truncated(1e6),
            flows,
            pattern: Pattern::Uniform,
            seed,
        }
        .generate()
    }

    #[test]
    fn all_flows_complete_at_low_load() {
        let net = tiny_net();
        let wl = tiny_workload(&net, 0.2, 300, 7);
        let m = SiriusSim::new(SiriusSimConfig::new(net)).run(&wl);
        assert_eq!(m.incomplete_flows, 0, "flows stuck at low load");
        let expect: u64 = wl.iter().map(|f| f.bytes).sum();
        assert_eq!(m.delivered_bytes, expect, "byte conservation violated");
    }

    #[test]
    fn drain_timeout_terminates_an_overloaded_run() {
        // At twice the offerable load the backlog never drains; the run
        // must still stop `drain_timeout` after the last arrival and
        // report the unfinished flows instead of spinning forever.
        let net = tiny_net();
        let wl = tiny_workload(&net, 2.0, 400, 12);
        let last_arrival = wl.last().unwrap().arrival;
        let mut cfg = SiriusSimConfig::new(net);
        cfg.drain_timeout = Duration::from_us(50);
        let m = SiriusSim::new(cfg).run(&wl);
        assert!(m.incomplete_flows > 0, "overload run completed everything");
        assert!(m.delivered_bytes > 0, "nothing delivered before cutoff");
        // The clock stopped within one epoch of the deadline.
        let deadline = last_arrival + Duration::from_us(50);
        assert!(
            m.span <= deadline.since(Time::ZERO) + Duration::from_us(5),
            "run span {} way past the drain deadline",
            m.span
        );
    }

    #[test]
    fn ideal_mode_also_completes() {
        let net = tiny_net();
        let wl = tiny_workload(&net, 0.2, 300, 8);
        let m = SiriusSim::new(SiriusSimConfig::new(net).with_mode(CcMode::Ideal)).run(&wl);
        assert_eq!(m.incomplete_flows, 0);
    }

    #[test]
    fn ideal_fct_not_worse_than_protocol() {
        // The ideal baseline removes the request/grant latency, so short
        // flows must finish at least as fast (paper: 55-63% faster at low
        // load).
        let net = tiny_net();
        let wl = tiny_workload(&net, 0.1, 400, 9);
        let proto = SiriusSim::new(SiriusSimConfig::new(net.clone())).run(&wl);
        let ideal = SiriusSim::new(SiriusSimConfig::new(net).with_mode(CcMode::Ideal)).run(&wl);
        let fp = proto.fct_mean(100_000).unwrap();
        let fi = ideal.fct_mean(100_000).unwrap();
        // Tiny-scale runs are noisy; the ideal mean must not be
        // meaningfully above the protocol mean.
        assert!(
            fi.as_ps() as f64 <= fp.as_ps() as f64 * 1.10,
            "ideal mean FCT {fi} well above protocol mean {fp}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let net = tiny_net();
        let wl = tiny_workload(&net, 0.3, 200, 11);
        let a = SiriusSim::new(SiriusSimConfig::new(net.clone()).with_seed(5)).run(&wl);
        let b = SiriusSim::new(SiriusSimConfig::new(net).with_seed(5)).run(&wl);
        assert_eq!(a.delivered_bytes, b.delivered_bytes);
        assert_eq!(a.peak_node_fabric_cells, b.peak_node_fabric_cells);
        let fa: Vec<_> = a.flows.iter().map(|f| f.completion).collect();
        let fb: Vec<_> = b.flows.iter().map(|f| f.completion).collect();
        assert_eq!(fa, fb);
    }

    #[test]
    fn relay_queues_bounded_by_q() {
        // The protocol's whole purpose: no relay queue ever exceeds Q.
        // (Enforced by debug_asserts inside CongestionState, exercised here
        // at a bursty load.)
        let net = tiny_net();
        let wl = tiny_workload(&net, 0.9, 1500, 13);
        let m = SiriusSim::new(SiriusSimConfig::new(net.clone())).run(&wl);
        // Peak fabric cells per node is bounded by relay (<= Q per dest) +
        // VOQs; sanity: it stays far below the total cell population.
        assert!(m.peak_node_fabric_cells < 4000);
        assert!(m.delivered_bytes > 0);
    }

    #[test]
    fn intra_rack_flows_bypass_core() {
        let mut net = tiny_net();
        net.servers_per_node = 4;
        let wl = vec![Flow {
            id: 0,
            src_server: 0,
            dst_server: 1, // same node (servers 0..4 on node 0)
            bytes: 10_000,
            arrival: Time::ZERO,
        }];
        let m = SiriusSim::new(SiriusSimConfig::new(net)).run(&wl);
        assert_eq!(m.incomplete_flows, 0);
        // FCT = one server-link serialization: 10 KB at 50 Gbps = 1.6 us.
        let fct = m.flows[0].fct().unwrap();
        assert!(fct < Duration::from_us(2), "intra-rack FCT {fct}");
    }

    #[test]
    fn failed_node_strands_its_flows_only() {
        let net = tiny_net();
        // One flow through every src node to dst node 1.
        let mut wl = Vec::new();
        for (k, s) in (0..16u32).enumerate() {
            if s == 1 {
                continue;
            }
            wl.push(Flow {
                id: k as u64,
                src_server: s * 2,
                dst_server: 2, // node 1
                bytes: 5_000,
                arrival: Time::from_ps(k as u64),
            });
        }
        let mut sim = SiriusSim::new(SiriusSimConfig::new(net));
        // Node 3 dies immediately; flows from server 6 (node 3) strand.
        sim.inject_failures(vec![ScheduledFailure {
            node: NodeId(3),
            epoch: 0,
        }]);
        let m = sim.run(&wl);
        // Some cells may be lost in the detection window if they were
        // relayed via node 3; flows sourced at node 3 definitely strand.
        assert!(m.incomplete_flows >= 1);
        // But the network as a whole keeps delivering.
        assert!(m.completed_flows() >= 10);
        // Detection was emergent: nothing told routing about the crash, yet
        // the silence detectors converged within threshold + 1 epochs.
        let fr = m.fault.expect("injector attached, report missing");
        let rec = &fr.failures[0];
        assert_eq!(rec.fail_epoch, 0);
        let lat = rec.detection_epochs().expect("crash never suspected");
        assert!(lat <= 3 + 1, "detection latency {lat} epochs");
        assert_eq!(
            rec.excluded_at.expect("never excluded"),
            rec.first_suspected.unwrap() + 1,
            "exclusion must land exactly one update epoch after suspicion"
        );
        assert!(fr.capacity_factor_end < 1.0);
    }

    #[test]
    fn crash_and_recover_readmits_emergently() {
        let net = tiny_net();
        let wl = tiny_workload(&net, 0.2, 200, 19);
        let inj = FaultInjector::new(19)
            .crash(NodeId(5), 10)
            .recover(NodeId(5), 60);
        let m = SiriusSim::new(SiriusSimConfig::new(net))
            .with_faults(inj)
            .run(&wl);
        let fr = m.fault.unwrap();
        let rec = &fr.failures[0];
        assert!(rec.excluded_at.is_some(), "crash never excluded");
        let readmit = rec.readmitted_at.expect("reboot never readmitted");
        assert!(
            (60..=60 + 3 + 2).contains(&readmit),
            "readmission at {readmit}, reboot at 60"
        );
        assert_eq!(fr.exclusions, 1);
        assert_eq!(fr.readmissions, 1);
        // Full capacity restored by the end of the run.
        assert_eq!(fr.capacity_factor_end, 1.0);
    }

    #[test]
    fn control_loss_is_absorbed_without_data_loss() {
        // Sticky request re-issue and grant expiry must absorb lossy
        // control messaging: flows complete, no cells vanish.
        let net = tiny_net();
        let wl = tiny_workload(&net, 0.3, 300, 23);
        let inj = FaultInjector::new(23).control_loss(0.3, 0, u64::MAX);
        let mut cfg = SiriusSimConfig::new(net).with_audit(true);
        // Lossy control costs extra request/grant round trips; give the
        // tail flows room to drain.
        cfg.drain_timeout = Duration::from_ms(10);
        let m = SiriusSim::new(cfg).with_faults(inj).run(&wl);
        assert_eq!(m.incomplete_flows, 0, "control loss stranded flows");
        let fr = m.fault.unwrap();
        assert!(
            fr.requests_lost + fr.grants_lost > 0,
            "control-loss window never fired"
        );
        assert_eq!(
            fr.cells_lost_crash + fr.cells_lost_grey + fr.cells_lost_mistune,
            0
        );
        let audit = m.audit.unwrap();
        assert!(audit.is_clean(), "audit violations: {:?}", audit.violations);
    }

    #[test]
    fn grey_link_losses_are_attributed() {
        let net = tiny_net();
        let wl = tiny_workload(&net, 0.5, 400, 29);
        let inj = FaultInjector::new(29).grey_link(NodeId(2), 1, 0.5, 5, 200);
        let m = SiriusSim::new(SiriusSimConfig::new(net).with_audit(true))
            .with_faults(inj)
            .run(&wl);
        let fr = m.fault.unwrap();
        assert!(fr.cells_lost_grey > 0, "grey window erased nothing");
        let audit = m.audit.unwrap();
        assert!(audit.is_clean(), "audit violations: {:?}", audit.violations);
    }

    #[test]
    fn mistuned_laser_is_detected_and_excluded() {
        // A fully mistuned node goes silent on every RX column it should
        // be driving, so node-level silence detection excludes it; when the
        // laser is re-tuned its keepalives readmit it.
        let net = tiny_net();
        let wl = tiny_workload(&net, 0.2, 200, 31);
        let inj = FaultInjector::new(31).mistune(NodeId(4), 3, 10, 60);
        let m = SiriusSim::new(SiriusSimConfig::new(net).with_audit(true))
            .with_faults(inj)
            .run(&wl);
        let fr = m.fault.unwrap();
        assert!(fr.exclusions >= 1, "mistuned node never excluded");
        assert!(fr.readmissions >= 1, "re-tuned node never readmitted");
        assert!(fr.cells_lost_mistune > 0);
        let audit = m.audit.unwrap();
        assert!(audit.is_clean(), "audit violations: {:?}", audit.violations);
    }

    #[test]
    fn no_false_suspicions_without_faults_under_saturation() {
        // Keepalives ride every scheduled slot, so load can never imitate
        // silence: a saturated but healthy run must produce zero suspicion
        // events. (Run with an empty injector attached to get the report.)
        let net = tiny_net();
        let wl = tiny_workload(&net, 1.0, 800, 37);
        let inj = FaultInjector::new(37).crash(NodeId(0), u64::MAX - 1);
        let m = SiriusSim::new(SiriusSimConfig::new(net))
            .with_faults(inj)
            .run(&wl);
        let fr = m.fault.unwrap();
        assert_eq!(fr.suspicion_events, 0, "false suspicion under saturation");
        assert_eq!(fr.exclusions, 0);
    }

    #[test]
    fn fct_grows_with_load() {
        let net = tiny_net();
        let lo = SiriusSim::new(SiriusSimConfig::new(net.clone()))
            .run(&tiny_workload(&net, 0.1, 400, 21));
        let hi = SiriusSim::new(SiriusSimConfig::new(net.clone()))
            .run(&tiny_workload(&net, 0.9, 400, 21));
        let f_lo = lo.fct_percentile(99.0, 100_000).unwrap();
        let f_hi = hi.fct_percentile(99.0, 100_000).unwrap();
        assert!(f_hi >= f_lo, "p99 at high load {f_hi} < low load {f_lo}");
    }
}
