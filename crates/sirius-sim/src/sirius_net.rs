//! Slot-synchronous cell-level simulator of a Sirius deployment (§7).
//!
//! The fabric is perfectly synchronous — that is the whole point of the
//! paper's time-synchronization machinery — so the simulator advances
//! slot-by-slot over dense arrays instead of a per-cell event heap:
//!
//! * At every **epoch boundary** servers inject cells into their rack's
//!   `LOCAL` buffer (credit-limited by the server link rate, modelling the
//!   one-hop server<->rack flow control of §4.3), the congestion-control
//!   round runs (grant issue for last epoch's requests, then fresh
//!   requests), and failure visibility is refreshed.
//! * At every **slot**, each node transmits on each uplink to the
//!   destination dictated by the static schedule; cells arrive after the
//!   fiber propagation delay and are either relayed or delivered to the
//!   per-server reorder buffers.
//!
//! Requests and grants are piggybacked on cells in the real system; the
//! simulator exchanges them at epoch boundaries with the one-epoch
//! pipelining the paper describes (requests sent during epoch `e` are
//! granted at `e+1`; granted cells transmit from `e+1` onward).
//!
//! Two congestion-control modes reproduce the paper's §7 comparison:
//! [`CcMode::Protocol`] is the request/grant protocol; [`CcMode::Ideal`]
//! is the SIRIUS (IDEAL) upper bound with per-flow queues and idealized
//! (zero-latency, global-knowledge) back-pressure.

use crate::audit::{Audit, RunDigest};
use crate::metrics::{FlowRecord, RunMetrics};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use sirius_core::cell::{Cell, FlowId};
use sirius_core::config::SiriusConfig;
use sirius_core::fault::FailurePlane;
use sirius_core::node::{SiriusNode, SlotTx};
use sirius_core::reorder::ReorderBuffer;
use sirius_core::schedule::Schedule;
use sirius_core::topology::{NodeId, ServerId, UplinkId};
use sirius_core::units::{Duration, Time};
use sirius_core::vlb::Vlb;
use sirius_workload::Flow;
use std::collections::VecDeque;

/// Congestion-control mode for a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CcMode {
    /// The paper's request/grant protocol (§4.3).
    Protocol,
    /// SIRIUS (IDEAL): per-flow queues + instant back-pressure (§7).
    Ideal,
    /// Ablation: no congestion control at all — cells are launched at any
    /// intermediate with a free slot and no queue bound. This is the
    /// failure mode §4.3 opens with ("if this keeps occurring, queues can
    /// grow very large"); the `ablation` harness quantifies it.
    Greedy,
}

/// Simulation parameters beyond the network config itself.
#[derive(Debug, Clone)]
pub struct SiriusSimConfig {
    pub network: SiriusConfig,
    pub mode: CcMode,
    pub seed: u64,
    /// Give up this long after the last flow arrival (overload runs never
    /// drain; the paper measures goodput over the simulated span).
    pub drain_timeout: Duration,
    /// Hard cap on simulated slots (safety net).
    pub max_slots: u64,
    /// Run the per-epoch invariant audit (see [`crate::audit`]). Defaults
    /// to on in debug builds (where every test exercises it) and off in
    /// release, keeping the paper-scale sweeps at full throughput.
    pub audit: bool,
}

impl SiriusSimConfig {
    pub fn new(network: SiriusConfig) -> SiriusSimConfig {
        SiriusSimConfig {
            network,
            mode: CcMode::Protocol,
            seed: 1,
            drain_timeout: Duration::from_ms(2),
            max_slots: 200_000_000,
            audit: cfg!(debug_assertions),
        }
    }

    pub fn with_mode(mut self, mode: CcMode) -> SiriusSimConfig {
        self.mode = mode;
        self
    }
    pub fn with_seed(mut self, seed: u64) -> SiriusSimConfig {
        self.seed = seed;
        self
    }
    pub fn with_audit(mut self, audit: bool) -> SiriusSimConfig {
        self.audit = audit;
        self
    }
}

/// Per-flow simulation state.
#[derive(Debug, Clone)]
struct FlowSt {
    bytes: u64,
    arrival: Time,
    src_server: u32,
    dst_server: u32,
    cells_total: u64,
    cells_injected: u64,
    delivered: u64,
    completion: Option<Time>,
}

/// Per-server injection state.
#[derive(Debug, Default)]
struct ServerSt {
    /// Flows with cells still to inject, served round-robin.
    active: VecDeque<u32>,
    /// Byte credit accumulated from the server link.
    credit: i64,
}

/// A scheduled failure: node `node` dies at `epoch`.
#[derive(Debug, Clone, Copy)]
pub struct ScheduledFailure {
    pub node: NodeId,
    pub epoch: u64,
    /// Epochs until the failure is visible to routing.
    pub detect_epochs: u64,
}

/// The simulator itself. Build with [`SiriusSim::new`], then
/// [`run`](SiriusSim::run) a workload.
pub struct SiriusSim {
    cfg: SiriusSimConfig,
    sched: Schedule,
    vlb: Vlb,
    nodes: Vec<SiriusNode>,
    reorder: Vec<ReorderBuffer>,
    flows: Vec<FlowSt>,
    servers: Vec<ServerSt>,
    rng: SmallRng,
    /// Delivery pipeline: ring indexed by arrival slot.
    ring: Vec<Vec<(NodeId, Cell)>>,
    prop_slots: usize,
    /// Ideal-mode back-pressure shadow: in-flight + queued cells per
    /// (intermediate, destination).
    ideal_occ: Vec<u32>,
    failures: Vec<ScheduledFailure>,
    failure_plane: FailurePlane,
    audit: Audit,
    digest: RunDigest,
    // Run accounting.
    delivered_bytes: u64,
    completed: u64,
    last_delivery: Time,
    payload: u32,
    epoch_credit_bytes: i64,
}

impl SiriusSim {
    pub fn new(cfg: SiriusSimConfig) -> SiriusSim {
        cfg.network.validate().expect("invalid network config");
        let net = &cfg.network;
        let sched = Schedule::new(net);
        let n = net.nodes;
        let mut grant_timeout = net.grant_timeout_epochs;
        // A grant must survive the request->grant->send->arrive pipeline,
        // which includes the fiber flight time.
        let prop_slots = net.propagation.as_ps().div_ceil(net.slot().as_ps());
        let prop_epochs = prop_slots / net.epoch_slots() + 1;
        // Floor: the worst legitimate VOQ wait. A granted cell for
        // intermediate I queues behind at most Q cells per destination
        // (each holding one of I's `queued + outstanding < Q` reservation
        // units), i.e. < Q*n cells, and relay-burst arbitration guarantees
        // the VOQ at least one departure every `RELAY_BURST + 1` scheduled
        // slots to I — so a grant that outlives `(RELAY_BURST+1) * Q * n`
        // epochs plus the flight time is genuinely lost (node failure),
        // never merely slow. A smaller timeout fires the loss backstop
        // spuriously at saturation and corrupts the conservation
        // accounting the audit layer checks.
        let voq_wait_bound =
            (sirius_core::node::RELAY_BURST as u64 + 1) * (net.queue_threshold as u64) * (n as u64);
        grant_timeout = grant_timeout
            .max(16 + prop_epochs)
            .max(voq_wait_bound + prop_epochs);
        let nodes: Vec<SiriusNode> = (0..n as u32)
            .map(|i| match cfg.mode {
                CcMode::Protocol => {
                    SiriusNode::new(NodeId(i), n, net.queue_threshold, grant_timeout)
                }
                CcMode::Ideal | CcMode::Greedy => {
                    SiriusNode::new_ideal(NodeId(i), n, net.queue_threshold)
                }
            })
            .collect();
        let servers = (0..net.total_servers())
            .map(|_| ServerSt::default())
            .collect();
        let reorder = (0..net.total_servers())
            .map(|_| ReorderBuffer::new())
            .collect();
        let ring_len = prop_slots as usize + 1;
        // i128: millisecond-scale epochs (the granularity sweep's MEMS
        // point) overflow i64 in `rate x epoch`.
        let epoch_credit_bytes = ((net.server_rate.as_bps() as i128 / 8)
            * net.epoch().as_ps() as i128
            / 1_000_000_000_000) as i64;
        let audit = Audit::new(
            cfg.audit,
            n,
            sched.uplinks(),
            net.queue_threshold,
            // The greedy ablation deliberately abandons the §4.3 bound.
            cfg.mode != CcMode::Greedy,
        );
        SiriusSim {
            audit,
            digest: RunDigest::new(),
            sched,
            vlb: Vlb::new(n),
            nodes,
            reorder,
            flows: Vec::new(),
            servers,
            rng: SmallRng::seed_from_u64(cfg.seed),
            ring: vec![Vec::new(); ring_len],
            prop_slots: prop_slots as usize,
            ideal_occ: if cfg.mode == CcMode::Ideal {
                vec![0; n * n]
            } else {
                Vec::new()
            },
            failures: Vec::new(),
            failure_plane: FailurePlane::new(n),
            delivered_bytes: 0,
            completed: 0,
            last_delivery: Time::ZERO,
            payload: cfg.network.payload_bytes,
            epoch_credit_bytes,
            cfg,
        }
    }

    /// Schedule node failures to inject during the run.
    pub fn inject_failures(&mut self, failures: Vec<ScheduledFailure>) {
        self.failures = failures;
        self.failures.sort_by_key(|f| f.epoch);
    }

    fn node_of_server(&self, s: u32) -> NodeId {
        NodeId(s / self.cfg.network.servers_per_node as u32)
    }

    /// Run the workload to completion (or drain timeout); consumes the sim.
    pub fn run(mut self, workload: &[Flow]) -> RunMetrics {
        let net = self.cfg.network.clone();
        let slot_ps = net.slot().as_ps();
        let epoch_slots = net.epoch_slots();
        let n_nodes = net.nodes;
        let uplinks = self.sched.uplinks();
        self.flows = workload
            .iter()
            .map(|f| FlowSt {
                bytes: f.bytes,
                arrival: f.arrival,
                src_server: f.src_server,
                dst_server: f.dst_server,
                cells_total: Cell::count_for(f.bytes, self.payload),
                cells_injected: 0,
                delivered: 0,
                completion: None,
            })
            .collect();
        assert!(
            workload
                .iter()
                .all(|f| (f.src_server as usize) < net.total_servers()
                    && (f.dst_server as usize) < net.total_servers()),
            "workload references servers outside the deployment"
        );
        let last_arrival = workload.last().map(|f| f.arrival).unwrap_or(Time::ZERO);
        let deadline = last_arrival + self.cfg.drain_timeout;

        let mut next_flow = 0usize;
        let mut next_failure = 0usize;
        let mut abs_slot: u64 = 0;
        let total_flows = self.flows.len() as u64;

        while self.completed < total_flows && abs_slot < self.cfg.max_slots {
            let now = Time::from_ps(abs_slot * slot_ps);
            if now > deadline {
                break;
            }
            if abs_slot.is_multiple_of(epoch_slots) {
                let epoch = abs_slot / epoch_slots;
                // Inject scheduled failures.
                while next_failure < self.failures.len()
                    && self.failures[next_failure].epoch <= epoch
                {
                    let f = self.failures[next_failure];
                    self.failure_plane.fail(f.node, epoch, f.detect_epochs);
                    next_failure += 1;
                }
                self.failure_plane.sync_to_vlb(&mut self.vlb, epoch);
                self.epoch_boundary(epoch, now, workload, &mut next_flow);
                if self.audit.enabled() {
                    let in_flight = self.ring.iter().map(|v| v.len() as u64).sum();
                    self.audit.epoch_check(epoch, &self.nodes, in_flight);
                }
            }

            // Deliver cells whose propagation completes this slot.
            let idx = (abs_slot % self.ring.len() as u64) as usize;
            let due = std::mem::take(&mut self.ring[idx]);
            for (dst, cell) in due {
                self.deliver(dst, cell, now);
            }

            // Transmissions.
            let t = self.sched.slot_in_epoch(abs_slot);
            let arrive_idx =
                ((abs_slot + self.prop_slots as u64) % self.ring.len() as u64) as usize;
            for i in 0..n_nodes as u32 {
                if self.failure_plane.is_failed(NodeId(i)) {
                    continue;
                }
                for u in 0..uplinks as u16 {
                    let j = self.sched.dest(NodeId(i), UplinkId(u), t);
                    if self.failure_plane.is_failed(j) {
                        continue;
                    }
                    self.audit.note_rx(abs_slot, j, u);
                    let tx = match self.cfg.mode {
                        CcMode::Protocol => self.nodes[i as usize].transmit(j),
                        CcMode::Greedy => {
                            // No back-pressure: any cell may detour via j.
                            self.nodes[i as usize].ideal_transmit(j, |_| true)
                        }
                        CcMode::Ideal => {
                            let occ = &self.ideal_occ;
                            let q = net.queue_threshold as u32;
                            let jn = j.0 as usize;
                            let tx = self.nodes[i as usize]
                                .ideal_transmit(j, |d| occ[jn * n_nodes + d.0 as usize] < q);
                            match tx {
                                // Launch toward intermediate j: occupancy
                                // (in-flight + queued) rises.
                                SlotTx::ToIntermediate(c) if c.dst != j => {
                                    self.ideal_occ[jn * n_nodes + c.dst.0 as usize] += 1;
                                }
                                // Second hop departs intermediate i: free it.
                                SlotTx::Relay(c) => {
                                    self.ideal_occ[i as usize * n_nodes + c.dst.0 as usize] -= 1;
                                }
                                _ => {}
                            }
                            tx
                        }
                    };
                    match tx {
                        SlotTx::Relay(c) | SlotTx::ToIntermediate(c) => {
                            self.ring[arrive_idx].push((j, c));
                        }
                        SlotTx::Idle => {}
                    }
                }
            }
            self.audit.end_slot();
            abs_slot += 1;
        }

        self.finish(Time::from_ps(abs_slot * slot_ps), total_flows)
    }

    /// Epoch boundary: flow admission + injection, then the CC round.
    fn epoch_boundary(&mut self, epoch: u64, now: Time, workload: &[Flow], next_flow: &mut usize) {
        // 1. Admit flows that have arrived.
        while *next_flow < workload.len() && workload[*next_flow].arrival <= now {
            let fi = *next_flow as u32;
            let f = &workload[*next_flow];
            let src_node = self.node_of_server(f.src_server);
            let dst_node = self.node_of_server(f.dst_server);
            if src_node == dst_node {
                // Intra-rack traffic bypasses the optical core (§4.2):
                // delivered after one server-link serialization.
                let done = now + self.cfg.network.server_rate.tx_time(f.bytes);
                self.flows[fi as usize].completion = Some(done);
                self.flows[fi as usize].delivered = f.bytes;
                self.delivered_bytes += f.bytes;
                self.completed += 1;
                self.last_delivery = self.last_delivery.max(done);
            } else {
                self.servers[f.src_server as usize].active.push_back(fi);
            }
            *next_flow += 1;
        }

        // 2. Server injection: every server earns one epoch of link credit
        //    and injects cells round-robin across its active flows.
        for s in 0..self.servers.len() {
            if self.servers[s].active.is_empty() {
                // Credit does not accumulate while idle (non-work-conserving
                // credits would let a server burst above its link rate).
                self.servers[s].credit = 0;
                continue;
            }
            self.servers[s].credit += self.epoch_credit_bytes;
            while let Some(&fi) = self.servers[s].active.front() {
                let spn = self.cfg.network.servers_per_node as u32;
                let f = &mut self.flows[fi as usize];
                let seq = f.cells_injected;
                let pay = Cell::payload_of(seq, f.bytes, self.payload);
                if self.servers[s].credit < pay as i64 {
                    break;
                }
                self.servers[s].credit -= pay as i64;
                let src_node = NodeId(f.src_server / spn);
                let dst_node = NodeId(f.dst_server / spn);
                let cell = Cell {
                    flow: FlowId(fi as u64),
                    seq: seq as u32,
                    payload: pay,
                    src: src_node,
                    dst: dst_node,
                    dst_server: ServerId(f.dst_server),
                    last: seq + 1 == f.cells_total,
                };
                f.cells_injected += 1;
                let finished = f.cells_injected == f.cells_total;
                self.nodes[src_node.0 as usize].enqueue_local(cell);
                self.audit.note_injected();
                // Round-robin: rotate the flow to the back (or drop it).
                let fi = self.servers[s].active.pop_front().unwrap();
                if !finished {
                    self.servers[s].active.push_back(fi);
                }
            }
        }

        if self.cfg.mode != CcMode::Protocol {
            return;
        }

        // 3. Begin epoch on every node (rotates request inboxes, expires
        //    grants).
        for node in &mut self.nodes {
            node.begin_epoch(epoch);
        }

        // 4. Issue grants for requests received last epoch; deliver them to
        //    the sources, which move granted cells into VOQs.
        for i in 0..self.nodes.len() {
            if self.failure_plane.is_failed(NodeId(i as u32)) {
                continue;
            }
            let grants = self.nodes[i].cc.issue_grants(&mut self.rng, epoch);
            for (src, dst) in grants {
                if self.failure_plane.is_failed(src) {
                    continue; // the loss backstop reclaims this grant
                }
                let used = self.nodes[src.0 as usize].receive_grant(NodeId(i as u32), dst);
                if !used {
                    // Source had no waiting cell: decline (piggybacked on
                    // the next scheduled cell back to the intermediate).
                    self.nodes[i].cc.grant_declined(dst);
                }
            }
        }

        // 5. Generate this epoch's requests (piggybacked on this epoch's
        //    cells; considered for grants next epoch).
        for i in 0..self.nodes.len() {
            if self.failure_plane.is_failed(NodeId(i as u32)) {
                continue;
            }
            let vlb = &self.vlb;
            let reqs =
                self.nodes[i].gen_requests(&mut self.rng, |rng, src, dst| vlb.pick(rng, src, dst));
            for (intermediate, dst) in reqs {
                if self.failure_plane.is_failed(intermediate) {
                    continue;
                }
                self.nodes[intermediate.0 as usize]
                    .cc
                    .receive_request(NodeId(i as u32), dst);
            }
        }
    }

    /// Process a cell arriving at `dst` (relay or final delivery).
    fn deliver(&mut self, dst: NodeId, cell: Cell, now: Time) {
        if self.failure_plane.is_failed(dst) {
            self.audit.note_blackholed();
            return; // blackholed until routing learns of the failure
        }
        match self.nodes[dst.0 as usize].receive_cell(cell) {
            None => {} // queued for relay (ideal occupancy already counted)
            Some(cell) => {
                self.digest
                    .update_cell(&cell, now.since(Time::ZERO).as_ps());
                let d = self.reorder[cell.dst_server.0 as usize].accept(
                    cell.flow,
                    cell.seq,
                    cell.payload,
                );
                self.audit.note_delivery(&cell, d.cells);
                if d.bytes > 0 {
                    let f = &mut self.flows[cell.flow.0 as usize];
                    f.delivered += d.bytes;
                    self.delivered_bytes += d.bytes;
                    self.last_delivery = now;
                    if f.delivered >= f.bytes && f.completion.is_none() {
                        f.completion = Some(now);
                        self.completed += 1;
                        self.reorder[cell.dst_server.0 as usize].finish_flow(cell.flow);
                    }
                }
            }
        }
    }

    fn finish(self, end: Time, total_flows: u64) -> RunMetrics {
        let span = if self.last_delivery > Time::ZERO {
            self.last_delivery.since(Time::ZERO)
        } else {
            end.since(Time::ZERO)
        };
        // Fold the summary into the delivered-cell digest: two runs agree
        // iff they delivered the same cells in the same order *and* ended
        // in the same aggregate state.
        let mut digest = self.digest;
        digest.update(self.delivered_bytes);
        digest.update(span.as_ps());
        digest.update(total_flows - self.completed);
        for f in &self.flows {
            digest.update(f.delivered);
            digest.update(
                f.completion
                    .map(|c| c.since(Time::ZERO).as_ps())
                    .unwrap_or(u64::MAX),
            );
        }
        let audit = if self.audit.enabled() {
            Some(self.audit.finish())
        } else {
            None
        };
        RunMetrics {
            flows: self
                .flows
                .iter()
                .map(|f| FlowRecord {
                    bytes: f.bytes,
                    arrival: f.arrival,
                    completion: f.completion,
                    delivered: f.delivered,
                })
                .collect(),
            delivered_bytes: self.delivered_bytes,
            span,
            peak_node_fabric_cells: self
                .nodes
                .iter()
                .map(|n| n.peak_fabric_cells())
                .max()
                .unwrap_or(0),
            peak_node_local_cells: self
                .nodes
                .iter()
                .map(|n| n.peak_local_cells())
                .max()
                .unwrap_or(0),
            peak_reorder_flow_bytes: self
                .reorder
                .iter()
                .map(|r| r.peak_flow_bytes())
                .max()
                .unwrap_or(0),
            cell_bytes: self.cfg.network.cell_bytes,
            incomplete_flows: total_flows - self.completed,
            cc: {
                let mut total = sirius_core::congestion::CcStats::default();
                for n in &self.nodes {
                    total.add(&n.cc.stats());
                }
                total
            },
            digest: digest.value(),
            audit,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sirius_core::units::Rate;
    use sirius_workload::{Pareto, Pattern, WorkloadSpec};

    fn tiny_net() -> SiriusConfig {
        let mut c = SiriusConfig::scaled(16, 4);
        c.servers_per_node = 2;
        c.server_rate = Rate::from_gbps(50);
        c
    }

    fn tiny_workload(net: &SiriusConfig, load: f64, flows: u64, seed: u64) -> Vec<Flow> {
        WorkloadSpec {
            servers: net.total_servers() as u32,
            server_rate: net.server_rate,
            load,
            sizes: Pareto::paper_default().truncated(1e6),
            flows,
            pattern: Pattern::Uniform,
            seed,
        }
        .generate()
    }

    #[test]
    fn all_flows_complete_at_low_load() {
        let net = tiny_net();
        let wl = tiny_workload(&net, 0.2, 300, 7);
        let m = SiriusSim::new(SiriusSimConfig::new(net)).run(&wl);
        assert_eq!(m.incomplete_flows, 0, "flows stuck at low load");
        let expect: u64 = wl.iter().map(|f| f.bytes).sum();
        assert_eq!(m.delivered_bytes, expect, "byte conservation violated");
    }

    #[test]
    fn drain_timeout_terminates_an_overloaded_run() {
        // At twice the offerable load the backlog never drains; the run
        // must still stop `drain_timeout` after the last arrival and
        // report the unfinished flows instead of spinning forever.
        let net = tiny_net();
        let wl = tiny_workload(&net, 2.0, 400, 12);
        let last_arrival = wl.last().unwrap().arrival;
        let mut cfg = SiriusSimConfig::new(net);
        cfg.drain_timeout = Duration::from_us(50);
        let m = SiriusSim::new(cfg).run(&wl);
        assert!(m.incomplete_flows > 0, "overload run completed everything");
        assert!(m.delivered_bytes > 0, "nothing delivered before cutoff");
        // The clock stopped within one epoch of the deadline.
        let deadline = last_arrival + Duration::from_us(50);
        assert!(
            m.span <= deadline.since(Time::ZERO) + Duration::from_us(5),
            "run span {} way past the drain deadline",
            m.span
        );
    }

    #[test]
    fn ideal_mode_also_completes() {
        let net = tiny_net();
        let wl = tiny_workload(&net, 0.2, 300, 8);
        let m = SiriusSim::new(SiriusSimConfig::new(net).with_mode(CcMode::Ideal)).run(&wl);
        assert_eq!(m.incomplete_flows, 0);
    }

    #[test]
    fn ideal_fct_not_worse_than_protocol() {
        // The ideal baseline removes the request/grant latency, so short
        // flows must finish at least as fast (paper: 55-63% faster at low
        // load).
        let net = tiny_net();
        let wl = tiny_workload(&net, 0.1, 400, 9);
        let proto = SiriusSim::new(SiriusSimConfig::new(net.clone())).run(&wl);
        let ideal = SiriusSim::new(SiriusSimConfig::new(net).with_mode(CcMode::Ideal)).run(&wl);
        let fp = proto.fct_mean(100_000).unwrap();
        let fi = ideal.fct_mean(100_000).unwrap();
        // Tiny-scale runs are noisy; the ideal mean must not be
        // meaningfully above the protocol mean.
        assert!(
            fi.as_ps() as f64 <= fp.as_ps() as f64 * 1.10,
            "ideal mean FCT {fi} well above protocol mean {fp}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let net = tiny_net();
        let wl = tiny_workload(&net, 0.3, 200, 11);
        let a = SiriusSim::new(SiriusSimConfig::new(net.clone()).with_seed(5)).run(&wl);
        let b = SiriusSim::new(SiriusSimConfig::new(net).with_seed(5)).run(&wl);
        assert_eq!(a.delivered_bytes, b.delivered_bytes);
        assert_eq!(a.peak_node_fabric_cells, b.peak_node_fabric_cells);
        let fa: Vec<_> = a.flows.iter().map(|f| f.completion).collect();
        let fb: Vec<_> = b.flows.iter().map(|f| f.completion).collect();
        assert_eq!(fa, fb);
    }

    #[test]
    fn relay_queues_bounded_by_q() {
        // The protocol's whole purpose: no relay queue ever exceeds Q.
        // (Enforced by debug_asserts inside CongestionState, exercised here
        // at a bursty load.)
        let net = tiny_net();
        let wl = tiny_workload(&net, 0.9, 1500, 13);
        let m = SiriusSim::new(SiriusSimConfig::new(net.clone())).run(&wl);
        // Peak fabric cells per node is bounded by relay (<= Q per dest) +
        // VOQs; sanity: it stays far below the total cell population.
        assert!(m.peak_node_fabric_cells < 4000);
        assert!(m.delivered_bytes > 0);
    }

    #[test]
    fn intra_rack_flows_bypass_core() {
        let mut net = tiny_net();
        net.servers_per_node = 4;
        let wl = vec![Flow {
            id: 0,
            src_server: 0,
            dst_server: 1, // same node (servers 0..4 on node 0)
            bytes: 10_000,
            arrival: Time::ZERO,
        }];
        let m = SiriusSim::new(SiriusSimConfig::new(net)).run(&wl);
        assert_eq!(m.incomplete_flows, 0);
        // FCT = one server-link serialization: 10 KB at 50 Gbps = 1.6 us.
        let fct = m.flows[0].fct().unwrap();
        assert!(fct < Duration::from_us(2), "intra-rack FCT {fct}");
    }

    #[test]
    fn failed_node_strands_its_flows_only() {
        let net = tiny_net();
        // One flow through every src node to dst node 1.
        let mut wl = Vec::new();
        for (k, s) in (0..16u32).enumerate() {
            if s == 1 {
                continue;
            }
            wl.push(Flow {
                id: k as u64,
                src_server: s * 2,
                dst_server: 2, // node 1
                bytes: 5_000,
                arrival: Time::from_ps(k as u64),
            });
        }
        let mut sim = SiriusSim::new(SiriusSimConfig::new(net));
        // Node 3 dies immediately; flows from server 6 (node 3) strand.
        sim.inject_failures(vec![ScheduledFailure {
            node: NodeId(3),
            epoch: 0,
            detect_epochs: 2,
        }]);
        let m = sim.run(&wl);
        // Some cells may be lost in the detection window if they were
        // relayed via node 3; flows sourced at node 3 definitely strand.
        assert!(m.incomplete_flows >= 1);
        // But the network as a whole keeps delivering.
        assert!(m.completed_flows() >= 10);
    }

    #[test]
    fn fct_grows_with_load() {
        let net = tiny_net();
        let lo = SiriusSim::new(SiriusSimConfig::new(net.clone()))
            .run(&tiny_workload(&net, 0.1, 400, 21));
        let hi = SiriusSim::new(SiriusSimConfig::new(net.clone()))
            .run(&tiny_workload(&net, 0.9, 400, 21));
        let f_lo = lo.fct_percentile(99.0, 100_000).unwrap();
        let f_hi = hi.fct_percentile(99.0, 100_000).unwrap();
        assert!(f_hi >= f_lo, "p99 at high load {f_hi} < low load {f_lo}");
    }
}
