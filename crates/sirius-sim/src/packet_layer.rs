//! Packet-granular workloads over the cell fabric (§2.2).
//!
//! The paper's burstiness argument is about *packets*: "over 34% of the
//! packets comprise less than 128 bytes while 97.8% ... are 576 bytes or
//! less", and an endpoint "sending 576 B packets to different destinations
//! would be ideally served by switching between the destinations every
//! 92 ns". Flow-level metrics hide that; this module adapts a
//! packet-granular workload (packets with sizes from
//! [`sirius_workload::PacketSizes`], high fan-out destinations) onto the
//! flow interface — one "flow" per packet — and reports *packet* latency
//! percentiles, the number an RPC system actually feels.

use crate::metrics::RunMetrics;
use crate::sirius_net::{SiriusSim, SiriusSimConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sirius_core::units::{Duration, Time};
use sirius_workload::{Flow, PacketSizes};

/// A packet-granular workload description.
#[derive(Debug, Clone)]
pub struct PacketWorkload {
    pub servers: u32,
    /// Packet sizes (defaults to the §2.2 production mixture).
    pub sizes: PacketSizes,
    /// Mean packets per second per server.
    pub pkts_per_sec_per_server: f64,
    /// Fan-out: each source cycles destinations drawn from this many
    /// randomly chosen peers ("an endpoint communicating with many
    /// destinations at the same time").
    pub fanout: usize,
    pub packets: u64,
    pub seed: u64,
}

impl PacketWorkload {
    /// Generate the packet list as single-packet flows.
    pub fn generate(&self) -> Vec<Flow> {
        assert!(self.servers >= 2 && self.fanout >= 1);
        let mut rng = SmallRng::seed_from_u64(self.seed);
        // Per-server destination sets.
        let mut dsts: Vec<Vec<u32>> = Vec::with_capacity(self.servers as usize);
        for s in 0..self.servers {
            let mut set = Vec::with_capacity(self.fanout);
            while set.len() < self.fanout {
                let d = rng.gen_range(0..self.servers);
                if d != s && !set.contains(&d) {
                    set.push(d);
                }
            }
            dsts.push(set);
        }
        let total_rate = self.pkts_per_sec_per_server * self.servers as f64;
        let mut t = 0f64;
        let mut out = Vec::with_capacity(self.packets as usize);
        let mut rr = vec![0usize; self.servers as usize];
        for id in 0..self.packets {
            let u: f64 = 1.0 - rng.gen::<f64>();
            t += -u.ln() / total_rate;
            let src = rng.gen_range(0..self.servers);
            // Round-robin over the source's fan-out set: maximal
            // destination churn, the pattern that stresses reconfiguration.
            let k = rr[src as usize];
            rr[src as usize] = (k + 1) % self.fanout;
            out.push(Flow {
                id,
                src_server: src,
                dst_server: dsts[src as usize][k],
                bytes: self.sizes.sample(&mut rng) as u64,
                arrival: Time::from_ps((t * 1e12) as u64),
            });
        }
        out
    }

    /// Offered load in bits/s.
    pub fn offered_bps(&self) -> f64 {
        self.pkts_per_sec_per_server * self.servers as f64 * self.sizes.mean() * 8.0
    }
}

/// Packet-latency percentiles from a run over a packet workload.
#[derive(Debug, Clone, Copy)]
pub struct PacketLatency {
    pub p50: Duration,
    pub p99: Duration,
    pub p999: Duration,
    pub delivered_fraction: f64,
}

/// Run a packet workload through Sirius and summarize packet latency.
pub fn run_packets(cfg: SiriusSimConfig, wl: &PacketWorkload) -> (RunMetrics, PacketLatency) {
    let flows = wl.generate();
    let m = SiriusSim::new(cfg).run(&flows);
    let lat = summarize(&m);
    (m, lat)
}

/// Summarize packet (single-cell-flow) latency from run metrics.
pub fn summarize(m: &RunMetrics) -> PacketLatency {
    let mut fcts: Vec<Duration> = m.flows.iter().filter_map(|f| f.fct()).collect();
    let total = m.flows.len().max(1);
    if fcts.is_empty() {
        return PacketLatency {
            p50: Duration::ZERO,
            p99: Duration::ZERO,
            p999: Duration::ZERO,
            delivered_fraction: 0.0,
        };
    }
    fcts.sort_unstable();
    let pick = |p: f64| fcts[crate::metrics::percentile_index(fcts.len(), p)];
    PacketLatency {
        p50: pick(50.0),
        p99: pick(99.0),
        p999: pick(99.9),
        delivered_fraction: fcts.len() as f64 / total as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sirius_core::units::Rate;
    use sirius_core::SiriusConfig;

    fn net() -> SiriusConfig {
        let mut c = SiriusConfig::scaled(16, 4);
        c.servers_per_node = 2;
        c.server_rate = Rate::from_gbps(100);
        c
    }

    fn wl(pps: f64, packets: u64) -> PacketWorkload {
        PacketWorkload {
            servers: 32,
            sizes: PacketSizes::production_cloud(),
            pkts_per_sec_per_server: pps,
            fanout: 8,
            packets,
            seed: 3,
        }
    }

    #[test]
    fn packet_sizes_match_the_trace_shape() {
        let flows = wl(1e6, 20_000).generate();
        let small = flows.iter().filter(|f| f.bytes < 128).count() as f64;
        let le576 = flows.iter().filter(|f| f.bytes <= 576).count() as f64;
        let n = flows.len() as f64;
        assert!((small / n - 0.34).abs() < 0.02, "{}", small / n);
        assert!((le576 / n - 0.978).abs() < 0.01);
    }

    #[test]
    fn fanout_is_respected() {
        let flows = wl(1e6, 10_000).generate();
        for s in 0..32u32 {
            let mut dsts: Vec<u32> = flows
                .iter()
                .filter(|f| f.src_server == s)
                .map(|f| f.dst_server)
                .collect();
            dsts.sort_unstable();
            dsts.dedup();
            assert!(
                dsts.len() <= 8,
                "server {s} used {} destinations",
                dsts.len()
            );
            assert!(!dsts.contains(&s));
        }
    }

    #[test]
    fn every_packet_fits_one_cell_and_delivers() {
        let w = wl(500_000.0, 5_000);
        let mut cfg = SiriusSimConfig::new(net());
        cfg.drain_timeout = Duration::from_ms(2);
        let (m, lat) = run_packets(cfg, &w);
        assert_eq!(m.incomplete_flows, 0);
        assert!((lat.delivered_fraction - 1.0).abs() < 1e-9);
        // A single-cell packet completes within a handful of epochs.
        assert!(lat.p50 < Duration::from_us(10), "p50 {}", lat.p50);
        assert!(lat.p999 < Duration::from_us(100), "p999 {}", lat.p999);
    }

    #[test]
    fn latency_tail_grows_with_packet_rate() {
        let mut cfg = SiriusSimConfig::new(net());
        cfg.drain_timeout = Duration::from_ms(2);
        let (_, lo) = run_packets(cfg.clone(), &wl(200_000.0, 5_000));
        let (_, hi) = run_packets(cfg, &wl(5_000_000.0, 5_000));
        assert!(hi.p99 >= lo.p99, "hi {} < lo {}", hi.p99, lo.p99);
    }

    #[test]
    fn offered_load_formula() {
        let w = wl(1e6, 1);
        let expect = 1e6 * 32.0 * w.sizes.mean() * 8.0;
        assert!((w.offered_bps() - expect).abs() < 1.0);
    }
}
