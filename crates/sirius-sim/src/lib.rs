//! # sirius-sim
//!
//! Cell-level datacenter network simulator for the Sirius reproduction
//! (§7 of the paper): the slot-synchronous Sirius fabric simulator
//! ([`sirius_net`]), the idealized electrically-switched Clos baselines
//! ([`esn`]), and the flow-level metrics both report ([`metrics`]).
//!
//! The headline comparison of the paper — Figs. 9-13 — is driven entirely
//! through these types by the `sirius-bench` harness:
//!
//! ```
//! use sirius_core::SiriusConfig;
//! use sirius_sim::{CcMode, SiriusSim, SiriusSimConfig};
//! use sirius_workload::{Pareto, Pattern, WorkloadSpec};
//!
//! let mut net = SiriusConfig::scaled(16, 4);
//! net.servers_per_node = 2;
//! let wl = WorkloadSpec {
//!     servers: net.total_servers() as u32,
//!     server_rate: net.server_rate,
//!     load: 0.25,
//!     sizes: Pareto::paper_default().truncated(1e6),
//!     flows: 100,
//!     pattern: Pattern::Uniform,
//!     seed: 1,
//! }
//! .generate();
//! let metrics = SiriusSim::new(SiriusSimConfig::new(net)).run(&wl);
//! assert_eq!(metrics.incomplete_flows, 0);
//! ```

pub mod audit;
pub(crate) mod engine;
pub mod esn;
pub mod faults;
pub mod metrics;
pub mod packet_layer;
pub mod sirius_net;
pub mod telemetry;

pub use audit::{Audit, AuditReport, LossCause, RunDigest};
pub use esn::{EsnConfig, EsnSim};
pub use faults::{cell_drop_probability, FaultEvent, FaultInjector};
pub use metrics::{FailureRecord, FaultReport, FctHistogram, FlowRecord, RunMetrics};
pub use sirius_net::{CcMode, ScheduledFailure, SiriusSim, SiriusSimConfig};
pub use telemetry::{Sample, Telemetry};
