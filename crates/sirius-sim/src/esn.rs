//! ESN (Ideal): the electrically-switched baseline of §7.
//!
//! The paper compares Sirius against an *idealized* three-tier folded Clos:
//! per-flow queues and back-pressure at every switch plus packet spraying
//! over all paths — "an upper bound on the performance achievable by any
//! rate control and routing protocol across an electrically switched
//! network". A non-blocking fabric with those assumptions is behaviourally
//! a max-min fair fluid system whose only capacity constraints are the
//! server NICs (and, for the 3:1 oversubscribed ESN-OSUB variant, each
//! rack's aggregation uplink pool). We therefore simulate it as an
//! event-driven progressive-filling (water-filling) fluid model — this is
//! exact for the idealized baseline, which is the point: it removes "any
//! bias due to the specific shortcomings of existing load-balancing and
//! congestion-control protocols".
//!
//! Per-packet effects Sirius pays for and ESN does not (fixed-size cell
//! padding) are naturally absent here: the fluid model transports exactly
//! `bytes` per flow, which is what Fig. 13 measures.

use crate::audit::{AuditReport, RunDigest, MAX_RECORDED_VIOLATIONS};
use crate::metrics::{FlowRecord, RunMetrics};
use sirius_core::units::{Duration, Rate, Time};
use sirius_workload::Flow;

/// Configuration of the ESN baseline.
#[derive(Debug, Clone)]
pub struct EsnConfig {
    /// Servers in the datacenter.
    pub servers: u32,
    /// Server NIC rate (up and down), `R`.
    pub server_rate: Rate,
    /// Servers per rack (for the oversubscription pool).
    pub servers_per_rack: u32,
    /// Aggregation oversubscription: 1 = non-blocking ESN (Ideal); 3 =
    /// ESN-OSUB (Ideal) with a 3:1 tier beyond the racks.
    pub oversubscription: f64,
    /// Fixed per-flow base latency: store-and-forward over the switch
    /// hierarchy plus propagation. Added to every flow's fluid FCT.
    pub base_latency: Duration,
}

impl EsnConfig {
    /// Paper's §7 setup: 3072 servers, 16.67 Gbps per-server share, 24 per
    /// rack. `oversubscription` selects ESN (1.0) or ESN-OSUB (3.0).
    pub fn paper(oversubscription: f64) -> EsnConfig {
        EsnConfig {
            servers: 3072,
            server_rate: Rate::from_bps(400_000_000_000 / 24),
            servers_per_rack: 24,
            oversubscription,
            // ~6 store-and-forward hops of a 576 B packet at 400 Gbps plus
            // intra-DC propagation: a few microseconds.
            base_latency: Duration::from_us(3),
        }
    }

    fn racks(&self) -> u32 {
        self.servers.div_ceil(self.servers_per_rack)
    }

    /// Inter-rack capacity pool per rack (bits/s); `f64::INFINITY` when
    /// non-blocking.
    fn rack_pool_bps(&self) -> f64 {
        if self.oversubscription <= 1.0 {
            f64::INFINITY
        } else {
            self.servers_per_rack as f64 * self.server_rate.as_bps() as f64 / self.oversubscription
        }
    }
}

#[derive(Debug, Clone)]
struct ActiveFlow {
    id: u32,
    src: u32,
    dst: u32,
    remaining_bits: f64,
    rate_bps: f64,
    bytes: u64,
}

/// Event-driven max-min fluid simulator for the ESN baselines.
pub struct EsnSim {
    cfg: EsnConfig,
    audit: bool,
}

/// Relative tolerance for the fluid-model capacity checks (water-filling
/// is exact rational arithmetic done in f64; violations beyond this are
/// algorithmic, not rounding).
const ESN_AUDIT_EPS: f64 = 1e-6;

impl EsnSim {
    pub fn new(cfg: EsnConfig) -> EsnSim {
        EsnSim { cfg, audit: false }
    }

    /// Enable the fluid-model invariant audit: after every rate
    /// recomputation the allocation is re-checked from first principles
    /// (capacity feasibility at every NIC and rack pool, non-negative
    /// rates, and max-min bottleneck maximality), and at the end of the
    /// run byte conservation is verified. Mirrors `SiriusSimConfig::
    /// with_audit` for the cell simulator.
    pub fn with_audit(mut self, audit: bool) -> EsnSim {
        self.audit = audit;
        self
    }

    /// Run the workload; returns the same metrics shape as the Sirius
    /// simulator (queue/reorder peaks are zero — the idealized fluid
    /// model has no cell queues).
    pub fn run(&self, workload: &[Flow]) -> RunMetrics {
        let wall_start = std::time::Instant::now();
        let mut active: Vec<ActiveFlow> = Vec::new();
        let mut records: Vec<FlowRecord> = workload
            .iter()
            .map(|f| FlowRecord {
                bytes: f.bytes,
                arrival: f.arrival,
                completion: None,
                delivered: 0,
            })
            .collect();
        let mut delivered = 0u64;
        let mut last_delivery = Time::ZERO;

        let mut next = 0usize;
        let mut now = Time::ZERO;
        let mut events_since_fill = 0usize;
        let mut audit_checks = 0u64;
        let mut audit_violations = 0u64;
        let mut audit_messages: Vec<String> = Vec::new();
        // Event loop: next event is either the next arrival or the earliest
        // completion under current rates.
        loop {
            // Earliest completion among active flows.
            let completion: Option<(f64, usize)> = active
                .iter()
                .enumerate()
                .filter(|(_, f)| f.rate_bps > 0.0)
                .map(|(i, f)| (f.remaining_bits / f.rate_bps, i))
                .min_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            let next_arrival = workload.get(next).map(|f| f.arrival);

            let advance_to: Time;
            let mut arriving = false;
            match (completion, next_arrival) {
                (None, None) => {
                    // No rated flow and no arrival left — but flows that
                    // arrived since the last (amortized) recompute may
                    // still be waiting for a rate.
                    if active.is_empty() {
                        break;
                    }
                    self.waterfill(&mut active);
                    if self.audit {
                        audit_checks += 1;
                        self.audit_rates(&active, &mut audit_violations, &mut audit_messages);
                    }
                    events_since_fill = 0;
                    continue;
                }
                (Some((dt, _)), None) => {
                    advance_to = now + Duration::from_ps((dt * 1e12).ceil() as u64);
                }
                (None, Some(a)) => {
                    advance_to = a;
                    arriving = true;
                }
                (Some((dt, _)), Some(a)) => {
                    let c = now + Duration::from_ps((dt * 1e12).ceil() as u64);
                    if a <= c {
                        advance_to = a;
                        arriving = true;
                    } else {
                        advance_to = c;
                    }
                }
            }

            // Drain transferred bits up to `advance_to`.
            let dt_secs = advance_to.since(now).as_secs_f64();
            for f in &mut active {
                f.remaining_bits = (f.remaining_bits - f.rate_bps * dt_secs).max(0.0);
            }
            now = advance_to;

            if arriving {
                let f = &workload[next];
                active.push(ActiveFlow {
                    id: f.id as u32,
                    src: f.src_server,
                    dst: f.dst_server,
                    remaining_bits: f.bytes as f64 * 8.0,
                    rate_bps: 0.0,
                    bytes: f.bytes,
                });
                next += 1;
            }

            // Complete flows that have drained (within float tolerance).
            let mut i = 0;
            while i < active.len() {
                if active[i].remaining_bits <= 1e-6 {
                    let f = active.swap_remove(i);
                    let done = now + self.cfg.base_latency;
                    records[f.id as usize].completion = Some(done);
                    records[f.id as usize].delivered = f.bytes;
                    delivered += f.bytes;
                    last_delivery = last_delivery.max(done);
                } else {
                    i += 1;
                }
            }

            // Recompute max-min fair rates. Water-filling is the hot path
            // (O(active) per round); with a large active set we amortize:
            // exact below 64 active flows (the unit-test regime), otherwise
            // every ~active/64 events. Fair shares drift negligibly over
            // such a window when thousands of flows are active, and a
            // freshly arrived flow waits at most one window for its rate.
            events_since_fill += 1;
            let budget = (active.len() / 64).max(1);
            if active.len() <= 64 || events_since_fill >= budget {
                self.waterfill(&mut active);
                if self.audit {
                    audit_checks += 1;
                    self.audit_rates(&active, &mut audit_violations, &mut audit_messages);
                }
                events_since_fill = 0;
            }
        }

        let incomplete = records.iter().filter(|f| f.completion.is_none()).count() as u64;
        if self.audit {
            // Byte conservation: the fluid model has no loss channel, so
            // everything injected must come out, flow by flow.
            let injected: u64 = workload.iter().map(|f| f.bytes).sum();
            if delivered != injected || incomplete != 0 {
                audit_violations += 1;
                if audit_messages.len() < MAX_RECORDED_VIOLATIONS {
                    audit_messages.push(format!(
                        "fluid conservation broken: injected {injected} B, delivered \
                         {delivered} B, {incomplete} flows incomplete"
                    ));
                }
            }
        }
        let span = if last_delivery > Time::ZERO {
            last_delivery.since(Time::ZERO)
        } else {
            now.since(Time::ZERO)
        };
        // The fluid model has no cell stream; digest the flow outcomes so
        // ESN runs get the same determinism guarantee as the cell sim.
        let mut digest = RunDigest::new();
        digest.update(delivered);
        digest.update(span.as_ps());
        for r in &records {
            digest.update(r.delivered);
            digest.update(
                r.completion
                    .map(|c| c.since(Time::ZERO).as_ps())
                    .unwrap_or(u64::MAX),
            );
        }
        RunMetrics {
            flows: records,
            delivered_bytes: delivered,
            span,
            peak_node_fabric_cells: 0,
            peak_node_local_cells: 0,
            peak_reorder_flow_bytes: 0,
            // The fluid model holds every flow's state for the whole run.
            resident_flows_max: workload.len() as u64,
            cell_bytes: 0,
            incomplete_flows: incomplete,
            cc: Default::default(),
            digest: digest.value(),
            audit: if self.audit {
                Some(AuditReport {
                    epochs_checked: audit_checks,
                    cells_injected: workload.len() as u64,
                    cells_released: workload.len() as u64 - incomplete,
                    total_violations: audit_violations,
                    violations: audit_messages,
                    ..AuditReport::default()
                })
            } else {
                None
            },
            fault: None,
            wall_secs: wall_start.elapsed().as_secs_f64(),
            // The fluid model has no cell stream or slot clock.
            cells_delivered: 0,
            epochs_simulated: 0,
            tx_secs: 0.0,
            deliver_secs: 0.0,
            merge_secs: 0.0,
            // Every record is kept, so exact percentiles want `flows`.
            fct_hist: None,
        }
    }

    /// Re-check a freshly computed rate allocation from first principles,
    /// independently of the water-filling bookkeeping: rates are
    /// non-negative, no NIC or rack pool is oversubscribed, and the
    /// allocation is max-min maximal (every flow is pinned by at least one
    /// saturated resource — otherwise water-filling stopped early and the
    /// "upper bound on any protocol" claim is void).
    fn audit_rates(&self, active: &[ActiveFlow], violations: &mut u64, messages: &mut Vec<String>) {
        let n_servers = self.cfg.servers as usize;
        let racks = self.cfg.racks() as usize;
        let spr = self.cfg.servers_per_rack;
        let r = self.cfg.server_rate.as_bps() as f64;
        let pool = self.cfg.rack_pool_bps();
        let rack_of = |s: u32| (s / spr) as usize;

        let mut flag = |msg: String| {
            *violations += 1;
            if messages.len() < MAX_RECORDED_VIOLATIONS {
                messages.push(msg);
            }
        };

        let mut used = vec![0f64; 2 * n_servers + racks];
        for f in active {
            if f.rate_bps < 0.0 {
                flag(format!("flow {}: negative rate {}", f.id, f.rate_bps));
            }
            used[f.src as usize] += f.rate_bps;
            used[n_servers + f.dst as usize] += f.rate_bps;
            if pool.is_finite() && rack_of(f.src) != rack_of(f.dst) {
                used[2 * n_servers + rack_of(f.src)] += f.rate_bps;
            }
        }
        let tol = r * ESN_AUDIT_EPS;
        for s in 0..n_servers {
            if used[s] > r + tol {
                flag(format!(
                    "server {s} uplink oversubscribed: {} > {r}",
                    used[s]
                ));
            }
            if used[n_servers + s] > r + tol {
                flag(format!(
                    "server {s} downlink oversubscribed: {} > {r}",
                    used[n_servers + s]
                ));
            }
        }
        if pool.is_finite() {
            for k in 0..racks {
                let u = used[2 * n_servers + k];
                if u > pool + pool * ESN_AUDIT_EPS {
                    flag(format!("rack {k} pool oversubscribed: {u} > {pool}"));
                }
            }
        }
        // Max-min maximality: a flow whose every resource has slack could
        // be sped up, so the allocation is not max-min fair.
        for f in active {
            let up_slack = r - used[f.src as usize] > tol;
            let down_slack = r - used[n_servers + f.dst as usize] > tol;
            let pool_slack = if pool.is_finite() && rack_of(f.src) != rack_of(f.dst) {
                pool - used[2 * n_servers + rack_of(f.src)] > pool * ESN_AUDIT_EPS
            } else {
                true
            };
            if up_slack && down_slack && pool_slack {
                flag(format!(
                    "flow {}: not bottlenecked (rate {} bps, all resources slack)",
                    f.id, f.rate_bps
                ));
            }
        }
    }

    /// Progressive filling over three resource families: server uplinks,
    /// server downlinks, and (if oversubscribed) per-rack inter-rack pools.
    fn waterfill(&self, active: &mut [ActiveFlow]) {
        let n_servers = self.cfg.servers as usize;
        let racks = self.cfg.racks() as usize;
        let spr = self.cfg.servers_per_rack;
        let r = self.cfg.server_rate.as_bps() as f64;
        let pool = self.cfg.rack_pool_bps();

        // Residual capacity and unfrozen-flow count per resource.
        // Resources: [0, n) = uplinks, [n, 2n) = downlinks,
        // [2n, 2n+racks) = rack pools (inter-rack flows only).
        let nres = 2 * n_servers + racks;
        let mut cap = vec![0f64; nres];
        let mut cnt = vec![0u32; nres];
        for s in 0..n_servers {
            cap[s] = r;
            cap[n_servers + s] = r;
        }
        for k in 0..racks {
            cap[2 * n_servers + k] = pool;
        }

        // Which resources each flow uses.
        let rack_of = |s: u32| (s / spr) as usize;
        let uses = |f: &ActiveFlow| -> ([usize; 3], usize) {
            let up = f.src as usize;
            let down = n_servers + f.dst as usize;
            if pool.is_finite() && rack_of(f.src) != rack_of(f.dst) {
                // Inter-rack flows consume the source rack's uplink pool
                // (the constrained direction in a 3:1 aggregation tier).
                ([up, down, 2 * n_servers + rack_of(f.src)], 3)
            } else {
                ([up, down, 0], 2)
            }
        };

        // Only resources actually crossed by an active flow can be
        // bottlenecks; scan that sparse set instead of all `nres`.
        let mut in_use: Vec<usize> = Vec::with_capacity(3 * active.len());
        for f in active.iter() {
            let (rs, k) = uses(f);
            for &res in &rs[..k] {
                if cnt[res] == 0 {
                    in_use.push(res);
                }
                cnt[res] += 1;
            }
        }

        let mut frozen = vec![false; active.len()];
        let mut rates = vec![0f64; active.len()];
        let mut remaining = active.len();
        while remaining > 0 {
            // Bottleneck: resource with the smallest fair share.
            let mut best_share = f64::INFINITY;
            let mut best_res = usize::MAX;
            for &res in &in_use {
                if cnt[res] > 0 {
                    let share = cap[res] / cnt[res] as f64;
                    if share < best_share {
                        best_share = share;
                        best_res = res;
                    }
                }
            }
            if best_res == usize::MAX {
                break;
            }
            // Freeze all unfrozen flows crossing the bottleneck at the
            // bottleneck share.
            let mut froze_any = false;
            for (i, f) in active.iter().enumerate() {
                if frozen[i] {
                    continue;
                }
                let (rs, k) = uses(f);
                if rs[..k].contains(&best_res) {
                    frozen[i] = true;
                    rates[i] = best_share;
                    remaining -= 1;
                    froze_any = true;
                    for &res in &rs[..k] {
                        cap[res] -= best_share;
                        cnt[res] -= 1;
                    }
                }
            }
            if !froze_any {
                // Bottleneck had capacity but no unfrozen flows (shouldn't
                // happen since cnt counts unfrozen only).
                break;
            }
        }
        for (f, &rate) in active.iter_mut().zip(rates.iter()) {
            f.rate_bps = rate;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sirius_workload::{Pareto, Pattern, WorkloadSpec};

    fn cfg(osub: f64) -> EsnConfig {
        EsnConfig {
            servers: 64,
            server_rate: Rate::from_gbps(10),
            servers_per_rack: 8,
            oversubscription: osub,
            base_latency: Duration::from_us(3),
        }
    }

    fn workload(load: f64, flows: u64, seed: u64) -> Vec<Flow> {
        WorkloadSpec {
            servers: 64,
            server_rate: Rate::from_gbps(10),
            load,
            sizes: Pareto::paper_default().truncated(1e6),
            flows,
            pattern: Pattern::Uniform,
            seed,
        }
        .generate()
    }

    #[test]
    fn single_flow_runs_at_nic_rate() {
        let wl = vec![Flow {
            id: 0,
            src_server: 0,
            dst_server: 9,
            bytes: 1_250_000, // 10 Mbit at 10 Gbps = 1 ms
            arrival: Time::ZERO,
        }];
        let m = EsnSim::new(cfg(1.0)).run(&wl);
        let fct = m.flows[0].fct().unwrap();
        let expect = Duration::from_ms(1) + Duration::from_us(3);
        let err = (fct.as_ps() as f64 - expect.as_ps() as f64).abs() / expect.as_ps() as f64;
        assert!(err < 0.001, "fct = {fct}, expected {expect}");
    }

    #[test]
    fn two_flows_share_a_downlink() {
        // Both flows target server 9: each gets 5 Gbps.
        let wl = vec![
            Flow {
                id: 0,
                src_server: 0,
                dst_server: 9,
                bytes: 1_250_000,
                arrival: Time::ZERO,
            },
            Flow {
                id: 1,
                src_server: 1,
                dst_server: 9,
                bytes: 1_250_000,
                arrival: Time::ZERO,
            },
        ];
        let m = EsnSim::new(cfg(1.0)).run(&wl);
        for f in &m.flows {
            let fct = f.fct().unwrap();
            let expect = Duration::from_ms(2) + Duration::from_us(3);
            let err = (fct.as_ps() as f64 - expect.as_ps() as f64).abs() / expect.as_ps() as f64;
            assert!(err < 0.001, "fct = {fct}");
        }
    }

    #[test]
    fn oversubscription_throttles_inter_rack_only() {
        // 8 servers/rack at 10 Gbps, 3:1 -> 26.67 Gbps pool per rack.
        // 4 inter-rack flows from rack 0 share it: 6.67 Gbps each.
        let wl: Vec<Flow> = (0..4)
            .map(|k| Flow {
                id: k,
                src_server: k as u32,
                dst_server: 8 + k as u32 * 8 % 56, // distinct racks
                bytes: 1_250_000,
                arrival: Time::ZERO,
            })
            .collect();
        let m = EsnSim::new(cfg(3.0)).run(&wl);
        for f in &m.flows {
            let fct = f.fct().unwrap().as_ms_f64();
            assert!((fct - 1.5).abs() < 0.01, "fct = {fct} ms, expected 1.5 ms");
        }
        // Intra-rack flow is unaffected by the pool.
        let wl = vec![Flow {
            id: 0,
            src_server: 0,
            dst_server: 1,
            bytes: 1_250_000,
            arrival: Time::ZERO,
        }];
        let m = EsnSim::new(cfg(3.0)).run(&wl);
        assert!((m.flows[0].fct().unwrap().as_ms_f64() - 1.003).abs() < 0.01);
    }

    #[test]
    fn all_flows_complete_and_bytes_conserved() {
        let wl = workload(0.5, 2000, 3);
        let m = EsnSim::new(cfg(1.0)).run(&wl);
        assert_eq!(m.incomplete_flows, 0);
        assert_eq!(m.delivered_bytes, wl.iter().map(|f| f.bytes).sum::<u64>());
    }

    #[test]
    fn osub_goodput_lower_at_high_load() {
        let wl = workload(1.0, 3000, 5);
        let ideal = EsnSim::new(cfg(1.0)).run(&wl);
        let osub = EsnSim::new(cfg(3.0)).run(&wl);
        let g_ideal = ideal.normalized_goodput(64, Rate::from_gbps(10));
        let g_osub = osub.normalized_goodput(64, Rate::from_gbps(10));
        assert!(
            g_osub < g_ideal,
            "osub {g_osub} should be below ideal {g_ideal}"
        );
    }

    #[test]
    fn fct_monotone_in_load() {
        let lo = EsnSim::new(cfg(1.0)).run(&workload(0.1, 2000, 7));
        let hi = EsnSim::new(cfg(1.0)).run(&workload(1.0, 2000, 7));
        let f_lo = lo.fct_percentile(99.0, 100_000).unwrap();
        let f_hi = hi.fct_percentile(99.0, 100_000).unwrap();
        assert!(f_hi >= f_lo);
    }

    #[test]
    fn audit_is_clean_for_both_esn_variants() {
        let wl = workload(0.8, 1500, 11);
        for osub in [1.0, 3.0] {
            let m = EsnSim::new(cfg(osub)).with_audit(true).run(&wl);
            let a = m.audit.expect("audit report");
            assert!(a.is_clean(), "osub {osub}: {:?}", a.violations);
            assert!(a.epochs_checked > 0);
            assert_eq!(a.cells_released, wl.len() as u64);
        }
    }

    #[test]
    fn max_min_is_work_conserving_for_symmetric_pairs() {
        // A permutation workload at moderate size: every flow should get
        // the full NIC rate (no shared bottlenecks).
        let wl: Vec<Flow> = (0..8)
            .map(|k| Flow {
                id: k,
                src_server: k as u32,
                dst_server: 32 + k as u32,
                bytes: 125_000,
                arrival: Time::ZERO,
            })
            .collect();
        let m = EsnSim::new(cfg(1.0)).run(&wl);
        for f in &m.flows {
            let fct = f.fct().unwrap().as_us_f64();
            assert!((fct - 103.0).abs() < 1.0, "fct = {fct} us");
        }
    }
}
