//! Sharded slot engine: the TX *and deliver* phases of every slot fanned
//! across one worker pool, with the merge order pinned so the run is
//! byte-identical to serial.
//!
//! Nodes are partitioned into `shards` contiguous ranges. Each slot the
//! generation barrier fires twice over the same pool:
//!
//! 1. **Deliver phase** — the due ring slot is partitioned by
//!    *receiver*: each worker scans the full due list in index order and
//!    processes the arrivals landing in its node range (reorder buffers,
//!    flow/FCT state and the Byzantine RX filter are all
//!    receiver-local; see [`crate::engine::deliver::deliver_range`]).
//!    The one globally ordered artifact — the FNV digest over the
//!    delivered-cell sequence, plus the streaming eviction replay that
//!    shares its ordering — is deferred: workers emit
//!    `(due index, cell, completed)` records and the main thread k-way
//!    merges them by due index in a serial epilogue, folding exactly the
//!    serial sequence. Empty due slots (warmup, idle tails) skip the
//!    phase entirely.
//! 2. **TX phase** — as before: per-(node, uplink) transmit over the
//!    shard's node range, outputs merged in shard order.
//!
//! The main thread runs the serial prologue (epoch/fault boundaries, the
//! mistune pre-pass), publishes each phase to the workers, runs shard 0
//! itself, waits on the barrier, and applies the per-shard outputs in
//! the pinned order — so the DeliverPlane ring, the reorder buffers, the
//! FNV digest and the fault ledger all see exactly the sequence a serial
//! run produces. Golden digests pass unblessed by construction:
//!
//! * The per-(node, uplink) transmit work is node-local: `transmit`
//!   touches only the sending node's queues/arena/CC counters, and the
//!   inputs it reads concurrently ([`DestTable`], the repair overlays,
//!   the failure plane, the per-epoch fault snapshot) are frozen for the
//!   duration of the slot.
//! * Both the serial engine and the shard workers call the *same*
//!   range-parameterized TX functions ([`tx_clean_range`],
//!   [`tx_faulty_range`]), so per-node decisions cannot diverge between
//!   `--shards 1` and `--shards N`.
//! * Grey-erasure draws come from per-node RNG streams
//!   ([`crate::faults::FaultInjector::node_streams`]): a node's draw
//!   sequence depends only on its own scheduled slots, never on which
//!   shard it landed in.
//! * Cross-shard effects (detector credit is receiver-indexed, loss
//!   counters are global) are buffered per shard in [`ShardOut`] and
//!   applied on the main thread at merge, in shard order — equivalent to
//!   the serial interleaving because detector state is only *read* at
//!   epoch boundaries, which never overlap the TX phase.
//!
//! The barrier is a per-slot generation gate: per-*epoch* batching is
//! not an option for exactness, because a cell launched at slot `s` is
//! delivered at `s + prop_slots`, which lands inside the same epoch
//! whenever propagation is shorter than an epoch (it always is at paper
//! scale) — the TX of one slot feeds the serial deliver phase of a later
//! slot in the same epoch. DESIGN.md decision #10 records the measured
//! per-slot cost.
//!
//! Ideal mode cannot shard (its zero-latency back-pressure reads and
//! writes one shared occupancy array sequentially *within* a slot by
//! design) and audit-enabled runs stay serial (the audit is a debug
//! facility whose observation order is the serial one); both fall back
//! to [`SiriusSim::run_loop`], where sharded-vs-serial digest equality
//! is trivial.

use crate::engine::deliver::{deliver_range, DeliverCtx, DeliverOut, FlowSlots};
use crate::engine::observer::NullObserver;
use crate::engine::{lap, mark, DestTable, FaultPlane};
use crate::sirius_net::{CcMode, FlowSource, SiriusSim};
use rand::rngs::SmallRng;
use rand::Rng;
use sirius_core::cell::Cell;
use sirius_core::fault::FailurePlane;
use sirius_core::node::{SiriusNode, SlotTx};
use sirius_core::reorder::ReorderBuffer;
use sirius_core::repair::AdjustedSchedule;
use sirius_core::schedule::SlotInEpoch;
use sirius_core::topology::{NodeId, UplinkId};
use sirius_core::units::Time;
use std::cell::UnsafeCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};

/// Default shard count when [`crate::SiriusSimConfig::with_shards`] is
/// not called: `SIRIUS_SHARDS` if set to an integer ≥ 1, else 1 (serial).
/// The parse is cached and a malformed value warns exactly once per
/// process (same contract as `SIRIUS_JOBS` in the bench harness).
pub(crate) fn env_default_shards() -> usize {
    static CACHE: OnceLock<usize> = OnceLock::new();
    *CACHE.get_or_init(|| match std::env::var("SIRIUS_SHARDS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => {
                eprintln!("warning: ignoring SIRIUS_SHARDS={v:?} (want an integer >= 1)");
                1
            }
        },
        Err(_) => 1,
    })
}

/// One shard's buffered slot output: ring pushes in node order, plus the
/// cross-shard effects (receiver-indexed detector credit, global loss
/// counters) that the main thread applies at merge. Buffers keep their
/// capacity across slots.
#[derive(Debug, Default)]
pub(crate) struct ShardOut {
    /// Cells launched this slot, in (node, uplink) order. The RX uplink
    /// rides along so the delivery side can name the slot's scheduled
    /// transmitter (Byzantine attribution).
    pub ring: Vec<(NodeId, u16, Cell)>,
    /// Detector credit: (sender, uplink, receiver), in (node, uplink)
    /// order. `arrival_epoch` is slot-wide, so it is not stored per entry.
    pub credits: Vec<(NodeId, u16, NodeId)>,
    pub lost_grey: u64,
    pub lost_mistune: u64,
    /// Counterfeit cells launched by Byzantine nodes this slot.
    pub forged_tx: u64,
}

impl ShardOut {
    fn clear(&mut self) {
        self.ring.clear();
        self.credits.clear();
        self.lost_grey = 0;
        self.lost_mistune = 0;
        self.forged_tx = 0;
    }
}

/// Fabricate one counterfeit cell from a Byzantine node `ni` whose slot
/// (RX port of `j`) would otherwise idle. Two lies, chosen per forgery
/// from the node's own stream:
///
/// * **Header forgery** — a fabricated origin, addressed to the slot's
///   scheduled destination (framing another node as the sender).
/// * **Stale-grant replay** — the node's own origin but a stale
///   destination, replaying a long-consumed reservation.
///
/// Every counterfeit carries an out-of-range `FlowId`: the liar does not
/// know the receivers' flow tables, which is exactly why the RX-side
/// header validation is sound.
pub(crate) fn forge_cell(rng: &mut SmallRng, ni: NodeId, j: NodeId, n: usize) -> Cell {
    let kind = rng.gen_range(0..2u8);
    let (src, dst) = if kind == 0 {
        (NodeId(rng.gen_range(0..n as u32)), j)
    } else {
        (ni, NodeId(rng.gen_range(0..n as u32)))
    };
    Cell {
        flow: sirius_core::cell::FlowId(u64::MAX),
        seq: 0,
        payload: 0,
        src,
        dst,
        dst_server: sirius_core::topology::ServerId(0),
        last: false,
    }
}

/// Fault-free TX for `nodes` = the global range `[first, first + len)`,
/// shared by the serial engine (full range) and every shard worker
/// (its range). Protocol keeps its occupancy-mask fast path; Greedy is
/// the generic idle-skip loop. Ideal is not rangeable (shared
/// back-pressure state) and never reaches here.
pub(crate) fn tx_clean_range(
    mode: CcMode,
    nodes: &mut [SiriusNode],
    first: usize,
    tables: &DestTable,
    t: SlotInEpoch,
    out: &mut Vec<(NodeId, u16, Cell)>,
) {
    debug_assert_ne!(mode, CcMode::Ideal, "ideal mode is not shardable");
    let uplinks = tables.uplinks();
    let view = tables.slot_view(t);
    match mode {
        CcMode::Protocol => {
            // The protocol only ever sends fabric (relay + VOQ) cells, so
            // a node's per-peer occupancy bitmask ANDed with the slot's
            // scheduled-peer mask (dense table form) decides in a couple
            // of word ops whether any of its uplinks can fire — and per
            // surviving uplink, one bit test replaces the two deque
            // probes. The compressed (cyclic) form has no per-slot mask;
            // there the skip is occupancy-only (an entirely-empty fabric
            // idles every uplink) and the per-uplink bit test filters the
            // rest. Either way, skipped `transmit` calls would have
            // returned `Idle` without touching state, so the decision
            // sequence — and the digest — is representation-independent.
            for (li, node) in nodes.iter_mut().enumerate() {
                let fm = node.fabric_mask();
                let idle = match tables.peer_mask(t, first + li) {
                    Some(pm) => {
                        let mut any = 0u64;
                        for (f, p) in fm.iter().zip(pm) {
                            any |= f & p;
                        }
                        any == 0
                    }
                    None => fm.iter().all(|&w| w == 0),
                };
                if idle {
                    continue;
                }
                let row = view.node(first + li);
                for u in 0..uplinks {
                    let j = row.at(u);
                    if !node.fabric_nonempty(j) {
                        continue;
                    }
                    let tx = node.transmit(j);
                    if let SlotTx::Relay(c) | SlotTx::ToIntermediate(c) = tx {
                        out.push((j, u as u16, c));
                    }
                }
            }
        }
        CcMode::Greedy | CcMode::Ideal => {
            for (li, node) in nodes.iter_mut().enumerate() {
                // A node with nothing resident returns Idle on every
                // uplink; skip the per-uplink probes.
                if node.resident_cells() == 0 {
                    continue;
                }
                let row = view.node(first + li);
                for u in 0..uplinks {
                    let j = row.at(u);
                    // No back-pressure: any cell may detour via j.
                    let tx = node.ideal_transmit(j, |_| true);
                    if let SlotTx::Relay(c) | SlotTx::ToIntermediate(c) = tx {
                        out.push((j, u as u16, c));
                    }
                }
            }
        }
    }
}

/// Fully-armed (fault-script) TX for the global range
/// `[first, first + len)`: mistune corruption, grey-erasure draws from
/// the per-node RNG streams, buffered detector credit, dead-slot
/// (omission) checks and buffered loss attribution. Shared by the serial
/// engine and every shard worker; non-Ideal modes only (the ideal-mode
/// shadow occupancy, including its lost-launch undo, is shared state).
#[allow(clippy::too_many_arguments)]
pub(crate) fn tx_faulty_range(
    mode: CcMode,
    nodes: &mut [SiriusNode],
    rngs: &mut [SmallRng],
    first: usize,
    tables: &DestTable,
    sched: &AdjustedSchedule,
    failures: &FailurePlane,
    faults: &FaultPlane,
    t: SlotInEpoch,
    out: &mut ShardOut,
) {
    debug_assert_ne!(mode, CcMode::Ideal, "ideal mode is not shardable");
    debug_assert_eq!(nodes.len(), rngs.len());
    let uplinks = tables.uplinks();
    let view = tables.slot_view(t);
    let any_grey = faults.active.any_grey();
    for (li, node) in nodes.iter_mut().enumerate() {
        let ni = NodeId((first + li) as u32);
        if failures.is_failed(ni) {
            continue; // fail-stop: no data, no keepalive carrier
        }
        let mistuned = faults.active.mistune_of(ni).is_some();
        let row = view.node(first + li);
        for u in 0..uplinks as u16 {
            let j = row.at(u as usize);
            // One erasure draw per scheduled slot on a grey link (never
            // per cell), from the sender's own stream — fault scripts
            // leave the protocol RNG untouched, and the draw sequence is
            // independent of the shard partition.
            let grey_p = faults.active.grey_prob(ni, u, uplinks);
            let erased = any_grey && grey_p > 0.0 && rngs[li].gen_bool(grey_p);
            let corrupted_by = faults.corrupted_by(j, u);
            // §4.5 detection feeds on the carrier itself: any well-tuned,
            // non-erased transmission — idle keepalives included — counts
            // as "heard". Receiver-indexed, so buffered for the merge.
            if !mistuned && !erased && corrupted_by.is_none() && !failures.is_failed(j) {
                out.credits.push((ni, u, j));
            }
            if sched.is_omitted(ni)
                || sched.is_omitted(j)
                || sched.is_column_omitted(ni, UplinkId(u))
            {
                continue; // dead slot: keepalive carrier only
            }
            let tx = match mode {
                CcMode::Protocol => node.transmit(j),
                CcMode::Greedy | CcMode::Ideal => node.ideal_transmit(j, |_| true),
            };
            match tx {
                SlotTx::Relay(c) | SlotTx::ToIntermediate(c) => {
                    if mistuned {
                        out.lost_mistune += 1;
                    } else if erased {
                        out.lost_grey += 1;
                    } else if corrupted_by.is_some() {
                        out.lost_mistune += 1;
                    } else {
                        out.ring.push((j, u, c));
                    }
                }
                SlotTx::Idle => {
                    // A Byzantine node fills its own idle slots with
                    // counterfeits. The draw rides the same per-node
                    // stream as grey erasure (grey draw first, then the
                    // forge draws), so the sequence is independent of the
                    // shard partition. A mistuned/erased/corrupted slot
                    // would destroy the counterfeit anyway — skip the
                    // draw entirely to keep streams cheap and aligned.
                    let byz_p = faults.active.byz_prob(ni);
                    if byz_p > 0.0
                        && !mistuned
                        && !erased
                        && corrupted_by.is_none()
                        && rngs[li].gen_bool(byz_p)
                    {
                        let c = forge_cell(&mut rngs[li], ni, j, tables.nodes());
                        out.forged_tx += 1;
                        out.ring.push((j, u, c));
                    }
                }
            }
        }
    }
}

/// Which phase of the slot a published generation runs (one generation
/// = one phase for one slot; the barrier fires once per phase).
#[derive(Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Per-(node, uplink) transmit over the shard's node range.
    Tx,
    /// Receiver-partitioned arrival processing over the published due
    /// list.
    Deliver,
    /// Park the workers out: the run is over.
    Stop,
}

/// The slot parameters the main thread publishes to the workers each
/// generation. Pointers are re-derived fresh from the simulator's own
/// `&mut` borrows every slot (never cached across the barrier), so the
/// workers' raw accesses are always rooted in a live borrow. The
/// TX-phase fields and the deliver-phase fields are both always present;
/// each phase reads only its own.
struct SlotParams {
    phase: Phase,
    nodes: *mut SiriusNode,
    rngs: *mut SmallRng,
    tables: *const DestTable,
    sched: *const AdjustedSchedule,
    failures: *const FailurePlane,
    faults: *const FaultPlane,
    t: u16,
    faulty: bool,
    // Deliver-phase inputs (see `run_shard_deliver`).
    due: *const (NodeId, u16, Cell),
    due_len: usize,
    reorder: *mut ReorderBuffer,
    flows: FlowSlots,
    spn: u32,
    now_ps: u64,
    epoch: u64,
    launch_t: u16,
}

impl SlotParams {
    const fn idle() -> SlotParams {
        SlotParams {
            phase: Phase::Tx,
            nodes: std::ptr::null_mut(),
            rngs: std::ptr::null_mut(),
            tables: std::ptr::null(),
            sched: std::ptr::null(),
            failures: std::ptr::null(),
            faults: std::ptr::null(),
            t: 0,
            faulty: false,
            due: std::ptr::null(),
            due_len: 0,
            reorder: std::ptr::null_mut(),
            flows: FlowSlots::empty(),
            spn: 0,
            now_ps: 0,
            epoch: 0,
            launch_t: 0,
        }
    }
}

/// Shared coordination state for one sharded run: a sense-free
/// generation barrier (`go` counts released slots, `done` counts
/// completed shard-slots) plus the published [`SlotParams`] and the
/// per-shard output buffers.
///
/// # Safety argument
///
/// All unsynchronized data (`params`, `outs`) is written by exactly one
/// side of the barrier at a time:
///
/// * Main writes `params` and then `go.store(g, Release)`; a worker
///   reads `params` only after `go.load(Acquire) >= g` — the release
///   store happens-before the acquire load, so the params (and
///   everything the pointers target) are visible.
/// * Worker `s` writes `outs[s]` and its node/RNG range, then
///   `done.fetch_add(1, Release)`; main reads them only after
///   `done.load(Acquire)` reaches the generation's target — again
///   happens-before. Between those two fences, main touches only shard
///   0's range (through the same published base pointers) and state no
///   worker reads mutably.
/// * Node ranges are disjoint by construction, and every shared
///   `*const` target (`tables`, `sched`, `failures`, `faults`) is
///   mutated by main strictly outside the `go`..`done` window.
struct ShardCtx {
    params: UnsafeCell<SlotParams>,
    outs: Vec<UnsafeCell<ShardOut>>,
    /// Per-shard deliver-phase outputs (same claim discipline as `outs`).
    douts: Vec<UnsafeCell<DeliverOut>>,
    /// Generation gate: number of phases released to the workers.
    go: AtomicU64,
    /// Cumulative worker phase-completions across the whole run.
    done: AtomicU64,
    panicked: AtomicBool,
    /// True when shards exceed the host's available parallelism: a
    /// yield-wait then burns scheduler quanta the sibling shard needs
    /// (the ~10 µs/slot overhead DESIGN.md decision #10 measured on the
    /// 1-core CI host), so waits park on the condvar instead.
    park: bool,
    /// Park-mode wakeup channel. The atomics stay the source of truth;
    /// the mutex/condvar only carry the wakeup (empty critical section
    /// on the signal side).
    lock: Mutex<()>,
    cvar: Condvar,
}

// SAFETY: see the struct-level safety argument — every access to the
// UnsafeCell contents is ordered by the go/done barrier protocol.
unsafe impl Sync for ShardCtx {}

impl ShardCtx {
    fn new(shards: usize) -> ShardCtx {
        let cores = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        ShardCtx {
            params: UnsafeCell::new(SlotParams::idle()),
            outs: (0..shards)
                .map(|_| UnsafeCell::new(ShardOut::default()))
                .collect(),
            douts: (0..shards)
                .map(|_| UnsafeCell::new(DeliverOut::default()))
                .collect(),
            go: AtomicU64::new(0),
            done: AtomicU64::new(0),
            panicked: AtomicBool::new(false),
            park: shards > cores,
            lock: Mutex::new(()),
            cvar: Condvar::new(),
        }
    }

    /// Make a just-performed atomic store visible to parked waiters.
    /// No-op when not parking. Taking (and dropping) the lock before the
    /// notify closes the lost-wakeup window: a waiter that observed the
    /// predicate false under the lock is already in `Condvar::wait`
    /// releasing it, so the notify cannot land between its check and its
    /// sleep.
    fn signal(&self) {
        if self.park {
            drop(self.lock.lock().unwrap());
            self.cvar.notify_all();
        }
    }

    /// Wait until `cond`. With a core per shard (`!park`) this is the
    /// pure spin-then-yield gate (lowest latency, no syscalls); when
    /// oversubscribed it spins briefly and then parks on the condvar,
    /// re-checking the atomic predicate under the lock.
    fn wait(&self, cond: impl Fn() -> bool) {
        if !self.park {
            wait_until(cond);
            return;
        }
        for _ in 0..64 {
            if cond() {
                return;
            }
            std::hint::spin_loop();
        }
        let mut guard = self.lock.lock().unwrap();
        while !cond() {
            guard = self.cvar.wait(guard).unwrap();
        }
    }
}

/// Spin briefly, then yield — the wait gate for hosts with a core per
/// shard. (Oversubscribed hosts park instead: see [`ShardCtx::wait`].)
fn wait_until(cond: impl Fn() -> bool) {
    let mut spins = 0u32;
    while !cond() {
        if spins < 64 {
            spins += 1;
            std::hint::spin_loop();
        } else {
            std::thread::yield_now();
        }
    }
}

/// Run one shard's TX phase for the published slot.
///
/// # Safety
/// Caller must hold the current generation's claim to global node range
/// `[lo, hi)`: between the `go` release for this generation and this
/// shard's `done` increment, no other thread touches
/// `nodes[lo..hi]`/`rngs[lo..hi]`, and `p`'s pointers are live (see
/// [`ShardCtx`]).
unsafe fn run_shard(p: &SlotParams, mode: CcMode, lo: usize, hi: usize, out: &mut ShardOut) {
    out.clear();
    let nodes = std::slice::from_raw_parts_mut(p.nodes.add(lo), hi - lo);
    let tables = &*p.tables;
    let t = SlotInEpoch(p.t);
    if p.faulty {
        let rngs = std::slice::from_raw_parts_mut(p.rngs.add(lo), hi - lo);
        tx_faulty_range(
            mode,
            nodes,
            rngs,
            lo,
            tables,
            &*p.sched,
            &*p.failures,
            &*p.faults,
            t,
            out,
        );
    } else {
        tx_clean_range(mode, nodes, lo, tables, t, &mut out.ring);
    }
}

/// Run one shard's deliver phase for the published slot: scan the full
/// due list in index order, process the receivers in `[lo, hi)`, buffer
/// the ordered/global effects in `out` (see
/// [`crate::engine::deliver::deliver_range`]).
///
/// # Safety
/// Same claim discipline as [`run_shard`], extended to the receiver
/// partition: between the `go` release and this shard's `done`
/// increment, no other thread touches `nodes[lo..hi]`,
/// `reorder[lo*spn..hi*spn]`, or any flow terminating in `[lo, hi)`
/// (flow elements are receiver-disjoint — see
/// [`crate::engine::deliver::FlowSlots`]). The due list and every
/// `*const` target are frozen for the phase.
unsafe fn run_shard_deliver(
    p: &SlotParams,
    mode: CcMode,
    lo: usize,
    hi: usize,
    out: &mut DeliverOut,
) {
    out.clear();
    let spn = p.spn as usize;
    let nodes = std::slice::from_raw_parts_mut(p.nodes.add(lo), hi - lo);
    let reorder = std::slice::from_raw_parts_mut(p.reorder.add(lo * spn), (hi - lo) * spn);
    let due = std::slice::from_raw_parts(p.due, p.due_len);
    let faults = &*p.faults;
    let ctx = DeliverCtx {
        mode,
        byz: faults.byz.as_ref(),
        has_link_faults: faults.injector.has_link_faults(),
        flows: p.flows,
        failures: &*p.failures,
        sched: &*p.sched,
        spn: p.spn,
        launch_t: p.launch_t,
        now: Time::from_ps(p.now_ps),
        epoch: p.epoch,
    };
    deliver_range(
        &ctx,
        lo as u32,
        hi as u32,
        nodes,
        reorder,
        due,
        out,
        &mut NullObserver,
    );
}

fn worker_loop(ctx: &ShardCtx, s: usize, mode: CcMode, lo: usize, hi: usize) {
    let mut generation: u64 = 1;
    loop {
        ctx.wait(|| ctx.go.load(Ordering::Acquire) >= generation);
        // SAFETY: the acquire above pairs with main's release store of
        // `go`; params for this generation are fully published and stay
        // frozen until every shard reports done.
        let p = unsafe { &*ctx.params.get() };
        if p.phase == Phase::Stop {
            ctx.done.fetch_add(1, Ordering::Release);
            ctx.signal();
            return;
        }
        // Contain an unwind: a worker that dies before its `done`
        // increment would deadlock the whole run. Main re-raises.
        let r = catch_unwind(AssertUnwindSafe(|| {
            // SAFETY: this worker holds generation `generation`'s claim
            // to [lo, hi) and to outs[s]/douts[s] (see ShardCtx).
            unsafe {
                match p.phase {
                    Phase::Tx => run_shard(p, mode, lo, hi, &mut *ctx.outs[s].get()),
                    Phase::Deliver => run_shard_deliver(p, mode, lo, hi, &mut *ctx.douts[s].get()),
                    Phase::Stop => unreachable!(),
                }
            }
        }));
        if r.is_err() {
            ctx.panicked.store(true, Ordering::Release);
        }
        ctx.done.fetch_add(1, Ordering::Release);
        ctx.signal();
        generation += 1;
    }
}

impl SiriusSim {
    /// The sharded slot loop: serial prologue and ordered epilogues on
    /// this thread, the deliver and TX phases each fanned across
    /// `shards` contiguous node ranges (this thread runs shard 0;
    /// `shards - 1` scoped workers run the rest, two barrier firings per
    /// slot). Digest-identical to [`SiriusSim::run_loop`] with a
    /// [`NullObserver`] — see the module docs for why.
    pub(crate) fn run_loop_sharded<S: FlowSource>(&mut self, src: &mut S, shards: usize) -> u64 {
        let n = self.nodes.len();
        let shards = shards.clamp(1, n.max(1));
        let mode = self.tx.mode;
        debug_assert_ne!(mode, CcMode::Ideal);
        debug_assert!(!self.audit.enabled());
        let slot_ps = self.cfg.network.slot().as_ps();
        let epoch_slots = self.cfg.network.epoch_slots();
        let ring_len = self.delivery.ring.len();
        let prop_slots = self.prop_slots as u64;
        let has_faults = !self.faults.injector.is_empty();
        let timing = self.cfg.plane_timing;
        let spn = self.cfg.network.servers_per_node as u32;
        let obs = &mut NullObserver;

        // Contiguous node ranges; the merge appends shard outputs in
        // shard order, reproducing the serial node-order push sequence.
        let ranges: Vec<(usize, usize)> = (0..shards)
            .map(|s| (s * n / shards, (s + 1) * n / shards))
            .collect();
        let workers = (shards - 1) as u64;
        let ctx = ShardCtx::new(shards);

        let mut abs_slot: u64 = 0;
        let mut t: u64 = 0;
        let mut cur_epoch: u64 = 0;
        let mut ring_idx: usize = 0;
        let mut arrive_idx: usize = (prop_slots % ring_len as u64) as usize;
        let mut generation: u64 = 0;
        // K-way-merge cursors for the deliver epilogue (reused per slot).
        let mut cursors: Vec<usize> = vec![0; shards];

        std::thread::scope(|scope| {
            for (s, &(lo, hi)) in ranges.iter().enumerate().skip(1) {
                let ctx = &ctx;
                scope.spawn(move || worker_loop(ctx, s, mode, lo, hi));
            }

            while !src.finished(&self.flows, self.delivery.completed)
                && abs_slot < self.cfg.max_slots
            {
                let now = Time::from_ps(abs_slot * slot_ps);
                if now > src.deadline() {
                    break;
                }
                if t == 0 {
                    if has_faults {
                        self.fault_boundary(cur_epoch, obs);
                    }
                    self.epoch_boundary(cur_epoch, now, src, obs);
                }

                // DeliverPlane: before TX, exactly as in run_loop, but
                // receiver-partitioned across the worker pool (the slot's
                // first barrier phase). Cells draining now were launched
                // `prop_slots` ago; their slot-in-epoch names the
                // scheduled transmitter for the Byzantine RX filter.
                // (Wrapping is harmless: warmup ring slots are empty.)
                let launch_t = (abs_slot.wrapping_sub(prop_slots) % epoch_slots) as u16;
                let mut due = std::mem::take(&mut self.delivery.ring[ring_idx]);
                if !due.is_empty() {
                    let m = mark(timing);
                    generation += 1;
                    // SAFETY: all workers are barrier-parked (done has
                    // reached the previous generation's target), so main
                    // is the only thread touching params.
                    unsafe {
                        *ctx.params.get() = SlotParams {
                            phase: Phase::Deliver,
                            nodes: self.nodes.as_mut_ptr(),
                            rngs: std::ptr::null_mut(),
                            tables: &self.tables,
                            sched: &self.sched,
                            failures: &self.failure_plane,
                            faults: &self.faults,
                            t: t as u16,
                            faulty: has_faults,
                            due: due.as_ptr(),
                            due_len: due.len(),
                            reorder: self.delivery.reorder.as_mut_ptr(),
                            flows: self.flows.raw_view(),
                            spn,
                            now_ps: now.since(Time::ZERO).as_ps(),
                            epoch: cur_epoch,
                            launch_t,
                        };
                    }
                    ctx.go.store(generation, Ordering::Release);
                    ctx.signal();

                    // Main is shard 0, through the same published
                    // pointers. SAFETY: shard 0's receiver range is
                    // claimed by this thread for this generation;
                    // douts[0] is main-only.
                    unsafe {
                        let p = &*ctx.params.get();
                        run_shard_deliver(
                            p,
                            mode,
                            ranges[0].0,
                            ranges[0].1,
                            &mut *ctx.douts[0].get(),
                        );
                    }
                    ctx.wait(|| ctx.done.load(Ordering::Acquire) >= workers * generation);
                    if ctx.panicked.load(Ordering::Acquire) {
                        panic!("sharded slot engine: a shard worker panicked");
                    }
                    lap(&mut self.plane_times.deliver, m);

                    // Ordered epilogue: k-way merge the per-shard
                    // delivered records by due index, folding the digest
                    // — and the streaming eviction replay — in exactly
                    // the serial sequence. Then the commutative per-shard
                    // effects, in shard order.
                    let m = mark(timing);
                    let now_ps = now.since(Time::ZERO).as_ps();
                    cursors.iter_mut().for_each(|c| *c = 0);
                    loop {
                        let mut best: Option<(u32, usize)> = None;
                        for (s, cur) in cursors.iter().enumerate() {
                            // SAFETY: every shard reported done for this
                            // generation; the workers are parked until
                            // the next `go`, so main owns all douts.
                            let d = unsafe { &*ctx.douts[s].get() };
                            if let Some(&(idx, _, _)) = d.delivered.get(*cur) {
                                if best.is_none_or(|(b, _)| idx < b) {
                                    best = Some((idx, s));
                                }
                            }
                        }
                        let Some((_, s)) = best else { break };
                        // SAFETY: as above.
                        let (_, cell, completed) =
                            unsafe { (&*ctx.douts[s].get()).delivered[cursors[s]] };
                        cursors[s] += 1;
                        self.fold_delivery(&cell, completed, now_ps);
                    }
                    for s in 0..shards {
                        // SAFETY: as above.
                        let dout = unsafe { &mut *ctx.douts[s].get() };
                        self.apply_deliver_effects(dout, now);
                    }
                    lap(&mut self.plane_times.merge, m);
                    due.clear();
                }
                self.delivery.ring[ring_idx] = due;

                let slot = SlotInEpoch(t as u16);
                let arrival_epoch = (abs_slot + prop_slots) / epoch_slots;
                if has_faults && self.faults.active.any_mistune() {
                    // Serial pre-pass: writes the corruption scratch the
                    // TX phase then only reads.
                    self.faults.mistune_prepass(
                        abs_slot,
                        slot,
                        &self.failure_plane,
                        &self.tables,
                        obs,
                    );
                }

                // Publish the TX phase and release the workers.
                let m = mark(timing);
                generation += 1;
                // SAFETY: all workers are barrier-parked (done has
                // reached the previous generation's target), so main is
                // the only thread touching params.
                unsafe {
                    *ctx.params.get() = SlotParams {
                        phase: Phase::Tx,
                        nodes: self.nodes.as_mut_ptr(),
                        rngs: self.fault_rngs.as_mut_ptr(),
                        tables: &self.tables,
                        sched: &self.sched,
                        failures: &self.failure_plane,
                        faults: &self.faults,
                        t: t as u16,
                        faulty: has_faults,
                        due: std::ptr::null(),
                        due_len: 0,
                        reorder: std::ptr::null_mut(),
                        flows: FlowSlots::empty(),
                        spn,
                        now_ps: 0,
                        epoch: cur_epoch,
                        launch_t,
                    };
                }
                ctx.go.store(generation, Ordering::Release);
                ctx.signal();

                // Main is shard 0, through the same published pointers.
                // SAFETY: shard 0's range is claimed by this thread for
                // this generation; outs[0] is main-only.
                unsafe {
                    let p = &*ctx.params.get();
                    run_shard(p, mode, ranges[0].0, ranges[0].1, &mut *ctx.outs[0].get());
                }
                ctx.wait(|| ctx.done.load(Ordering::Acquire) >= workers * generation);
                if ctx.panicked.load(Ordering::Acquire) {
                    panic!("sharded slot engine: a shard worker panicked");
                }
                lap(&mut self.plane_times.tx, m);

                // Merge in shard order: ring pushes, detector credit,
                // loss counters — the exact serial sequence. Pre-size the
                // arrival ring slot from the slot's total so the appends
                // never regrow it mid-merge.
                let m = mark(timing);
                let total: usize = (0..shards)
                    // SAFETY: every shard reported done for this
                    // generation; the workers are parked until the next
                    // `go`, so main owns all outs.
                    .map(|s| unsafe { (*ctx.outs[s].get()).ring.len() })
                    .sum();
                self.delivery.ring[arrive_idx].reserve(total);
                for s in 0..shards {
                    // SAFETY: as above.
                    let out = unsafe { &mut *ctx.outs[s].get() };
                    self.delivery.ring[arrive_idx].append(&mut out.ring);
                    for &(ni, u, j) in &out.credits {
                        self.detect.credit(ni, u, j, arrival_epoch);
                    }
                    out.credits.clear();
                    self.faults.report.cells_lost_grey += out.lost_grey;
                    self.faults.report.cells_lost_mistune += out.lost_mistune;
                    self.faults.report.cells_forged += out.forged_tx;
                }
                if has_faults {
                    self.faults.end_slot();
                }
                lap(&mut self.plane_times.merge, m);

                abs_slot += 1;
                t += 1;
                if t == epoch_slots {
                    t = 0;
                    cur_epoch += 1;
                }
                ring_idx += 1;
                if ring_idx == ring_len {
                    ring_idx = 0;
                }
                arrive_idx += 1;
                if arrive_idx == ring_len {
                    arrive_idx = 0;
                }
            }

            // Park the workers out: one final Stop generation.
            generation += 1;
            // SAFETY: workers are barrier-parked; main owns params.
            unsafe {
                (*ctx.params.get()).phase = Phase::Stop;
            }
            ctx.go.store(generation, Ordering::Release);
            ctx.signal();
            ctx.wait(|| ctx.done.load(Ordering::Acquire) >= workers * generation);
        });
        abs_slot
    }
}
