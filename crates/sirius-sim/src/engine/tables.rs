//! Precomputed schedule tables for the slot engine.
//!
//! [`Schedule::dest`] derives its answer from a div/mod chain over the
//! grating geometry. The schedule is static — the paper's whole design
//! rests on that — so the engine flattens one epoch of destinations into
//! a dense table at construction and the hot loop reads a contiguous
//! `&[NodeId]` per slot instead of re-deriving 1,536 destinations every
//! slot at paper scale. Fault repair never mutates the base schedule
//! (omissions are overlay checks on [`sirius_core::repair::AdjustedSchedule`]),
//! so the table stays valid for the whole run.
//!
//! Alongside the destinations, the table keeps one bitmask of scheduled
//! peers per `(slot, node)`: ANDed against a node's fabric-occupancy mask
//! ([`sirius_core::node::SiriusNode::fabric_mask`]) it answers "can this
//! node send *anything* this slot?" in a couple of word ops, which is
//! what lets the protocol-mode fast path skip whole uplink rows.

use sirius_core::schedule::{Schedule, SlotInEpoch};
use sirius_core::topology::{NodeId, UplinkId};

/// Dense `[slot][node * uplinks + uplink] -> destination` table covering
/// one epoch of the base schedule (epochs repeat).
pub(crate) struct DestTable {
    nodes: usize,
    uplinks: usize,
    epoch_slots: u64,
    /// Entries per slot: `nodes * uplinks`.
    stride: usize,
    dests: Vec<NodeId>,
    /// Bitmask words per `(slot, node)` entry: `nodes.div_ceil(64)`.
    words: usize,
    /// `[slot][node][word]`: bit `j` set iff some uplink of `node`
    /// connects to `j` at that slot.
    peer_mask: Vec<u64>,
}

impl DestTable {
    pub fn new(sched: &Schedule) -> DestTable {
        let nodes = sched.nodes();
        let uplinks = sched.uplinks();
        let epoch_slots = sched.epoch_slots();
        let stride = nodes * uplinks;
        let words = nodes.div_ceil(64);
        let mut dests = Vec::with_capacity(stride * epoch_slots as usize);
        let mut peer_mask = vec![0u64; epoch_slots as usize * nodes * words];
        for t in 0..epoch_slots as u16 {
            for i in 0..nodes as u32 {
                let base = (t as usize * nodes + i as usize) * words;
                for u in 0..uplinks as u16 {
                    let j = sched.dest(NodeId(i), UplinkId(u), SlotInEpoch(t));
                    dests.push(j);
                    peer_mask[base + (j.0 as usize >> 6)] |= 1 << (j.0 & 63);
                }
            }
        }
        DestTable {
            nodes,
            uplinks,
            epoch_slots,
            stride,
            dests,
            words,
            peer_mask,
        }
    }

    /// All destinations for epoch slot `t`, laid out
    /// `[node * uplinks + uplink]`.
    #[inline]
    pub fn slot(&self, t: SlotInEpoch) -> &[NodeId] {
        let base = t.0 as usize * self.stride;
        &self.dests[base..base + self.stride]
    }

    /// Single destination lookup (the mistune pre-pass needs scattered
    /// shifted-slot reads, not a whole row).
    #[inline]
    pub fn dest(&self, t: SlotInEpoch, i: NodeId, u: u16) -> NodeId {
        self.dests[t.0 as usize * self.stride + i.0 as usize * self.uplinks + u as usize]
    }

    /// Bitmask of the peers node `i`'s uplinks connect to at slot `t`.
    #[inline]
    pub fn peer_mask(&self, t: SlotInEpoch, i: usize) -> &[u64] {
        let base = (t.0 as usize * self.nodes + i) * self.words;
        &self.peer_mask[base..base + self.words]
    }

    pub fn nodes(&self) -> usize {
        self.nodes
    }

    pub fn uplinks(&self) -> usize {
        self.uplinks
    }

    pub fn epoch_slots(&self) -> u64 {
        self.epoch_slots
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sirius_core::config::SiriusConfig;

    #[test]
    fn table_matches_schedule_exhaustively() {
        let cfg = SiriusConfig::scaled(16, 4);
        let sched = Schedule::new(&cfg);
        let table = DestTable::new(&sched);
        assert_eq!(table.nodes(), sched.nodes());
        assert_eq!(table.uplinks(), sched.uplinks());
        assert_eq!(table.epoch_slots(), sched.epoch_slots());
        for t in 0..sched.epoch_slots() as u16 {
            let row = table.slot(SlotInEpoch(t));
            for i in 0..sched.nodes() as u32 {
                let pm = table.peer_mask(SlotInEpoch(t), i as usize);
                for u in 0..sched.uplinks() as u16 {
                    let want = sched.dest(NodeId(i), UplinkId(u), SlotInEpoch(t));
                    assert_eq!(table.dest(SlotInEpoch(t), NodeId(i), u), want);
                    assert_eq!(row[i as usize * sched.uplinks() + u as usize], want);
                    assert_ne!(pm[want.0 as usize >> 6] & (1 << (want.0 & 63)), 0);
                }
            }
            // Peer masks hold exactly the scheduled destinations.
            for i in 0..sched.nodes() {
                let pm = table.peer_mask(SlotInEpoch(t), i);
                let scheduled: std::collections::HashSet<u32> = (0..sched.uplinks() as u16)
                    .map(|u| table.dest(SlotInEpoch(t), NodeId(i as u32), u).0)
                    .collect();
                let popcount: u32 = pm.iter().map(|w| w.count_ones()).sum();
                assert_eq!(popcount as usize, scheduled.len());
            }
        }
    }
}
