//! Precomputed schedule tables for the slot engine.
//!
//! [`Schedule::dest`] derives its answer from a div/mod chain over the
//! grating geometry. The schedule is static — the paper's whole design
//! rests on that — so the engine flattens it at construction and the hot
//! loop reads destinations without re-deriving the chain per lookup.
//! Fault repair never mutates the base schedule (omissions are overlay
//! checks on [`sirius_core::repair::AdjustedSchedule`]), so the table
//! stays valid for the whole run.
//!
//! Two representations, selected by footprint:
//!
//! * **Dense** — one epoch of destinations flattened to a contiguous
//!   `[slot][node * uplinks + uplink]` array, plus one bitmask of
//!   scheduled peers per `(slot, node)`: ANDed against a node's
//!   fabric-occupancy mask ([`sirius_core::node::SiriusNode::fabric_mask`])
//!   it answers "can this node send *anything* this slot?" in a couple
//!   of word ops. Fastest, but O(N² · slots): ~25 MB at N = 2048 and
//!   ~100 MB at N = 4096, which stops being cache-resident long before
//!   that.
//! * **Cyclic** — the compressed permutation form. The AWGR schedule is
//!   a rotation: `dest(i, u, t) = col_base(i, u) + (port(i) + t) mod g`,
//!   so per node we store one `port` and per `(node, uplink)` one column
//!   base — O(N · uplinks) total, cache-resident at any N the series
//!   sweeps. Construction *verifies* the rotation property against the
//!   schedule and panics if a future schedule change breaks it, so the
//!   compressed form can never silently diverge.

use sirius_core::schedule::{Schedule, SlotInEpoch};
use sirius_core::topology::{NodeId, UplinkId};

/// Footprint threshold for the dense form: below this the flattened
/// epoch (destinations + peer masks) comfortably fits in L2/L3 and wins
/// on raw speed; above it the cyclic form wins by staying cache-resident.
/// N = 512 paper-geometry tables are ~2.5 MB (dense); N = 1024 crosses.
const DENSE_LIMIT_BYTES: usize = 8 << 20;

enum Repr {
    Dense {
        /// `[slot][node * uplinks + uplink] -> destination`.
        dests: Vec<NodeId>,
        /// `[slot][node][word]`: bit `j` set iff some uplink of `node`
        /// connects to `j` at that slot.
        peer_mask: Vec<u64>,
    },
    Cyclic {
        /// `[node * uplinks + uplink] -> dst_group * g` (the rotation-
        /// independent part of the destination).
        col_base: Vec<u32>,
        /// `[node] -> port within group`; the rotation at slot `t` is
        /// `(port + t) mod g`.
        port: Vec<u16>,
        /// Rotation modulus (= grating size = epoch slots).
        g: u32,
    },
}

/// Schedule lookup table covering one epoch of the base schedule
/// (epochs repeat).
pub(crate) struct DestTable {
    nodes: usize,
    uplinks: usize,
    epoch_slots: u64,
    /// Entries per slot: `nodes * uplinks`.
    stride: usize,
    /// Bitmask words per `(slot, node)` entry: `nodes.div_ceil(64)`.
    words: usize,
    repr: Repr,
}

impl DestTable {
    pub fn new(sched: &Schedule) -> DestTable {
        DestTable::new_with_limit(sched, DENSE_LIMIT_BYTES)
    }

    /// As [`DestTable::new`] with an explicit dense-footprint limit;
    /// tests pass 0 to force the cyclic form at tiny N.
    pub fn new_with_limit(sched: &Schedule, dense_limit: usize) -> DestTable {
        let nodes = sched.nodes();
        let uplinks = sched.uplinks();
        let epoch_slots = sched.epoch_slots();
        let stride = nodes * uplinks;
        let words = nodes.div_ceil(64);
        let dense_bytes = stride * epoch_slots as usize * std::mem::size_of::<NodeId>()
            + epoch_slots as usize * nodes * words * 8;
        let repr = if dense_bytes <= dense_limit {
            Self::build_dense(sched, nodes, uplinks, epoch_slots, stride, words)
        } else {
            Self::build_cyclic(sched, nodes, uplinks, epoch_slots)
        };
        DestTable {
            nodes,
            uplinks,
            epoch_slots,
            stride,
            words,
            repr,
        }
    }

    fn build_dense(
        sched: &Schedule,
        nodes: usize,
        uplinks: usize,
        epoch_slots: u64,
        stride: usize,
        words: usize,
    ) -> Repr {
        let mut dests = Vec::with_capacity(stride * epoch_slots as usize);
        let mut peer_mask = vec![0u64; epoch_slots as usize * nodes * words];
        for t in 0..epoch_slots as u16 {
            for i in 0..nodes as u32 {
                let base = (t as usize * nodes + i as usize) * words;
                for u in 0..uplinks as u16 {
                    let j = sched.dest(NodeId(i), UplinkId(u), SlotInEpoch(t));
                    dests.push(j);
                    peer_mask[base + (j.0 as usize >> 6)] |= 1 << (j.0 & 63);
                }
            }
        }
        Repr::Dense { dests, peer_mask }
    }

    fn build_cyclic(sched: &Schedule, nodes: usize, uplinks: usize, epoch_slots: u64) -> Repr {
        let g = epoch_slots as u32;
        let mut col_base = Vec::with_capacity(nodes * uplinks);
        let mut port = Vec::with_capacity(nodes);
        for i in 0..nodes as u32 {
            // At t = 0 the rotation is `port mod g`, identical across
            // uplinks, so any column's slot-0 destination reveals it.
            let p = sched.dest(NodeId(i), UplinkId(0), SlotInEpoch(0)).0 % g;
            port.push(p as u16);
            for u in 0..uplinks as u16 {
                let d = sched.dest(NodeId(i), UplinkId(u), SlotInEpoch(0)).0;
                assert_eq!(
                    d % g,
                    p,
                    "schedule is not a per-node rotation; cyclic DestTable invalid"
                );
                col_base.push(d - p);
            }
        }
        // Verify the rotation property: exhaustively under debug builds,
        // sampled (first and last nonzero rotation) in release. A
        // schedule change that breaks cyclicity fails loudly here.
        let sample: Vec<u16> = if cfg!(debug_assertions) {
            (0..epoch_slots as u16).collect()
        } else {
            [1u16, epoch_slots.saturating_sub(1) as u16]
                .into_iter()
                .filter(|&t| (t as u64) < epoch_slots)
                .collect()
        };
        for &t in &sample {
            for i in 0..nodes as u32 {
                let rot = (port[i as usize] as u32 + t as u32) % g;
                for u in 0..uplinks as u16 {
                    let want = sched.dest(NodeId(i), UplinkId(u), SlotInEpoch(t));
                    let got = col_base[i as usize * uplinks + u as usize] + rot;
                    assert_eq!(
                        got, want.0,
                        "schedule is not cyclic at (i={i}, u={u}, t={t}); \
                         cyclic DestTable invalid"
                    );
                }
            }
        }
        Repr::Cyclic { col_base, port, g }
    }

    /// All destinations for epoch slot `t`, as a per-node view.
    #[inline]
    pub fn slot_view(&self, t: SlotInEpoch) -> SlotDests<'_> {
        SlotDests { table: self, t }
    }

    /// Single destination lookup (the mistune pre-pass needs scattered
    /// shifted-slot reads, not a whole row).
    #[inline]
    pub fn dest(&self, t: SlotInEpoch, i: NodeId, u: u16) -> NodeId {
        match &self.repr {
            Repr::Dense { dests, .. } => {
                dests[t.0 as usize * self.stride + i.0 as usize * self.uplinks + u as usize]
            }
            Repr::Cyclic { col_base, port, g } => {
                let rot = (port[i.0 as usize] as u32 + t.0 as u32) % g;
                NodeId(col_base[i.0 as usize * self.uplinks + u as usize] + rot)
            }
        }
    }

    /// Bitmask of the peers node `i`'s uplinks connect to at slot `t`;
    /// `None` under the cyclic form (callers fall back to a per-node
    /// occupancy check).
    #[inline]
    pub fn peer_mask(&self, t: SlotInEpoch, i: usize) -> Option<&[u64]> {
        match &self.repr {
            Repr::Dense { peer_mask, .. } => {
                let base = (t.0 as usize * self.nodes + i) * self.words;
                Some(&peer_mask[base..base + self.words])
            }
            Repr::Cyclic { .. } => None,
        }
    }

    pub fn nodes(&self) -> usize {
        self.nodes
    }

    pub fn uplinks(&self) -> usize {
        self.uplinks
    }

    pub fn epoch_slots(&self) -> u64 {
        self.epoch_slots
    }
}

/// One slot's destinations, resolvable per node.
#[derive(Clone, Copy)]
pub(crate) struct SlotDests<'a> {
    table: &'a DestTable,
    t: SlotInEpoch,
}

impl<'a> SlotDests<'a> {
    /// Node `i`'s destination row for this slot.
    #[inline]
    pub fn node(&self, i: usize) -> NodeRow<'a> {
        match &self.table.repr {
            Repr::Dense { dests, .. } => {
                let base = self.t.0 as usize * self.table.stride + i * self.table.uplinks;
                NodeRow::Dense(&dests[base..base + self.table.uplinks])
            }
            Repr::Cyclic { col_base, port, g } => NodeRow::Cyclic {
                col: &col_base[i * self.table.uplinks..(i + 1) * self.table.uplinks],
                rot: (port[i] as u32 + self.t.0 as u32) % g,
            },
        }
    }
}

/// One node's destinations at one slot; `at(u)` resolves an uplink.
pub(crate) enum NodeRow<'a> {
    Dense(&'a [NodeId]),
    Cyclic { col: &'a [u32], rot: u32 },
}

impl NodeRow<'_> {
    #[inline]
    pub fn at(&self, u: usize) -> NodeId {
        match self {
            NodeRow::Dense(d) => d[u],
            NodeRow::Cyclic { col, rot } => NodeId(col[u] + rot),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sirius_core::config::SiriusConfig;

    fn check_against_schedule(table: &DestTable, sched: &Schedule) {
        assert_eq!(table.nodes(), sched.nodes());
        assert_eq!(table.uplinks(), sched.uplinks());
        assert_eq!(table.epoch_slots(), sched.epoch_slots());
        for t in 0..sched.epoch_slots() as u16 {
            let view = table.slot_view(SlotInEpoch(t));
            for i in 0..sched.nodes() as u32 {
                let row = view.node(i as usize);
                let pm = table.peer_mask(SlotInEpoch(t), i as usize);
                for u in 0..sched.uplinks() as u16 {
                    let want = sched.dest(NodeId(i), UplinkId(u), SlotInEpoch(t));
                    assert_eq!(table.dest(SlotInEpoch(t), NodeId(i), u), want);
                    assert_eq!(row.at(u as usize), want);
                    if let Some(pm) = pm {
                        assert_ne!(pm[want.0 as usize >> 6] & (1 << (want.0 & 63)), 0);
                    }
                }
            }
            // Peer masks (dense form only) hold exactly the scheduled
            // destinations.
            for i in 0..sched.nodes() {
                let Some(pm) = table.peer_mask(SlotInEpoch(t), i) else {
                    continue;
                };
                let scheduled: std::collections::HashSet<u32> = (0..sched.uplinks() as u16)
                    .map(|u| table.dest(SlotInEpoch(t), NodeId(i as u32), u).0)
                    .collect();
                let popcount: u32 = pm.iter().map(|w| w.count_ones()).sum();
                assert_eq!(popcount as usize, scheduled.len());
            }
        }
    }

    #[test]
    fn dense_table_matches_schedule_exhaustively() {
        let cfg = SiriusConfig::scaled(16, 4);
        let sched = Schedule::new(&cfg);
        let table = DestTable::new(&sched);
        assert!(
            matches!(table.repr, Repr::Dense { .. }),
            "16-node table should select the dense form"
        );
        check_against_schedule(&table, &sched);
    }

    #[test]
    fn cyclic_table_matches_schedule_exhaustively() {
        // Force the compressed form at a size small enough to check
        // every (slot, node, uplink) against the schedule and the dense
        // form.
        for (n, g) in [(16usize, 4usize), (64, 8)] {
            let cfg = SiriusConfig::scaled(n, g);
            let sched = Schedule::new(&cfg);
            let cyclic = DestTable::new_with_limit(&sched, 0);
            assert!(
                matches!(cyclic.repr, Repr::Cyclic { .. }),
                "limit 0 must force the cyclic form"
            );
            check_against_schedule(&cyclic, &sched);
            assert!(cyclic.peer_mask(SlotInEpoch(0), 0).is_none());
        }
    }

    #[test]
    fn large_tables_select_cyclic_form() {
        let cfg = SiriusConfig::scaled(1024, 32);
        let sched = Schedule::new(&cfg);
        let table = DestTable::new(&sched);
        assert!(
            matches!(table.repr, Repr::Cyclic { .. }),
            "N=1024 dense table exceeds the cache-residency limit"
        );
        // Spot-check the compressed lookups against the schedule.
        for t in [0u16, 1, 31] {
            for i in [0u32, 511, 1023] {
                for u in 0..sched.uplinks() as u16 {
                    assert_eq!(
                        table.dest(SlotInEpoch(t), NodeId(i), u),
                        sched.dest(NodeId(i), UplinkId(u), SlotInEpoch(t))
                    );
                }
            }
        }
    }
}
