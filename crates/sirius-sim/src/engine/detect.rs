//! DetectPlane: keepalive credit and the silence detectors (§4.5).
//!
//! Detection feeds on the carrier itself: every well-tuned, non-erased
//! scheduled slot — idle keepalives included — counts as "heard". The
//! fault boundary ([`crate::engine::fault`]) consumes this state once
//! per epoch to stage exclusions and readmissions.
//!
//! Fault-free runs skip this plane entirely: credit exists only to be
//! compared against silence at the boundary, and with an empty fault
//! script the boundary (and its detector ticks) never runs — so the
//! engine also never pays the 1,536 `heard_from` calls per slot that the
//! monolithic loop performed at paper scale.

use sirius_core::fault::{FailureDetector, FaultConfig, LinkDetector};
use sirius_core::topology::NodeId;

pub(crate) struct DetectPlane {
    /// One silence detector per node, fed from actual slot receptions
    /// (data or keepalive) — `FailurePlane` exclusions are staged only
    /// from what these observe.
    pub detectors: Vec<FailureDetector>,
    /// Latest reception epoch of each *sender* across all receivers
    /// (keepalives included) — drives emergent readmission.
    pub last_heard_any: Vec<u64>,
    /// Per-(sender, TX column) silence detector for grey-failure
    /// localization; only maintained when the script has link faults.
    pub link_det: Option<LinkDetector>,
    /// (sender, column) pairs ever suspected by the link detector.
    pub links_suspected: Vec<(NodeId, u16)>,
}

impl DetectPlane {
    pub fn new(n: usize, fault: FaultConfig) -> DetectPlane {
        DetectPlane {
            detectors: (0..n).map(|_| FailureDetector::new(n, fault)).collect(),
            last_heard_any: vec![0; n],
            link_det: None,
            links_suspected: Vec::new(),
        }
    }

    /// Credit one heard reception: `sender` was heard by `receiver` on
    /// the sender's TX column `uplink`, landing at `arrival_epoch`.
    #[inline]
    pub fn credit(&mut self, sender: NodeId, uplink: u16, receiver: NodeId, arrival_epoch: u64) {
        self.detectors[receiver.0 as usize].heard_from(sender, arrival_epoch);
        let lh = &mut self.last_heard_any[sender.0 as usize];
        if *lh < arrival_epoch {
            *lh = arrival_epoch;
        }
        if let Some(ld) = &mut self.link_det {
            ld.heard_from(sender, uplink as usize, arrival_epoch);
        }
    }
}
