//! FaultPlane: scripted ground truth, per-slot corruption scratch, and
//! the epoch-boundary fault pipeline.
//!
//! The plane owns the [`FaultInjector`] script, the per-epoch
//! [`ActiveFaults`] snapshot and the [`FaultReport`] ledger. Per slot it
//! runs the mistune pre-pass (which RX ports does a detuned laser
//! corrupt this slot?) and grey-erasure draws; per epoch,
//! [`SiriusSim::fault_boundary`] turns detector silence into staged
//! schedule repair.
//!
//! Runs with an empty script skip this plane entirely — including the
//! boundary, whose only observable effects (detector ticks, staged
//! updates, report entries) all require scripted faults to exist.

use crate::engine::observer::SlotObserver;
use crate::engine::tables::DestTable;
use crate::faults::{ActiveFaults, FaultInjector};
use crate::metrics::{ByzantineRecord, CorrelatedDomainRecord, FailureRecord, FaultReport};
use crate::sirius_net::SiriusSim;
use sirius_core::fault::FailurePlane;
use sirius_core::schedule::{Schedule, SlotInEpoch};
use sirius_core::topology::{NodeId, UplinkId};

/// RX-side Byzantine bookkeeping, armed only when the script contains a
/// [`crate::faults::FaultEvent::Byzantine`] window.
///
/// The schedule names exactly one legitimate transmitter for every
/// (receiver, RX column, epoch slot), so a receiver that catches a
/// counterfeit can attribute it to the *true* transmitter of the slot it
/// arrived on — not to the node named in the forged header. Suspicion
/// accumulates per epoch and is reset at every fault boundary: the
/// quarantine threshold therefore bounds the liar's damage *per epoch*
/// (mirroring the §4.4 slew clamp), after which whole-node exclusion is
/// staged and held sticky.
pub(crate) struct ByzPlane {
    /// `src_table[(t * nodes + j) * uplinks + u]` = the unique scheduled
    /// transmitter into RX column `u` of node `j` at epoch slot `t`.
    src_table: Vec<NodeId>,
    nodes: usize,
    uplinks: usize,
    /// Forged cells attributed to each node during the current epoch.
    pub suspicion: Vec<u64>,
    /// Sticky quarantine flags: a quarantined node is never readmitted by
    /// resumed keepalives (its laser works fine — its *software* lies).
    pub quarantined: Vec<bool>,
}

impl ByzPlane {
    pub fn new(sched: &Schedule) -> ByzPlane {
        let nodes = sched.nodes();
        let uplinks = sched.uplinks();
        let slots = sched.epoch_slots() as usize;
        let mut src_table = Vec::with_capacity(slots * nodes * uplinks);
        for t in 0..slots as u16 {
            for j in 0..nodes as u32 {
                for u in 0..uplinks as u16 {
                    src_table.push(sched.source(NodeId(j), UplinkId(u), SlotInEpoch(t)));
                }
            }
        }
        ByzPlane {
            src_table,
            nodes,
            uplinks,
            suspicion: vec![0; nodes],
            quarantined: vec![false; nodes],
        }
    }

    /// The schedule's unique transmitter into `(j, u)` at epoch slot `t`.
    #[inline]
    pub fn expected_src(&self, j: NodeId, u: u16, t: u16) -> NodeId {
        self.src_table[(t as usize * self.nodes + j.0 as usize) * self.uplinks + u as usize]
    }
}

pub(crate) struct FaultPlane {
    /// Scripted ground-truth faults; detection is emergent.
    pub injector: FaultInjector,
    /// Per-epoch snapshot of active grey/mistune/control-loss windows.
    pub active: ActiveFaults,
    pub report: FaultReport,
    /// RX-side Byzantine filter state (None unless the script has a
    /// Byzantine window — the fault-free and fault-only paths skip it).
    pub byz: Option<ByzPlane>,
    /// Per-slot scratch: RX ports hit by a stray (mistuned) signal,
    /// indexed `node * uplinks + uplink`.
    corrupt: Vec<Option<NodeId>>,
    corrupt_touched: Vec<u32>,
    uplinks: usize,
    /// Nodes per group (= AWGR ports); drives correlated-domain expansion.
    group_size: usize,
    /// Uplink columns already logged as a correlated domain this run.
    domain_logged: Vec<bool>,
    /// Reused scratch for `FaultInjector::node_events_at`.
    node_scratch: Vec<(NodeId, bool)>,
}

impl FaultPlane {
    pub fn new(seed: u64, n: usize, uplinks: usize, group_size: usize) -> FaultPlane {
        FaultPlane {
            injector: FaultInjector::new(seed),
            active: ActiveFaults::default(),
            report: FaultReport::default(),
            byz: None,
            corrupt: vec![None; n * uplinks],
            corrupt_touched: Vec::new(),
            uplinks,
            group_size,
            domain_logged: vec![false; uplinks],
            node_scratch: Vec::new(),
        }
    }

    /// Arm the RX-side Byzantine filter (called once per run when the
    /// script contains a Byzantine window).
    pub fn arm_byzantine(&mut self, sched: &Schedule) {
        self.byz = Some(ByzPlane::new(sched));
    }

    /// Mistune pre-pass: a wavelength shifted by `offset` follows the
    /// grating to the destination scheduled `offset` slots later, so the
    /// stray signal corrupts whatever legitimately arrives on that RX
    /// port this slot.
    pub fn mistune_prepass<O: SlotObserver>(
        &mut self,
        abs_slot: u64,
        t: SlotInEpoch,
        failure_plane: &FailurePlane,
        tables: &DestTable,
        obs: &mut O,
    ) {
        let epoch_slots = tables.epoch_slots();
        let uplinks = self.uplinks;
        for k in 0..self.active.mistuned_nodes.len() {
            let m = self.active.mistuned_nodes[k];
            if failure_plane.is_failed(m) {
                continue; // a dead laser emits nothing
            }
            let off = self.active.mistune_of(m).unwrap() as u64;
            let shifted = SlotInEpoch(((t.0 as u64 + off) % epoch_slots) as u16);
            for u in 0..uplinks as u16 {
                let wrong = tables.dest(shifted, m, u);
                let idx = wrong.0 as usize * uplinks + u as usize;
                if self.corrupt[idx].is_none() {
                    self.corrupt[idx] = Some(m);
                    self.corrupt_touched.push(idx as u32);
                }
                obs.note_rx_mistuned(abs_slot, wrong, u);
            }
        }
    }

    /// Which mistuned sender (if any) corrupts RX port (`j`, `u`) this
    /// slot.
    #[inline]
    pub fn corrupted_by(&self, j: NodeId, u: u16) -> Option<NodeId> {
        self.corrupt[j.0 as usize * self.uplinks + u as usize]
    }

    /// Clear the per-slot corruption scratch (sparse: only touched ports).
    #[inline]
    pub fn end_slot(&mut self) {
        for &idx in &self.corrupt_touched {
            self.corrupt[idx as usize] = None;
        }
        self.corrupt_touched.clear();
    }
}

impl SiriusSim {
    /// Epoch-boundary fault pipeline: scripted ground truth lands, the
    /// silence detectors tick, suspicions stage consistent updates one
    /// epoch out, and both routing planes flip the same staged set at the
    /// same boundary.
    pub(crate) fn fault_boundary<O: SlotObserver>(&mut self, epoch: u64, obs: &mut O) {
        // 1. Ground-truth transitions (routing is NOT told). The event
        //    list is collected into a reused scratch buffer — the engine
        //    loop calls this every epoch and must not allocate for it.
        let mut ev = std::mem::take(&mut self.faults.node_scratch);
        self.faults.injector.node_events_at(epoch, &mut ev);
        for (node, is_crash) in ev.drain(..) {
            if is_crash {
                self.failure_plane.fail(node, epoch);
                self.faults.report.failures.push(FailureRecord {
                    node,
                    fail_epoch: epoch,
                    first_suspected: None,
                    excluded_at: None,
                    recovered_epoch: None,
                    readmitted_at: None,
                });
            } else {
                self.failure_plane.recover(node);
                // A rebooted node's counters predate the outage; reset so
                // it re-earns suspicions instead of suspecting everyone.
                self.detect.detectors[node.0 as usize].reset(epoch);
                if let Some(rec) = self
                    .faults
                    .report
                    .failures
                    .iter_mut()
                    .rev()
                    .find(|r| r.node == node && r.recovered_epoch.is_none())
                {
                    rec.recovered_epoch = Some(epoch);
                }
            }
        }
        self.faults.node_scratch = ev;

        // 2. Refresh the flat per-epoch fault snapshot.
        let n = self.nodes.len();
        let uplinks = self.sched.base().uplinks();
        let FaultPlane {
            injector,
            active,
            group_size,
            ..
        } = &mut self.faults;
        injector.refresh(epoch, n, uplinks, *group_size, active);

        // 3. Link-granular silence detection (maintained only when the
        //    script can produce partial-node faults): a newly silent TX
        //    column is repaired by dropping just that (uplink, slot)
        //    column from the schedule — costing `1/(N*U)` of capacity —
        //    unless enough of the node's columns are suspect that the
        //    §4.5 whole-node rule takes over (escalation, and the whole
        //    mechanism in node-granular comparison mode).
        let thresh = self.cfg.fault.escalation_threshold(uplinks);
        let ticked = match &mut self.detect.link_det {
            Some(ld) => ld.tick(epoch),
            None => Vec::new(),
        };
        for (peer, col) in ticked {
            let link = (peer, col as u16);
            if !self.detect.links_suspected.contains(&link) {
                self.detect.links_suspected.push(link);
                self.faults.report.links.push(crate::metrics::LinkRecord {
                    node: peer,
                    uplink: col as u16,
                    first_suspected: epoch,
                    omitted_at: None,
                    readmitted_at: None,
                });
            }
            // Cross-node correlation (§4.5 extended to shared components):
            // independent transceiver failures scatter across columns, but
            // a dead laser-bank chip or AWGR grating band silences the
            // *same* uplink column on several distinct nodes at once. When
            // enough peers are simultaneously suspect on this column, the
            // diagnosis flips to ONE fleet-wide correlated domain: repair
            // stays column-granular (k columns at `1/(N*U)` each) and the
            // per-node escalation rule is suppressed — a bank failure must
            // never cost k whole-node exclusions (`k/N`). Only meaningful
            // when column-granular repair is on: the node-granular
            // comparison mode (escalation fraction 0, the paper's pure
            // §4.5 rule) must keep excluding whole nodes regardless.
            let corr_nodes = if self.cfg.fault.column_escalation_fraction > 0.0 {
                self.detect
                    .link_det
                    .as_ref()
                    .map_or(0, |ld| ld.column_suspected_nodes(col))
            } else {
                0
            };
            let correlated = corr_nodes >= self.cfg.fault.correlation_threshold;
            if correlated && !self.faults.domain_logged[col] {
                self.faults.domain_logged[col] = true;
                self.faults
                    .report
                    .correlated_domains
                    .push(CorrelatedDomainRecord {
                        uplink: col as u16,
                        nodes: corr_nodes as u32,
                        detected_at: epoch,
                    });
            }
            let escalated = !correlated
                && self
                    .detect
                    .link_det
                    .as_ref()
                    .is_some_and(|ld| ld.suspected_count(peer) >= thresh);
            if escalated {
                if !self.failure_plane.is_excluded(peer)
                    && self.failure_plane.pending(peer) != Some(true)
                {
                    self.sched.stage_omit(peer, epoch + 1);
                    self.failure_plane.stage_exclude(peer, epoch + 1);
                }
            } else if !self.sched.is_column_omitted(peer, UplinkId(col as u16))
                && self.sched.pending_column(peer, UplinkId(col as u16)) != Some(true)
            {
                self.sched
                    .stage_omit_column(peer, UplinkId(col as u16), epoch + 1);
            }
        }

        // 3b. Node-level silence detection: every live node's detector
        //    ticks; a new suspicion stages exclusion at `epoch + 1` (one
        //    epoch of dissemination riding the cyclic schedule). A
        //    grey node below the escalation threshold keeps its healthy
        //    columns — the column omission above already repaired the
        //    schedule, so the node-level suspicion (receivers served
        //    only by the dead column genuinely stop hearing the sender)
        //    must not exclude the whole node.
        for o in 0..n {
            if self.failure_plane.is_failed(NodeId(o as u32)) {
                continue;
            }
            for p in self.detect.detectors[o].tick(epoch) {
                if p.0 as usize == o {
                    continue; // a node never hears itself on the fabric
                }
                self.faults.report.suspicion_events += 1;
                obs.note_suspicion(epoch, p);
                if let Some(rec) = self
                    .faults
                    .report
                    .failures
                    .iter_mut()
                    .rev()
                    .find(|r| r.node == p && r.first_suspected.is_none())
                {
                    rec.first_suspected = Some(epoch);
                }
                // When the per-column detector runs, it owns repair
                // staging: a receiver's node-level silence cannot
                // distinguish a dead node from the death of the one
                // column serving it, and its per-receiver counters lag
                // the column view by up to an epoch — acting on them
                // would exclude a whole node for a single grey column.
                // Node-level suspicions then only feed the record books;
                // exclusion comes from column escalation above.
                if self.detect.link_det.is_none()
                    && !self.failure_plane.is_excluded(p)
                    && self.failure_plane.pending(p) != Some(true)
                {
                    self.sched.stage_omit(p, epoch + 1);
                    self.failure_plane.stage_exclude(p, epoch + 1);
                }
            }
        }

        // 3c. Byzantine quarantine: suspicion accumulated by the RX-side
        //    filter since the last boundary is the node's forged-cell
        //    count *for this epoch*. Crossing the threshold stages sticky
        //    whole-node exclusion; resetting the counters every boundary
        //    is what makes the threshold a per-epoch damage bound (the
        //    §4.4 slew-clamp shape: lie a little, tolerated; lie past the
        //    clamp, evicted).
        let byz_thresh = self.cfg.fault.byz_quarantine_threshold;
        let mut quarantine_now: Vec<NodeId> = Vec::new();
        {
            let FaultPlane { byz, report, .. } = &mut self.faults;
            if let Some(bz) = byz {
                for p in 0..n {
                    let s = bz.suspicion[p];
                    if s > report.max_forged_per_epoch {
                        report.max_forged_per_epoch = s;
                    }
                    if s >= byz_thresh && !bz.quarantined[p] {
                        bz.quarantined[p] = true;
                        report.byz_quarantined.push(ByzantineRecord {
                            node: NodeId(p as u32),
                            quarantined_at: epoch,
                        });
                        quarantine_now.push(NodeId(p as u32));
                    }
                    bz.suspicion[p] = 0;
                }
            }
        }
        for p in quarantine_now {
            if !self.failure_plane.is_excluded(p) && self.failure_plane.pending(p) != Some(true) {
                self.sched.stage_omit(p, epoch + 1);
                self.failure_plane.stage_exclude(p, epoch + 1);
            }
        }

        // 4. Emergent readmission: an excluded node heard again within the
        //    last epoch (keepalives resume the moment it reboots) is
        //    staged back in — unless the per-column view still holds
        //    `thresh` or more suspect columns, in which case keepalives on
        //    the surviving columns must not resurrect an escalated node.
        //    Quarantined liars never come back: their carrier is healthy
        //    (keepalives arrive every epoch), so silence-based readmission
        //    would instantly resurrect them.
        for p in 0..n as u32 {
            let p = NodeId(p);
            if self
                .faults
                .byz
                .as_ref()
                .is_some_and(|b| b.quarantined[p.0 as usize])
            {
                continue;
            }
            let still_escalated = self
                .detect
                .link_det
                .as_ref()
                .is_some_and(|ld| ld.suspected_count(p) >= thresh);
            if self.failure_plane.is_excluded(p)
                && self.failure_plane.pending(p) != Some(false)
                && !still_escalated
                && self.detect.last_heard_any[p.0 as usize] + 1 >= epoch
            {
                self.sched.stage_readmit(p, epoch + 1);
                self.failure_plane.stage_restore(p, epoch + 1);
            }
        }

        // 4b. Column readmission: an omitted column still carries the
        //    keepalive carrier on its dead slots, so the moment its
        //    receivers hear it again (grey window healed) it is staged
        //    back into the schedule.
        if let Some(ld) = &self.detect.link_det {
            for (p, c) in self.sched.omitted_columns() {
                if self.sched.pending_column(p, c) != Some(false)
                    && !self.failure_plane.is_failed(p)
                    && ld.last_heard(p, c.0 as usize) + 1 >= epoch
                {
                    self.sched.stage_readmit_column(p, c, epoch + 1);
                }
            }
        }

        // 5. Update epoch: the data plane (dead slots) and the VLB view
        //    must apply the identical staged set at the identical boundary.
        let applied = self.sched.advance_to(epoch);
        let routed = self.failure_plane.sync_to_vlb(&mut self.vlb, epoch);
        debug_assert_eq!(
            applied.nodes, routed,
            "schedule and VLB routing views diverged at epoch {epoch}"
        );
        for &(node, excluded) in &applied.nodes {
            if excluded {
                self.faults.report.exclusions += 1;
                // Granted cells queued for the now-dead-slot intermediate
                // would strand until grant expiry; pull them back to LOCAL
                // (front, order preserved) so they re-request live detours.
                for o in 0..n {
                    if o != node.0 as usize && !self.failure_plane.is_failed(NodeId(o as u32)) {
                        self.nodes[o].reclaim_voq(node);
                    }
                }
                if let Some(rec) = self
                    .faults
                    .report
                    .failures
                    .iter_mut()
                    .rev()
                    .find(|r| r.node == node && r.excluded_at.is_none())
                {
                    rec.excluded_at = Some(epoch);
                }
            } else {
                self.faults.report.readmissions += 1;
                if let Some(rec) = self
                    .faults
                    .report
                    .failures
                    .iter_mut()
                    .rev()
                    .find(|r| r.node == node && r.readmitted_at.is_none())
                {
                    rec.readmitted_at = Some(epoch);
                }
            }
        }
        for &(node, uplink, omitted) in &applied.columns {
            if omitted {
                self.faults.report.column_omissions += 1;
                obs.note_column_omitted(node, uplink.0, true);
                if let Some(rec) = self
                    .faults
                    .report
                    .links
                    .iter_mut()
                    .rev()
                    .find(|r| r.node == node && r.uplink == uplink.0)
                {
                    if rec.omitted_at.is_none() {
                        rec.omitted_at = Some(epoch);
                    }
                }
                // At uplink factor 1 each (src, dst) pair rides exactly
                // one column, so the dropped column fully severs `node`
                // from the destination group it alone served. Pull back
                // every cell already committed to a now-dead path so it
                // re-requests a live detour instead of stranding until
                // grant expiry.
                let stranded: Vec<bool> = (0..n as u32)
                    .map(|d| !self.sched.pair_usable(node, NodeId(d)))
                    .collect();
                let p = node.0 as usize;
                for o in 0..n {
                    // Cells at other sources granted through `node` whose
                    // second hop `node -> dst` died.
                    if o != p && !self.failure_plane.is_failed(NodeId(o as u32)) {
                        let pulled =
                            self.nodes[o].reclaim_voq_where(node, |d| stranded[d.0 as usize]);
                        self.faults.report.cells_rerouted += pulled as u64;
                    }
                }
                for (m, &dead) in stranded.iter().enumerate() {
                    // `node`'s own granted cells whose first hop
                    // `node -> intermediate` died.
                    if m != p && dead {
                        let pulled = self.nodes[p].reclaim_voq(NodeId(m as u32));
                        self.faults.report.cells_rerouted += pulled as u64;
                    }
                }
                for (d, &dead) in stranded.iter().enumerate() {
                    // Relay cells already queued at `node` whose second
                    // hop died: rejoin LOCAL for a fresh detour (in
                    // place — the cells never leave the node's arena).
                    if d != p && dead {
                        let moved = self.nodes[p].reroute_relay_to_local(NodeId(d as u32));
                        self.faults.report.cells_rerouted += moved as u64;
                    }
                }
            } else {
                self.faults.report.column_readmissions += 1;
                obs.note_column_omitted(node, uplink.0, false);
                if let Some(rec) = self
                    .faults
                    .report
                    .links
                    .iter_mut()
                    .rev()
                    .find(|r| r.node == node && r.uplink == uplink.0)
                {
                    if rec.readmitted_at.is_none() {
                        rec.readmitted_at = Some(epoch);
                    }
                }
            }
        }
    }
}
