//! Zero-cost audit observation for the slot engine.
//!
//! The invariant audit ([`crate::audit`]) probes the hot loop at every
//! reception, transmission and delivery. Routing those probes through a
//! trait with a const `ENABLED` flag lets the engine monomorphize two
//! copies of the run loop: the audited copy delegates to the real
//! [`Audit`], and the release copy ([`NullObserver`]) compiles every
//! probe down to nothing — not even the disabled-audit branch the old
//! monolithic loop paid per event.
//!
//! **Observation order contract:** audit-enabled runs always take the
//! serial loop ([`crate::sirius_net::SiriusSim::run_loop`]), so every
//! probe — including the deliver-phase ones (`note_delivery`,
//! `note_blackholed`, `note_forged_dropped`), which
//! [`crate::engine::deliver::deliver_range`] fires from inside the
//! range-parameterized pass — observes events in the serial (due-index)
//! order. Sharded runs instantiate the workers with [`NullObserver`]
//! only; an observer with state must never be handed to a shard worker,
//! because per-shard probe order is the shard's local order, not the
//! global one.

use crate::audit::{Audit, LossCause};
use sirius_core::cell::Cell;
use sirius_core::node::SiriusNode;
use sirius_core::topology::NodeId;

/// Per-slot observation points of the engine. Mirrors the [`Audit`]
/// probe API; see the methods of the same names there for semantics.
pub(crate) trait SlotObserver {
    /// `true` only for observers that do work. The engine consults this
    /// to skip *computing probe inputs* (e.g. the in-flight sum fed to
    /// `epoch_check`); the probe calls themselves need no guard — the
    /// null impls inline to nothing.
    const ENABLED: bool;

    fn note_rx(&mut self, slot: u64, dst: NodeId, uplink: u16);
    fn note_rx_mistuned(&mut self, slot: u64, dst: NodeId, uplink: u16);
    fn note_data_tx(&mut self, slot: u64, node: NodeId, uplink: u16);
    fn end_slot(&mut self);
    fn note_injected(&mut self);
    fn note_delivery(&mut self, cell: &Cell, released_cells: u32);
    fn note_lost(&mut self, cause: LossCause, node: NodeId, epoch: u64);
    fn note_blackholed(&mut self, node: NodeId, epoch: u64);
    fn note_suspicion(&mut self, epoch: u64, node: NodeId);
    fn note_column_omitted(&mut self, node: NodeId, uplink: u16, omitted: bool);
    fn note_forged_tx(&mut self, node: NodeId, epoch: u64);
    fn note_forged_dropped(&mut self);
    fn epoch_check(&mut self, epoch: u64, nodes: &[SiriusNode], in_flight: u64);
}

/// The release path: every probe is a no-op the optimizer erases.
pub(crate) struct NullObserver;

impl SlotObserver for NullObserver {
    const ENABLED: bool = false;

    #[inline(always)]
    fn note_rx(&mut self, _: u64, _: NodeId, _: u16) {}
    #[inline(always)]
    fn note_rx_mistuned(&mut self, _: u64, _: NodeId, _: u16) {}
    #[inline(always)]
    fn note_data_tx(&mut self, _: u64, _: NodeId, _: u16) {}
    #[inline(always)]
    fn end_slot(&mut self) {}
    #[inline(always)]
    fn note_injected(&mut self) {}
    #[inline(always)]
    fn note_delivery(&mut self, _: &Cell, _: u32) {}
    #[inline(always)]
    fn note_lost(&mut self, _: LossCause, _: NodeId, _: u64) {}
    #[inline(always)]
    fn note_blackholed(&mut self, _: NodeId, _: u64) {}
    #[inline(always)]
    fn note_suspicion(&mut self, _: u64, _: NodeId) {}
    #[inline(always)]
    fn note_column_omitted(&mut self, _: NodeId, _: u16, _: bool) {}
    #[inline(always)]
    fn note_forged_tx(&mut self, _: NodeId, _: u64) {}
    #[inline(always)]
    fn note_forged_dropped(&mut self) {}
    #[inline(always)]
    fn epoch_check(&mut self, _: u64, _: &[SiriusNode], _: u64) {}
}

/// The audited path: owns the run's [`Audit`] for the duration of the
/// loop (the simulator takes it back via [`into_audit`] afterward) and
/// forwards every probe.
///
/// [`into_audit`]: AuditObserver::into_audit
pub(crate) struct AuditObserver {
    audit: Audit,
}

impl AuditObserver {
    pub fn new(audit: Audit) -> AuditObserver {
        AuditObserver { audit }
    }

    pub fn into_audit(self) -> Audit {
        self.audit
    }
}

impl SlotObserver for AuditObserver {
    const ENABLED: bool = true;

    #[inline]
    fn note_rx(&mut self, slot: u64, dst: NodeId, uplink: u16) {
        self.audit.note_rx(slot, dst, uplink);
    }
    #[inline]
    fn note_rx_mistuned(&mut self, slot: u64, dst: NodeId, uplink: u16) {
        self.audit.note_rx_mistuned(slot, dst, uplink);
    }
    #[inline]
    fn note_data_tx(&mut self, slot: u64, node: NodeId, uplink: u16) {
        self.audit.note_data_tx(slot, node, uplink);
    }
    #[inline]
    fn end_slot(&mut self) {
        self.audit.end_slot();
    }
    #[inline]
    fn note_injected(&mut self) {
        self.audit.note_injected();
    }
    #[inline]
    fn note_delivery(&mut self, cell: &Cell, released_cells: u32) {
        self.audit.note_delivery(cell, released_cells);
    }
    #[inline]
    fn note_lost(&mut self, cause: LossCause, node: NodeId, epoch: u64) {
        self.audit.note_lost(cause, node, epoch);
    }
    #[inline]
    fn note_blackholed(&mut self, node: NodeId, epoch: u64) {
        self.audit.note_blackholed(node, epoch);
    }
    #[inline]
    fn note_suspicion(&mut self, epoch: u64, node: NodeId) {
        self.audit.note_suspicion(epoch, node);
    }
    #[inline]
    fn note_column_omitted(&mut self, node: NodeId, uplink: u16, omitted: bool) {
        self.audit.note_column_omitted(node, uplink, omitted);
    }
    #[inline]
    fn note_forged_tx(&mut self, node: NodeId, epoch: u64) {
        self.audit.note_forged_tx(node, epoch);
    }
    #[inline]
    fn note_forged_dropped(&mut self) {
        self.audit.note_forged_dropped();
    }
    #[inline]
    fn epoch_check(&mut self, epoch: u64, nodes: &[SiriusNode], in_flight: u64) {
        self.audit.epoch_check(epoch, nodes, in_flight);
    }
}
