//! DeliverPlane: the propagation ring and arrival processing.
//!
//! Cells launched at slot `s` land at slot `s + prop_slots`; the ring
//! buffer holds them in flight. An arriving cell is either relayed (VLB
//! first hop), bounced back to LOCAL (its second hop died under column
//! repair), or delivered into the destination server's reorder buffer.

use crate::engine::observer::SlotObserver;
use crate::sirius_net::SiriusSim;
use sirius_core::cell::Cell;
use sirius_core::reorder::ReorderBuffer;
use sirius_core::topology::NodeId;
use sirius_core::units::Time;

pub(crate) struct DeliverPlane {
    /// Delivery pipeline: ring indexed by arrival slot.
    pub ring: Vec<Vec<(NodeId, Cell)>>,
    pub reorder: Vec<ReorderBuffer>,
    pub digest: crate::audit::RunDigest,
    pub delivered_bytes: u64,
    pub cells_delivered: u64,
    pub completed: u64,
    pub last_delivery: Time,
}

impl DeliverPlane {
    pub fn new(ring_len: usize, servers: usize) -> DeliverPlane {
        DeliverPlane {
            ring: vec![Vec::new(); ring_len],
            reorder: (0..servers).map(|_| ReorderBuffer::new()).collect(),
            digest: crate::audit::RunDigest::new(),
            delivered_bytes: 0,
            cells_delivered: 0,
            completed: 0,
            last_delivery: Time::ZERO,
        }
    }
}

impl SiriusSim {
    /// Process a cell arriving at `dst` (relay or final delivery).
    pub(crate) fn deliver_cell<O: SlotObserver>(
        &mut self,
        dst: NodeId,
        cell: Cell,
        now: Time,
        epoch: u64,
        obs: &mut O,
    ) {
        if self.failure_plane.is_failed(dst) {
            obs.note_blackholed(dst, epoch);
            self.faults.report.cells_lost_crash += 1;
            return; // blackholed until routing learns of the failure
        }
        // A cell reaching its intermediate after a column omission severed
        // the second hop would strand in the relay queue until the column
        // heals; consume its reservation and bounce it back to LOCAL for a
        // fresh request/grant round through a live detour.
        if cell.dst != dst
            && self.sched.has_omitted_columns()
            && !self.sched.pair_usable(dst, cell.dst)
        {
            self.faults.report.cells_rerouted += 1;
            self.tx.release_rerouted(dst, cell.dst);
            self.nodes[dst.0 as usize].reroute_arrival(cell);
            return;
        }
        match self.nodes[dst.0 as usize].receive_cell(cell) {
            None => {} // queued for relay (ideal occupancy already counted)
            Some(cell) => {
                self.delivery.cells_delivered += 1;
                self.delivery
                    .digest
                    .update_cell(&cell, now.since(Time::ZERO).as_ps());
                let d = self.delivery.reorder[cell.dst_server.0 as usize].accept(
                    cell.flow,
                    cell.seq,
                    cell.payload,
                );
                obs.note_delivery(&cell, d.cells);
                if d.bytes > 0 {
                    let f = &mut self.flows[cell.flow.0 as usize];
                    f.delivered += d.bytes;
                    self.delivery.delivered_bytes += d.bytes;
                    self.delivery.last_delivery = now;
                    if f.delivered >= f.bytes && f.completion.is_none() {
                        f.completion = Some(now);
                        self.delivery.completed += 1;
                        self.delivery.reorder[cell.dst_server.0 as usize].finish_flow(cell.flow);
                    }
                }
            }
        }
    }
}
