//! DeliverPlane: the propagation ring and arrival processing.
//!
//! Cells launched at slot `s` land at slot `s + prop_slots`; the ring
//! buffer holds them in flight. An arriving cell is either relayed (VLB
//! first hop), bounced back to LOCAL (its second hop died under column
//! repair), or delivered into the destination server's reorder buffer.

use crate::engine::observer::SlotObserver;
use crate::sirius_net::{CcMode, SiriusSim};
use sirius_core::cell::Cell;
use sirius_core::reorder::ReorderBuffer;
use sirius_core::topology::NodeId;
use sirius_core::units::Time;

pub(crate) struct DeliverPlane {
    /// Delivery pipeline: ring indexed by arrival slot. Each entry is
    /// (receiver, RX uplink, cell); the uplink plus the launch slot name
    /// the scheduled transmitter, which Byzantine attribution needs.
    pub ring: Vec<Vec<(NodeId, u16, Cell)>>,
    pub reorder: Vec<ReorderBuffer>,
    pub digest: crate::audit::RunDigest,
    pub delivered_bytes: u64,
    pub cells_delivered: u64,
    pub completed: u64,
    pub last_delivery: Time,
}

impl DeliverPlane {
    pub fn new(ring_len: usize, servers: usize) -> DeliverPlane {
        DeliverPlane {
            ring: vec![Vec::new(); ring_len],
            reorder: (0..servers).map(|_| ReorderBuffer::new()).collect(),
            digest: crate::audit::RunDigest::new(),
            delivered_bytes: 0,
            cells_delivered: 0,
            completed: 0,
            last_delivery: Time::ZERO,
        }
    }
}

impl SiriusSim {
    /// Process a cell arriving at `dst` (relay or final delivery).
    ///
    /// `uplink` is the RX port the cell landed on and `launch_t` the
    /// slot-in-epoch it was launched at — together, with the schedule
    /// inverse, they name the one node allowed to transmit into this
    /// (receiver, port, slot), which is how counterfeits are attributed.
    #[allow(clippy::too_many_arguments)] // one hot call site per ring slot
    pub(crate) fn deliver_cell<O: SlotObserver>(
        &mut self,
        dst: NodeId,
        uplink: u16,
        cell: Cell,
        launch_t: u16,
        now: Time,
        epoch: u64,
        obs: &mut O,
    ) {
        // Data-plane Byzantine filter (mirrors the §4.4 slew-clamp idea:
        // validate locally, bound the liar's damage per epoch). Armed
        // only when the script declares Byzantine nodes; runs before the
        // crash blackhole so forged cells aimed at dead nodes are still
        // dropped as forgeries, keeping conservation exact.
        if let Some(bz) = self.faults.byz.as_ref() {
            let forged =
                // A counterfeit cannot name a real flow: receivers check
                // the header against their flow table.
                cell.flow.0 as usize >= self.flows.len()
                    || if cell.dst == dst {
                        // Delivered-type: endpoints must match the flow
                        // table's record for that flow.
                        let f = &self.flows[cell.flow.0 as usize];
                        let spn = self.cfg.network.servers_per_node as u32;
                        NodeId(f.src_server / spn) != cell.src
                            || NodeId(f.dst_server / spn) != cell.dst
                            || cell.dst_server.0 != f.dst_server
                    } else {
                        // Relay-type: the claimed origin must be the
                        // slot's scheduled transmitter — sound only while
                        // no link faults can reparent cells (column
                        // repair bounces relays back to LOCAL at other
                        // nodes, which relaunches them off-origin) — and
                        // in Protocol mode a relay arrival must match a
                        // live reservation (stale-grant replay check;
                        // grant_timeout's VOQ-wait floor guarantees
                        // legitimate relays always find one).
                        (!self.faults.injector.has_link_faults()
                            && cell.src != bz.expected_src(dst, uplink, launch_t))
                            || (self.tx.mode == CcMode::Protocol
                                && self.nodes[dst.0 as usize].cc.outstanding(cell.dst) == 0)
                    };
            if forged {
                // Blame the scheduled transmitter for the slot, not the
                // forged header: physics pins which laser lit this port.
                let liar = bz.expected_src(dst, uplink, launch_t);
                let bz = self.faults.byz.as_mut().unwrap();
                bz.suspicion[liar.0 as usize] += 1;
                self.faults.report.cells_forged_dropped += 1;
                obs.note_forged_dropped();
                return;
            }
        }
        if self.failure_plane.is_failed(dst) {
            obs.note_blackholed(dst, epoch);
            self.faults.report.cells_lost_crash += 1;
            return; // blackholed until routing learns of the failure
        }
        // A cell reaching its intermediate after a column omission severed
        // the second hop would strand in the relay queue until the column
        // heals; consume its reservation and bounce it back to LOCAL for a
        // fresh request/grant round through a live detour.
        if cell.dst != dst
            && self.sched.has_omitted_columns()
            && !self.sched.pair_usable(dst, cell.dst)
        {
            self.faults.report.cells_rerouted += 1;
            self.tx.release_rerouted(dst, cell.dst);
            self.nodes[dst.0 as usize].reroute_arrival(cell);
            return;
        }
        match self.nodes[dst.0 as usize].receive_cell(cell) {
            None => {} // queued for relay (ideal occupancy already counted)
            Some(cell) => {
                self.delivery.cells_delivered += 1;
                self.delivery
                    .digest
                    .update_cell(&cell, now.since(Time::ZERO).as_ps());
                let d = self.delivery.reorder[cell.dst_server.0 as usize].accept(
                    cell.flow,
                    cell.seq,
                    cell.payload,
                );
                obs.note_delivery(&cell, d.cells);
                if d.bytes > 0 {
                    let fi = cell.flow.0 as usize;
                    self.flows[fi].delivered += d.bytes;
                    self.delivery.delivered_bytes += d.bytes;
                    self.delivery.last_delivery = now;
                    let f = &self.flows[fi];
                    if f.delivered >= f.bytes && f.completion.is_none() {
                        self.flows[fi].completion = Some(now);
                        self.delivery.completed += 1;
                        self.delivery.reorder[cell.dst_server.0 as usize].finish_flow(cell.flow);
                        // Streaming mode: the flow's every cell has been
                        // delivered and its reorder entry retired, so its
                        // slab slot can be recycled immediately.
                        if self.evict_completed {
                            self.fold_and_evict(fi as u32);
                        }
                    }
                }
            }
        }
    }
}
