//! DeliverPlane: the propagation ring and arrival processing.
//!
//! Cells launched at slot `s` land at slot `s + prop_slots`; the ring
//! buffer holds them in flight. An arriving cell is either relayed (VLB
//! first hop), bounced back to LOCAL (its second hop died under column
//! repair), or delivered into the destination server's reorder buffer.
//!
//! # Receiver partition
//!
//! Every arrival effect is local to the *receiving* node `j`: its relay
//! queues and CC counters (`receive_cell`), its servers' reorder
//! buffers, and the flow records of flows terminating at `j` (a flow
//! terminates at exactly one receiver). [`deliver_range`] is therefore
//! range-parameterized over receivers — the serial engine runs it over
//! the full range, the sharded engine runs it per shard over that
//! shard's receiver range (see `crate::engine::shard`) — with the two
//! classes of non-local effect deferred into a [`DeliverOut`]:
//!
//! * **Ordered** — the FNV digest over the delivered-cell sequence and
//!   the streaming eviction replay (`fold_and_evict` touches the global
//!   flow-slab free list and the order-sensitive stream digest). Workers
//!   record `(due index, cell, completed)`; the main thread k-way merges
//!   by due index and folds in canonical sequence
//!   ([`SiriusSim::fold_delivery`]) — byte-identical to serial by
//!   construction.
//! * **Commutative** — loss/reroute/forgery counters, Byzantine
//!   suspicion sums (read only at the fault boundary), Ideal's
//!   shadow-occupancy releases (unread until the next TX phase) and
//!   `last_delivery` (every in-order delivery in a slot writes the same
//!   `now`). Applied per shard in shard order
//!   ([`SiriusSim::apply_deliver_effects`]).

use crate::engine::fault::ByzPlane;
use crate::engine::observer::SlotObserver;
use crate::sirius_net::{CcMode, FlowSt, SiriusSim};
use sirius_core::cell::Cell;
use sirius_core::fault::FailurePlane;
use sirius_core::node::SiriusNode;
use sirius_core::reorder::ReorderBuffer;
use sirius_core::repair::AdjustedSchedule;
use sirius_core::topology::NodeId;
use sirius_core::units::Time;

pub(crate) struct DeliverPlane {
    /// Delivery pipeline: ring indexed by arrival slot. Each entry is
    /// (receiver, RX uplink, cell); the uplink plus the launch slot name
    /// the scheduled transmitter, which Byzantine attribution needs.
    pub ring: Vec<Vec<(NodeId, u16, Cell)>>,
    pub reorder: Vec<ReorderBuffer>,
    pub digest: crate::audit::RunDigest,
    pub delivered_bytes: u64,
    pub cells_delivered: u64,
    pub completed: u64,
    pub last_delivery: Time,
}

impl DeliverPlane {
    pub fn new(ring_len: usize, servers: usize) -> DeliverPlane {
        DeliverPlane {
            ring: vec![Vec::new(); ring_len],
            reorder: (0..servers).map(|_| ReorderBuffer::new()).collect(),
            digest: crate::audit::RunDigest::new(),
            delivered_bytes: 0,
            cells_delivered: 0,
            completed: 0,
            last_delivery: Time::ZERO,
        }
    }
}

/// Raw element view over the flow slab for the deliver phase.
///
/// Arrival effects are receiver-local, but flow ids are
/// receiver-*interleaved* in slot order, so the slab cannot be split
/// into per-shard `&mut` ranges (two `&mut [FlowSt]` over one `Vec`
/// would be UB even if the indices never collided). Workers instead
/// index disjoint *elements* through this view; the receiver partition
/// of the due list guarantees two shards never touch the same element,
/// because a flow terminates at exactly one receiver.
#[derive(Clone, Copy)]
pub(crate) struct FlowSlots {
    ptr: *mut FlowSt,
    len: usize,
}

impl FlowSlots {
    pub(crate) fn new(ptr: *mut FlowSt, len: usize) -> FlowSlots {
        FlowSlots { ptr, len }
    }

    pub(crate) const fn empty() -> FlowSlots {
        FlowSlots {
            ptr: std::ptr::null_mut(),
            len: 0,
        }
    }

    /// Slab size (largest flow id ever issued + 1) — the Byzantine
    /// filter's range check. Frozen for the whole slot: the slab only
    /// grows at epoch boundaries, never mid-drain.
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// # Safety
    /// `i < len`, and the caller's shard must own flow `i`'s receiver:
    /// no other thread may access element `i` for the duration of the
    /// borrow.
    unsafe fn get(&self, i: usize) -> &FlowSt {
        debug_assert!(i < self.len);
        &*self.ptr.add(i)
    }

    /// # Safety
    /// As [`FlowSlots::get`], exclusively.
    #[allow(clippy::mut_from_ref)] // raw-element view; exclusivity is the caller's claim
    unsafe fn get_mut(&self, i: usize) -> &mut FlowSt {
        debug_assert!(i < self.len);
        &mut *self.ptr.add(i)
    }
}

/// One [`deliver_range`] pass's buffered non-local effects. Buffers keep
/// their high-water capacity across slots (cleared, never shrunk), so
/// the steady state allocates nothing.
#[derive(Debug, Default)]
pub(crate) struct DeliverOut {
    /// Final deliveries in due-list order: (due index, cell, completed
    /// now). The due index is the k-way-merge key that makes the digest
    /// fold — and the streaming eviction replay — byte-identical to
    /// serial.
    pub delivered: Vec<(u32, Cell, bool)>,
    pub delivered_bytes: u64,
    /// At least one in-order byte landed (`last_delivery` advances;
    /// every such assignment in one slot writes the same `now`).
    pub any_inorder: bool,
    pub lost_crash: u64,
    pub rerouted: u64,
    /// Ideal-mode shadow-occupancy releases for rerouted cells. The
    /// occupancy is unread until the next TX phase, so deferring the
    /// release to the epilogue is exact; `release_rerouted` is a no-op
    /// in the other modes, which skip the push entirely.
    pub reroute_release: Vec<(NodeId, NodeId)>,
    pub forged_dropped: u64,
    /// Scheduled transmitters blamed for counterfeits. `suspicion` is a
    /// commutative per-epoch sum read only at the fault boundary, so
    /// shard-order application is equivalent to due-order.
    pub byz_suspects: Vec<NodeId>,
}

impl DeliverOut {
    pub(crate) fn clear(&mut self) {
        self.delivered.clear();
        self.delivered_bytes = 0;
        self.any_inorder = false;
        self.lost_crash = 0;
        self.rerouted = 0;
        self.reroute_release.clear();
        self.forged_dropped = 0;
        self.byz_suspects.clear();
    }
}

/// Frozen slot inputs for [`deliver_range`], shared by the serial engine
/// (full range) and every shard worker (its receiver range). Everything
/// here is either read-only for the slot or element-disjoint by receiver
/// ([`FlowSlots`]).
pub(crate) struct DeliverCtx<'a> {
    pub mode: CcMode,
    pub byz: Option<&'a ByzPlane>,
    pub has_link_faults: bool,
    pub flows: FlowSlots,
    pub failures: &'a FailurePlane,
    pub sched: &'a AdjustedSchedule,
    /// Servers per node: maps a receiver range `[lo, hi)` onto its
    /// reorder-buffer range `[lo*spn, hi*spn)`.
    pub spn: u32,
    pub launch_t: u16,
    pub now: Time,
    pub epoch: u64,
}

/// Process the due list's arrivals for receivers `[lo, hi)` (relay or
/// final delivery), buffering non-local effects into `out`.
///
/// `nodes` and `reorder` are the *range* slices (`nodes[lo..hi]`,
/// `reorder[lo*spn..hi*spn]` of the global arrays). The full due list is
/// scanned in index order and entries outside the range skipped — so the
/// per-receiver effect order (CC counters, reorder accepts, flow-record
/// writes) is exactly the serial order, and the recorded due indices
/// reconstruct the global sequence at the merge.
///
/// Per entry, `uplink` is the RX port the cell landed on and
/// `ctx.launch_t` the slot-in-epoch it was launched at — together, with
/// the schedule inverse, they name the one node allowed to transmit into
/// this (receiver, port, slot), which is how counterfeits are attributed.
#[allow(clippy::too_many_arguments)] // one hot call site per ring slot
pub(crate) fn deliver_range<O: SlotObserver>(
    ctx: &DeliverCtx,
    lo: u32,
    hi: u32,
    nodes: &mut [SiriusNode],
    reorder: &mut [ReorderBuffer],
    due: &[(NodeId, u16, Cell)],
    out: &mut DeliverOut,
    obs: &mut O,
) {
    debug_assert_eq!(nodes.len(), (hi - lo) as usize);
    debug_assert_eq!(reorder.len(), ((hi - lo) * ctx.spn) as usize);
    let server_base = (lo * ctx.spn) as usize;
    for (idx, &(dst, uplink, cell)) in due.iter().enumerate() {
        if dst.0 < lo || dst.0 >= hi {
            continue;
        }
        let li = (dst.0 - lo) as usize;
        // Data-plane Byzantine filter (mirrors the §4.4 slew-clamp idea:
        // validate locally, bound the liar's damage per epoch). Armed
        // only when the script declares Byzantine nodes; runs before the
        // crash blackhole so forged cells aimed at dead nodes are still
        // dropped as forgeries, keeping conservation exact.
        if let Some(bz) = ctx.byz {
            let forged =
                // A counterfeit cannot name a real flow: receivers check
                // the header against their flow table.
                cell.flow.0 as usize >= ctx.flows.len()
                    || if cell.dst == dst {
                        // Delivered-type: endpoints must match the flow
                        // table's record for that flow.
                        // SAFETY: a genuine delivered-type cell was built
                        // from this record, whose flow terminates at this
                        // receiver (forged headers carry an out-of-range
                        // id and short-circuit above) — so the element is
                        // owned by this range.
                        let f = unsafe { ctx.flows.get(cell.flow.0 as usize) };
                        NodeId(f.src_server / ctx.spn) != cell.src
                            || NodeId(f.dst_server / ctx.spn) != cell.dst
                            || cell.dst_server.0 != f.dst_server
                    } else {
                        // Relay-type: the claimed origin must be the
                        // slot's scheduled transmitter — sound only while
                        // no link faults can reparent cells (column
                        // repair bounces relays back to LOCAL at other
                        // nodes, which relaunches them off-origin) — and
                        // in Protocol mode a relay arrival must match a
                        // live reservation (stale-grant replay check;
                        // grant_timeout's VOQ-wait floor guarantees
                        // legitimate relays always find one).
                        (!ctx.has_link_faults
                            && cell.src != bz.expected_src(dst, uplink, ctx.launch_t))
                            || (ctx.mode == CcMode::Protocol
                                && nodes[li].cc.outstanding(cell.dst) == 0)
                    };
            if forged {
                // Blame the scheduled transmitter for the slot, not the
                // forged header: physics pins which laser lit this port.
                out.byz_suspects
                    .push(bz.expected_src(dst, uplink, ctx.launch_t));
                out.forged_dropped += 1;
                obs.note_forged_dropped();
                continue;
            }
        }
        if ctx.failures.is_failed(dst) {
            obs.note_blackholed(dst, ctx.epoch);
            out.lost_crash += 1;
            continue; // blackholed until routing learns of the failure
        }
        // A cell reaching its intermediate after a column omission severed
        // the second hop would strand in the relay queue until the column
        // heals; consume its reservation and bounce it back to LOCAL for a
        // fresh request/grant round through a live detour.
        if cell.dst != dst
            && ctx.sched.has_omitted_columns()
            && !ctx.sched.pair_usable(dst, cell.dst)
        {
            out.rerouted += 1;
            if ctx.mode == CcMode::Ideal {
                out.reroute_release.push((dst, cell.dst));
            }
            nodes[li].reroute_arrival(cell);
            continue;
        }
        match nodes[li].receive_cell(cell) {
            None => {} // queued for relay (ideal occupancy already counted)
            Some(cell) => {
                let d = reorder[cell.dst_server.0 as usize - server_base].accept(
                    cell.flow,
                    cell.seq,
                    cell.payload,
                );
                obs.note_delivery(&cell, d.cells);
                let mut completed = false;
                if d.bytes > 0 {
                    out.delivered_bytes += d.bytes;
                    out.any_inorder = true;
                    let fi = cell.flow.0 as usize;
                    // SAFETY: a delivered cell's flow terminates at this
                    // receiver; elements are receiver-disjoint across
                    // shard ranges (see FlowSlots).
                    let f = unsafe { ctx.flows.get_mut(fi) };
                    f.delivered += d.bytes;
                    if f.delivered >= f.bytes && f.completion.is_none() {
                        f.completion = Some(ctx.now);
                        reorder[cell.dst_server.0 as usize - server_base].finish_flow(cell.flow);
                        completed = true;
                    }
                }
                out.delivered.push((idx as u32, cell, completed));
            }
        }
    }
}

impl SiriusSim {
    /// Fold one final delivery in canonical (due-index) order: the digest
    /// update and — in streaming mode — the eviction replay are the only
    /// arrival effects that are order-sensitive *across* receivers, so
    /// they alone run serially on the main thread.
    #[inline]
    pub(crate) fn fold_delivery(&mut self, cell: &Cell, completed: bool, now_ps: u64) {
        self.delivery.cells_delivered += 1;
        self.delivery.digest.update_cell(cell, now_ps);
        if completed {
            self.delivery.completed += 1;
            // Streaming mode: the flow's every cell has been delivered
            // and its reorder entry retired, so its slab slot can be
            // recycled. Replayed here in due order because eviction
            // touches the global free list (LIFO — the order decides
            // future flow-id allocation) and the order-sensitive stream
            // digest.
            if self.evict_completed {
                self.fold_and_evict(cell.flow.0 as u32);
            }
        }
    }

    /// Apply one [`DeliverOut`]'s order-insensitive effects: commutative
    /// counters and sums, plus Ideal's deferred shadow-occupancy
    /// releases. Clears `out` (buffers keep their capacity).
    pub(crate) fn apply_deliver_effects(&mut self, out: &mut DeliverOut, now: Time) {
        self.delivery.delivered_bytes += out.delivered_bytes;
        if out.any_inorder {
            self.delivery.last_delivery = now;
        }
        self.faults.report.cells_lost_crash += out.lost_crash;
        self.faults.report.cells_rerouted += out.rerouted;
        self.faults.report.cells_forged_dropped += out.forged_dropped;
        if let Some(bz) = self.faults.byz.as_mut() {
            for liar in &out.byz_suspects {
                bz.suspicion[liar.0 as usize] += 1;
            }
        }
        for &(at, dst) in &out.reroute_release {
            self.tx.release_rerouted(at, dst);
        }
        out.clear();
    }

    /// Serial epilogue for a single full-range [`deliver_range`] pass:
    /// the records are already in due order, so the "merge" degenerates
    /// to one linear fold.
    pub(crate) fn apply_deliver_out(&mut self, out: &mut DeliverOut, now: Time) {
        let now_ps = now.since(Time::ZERO).as_ps();
        for i in 0..out.delivered.len() {
            let (_, cell, completed) = out.delivered[i];
            self.fold_delivery(&cell, completed, now_ps);
        }
        self.apply_deliver_effects(out, now);
    }
}
