//! TxPlane: the per-(node, uplink) transmit decision.
//!
//! Owns the congestion-control mode dispatch and, in ideal mode, the
//! back-pressure shadow occupancy (in-flight + queued cells per
//! (intermediate, destination) pair) that stands in for the paper's
//! zero-latency global-knowledge back-pressure bound.

use crate::sirius_net::CcMode;
use sirius_core::cell::Cell;
use sirius_core::node::{SiriusNode, SlotTx};
use sirius_core::topology::NodeId;

pub(crate) struct TxPlane {
    pub mode: CcMode,
    /// Ideal-mode back-pressure shadow: in-flight + queued cells per
    /// (intermediate, destination); empty in the other modes.
    pub ideal_occ: Vec<u32>,
    n: usize,
    q: u32,
}

impl TxPlane {
    pub fn new(mode: CcMode, n: usize, q: u32) -> TxPlane {
        TxPlane {
            mode,
            ideal_occ: if mode == CcMode::Ideal {
                vec![0; n * n]
            } else {
                Vec::new()
            },
            n,
            q,
        }
    }

    /// Whether `node` cannot possibly transmit a cell this slot, on any
    /// uplink: the protocol sends only fabric (VOQ + relay) cells, the
    /// ideal/greedy modes also launch straight from LOCAL. Skipping an
    /// idle node is behavior-free — every per-uplink [`transmit`] call
    /// would return [`SlotTx::Idle`] without touching any state.
    #[inline]
    pub fn node_idle(&self, node: &SiriusNode) -> bool {
        match self.mode {
            CcMode::Protocol => node.fabric_cells() == 0,
            CcMode::Ideal | CcMode::Greedy => node.resident_cells() == 0,
        }
    }

    /// One transmit opportunity from node `i` toward scheduled
    /// destination `j`, dispatched on the run's CC mode. Ideal mode
    /// updates its shadow occupancy for launches and relay departures.
    #[inline]
    pub fn transmit(&mut self, nodes: &mut [SiriusNode], i: usize, j: NodeId) -> SlotTx {
        match self.mode {
            CcMode::Protocol => nodes[i].transmit(j),
            CcMode::Greedy => {
                // No back-pressure: any cell may detour via j.
                nodes[i].ideal_transmit(j, |_| true)
            }
            CcMode::Ideal => {
                let occ = &self.ideal_occ;
                let n = self.n;
                let q = self.q;
                let jn = j.0 as usize;
                let tx = nodes[i].ideal_transmit(j, |d| occ[jn * n + d.0 as usize] < q);
                match tx {
                    // Launch toward intermediate j: occupancy
                    // (in-flight + queued) rises.
                    SlotTx::ToIntermediate(c) if c.dst != j => {
                        self.ideal_occ[jn * n + c.dst.0 as usize] += 1;
                    }
                    // Second hop departs intermediate i: free it.
                    SlotTx::Relay(c) => {
                        self.ideal_occ[i * n + c.dst.0 as usize] -= 1;
                    }
                    _ => {}
                }
                tx
            }
        }
    }

    /// A launch that was counted into the ideal-mode shadow occupancy was
    /// lost in flight and never arrives.
    #[inline]
    pub fn undo_lost_launch(&mut self, j: NodeId, c: &Cell, to_intermediate: bool) {
        if self.mode == CcMode::Ideal && to_intermediate && c.dst != j {
            self.ideal_occ[j.0 as usize * self.n + c.dst.0 as usize] -= 1;
        }
    }

    /// A relay cell bounced back to LOCAL at intermediate `at` (column
    /// omission severed its second hop) frees its occupancy reservation.
    #[inline]
    pub fn release_rerouted(&mut self, at: NodeId, dst: NodeId) {
        if self.mode == CcMode::Ideal {
            self.ideal_occ[at.0 as usize * self.n + dst.0 as usize] -= 1;
        }
    }
}
