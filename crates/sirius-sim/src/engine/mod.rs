//! The slot engine: [`SiriusSim::run`]'s hot loop, decomposed into
//! per-slot planes.
//!
//! | Plane | Owns | Per-slot work |
//! |-------|------|---------------|
//! | [`FaultPlane`] | fault script, active windows, report | mistune pre-pass, grey draws |
//! | [`DetectPlane`] | silence detectors (§4.5) | keepalive credit |
//! | [`TxPlane`] | CC-mode dispatch, ideal shadow occupancy | per-(node, uplink) transmit |
//! | [`DeliverPlane`] | propagation ring, reorder buffers, digest | arrival processing |
//!
//! Two structural decisions buy the engine its throughput without
//! touching behavior (the golden digests pin this):
//!
//! * **Observer monomorphization** ([`observer`]): the invariant audit
//!   reaches the loop through [`SlotObserver`]; the release path runs the
//!   [`NullObserver`] instantiation where every probe compiles away.
//! * **Fault-free fast path**: a run with an empty fault script skips
//!   the fault boundary, the detector credit (1,536 `heard_from` calls
//!   per slot at paper scale), the omission overlay checks and the
//!   erasure/corruption lookups. This is sound because every one of
//!   those mechanisms is observable only through scripted faults: with
//!   nothing scripted, detectors are fed every slot and never ticked,
//!   the schedule never stages an omission, and the protocol RNG stream
//!   is untouched either way.
//!
//! Per-slot invariants are hoisted: destinations come from a
//! precomputed [`DestTable`] row instead of div/mod chains, and the
//! epoch-slot cursor and both ring indices advance incrementally.

pub(crate) mod deliver;
pub(crate) mod detect;
pub(crate) mod fault;
pub(crate) mod observer;
pub(crate) mod shard;
pub(crate) mod tables;
pub(crate) mod tx;

pub(crate) use deliver::DeliverPlane;
pub(crate) use detect::DetectPlane;
pub(crate) use fault::FaultPlane;
pub(crate) use observer::{AuditObserver, NullObserver, SlotObserver};
pub(crate) use tables::DestTable;
pub(crate) use tx::TxPlane;

use crate::audit::LossCause;
use crate::sirius_net::{CcMode, FlowSource, SiriusSim};
use rand::Rng;
use sirius_core::node::SlotTx;
use sirius_core::schedule::SlotInEpoch;
use sirius_core::topology::{NodeId, UplinkId};
use sirius_core::units::Time;

/// Per-plane wall-clock accumulators, populated only when
/// [`crate::SiriusSimConfig::plane_timing`] is on (surfaced as
/// `tx_secs`/`deliver_secs`/`merge_secs` in [`crate::RunMetrics`]).
/// `deliver` covers arrival processing (the parallel region on sharded
/// runs), `merge` the serial epilogue (ordered digest fold, eviction
/// replay, cross-shard effect application, TX-output merge), `tx` the
/// transmit phase including barrier waits.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct PlaneTimes {
    pub tx: std::time::Duration,
    pub deliver: std::time::Duration,
    pub merge: std::time::Duration,
}

/// Start a per-plane wall-clock mark. `None` when timing is off, so the
/// default path never touches the clock (a syscall per slot would cost
/// more than some planes do).
#[inline]
pub(crate) fn mark(timing: bool) -> Option<std::time::Instant> {
    timing.then(std::time::Instant::now)
}

/// Close a mark opened by [`mark`] into an accumulator.
#[inline]
pub(crate) fn lap(acc: &mut std::time::Duration, m: Option<std::time::Instant>) {
    if let Some(t) = m {
        *acc += t.elapsed();
    }
}

impl SiriusSim {
    /// The slot loop. Returns the absolute slot count at exit.
    ///
    /// Monomorphized per observer: the audited instantiation feeds the
    /// invariant audit, the [`NullObserver`] one is the release path.
    /// Generic over the flow source so the streaming path shares every
    /// instruction of the slice path's loop body.
    pub(crate) fn run_loop<S: FlowSource, O: SlotObserver>(
        &mut self,
        src: &mut S,
        obs: &mut O,
    ) -> u64 {
        let slot_ps = self.cfg.network.slot().as_ps();
        let epoch_slots = self.cfg.network.epoch_slots();
        let ring_len = self.delivery.ring.len();
        let prop_slots = self.prop_slots as u64;
        let has_faults = !self.faults.injector.is_empty();
        let timing = self.cfg.plane_timing;
        let n_nodes = self.nodes.len() as u32;
        let spn = self.cfg.network.servers_per_node as u32;

        let mut abs_slot: u64 = 0;
        // Hoisted per-slot derivations: the epoch-slot cursor, the epoch
        // counter and both ring cursors advance incrementally instead of
        // re-deriving div/mod every slot.
        let mut t: u64 = 0;
        let mut cur_epoch: u64 = 0;
        let mut ring_idx: usize = 0;
        let mut arrive_idx: usize = (prop_slots % ring_len as u64) as usize;

        while !src.finished(&self.flows, self.delivery.completed) && abs_slot < self.cfg.max_slots {
            let now = Time::from_ps(abs_slot * slot_ps);
            if now > src.deadline() {
                break;
            }
            if t == 0 {
                if has_faults {
                    self.fault_boundary(cur_epoch, obs);
                }
                self.epoch_boundary(cur_epoch, now, src, obs);
                if O::ENABLED {
                    let in_flight = self.delivery.ring.iter().map(|v| v.len() as u64).sum();
                    obs.epoch_check(cur_epoch, &self.nodes, in_flight);
                }
            }

            // DeliverPlane: cells whose propagation completes this slot,
            // through the same range function the shard workers run (full
            // range here), with the ordered fold as a serial epilogue —
            // per-receiver decisions cannot diverge between serial and
            // sharded. Take-and-put-back so each ring slot's buffer keeps
            // its warmed-up capacity instead of reallocating every lap.
            // Cells draining now were launched `prop_slots` ago; their
            // slot-in-epoch names the scheduled transmitter for the
            // Byzantine RX filter. (Wrapping is harmless: warmup ring
            // slots are empty.)
            let launch_t = (abs_slot.wrapping_sub(prop_slots) % epoch_slots) as u16;
            let mut due = std::mem::take(&mut self.delivery.ring[ring_idx]);
            if !due.is_empty() {
                let mut dout = std::mem::take(&mut self.deliver_scratch);
                let m = mark(timing);
                let ctx = deliver::DeliverCtx {
                    mode: self.tx.mode,
                    byz: self.faults.byz.as_ref(),
                    has_link_faults: self.faults.injector.has_link_faults(),
                    flows: self.flows.raw_view(),
                    failures: &self.failure_plane,
                    sched: &self.sched,
                    spn,
                    launch_t,
                    now,
                    epoch: cur_epoch,
                };
                deliver::deliver_range(
                    &ctx,
                    0,
                    n_nodes,
                    &mut self.nodes,
                    &mut self.delivery.reorder,
                    &due,
                    &mut dout,
                    obs,
                );
                lap(&mut self.plane_times.deliver, m);
                let m = mark(timing);
                self.apply_deliver_out(&mut dout, now);
                lap(&mut self.plane_times.merge, m);
                self.deliver_scratch = dout;
                due.clear();
            }
            self.delivery.ring[ring_idx] = due;

            let slot = SlotInEpoch(t as u16);
            let m = mark(timing);
            if has_faults {
                // Receptions this slot reach the detectors when the light
                // lands, one propagation later.
                let arrival_epoch = (abs_slot + prop_slots) / epoch_slots;
                self.slot_faulty(abs_slot, slot, arrive_idx, cur_epoch, arrival_epoch, obs);
            } else {
                self.slot_clean(abs_slot, slot, arrive_idx, obs);
            }
            lap(&mut self.plane_times.tx, m);
            obs.end_slot();

            abs_slot += 1;
            t += 1;
            if t == epoch_slots {
                t = 0;
                cur_epoch += 1;
            }
            ring_idx += 1;
            if ring_idx == ring_len {
                ring_idx = 0;
            }
            arrive_idx += 1;
            if arrive_idx == ring_len {
                arrive_idx = 0;
            }
        }
        abs_slot
    }

    /// Fault-free slot: no failed nodes, no omitted columns, no erasure
    /// or corruption, and no detector feeding (the fault boundary that
    /// would consume the credit never runs), so each (node, uplink)
    /// opportunity collapses to table lookup + transmit + ring push.
    fn slot_clean<O: SlotObserver>(
        &mut self,
        abs_slot: u64,
        t: SlotInEpoch,
        arrive_idx: usize,
        obs: &mut O,
    ) {
        if !O::ENABLED && self.tx.mode != CcMode::Ideal {
            // Same range function the shard workers run — per-node
            // decisions cannot diverge between serial and sharded.
            shard::tx_clean_range(
                self.tx.mode,
                &mut self.nodes,
                0,
                &self.tables,
                t,
                &mut self.delivery.ring[arrive_idx],
            );
            return;
        }
        let uplinks = self.tables.uplinks();
        let view = self.tables.slot_view(t);
        let ring = &mut self.delivery.ring[arrive_idx];
        for i in 0..self.nodes.len() {
            // A node with nothing sendable returns Idle on every uplink;
            // skip the per-uplink probes. The audit still wants its
            // per-slot reception feed, so only the unobserved path skips.
            if !O::ENABLED && self.tx.node_idle(&self.nodes[i]) {
                continue;
            }
            let row = view.node(i);
            for u in 0..uplinks as u16 {
                let j = row.at(u as usize);
                obs.note_rx(abs_slot, j, u);
                let tx = self.tx.transmit(&mut self.nodes, i, j);
                if let SlotTx::Relay(c) | SlotTx::ToIntermediate(c) = tx {
                    obs.note_data_tx(abs_slot, NodeId(i as u32), u);
                    ring.push((j, u, c));
                }
            }
        }
    }

    /// Fully-armed slot: mistune corruption, grey-erasure draws, detector
    /// credit, dead-slot (omission) checks and loss attribution — the
    /// original monolithic loop body, phrased against the planes.
    fn slot_faulty<O: SlotObserver>(
        &mut self,
        abs_slot: u64,
        t: SlotInEpoch,
        arrive_idx: usize,
        cur_epoch: u64,
        arrival_epoch: u64,
        obs: &mut O,
    ) {
        let n_nodes = self.tables.nodes();
        let uplinks = self.tables.uplinks();
        if self.faults.active.any_mistune() {
            self.faults
                .mistune_prepass(abs_slot, t, &self.failure_plane, &self.tables, obs);
        }
        if !O::ENABLED && self.tx.mode != CcMode::Ideal {
            // Same range function the shard workers run, over the full
            // node range, with the effects applied in the same order the
            // sharded merge uses — serial and sharded runs are identical
            // by construction.
            let mut out = std::mem::take(&mut self.fault_scratch);
            shard::tx_faulty_range(
                self.tx.mode,
                &mut self.nodes,
                &mut self.fault_rngs,
                0,
                &self.tables,
                &self.sched,
                &self.failure_plane,
                &self.faults,
                t,
                &mut out,
            );
            self.delivery.ring[arrive_idx].append(&mut out.ring);
            for &(ni, u, j) in &out.credits {
                self.detect.credit(ni, u, j, arrival_epoch);
            }
            out.credits.clear();
            self.faults.report.cells_lost_grey += out.lost_grey;
            self.faults.report.cells_lost_mistune += out.lost_mistune;
            self.faults.report.cells_forged += out.forged_tx;
            out.lost_grey = 0;
            out.lost_mistune = 0;
            out.forged_tx = 0;
            self.fault_scratch = out;
            self.faults.end_slot();
            return;
        }
        let view = self.tables.slot_view(t);
        for i in 0..n_nodes as u32 {
            let ni = NodeId(i);
            if self.failure_plane.is_failed(ni) {
                continue; // fail-stop: no data, no keepalive carrier
            }
            let mistuned = self.faults.active.mistune_of(ni).is_some();
            let row = view.node(i as usize);
            for u in 0..uplinks as u16 {
                let j = row.at(u as usize);
                // One erasure draw per scheduled slot on a grey link
                // (never per cell), from the sender's own RNG stream —
                // fault scripts leave the protocol RNG untouched, and the
                // draw sequence is independent of the shard partition.
                let grey_p = self.faults.active.grey_prob(ni, u, uplinks);
                let erased = self.faults.active.any_grey()
                    && grey_p > 0.0
                    && self.fault_rngs[i as usize].gen_bool(grey_p);
                let corrupted_by = self.faults.corrupted_by(j, u);
                if !mistuned {
                    obs.note_rx(abs_slot, j, u);
                }
                // §4.5 detection feeds on the carrier itself: any
                // well-tuned, non-erased transmission — idle keepalives
                // included — counts as "heard", which is why an alive
                // sender can never be falsely suspected.
                if !mistuned
                    && !erased
                    && corrupted_by.is_none()
                    && !self.failure_plane.is_failed(j)
                {
                    self.detect.credit(ni, u, j, arrival_epoch);
                }
                if self.sched.is_omitted(ni)
                    || self.sched.is_omitted(j)
                    || self.sched.is_column_omitted(ni, UplinkId(u))
                {
                    continue; // dead slot: keepalive carrier only
                }
                let tx = self.tx.transmit(&mut self.nodes, i as usize, j);
                let (cell, to_intermediate) = match tx {
                    SlotTx::Relay(c) => (Some(c), false),
                    SlotTx::ToIntermediate(c) => (Some(c), true),
                    SlotTx::Idle => {
                        // A Byzantine node fills its own idle slots with
                        // counterfeits — same draw discipline as the
                        // unobserved path in `shard::tx_faulty_range`.
                        let byz_p = self.faults.active.byz_prob(ni);
                        if byz_p > 0.0
                            && !mistuned
                            && !erased
                            && corrupted_by.is_none()
                            && self.fault_rngs[i as usize].gen_bool(byz_p)
                        {
                            let c =
                                shard::forge_cell(&mut self.fault_rngs[i as usize], ni, j, n_nodes);
                            obs.note_forged_tx(ni, cur_epoch);
                            self.faults.report.cells_forged += 1;
                            self.delivery.ring[arrive_idx].push((j, u, c));
                        }
                        (None, false)
                    }
                };
                if let Some(c) = cell {
                    // Safety net: the dead-slot check above must make
                    // this unreachable for omitted columns.
                    obs.note_data_tx(abs_slot, ni, u);
                    let lost = if mistuned {
                        Some((LossCause::Mistune, ni))
                    } else if erased {
                        Some((LossCause::Grey, ni))
                    } else {
                        corrupted_by.map(|m| (LossCause::Mistune, m))
                    };
                    match lost {
                        None => self.delivery.ring[arrive_idx].push((j, u, c)),
                        Some((cause, blame)) => {
                            obs.note_lost(cause, blame, cur_epoch);
                            match cause {
                                LossCause::Grey => self.faults.report.cells_lost_grey += 1,
                                LossCause::Mistune => self.faults.report.cells_lost_mistune += 1,
                                LossCause::Crash | LossCause::Byzantine => unreachable!(),
                            }
                            // The launch counted into the ideal-mode
                            // shadow occupancy never arrives.
                            self.tx.undo_lost_launch(j, &c, to_intermediate);
                        }
                    }
                }
            }
        }
        self.faults.end_slot();
    }
}
