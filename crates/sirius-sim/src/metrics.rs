//! Flow-level metrics: flow completion times, goodput, queue occupancy.
//!
//! These implement the measurements of §7: 99th-percentile FCT of short
//! flows (< 100 KB), average server goodput normalized by `N * R`, peak
//! aggregate queue occupancy per node, and peak per-flow reorder buffer.

use crate::audit::AuditReport;
use sirius_core::congestion::CcStats;
use sirius_core::units::{Duration, Rate, Time};

/// Record of one completed (or still-running) flow.
#[derive(Debug, Clone, Copy)]
pub struct FlowRecord {
    pub bytes: u64,
    pub arrival: Time,
    pub completion: Option<Time>,
    /// Payload bytes delivered in order by the end of the run.
    pub delivered: u64,
}

impl FlowRecord {
    pub fn fct(&self) -> Option<Duration> {
        self.completion.map(|c| c.since(self.arrival))
    }
}

/// What happened to one scripted node crash, as *measured* by the
/// silence-driven detection pipeline (§4.5): when the node actually died,
/// when the first detector suspected it, when routing excluded it, and —
/// if it recovered — when routing readmitted it.
#[derive(Debug, Clone, Copy)]
pub struct FailureRecord {
    pub node: sirius_core::topology::NodeId,
    /// Ground-truth epoch the node died.
    pub fail_epoch: u64,
    /// Epoch the first silence detector suspected it (None: never).
    pub first_suspected: Option<u64>,
    /// Epoch the staged exclusion took routing effect (None: never).
    pub excluded_at: Option<u64>,
    /// Ground-truth epoch the node rebooted, if scripted.
    pub recovered_epoch: Option<u64>,
    /// Epoch the staged readmission took routing effect, if any.
    pub readmitted_at: Option<u64>,
}

impl FailureRecord {
    /// Detection latency in epochs (suspicion minus ground-truth death).
    pub fn detection_epochs(&self) -> Option<u64> {
        self.first_suspected.map(|s| s - self.fail_epoch)
    }
}

/// What happened to one suspected grey TX column, as measured by the
/// per-column silence pipeline: when some receiver first went silent on
/// it, when the column-granular repair dropped it from the schedule, and
/// — if its keepalives came back — when it was readmitted. Columns that
/// escalate to whole-node exclusion keep their record but may never get
/// an `omitted_at` of their own.
#[derive(Debug, Clone, Copy)]
pub struct LinkRecord {
    pub node: sirius_core::topology::NodeId,
    pub uplink: u16,
    /// Epoch the per-column detector first suspected this TX column.
    pub first_suspected: u64,
    /// Epoch the staged column omission took routing effect (None: the
    /// suspicion escalated to whole-node exclusion instead, or repair is
    /// running in node-granular comparison mode).
    pub omitted_at: Option<u64>,
    /// Epoch the staged column readmission took routing effect, if any.
    pub readmitted_at: Option<u64>,
}

/// A correlated failure domain diagnosed by cross-node column
/// correlation: at `detected_at`, `nodes` distinct peers were suspect on
/// the same `uplink` column — a shared laser-bank chip or AWGR grating
/// band, not independent transceivers — so repair stayed column-granular
/// fleet-wide instead of escalating node by node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorrelatedDomainRecord {
    pub uplink: u16,
    /// Distinct nodes suspect on the column when the diagnosis fired.
    pub nodes: u32,
    /// Epoch the correlation threshold was crossed.
    pub detected_at: u64,
}

/// One node quarantined by the RX-side Byzantine filter: its per-epoch
/// forged-cell count crossed `FaultConfig::byz_quarantine_threshold` at
/// `quarantined_at` and whole-node exclusion was staged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ByzantineRecord {
    pub node: sirius_core::topology::NodeId,
    pub quarantined_at: u64,
}

/// Fault-plane accounting for a run with a `FaultInjector` attached.
/// Everything here is measured from emergent behavior — nothing is an
/// echo of the script.
#[derive(Debug, Clone, Default)]
pub struct FaultReport {
    /// One record per scripted crash, in script order.
    pub failures: Vec<FailureRecord>,
    /// (observer, suspect) suspicion transitions seen by the detectors.
    pub suspicion_events: u64,
    /// Routing exclusions / readmissions applied at update epochs.
    pub exclusions: u64,
    pub readmissions: u64,
    /// Column-granular (single TX link) repairs applied at update epochs.
    pub column_omissions: u64,
    pub column_readmissions: u64,
    /// One record per suspected TX column, in first-suspicion order.
    pub links: Vec<LinkRecord>,
    /// Cells already committed to a path severed by a column omission
    /// that were pulled back and relaunched on a fresh detour (reclaimed
    /// from VOQs, drained from relay queues, or rerouted on arrival).
    pub cells_rerouted: u64,
    /// Cells lost, by cause.
    pub cells_lost_crash: u64,
    pub cells_lost_grey: u64,
    pub cells_lost_mistune: u64,
    /// Control messages dropped by a `ControlLoss` window.
    pub requests_lost: u64,
    pub grants_lost: u64,
    /// Distinct grey TX links declared by the script, and how many of
    /// them the per-column silence detector localized.
    pub grey_links_declared: u32,
    pub grey_links_localized: u32,
    /// `AdjustedSchedule::capacity_factor` at the end of the run.
    pub capacity_factor_end: f64,
    /// Counterfeit cells a Byzantine node launched onto the fabric.
    pub cells_forged: u64,
    /// Counterfeits the RX-side filter caught and dropped.
    pub cells_forged_dropped: u64,
    /// Worst per-epoch forged-cell count attributed to any single node —
    /// the measured damage bound the quarantine threshold enforces.
    pub max_forged_per_epoch: u64,
    /// Counterfeit bandwidth requests injected at epoch boundaries.
    pub requests_forged: u64,
    /// Nodes quarantined by the Byzantine filter, in quarantine order.
    pub byz_quarantined: Vec<ByzantineRecord>,
    /// Correlated domains diagnosed by cross-node column correlation.
    pub correlated_domains: Vec<CorrelatedDomainRecord>,
}

impl FaultReport {
    /// Worst measured detection latency across scripted crashes, in
    /// epochs (None when nothing was detected).
    pub fn max_detection_epochs(&self) -> Option<u64> {
        self.failures
            .iter()
            .filter_map(|f| f.detection_epochs())
            .max()
    }
}

/// Streaming flow-completion-time histogram: power-of-two buckets over
/// picoseconds, O(1) memory regardless of flow count. Bucket `b` counts
/// FCTs in `[2^b, 2^(b+1))` ps (bucket 0 also absorbs zero). Percentile
/// queries answer with the bucket's geometric midpoint clamped into the
/// exactly-tracked `[min, max]` envelope, so they carry at most a
/// factor-of-√2 relative error — sufficient for the scale series'
/// order-of-magnitude FCT columns, while `min`/`max`/`mean` stay exact.
///
/// The slice path ([`RunMetrics::fct_percentile`]) keeps every
/// [`FlowRecord`] and sorts for exact percentiles; the streaming path
/// evicts flow state at completion, so this histogram is the only FCT
/// signal that survives a memory-bounded run.
#[derive(Debug, Clone)]
pub struct FctHistogram {
    counts: [u64; 64],
    total: u64,
    sum_ps: u128,
    min_ps: u64,
    max_ps: u64,
}

impl Default for FctHistogram {
    fn default() -> FctHistogram {
        FctHistogram {
            counts: [0; 64],
            total: 0,
            sum_ps: 0,
            min_ps: u64::MAX,
            max_ps: 0,
        }
    }
}

impl FctHistogram {
    /// Fold one completed flow's FCT in (O(1) time and memory).
    pub fn record(&mut self, fct: Duration) {
        let ps = fct.as_ps();
        let b = 63u32.saturating_sub(ps.leading_zeros()) as usize;
        self.counts[b] += 1;
        self.total += 1;
        self.sum_ps += ps as u128;
        self.min_ps = self.min_ps.min(ps);
        self.max_ps = self.max_ps.max(ps);
    }

    /// Flows recorded so far.
    pub fn count(&self) -> u64 {
        self.total
    }

    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// p-th percentile (0..=100) of recorded FCTs in picoseconds
    /// (nearest-rank over buckets; ±√2 bucket resolution). `None` when
    /// empty.
    pub fn percentile_ps(&self, p: f64) -> Option<f64> {
        assert!((0.0..=100.0).contains(&p));
        if self.total == 0 {
            return None;
        }
        let rank = ((p / 100.0 * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let mid = (1u64 << b) as f64 * std::f64::consts::SQRT_2;
                return Some(mid.clamp(self.min_ps as f64, self.max_ps as f64));
            }
        }
        unreachable!("rank is clamped to the recorded total");
    }

    /// Exact mean FCT in picoseconds (`None` when empty).
    pub fn mean_ps(&self) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        Some(self.sum_ps as f64 / self.total as f64)
    }

    /// Exact smallest recorded FCT.
    pub fn min(&self) -> Option<Duration> {
        (self.total > 0).then(|| Duration::from_ps(self.min_ps))
    }

    /// Exact largest recorded FCT.
    pub fn max(&self) -> Option<Duration> {
        (self.total > 0).then(|| Duration::from_ps(self.max_ps))
    }

    /// Fold another histogram in (bucket-wise; envelope and mean stay
    /// exact).
    pub fn merge(&mut self, other: &FctHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.sum_ps += other.sum_ps;
        self.min_ps = self.min_ps.min(other.min_ps);
        self.max_ps = self.max_ps.max(other.max_ps);
    }
}

/// Aggregated results of one simulation run.
#[derive(Debug, Clone)]
pub struct RunMetrics {
    pub flows: Vec<FlowRecord>,
    /// Total payload bytes delivered in order to applications.
    pub delivered_bytes: u64,
    /// Wall-clock span of the run (first arrival to last delivery).
    pub span: Duration,
    /// Peak fabric (VOQ + relay) cells at any single node.
    pub peak_node_fabric_cells: u64,
    /// Peak LOCAL cells at any single node.
    pub peak_node_local_cells: u64,
    /// Peak reorder-buffer bytes for any single flow.
    pub peak_reorder_flow_bytes: u64,
    /// High-water mark of simultaneously resident flow state: the max of
    /// the flow slab's occupancy peak and any single reorder buffer's
    /// entry-count peak. On the streaming path
    /// ([`crate::SiriusSim::run_streaming`]) this tracks flows *in
    /// flight* and is the memory-boundedness gate the scale series
    /// checks; on the slice path every flow stays resident, so it is ≈
    /// total flows.
    pub resident_flows_max: u64,
    /// Cell wire size used (to convert occupancies to bytes), 0 if N/A.
    pub cell_bytes: u32,
    /// Flows that had not completed when the run was cut off.
    pub incomplete_flows: u64,
    /// Congestion-control counters summed over all nodes (zeros in the
    /// ideal/greedy modes, which bypass the protocol).
    pub cc: CcStats,
    /// Order-sensitive digest of the delivered-cell sequence and the
    /// summary above; bit-identical across runs with the same
    /// `(config, seed)` (see [`crate::audit::RunDigest`]).
    pub digest: u64,
    /// Invariant-audit report, present when auditing was enabled.
    pub audit: Option<AuditReport>,
    /// Fault-plane measurements, present when a `FaultInjector` was
    /// attached to the run.
    pub fault: Option<FaultReport>,
    /// Host wall-clock seconds spent inside the run loop (simulator
    /// throughput, not simulated time).
    pub wall_secs: f64,
    /// Cells delivered to their final destination node (relay hops are
    /// not double-counted) — the numerator of [`cells_per_sec`].
    ///
    /// [`cells_per_sec`]: RunMetrics::cells_per_sec
    pub cells_delivered: u64,
    /// Schedule epochs the run simulated (slot count / slots per epoch).
    pub epochs_simulated: u64,
    /// Wall-clock seconds in the transmit phase of the slot loop
    /// (including barrier waits on sharded runs). Per-plane breakdown is
    /// recorded only when
    /// [`crate::SiriusSimConfig::plane_timing`] is on; 0.0 otherwise.
    /// The three planes do not sum to [`wall_secs`]: epoch boundaries
    /// (admission, CC rounds) and loop bookkeeping are untimed.
    ///
    /// [`wall_secs`]: RunMetrics::wall_secs
    pub tx_secs: f64,
    /// Wall-clock seconds in arrival processing (the deliver plane — the
    /// parallel region on sharded runs). See [`tx_secs`].
    ///
    /// [`tx_secs`]: RunMetrics::tx_secs
    pub deliver_secs: f64,
    /// Wall-clock seconds in the serial merge epilogue: the ordered
    /// digest fold, streaming eviction replay, cross-shard effect
    /// application and TX-output merge. See [`tx_secs`].
    ///
    /// [`tx_secs`]: RunMetrics::tx_secs
    pub merge_secs: f64,
    /// Streaming FCT histogram over every completed flow, folded at
    /// eviction time. Present on streaming runs
    /// ([`crate::SiriusSim::run_streaming`]), where per-flow records are
    /// evicted and [`fct_percentile`] has nothing to sort; `None` on
    /// slice runs, which keep full [`flows`] records for exact
    /// percentiles.
    ///
    /// [`fct_percentile`]: RunMetrics::fct_percentile
    /// [`flows`]: RunMetrics::flows
    pub fct_hist: Option<FctHistogram>,
}

impl RunMetrics {
    /// p-th percentile (0..=100) of FCT over completed flows with
    /// `bytes < size_cap` (the paper's "short flows" are < 100 KB).
    pub fn fct_percentile(&self, p: f64, size_cap: u64) -> Option<Duration> {
        let mut fcts: Vec<Duration> = self
            .flows
            .iter()
            .filter(|f| f.bytes < size_cap)
            .filter_map(|f| f.fct())
            .collect();
        if fcts.is_empty() {
            return None;
        }
        fcts.sort_unstable();
        Some(fcts[percentile_index(fcts.len(), p)])
    }

    /// Mean FCT over completed flows below `size_cap`.
    pub fn fct_mean(&self, size_cap: u64) -> Option<Duration> {
        let fcts: Vec<Duration> = self
            .flows
            .iter()
            .filter(|f| f.bytes < size_cap)
            .filter_map(|f| f.fct())
            .collect();
        if fcts.is_empty() {
            return None;
        }
        let total: u64 = fcts.iter().map(|d| d.as_ps()).sum();
        Some(Duration::from_ps(total / fcts.len() as u64))
    }

    /// Average per-server goodput normalized by `servers * rate`
    /// ("the total number of bytes received during the simulation divided
    /// by the total simulation time and normalized by N*R", §7).
    pub fn normalized_goodput(&self, servers: u64, rate: Rate) -> f64 {
        if self.span.is_zero() {
            return 0.0;
        }
        let bits = self.delivered_bytes as f64 * 8.0;
        let secs = self.span.as_secs_f64();
        bits / secs / (servers as f64 * rate.as_bps() as f64)
    }

    /// Normalized goodput measured over a fixed horizon: payload bytes
    /// delivered by `horizon` divided by `horizon`, normalized by
    /// `servers * rate`. Flows still in flight at the horizon contribute
    /// linearly-interpolated partial progress. Unlike the span-based
    /// metric, this compares different simulators (and different drain
    /// policies) over the same window — use it for saturation sweeps.
    pub fn goodput_within(&self, horizon: Time, servers: u64, rate: Rate) -> f64 {
        if horizon == Time::ZERO {
            return 0.0;
        }
        let mut bytes = 0f64;
        for f in &self.flows {
            if f.arrival >= horizon {
                continue;
            }
            match f.completion {
                Some(c) if c <= horizon => bytes += f.bytes as f64,
                Some(c) => {
                    let frac =
                        horizon.since(f.arrival).as_ps() as f64 / c.since(f.arrival).as_ps() as f64;
                    bytes += f.bytes as f64 * frac;
                }
                // Cut off incomplete: count what actually arrived.
                None => bytes += f.delivered as f64,
            }
        }
        bytes * 8.0
            / horizon.since(Time::ZERO).as_secs_f64()
            / (servers as f64 * rate.as_bps() as f64)
    }

    /// Peak aggregate fabric queue occupancy per node, in bytes.
    pub fn peak_node_fabric_bytes(&self) -> u64 {
        self.peak_node_fabric_cells * self.cell_bytes as u64
    }

    pub fn completed_flows(&self) -> u64 {
        self.flows.iter().filter(|f| f.completion.is_some()).count() as u64
    }

    /// Simulator throughput: final-destination cell deliveries per
    /// wall-clock second (0 when the run was too short to time).
    pub fn cells_per_sec(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.cells_delivered as f64 / self.wall_secs
        } else {
            0.0
        }
    }

    /// Simulator throughput: schedule epochs per wall-clock second.
    pub fn epochs_per_sec(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.epochs_simulated as f64 / self.wall_secs
        } else {
            0.0
        }
    }
}

/// Index of the p-th percentile in a sorted slice of `n` items
/// (nearest-rank method).
pub fn percentile_index(n: usize, p: f64) -> usize {
    assert!(n > 0);
    assert!((0.0..=100.0).contains(&p));
    let rank = (p / 100.0 * n as f64).ceil() as usize;
    rank.saturating_sub(1).min(n - 1)
}

/// Convenience: p-th percentile of a f64 slice (sorts a copy).
pub fn percentile_f64(values: &[f64], p: f64) -> f64 {
    assert!(!values.is_empty());
    let mut v = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    v[percentile_index(v.len(), p)]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(bytes: u64, arrival_ns: u64, fct_ns: Option<u64>) -> FlowRecord {
        FlowRecord {
            bytes,
            arrival: Time::from_ps(arrival_ns * 1000),
            completion: fct_ns.map(|f| Time::from_ps((arrival_ns + f) * 1000)),
            delivered: if fct_ns.is_some() { bytes } else { 0 },
        }
    }

    #[test]
    fn percentile_index_nearest_rank() {
        assert_eq!(percentile_index(100, 99.0), 98);
        assert_eq!(percentile_index(100, 100.0), 99);
        assert_eq!(percentile_index(100, 1.0), 0);
        assert_eq!(percentile_index(1, 99.0), 0);
        assert_eq!(percentile_index(3, 50.0), 1);
    }

    #[test]
    fn fct_percentile_filters_short_flows() {
        let m = RunMetrics {
            flows: vec![
                rec(1_000, 0, Some(10)),
                rec(2_000, 0, Some(20)),
                rec(500_000, 0, Some(100_000)), // long flow, excluded
                rec(3_000, 0, None),            // incomplete, excluded
            ],
            delivered_bytes: 0,
            span: Duration::ZERO,
            peak_node_fabric_cells: 0,
            peak_node_local_cells: 0,
            peak_reorder_flow_bytes: 0,
            resident_flows_max: 4,
            cell_bytes: 562,
            incomplete_flows: 1,
            cc: Default::default(),
            digest: 0,
            audit: None,
            fault: None,
            wall_secs: 0.0,
            cells_delivered: 0,
            epochs_simulated: 0,
            tx_secs: 0.0,
            deliver_secs: 0.0,
            merge_secs: 0.0,
            fct_hist: None,
        };
        let p99 = m.fct_percentile(99.0, 100_000).unwrap();
        assert_eq!(p99, Duration::from_ns(20));
        let mean = m.fct_mean(100_000).unwrap();
        assert_eq!(mean, Duration::from_ns(15));
    }

    #[test]
    fn goodput_normalization() {
        let m = RunMetrics {
            flows: vec![],
            delivered_bytes: 125_000_000, // 1 Gbit
            span: Duration::from_ms(1),
            peak_node_fabric_cells: 10,
            peak_node_local_cells: 0,
            peak_reorder_flow_bytes: 0,
            resident_flows_max: 0,
            cell_bytes: 562,
            incomplete_flows: 0,
            cc: Default::default(),
            digest: 0,
            audit: None,
            fault: None,
            wall_secs: 0.5,
            cells_delivered: 1_000_000,
            epochs_simulated: 40_000,
            tx_secs: 0.0,
            deliver_secs: 0.0,
            merge_secs: 0.0,
            fct_hist: None,
        };
        // 1 Gbit in 1 ms = 1 Tbps; with 100 servers at 10 Gbps = 1 Tbps
        // aggregate, normalized goodput = 1.0.
        let g = m.normalized_goodput(100, Rate::from_gbps(10));
        assert!((g - 1.0).abs() < 1e-9, "g = {g}");
        assert_eq!(m.peak_node_fabric_bytes(), 5620);
        // Simulator throughput: counts divided by wall seconds.
        assert!((m.cells_per_sec() - 2_000_000.0).abs() < 1e-6);
        assert!((m.epochs_per_sec() - 80_000.0).abs() < 1e-6);
    }

    #[test]
    fn percentile_f64_basic() {
        let v = vec![5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile_f64(&v, 50.0), 3.0);
        assert_eq!(percentile_f64(&v, 100.0), 5.0);
    }

    #[test]
    fn fct_histogram_empty_answers_none() {
        let h = FctHistogram::default();
        assert!(h.is_empty());
        assert_eq!(h.percentile_ps(50.0), None);
        assert_eq!(h.mean_ps(), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
    }

    #[test]
    fn fct_histogram_single_value_is_exact() {
        // With one sample the min/max envelope collapses the bucket
        // midpoint to the exact value.
        let mut h = FctHistogram::default();
        h.record(Duration::from_ns(1_234));
        assert_eq!(h.count(), 1);
        assert_eq!(h.percentile_ps(50.0), Some(1_234_000.0));
        assert_eq!(h.percentile_ps(99.0), Some(1_234_000.0));
        assert_eq!(h.mean_ps(), Some(1_234_000.0));
        assert_eq!(h.min(), Some(Duration::from_ns(1_234)));
        assert_eq!(h.max(), Some(Duration::from_ns(1_234)));
    }

    #[test]
    fn fct_histogram_percentiles_within_bucket_resolution() {
        // Against the exact sorted percentile: log2 buckets promise at
        // most a factor-of-2 error; the geometric midpoint halves that
        // to √2 on either side.
        let mut h = FctHistogram::default();
        let mut exact: Vec<u64> = Vec::new();
        let mut x = 1_000u64; // ps
        for i in 0..500 {
            let v = x + i * 37;
            h.record(Duration::from_ps(v));
            exact.push(v);
            if i % 50 == 0 {
                x *= 3; // spread across many buckets
            }
        }
        exact.sort_unstable();
        for p in [50.0, 90.0, 99.0] {
            let approx = h.percentile_ps(p).unwrap();
            let truth = exact[percentile_index(exact.len(), p)] as f64;
            let ratio = approx / truth;
            assert!(
                (0.5..=2.0).contains(&ratio),
                "p{p}: approx {approx} vs exact {truth} (ratio {ratio})"
            );
        }
        // The envelope stays exact regardless of bucketing.
        assert_eq!(h.min().unwrap().as_ps(), exact[0]);
        assert_eq!(h.max().unwrap().as_ps(), *exact.last().unwrap());
        let mean = exact.iter().sum::<u64>() as f64 / exact.len() as f64;
        assert!((h.mean_ps().unwrap() - mean).abs() < 1e-6);
    }

    #[test]
    fn fct_histogram_handles_extremes_and_merges() {
        let mut h = FctHistogram::default();
        h.record(Duration::ZERO); // bucket 0, no panic
        h.record(Duration::from_ps(u64::MAX)); // top bucket, no overflow
        assert_eq!(h.count(), 2);
        assert_eq!(h.min(), Some(Duration::ZERO));
        assert_eq!(h.max(), Some(Duration::from_ps(u64::MAX)));
        let mut other = FctHistogram::default();
        other.record(Duration::from_ns(5));
        other.merge(&h);
        assert_eq!(other.count(), 3);
        assert_eq!(other.min(), Some(Duration::ZERO));
        assert_eq!(other.max(), Some(Duration::from_ps(u64::MAX)));
        // p50 of {0, 5ns, MAX} lands in the 5ns sample's bucket.
        let p50 = other.percentile_ps(50.0).unwrap();
        assert!((2_500.0..=10_000.0).contains(&p50), "p50 = {p50}");
    }
}
