//! Run-time invariant auditing and run digests.
//!
//! The simulator is the evidence base for every figure the harness
//! reproduces, so it carries an optional audit layer that re-checks the
//! paper's structural invariants from first principles every epoch,
//! independently of the data structures that are supposed to enforce them:
//!
//! * **Cell conservation** — at every epoch boundary, every injected cell
//!   is exactly one of: resident in a node queue, in flight on the fiber,
//!   buffered out of order at a receiver, released in order, or blackholed
//!   at a failed node.
//! * **§4.3 queue bounds** — under the request/grant protocol (and the
//!   ideal back-pressure baseline) no relay queue ever holds more than `Q`
//!   cells for any destination.
//! * **In-order release** — the reorder buffer releases each flow's cells
//!   as a strictly contiguous prefix, verified against an independent
//!   shadow reassembly rather than the buffer's own bookkeeping.
//! * **Receive-port exclusivity** — no (node, uplink) receive port is
//!   driven by two senders in the same slot (the optical core has no
//!   buffers, §4.2 — two simultaneous senders would mean the cyclic
//!   schedule is not a permutation).
//!
//! The audit is **failure-aware**: the simulator declares every scripted
//! fault window up front ([`Audit::declare_window`]), and the checks then
//! hold *with attribution* instead of being waived — every blackholed or
//! link-lost cell must fall inside a declared window of the matching cause
//! ([`Audit::note_blackholed`], [`Audit::note_lost`]), every detector
//! suspicion must be justified by a window on the suspected node
//! ([`Audit::note_suspicion`]; an unjustified one is a *false positive*
//! and a violation), and the RX-exclusivity check tolerates double-driven
//! ports only while a declared mistuning window taints them
//! ([`Audit::note_rx_mistuned`]). A fault-free run degenerates to the
//! strict checks.
//!
//! Violations are recorded, not panicked on, so failure-injection runs can
//! observe how invariants degrade; clean runs assert
//! [`AuditReport::is_clean`]. Auditing is controlled by
//! `SiriusSimConfig::audit` (on by default in debug builds, off in release
//! so the paper-scale sweeps keep their throughput).
//!
//! The module also provides [`RunDigest`], an order-sensitive FNV-1a hash
//! of the delivered-cell sequence folded with the final run summary. Two
//! runs with identical `(config, seed)` must produce bit-identical
//! digests; the workspace conformance suite asserts this for all three
//! congestion-control modes.

use sirius_core::cell::{Cell, FlowId};
use sirius_core::node::SiriusNode;
use sirius_core::topology::NodeId;
use std::collections::{BTreeSet, HashMap};

/// Cap on verbatim violation messages kept in the report (the total count
/// keeps climbing past it, so `is_clean` stays exact).
pub const MAX_RECORDED_VIOLATIONS: usize = 32;

/// Why a cell left the fabric without being delivered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LossCause {
    /// Arrived at a crashed node.
    Crash,
    /// Erased on a grey (BER-degraded) TX link.
    Grey,
    /// Sent by — or corrupted by a collision with — a mistuned laser.
    Mistune,
    /// Forged by a compromised data plane and dropped by the RX filter.
    /// Used for window declaration/attribution: forged cells were never
    /// injected, so they ride their own conservation ledger
    /// ([`Audit::note_forged_tx`] / [`Audit::note_forged_dropped`])
    /// rather than `note_lost`.
    Byzantine,
}

/// A declared fault window `[from, until)` on `node`; losses and detector
/// suspicions are only legitimate inside a covering window.
#[derive(Debug, Clone, Copy)]
struct FaultWindow {
    cause: LossCause,
    node: NodeId,
    from: u64,
    until: u64,
}

/// Outcome of one audited run.
#[derive(Debug, Clone, Default)]
pub struct AuditReport {
    /// Epoch boundaries at which the full invariant sweep ran.
    pub epochs_checked: u64,
    /// Cells injected into the fabric by source nodes.
    pub cells_injected: u64,
    /// Cells released in order to applications.
    pub cells_released: u64,
    /// Cells still buffered out of order when the run ended.
    pub cells_buffered: u64,
    /// Cells blackholed at failed nodes (0 without failure injection).
    pub cells_blackholed: u64,
    /// Cells erased or corrupted on the fiber by grey links / mistuned
    /// lasers (0 without failure injection).
    pub cells_lost_link: u64,
    /// Detector suspicions not justified by any declared fault window
    /// (false positives; each is also a violation).
    pub false_suspicions: u64,
    /// Cells the receiver saw twice (must stay 0: the core is lossless and
    /// never retransmits).
    pub duplicate_cells: u64,
    /// Counterfeit cells launched by declared-Byzantine nodes (tracked on
    /// their own ledger; they were never injected, so conservation
    /// subtracts the outstanding ones from the in-flight count).
    pub cells_forged: u64,
    /// Counterfeits the RX-side filter caught and dropped.
    pub cells_forged_dropped: u64,
    /// Total invariant violations observed.
    pub total_violations: u64,
    /// First [`MAX_RECORDED_VIOLATIONS`] violation messages, verbatim.
    pub violations: Vec<String>,
}

impl AuditReport {
    /// True when the run upheld every audited invariant.
    pub fn is_clean(&self) -> bool {
        self.total_violations == 0 && self.duplicate_cells == 0
    }
}

/// Independent shadow reassembly state for one flow.
#[derive(Debug, Default)]
struct FlowShadow {
    /// Next in-order sequence number expected.
    next: u32,
    /// Out-of-order sequence numbers seen but not yet released.
    pending: BTreeSet<u32>,
}

/// The audit engine. The simulator feeds it injection, receive, and
/// delivery events plus a per-epoch state snapshot; it accumulates an
/// [`AuditReport`].
#[derive(Debug)]
pub struct Audit {
    enabled: bool,
    n: usize,
    uplinks: usize,
    q: usize,
    /// Whether the mode claims the §4.3 relay bound (protocol and ideal
    /// modes do; the greedy ablation deliberately does not).
    check_queue_bound: bool,
    injected: u64,
    released: u64,
    buffered: u64,
    blackholed: u64,
    lost_link: u64,
    false_suspicions: u64,
    duplicates: u64,
    forged_tx: u64,
    forged_dropped: u64,
    epochs_checked: u64,
    total_violations: u64,
    violations: Vec<String>,
    shadow: HashMap<FlowId, FlowShadow>,
    /// Receive ports driven this slot, indexed `dst * uplinks + uplink`.
    rx_busy: Vec<bool>,
    rx_touched: Vec<u32>,
    /// Ports hit by a declared-mistuned signal this slot (double drives
    /// there are expected corruption, not schedule bugs).
    rx_mistuned: Vec<bool>,
    rx_mistuned_touched: Vec<u32>,
    /// Declared fault windows (attribution base for losses/suspicions).
    windows: Vec<FaultWindow>,
    /// Detector silence threshold (suspicion-justification slack).
    silence_threshold: u64,
    /// TX columns the repair layer has dropped from the schedule, indexed
    /// `node * uplinks + uplink`. Kept as an independent shadow of
    /// `AdjustedSchedule` so data sends onto an omitted column are caught
    /// even if the scheduler's own dead-slot check regresses.
    tx_omitted: Vec<bool>,
}

impl Audit {
    /// `check_queue_bound` should be true for modes that promise the §4.3
    /// relay bound. A disabled audit costs one branch per event.
    pub fn new(
        enabled: bool,
        n: usize,
        uplinks: usize,
        q: usize,
        check_queue_bound: bool,
    ) -> Audit {
        Audit {
            enabled,
            n,
            uplinks,
            q,
            check_queue_bound,
            injected: 0,
            released: 0,
            buffered: 0,
            blackholed: 0,
            lost_link: 0,
            false_suspicions: 0,
            duplicates: 0,
            forged_tx: 0,
            forged_dropped: 0,
            epochs_checked: 0,
            total_violations: 0,
            violations: Vec::new(),
            shadow: HashMap::new(),
            rx_busy: if enabled {
                vec![false; n * uplinks]
            } else {
                Vec::new()
            },
            rx_touched: Vec::new(),
            rx_mistuned: if enabled {
                vec![false; n * uplinks]
            } else {
                Vec::new()
            },
            rx_mistuned_touched: Vec::new(),
            windows: Vec::new(),
            silence_threshold: sirius_core::fault::FaultConfig::default().silence_threshold,
            tx_omitted: if enabled {
                vec![false; n * uplinks]
            } else {
                Vec::new()
            },
        }
    }

    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Declare a fault window `[from, until)` on `node` (use `u64::MAX`
    /// for an open-ended crash). Losses and suspicions are checked for
    /// coverage against the declared set.
    pub fn declare_window(&mut self, cause: LossCause, node: NodeId, from: u64, until: u64) {
        self.windows.push(FaultWindow {
            cause,
            node,
            from,
            until,
        });
    }

    /// Set the detector's silence threshold, used as justification slack
    /// when checking suspicions against windows.
    pub fn set_silence_threshold(&mut self, threshold: u64) {
        self.silence_threshold = threshold;
    }

    fn covered(&self, cause: LossCause, node: NodeId, epoch: u64) -> bool {
        self.windows
            .iter()
            .any(|w| w.cause == cause && w.node == node && w.from <= epoch && epoch < w.until)
    }

    fn violation(&mut self, msg: String) {
        self.total_violations += 1;
        if self.violations.len() < MAX_RECORDED_VIOLATIONS {
            self.violations.push(msg);
        }
    }

    /// A source node injected a cell into the fabric.
    #[inline]
    pub fn note_injected(&mut self) {
        self.injected += 1;
    }

    /// A cell was dropped at crashed `node` during `epoch`. Must fall
    /// inside a declared crash window — an unattributed blackhole is a
    /// violation (cells vanishing without a scripted cause).
    pub fn note_blackholed(&mut self, node: NodeId, epoch: u64) {
        self.blackholed += 1;
        if self.enabled && !self.covered(LossCause::Crash, node, epoch) {
            let id = node.0;
            self.violation(format!(
                "epoch {epoch}: unattributed blackhole at node {id} (no declared crash window)"
            ));
        }
    }

    /// A cell was lost on the fiber during `epoch` — `cause` says how,
    /// `node` is the faulty party (the grey sender, or the mistuned node
    /// whose signal corrupted the port). Must fall inside a declared
    /// window of the same cause.
    pub fn note_lost(&mut self, cause: LossCause, node: NodeId, epoch: u64) {
        debug_assert_ne!(cause, LossCause::Crash, "crash losses use note_blackholed");
        self.lost_link += 1;
        if self.enabled && !self.covered(cause, node, epoch) {
            let id = node.0;
            self.violation(format!(
                "epoch {epoch}: unattributed {cause:?} loss at node {id} (no declared window)"
            ));
        }
    }

    /// `node` launched a counterfeit cell during `epoch`. Legitimate only
    /// inside a declared Byzantine window — a forged cell outside one
    /// means the data plane fabricated traffic without a scripted cause.
    /// Forged cells were never injected, so they go on their own ledger:
    /// conservation subtracts the outstanding (launched, not yet dropped)
    /// count from the in-flight total.
    pub fn note_forged_tx(&mut self, node: NodeId, epoch: u64) {
        self.forged_tx += 1;
        if self.enabled && !self.covered(LossCause::Byzantine, node, epoch) {
            let id = node.0;
            self.violation(format!(
                "epoch {epoch}: unattributed forged cell from node {id} (no declared \
                 Byzantine window)"
            ));
        }
    }

    /// The RX-side Byzantine filter caught and dropped a counterfeit.
    #[inline]
    pub fn note_forged_dropped(&mut self) {
        self.forged_dropped += 1;
    }

    /// The silence detector suspected `node` at `epoch`. Justified only if
    /// some declared window on that node was active within the detector's
    /// lookback (`silence_threshold + 1` epochs past the window's end);
    /// otherwise it is a false positive — a healthy node starved of
    /// keepalives, which §4.5's always-on slots make structurally
    /// impossible.
    ///
    /// Exception: while a *mistune* window is active anywhere, suspicions
    /// of other nodes are also justified. A laser stuck `k` ports off its
    /// tuning target jams the RX port scheduled `k` slots later — under
    /// the cyclic schedule that is the same collateral sender on every
    /// slot, so an innocent node genuinely goes silent on the fabric. The
    /// victim is schedule-dependent, so the window cannot name it.
    pub fn note_suspicion(&mut self, epoch: u64, node: NodeId) {
        if !self.enabled {
            return;
        }
        let slack = self.silence_threshold + 1;
        let justified = self.windows.iter().any(|w| {
            (w.node == node || w.cause == LossCause::Mistune)
                && w.from <= epoch
                && epoch < w.until.saturating_add(slack)
        });
        if !justified {
            self.false_suspicions += 1;
            let id = node.0;
            self.violation(format!(
                "epoch {epoch}: false suspicion of healthy node {id} (no declared fault window)"
            ));
        }
    }

    /// The repair layer applied a column transition: TX column
    /// (`node`, `uplink`) is now omitted from (`omitted = true`) or
    /// readmitted to (`omitted = false`) the schedule. Updates the
    /// audit's shadow view used by [`Audit::note_data_tx`].
    pub fn note_column_omitted(&mut self, node: NodeId, uplink: u16, omitted: bool) {
        if !self.enabled {
            return;
        }
        self.tx_omitted[node.0 as usize * self.uplinks + uplink as usize] = omitted;
    }

    /// A *data* cell (not the always-on keepalive carrier) left on TX
    /// column (`node`, `uplink`) this slot. Scheduling payload onto an
    /// omitted column is a violation: the repair contract says omitted
    /// columns carry carrier only, and the receiver's silence bookkeeping
    /// would otherwise resurrect a link the detector already condemned.
    #[inline]
    pub fn note_data_tx(&mut self, slot: u64, node: NodeId, uplink: u16) {
        if !self.enabled {
            return;
        }
        if self.tx_omitted[node.0 as usize * self.uplinks + uplink as usize] {
            self.violation(format!(
                "slot {slot}: data cell sent on omitted TX column (node {}, uplink {uplink})",
                node.0
            ));
        }
    }

    /// A sender is driving receive port (`dst`, `uplink`) this slot.
    /// Flags a violation if the port is already driven — the schedule's
    /// per-slot permutation property is broken.
    #[inline]
    pub fn note_rx(&mut self, slot: u64, dst: NodeId, uplink: u16) {
        if !self.enabled {
            return;
        }
        let idx = dst.0 as usize * self.uplinks + uplink as usize;
        if self.rx_busy[idx] {
            // A port tainted by a declared-mistuned signal is *expected*
            // to be double-driven (the mistuned laser collides with the
            // scheduled sender); only untainted double drives are
            // schedule bugs.
            if !self.rx_mistuned[idx] {
                self.violation(format!(
                    "slot {slot}: rx exclusivity: two senders drive node {} uplink {uplink}",
                    dst.0
                ));
            }
        } else {
            self.rx_busy[idx] = true;
            self.rx_touched.push(idx as u32);
        }
    }

    /// A declared-mistuned laser's signal lands on receive port
    /// (`dst`, `uplink`) this slot: taint the port so the exclusivity
    /// check accounts for the collision, and treat the stray signal as a
    /// drive of its own (two mistuned strays on one port are still only
    /// garbage, not a schedule bug).
    #[inline]
    pub fn note_rx_mistuned(&mut self, _slot: u64, dst: NodeId, uplink: u16) {
        if !self.enabled {
            return;
        }
        let idx = dst.0 as usize * self.uplinks + uplink as usize;
        if !self.rx_mistuned[idx] {
            self.rx_mistuned[idx] = true;
            self.rx_mistuned_touched.push(idx as u32);
        }
        if !self.rx_busy[idx] {
            self.rx_busy[idx] = true;
            self.rx_touched.push(idx as u32);
        }
    }

    /// Reset per-slot receive-port state (call once per slot).
    #[inline]
    pub fn end_slot(&mut self) {
        if !self.enabled {
            return;
        }
        for &idx in &self.rx_touched {
            self.rx_busy[idx as usize] = false;
        }
        self.rx_touched.clear();
        for &idx in &self.rx_mistuned_touched {
            self.rx_mistuned[idx as usize] = false;
        }
        self.rx_mistuned_touched.clear();
    }

    /// The reorder buffer accepted cell `seq` of `cell.flow` and reported
    /// releasing `released_cells` cells in order. Replays the acceptance
    /// against the shadow reassembly and checks the two agree.
    pub fn note_delivery(&mut self, cell: &Cell, released_cells: u32) {
        if !self.enabled {
            return;
        }
        let st = self.shadow.entry(cell.flow).or_default();
        if cell.seq < st.next || st.pending.contains(&cell.seq) {
            self.duplicates += 1;
            let flow = cell.flow.0;
            let seq = cell.seq;
            self.violation(format!("flow {flow}: cell seq {seq} delivered twice"));
            return;
        }
        if cell.seq == st.next {
            st.next += 1;
            let mut delta: u32 = 1;
            while st.pending.remove(&st.next) {
                st.next += 1;
                delta += 1;
            }
            self.buffered -= (delta - 1) as u64;
            self.released += delta as u64;
            if released_cells != delta {
                let flow = cell.flow.0;
                self.violation(format!(
                    "flow {flow}: in-order release mismatch: buffer reported {released_cells} \
                     cells, shadow reassembly expected {delta}"
                ));
            }
        } else {
            st.pending.insert(cell.seq);
            self.buffered += 1;
            if released_cells != 0 {
                let flow = cell.flow.0;
                let seq = cell.seq;
                self.violation(format!(
                    "flow {flow}: out-of-order cell seq {seq} released {released_cells} cells"
                ));
            }
        }
    }

    /// Full invariant sweep at an epoch boundary. `in_flight` is the
    /// number of cells currently on the fiber (in the propagation ring).
    pub fn epoch_check(&mut self, epoch: u64, nodes: &[SiriusNode], in_flight: u64) {
        if !self.enabled {
            return;
        }
        self.epochs_checked += 1;

        // Cell conservation: every injected cell is in exactly one place.
        // Counterfeits from a Byzantine data plane ride the propagation
        // ring too but were never injected; their outstanding count
        // (launched minus RX-dropped) is subtracted from the in-flight
        // total so the liar cannot mask a genuinely vanished cell.
        let forged_outstanding = self.forged_tx - self.forged_dropped;
        let resident: u64 = nodes.iter().map(|n| n.resident_cells()).sum();
        let accounted = resident
            + (in_flight - forged_outstanding)
            + self.buffered
            + self.released
            + self.blackholed
            + self.lost_link
            + self.duplicates;
        if accounted != self.injected {
            let injected = self.injected;
            let (buffered, released) = (self.buffered, self.released);
            let (blackholed, duplicates) = (self.blackholed, self.duplicates);
            let lost_link = self.lost_link;
            self.violation(format!(
                "epoch {epoch}: cell conservation broken: injected {injected} != \
                 resident {resident} + in-flight {in_flight} + buffered {buffered} + \
                 released {released} + blackholed {blackholed} + link-lost {lost_link} + \
                 duplicates {duplicates}"
            ));
        }

        // §4.3 bound: relay occupancy per destination never exceeds Q.
        if self.check_queue_bound {
            for node in nodes {
                for d in 0..self.n as u32 {
                    let len = node.relay_len(NodeId(d));
                    if len > self.q {
                        let id = node.id().0;
                        let q = self.q;
                        self.violation(format!(
                            "epoch {epoch}: queue bound broken: node {id} relays {len} \
                             cells for destination {d} (Q = {q})"
                        ));
                    }
                }
            }
        }
    }

    /// Consume the audit into its report.
    pub fn finish(self) -> AuditReport {
        AuditReport {
            epochs_checked: self.epochs_checked,
            cells_injected: self.injected,
            cells_released: self.released,
            cells_buffered: self.buffered,
            cells_blackholed: self.blackholed,
            cells_lost_link: self.lost_link,
            false_suspicions: self.false_suspicions,
            duplicate_cells: self.duplicates,
            cells_forged: self.forged_tx,
            cells_forged_dropped: self.forged_dropped,
            total_violations: self.total_violations,
            violations: self.violations,
        }
    }
}

/// Order-sensitive 64-bit FNV-1a digest of a run: the delivered-cell
/// sequence folded with the final summary metrics. Identical
/// `(config, seed)` runs must produce identical digests — this is the
/// determinism guarantee the conformance suite enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunDigest(u64);

impl Default for RunDigest {
    fn default() -> RunDigest {
        RunDigest::new()
    }
}

impl RunDigest {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    pub fn new() -> RunDigest {
        RunDigest(Self::OFFSET)
    }

    /// Fold one 64-bit word, byte by byte (FNV-1a).
    #[inline]
    pub fn update(&mut self, word: u64) {
        let mut h = self.0;
        for b in word.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(Self::PRIME);
        }
        self.0 = h;
    }

    /// Fold a delivered cell (identity + payload) at delivery time `ps`.
    #[inline]
    pub fn update_cell(&mut self, cell: &Cell, ps: u64) {
        self.update(cell.flow.0);
        self.update(((cell.seq as u64) << 32) | cell.payload as u64);
        self.update(ps);
    }

    pub fn value(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sirius_core::topology::ServerId;

    fn cell(flow: u64, seq: u32) -> Cell {
        Cell {
            flow: FlowId(flow),
            seq,
            payload: 540,
            src: NodeId(0),
            dst: NodeId(1),
            dst_server: ServerId(2),
            last: false,
        }
    }

    #[test]
    fn broken_schedule_trips_rx_exclusivity() {
        // A deliberately broken schedule: two senders drive node 3's
        // uplink 1 in the same slot. The permutation property (§4.2) is
        // what normally prevents this; the audit must catch its absence.
        let mut a = Audit::new(true, 8, 4, 4, true);
        a.note_rx(7, NodeId(3), 1);
        a.note_rx(7, NodeId(3), 1);
        // Distinct ports in the same slot are fine.
        a.note_rx(7, NodeId(3), 2);
        a.note_rx(7, NodeId(4), 1);
        a.end_slot();
        // Same port next slot is fine again.
        a.note_rx(8, NodeId(3), 1);
        a.end_slot();
        let r = a.finish();
        assert_eq!(r.total_violations, 1);
        assert!(
            r.violations[0].contains("rx exclusivity"),
            "{:?}",
            r.violations
        );
    }

    #[test]
    fn conservation_flags_a_vanished_cell() {
        let mut a = Audit::new(true, 4, 2, 4, false);
        a.note_injected();
        a.note_injected();
        // One cell in flight, the other unaccounted for anywhere.
        a.epoch_check(0, &[], 1);
        let r = a.finish();
        assert_eq!(r.total_violations, 1);
        assert!(
            r.violations[0].contains("conservation"),
            "{:?}",
            r.violations
        );
    }

    #[test]
    fn conservation_accepts_attributed_blackholed_cells() {
        let mut a = Audit::new(true, 4, 2, 4, false);
        a.declare_window(LossCause::Crash, NodeId(2), 5, u64::MAX);
        a.note_injected();
        a.note_blackholed(NodeId(2), 7);
        a.epoch_check(7, &[], 0);
        let r = a.finish();
        assert!(r.is_clean(), "{:?}", r.violations);
        assert_eq!(r.cells_blackholed, 1);
    }

    #[test]
    fn unattributed_blackhole_is_a_violation() {
        let mut a = Audit::new(true, 4, 2, 4, false);
        a.declare_window(LossCause::Crash, NodeId(2), 5, 10);
        a.note_injected();
        a.note_injected();
        a.note_blackholed(NodeId(3), 7); // wrong node
        a.note_blackholed(NodeId(2), 12); // after the window closed
        let r = a.finish();
        assert_eq!(r.total_violations, 2);
        assert!(r.violations[0].contains("unattributed blackhole"));
    }

    #[test]
    fn link_losses_require_a_matching_window() {
        let mut a = Audit::new(true, 4, 2, 4, false);
        a.declare_window(LossCause::Grey, NodeId(1), 0, 100);
        a.note_injected();
        a.note_injected();
        a.note_lost(LossCause::Grey, NodeId(1), 50);
        // Conservation counts the attributed loss.
        a.epoch_check(50, &[], 1);
        // A mistune loss is not covered by a grey window.
        a.note_lost(LossCause::Mistune, NodeId(1), 50);
        let r = a.finish();
        assert_eq!(r.cells_lost_link, 2);
        assert_eq!(r.total_violations, 1);
        assert!(r.violations[0].contains("Mistune"));
    }

    #[test]
    fn suspicion_justification_and_false_positives() {
        let mut a = Audit::new(true, 4, 2, 4, false);
        a.set_silence_threshold(3);
        a.declare_window(LossCause::Crash, NodeId(1), 10, u64::MAX);
        a.declare_window(LossCause::Grey, NodeId(2), 10, 20);
        a.declare_window(LossCause::Mistune, NodeId(0), 40, 50);
        a.note_suspicion(13, NodeId(1)); // crash, justified
        a.note_suspicion(22, NodeId(2)); // grey ended at 20, within slack
        a.note_suspicion(13, NodeId(3)); // healthy node: false positive
        a.note_suspicion(30, NodeId(2)); // way past the grey window
        a.note_suspicion(45, NodeId(3)); // mistune collateral: justified
        let r = a.finish();
        assert_eq!(r.false_suspicions, 2);
        assert_eq!(r.total_violations, 2);
        assert!(r.violations[0].contains("false suspicion"));
        assert!(!r.is_clean());
    }

    #[test]
    fn mistune_taint_suppresses_expected_double_drives_only() {
        let mut a = Audit::new(true, 8, 4, 4, true);
        // Slot 7: a declared-mistuned stray lands on (3, 1); the scheduled
        // sender drives the same port. Expected collision, no violation.
        a.note_rx_mistuned(7, NodeId(3), 1);
        a.note_rx(7, NodeId(3), 1);
        // An untainted port double-driven in the same slot still trips.
        a.note_rx(7, NodeId(4), 2);
        a.note_rx(7, NodeId(4), 2);
        a.end_slot();
        // Taint does not leak into the next slot.
        a.note_rx(8, NodeId(3), 1);
        a.note_rx(8, NodeId(3), 1);
        a.end_slot();
        let r = a.finish();
        assert_eq!(r.total_violations, 2, "{:?}", r.violations);
    }

    #[test]
    fn forged_cells_ride_their_own_ledger() {
        let mut a = Audit::new(true, 4, 2, 4, false);
        a.declare_window(LossCause::Byzantine, NodeId(3), 5, 50);
        a.note_injected();
        // A declared liar launches two counterfeits; one legitimate cell
        // and both forgeries are on the fiber. Conservation must hold by
        // subtracting the outstanding forged count from in-flight.
        a.note_forged_tx(NodeId(3), 10);
        a.note_forged_tx(NodeId(3), 10);
        a.epoch_check(10, &[], 3);
        // The filter catches one; the other is still in flight.
        a.note_forged_dropped();
        a.epoch_check(11, &[], 2);
        let r = a.finish();
        assert!(r.is_clean(), "{:?}", r.violations);
        assert_eq!(r.cells_forged, 2);
        assert_eq!(r.cells_forged_dropped, 1);
    }

    #[test]
    fn unattributed_forgery_is_a_violation() {
        let mut a = Audit::new(true, 4, 2, 4, false);
        a.declare_window(LossCause::Byzantine, NodeId(3), 5, 50);
        a.note_forged_tx(NodeId(2), 10); // wrong node
        a.note_forged_tx(NodeId(3), 60); // after the window closed
        let r = a.finish();
        assert_eq!(r.total_violations, 2);
        assert!(
            r.violations[0].contains("unattributed forged cell"),
            "{:?}",
            r.violations
        );
    }

    #[test]
    fn shadow_reassembly_tracks_out_of_order_release() {
        let mut a = Audit::new(true, 4, 2, 4, false);
        for _ in 0..3 {
            a.note_injected();
        }
        // Arrival order 1, 2, 0: the first two buffer, the third releases
        // all three (what a correct ReorderBuffer reports).
        a.note_delivery(&cell(9, 1), 0);
        a.note_delivery(&cell(9, 2), 0);
        a.epoch_check(0, &[], 1); // two buffered + one still in flight
        a.note_delivery(&cell(9, 0), 3);
        a.epoch_check(1, &[], 0);
        let r = a.finish();
        assert!(r.is_clean(), "{:?}", r.violations);
        assert_eq!(r.cells_released, 3);
        assert_eq!(r.cells_buffered, 0);
    }

    #[test]
    fn shadow_reassembly_flags_wrong_release_count() {
        let mut a = Audit::new(true, 4, 2, 4, false);
        a.note_injected();
        // A buggy buffer claims the in-order head released two cells.
        a.note_delivery(&cell(9, 0), 2);
        let r = a.finish();
        assert_eq!(r.total_violations, 1);
        assert!(
            r.violations[0].contains("release mismatch"),
            "{:?}",
            r.violations
        );
    }

    #[test]
    fn duplicate_delivery_is_flagged() {
        let mut a = Audit::new(true, 4, 2, 4, false);
        a.note_injected();
        a.note_delivery(&cell(9, 0), 1);
        a.note_delivery(&cell(9, 0), 0);
        let r = a.finish();
        assert_eq!(r.duplicate_cells, 1);
        assert!(!r.is_clean());
    }

    #[test]
    fn data_tx_on_omitted_column_is_a_violation() {
        let mut a = Audit::new(true, 8, 4, 4, true);
        // Healthy column: data sends are fine.
        a.note_data_tx(3, NodeId(2), 1);
        // Omit (2, 1): a data send there is now a repair-contract breach,
        // but the node's other columns stay usable.
        a.note_column_omitted(NodeId(2), 1, true);
        a.note_data_tx(4, NodeId(2), 1);
        a.note_data_tx(4, NodeId(2), 0);
        // Readmission clears the shadow state.
        a.note_column_omitted(NodeId(2), 1, false);
        a.note_data_tx(5, NodeId(2), 1);
        let r = a.finish();
        assert_eq!(r.total_violations, 1);
        assert!(
            r.violations[0].contains("omitted TX column"),
            "{:?}",
            r.violations
        );
    }

    #[test]
    fn violation_messages_are_capped_but_counted() {
        let mut a = Audit::new(true, 4, 2, 4, false);
        for slot in 0..(MAX_RECORDED_VIOLATIONS as u64 + 10) {
            a.note_rx(slot, NodeId(0), 0);
            a.note_rx(slot, NodeId(0), 0);
            a.end_slot();
        }
        let r = a.finish();
        assert_eq!(r.violations.len(), MAX_RECORDED_VIOLATIONS);
        assert_eq!(r.total_violations, MAX_RECORDED_VIOLATIONS as u64 + 10);
    }

    #[test]
    fn disabled_audit_records_nothing() {
        let mut a = Audit::new(false, 4, 2, 4, true);
        a.note_rx(0, NodeId(0), 0);
        a.note_rx(0, NodeId(0), 0);
        a.note_delivery(&cell(1, 5), 7);
        a.epoch_check(0, &[], 99);
        let r = a.finish();
        assert!(r.is_clean());
        assert_eq!(r.epochs_checked, 0);
    }

    #[test]
    fn digest_is_deterministic_and_order_sensitive() {
        let mut a = RunDigest::new();
        let mut b = RunDigest::new();
        a.update_cell(&cell(1, 0), 100);
        a.update_cell(&cell(1, 1), 200);
        b.update_cell(&cell(1, 0), 100);
        b.update_cell(&cell(1, 1), 200);
        assert_eq!(a.value(), b.value());
        // Swapped delivery order must change the digest.
        let mut c = RunDigest::new();
        c.update_cell(&cell(1, 1), 200);
        c.update_cell(&cell(1, 0), 100);
        assert_ne!(a.value(), c.value());
    }
}
