//! Time-series telemetry for simulation runs.
//!
//! The paper's figures report end-of-run aggregates; when debugging a
//! protocol (or demonstrating one, as the examples do) you want to watch
//! queue occupancy, goodput and in-flight load *over time*. This module
//! provides a cheap periodic sampler the simulator can feed, with fixed
//! memory regardless of run length (samples merge pairwise when the
//! buffer fills, halving resolution — a standard streaming decimator).

use sirius_core::units::{Duration, Time};

/// One telemetry sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    pub at: Time,
    /// Cells resident in LOCAL buffers across all nodes.
    pub local_cells: u64,
    /// Cells in VOQ + relay queues across all nodes.
    pub fabric_cells: u64,
    /// Payload bytes delivered since the previous sample.
    pub delivered_bytes: u64,
    /// Flows completed since the previous sample.
    pub completed_flows: u64,
}

/// A bounded-memory periodic sampler.
#[derive(Debug)]
pub struct Telemetry {
    interval: Duration,
    next_at: Time,
    max_samples: usize,
    samples: Vec<Sample>,
    // Deltas accumulated since the last emitted sample.
    delivered_acc: u64,
    completed_acc: u64,
}

impl Telemetry {
    /// Sample every `interval`, keeping at most `max_samples` (must be
    /// even and >= 2); when full, adjacent samples merge and the interval
    /// doubles.
    pub fn new(interval: Duration, max_samples: usize) -> Telemetry {
        assert!(max_samples >= 2 && max_samples.is_multiple_of(2));
        assert!(!interval.is_zero());
        Telemetry {
            interval,
            next_at: Time::ZERO + interval,
            max_samples,
            samples: Vec::new(),
            delivered_acc: 0,
            completed_acc: 0,
        }
    }

    /// Record progress events (call freely; cheap counter bumps).
    pub fn on_delivery(&mut self, bytes: u64, flow_completed: bool) {
        self.delivered_acc += bytes;
        if flow_completed {
            self.completed_acc += 1;
        }
    }

    /// Offer a sampling opportunity at time `now` with current queue
    /// totals; emits a sample if the interval elapsed.
    pub fn maybe_sample(&mut self, now: Time, local_cells: u64, fabric_cells: u64) {
        if now < self.next_at {
            return;
        }
        self.samples.push(Sample {
            at: now,
            local_cells,
            fabric_cells,
            delivered_bytes: self.delivered_acc,
            completed_flows: self.completed_acc,
        });
        self.delivered_acc = 0;
        self.completed_acc = 0;
        self.next_at = now + self.interval;
        if self.samples.len() >= self.max_samples {
            self.decimate();
        }
    }

    /// Merge adjacent samples and double the interval.
    fn decimate(&mut self) {
        let mut merged = Vec::with_capacity(self.samples.len() / 2);
        for pair in self.samples.chunks(2) {
            if pair.len() == 2 {
                merged.push(Sample {
                    at: pair[1].at,
                    // Queue levels: keep the later snapshot's levels but
                    // remember the pair's peak pressure via max.
                    local_cells: pair[0].local_cells.max(pair[1].local_cells),
                    fabric_cells: pair[0].fabric_cells.max(pair[1].fabric_cells),
                    delivered_bytes: pair[0].delivered_bytes + pair[1].delivered_bytes,
                    completed_flows: pair[0].completed_flows + pair[1].completed_flows,
                });
            } else {
                merged.push(pair[0]);
            }
        }
        self.samples = merged;
        self.interval = self.interval * 2;
    }

    /// Emit whatever has accumulated since the last sample (call at the
    /// end of a run so no tail progress is lost).
    pub fn flush(&mut self, now: Time, local_cells: u64, fabric_cells: u64) {
        if self.delivered_acc > 0 || self.completed_acc > 0 {
            self.samples.push(Sample {
                at: now,
                local_cells,
                fabric_cells,
                delivered_bytes: self.delivered_acc,
                completed_flows: self.completed_acc,
            });
            self.delivered_acc = 0;
            self.completed_acc = 0;
        }
    }

    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Current sampling interval (doubles on every decimation).
    pub fn interval(&self) -> Duration {
        self.interval
    }

    /// Goodput (bits/s) of each sample window.
    pub fn goodput_series(&self) -> Vec<(Time, f64)> {
        let mut out = Vec::with_capacity(self.samples.len());
        let mut prev = Time::ZERO;
        for s in &self.samples {
            let dt = s.at.saturating_since(prev).as_secs_f64();
            if dt > 0.0 {
                out.push((s.at, s.delivered_bytes as f64 * 8.0 / dt));
            }
            prev = s.at;
        }
        out
    }

    /// Peak fabric cells seen in any sample.
    pub fn peak_fabric_cells(&self) -> u64 {
        self.samples
            .iter()
            .map(|s| s.fabric_cells)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> Time {
        Time::ZERO + Duration::from_us(us)
    }

    #[test]
    fn samples_at_the_interval() {
        let mut tel = Telemetry::new(Duration::from_us(10), 64);
        tel.maybe_sample(t(5), 1, 1); // too early
        assert!(tel.samples().is_empty());
        tel.on_delivery(1000, true);
        tel.maybe_sample(t(10), 2, 3);
        assert_eq!(tel.samples().len(), 1);
        let s = tel.samples()[0];
        assert_eq!(s.delivered_bytes, 1000);
        assert_eq!(s.completed_flows, 1);
        assert_eq!(s.fabric_cells, 3);
        // Accumulators reset.
        tel.maybe_sample(t(20), 0, 0);
        assert_eq!(tel.samples()[1].delivered_bytes, 0);
    }

    #[test]
    fn decimation_preserves_totals_and_bounds_memory() {
        let mut tel = Telemetry::new(Duration::from_us(1), 8);
        for k in 1..=100u64 {
            tel.on_delivery(10, false);
            tel.maybe_sample(t(k), k, k);
        }
        assert!(tel.samples().len() < 8);
        // Decimation doubles the interval, so a tail accumulates between
        // samples; flush it and check nothing was lost.
        tel.flush(t(101), 0, 0);
        let total: u64 = tel.samples().iter().map(|s| s.delivered_bytes).sum();
        assert_eq!(total, 1000, "total {total}");
        // Peak survives merging.
        assert!(tel.peak_fabric_cells() >= 90);
    }

    #[test]
    fn decimation_halves_the_count_and_doubles_the_interval() {
        let mut tel = Telemetry::new(Duration::from_us(1), 8);
        assert_eq!(tel.interval(), Duration::from_us(1));
        // Exactly fill the buffer: the 8th push triggers one decimation.
        for k in 1..=8u64 {
            tel.on_delivery(k * 100, k % 2 == 0);
            tel.maybe_sample(t(k), k, 10 - k);
        }
        assert_eq!(tel.samples().len(), 4);
        assert_eq!(tel.interval(), Duration::from_us(2));
        let s = tel.samples();
        for (i, m) in s.iter().enumerate() {
            let (a, b) = (2 * i as u64 + 1, 2 * i as u64 + 2);
            // Merged sample sits at the later timestamp of its pair...
            assert_eq!(m.at, t(b));
            // ...delta counters add (deliveries conserved; completions were
            // every even step)...
            assert_eq!(m.delivered_bytes, 100 * (a + b));
            assert_eq!(m.completed_flows, 1);
            // ...and queue levels keep the pair's peak.
            assert_eq!(m.local_cells, b);
            assert_eq!(m.fabric_cells, 10 - a);
        }
        // A second fill decimates again: still bounded, interval 4 us.
        for k in 9..=16u64 {
            tel.maybe_sample(t(k), 0, 0);
        }
        assert!(tel.samples().len() < 8);
        assert_eq!(tel.interval(), Duration::from_us(4));
    }

    #[test]
    fn flush_emits_only_pending_progress() {
        let mut tel = Telemetry::new(Duration::from_us(10), 8);
        tel.flush(t(1), 5, 5); // nothing accumulated: no sample
        assert!(tel.samples().is_empty());
        tel.on_delivery(400, false);
        tel.flush(t(2), 5, 5);
        assert_eq!(tel.samples().len(), 1);
        assert_eq!(tel.samples()[0].delivered_bytes, 400);
        tel.flush(t(3), 5, 5); // accumulators were reset
        assert_eq!(tel.samples().len(), 1);
    }

    #[test]
    fn goodput_series_is_positive_under_traffic() {
        let mut tel = Telemetry::new(Duration::from_us(10), 16);
        for k in 1..=5u64 {
            tel.on_delivery(12_500, false); // 12.5 KB per 10 us = 10 Gbps
            tel.maybe_sample(t(10 * k), 0, 0);
        }
        for (_, bps) in tel.goodput_series() {
            assert!((bps - 1e10).abs() < 1e7, "goodput {bps}");
        }
    }
}
