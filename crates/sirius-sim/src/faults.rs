//! Scriptable fault injection for the Sirius simulator (§4.5).
//!
//! The injector owns the *ground truth* of what is broken and when; the
//! simulator never tells its routing plane about any of it. Detection is
//! emergent: a fault only affects routing once the silence-driven
//! [`sirius_core::fault::FailureDetector`] notices the missing scheduled
//! slots and stages a consistent update (see `sirius_net`).
//!
//! Supported faults:
//!
//! * **Fail-stop crashes** ([`FaultEvent::Crash`]) — the node stops
//!   transmitting (no data, no keepalives) and blackholes arrivals, with
//!   optional scheduled [`FaultEvent::Recover`].
//! * **Grey links** ([`FaultEvent::GreyLink`]) — one TX column erases
//!   cells with a probability fed from the `sirius-optics` BER model
//!   ([`FaultInjector::grey_link_from_ber`]): a degraded transceiver drops
//!   cells on specific paths while the node stays otherwise healthy.
//! * **Mistuned lasers** ([`FaultEvent::Mistune`]) — a stuck/mistuned
//!   tunable laser shifts the node's wavelength by a fixed slot offset, so
//!   its cells land on the *wrong* RX port (corrupting whatever legitimate
//!   cell arrives there) for the duration of the window.
//! * **Control loss** ([`FaultEvent::ControlLoss`]) — request/grant
//!   messages in `CcMode::Protocol` are dropped with a probability; the
//!   protocol's sticky-request re-issue and grant-expiry backstops must
//!   absorb this without losing data.
//! * **Laser-bank failure** ([`FaultEvent::BankFailure`]) — one
//!   `sirius-optics::laser::fixed_bank` SOA chip in a disaggregated
//!   per-(group, uplink) bank dies, silencing a contiguous wavelength
//!   band. The AWGR's cyclic route relation maps each dead channel to
//!   exactly one output port ([`sirius_optics::awgr::Awgr::
//!   dead_outputs_for_chip`]), so the blast radius is a *correlated set
//!   of TX columns*: one column each on several distinct nodes of the
//!   group, all on the same uplink.
//! * **Laser-bank drift** ([`FaultEvent::BankDrift`]) — the slow-failure
//!   sibling of a bank failure: an SOA chip's gain decays over a scripted
//!   window, ramping the receive power (and with it the post-FEC cell
//!   drop probability, via the same BER model as
//!   [`FaultInjector::grey_link_from_ber`]) from healthy to its final
//!   value. The AWGR route relation expands the chip's channel band into
//!   a *correlated set of grey columns whose erasure probability rises
//!   together* — the hard detection case: early in the ramp the columns
//!   still deliver most slots, so silence-based suspicion necessarily
//!   lags the ground-truth onset.
//! * **AWGR grating fault** ([`FaultEvent::GratingFault`]) — a damaged
//!   grating band kills an input-port range of the (group, uplink) AWGR
//!   outright: those nodes' TX columns on that uplink go dark.
//! * **Byzantine data plane** ([`FaultEvent::Byzantine`]) — a compromised
//!   node forges cell headers (wrong src/dst/flow), replays stale grants
//!   and inflates its request counts. Forgery draws come from the node's
//!   own per-node RNG stream so scripts stay shard-partition-independent;
//!   the RX-side filter (see `engine::deliver`) bounds the damage per
//!   epoch, then quarantines the liar.
//!
//! Fault randomness is decoupled from the simulator's protocol RNG
//! (`seed ^ salt`), and erasure draws are made once per *scheduled slot*
//! in a fault window — never per data cell — so a fault script perturbs
//! the protocol's random choices not at all and double runs stay
//! bit-identical. Per-slot grey-erasure draws additionally come from
//! **per-node streams** ([`FaultInjector::node_streams`]): each sender
//! consumes only its own stream, so the draw sequence a node sees is a
//! function of the script and seed alone — independent of how the slot
//! engine partitions nodes across shards ([`crate::SiriusSimConfig`]'s
//! `shards`). Epoch-boundary draws (control loss) stay on the injector's
//! own serial stream ([`FaultInjector::draw`]).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sirius_core::topology::NodeId;
use sirius_optics::awgr::Awgr;
use sirius_optics::ber::{Modulation, Receiver};
use sirius_optics::fec::KP4;

/// One scripted fault. Windows are `[from, until)` in epochs; events are
/// instantaneous at their epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultEvent {
    /// Fail-stop: `node` dies at `epoch`.
    Crash { node: NodeId, epoch: u64 },
    /// `node` reboots at `epoch` (queues survive; detector state does not).
    Recover { node: NodeId, epoch: u64 },
    /// TX column `uplink` of `node` erases each scheduled slot with
    /// probability `drop_prob` during `[from, until)`.
    GreyLink {
        node: NodeId,
        uplink: u16,
        drop_prob: f64,
        from: u64,
        until: u64,
    },
    /// `node`'s laser is stuck `offset` grating ports away from its tuning
    /// target during `[from, until)`: every cell it sends lands on the RX
    /// port scheduled `offset` slots later in the cycle.
    Mistune {
        node: NodeId,
        offset: u16,
        from: u64,
        until: u64,
    },
    /// Request/grant messages are dropped with `drop_prob` during
    /// `[from, until)` (Protocol mode only).
    ControlLoss {
        drop_prob: f64,
        from: u64,
        until: u64,
    },
    /// Correlated domain: SOA chip `chip` (of `chip_capacity` channels,
    /// the `FixedLaserBank::new` layout) of the disaggregated laser bank
    /// feeding `(group, uplink)` dies during `[from, until)`. Every
    /// wavelength on the chip goes dark, and the AWGR route relation
    /// turns the contiguous channel band into a set of dead TX columns —
    /// one column each on distinct nodes of the group, all on `uplink`.
    BankFailure {
        group: u16,
        uplink: u16,
        chip: u16,
        chip_capacity: u16,
        from: u64,
        until: u64,
    },
    /// Correlated domain, slow version: SOA chip `chip` of the bank
    /// feeding `(group, uplink)` *ages* during `[from, until)` — its
    /// receive power ramps linearly from `rx_dbm_from` (healthy) to
    /// `rx_dbm_to` (degraded), and the BER→FEC model turns each epoch's
    /// power into that epoch's per-cell drop probability on every TX
    /// column the chip's channels feed. Unlike [`FaultEvent::BankFailure`]
    /// the columns stay *partially* alive, so detection latency is a
    /// property of the ramp, not of the silence threshold alone.
    BankDrift {
        group: u16,
        uplink: u16,
        chip: u16,
        chip_capacity: u16,
        /// Receive power at `from`, dBm (typically healthy).
        rx_dbm_from: f64,
        /// Receive power reached at `until`, dBm.
        rx_dbm_to: f64,
        modulation: Modulation,
        cell_bytes: u32,
        from: u64,
        until: u64,
    },
    /// Correlated domain: the input-port band `[port_lo, port_hi)` of the
    /// `(group, uplink)` AWGR is destroyed during `[from, until)` — the
    /// TX columns of those nodes on `uplink` go dark fleet-visible.
    GratingFault {
        group: u16,
        uplink: u16,
        port_lo: u16,
        port_hi: u16,
        from: u64,
        until: u64,
    },
    /// `node`'s data plane is compromised during `[from, until)`: on each
    /// otherwise-idle scheduled slot it forges a cell with probability
    /// `forge_prob` (fabricated src or replayed stale grant), and at each
    /// epoch boundary it injects `extra_requests` counterfeit bandwidth
    /// requests at random intermediates.
    Byzantine {
        node: NodeId,
        forge_prob: f64,
        extra_requests: u32,
        from: u64,
        until: u64,
    },
}

impl FaultEvent {
    fn name(&self) -> &'static str {
        match self {
            FaultEvent::Crash { .. } => "Crash",
            FaultEvent::Recover { .. } => "Recover",
            FaultEvent::GreyLink { .. } => "GreyLink",
            FaultEvent::Mistune { .. } => "Mistune",
            FaultEvent::ControlLoss { .. } => "ControlLoss",
            FaultEvent::BankFailure { .. } => "BankFailure",
            FaultEvent::BankDrift { .. } => "BankDrift",
            FaultEvent::GratingFault { .. } => "GratingFault",
            FaultEvent::Byzantine { .. } => "Byzantine",
        }
    }
}

/// A malformed fault script, rejected at build time by
/// [`FaultInjector::validate`] instead of silently never firing.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultScriptError {
    /// `from > until`: the window can never contain an epoch.
    InvertedWindow {
        event: &'static str,
        from: u64,
        until: u64,
    },
    /// The event names a node outside the deployment.
    NodeOutOfRange {
        event: &'static str,
        node: u32,
        nodes: usize,
    },
    /// The event names an uplink column the schedule does not have.
    UplinkOutOfRange {
        event: &'static str,
        uplink: u16,
        uplinks: usize,
    },
    /// The event names a group outside the topology.
    GroupOutOfRange {
        event: &'static str,
        group: u16,
        groups: usize,
    },
    /// The chip index starts past the end of the wavelength bank.
    ChipOutOfRange { chip: u16, chips: u16 },
    /// The grating band is empty or exceeds the AWGR port count.
    PortBandOutOfRange {
        port_lo: u16,
        port_hi: u16,
        ports: usize,
    },
    /// A probability outside `[0, 1]`.
    InvalidProbability { event: &'static str, prob: f64 },
    /// A Byzantine window with nothing to do (no forgery, no inflation).
    IdleByzantine { node: u32 },
    /// Two events that cannot both hold (crash+recover of one node at one
    /// epoch, or overlapping mistunes pinning one laser to two offsets).
    Contradiction { detail: String },
}

impl std::fmt::Display for FaultScriptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultScriptError::InvertedWindow { event, from, until } => write!(
                f,
                "{event} window [{from}, {until}) is inverted and can never fire"
            ),
            FaultScriptError::NodeOutOfRange { event, node, nodes } => write!(
                f,
                "{event} names node {node} but the deployment has nodes 0..{nodes}"
            ),
            FaultScriptError::UplinkOutOfRange {
                event,
                uplink,
                uplinks,
            } => write!(
                f,
                "{event} names uplink {uplink} but the schedule has uplinks 0..{uplinks}"
            ),
            FaultScriptError::GroupOutOfRange {
                event,
                group,
                groups,
            } => write!(
                f,
                "{event} names group {group} but the topology has groups 0..{groups}"
            ),
            FaultScriptError::ChipOutOfRange { chip, chips } => write!(
                f,
                "BankFailure names chip {chip} but the bank has chips 0..{chips}"
            ),
            FaultScriptError::PortBandOutOfRange {
                port_lo,
                port_hi,
                ports,
            } => write!(
                f,
                "GratingFault band [{port_lo}, {port_hi}) is empty or exceeds \
                 the group's {ports} AWGR ports"
            ),
            FaultScriptError::InvalidProbability { event, prob } => {
                write!(f, "{event} probability {prob} is outside [0, 1]")
            }
            FaultScriptError::IdleByzantine { node } => write!(
                f,
                "Byzantine window on node {node} has forge_prob 0 and \
                 extra_requests 0: it would never do anything"
            ),
            FaultScriptError::Contradiction { detail } => {
                write!(f, "contradictory events: {detail}")
            }
        }
    }
}

impl std::error::Error for FaultScriptError {}

/// Per-epoch snapshot of the active fault plane, rebuilt at boundaries so
/// the per-slot hot path only reads flat arrays.
#[derive(Debug, Default)]
pub struct ActiveFaults {
    /// Erasure probability per `(node, uplink)` (empty when no grey link
    /// is active this epoch). Correlated domains (bank chips, grating
    /// bands) expand into probability-1.0 entries here: a dead wavelength
    /// *is* a TX column that erases every slot, so detection, loss
    /// attribution and repair all ride the tested grey-link paths.
    pub grey: Vec<f64>,
    /// Mistune offset per node (empty when none active this epoch).
    pub mistuned: Vec<Option<u16>>,
    /// Probability of losing each control message this epoch.
    pub control_loss: f64,
    /// Nodes with a mistune active this epoch (for the per-slot pre-pass).
    pub mistuned_nodes: Vec<NodeId>,
    /// Per-node forge probability (empty when no Byzantine window is
    /// active this epoch).
    pub byz: Vec<f64>,
    /// Per-node counterfeit requests injected at each epoch boundary.
    pub byz_extra: Vec<u32>,
    /// Nodes with a Byzantine window active this epoch.
    pub byz_nodes: Vec<NodeId>,
}

impl ActiveFaults {
    pub fn any_grey(&self) -> bool {
        !self.grey.is_empty()
    }
    pub fn any_mistune(&self) -> bool {
        !self.mistuned_nodes.is_empty()
    }
    pub fn any_byz(&self) -> bool {
        !self.byz_nodes.is_empty()
    }
    pub fn grey_prob(&self, node: NodeId, uplink: u16, uplinks: usize) -> f64 {
        if self.grey.is_empty() {
            0.0
        } else {
            self.grey[node.0 as usize * uplinks + uplink as usize]
        }
    }
    pub fn mistune_of(&self, node: NodeId) -> Option<u16> {
        if self.mistuned.is_empty() {
            None
        } else {
            self.mistuned[node.0 as usize]
        }
    }
    /// Probability that `node` forges a cell on an otherwise-idle slot.
    pub fn byz_prob(&self, node: NodeId) -> f64 {
        if self.byz.is_empty() {
            0.0
        } else {
            self.byz[node.0 as usize]
        }
    }
    /// Counterfeit requests `node` injects at this epoch's boundary.
    pub fn byz_extra_of(&self, node: NodeId) -> u32 {
        if self.byz_extra.is_empty() {
            0
        } else {
            self.byz_extra[node.0 as usize]
        }
    }
}

/// Scriptable fault injector; build one, add events, hand it to
/// `SiriusSim::with_faults`.
#[derive(Debug)]
pub struct FaultInjector {
    events: Vec<FaultEvent>,
    seed: u64,
    rng: SmallRng,
}

/// Salt for the injector's RNG stream so fault draws are independent of
/// the simulator's protocol draws even under the same seed.
const FAULT_RNG_SALT: u64 = 0x5149_5249_5553_4633; // "SIRIUSF3"

impl FaultInjector {
    pub fn new(seed: u64) -> FaultInjector {
        FaultInjector {
            events: Vec::new(),
            seed,
            rng: SmallRng::seed_from_u64(seed ^ FAULT_RNG_SALT),
        }
    }

    /// One independent RNG stream per node for the per-slot grey-erasure
    /// and Byzantine-forgery draws. A sender's stream advances only when
    /// *it* draws, so the sequence each node consumes does not depend on
    /// the node partition the slot engine runs with — sharded and serial
    /// runs make the identical draws.
    pub fn node_streams(&self, n: usize) -> Vec<SmallRng> {
        (0..n as u64)
            .map(|i| {
                // Distinct, seed-dependent stream per node; golden-ratio
                // stride keeps nearby node ids from colliding before
                // `seed_from_u64`'s SplitMix64 expansion.
                let s = self.seed ^ FAULT_RNG_SALT ^ (i + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                SmallRng::seed_from_u64(s)
            })
            .collect()
    }

    pub fn push(&mut self, ev: FaultEvent) -> &mut Self {
        self.events.push(ev);
        self
    }

    pub fn crash(mut self, node: NodeId, epoch: u64) -> Self {
        self.events.push(FaultEvent::Crash { node, epoch });
        self
    }

    pub fn recover(mut self, node: NodeId, epoch: u64) -> Self {
        self.events.push(FaultEvent::Recover { node, epoch });
        self
    }

    pub fn grey_link(
        mut self,
        node: NodeId,
        uplink: u16,
        drop_prob: f64,
        from: u64,
        until: u64,
    ) -> Self {
        assert!((0.0..=1.0).contains(&drop_prob));
        self.events.push(FaultEvent::GreyLink {
            node,
            uplink,
            drop_prob,
            from,
            until,
        });
        self
    }

    /// Grey link whose erasure probability comes from the optics stack: a
    /// transceiver receiving `rx_dbm` of optical power has a pre-FEC BER
    /// from the [`Receiver`] model; KP4 FEC then either corrects a frame
    /// or loses it, so the per-cell drop probability is the chance that
    /// any of the cell's RS frames is uncorrectable.
    #[allow(clippy::too_many_arguments)]
    pub fn grey_link_from_ber(
        self,
        node: NodeId,
        uplink: u16,
        rx_dbm: f64,
        modulation: Modulation,
        cell_bytes: u32,
        from: u64,
        until: u64,
    ) -> Self {
        let p = cell_drop_probability(rx_dbm, modulation, cell_bytes);
        self.grey_link(node, uplink, p, from, until)
    }

    pub fn mistune(mut self, node: NodeId, offset: u16, from: u64, until: u64) -> Self {
        assert!(offset > 0, "offset 0 is a correctly tuned laser");
        self.events.push(FaultEvent::Mistune {
            node,
            offset,
            from,
            until,
        });
        self
    }

    pub fn control_loss(mut self, drop_prob: f64, from: u64, until: u64) -> Self {
        assert!((0.0..=1.0).contains(&drop_prob));
        self.events.push(FaultEvent::ControlLoss {
            drop_prob,
            from,
            until,
        });
        self
    }

    /// Kill SOA chip `chip` (of `chip_capacity`-channel chips) of the
    /// laser bank feeding `(group, uplink)` for `[from, until)`.
    #[allow(clippy::too_many_arguments)]
    pub fn bank_failure(
        mut self,
        group: u16,
        uplink: u16,
        chip: u16,
        chip_capacity: u16,
        from: u64,
        until: u64,
    ) -> Self {
        assert!(chip_capacity > 0, "a chip holds at least one channel");
        self.events.push(FaultEvent::BankFailure {
            group,
            uplink,
            chip,
            chip_capacity,
            from,
            until,
        });
        self
    }

    /// Age SOA chip `chip` of the `(group, uplink)` bank over
    /// `[from, until)`: receive power ramps linearly `rx_dbm_from` →
    /// `rx_dbm_to`, and every TX column the chip feeds greys out together
    /// with the BER-derived per-epoch drop probability.
    #[allow(clippy::too_many_arguments)]
    pub fn bank_drift(
        mut self,
        group: u16,
        uplink: u16,
        chip: u16,
        chip_capacity: u16,
        rx_dbm_from: f64,
        rx_dbm_to: f64,
        modulation: Modulation,
        cell_bytes: u32,
        from: u64,
        until: u64,
    ) -> Self {
        assert!(chip_capacity > 0, "a chip holds at least one channel");
        assert!(
            rx_dbm_from.is_finite() && rx_dbm_to.is_finite(),
            "drift endpoints must be finite powers"
        );
        self.events.push(FaultEvent::BankDrift {
            group,
            uplink,
            chip,
            chip_capacity,
            rx_dbm_from,
            rx_dbm_to,
            modulation,
            cell_bytes,
            from,
            until,
        });
        self
    }

    /// Destroy the input-port band `[port_lo, port_hi)` of the
    /// `(group, uplink)` AWGR for `[from, until)`.
    #[allow(clippy::too_many_arguments)]
    pub fn grating_fault(
        mut self,
        group: u16,
        uplink: u16,
        port_lo: u16,
        port_hi: u16,
        from: u64,
        until: u64,
    ) -> Self {
        assert!(port_lo < port_hi, "empty grating band");
        self.events.push(FaultEvent::GratingFault {
            group,
            uplink,
            port_lo,
            port_hi,
            from,
            until,
        });
        self
    }

    /// Compromise `node`'s data plane for `[from, until)`: forge a cell on
    /// each otherwise-idle scheduled slot with probability `forge_prob`,
    /// and inject `extra_requests` counterfeit requests per epoch.
    pub fn byzantine(
        mut self,
        node: NodeId,
        forge_prob: f64,
        extra_requests: u32,
        from: u64,
        until: u64,
    ) -> Self {
        assert!((0.0..=1.0).contains(&forge_prob));
        self.events.push(FaultEvent::Byzantine {
            node,
            forge_prob,
            extra_requests,
            from,
            until,
        });
        self
    }

    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Does any event ever perturb individual links (grey, mistune, or a
    /// correlated bank/grating domain — which *is* a set of grey columns)?
    /// Gates the per-link detector bookkeeping in the simulator.
    pub fn has_link_faults(&self) -> bool {
        self.events.iter().any(|e| {
            matches!(
                e,
                FaultEvent::GreyLink { .. }
                    | FaultEvent::Mistune { .. }
                    | FaultEvent::BankFailure { .. }
                    | FaultEvent::BankDrift { .. }
                    | FaultEvent::GratingFault { .. }
            )
        })
    }

    /// Does any event ever compromise a data plane? Gates the RX-side
    /// Byzantine filter (which must stay off the fault-free fast path).
    pub fn has_byzantine(&self) -> bool {
        self.events
            .iter()
            .any(|e| matches!(e, FaultEvent::Byzantine { .. }))
    }

    /// Validate the script against a deployment of `nodes` nodes with
    /// `uplinks` columns per node and `group_size` nodes (= AWGR ports =
    /// bank wavelengths) per group. Rejects scripts that are inverted,
    /// out of range or self-contradictory with a descriptive error
    /// instead of silently never firing.
    pub fn validate(
        &self,
        nodes: usize,
        uplinks: usize,
        group_size: usize,
    ) -> Result<(), FaultScriptError> {
        let groups = nodes / group_size.max(1);
        let check_window = |ev: &FaultEvent, from: u64, until: u64| {
            if from > until {
                Err(FaultScriptError::InvertedWindow {
                    event: ev.name(),
                    from,
                    until,
                })
            } else {
                Ok(())
            }
        };
        let check_node = |ev: &FaultEvent, node: NodeId| {
            if node.0 as usize >= nodes {
                Err(FaultScriptError::NodeOutOfRange {
                    event: ev.name(),
                    node: node.0,
                    nodes,
                })
            } else {
                Ok(())
            }
        };
        let check_uplink = |ev: &FaultEvent, uplink: u16| {
            if uplink as usize >= uplinks {
                Err(FaultScriptError::UplinkOutOfRange {
                    event: ev.name(),
                    uplink,
                    uplinks,
                })
            } else {
                Ok(())
            }
        };
        let check_group = |ev: &FaultEvent, group: u16| {
            if group as usize >= groups {
                Err(FaultScriptError::GroupOutOfRange {
                    event: ev.name(),
                    group,
                    groups,
                })
            } else {
                Ok(())
            }
        };
        let check_prob = |ev: &FaultEvent, p: f64| {
            if !(0.0..=1.0).contains(&p) {
                Err(FaultScriptError::InvalidProbability {
                    event: ev.name(),
                    prob: p,
                })
            } else {
                Ok(())
            }
        };
        for ev in &self.events {
            match *ev {
                FaultEvent::Crash { node, .. } | FaultEvent::Recover { node, .. } => {
                    check_node(ev, node)?;
                }
                FaultEvent::GreyLink {
                    node,
                    uplink,
                    drop_prob,
                    from,
                    until,
                } => {
                    check_window(ev, from, until)?;
                    check_node(ev, node)?;
                    check_uplink(ev, uplink)?;
                    check_prob(ev, drop_prob)?;
                }
                FaultEvent::Mistune {
                    node, from, until, ..
                } => {
                    check_window(ev, from, until)?;
                    check_node(ev, node)?;
                }
                FaultEvent::ControlLoss {
                    drop_prob,
                    from,
                    until,
                } => {
                    check_window(ev, from, until)?;
                    check_prob(ev, drop_prob)?;
                }
                FaultEvent::BankFailure {
                    group,
                    uplink,
                    chip,
                    chip_capacity,
                    from,
                    until,
                }
                | FaultEvent::BankDrift {
                    group,
                    uplink,
                    chip,
                    chip_capacity,
                    from,
                    until,
                    ..
                } => {
                    check_window(ev, from, until)?;
                    check_group(ev, group)?;
                    check_uplink(ev, uplink)?;
                    let chips = (group_size as u16).div_ceil(chip_capacity.max(1));
                    if chip_capacity == 0 || chip >= chips {
                        return Err(FaultScriptError::ChipOutOfRange { chip, chips });
                    }
                }
                FaultEvent::GratingFault {
                    group,
                    uplink,
                    port_lo,
                    port_hi,
                    from,
                    until,
                } => {
                    check_window(ev, from, until)?;
                    check_group(ev, group)?;
                    check_uplink(ev, uplink)?;
                    if port_lo >= port_hi || port_hi as usize > group_size {
                        return Err(FaultScriptError::PortBandOutOfRange {
                            port_lo,
                            port_hi,
                            ports: group_size,
                        });
                    }
                }
                FaultEvent::Byzantine {
                    node,
                    forge_prob,
                    extra_requests,
                    from,
                    until,
                } => {
                    check_window(ev, from, until)?;
                    check_node(ev, node)?;
                    check_prob(ev, forge_prob)?;
                    if forge_prob == 0.0 && extra_requests == 0 {
                        return Err(FaultScriptError::IdleByzantine { node: node.0 });
                    }
                }
            }
        }
        // Contradictions across events.
        for (a, ea) in self.events.iter().enumerate() {
            for eb in &self.events[a + 1..] {
                match (*ea, *eb) {
                    (
                        FaultEvent::Crash {
                            node: n1,
                            epoch: e1,
                        },
                        FaultEvent::Recover {
                            node: n2,
                            epoch: e2,
                        },
                    )
                    | (
                        FaultEvent::Recover {
                            node: n1,
                            epoch: e1,
                        },
                        FaultEvent::Crash {
                            node: n2,
                            epoch: e2,
                        },
                    ) if n1 == n2 && e1 == e2 => {
                        return Err(FaultScriptError::Contradiction {
                            detail: format!(
                                "node {} both crashes and recovers at epoch {e1}",
                                n1.0
                            ),
                        });
                    }
                    (
                        FaultEvent::Mistune {
                            node: n1,
                            offset: o1,
                            from: f1,
                            until: u1,
                        },
                        FaultEvent::Mistune {
                            node: n2,
                            offset: o2,
                            from: f2,
                            until: u2,
                        },
                    ) if n1 == n2 && o1 != o2 && f1 < u2 && f2 < u1 => {
                        return Err(FaultScriptError::Contradiction {
                            detail: format!(
                                "node {}'s laser pinned to offsets {o1} and {o2} \
                                 in overlapping windows",
                                n1.0
                            ),
                        });
                    }
                    _ => {}
                }
            }
        }
        Ok(())
    }

    /// Crash/recover transitions due at exactly `epoch`, in script order,
    /// appended into `out` (cleared first — a scratch buffer the engine
    /// loop reuses every epoch instead of allocating). `true` = crash,
    /// `false` = recover.
    pub fn node_events_at(&self, epoch: u64, out: &mut Vec<(NodeId, bool)>) {
        out.clear();
        for e in &self.events {
            match *e {
                FaultEvent::Crash { node, epoch: at } if at == epoch => out.push((node, true)),
                FaultEvent::Recover { node, epoch: at } if at == epoch => out.push((node, false)),
                _ => {}
            }
        }
    }

    /// Rebuild the flat per-epoch fault snapshot. `group_size` (= AWGR
    /// ports = bank wavelengths per group) drives the expansion of
    /// correlated bank/grating domains into their dead TX columns.
    pub fn refresh(
        &self,
        epoch: u64,
        n: usize,
        uplinks: usize,
        group_size: usize,
        out: &mut ActiveFaults,
    ) {
        out.grey.clear();
        out.mistuned.clear();
        out.mistuned_nodes.clear();
        out.control_loss = 0.0;
        out.byz.clear();
        out.byz_extra.clear();
        out.byz_nodes.clear();
        let kill_column = |out: &mut ActiveFaults, node: usize, uplink: u16| {
            if node >= n {
                return;
            }
            if out.grey.is_empty() {
                out.grey.resize(n * uplinks, 0.0);
            }
            out.grey[node * uplinks + uplink as usize] = 1.0;
        };
        for e in &self.events {
            match *e {
                FaultEvent::GreyLink {
                    node,
                    uplink,
                    drop_prob,
                    from,
                    until,
                } if (from..until).contains(&epoch) => {
                    if out.grey.is_empty() {
                        out.grey.resize(n * uplinks, 0.0);
                    }
                    let idx = node.0 as usize * uplinks + uplink as usize;
                    // Overlapping windows on one link compound (this form
                    // is exact when the accumulator is still zero).
                    out.grey[idx] += drop_prob - out.grey[idx] * drop_prob;
                }
                FaultEvent::Mistune {
                    node,
                    offset,
                    from,
                    until,
                } if (from..until).contains(&epoch) => {
                    if out.mistuned.is_empty() {
                        out.mistuned.resize(n, None);
                    }
                    if out.mistuned[node.0 as usize].is_none() {
                        out.mistuned_nodes.push(node);
                    }
                    out.mistuned[node.0 as usize] = Some(offset);
                }
                FaultEvent::ControlLoss {
                    drop_prob,
                    from,
                    until,
                } if (from..until).contains(&epoch) => {
                    out.control_loss += drop_prob - out.control_loss * drop_prob;
                }
                FaultEvent::BankFailure {
                    group,
                    uplink,
                    chip,
                    chip_capacity,
                    from,
                    until,
                } if (from..until).contains(&epoch) => {
                    // Each dead channel silences one AWGR output port =
                    // one node's TX column on this uplink (a p=1.0 grey
                    // column, so the whole detection/repair stack sees
                    // it through the tested grey paths).
                    let awgr = Awgr::new(group_size as u16);
                    let input = uplink % group_size as u16;
                    for port in awgr.dead_outputs_for_chip(input, chip, chip_capacity) {
                        let node = group as usize * group_size + port as usize;
                        kill_column(out, node, uplink);
                    }
                }
                FaultEvent::BankDrift {
                    group,
                    uplink,
                    chip,
                    chip_capacity,
                    rx_dbm_from,
                    rx_dbm_to,
                    modulation,
                    cell_bytes,
                    from,
                    until,
                } if (from..until).contains(&epoch) => {
                    // Linear power ramp across the window; the BER/FEC
                    // stack turns this epoch's power into this epoch's
                    // per-cell drop probability, compounded into the
                    // accumulator like any other grey source.
                    let t = (epoch - from) as f64 / (until - from) as f64;
                    let rx_dbm = rx_dbm_from + (rx_dbm_to - rx_dbm_from) * t;
                    let p = cell_drop_probability(rx_dbm, modulation, cell_bytes);
                    if p > 0.0 {
                        let awgr = Awgr::new(group_size as u16);
                        let input = uplink % group_size as u16;
                        for port in awgr.dead_outputs_for_chip(input, chip, chip_capacity) {
                            let node = group as usize * group_size + port as usize;
                            if node >= n {
                                continue;
                            }
                            if out.grey.is_empty() {
                                out.grey.resize(n * uplinks, 0.0);
                            }
                            let idx = node * uplinks + uplink as usize;
                            out.grey[idx] += p - out.grey[idx] * p;
                        }
                    }
                }
                FaultEvent::GratingFault {
                    group,
                    uplink,
                    port_lo,
                    port_hi,
                    from,
                    until,
                } if (from..until).contains(&epoch) => {
                    for port in port_lo..port_hi.min(group_size as u16) {
                        let node = group as usize * group_size + port as usize;
                        kill_column(out, node, uplink);
                    }
                }
                FaultEvent::Byzantine {
                    node,
                    forge_prob,
                    extra_requests,
                    from,
                    until,
                } if (from..until).contains(&epoch) => {
                    if out.byz.is_empty() {
                        out.byz.resize(n, 0.0);
                        out.byz_extra.resize(n, 0);
                    }
                    let i = node.0 as usize;
                    if out.byz[i] == 0.0 && out.byz_extra[i] == 0 {
                        out.byz_nodes.push(node);
                    }
                    out.byz[i] += forge_prob - out.byz[i] * forge_prob;
                    out.byz_extra[i] += extra_requests;
                }
                _ => {}
            }
        }
    }

    /// One Bernoulli draw from the fault stream (erasures, control loss).
    pub fn draw(&mut self, prob: f64) -> bool {
        prob > 0.0 && self.rng.gen_bool(prob)
    }

    /// The last epoch at which this script changes anything (grey/mistune
    /// windows closing, crashes, recoveries). Runs that measure
    /// degradation should extend at least this far.
    pub fn horizon(&self) -> u64 {
        self.events
            .iter()
            .map(|e| match *e {
                FaultEvent::Crash { epoch, .. } | FaultEvent::Recover { epoch, .. } => epoch,
                FaultEvent::GreyLink { until, .. }
                | FaultEvent::Mistune { until, .. }
                | FaultEvent::ControlLoss { until, .. }
                | FaultEvent::BankFailure { until, .. }
                | FaultEvent::BankDrift { until, .. }
                | FaultEvent::GratingFault { until, .. }
                | FaultEvent::Byzantine { until, .. } => until,
            })
            .max()
            .unwrap_or(0)
    }
}

/// Per-cell drop probability of a degraded link: pre-FEC BER from the
/// receiver model at `rx_dbm`, KP4 frame error rate, compounded over the
/// RS frames a cell spans.
pub fn cell_drop_probability(rx_dbm: f64, modulation: Modulation, cell_bytes: u32) -> f64 {
    let ber = Receiver::new(modulation).pre_fec_ber(rx_dbm);
    let fer = KP4.frame_error_rate(ber);
    let frame_payload_bits = (KP4.k * KP4.m) as f64;
    let frames = ((cell_bytes * 8) as f64 / frame_payload_bits).ceil();
    1.0 - (1.0 - fer).powf(frames)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_gate_the_snapshot() {
        let inj = FaultInjector::new(1)
            .grey_link(NodeId(2), 1, 0.5, 10, 20)
            .mistune(NodeId(3), 2, 15, 25)
            .control_loss(0.1, 5, 30);
        let mut af = ActiveFaults::default();
        inj.refresh(9, 8, 4, 4, &mut af);
        assert!(!af.any_grey());
        assert!(!af.any_mistune());
        assert_eq!(af.control_loss, 0.1);
        inj.refresh(15, 8, 4, 4, &mut af);
        assert_eq!(af.grey_prob(NodeId(2), 1, 4), 0.5);
        assert_eq!(af.grey_prob(NodeId(2), 0, 4), 0.0);
        assert_eq!(af.mistune_of(NodeId(3)), Some(2));
        assert_eq!(af.mistuned_nodes, vec![NodeId(3)]);
        inj.refresh(25, 8, 4, 4, &mut af);
        assert!(!af.any_mistune());
        assert_eq!(af.mistune_of(NodeId(3)), None);
        assert!(inj.has_link_faults());
        assert_eq!(inj.horizon(), 30);
    }

    #[test]
    fn node_events_fire_at_their_epoch() {
        let inj = FaultInjector::new(1)
            .crash(NodeId(1), 5)
            .recover(NodeId(1), 9)
            .crash(NodeId(2), 5);
        let mut out = Vec::new();
        inj.node_events_at(5, &mut out);
        assert_eq!(out, vec![(NodeId(1), true), (NodeId(2), true)]);
        inj.node_events_at(9, &mut out);
        assert_eq!(out, vec![(NodeId(1), false)]);
        inj.node_events_at(6, &mut out);
        assert!(out.is_empty(), "scratch must be cleared between epochs");
        assert!(!inj.has_link_faults());
    }

    #[test]
    fn bank_failure_expands_to_its_column_set() {
        // 16 nodes, group size 4, 2 uplinks. Chip 0 (capacity 2) of the
        // bank feeding (group 1, uplink 1) kills channels {0, 1}; AWGR
        // input 1 % 4 = 1 routes them to ports {1, 2} — nodes 5 and 6,
        // column 1 only.
        let inj = FaultInjector::new(1).bank_failure(1, 1, 0, 2, 10, 20);
        assert!(inj.has_link_faults());
        assert!(!inj.has_byzantine());
        assert_eq!(inj.horizon(), 20);
        let mut af = ActiveFaults::default();
        inj.refresh(10, 16, 2, 4, &mut af);
        assert!(af.any_grey());
        for n in 0..16u32 {
            for u in 0..2u16 {
                let expect = if (n == 5 || n == 6) && u == 1 {
                    1.0
                } else {
                    0.0
                };
                assert_eq!(af.grey_prob(NodeId(n), u, 2), expect, "node {n} col {u}");
            }
        }
        inj.refresh(20, 16, 2, 4, &mut af);
        assert!(!af.any_grey(), "window closed");
    }

    #[test]
    fn bank_drift_ramps_its_column_set_together() {
        // Same geometry as the bank-failure test: chip 0 (capacity 2) of
        // (group 1, uplink 1) feeds nodes 5 and 6 on column 1. Power
        // drifts from healthy (-4 dBm) to dead (-20 dBm) over epochs
        // [100, 200): drop probability must start negligible, rise
        // monotonically, be identical across the blast radius, and stay
        // zero everywhere else.
        let inj = FaultInjector::new(1).bank_drift(
            1,
            1,
            0,
            2,
            -4.0,
            -20.0,
            Modulation::Pam4_50,
            562,
            100,
            200,
        );
        assert!(inj.has_link_faults());
        assert_eq!(inj.horizon(), 200);
        assert_eq!(inj.validate(16, 2, 4), Ok(()));
        let mut af = ActiveFaults::default();
        inj.refresh(99, 16, 2, 4, &mut af);
        assert!(!af.any_grey(), "ramp must not leak before its window");
        let mut prev = -1.0;
        for epoch in [100u64, 130, 160, 190, 199] {
            inj.refresh(epoch, 16, 2, 4, &mut af);
            let p5 = af.grey_prob(NodeId(5), 1, 2);
            let p6 = af.grey_prob(NodeId(6), 1, 2);
            assert_eq!(p5, p6, "chip-fed columns must degrade together");
            assert!(p5 >= prev, "ramp went backwards at epoch {epoch}");
            prev = p5;
            assert_eq!(af.grey_prob(NodeId(5), 0, 2), 0.0, "wrong column");
            assert_eq!(af.grey_prob(NodeId(4), 1, 2), 0.0, "wrong node");
        }
        inj.refresh(100, 16, 2, 4, &mut af);
        assert!(
            af.grey_prob(NodeId(5), 1, 2) < 1e-6,
            "healthy end of the ramp already lossy"
        );
        assert!(prev > 0.99, "degraded end of the ramp not near-dead");
        inj.refresh(200, 16, 2, 4, &mut af);
        assert!(!af.any_grey(), "window closed");
    }

    #[test]
    fn bank_drift_validation_reuses_the_bank_domain_checks() {
        let bad_group = FaultInjector::new(1).bank_drift(
            4,
            0,
            0,
            2,
            -4.0,
            -20.0,
            Modulation::Pam4_50,
            562,
            0,
            10,
        );
        assert!(matches!(
            bad_group.validate(16, 2, 4).unwrap_err(),
            FaultScriptError::GroupOutOfRange { group: 4, .. }
        ));
        let bad_chip = FaultInjector::new(1).bank_drift(
            0,
            0,
            2,
            2,
            -4.0,
            -20.0,
            Modulation::Pam4_50,
            562,
            0,
            10,
        );
        assert!(matches!(
            bad_chip.validate(16, 2, 4).unwrap_err(),
            FaultScriptError::ChipOutOfRange { chip: 2, chips: 2 }
        ));
        let inverted = FaultInjector::new(1).bank_drift(
            0,
            0,
            0,
            2,
            -4.0,
            -20.0,
            Modulation::Pam4_50,
            562,
            20,
            10,
        );
        assert!(matches!(
            inverted.validate(16, 2, 4).unwrap_err(),
            FaultScriptError::InvertedWindow { .. }
        ));
    }

    #[test]
    fn grating_fault_kills_the_port_band() {
        let inj = FaultInjector::new(1).grating_fault(0, 0, 1, 3, 0, 5);
        let mut af = ActiveFaults::default();
        inj.refresh(2, 8, 2, 4, &mut af);
        for n in 0..8u32 {
            let expect = if n == 1 || n == 2 { 1.0 } else { 0.0 };
            assert_eq!(af.grey_prob(NodeId(n), 0, 2), expect);
            assert_eq!(af.grey_prob(NodeId(n), 1, 2), 0.0);
        }
    }

    #[test]
    fn byzantine_window_arms_the_snapshot() {
        let inj = FaultInjector::new(1).byzantine(NodeId(3), 0.25, 4, 10, 30);
        assert!(inj.has_byzantine());
        assert!(!inj.has_link_faults());
        let mut af = ActiveFaults::default();
        inj.refresh(5, 8, 2, 4, &mut af);
        assert!(!af.any_byz());
        assert_eq!(af.byz_prob(NodeId(3)), 0.0);
        inj.refresh(10, 8, 2, 4, &mut af);
        assert!(af.any_byz());
        assert_eq!(af.byz_nodes, vec![NodeId(3)]);
        assert_eq!(af.byz_prob(NodeId(3)), 0.25);
        assert_eq!(af.byz_extra_of(NodeId(3)), 4);
        assert_eq!(af.byz_prob(NodeId(2)), 0.0);
        inj.refresh(30, 8, 2, 4, &mut af);
        assert!(!af.any_byz());
    }

    #[test]
    fn validation_accepts_a_well_formed_script() {
        let inj = FaultInjector::new(1)
            .crash(NodeId(1), 5)
            .recover(NodeId(1), 9)
            .grey_link(NodeId(2), 1, 0.5, 10, 20)
            .bank_failure(1, 1, 0, 2, 10, 20)
            .grating_fault(0, 0, 1, 3, 0, 5)
            .byzantine(NodeId(3), 0.25, 4, 10, 30);
        assert_eq!(inj.validate(16, 2, 4), Ok(()));
    }

    #[test]
    fn validation_rejects_inverted_windows() {
        let inj = FaultInjector::new(1).grey_link(NodeId(0), 0, 0.5, 20, 10);
        let err = inj.validate(16, 2, 4).unwrap_err();
        assert!(matches!(err, FaultScriptError::InvertedWindow { .. }));
        assert!(err.to_string().contains("inverted"), "{err}");
    }

    #[test]
    fn validation_rejects_out_of_range_nodes_and_uplinks() {
        let inj = FaultInjector::new(1).crash(NodeId(16), 5);
        assert!(matches!(
            inj.validate(16, 2, 4).unwrap_err(),
            FaultScriptError::NodeOutOfRange { node: 16, .. }
        ));
        let inj = FaultInjector::new(1).grey_link(NodeId(0), 2, 0.5, 0, 10);
        assert!(matches!(
            inj.validate(16, 2, 4).unwrap_err(),
            FaultScriptError::UplinkOutOfRange { uplink: 2, .. }
        ));
        let inj = FaultInjector::new(1).byzantine(NodeId(99), 0.5, 0, 0, 10);
        assert!(matches!(
            inj.validate(16, 2, 4).unwrap_err(),
            FaultScriptError::NodeOutOfRange { node: 99, .. }
        ));
    }

    #[test]
    fn validation_rejects_out_of_range_domains() {
        let inj = FaultInjector::new(1).bank_failure(4, 0, 0, 2, 0, 10);
        assert!(matches!(
            inj.validate(16, 2, 4).unwrap_err(),
            FaultScriptError::GroupOutOfRange { group: 4, .. }
        ));
        // Group size 4, chips of 2 channels -> chips 0..2; chip 2 is off
        // the end of the bank.
        let inj = FaultInjector::new(1).bank_failure(0, 0, 2, 2, 0, 10);
        assert!(matches!(
            inj.validate(16, 2, 4).unwrap_err(),
            FaultScriptError::ChipOutOfRange { chip: 2, chips: 2 }
        ));
        let inj = FaultInjector::new(1).grating_fault(0, 0, 2, 7, 0, 10);
        assert!(matches!(
            inj.validate(16, 2, 4).unwrap_err(),
            FaultScriptError::PortBandOutOfRange { port_hi: 7, .. }
        ));
    }

    #[test]
    fn validation_rejects_contradictions() {
        let inj = FaultInjector::new(1)
            .crash(NodeId(3), 7)
            .recover(NodeId(3), 7);
        let err = inj.validate(16, 2, 4).unwrap_err();
        assert!(matches!(err, FaultScriptError::Contradiction { .. }));
        assert!(err.to_string().contains("crashes and recovers"), "{err}");
        let inj = FaultInjector::new(1)
            .mistune(NodeId(2), 1, 0, 20)
            .mistune(NodeId(2), 3, 10, 30);
        assert!(matches!(
            inj.validate(16, 2, 4).unwrap_err(),
            FaultScriptError::Contradiction { .. }
        ));
        // Same offset overlapping, or different offsets disjoint: fine.
        let inj = FaultInjector::new(1)
            .mistune(NodeId(2), 1, 0, 20)
            .mistune(NodeId(2), 1, 10, 30)
            .mistune(NodeId(2), 3, 40, 50);
        assert_eq!(inj.validate(16, 2, 4), Ok(()));
    }

    #[test]
    fn validation_rejects_an_idle_byzantine_window() {
        let inj = FaultInjector::new(1).byzantine(NodeId(0), 0.0, 0, 0, 10);
        assert!(matches!(
            inj.validate(16, 2, 4).unwrap_err(),
            FaultScriptError::IdleByzantine { node: 0 }
        ));
    }

    #[test]
    fn ber_fed_drop_probability_is_monotone_in_power() {
        // A healthy receive power is error-free through KP4; a badly
        // degraded one loses essentially every cell; in between the curve
        // is monotone.
        let healthy = cell_drop_probability(-4.0, Modulation::Pam4_50, 562);
        let marginal = cell_drop_probability(-11.0, Modulation::Pam4_50, 562);
        let dead = cell_drop_probability(-20.0, Modulation::Pam4_50, 562);
        assert!(healthy < 1e-9, "healthy link drops cells: {healthy}");
        assert!(dead > 0.99, "dead link still delivers: {dead}");
        assert!(healthy <= marginal && marginal <= dead);
    }

    #[test]
    fn node_streams_are_deterministic_distinct_and_seed_dependent() {
        let seq = |mut r: SmallRng| (0..64).map(|_| r.gen_bool(0.5)).collect::<Vec<_>>();
        let a: Vec<_> = FaultInjector::new(7)
            .node_streams(4)
            .into_iter()
            .map(seq)
            .collect();
        let b: Vec<_> = FaultInjector::new(7)
            .node_streams(4)
            .into_iter()
            .map(seq)
            .collect();
        assert_eq!(a, b, "same seed must yield the same per-node streams");
        for i in 0..4 {
            for j in i + 1..4 {
                assert_ne!(a[i], a[j], "nodes {i} and {j} share a stream");
            }
        }
        let c: Vec<_> = FaultInjector::new(8)
            .node_streams(4)
            .into_iter()
            .map(seq)
            .collect();
        assert_ne!(a, c, "streams must depend on the seed");
    }

    #[test]
    fn fault_rng_is_deterministic_and_seed_dependent() {
        let draw_seq = |seed: u64| {
            let mut inj = FaultInjector::new(seed);
            (0..64).map(|_| inj.draw(0.5)).collect::<Vec<_>>()
        };
        assert_eq!(draw_seq(7), draw_seq(7));
        assert_ne!(draw_seq(7), draw_seq(8));
        let mut inj = FaultInjector::new(1);
        assert!(!inj.draw(0.0), "p=0 must not draw");
    }
}
