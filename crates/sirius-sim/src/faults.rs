//! Scriptable fault injection for the Sirius simulator (§4.5).
//!
//! The injector owns the *ground truth* of what is broken and when; the
//! simulator never tells its routing plane about any of it. Detection is
//! emergent: a fault only affects routing once the silence-driven
//! [`sirius_core::fault::FailureDetector`] notices the missing scheduled
//! slots and stages a consistent update (see `sirius_net`).
//!
//! Supported faults:
//!
//! * **Fail-stop crashes** ([`FaultEvent::Crash`]) — the node stops
//!   transmitting (no data, no keepalives) and blackholes arrivals, with
//!   optional scheduled [`FaultEvent::Recover`].
//! * **Grey links** ([`FaultEvent::GreyLink`]) — one TX column erases
//!   cells with a probability fed from the `sirius-optics` BER model
//!   ([`FaultInjector::grey_link_from_ber`]): a degraded transceiver drops
//!   cells on specific paths while the node stays otherwise healthy.
//! * **Mistuned lasers** ([`FaultEvent::Mistune`]) — a stuck/mistuned
//!   tunable laser shifts the node's wavelength by a fixed slot offset, so
//!   its cells land on the *wrong* RX port (corrupting whatever legitimate
//!   cell arrives there) for the duration of the window.
//! * **Control loss** ([`FaultEvent::ControlLoss`]) — request/grant
//!   messages in `CcMode::Protocol` are dropped with a probability; the
//!   protocol's sticky-request re-issue and grant-expiry backstops must
//!   absorb this without losing data.
//!
//! Fault randomness is decoupled from the simulator's protocol RNG
//! (`seed ^ salt`), and erasure draws are made once per *scheduled slot*
//! in a fault window — never per data cell — so a fault script perturbs
//! the protocol's random choices not at all and double runs stay
//! bit-identical. Per-slot grey-erasure draws additionally come from
//! **per-node streams** ([`FaultInjector::node_streams`]): each sender
//! consumes only its own stream, so the draw sequence a node sees is a
//! function of the script and seed alone — independent of how the slot
//! engine partitions nodes across shards ([`crate::SiriusSimConfig`]'s
//! `shards`). Epoch-boundary draws (control loss) stay on the injector's
//! own serial stream ([`FaultInjector::draw`]).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sirius_core::topology::NodeId;
use sirius_optics::ber::{Modulation, Receiver};
use sirius_optics::fec::KP4;

/// One scripted fault. Windows are `[from, until)` in epochs; events are
/// instantaneous at their epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultEvent {
    /// Fail-stop: `node` dies at `epoch`.
    Crash { node: NodeId, epoch: u64 },
    /// `node` reboots at `epoch` (queues survive; detector state does not).
    Recover { node: NodeId, epoch: u64 },
    /// TX column `uplink` of `node` erases each scheduled slot with
    /// probability `drop_prob` during `[from, until)`.
    GreyLink {
        node: NodeId,
        uplink: u16,
        drop_prob: f64,
        from: u64,
        until: u64,
    },
    /// `node`'s laser is stuck `offset` grating ports away from its tuning
    /// target during `[from, until)`: every cell it sends lands on the RX
    /// port scheduled `offset` slots later in the cycle.
    Mistune {
        node: NodeId,
        offset: u16,
        from: u64,
        until: u64,
    },
    /// Request/grant messages are dropped with `drop_prob` during
    /// `[from, until)` (Protocol mode only).
    ControlLoss {
        drop_prob: f64,
        from: u64,
        until: u64,
    },
}

/// Per-epoch snapshot of the active fault plane, rebuilt at boundaries so
/// the per-slot hot path only reads flat arrays.
#[derive(Debug, Default)]
pub struct ActiveFaults {
    /// Erasure probability per `(node, uplink)` (empty when no grey link
    /// is active this epoch).
    pub grey: Vec<f64>,
    /// Mistune offset per node (empty when none active this epoch).
    pub mistuned: Vec<Option<u16>>,
    /// Probability of losing each control message this epoch.
    pub control_loss: f64,
    /// Nodes with a mistune active this epoch (for the per-slot pre-pass).
    pub mistuned_nodes: Vec<NodeId>,
}

impl ActiveFaults {
    pub fn any_grey(&self) -> bool {
        !self.grey.is_empty()
    }
    pub fn any_mistune(&self) -> bool {
        !self.mistuned_nodes.is_empty()
    }
    pub fn grey_prob(&self, node: NodeId, uplink: u16, uplinks: usize) -> f64 {
        if self.grey.is_empty() {
            0.0
        } else {
            self.grey[node.0 as usize * uplinks + uplink as usize]
        }
    }
    pub fn mistune_of(&self, node: NodeId) -> Option<u16> {
        if self.mistuned.is_empty() {
            None
        } else {
            self.mistuned[node.0 as usize]
        }
    }
}

/// Scriptable fault injector; build one, add events, hand it to
/// `SiriusSim::with_faults`.
#[derive(Debug)]
pub struct FaultInjector {
    events: Vec<FaultEvent>,
    seed: u64,
    rng: SmallRng,
}

/// Salt for the injector's RNG stream so fault draws are independent of
/// the simulator's protocol draws even under the same seed.
const FAULT_RNG_SALT: u64 = 0x5149_5249_5553_4633; // "SIRIUSF3"

impl FaultInjector {
    pub fn new(seed: u64) -> FaultInjector {
        FaultInjector {
            events: Vec::new(),
            seed,
            rng: SmallRng::seed_from_u64(seed ^ FAULT_RNG_SALT),
        }
    }

    /// One independent RNG stream per node for the per-slot grey-erasure
    /// draws. A sender's stream advances only when *it* draws, so the
    /// sequence each node consumes does not depend on the node partition
    /// the slot engine runs with — sharded and serial runs make the
    /// identical draws.
    pub fn node_streams(&self, n: usize) -> Vec<SmallRng> {
        (0..n as u64)
            .map(|i| {
                // Distinct, seed-dependent stream per node; golden-ratio
                // stride keeps nearby node ids from colliding before
                // `seed_from_u64`'s SplitMix64 expansion.
                let s = self.seed ^ FAULT_RNG_SALT ^ (i + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                SmallRng::seed_from_u64(s)
            })
            .collect()
    }

    pub fn push(&mut self, ev: FaultEvent) -> &mut Self {
        self.events.push(ev);
        self
    }

    pub fn crash(mut self, node: NodeId, epoch: u64) -> Self {
        self.events.push(FaultEvent::Crash { node, epoch });
        self
    }

    pub fn recover(mut self, node: NodeId, epoch: u64) -> Self {
        self.events.push(FaultEvent::Recover { node, epoch });
        self
    }

    pub fn grey_link(
        mut self,
        node: NodeId,
        uplink: u16,
        drop_prob: f64,
        from: u64,
        until: u64,
    ) -> Self {
        assert!((0.0..=1.0).contains(&drop_prob));
        self.events.push(FaultEvent::GreyLink {
            node,
            uplink,
            drop_prob,
            from,
            until,
        });
        self
    }

    /// Grey link whose erasure probability comes from the optics stack: a
    /// transceiver receiving `rx_dbm` of optical power has a pre-FEC BER
    /// from the [`Receiver`] model; KP4 FEC then either corrects a frame
    /// or loses it, so the per-cell drop probability is the chance that
    /// any of the cell's RS frames is uncorrectable.
    #[allow(clippy::too_many_arguments)]
    pub fn grey_link_from_ber(
        self,
        node: NodeId,
        uplink: u16,
        rx_dbm: f64,
        modulation: Modulation,
        cell_bytes: u32,
        from: u64,
        until: u64,
    ) -> Self {
        let p = cell_drop_probability(rx_dbm, modulation, cell_bytes);
        self.grey_link(node, uplink, p, from, until)
    }

    pub fn mistune(mut self, node: NodeId, offset: u16, from: u64, until: u64) -> Self {
        assert!(offset > 0, "offset 0 is a correctly tuned laser");
        self.events.push(FaultEvent::Mistune {
            node,
            offset,
            from,
            until,
        });
        self
    }

    pub fn control_loss(mut self, drop_prob: f64, from: u64, until: u64) -> Self {
        assert!((0.0..=1.0).contains(&drop_prob));
        self.events.push(FaultEvent::ControlLoss {
            drop_prob,
            from,
            until,
        });
        self
    }

    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Does any event ever perturb individual links (grey or mistune)?
    /// Gates the per-link detector bookkeeping in the simulator.
    pub fn has_link_faults(&self) -> bool {
        self.events
            .iter()
            .any(|e| matches!(e, FaultEvent::GreyLink { .. } | FaultEvent::Mistune { .. }))
    }

    /// Crash/recover transitions due at exactly `epoch`, in script order.
    /// `true` = crash, `false` = recover.
    pub fn node_events_at(&self, epoch: u64) -> Vec<(NodeId, bool)> {
        self.events
            .iter()
            .filter_map(|e| match *e {
                FaultEvent::Crash { node, epoch: at } if at == epoch => Some((node, true)),
                FaultEvent::Recover { node, epoch: at } if at == epoch => Some((node, false)),
                _ => None,
            })
            .collect()
    }

    /// Rebuild the flat per-epoch fault snapshot.
    pub fn refresh(&self, epoch: u64, n: usize, uplinks: usize, out: &mut ActiveFaults) {
        out.grey.clear();
        out.mistuned.clear();
        out.mistuned_nodes.clear();
        out.control_loss = 0.0;
        for e in &self.events {
            match *e {
                FaultEvent::GreyLink {
                    node,
                    uplink,
                    drop_prob,
                    from,
                    until,
                } if (from..until).contains(&epoch) => {
                    if out.grey.is_empty() {
                        out.grey.resize(n * uplinks, 0.0);
                    }
                    let idx = node.0 as usize * uplinks + uplink as usize;
                    // Overlapping windows on one link compound (this form
                    // is exact when the accumulator is still zero).
                    out.grey[idx] += drop_prob - out.grey[idx] * drop_prob;
                }
                FaultEvent::Mistune {
                    node,
                    offset,
                    from,
                    until,
                } if (from..until).contains(&epoch) => {
                    if out.mistuned.is_empty() {
                        out.mistuned.resize(n, None);
                    }
                    if out.mistuned[node.0 as usize].is_none() {
                        out.mistuned_nodes.push(node);
                    }
                    out.mistuned[node.0 as usize] = Some(offset);
                }
                FaultEvent::ControlLoss {
                    drop_prob,
                    from,
                    until,
                } if (from..until).contains(&epoch) => {
                    out.control_loss += drop_prob - out.control_loss * drop_prob;
                }
                _ => {}
            }
        }
    }

    /// One Bernoulli draw from the fault stream (erasures, control loss).
    pub fn draw(&mut self, prob: f64) -> bool {
        prob > 0.0 && self.rng.gen_bool(prob)
    }

    /// The last epoch at which this script changes anything (grey/mistune
    /// windows closing, crashes, recoveries). Runs that measure
    /// degradation should extend at least this far.
    pub fn horizon(&self) -> u64 {
        self.events
            .iter()
            .map(|e| match *e {
                FaultEvent::Crash { epoch, .. } | FaultEvent::Recover { epoch, .. } => epoch,
                FaultEvent::GreyLink { until, .. }
                | FaultEvent::Mistune { until, .. }
                | FaultEvent::ControlLoss { until, .. } => until,
            })
            .max()
            .unwrap_or(0)
    }
}

/// Per-cell drop probability of a degraded link: pre-FEC BER from the
/// receiver model at `rx_dbm`, KP4 frame error rate, compounded over the
/// RS frames a cell spans.
pub fn cell_drop_probability(rx_dbm: f64, modulation: Modulation, cell_bytes: u32) -> f64 {
    let ber = Receiver::new(modulation).pre_fec_ber(rx_dbm);
    let fer = KP4.frame_error_rate(ber);
    let frame_payload_bits = (KP4.k * KP4.m) as f64;
    let frames = ((cell_bytes * 8) as f64 / frame_payload_bits).ceil();
    1.0 - (1.0 - fer).powf(frames)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_gate_the_snapshot() {
        let inj = FaultInjector::new(1)
            .grey_link(NodeId(2), 1, 0.5, 10, 20)
            .mistune(NodeId(3), 2, 15, 25)
            .control_loss(0.1, 5, 30);
        let mut af = ActiveFaults::default();
        inj.refresh(9, 8, 4, &mut af);
        assert!(!af.any_grey());
        assert!(!af.any_mistune());
        assert_eq!(af.control_loss, 0.1);
        inj.refresh(15, 8, 4, &mut af);
        assert_eq!(af.grey_prob(NodeId(2), 1, 4), 0.5);
        assert_eq!(af.grey_prob(NodeId(2), 0, 4), 0.0);
        assert_eq!(af.mistune_of(NodeId(3)), Some(2));
        assert_eq!(af.mistuned_nodes, vec![NodeId(3)]);
        inj.refresh(25, 8, 4, &mut af);
        assert!(!af.any_mistune());
        assert_eq!(af.mistune_of(NodeId(3)), None);
        assert!(inj.has_link_faults());
        assert_eq!(inj.horizon(), 30);
    }

    #[test]
    fn node_events_fire_at_their_epoch() {
        let inj = FaultInjector::new(1)
            .crash(NodeId(1), 5)
            .recover(NodeId(1), 9)
            .crash(NodeId(2), 5);
        assert_eq!(
            inj.node_events_at(5),
            vec![(NodeId(1), true), (NodeId(2), true)]
        );
        assert_eq!(inj.node_events_at(9), vec![(NodeId(1), false)]);
        assert!(inj.node_events_at(6).is_empty());
        assert!(!inj.has_link_faults());
    }

    #[test]
    fn ber_fed_drop_probability_is_monotone_in_power() {
        // A healthy receive power is error-free through KP4; a badly
        // degraded one loses essentially every cell; in between the curve
        // is monotone.
        let healthy = cell_drop_probability(-4.0, Modulation::Pam4_50, 562);
        let marginal = cell_drop_probability(-11.0, Modulation::Pam4_50, 562);
        let dead = cell_drop_probability(-20.0, Modulation::Pam4_50, 562);
        assert!(healthy < 1e-9, "healthy link drops cells: {healthy}");
        assert!(dead > 0.99, "dead link still delivers: {dead}");
        assert!(healthy <= marginal && marginal <= dead);
    }

    #[test]
    fn node_streams_are_deterministic_distinct_and_seed_dependent() {
        let seq = |mut r: SmallRng| (0..64).map(|_| r.gen_bool(0.5)).collect::<Vec<_>>();
        let a: Vec<_> = FaultInjector::new(7)
            .node_streams(4)
            .into_iter()
            .map(seq)
            .collect();
        let b: Vec<_> = FaultInjector::new(7)
            .node_streams(4)
            .into_iter()
            .map(seq)
            .collect();
        assert_eq!(a, b, "same seed must yield the same per-node streams");
        for i in 0..4 {
            for j in i + 1..4 {
                assert_ne!(a[i], a[j], "nodes {i} and {j} share a stream");
            }
        }
        let c: Vec<_> = FaultInjector::new(8)
            .node_streams(4)
            .into_iter()
            .map(seq)
            .collect();
        assert_ne!(a, c, "streams must depend on the seed");
    }

    #[test]
    fn fault_rng_is_deterministic_and_seed_dependent() {
        let draw_seq = |seed: u64| {
            let mut inj = FaultInjector::new(seed);
            (0..64).map(|_| inj.draw(0.5)).collect::<Vec<_>>()
        };
        assert_eq!(draw_seq(7), draw_seq(7));
        assert_ne!(draw_seq(7), draw_seq(8));
        let mut inj = FaultInjector::new(1);
        assert!(!inj.draw(0.0), "p=0 must not draw");
    }
}
