//! Burst-mode clock-and-data recovery with phase and amplitude caching
//! (§4.5, §A.1, and the Nature Electronics companion paper \[21\]).
//!
//! Every timeslot establishes a brand-new optical connection, so the
//! receiver's CDR would normally have to re-lock from scratch — standard
//! transceivers take microseconds, which would dwarf a 100 ns slot. Phase
//! caching exploits two Sirius properties: (i) all nodes are frequency
//! -synchronized (§4.4), so the phase between any sender/receiver pair is
//! *stable*, and (ii) the cyclic schedule reconnects every pair every
//! epoch, so a cached phase is refreshed before it can drift away.
//! The receiver simply loads the cached phase when the slot opens —
//! sub-nanosecond "locking" — and nudges the cache with each burst.
//! Amplitude caching plays the same trick for per-sender optical power so
//! no slow AGC is needed.

use sirius_core::units::Duration;

/// Outcome of a burst arrival at the receiver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LockOutcome {
    /// Time from slot start until the receiver samples data correctly.
    pub lock_time: Duration,
    /// Whether the cache was usable (false = cold acquisition).
    pub cached: bool,
}

/// Configuration of the burst-mode receiver.
#[derive(Debug, Clone, Copy)]
pub struct CdrConfig {
    /// Cold acquisition time without a valid cache entry (standard
    /// transceiver CDR: microseconds; §4.5).
    pub cold_lock: Duration,
    /// Lock time with a fresh cache entry ("<625 ps", \[20\]).
    pub cached_lock: Duration,
    /// Residual phase drift between two *synchronized* nodes, in
    /// picoseconds of phase per microsecond of elapsed time (bounded by
    /// the +-5 ps sync accuracy over an epoch).
    pub drift_ps_per_us: f64,
    /// Phase error beyond which the cached value cannot be used, ps
    /// (fraction of the symbol UI; 40 ps symbols at 25 GBaud).
    pub max_phase_error_ps: f64,
}

impl CdrConfig {
    /// The Sirius v2 receiver.
    pub fn paper() -> CdrConfig {
        CdrConfig {
            cold_lock: Duration::from_us(2),
            cached_lock: Duration::from_ps(625),
            drift_ps_per_us: 1.0,
            max_phase_error_ps: 10.0, // quarter of a 40 ps UI
        }
    }
}

/// Per-sender phase/amplitude cache at one receiver port.
#[derive(Debug)]
pub struct PhaseCache {
    cfg: CdrConfig,
    /// Last refresh time per sender, ps since start (None = never seen).
    last_update: Vec<Option<u64>>,
    cold_locks: u64,
    cached_locks: u64,
}

impl PhaseCache {
    pub fn new(cfg: CdrConfig, senders: usize) -> PhaseCache {
        PhaseCache {
            cfg,
            last_update: vec![None; senders],
            cold_locks: 0,
            cached_locks: 0,
        }
    }

    /// A burst from `sender` begins at `now_ps`. Returns the lock outcome
    /// and refreshes the cache entry.
    pub fn on_burst(&mut self, sender: usize, now_ps: u64) -> LockOutcome {
        let outcome = match self.last_update[sender] {
            Some(prev) => {
                let age_us = (now_ps - prev) as f64 / 1e6;
                let err_ps = age_us * self.cfg.drift_ps_per_us;
                if err_ps <= self.cfg.max_phase_error_ps {
                    self.cached_locks += 1;
                    LockOutcome {
                        lock_time: self.cfg.cached_lock,
                        cached: true,
                    }
                } else {
                    self.cold_locks += 1;
                    LockOutcome {
                        lock_time: self.cfg.cold_lock,
                        cached: false,
                    }
                }
            }
            None => {
                self.cold_locks += 1;
                LockOutcome {
                    lock_time: self.cfg.cold_lock,
                    cached: false,
                }
            }
        };
        self.last_update[sender] = Some(now_ps);
        outcome
    }

    /// Longest cache age that still locks from cache.
    pub fn max_useful_age(&self) -> Duration {
        Duration::from_us((self.cfg.max_phase_error_ps / self.cfg.drift_ps_per_us) as u64)
    }

    pub fn cold_locks(&self) -> u64 {
        self.cold_locks
    }
    pub fn cached_locks(&self) -> u64 {
        self.cached_locks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_burst_is_cold_then_cached() {
        let mut pc = PhaseCache::new(CdrConfig::paper(), 4);
        let first = pc.on_burst(2, 0);
        assert!(!first.cached);
        assert_eq!(first.lock_time, Duration::from_us(2));
        // One epoch (1.6 us) later: cached, sub-ns.
        let second = pc.on_burst(2, 1_600_000);
        assert!(second.cached);
        assert_eq!(second.lock_time, Duration::from_ps(625));
    }

    #[test]
    fn cyclic_schedule_keeps_cache_fresh() {
        // Refreshing every 1.6 us epoch keeps phase error ~1.6 ps, far
        // below the 10 ps bound — the property §4.5 relies on.
        let mut pc = PhaseCache::new(CdrConfig::paper(), 1);
        pc.on_burst(0, 0);
        let mut now = 0u64;
        for _ in 0..10_000 {
            now += 1_600_000;
            assert!(pc.on_burst(0, now).cached);
        }
        assert_eq!(pc.cold_locks(), 1);
        assert_eq!(pc.cached_locks(), 10_000);
    }

    #[test]
    fn stale_cache_forces_cold_lock() {
        let mut pc = PhaseCache::new(CdrConfig::paper(), 1);
        pc.on_burst(0, 0);
        // 10 ps bound / 1 ps/us -> stale after 10 us.
        assert_eq!(pc.max_useful_age(), Duration::from_us(10));
        let out = pc.on_burst(0, 11_000_000);
        assert!(!out.cached);
        // And the refresh re-arms the cache.
        assert!(pc.on_burst(0, 12_000_000).cached);
    }

    #[test]
    fn caches_are_per_sender() {
        let mut pc = PhaseCache::new(CdrConfig::paper(), 3);
        pc.on_burst(0, 0);
        assert!(!pc.on_burst(1, 100).cached, "sender 1 never seen before");
    }

    #[test]
    fn cached_lock_is_sub_nanosecond() {
        // The enabling number for 3.84 ns end-to-end reconfiguration.
        assert!(CdrConfig::paper().cached_lock < Duration::from_ns(1));
    }
}
