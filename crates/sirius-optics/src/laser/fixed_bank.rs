//! Disaggregated design 1: fixed laser bank + SOA wavelength selector
//! (§3.3, Fig. 4b) — the design the paper fabricated on its InP chip.
//!
//! One always-on single-wavelength laser per channel feeds an array of SOA
//! gates; selecting a wavelength turns one gate on and another off, so the
//! tuning latency is the SOA switching time — sub-nanosecond and
//! independent of the spectral span. The trade-off is power and chip area:
//! every laser in the bank is lit all the time.

use super::TunableSource;
use crate::soa::SoaChip;
use rand::Rng;
use sirius_core::units::Duration;

/// A fixed laser bank with an SOA selector, possibly ganged from multiple
/// chips ("we were limited by the chip area ... but can use multiple chips
/// to tune across a larger set of wavelengths", §6).
#[derive(Debug, Clone)]
pub struct FixedLaserBank {
    chips: Vec<SoaChip>,
    /// Per fixed laser: bias power (W).
    laser_power_w: f64,
    /// Multiplexer (AWG) insertion loss inside the source, dB.
    mux_loss_db: f64,
    /// Per-laser optical output, dBm, before SOA gain and mux loss.
    laser_output_dbm: f64,
}

impl FixedLaserBank {
    /// Build a bank covering `wavelengths` channels from chips of
    /// `chip_capacity` gates each.
    pub fn new<R: Rng + ?Sized>(
        rng: &mut R,
        wavelengths: usize,
        chip_capacity: usize,
    ) -> FixedLaserBank {
        assert!(wavelengths >= 1 && chip_capacity >= 1);
        let n_chips = wavelengths.div_ceil(chip_capacity);
        let mut chips = Vec::with_capacity(n_chips);
        let mut remaining = wavelengths;
        for _ in 0..n_chips {
            let n = remaining.min(chip_capacity);
            chips.push(SoaChip::fabricate(rng, n));
            remaining -= n;
        }
        FixedLaserBank {
            chips,
            laser_power_w: 1.0, // fixed laser ~1 W (§5)
            mux_loss_db: 3.0,
            laser_output_dbm: 13.0,
        }
    }

    /// The paper's fabricated chip: 19 wavelengths on one 6x8 mm InP die.
    pub fn paper_chip<R: Rng + ?Sized>(rng: &mut R) -> FixedLaserBank {
        FixedLaserBank::new(rng, 19, 19)
    }

    /// Map a channel to its (chip, gate) position; `None` when the channel
    /// is beyond the bank's grid.
    fn locate(&self, ch: usize) -> Option<(usize, usize)> {
        let mut base = 0;
        for (ci, chip) in self.chips.iter().enumerate() {
            if ch < base + chip.len() {
                return Some((ci, ch - base));
            }
            base += chip.len();
        }
        None
    }

    pub fn chips(&self) -> &[SoaChip] {
        &self.chips
    }
}

impl TunableSource for FixedLaserBank {
    fn wavelengths(&self) -> usize {
        self.chips.iter().map(|c| c.len()).sum()
    }

    fn tuning_latency(&self, from: usize, to: usize) -> Option<Duration> {
        let (cf, gf) = self.locate(from)?;
        let (ct, gt) = self.locate(to)?;
        if from == to {
            return Some(Duration::ZERO);
        }
        // Off-gate fall and on-gate rise overlap; the slower one bounds the
        // latency even across chips.
        Some(
            self.chips[cf].gates()[gf]
                .fall
                .max(self.chips[ct].gates()[gt].rise),
        )
    }

    fn electrical_power_w(&self) -> f64 {
        // All fixed lasers are lit; one SOA gate is on per chip stack.
        let lasers = self.wavelengths() as f64 * self.laser_power_w;
        let soa = self.chips.iter().map(|c| c.power_w()).fold(0.0, f64::max);
        lasers + soa
    }

    fn output_power_dbm(&self) -> f64 {
        // Laser output, minus the internal mux, plus the on-SOA's gain.
        let soa_gain = self.chips[0].gates()[0].gain_db;
        self.laser_output_dbm - self.mux_loss_db + soa_gain
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn bank() -> FixedLaserBank {
        FixedLaserBank::paper_chip(&mut SmallRng::seed_from_u64(3))
    }

    #[test]
    fn sub_nanosecond_worst_case() {
        // The headline of §6: tuning latency < 912 ps for every pair.
        let b = bank();
        let worst = b.worst_tuning_latency();
        assert!(worst <= Duration::from_ps(912), "worst = {worst}");
        assert!(worst > Duration::from_ps(400), "implausibly fast: {worst}");
    }

    #[test]
    fn latency_span_independent() {
        // Unlike the DSDBR, adjacent and extreme switches cost the same
        // order: both sub-ns (Fig. 8b).
        let b = bank();
        assert!(b.tuning_latency(0, 1).unwrap() < Duration::from_ns(1));
        assert!(b.tuning_latency(0, 18).unwrap() < Duration::from_ns(1));
    }

    #[test]
    fn multi_chip_bank_covers_112_channels() {
        let mut rng = SmallRng::seed_from_u64(4);
        let b = FixedLaserBank::new(&mut rng, 112, 19);
        assert_eq!(b.wavelengths(), 112);
        assert_eq!(b.chips().len(), 6);
        // Cross-chip switching is still sub-ns.
        assert!(b.tuning_latency(0, 111).unwrap() < Duration::from_ns(1));
    }

    #[test]
    fn power_scales_with_bank_size() {
        let mut rng = SmallRng::seed_from_u64(5);
        let small = FixedLaserBank::new(&mut rng, 19, 19);
        let big = FixedLaserBank::new(&mut rng, 112, 19);
        // The §3.3 disadvantage: "the number of wavelengths is limited by
        // the number of lasers, which, in turn, increase the power".
        assert!(big.electrical_power_w() > 5.0 * small.electrical_power_w());
    }

    #[test]
    fn channel_out_of_range_is_an_error_not_a_panic() {
        let b = bank();
        assert_eq!(b.tuning_latency(0, 19), None);
        assert_eq!(b.tuning_latency(19, 0), None);
        assert_eq!(b.tuning_latency(19, 19), None); // even for from == to
        assert!(b.tuning_latency(0, 18).is_some());
    }
}
