//! Disaggregated design 2: a small bank of standard tunable lasers working
//! in a pipeline (§3.3, Fig. 4c).
//!
//! While laser A emits the current wavelength, laser B — idle — pre-tunes
//! to the *next* wavelength in the (known, cyclic) schedule; at the slot
//! boundary the SOA selector flips from A to B, hiding the DSDBR's tens of
//! nanoseconds of settling behind the slot time. §4.5: "for a system with
//! a 100 ns total slot duration and tunable lasers with a worst-case
//! tuning time less than 100 ns ... the tuning latency can be hidden by
//! using a bank of two tunable lasers (plus an additional laser as
//! back-up)".

use super::standard::DsdbrLaser;
use super::TunableSource;
use sirius_core::units::Duration;

/// A pipelined bank of tunable lasers behind an SOA selector/coupler.
#[derive(Debug, Clone)]
pub struct TunableLaserBank {
    laser: DsdbrLaser,
    /// Working lasers in the pipeline (excluding spares).
    working: usize,
    /// Spare lasers for fault tolerance.
    spares: usize,
    /// SOA selector switching time (bounds the visible tuning latency when
    /// the pipeline hides the laser settle).
    soa_gate: Duration,
    /// Coupler insertion loss, dB — higher than the fixed bank's mux
    /// because outputs can carry any wavelength (§3.3).
    coupler_loss_db: f64,
}

impl TunableLaserBank {
    pub fn new(laser: DsdbrLaser, working: usize, spares: usize, soa_gate: Duration) -> Self {
        assert!(working >= 1);
        TunableLaserBank {
            laser,
            working,
            spares,
            soa_gate,
            coupler_loss_db: 6.0,
        }
    }

    /// The §4.5 configuration: two working lasers + one spare, 100 ns slots.
    pub fn paper_bank() -> TunableLaserBank {
        TunableLaserBank::new(DsdbrLaser::paper_prototype(), 2, 1, Duration::from_ps(912))
    }

    pub fn total_lasers(&self) -> usize {
        self.working + self.spares
    }
    pub fn coupler_loss_db(&self) -> f64 {
        self.coupler_loss_db
    }

    /// Minimum working lasers needed to hide a worst-case settle of
    /// `worst` behind `slot`-long timeslots: the emitting laser is busy
    /// for 1 slot, and an idle laser has `(k-1)` slots to retune.
    pub fn required_working(worst: Duration, slot: Duration) -> usize {
        let k = worst.as_ps().div_ceil(slot.as_ps().max(1)) as usize;
        k + 1
    }

    /// Can this bank sustain the cyclic schedule with `slot`-long slots
    /// without ever exposing a laser settle?
    pub fn sustains(&self, slot: Duration) -> bool {
        self.working >= Self::required_working(self.laser.worst_tuning_latency(), slot)
    }

    /// Simulate the pipeline over a wavelength sequence: returns the total
    /// stall time (settle not hidden by the pipeline). Zero when
    /// [`sustains`](Self::sustains) holds for the sequence's slot length.
    pub fn simulate_stalls(&self, sequence: &[usize], slot: Duration) -> Duration {
        // ready_at[i]: when laser i finishes its current retune.
        let mut ready_at = vec![Duration::ZERO; self.working];
        let mut now = Duration::ZERO;
        let mut stalls = Duration::ZERO;
        for (k, &wl) in sequence.iter().enumerate() {
            let laser = k % self.working;
            if ready_at[laser] > now {
                stalls += ready_at[laser] - now;
            }
            // This laser emits for this slot, then immediately starts
            // retuning toward the wavelength it will emit `working` slots
            // later.
            let next_idx = k + self.working;
            let settle = if next_idx < sequence.len() {
                self.laser
                    .tuning_latency(wl, sequence[next_idx])
                    .expect("sequence wavelength outside the laser grid")
            } else {
                Duration::ZERO
            };
            ready_at[laser] = now + slot + settle;
            now += slot;
        }
        stalls
    }
}

impl TunableSource for TunableLaserBank {
    fn wavelengths(&self) -> usize {
        self.laser.wavelengths()
    }

    /// Visible tuning latency when the pipeline is warm: just the SOA gate.
    fn tuning_latency(&self, from: usize, to: usize) -> Option<Duration> {
        if from >= self.wavelengths() || to >= self.wavelengths() {
            return None;
        }
        if from == to {
            Some(Duration::ZERO)
        } else {
            Some(self.soa_gate)
        }
    }

    fn electrical_power_w(&self) -> f64 {
        // Working lasers run hot; spares are kept dark (field-replaceable
        // cold standby, §4.5).
        self.working as f64 * self.laser.electrical_power_w() + 0.3
    }

    fn output_power_dbm(&self) -> f64 {
        self.laser.output_power_dbm() - self.coupler_loss_db + 10.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_bank_sustains_100ns_slots() {
        // §4.5: worst-case tuning < 100 ns, slot 100 ns -> 2 working lasers.
        let b = TunableLaserBank::paper_bank();
        assert!(b.sustains(Duration::from_ns(100)));
        assert_eq!(b.total_lasers(), 3); // incl. the spare
    }

    #[test]
    fn required_working_matches_paper_rule() {
        assert_eq!(
            TunableLaserBank::required_working(Duration::from_ns(92), Duration::from_ns(100)),
            2
        );
        // Slower laser or shorter slot needs deeper pipelines.
        assert_eq!(
            TunableLaserBank::required_working(Duration::from_ns(92), Duration::from_ns(40)),
            4
        );
    }

    #[test]
    fn no_stalls_on_cyclic_schedule_at_paper_slot() {
        let b = TunableLaserBank::paper_bank();
        // Sirius' cyclic schedule: wavelength = slot index mod W.
        let seq: Vec<usize> = (0..1000).map(|k| k % 16).collect();
        assert_eq!(
            b.simulate_stalls(&seq, Duration::from_ns(100)),
            Duration::ZERO
        );
    }

    #[test]
    fn single_laser_stalls() {
        let b = TunableLaserBank::new(DsdbrLaser::paper_prototype(), 1, 0, Duration::from_ps(912));
        let seq: Vec<usize> = (0..100).map(|k| (k * 37) % 112).collect();
        assert!(b.simulate_stalls(&seq, Duration::from_ns(100)) > Duration::ZERO);
    }

    #[test]
    fn visible_latency_is_soa_gate() {
        let b = TunableLaserBank::paper_bank();
        assert_eq!(b.tuning_latency(0, 111), Some(Duration::from_ps(912)));
        assert_eq!(b.tuning_latency(4, 4), Some(Duration::ZERO));
        assert_eq!(b.tuning_latency(0, 112), None);
    }

    #[test]
    fn fewer_lasers_than_fixed_bank() {
        // The §3.3 advantage: 3 lasers instead of one per wavelength.
        let b = TunableLaserBank::paper_bank();
        assert!(b.total_lasers() < b.wavelengths());
    }
}
