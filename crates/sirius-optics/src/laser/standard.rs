//! The standard electrically-tuned DSDBR laser with the custom fast-drive
//! board (§3.2, Fig. 3b/3c).
//!
//! Tuning a monolithic laser injects current into the grating section,
//! which perturbs the gain section: the output "rings" across neighbouring
//! wavelengths before settling, and the farther apart the source and
//! destination wavelengths, the larger the current step and the longer the
//! settling. The paper's dampening technique (overshoot, then undershoot,
//! then settle \[26\]) reduces this to a **median of 14 ns and worst case of
//! 92 ns across all 12,432 wavelength pairs** of the 112-channel grid.
//!
//! Hardware substitution: settling is modelled as a span power law
//! calibrated against those two published statistics:
//!
//! ```text
//! settle(span) = 3 ns + 89 ns * (span / max_span)^1.7      (dampened)
//! ```
//!
//! which yields a 13.9 ns median and a 92 ns worst case on the 112-channel
//! grid (validated in tests and the `tuning` harness). The undampened
//! single-step drive and the stock millisecond drive electronics are also
//! modelled to quantify what the dampening buys.

use super::TunableSource;
use sirius_core::units::Duration;

/// Drive electronics variants for the DSDBR.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriveMode {
    /// Stock drive circuitry: ~10 ms settle regardless of span (§3.2:
    /// "our prototype uses DSDBR tunable lasers ... with a tuning latency
    /// of 10 ms").
    Stock,
    /// Custom PCB, single current step: ringing makes the settle roughly
    /// linear in span and an order of magnitude above the dampened drive.
    SingleStep,
    /// Custom PCB with the overshoot/undershoot dampening schedule \[26\].
    Dampened,
}

/// A DSDBR tunable laser on a given channel grid.
#[derive(Debug, Clone, Copy)]
pub struct DsdbrLaser {
    channels: usize,
    mode: DriveMode,
}

impl DsdbrLaser {
    pub fn new(channels: usize, mode: DriveMode) -> DsdbrLaser {
        assert!(channels >= 2);
        DsdbrLaser { channels, mode }
    }

    /// The paper's prototype: 112 channels, dampened fast drive.
    pub fn paper_prototype() -> DsdbrLaser {
        DsdbrLaser::new(112, DriveMode::Dampened)
    }

    pub fn mode(&self) -> DriveMode {
        self.mode
    }

    fn max_span(&self) -> f64 {
        (self.channels - 1) as f64
    }
}

impl TunableSource for DsdbrLaser {
    fn wavelengths(&self) -> usize {
        self.channels
    }

    fn tuning_latency(&self, from: usize, to: usize) -> Option<Duration> {
        if from >= self.channels || to >= self.channels {
            return None;
        }
        if from == to {
            return Some(Duration::ZERO);
        }
        let span = from.abs_diff(to) as f64 / self.max_span();
        Some(match self.mode {
            DriveMode::Stock => Duration::from_ms(10),
            DriveMode::SingleStep => {
                // Ringing-limited: ~linear in current step; 30 ns floor.
                Duration::from_ns_f64(30.0 + 900.0 * span)
            }
            DriveMode::Dampened => {
                // Calibrated to 14 ns median / 92 ns worst on 112 channels.
                Duration::from_ns_f64(3.0 + 89.0 * span.powf(1.7))
            }
        })
    }

    fn electrical_power_w(&self) -> f64 {
        // ~3.8 W for an off-the-shelf tunable laser (§5), dominated by the
        // temperature controller.
        3.8
    }

    fn output_power_dbm(&self) -> f64 {
        16.0 // 40 mW (§4.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dampened_statistics_match_paper() {
        let l = DsdbrLaser::paper_prototype();
        let median = l.median_tuning_latency();
        let worst = l.worst_tuning_latency();
        // Paper: "a median tuning latency of 14 ns and worst-case latency
        // of 92 ns across all 12,432 pairs".
        assert!(
            (median.as_ns_f64() - 14.0).abs() < 1.0,
            "median = {median} (paper: 14 ns)"
        );
        assert!(
            (worst.as_ns_f64() - 92.0).abs() < 0.5,
            "worst = {worst} (paper: 92 ns)"
        );
    }

    #[test]
    fn dampening_beats_single_step_everywhere() {
        let damp = DsdbrLaser::new(112, DriveMode::Dampened);
        let step = DsdbrLaser::new(112, DriveMode::SingleStep);
        for span in [1usize, 10, 50, 111] {
            assert!(damp.tuning_latency(0, span).unwrap() < step.tuning_latency(0, span).unwrap());
        }
    }

    #[test]
    fn stock_drive_is_milliseconds() {
        let l = DsdbrLaser::new(112, DriveMode::Stock);
        assert_eq!(l.tuning_latency(0, 1), Some(Duration::from_ms(10)));
    }

    #[test]
    fn settle_grows_with_span() {
        // The fundamental limit §3.3 motivates disaggregation with.
        let l = DsdbrLaser::paper_prototype();
        let mut prev = Duration::ZERO;
        for span in 1..112 {
            let t = l.tuning_latency(0, span).unwrap();
            assert!(t >= prev, "settle not monotone at span {span}");
            prev = t;
        }
    }

    #[test]
    fn tuning_is_symmetric_and_zero_on_self() {
        let l = DsdbrLaser::paper_prototype();
        assert_eq!(l.tuning_latency(5, 5), Some(Duration::ZERO));
        assert_eq!(l.tuning_latency(3, 80), l.tuning_latency(80, 3));
        assert_eq!(l.tuning_latency(0, 112), None);
    }

    #[test]
    fn dampened_misses_the_10ns_target() {
        // §3.3: even dampened, the DSDBR "still does not meet our target of
        // reconfiguration within 10 ns" — the median alone exceeds it.
        let l = DsdbrLaser::paper_prototype();
        assert!(l.median_tuning_latency() > Duration::from_ns(10));
    }
}
