//! Disaggregated design 3: frequency-comb source + SOA selector (§3.3,
//! Fig. 4d).
//!
//! A comb laser emits all grid wavelengths simultaneously from a single
//! chip with inherently equal spacing (no per-line temperature control);
//! an SOA array selects the line to emit. Tuning latency is the SOA gate,
//! like the fixed bank, but the source is one scalable device. The paper
//! notes today's combs draw more power than the other designs but are "a
//! promising alternative in future".

use super::TunableSource;
use crate::soa::SoaChip;
use rand::Rng;
use sirius_core::units::Duration;

/// A chip-scale comb source behind an SOA wavelength selector.
#[derive(Debug, Clone)]
pub struct CombLaser {
    selector: SoaChip,
    /// Pump + stabilization power of the comb itself, W.
    comb_power_w: f64,
    /// Optical power per comb line, dBm (combs spread power over lines).
    per_line_dbm: f64,
}

impl CombLaser {
    pub fn new<R: Rng + ?Sized>(rng: &mut R, lines: usize) -> CombLaser {
        CombLaser {
            selector: SoaChip::fabricate(rng, lines),
            // Today's comb efficiency: noticeably above the 19-laser bank
            // (~19 W) for a ~100-line comb.
            comb_power_w: 8.0 + 0.25 * lines as f64,
            per_line_dbm: 0.0, // 1 mW per line before amplification
        }
    }

    /// A >100-line comb as demonstrated in \[46\] of the paper.
    pub fn hundred_line<R: Rng + ?Sized>(rng: &mut R) -> CombLaser {
        CombLaser::new(rng, 112)
    }
}

impl TunableSource for CombLaser {
    fn wavelengths(&self) -> usize {
        self.selector.len()
    }

    fn tuning_latency(&self, from: usize, to: usize) -> Option<Duration> {
        if from >= self.selector.len() || to >= self.selector.len() {
            return None;
        }
        if from == to {
            Some(Duration::ZERO)
        } else {
            Some(self.selector.tuning_latency(from, to))
        }
    }

    fn electrical_power_w(&self) -> f64 {
        self.comb_power_w + self.selector.power_w()
    }

    fn output_power_dbm(&self) -> f64 {
        // One line, amplified by the on-SOA.
        self.per_line_dbm + self.selector.gates()[0].gain_db
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::laser::FixedLaserBank;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn comb_tunes_sub_nanosecond_across_the_whole_grid() {
        let c = CombLaser::hundred_line(&mut SmallRng::seed_from_u64(1));
        assert_eq!(c.wavelengths(), 112);
        assert!(c.worst_tuning_latency() < Duration::from_ns(1));
    }

    #[test]
    fn comb_scales_better_than_fixed_bank_in_power() {
        // At ~100 wavelengths a fixed bank needs ~100 lit lasers; the comb
        // is a single pumped chip.
        let mut rng = SmallRng::seed_from_u64(2);
        let comb = CombLaser::hundred_line(&mut rng);
        let bank = FixedLaserBank::new(&mut rng, 112, 19);
        assert!(comb.electrical_power_w() < bank.electrical_power_w());
    }

    #[test]
    fn comb_costs_more_power_than_the_small_chip() {
        // The paper's trade-off at prototype scale: the 19-wavelength
        // fixed bank beats today's comb on power.
        let mut rng = SmallRng::seed_from_u64(3);
        let comb = CombLaser::new(&mut rng, 19);
        let bank = FixedLaserBank::paper_chip(&mut rng);
        assert!(comb.electrical_power_w() < bank.electrical_power_w() * 1.2);
        assert!(comb.electrical_power_w() > 10.0);
    }
}
