//! Tunable light sources (§3.2-3.3).
//!
//! Four designs, all behind the [`TunableSource`] trait:
//!
//! | Design | Module | Tuning latency | Scaling |
//! |--------|--------|----------------|---------|
//! | DSDBR + dampened drive (§3.2) | [`standard`] | 14 ns median, 92 ns worst (span-dependent) | 112 λ |
//! | Fixed laser bank + SOA gates (§3.3-1, the fabricated chip) | [`fixed_bank`] | < 912 ps, span-independent | λ count = laser count |
//! | Pipelined tunable bank (§3.3-2) | [`tunable_bank`] | SOA gate if pre-tuned | few lasers, needs schedule lookahead |
//! | Comb laser + SOA selector (§3.3-3) | [`comb`] | SOA gate | single chip, higher power |

pub mod comb;
pub mod fixed_bank;
pub mod standard;
pub mod tunable_bank;

pub use comb::CombLaser;
pub use fixed_bank::FixedLaserBank;
pub use standard::DsdbrLaser;
pub use tunable_bank::TunableLaserBank;

use sirius_core::units::Duration;

/// A light source that can be tuned across a wavelength grid.
pub trait TunableSource {
    /// Number of wavelengths the source can emit.
    fn wavelengths(&self) -> usize;

    /// Latency to retune from channel `from` to channel `to` (the interval
    /// during which no clean light is emitted). `None` if either channel
    /// is outside the source's grid — callers drive these sources from
    /// schedules, and a schedule bug should surface as a checkable error,
    /// not a panic deep inside the optics model.
    fn tuning_latency(&self, from: usize, to: usize) -> Option<Duration>;

    /// Worst-case tuning latency over all ordered channel pairs.
    fn worst_tuning_latency(&self) -> Duration {
        let n = self.wavelengths();
        let mut worst = Duration::ZERO;
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    worst = worst.max(self.tuning_latency(i, j).expect("grid-internal channel"));
                }
            }
        }
        worst
    }

    /// Median tuning latency over all ordered channel pairs.
    fn median_tuning_latency(&self) -> Duration {
        let n = self.wavelengths();
        let mut all = Vec::with_capacity(n * (n - 1));
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    all.push(self.tuning_latency(i, j).expect("grid-internal channel"));
                }
            }
        }
        all.sort_unstable();
        all[all.len() / 2]
    }

    /// Electrical power draw of the source, W.
    fn electrical_power_w(&self) -> f64;

    /// Optical output power, dBm.
    fn output_power_dbm(&self) -> f64;
}
