//! Wavelength stability: keeping lasers on the grating's grid (§3.3).
//!
//! An AWGR routes by wavelength, so a laser that drifts off its grid slot
//! leaks power into the wrong output (crosstalk) and loses power at the
//! right one. Fixed/tunable lasers need temperature control to hold the
//! grid — "much of the power consumption for the tunable laser is due to
//! the need for a temperature controller to ensure wavelength stability"
//! (§5) — while a comb's line spacing is set by its cavity, so "equal
//! spacing between the many wavelengths is always maintained without the
//! need for temperature control" (§3.3). This module models the passband
//! math behind those sentences.

/// Typical semiconductor laser temperature coefficient: ~0.1 nm/K
/// (~12.5 GHz/K at 1550 nm).
pub const GHZ_PER_KELVIN: f64 = 12.5;

/// A Gaussian AWGR passband on a 50 GHz grid.
#[derive(Debug, Clone, Copy)]
pub struct Passband {
    /// Channel spacing, GHz.
    pub spacing_ghz: f64,
    /// 3 dB passband full width, GHz (typically ~60% of spacing).
    pub width_3db_ghz: f64,
}

impl Passband {
    pub fn grid_50ghz() -> Passband {
        Passband {
            spacing_ghz: 50.0,
            width_3db_ghz: 30.0,
        }
    }

    /// Transmission (dB, <= 0) through the *intended* port for a laser
    /// offset `off_ghz` from the channel centre (Gaussian passband).
    pub fn loss_db(&self, off_ghz: f64) -> f64 {
        // Gaussian: -3 dB at width/2.
        let half = self.width_3db_ghz / 2.0;
        -3.0 * (off_ghz / half).powi(2)
    }

    /// Crosstalk (dB, relative to the signal) leaked into the *adjacent*
    /// port when offset by `off_ghz` toward it.
    pub fn adjacent_crosstalk_db(&self, off_ghz: f64) -> f64 {
        self.loss_db(self.spacing_ghz - off_ghz.abs()) - self.loss_db(off_ghz)
    }

    /// Max frequency offset keeping extra loss below `budget_db`.
    pub fn max_offset_ghz(&self, budget_db: f64) -> f64 {
        (budget_db / 3.0).sqrt() * self.width_3db_ghz / 2.0
    }

    /// Temperature stability needed to stay within `budget_db` of extra
    /// loss, in Kelvin.
    pub fn temperature_tolerance_k(&self, budget_db: f64) -> f64 {
        self.max_offset_ghz(budget_db) / GHZ_PER_KELVIN
    }
}

/// Comb-line spacing error: for a comb, adjacent-line spacing is fixed by
/// the cavity, so even if the whole comb drifts by `common_ghz`, the
/// *relative* spacing error is zero — every line moves together and a
/// single global correction re-centres all of them.
pub fn comb_relative_spacing_error(common_ghz: f64) -> f64 {
    let _ = common_ghz;
    0.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn centre_is_lossless_and_loss_grows_quadratically() {
        let p = Passband::grid_50ghz();
        assert_eq!(p.loss_db(0.0), 0.0);
        assert!((p.loss_db(15.0) - (-3.0)).abs() < 1e-9); // 3 dB at half width
        assert!(p.loss_db(10.0) > p.loss_db(20.0));
    }

    #[test]
    fn one_db_budget_needs_sub_kelvin_control() {
        // The §5 point: a free-running laser (~0.1 nm/K) cannot hold a
        // 50 GHz grid without active temperature control.
        let p = Passband::grid_50ghz();
        let tol = p.temperature_tolerance_k(1.0);
        assert!(
            tol < 1.0,
            "temperature tolerance {tol} K should be sub-Kelvin"
        );
        assert!(tol > 0.1, "but not absurdly tight: {tol} K");
    }

    #[test]
    fn on_grid_crosstalk_is_deeply_suppressed() {
        let p = Passband::grid_50ghz();
        // Centred laser: adjacent port sees the Gaussian tail at 50 GHz.
        assert!(p.adjacent_crosstalk_db(0.0) < -25.0);
        // Drifting halfway to the next channel destroys isolation.
        assert!(p.adjacent_crosstalk_db(25.0) > -1.0);
    }

    #[test]
    fn comb_spacing_is_drift_immune() {
        // §3.3: "equal spacing between the many wavelengths is always
        // maintained without the need for temperature control".
        assert_eq!(comb_relative_spacing_error(10.0), 0.0);
        assert_eq!(comb_relative_spacing_error(-3.0), 0.0);
    }

    #[test]
    fn offset_budget_roundtrip() {
        let p = Passband::grid_50ghz();
        let off = p.max_offset_ghz(1.0);
        assert!((p.loss_db(off) - (-1.0)).abs() < 1e-9);
    }
}
