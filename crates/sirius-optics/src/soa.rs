//! Semiconductor optical amplifier gates — the wavelength selector of the
//! disaggregated laser (§3.3, Fig. 8a).
//!
//! The custom chip carries an array of 19 SOAs acting as optical gates:
//! tuning from wavelength `i` to `j` turns SOA `i` off and SOA `j` on, so
//! the tuning latency is `max(fall_i, rise_j)` and — crucially — is
//! independent of the spectral distance between the wavelengths. The paper
//! measured worst-case rise (turn-on) of 527 ps and fall (turn-off) of
//! 912 ps across the chip (Fig. 8a).
//!
//! Hardware substitution: we cannot probe the InP chip, so per-device
//! rise/fall times are drawn from a truncated Gaussian calibrated to the
//! paper's worst-case figures, with the slowest device pinned at exactly
//! the measured maximum so worst-case analyses match the paper.

use rand::Rng;
use sirius_core::units::Duration;

/// Electrical + optical parameters of one SOA gate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Soa {
    /// 10-90% turn-on (rise) time.
    pub rise: Duration,
    /// 90-10% turn-off (fall) time.
    pub fall: Duration,
    /// Small-signal gain when on, dB.
    pub gain_db: f64,
    /// Bias power when on, W.
    pub power_w: f64,
}

/// A fabricated chip: an array of SOA gates, one per selectable wavelength.
#[derive(Debug, Clone)]
pub struct SoaChip {
    gates: Vec<Soa>,
}

/// Calibration constants from the paper's measurements (§6, Fig. 8a).
pub const PAPER_WORST_RISE_PS: u64 = 527;
pub const PAPER_WORST_FALL_PS: u64 = 912;

impl SoaChip {
    /// "Fabricate" a chip of `n` gates with process variation drawn from
    /// `rng`. The slowest gate is pinned to the paper's measured worst
    /// case; the rest spread below it with a Gaussian-ish body, giving a
    /// CDF shaped like Fig. 8a.
    pub fn fabricate<R: Rng + ?Sized>(rng: &mut R, n: usize) -> SoaChip {
        assert!(n >= 1);
        let mut gates = Vec::with_capacity(n);
        for _ in 0..n {
            // Body of the distribution: mean ~65% of worst, sigma ~15%.
            let rise = sample_trunc(rng, 0.65, 0.15) * PAPER_WORST_RISE_PS as f64;
            let fall = sample_trunc(rng, 0.65, 0.15) * PAPER_WORST_FALL_PS as f64;
            gates.push(Soa {
                rise: Duration::from_ps(rise as u64),
                fall: Duration::from_ps(fall as u64),
                gain_db: 10.0,
                power_w: 0.3,
            });
        }
        // Pin the extremes so chip worst case == paper worst case.
        let worst_rise = gates
            .iter()
            .enumerate()
            .max_by_key(|(_, g)| g.rise)
            .map(|(i, _)| i)
            .unwrap();
        gates[worst_rise].rise = Duration::from_ps(PAPER_WORST_RISE_PS);
        let worst_fall = gates
            .iter()
            .enumerate()
            .max_by_key(|(_, g)| g.fall)
            .map(|(i, _)| i)
            .unwrap();
        gates[worst_fall].fall = Duration::from_ps(PAPER_WORST_FALL_PS);
        SoaChip { gates }
    }

    /// The paper's chip: 19 gates (limited by chip area, §6).
    pub fn paper_chip<R: Rng + ?Sized>(rng: &mut R) -> SoaChip {
        SoaChip::fabricate(rng, 19)
    }

    pub fn gates(&self) -> &[Soa] {
        &self.gates
    }
    pub fn len(&self) -> usize {
        self.gates.len()
    }
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// Tuning latency from wavelength `from` to `to`: the slower of SOA
    /// `from` turning off and SOA `to` turning on.
    pub fn tuning_latency(&self, from: usize, to: usize) -> Duration {
        self.gates[from].fall.max(self.gates[to].rise)
    }

    /// Worst-case tuning latency across all ordered gate pairs.
    pub fn worst_tuning_latency(&self) -> Duration {
        let worst_fall = self.gates.iter().map(|g| g.fall).max().unwrap();
        let worst_rise = self.gates.iter().map(|g| g.rise).max().unwrap();
        worst_fall.max(worst_rise)
    }

    /// Only one gate is on at any instant (§3.3), so on-power is a single
    /// SOA's bias.
    pub fn power_w(&self) -> f64 {
        self.gates.iter().map(|g| g.power_w).fold(0.0, f64::max)
    }

    /// Sorted rise times (for the Fig. 8a CDF).
    pub fn rise_times(&self) -> Vec<Duration> {
        let mut v: Vec<Duration> = self.gates.iter().map(|g| g.rise).collect();
        v.sort_unstable();
        v
    }
    /// Sorted fall times (for the Fig. 8a CDF).
    pub fn fall_times(&self) -> Vec<Duration> {
        let mut v: Vec<Duration> = self.gates.iter().map(|g| g.fall).collect();
        v.sort_unstable();
        v
    }
}

/// Truncated-normal sample in (0.3, 1.0], as a fraction of the worst case.
fn sample_trunc<R: Rng + ?Sized>(rng: &mut R, mean: f64, sigma: f64) -> f64 {
    loop {
        // Box-Muller.
        let u1: f64 = rng.gen::<f64>().max(1e-12);
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let x = mean + sigma * z;
        if (0.3..=1.0).contains(&x) {
            return x;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn chip() -> SoaChip {
        SoaChip::paper_chip(&mut SmallRng::seed_from_u64(8))
    }

    #[test]
    fn chip_has_19_gates() {
        assert_eq!(chip().len(), 19);
    }

    #[test]
    fn worst_case_matches_paper() {
        let c = chip();
        assert_eq!(
            c.rise_times().last().copied().unwrap(),
            Duration::from_ps(PAPER_WORST_RISE_PS)
        );
        assert_eq!(
            c.fall_times().last().copied().unwrap(),
            Duration::from_ps(PAPER_WORST_FALL_PS)
        );
        assert_eq!(c.worst_tuning_latency(), Duration::from_ps(912));
    }

    #[test]
    fn all_switching_is_sub_nanosecond() {
        // The headline: every tuning event completes in < 1 ns (Fig. 8a).
        let c = chip();
        for i in 0..c.len() {
            for j in 0..c.len() {
                if i != j {
                    assert!(c.tuning_latency(i, j) < Duration::from_ns(1));
                }
            }
        }
    }

    #[test]
    fn latency_independent_of_spectral_span() {
        // Adjacent vs. extreme gate pairs: tuning latency depends only on
        // the two gates involved, not the distance (Fig. 8b).
        let c = chip();
        let adjacent = c.tuning_latency(9, 10);
        let extreme = c.tuning_latency(0, 18);
        assert!(adjacent < Duration::from_ns(1));
        assert!(extreme < Duration::from_ns(1));
    }

    #[test]
    fn tuning_latency_is_max_of_fall_and_rise() {
        let c = chip();
        let l = c.tuning_latency(3, 7);
        assert_eq!(l, c.gates()[3].fall.max(c.gates()[7].rise));
    }

    #[test]
    fn fabrication_is_deterministic_per_seed() {
        let a = SoaChip::fabricate(&mut SmallRng::seed_from_u64(1), 19);
        let b = SoaChip::fabricate(&mut SmallRng::seed_from_u64(1), 19);
        assert_eq!(a.gates(), b.gates());
    }

    #[test]
    fn only_one_gate_powered() {
        let c = chip();
        assert!((c.power_w() - 0.3).abs() < 1e-12);
    }
}
