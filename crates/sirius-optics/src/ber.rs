//! Bit-error-rate vs. received optical power, and the FEC threshold
//! (Fig. 8d).
//!
//! The prototype runs 25 Gbps NRZ (Sirius v1) and 50 Gbps PAM-4 (v2) and
//! achieves post-FEC error-free operation (BER < 1e-12) at -8 dBm of
//! received power. We model a thermal-noise-limited receiver: the Q factor
//! scales linearly with received optical power, PAM-4 pays the standard
//! ~9.5 dB multi-level penalty relative to NRZ at the same symbol rate,
//! and KP4 RS(544,514) FEC corrects any pre-FEC BER below ~2.2e-4.
//! The model is calibrated so the PAM-4 waterfall crosses the FEC
//! threshold at exactly -8 dBm (the paper's measured sensitivity).

/// Modulation formats used by the prototypes (§6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Modulation {
    /// 25 Gbps non-return-to-zero (Sirius v1).
    Nrz25,
    /// 50 Gbps four-level pulse-amplitude modulation (Sirius v2); the lane
    /// format of 400G transceivers ("8 lanes of 50 Gbps").
    Pam4_50,
}

impl Modulation {
    pub fn bits_per_symbol(self) -> u32 {
        match self {
            Modulation::Nrz25 => 1,
            Modulation::Pam4_50 => 2,
        }
    }
    pub fn line_rate_gbps(self) -> u32 {
        match self {
            Modulation::Nrz25 => 25,
            Modulation::Pam4_50 => 50,
        }
    }
}

/// Pre-FEC BER threshold of KP4 RS(544,514), the FEC of 50G PAM-4 lanes.
pub const KP4_FEC_THRESHOLD: f64 = 2.2e-4;
/// Post-FEC target the paper demonstrates ("BER < 1e-12 ... for more than
/// 24 hours").
pub const ERROR_FREE_BER: f64 = 1e-12;

/// A receiver model: BER as a function of received power.
#[derive(Debug, Clone, Copy)]
pub struct Receiver {
    pub modulation: Modulation,
    /// Per-channel implementation penalty, dB (Fig. 8d's four channels sit
    /// within ~1 dB of each other).
    pub channel_penalty_db: f64,
}

impl Receiver {
    pub fn new(modulation: Modulation) -> Receiver {
        Receiver {
            modulation,
            channel_penalty_db: 0.0,
        }
    }

    pub fn with_penalty(mut self, db: f64) -> Receiver {
        self.channel_penalty_db = db;
        self
    }

    /// Q factor at `rx_dbm` of received power. Thermal-noise-limited:
    /// Q is proportional to optical power (linear mW). Calibrated so
    /// PAM-4 hits the KP4 threshold (Q ~ 3.51) at -8 dBm.
    pub fn q_factor(&self, rx_dbm: f64) -> f64 {
        let eff_dbm = rx_dbm - self.channel_penalty_db;
        let mw = 10f64.powf(eff_dbm / 10.0);
        // Q(threshold) for BER = (3/8) erfc(Q/sqrt(2)) = 2.2e-4 is 3.513;
        // anchor: PAM-4, -8 dBm (0.1585 mW) -> Q = 3.513.
        let k_pam4 = 3.513 / 0.158_489;
        match self.modulation {
            Modulation::Pam4_50 => k_pam4 * mw,
            // NRZ at the same symbol rate has 3x the eye amplitude
            // (~9.5 dB sensitivity advantage at fixed Q) and no 3/4
            // multi-eye factor.
            Modulation::Nrz25 => 3.0 * k_pam4 * mw,
        }
    }

    /// Pre-FEC bit error rate at `rx_dbm`.
    pub fn pre_fec_ber(&self, rx_dbm: f64) -> f64 {
        let q = self.q_factor(rx_dbm);
        let p = 0.5 * erfc(q / std::f64::consts::SQRT_2);
        match self.modulation {
            Modulation::Nrz25 => p,
            // PAM-4: 3 eyes over 2 bits -> 3/4 symbol factor, Gray coded.
            Modulation::Pam4_50 => 0.75 * p,
        }
    }

    /// Receiver sensitivity: the power at which pre-FEC BER crosses the
    /// FEC threshold (bisection).
    pub fn sensitivity_dbm(&self, fec_threshold: f64) -> f64 {
        let (mut lo, mut hi) = (-30.0, 10.0);
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.pre_fec_ber(mid) > fec_threshold {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }

    /// Post-FEC error-free at this power? (KP4 corrects everything below
    /// its threshold to far beyond 1e-12.)
    pub fn error_free(&self, rx_dbm: f64) -> bool {
        self.pre_fec_ber(rx_dbm) <= KP4_FEC_THRESHOLD
    }
}

/// Complementary error function (Abramowitz & Stegun 7.1.26-style rational
/// approximation; |error| < 1.5e-7, ample for waterfall curves).
pub fn erfc(x: f64) -> f64 {
    if x < 0.0 {
        return 2.0 - erfc(-x);
    }
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    poly * (-x * x).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erfc_reference_values() {
        assert!((erfc(0.0) - 1.0).abs() < 1e-7);
        assert!((erfc(1.0) - 0.157_299_2).abs() < 1e-6);
        assert!((erfc(2.0) - 0.004_677_7).abs() < 1e-6);
        assert!((erfc(-1.0) - 1.842_700_8).abs() < 1e-6);
    }

    #[test]
    fn pam4_sensitivity_is_minus_8dbm() {
        // Fig. 8d: "post-FEC error-free transmission at -8 dBm".
        let rx = Receiver::new(Modulation::Pam4_50);
        let s = rx.sensitivity_dbm(KP4_FEC_THRESHOLD);
        assert!((s - (-8.0)).abs() < 0.1, "sensitivity = {s} dBm");
        assert!(rx.error_free(-8.0 + 0.01));
        assert!(!rx.error_free(-9.0));
    }

    #[test]
    fn ber_waterfall_is_monotone() {
        let rx = Receiver::new(Modulation::Pam4_50);
        let mut prev = 1.0;
        for p in -10..=-2 {
            let ber = rx.pre_fec_ber(p as f64);
            assert!(ber <= prev, "BER not monotone at {p} dBm");
            prev = ber;
        }
        // Shape check against Fig. 8d's axis: log10(BER) spans ~-2..-12
        // over the -10..-2 dBm range.
        assert!(rx.pre_fec_ber(-10.0) > 1e-3);
        assert!(rx.pre_fec_ber(-2.0) < 1e-12);
    }

    #[test]
    fn nrz_is_more_sensitive_than_pam4() {
        let nrz = Receiver::new(Modulation::Nrz25);
        let pam = Receiver::new(Modulation::Pam4_50);
        let s_nrz = nrz.sensitivity_dbm(KP4_FEC_THRESHOLD);
        let s_pam = pam.sensitivity_dbm(KP4_FEC_THRESHOLD);
        // ~4.8 dB optical (=9.5 dB electrical) advantage for NRZ.
        assert!(
            s_nrz < s_pam - 3.0,
            "NRZ {s_nrz} dBm should be well below PAM-4 {s_pam} dBm"
        );
    }

    #[test]
    fn four_channels_within_a_db() {
        // Fig. 8d shows four channel curves clustered together.
        let base = Receiver::new(Modulation::Pam4_50);
        for pen in [0.0, 0.3, 0.6, 0.9] {
            let ch = base.with_penalty(pen);
            let s = ch.sensitivity_dbm(KP4_FEC_THRESHOLD);
            assert!((s - (-8.0 + pen)).abs() < 0.1);
        }
    }

    #[test]
    fn modulation_properties() {
        assert_eq!(Modulation::Pam4_50.bits_per_symbol(), 2);
        assert_eq!(Modulation::Pam4_50.line_rate_gbps(), 50);
        assert_eq!(Modulation::Nrz25.bits_per_symbol(), 1);
        assert_eq!(Modulation::Nrz25.line_rate_gbps(), 25);
    }
}
