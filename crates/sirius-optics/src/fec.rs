//! Forward error correction: the Reed-Solomon codes behind "post-FEC
//! error-free" (§6).
//!
//! The prototype demonstrates BER < 1e-12 *after* FEC at -8 dBm. Ethernet
//! 50G PAM-4 lanes use RS(544,514) over GF(2^10) ("KP4", corrects t = 15
//! symbol errors per frame); 25G NRZ lanes use RS(528,514) ("KR4",
//! t = 7). This module computes the exact post-FEC frame/bit error rates
//! from the pre-FEC BER via the binomial tail, which is where the
//! "FEC threshold" lines of Fig. 8d come from.

use crate::ber::erfc;

/// A Reed-Solomon code RS(n, k) over `m`-bit symbols.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReedSolomon {
    /// Codeword length in symbols.
    pub n: u32,
    /// Data symbols per codeword.
    pub k: u32,
    /// Bits per symbol.
    pub m: u32,
}

/// KP4: RS(544,514,10) — the FEC of 50G/100G PAM-4 lanes.
pub const KP4: ReedSolomon = ReedSolomon {
    n: 544,
    k: 514,
    m: 10,
};
/// KR4: RS(528,514,10) — the FEC of 25G NRZ lanes.
pub const KR4: ReedSolomon = ReedSolomon {
    n: 528,
    k: 514,
    m: 10,
};

impl ReedSolomon {
    /// Symbol-correction capability `t = (n-k)/2`.
    pub fn t(&self) -> u32 {
        (self.n - self.k) / 2
    }

    /// Rate overhead (extra bandwidth the code costs).
    pub fn overhead(&self) -> f64 {
        self.n as f64 / self.k as f64 - 1.0
    }

    /// Probability a symbol is received in error given pre-FEC BER
    /// (independent bit errors).
    pub fn symbol_error_rate(&self, ber: f64) -> f64 {
        1.0 - (1.0 - ber).powi(self.m as i32)
    }

    /// Post-FEC *frame* error rate: probability more than `t` of `n`
    /// symbols are bad (binomial upper tail, computed in log space for
    /// numerical range).
    pub fn frame_error_rate(&self, ber: f64) -> f64 {
        let p = self.symbol_error_rate(ber);
        if p <= 0.0 {
            return 0.0;
        }
        if p >= 1.0 {
            return 1.0;
        }
        let n = self.n as f64;
        let t = self.t();
        let ln_p = p.ln();
        let ln_q = (1.0 - p).ln();
        if n * p > t as f64 {
            // The binomial mode sits above the correction capability: the
            // upper tail is most of the mass, so compute its complement
            // P(X <= t) exactly (t+1 terms) instead — the windowed tail
            // sum below would miss the mode entirely.
            let mut below = 0f64;
            for j in 0..=t {
                let ln_term = ln_choose(self.n, j) + j as f64 * ln_p + (n - j as f64) * ln_q;
                below += ln_term.exp();
            }
            return (1.0 - below).clamp(0.0, 1.0);
        }
        // Sum_{j=t+1..n} C(n,j) p^j (1-p)^(n-j). The tail is dominated by
        // j = t+1 for small p; we sum a window beyond that and bound the
        // remainder by a geometric series.
        let mut total = 0f64;
        for j in (t + 1)..=(t + 60).min(self.n) {
            let ln_term = ln_choose(self.n, j) + j as f64 * ln_p + (n - j as f64) * ln_q;
            total += ln_term.exp();
        }
        total.min(1.0)
    }

    /// Post-FEC *bit* error rate (uncorrectable frames scatter roughly
    /// `t+1` symbol errors over the frame).
    pub fn post_fec_ber(&self, ber: f64) -> f64 {
        let fer = self.frame_error_rate(ber);
        let bits_per_frame = (self.n * self.m) as f64;
        let errd_bits = ((self.t() + 1) * self.m) as f64 / 2.0;
        (fer * errd_bits / bits_per_frame).min(0.5)
    }

    /// The pre-FEC BER at which post-FEC BER crosses `target`
    /// (bisection) — the "FEC threshold" of Fig. 8d.
    pub fn threshold(&self, target: f64) -> f64 {
        let (mut lo, mut hi) = (1e-12_f64, 0.4_f64);
        for _ in 0..200 {
            let mid = (lo * hi).sqrt();
            if self.post_fec_ber(mid) > target {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        (lo * hi).sqrt()
    }
}

/// ln C(n, k) via Stirling/lgamma-free accumulation.
fn ln_choose(n: u32, k: u32) -> f64 {
    debug_assert!(k <= n);
    let k = k.min(n - k);
    let mut acc = 0f64;
    for i in 0..k {
        acc += ((n - i) as f64).ln() - ((i + 1) as f64).ln();
    }
    acc
}

/// Gaussian Q-function helper: BER for a given Q factor (NRZ).
pub fn ber_from_q(q: f64) -> f64 {
    0.5 * erfc(q / std::f64::consts::SQRT_2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_error_rate_saturates_at_catastrophic_ber() {
        // Above the correction capability the windowed tail sum used in
        // the waterfall region misses the binomial mode; the complement
        // path must take over and saturate toward 1.
        assert!(KP4.frame_error_rate(0.3) > 0.999);
        assert!(KP4.frame_error_rate(0.05) > 0.999);
        // Monotone across the regime switch (mode crosses t near
        // p_sym = t/n, i.e. BER ~ 2.9e-3 for KP4).
        let mut prev = 0.0;
        for &ber in &[1e-4, 5e-4, 1e-3, 2e-3, 3e-3, 5e-3, 1e-2, 1e-1] {
            let fer = KP4.frame_error_rate(ber);
            assert!(fer >= prev, "FER not monotone at BER {ber}");
            prev = fer;
        }
    }

    #[test]
    fn code_parameters() {
        assert_eq!(KP4.t(), 15);
        assert_eq!(KR4.t(), 7);
        assert!((KP4.overhead() - 0.0584).abs() < 0.001);
        assert!(KR4.overhead() < KP4.overhead());
    }

    #[test]
    fn kp4_threshold_is_around_2e4() {
        // The industry-standard quoted threshold for KP4 at 1e-15 post-FEC
        // is ~2.2e-4 pre-FEC.
        let thr = KP4.threshold(1e-15);
        assert!(
            (1e-4..5e-4).contains(&thr),
            "KP4 threshold = {thr:e} (expected ~2.2e-4)"
        );
    }

    #[test]
    fn kr4_threshold_is_tighter() {
        let kp4 = KP4.threshold(1e-15);
        let kr4 = KR4.threshold(1e-15);
        assert!(kr4 < kp4, "KR4 {kr4:e} should be below KP4 {kp4:e}");
        assert!(kr4 > 1e-6);
    }

    #[test]
    fn error_free_below_threshold() {
        // The §6 demonstration: pre-FEC BER at the sensitivity point maps
        // to post-FEC far below the 1e-12 "error-free" bar.
        let pre = 1e-4; // comfortably below KP4's threshold
        let post = KP4.post_fec_ber(pre);
        assert!(post < 1e-12, "post-FEC {post:e}");
    }

    #[test]
    fn fec_cliff_is_steep() {
        // A decade of pre-FEC BER around the threshold swings post-FEC by
        // many decades — the "waterfall cliff" that makes the threshold a
        // meaningful single number.
        let at = KP4.post_fec_ber(2e-4);
        let above = KP4.post_fec_ber(2e-3);
        assert!(
            above / at.max(1e-300) > 1e10,
            "cliff too shallow: {at:e} -> {above:e}"
        );
    }

    #[test]
    fn fer_monotone_in_ber() {
        let mut prev = 0.0;
        for exp in [-6.0f64, -5.0, -4.0, -3.0, -2.0] {
            let fer = KP4.frame_error_rate(10f64.powf(exp));
            assert!(fer >= prev);
            prev = fer;
        }
        assert_eq!(KP4.frame_error_rate(0.0), 0.0);
        assert_eq!(KP4.frame_error_rate(1.0), 1.0);
    }

    #[test]
    fn ln_choose_matches_small_cases() {
        assert!((ln_choose(5, 2) - 10f64.ln()).abs() < 1e-12);
        assert!((ln_choose(10, 0)).abs() < 1e-12);
        assert!((ln_choose(544, 16) - 69.89).abs() < 0.1);
    }

    #[test]
    fn ber_from_q_reference() {
        // Q = 7 is the classic 1e-12 point.
        let b = ber_from_q(7.0);
        assert!((1e-13..1e-11).contains(&b), "{b:e}");
    }
}
