//! Optical noise accumulation along a Sirius lightpath.
//!
//! The disaggregated laser's SOA gate amplifies *unmodulated* light, which
//! (§3.3) "alleviates the impact of any optical noise" — the amplified
//! spontaneous emission (ASE) it adds rides on a clean carrier and is
//! partially stripped by the modulator's extinction, unlike an inline
//! amplifier that would amplify signal + noise together. This module
//! models OSNR along the path (laser -> SOA -> modulator -> grating ->
//! receiver) and converts the residual OSNR into a BER power penalty so
//! the Fig. 8d receiver model can be used with realistic impairments.

/// Boltzmann-free, reference-bandwidth OSNR bookkeeping in dB.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OsnrBudget {
    /// OSNR of the bare laser line (shot-noise limited), dB.
    pub source_osnr_db: f64,
    /// SOA noise figure, dB.
    pub soa_nf_db: f64,
    /// SOA gain, dB.
    pub soa_gain_db: f64,
    /// Fraction of the SOA ASE suppressed because the SOA sits *before*
    /// the modulator (gating unmodulated light), dB of effective NF
    /// improvement.
    pub pre_modulation_benefit_db: f64,
}

impl OsnrBudget {
    /// Values for the fabricated chip configuration.
    pub fn paper() -> OsnrBudget {
        OsnrBudget {
            source_osnr_db: 55.0,
            soa_nf_db: 7.0,
            soa_gain_db: 10.0,
            pre_modulation_benefit_db: 3.0,
        }
    }

    /// OSNR after the SOA gate, dB. One amplifier stage:
    /// `1/OSNR_out = 1/OSNR_in + 1/OSNR_stage` in linear units, with the
    /// stage OSNR set by its effective noise figure.
    pub fn osnr_after_soa_db(&self) -> f64 {
        // Stage OSNR for a single amplifier at moderate input power:
        // ~58 dB - NF_eff (0.1 nm reference bandwidth, 0 dBm input).
        let nf_eff = self.soa_nf_db - self.pre_modulation_benefit_db;
        let stage = 58.0 - nf_eff;
        combine_osnr_db(self.source_osnr_db, stage)
    }

    /// BER power penalty at the receiver due to finite OSNR, dB.
    /// Negligible above ~40 dB OSNR, ~1 dB at 30 dB, severe below 25 dB
    /// (standard PAM-4 penalty curve, linearized in the region of
    /// interest).
    pub fn power_penalty_db(&self) -> f64 {
        let osnr = self.osnr_after_soa_db();
        if osnr >= 40.0 {
            0.0
        } else if osnr >= 25.0 {
            (40.0 - osnr) / 15.0 * 1.5
        } else {
            1.5 + (25.0 - osnr) * 0.5
        }
    }
}

/// Combine two OSNR contributions (dB): linear harmonic sum.
pub fn combine_osnr_db(a_db: f64, b_db: f64) -> f64 {
    let a = 10f64.powf(a_db / 10.0);
    let b = 10f64.powf(b_db / 10.0);
    10.0 * (1.0 / (1.0 / a + 1.0 / b)).log10()
}

/// Cascade penalty for `n` identical amplifier stages (relevant for the
/// space-switch alternatives of §8 that cascade 2x2 SOA elements — one of
/// the reasons Sirius avoids them).
pub fn cascaded_osnr_db(source_db: f64, stage_db: f64, n: u32) -> f64 {
    let mut osnr = source_db;
    for _ in 0..n {
        osnr = combine_osnr_db(osnr, stage_db);
    }
    osnr
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_soa_keeps_osnr_high() {
        // The §3.3 design point: one SOA gate before modulation leaves
        // OSNR far above the penalty region.
        let b = OsnrBudget::paper();
        assert!(b.osnr_after_soa_db() > 40.0, "{}", b.osnr_after_soa_db());
        assert_eq!(b.power_penalty_db(), 0.0);
    }

    #[test]
    fn pre_modulation_gating_helps() {
        let clean = OsnrBudget::paper();
        let inline = OsnrBudget {
            pre_modulation_benefit_db: 0.0,
            ..clean
        };
        assert!(inline.osnr_after_soa_db() < clean.osnr_after_soa_db());
    }

    #[test]
    fn combine_is_dominated_by_the_worse_term() {
        let c = combine_osnr_db(50.0, 30.0);
        assert!(c < 30.0 && c > 29.0, "combined {c}");
        // Equal terms lose 3 dB.
        let e = combine_osnr_db(40.0, 40.0);
        assert!((e - 37.0).abs() < 0.05);
    }

    #[test]
    fn cascaded_stages_degrade_geometrically() {
        // The §8 argument against cascaded 2x2 space switches: a large
        // switch needs log2(N) stages of amplification and the OSNR
        // collapses; Sirius' single passive hop does not.
        let one = cascaded_osnr_db(55.0, 51.0, 1);
        let seven = cascaded_osnr_db(55.0, 51.0, 7); // 128-port Benes depth
        assert!(one > 49.0);
        assert!(seven < 43.0, "7 stages left {seven} dB");
        assert!(seven < one - 6.0);
    }

    #[test]
    fn penalty_curve_is_monotone() {
        // Penalty grows as OSNR degrades.
        let mut prev = -1.0f64;
        for osnr in [45.0, 38.0, 30.0, 26.0, 22.0, 18.0] {
            let b = OsnrBudget {
                source_osnr_db: osnr,
                soa_nf_db: 0.0,
                soa_gain_db: 0.0,
                pre_modulation_benefit_db: 0.0,
            };
            let p = b.power_penalty_db();
            assert!(p >= prev, "penalty not monotone at {osnr} dB: {p} < {prev}");
            prev = p;
        }
        assert!(prev > 3.0, "deep penalty region should be severe: {prev}");
    }
}
