//! # sirius-optics
//!
//! The optical substrate of the Sirius reproduction (§3 and §6 of the
//! paper): passive AWGR gratings, the four tunable-laser designs
//! (including the fabricated fixed-bank/SOA chip), SOA gate physics, the
//! optical link budget with laser sharing, BER/FEC receiver models, and
//! the phase-caching burst-mode CDR.
//!
//! Hardware substitution: the paper's InP photonic chip, FPGAs and
//! oscilloscopes are unreachable; every device here is an analytical or
//! stochastic model calibrated against the paper's published measurements
//! (912 ps worst-case SOA tuning, 14/92 ns dampened DSDBR tuning, -8 dBm
//! PAM-4 sensitivity, 3.84 ns end-to-end reconfiguration). See DESIGN.md
//! for the substitution table.
//!
//! ```
//! use rand::rngs::SmallRng;
//! use rand::SeedableRng;
//! use sirius_optics::laser::{FixedLaserBank, TunableSource};
//! use sirius_optics::transceiver::v2;
//!
//! let mut rng = SmallRng::seed_from_u64(7);
//! // The fabricated chip tunes in under a nanosecond...
//! let chip = FixedLaserBank::paper_chip(&mut rng);
//! assert!(chip.worst_tuning_latency().as_ns_f64() < 1.0);
//! // ...enabling 3.84 ns end-to-end reconfiguration.
//! let t = v2::transceiver(&mut rng);
//! assert_eq!(t.reconfiguration_time().as_ns_f64(), 3.84);
//! ```

pub mod agc;
pub mod awgr;
pub mod ber;
pub mod cdr;
pub mod equalizer;
pub mod fec;
pub mod laser;
pub mod link_budget;
pub mod modulator;
pub mod noise;
pub mod soa;
pub mod spectrum;
pub mod transceiver;
pub mod wavelength;

pub use awgr::Awgr;
pub use ber::{Modulation, Receiver, ERROR_FREE_BER, KP4_FEC_THRESHOLD};
pub use cdr::{CdrConfig, LockOutcome, PhaseCache};
pub use equalizer::{EqualizerCache, Ffe};
pub use laser::{CombLaser, DsdbrLaser, FixedLaserBank, TunableLaserBank, TunableSource};
pub use link_budget::LinkBudget;
pub use noise::OsnrBudget;
pub use soa::{Soa, SoaChip};
pub use transceiver::Transceiver;
pub use wavelength::Grid;
