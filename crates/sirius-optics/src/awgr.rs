//! Arrayed Waveguide Grating Router — the passive core element (§3.1).
//!
//! An AWGR diffracts the wavelengths arriving on each input port cyclically
//! across its output ports: input `p` carrying wavelength-index `w` exits
//! on output `(p + w) mod ports` (Fig. 3a of the paper). It has no moving
//! parts, no power draw, and is agnostic to the modulation carried — which
//! is why the Sirius core never needs upgrading.
//!
//! The model also carries an insertion-loss figure for the link-budget
//! analysis of §4.5 ("100-port gratings can be fabricated with a maximum
//! 6 dB insertion loss").

/// A passive wavelength grating with `ports` inputs and outputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Awgr {
    ports: u16,
}

impl Awgr {
    pub fn new(ports: u16) -> Awgr {
        assert!(ports > 0, "an AWGR needs at least one port");
        Awgr { ports }
    }

    pub fn ports(&self) -> u16 {
        self.ports
    }

    /// Cyclic wavelength routing: input `p`, wavelength-index `w` exits on
    /// output `(p + w) mod ports`.
    pub fn route(&self, input: u16, wavelength: u16) -> u16 {
        assert!(input < self.ports, "input {input} out of range");
        ((input as u32 + wavelength as u32) % self.ports as u32) as u16
    }

    /// The wavelength index input `p` must use to reach output `q`.
    pub fn wavelength_for(&self, input: u16, output: u16) -> u16 {
        assert!(input < self.ports && output < self.ports);
        ((output as u32 + self.ports as u32 - input as u32) % self.ports as u32) as u16
    }

    /// Insertion loss in dB, calibrated so a 100-port grating loses 6 dB
    /// (the paper's figure) and loss grows logarithmically with port count
    /// as in practical PLC fabrication.
    pub fn insertion_loss_db(&self) -> f64 {
        3.0 * (self.ports as f64).log10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fig3a_four_port_routing() {
        // Fig. 3a: W(i,j) = j-th wavelength on input i. Wavelength j=0 from
        // input 0 exits output 0; wavelength 1 from input 0 exits output 1;
        // wavelength 3 from input 1 exits output 0 (cyclic wrap).
        let g = Awgr::new(4);
        assert_eq!(g.route(0, 0), 0);
        assert_eq!(g.route(0, 1), 1);
        assert_eq!(g.route(1, 3), 0);
        assert_eq!(g.route(3, 2), 1);
    }

    #[test]
    fn wavelength_for_inverts_route() {
        let g = Awgr::new(16);
        for p in 0..16 {
            for q in 0..16 {
                let w = g.wavelength_for(p, q);
                assert_eq!(g.route(p, w), q);
                assert!(w < 16);
            }
        }
    }

    #[test]
    fn each_wavelength_is_a_permutation() {
        // Physical property: for a fixed wavelength, inputs map 1:1 onto
        // outputs (no two inputs can collide on an output).
        let g = Awgr::new(9);
        for w in 0..9 {
            let mut seen = [false; 9];
            for p in 0..9 {
                let q = g.route(p, w) as usize;
                assert!(!seen[q]);
                seen[q] = true;
            }
        }
    }

    #[test]
    fn insertion_loss_matches_paper_anchor() {
        assert!((Awgr::new(100).insertion_loss_db() - 6.0).abs() < 1e-9);
        // Smaller gratings lose less: 16 ports ~ 3.6 dB.
        let l16 = Awgr::new(16).insertion_loss_db();
        assert!(l16 > 3.0 && l16 < 4.0, "16-port loss {l16}");
        assert!(Awgr::new(512).insertion_loss_db() > 6.0);
    }

    proptest! {
        #[test]
        fn cyclic_routing_is_shift_invariant(ports in 1u16..64, p in 0u16..64, w in 0u16..200) {
            let p = p % ports;
            let g = Awgr::new(ports);
            // Adding `ports` to the wavelength index changes nothing (the
            // grating's free spectral range wraps).
            prop_assert_eq!(g.route(p, w), g.route(p, w + ports));
        }
    }
}
