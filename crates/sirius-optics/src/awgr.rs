//! Arrayed Waveguide Grating Router — the passive core element (§3.1).
//!
//! An AWGR diffracts the wavelengths arriving on each input port cyclically
//! across its output ports: input `p` carrying wavelength-index `w` exits
//! on output `(p + w) mod ports` (Fig. 3a of the paper). It has no moving
//! parts, no power draw, and is agnostic to the modulation carried — which
//! is why the Sirius core never needs upgrading.
//!
//! The model also carries an insertion-loss figure for the link-budget
//! analysis of §4.5 ("100-port gratings can be fabricated with a maximum
//! 6 dB insertion loss").

/// A passive wavelength grating with `ports` inputs and outputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Awgr {
    ports: u16,
}

impl Awgr {
    pub fn new(ports: u16) -> Awgr {
        assert!(ports > 0, "an AWGR needs at least one port");
        Awgr { ports }
    }

    pub fn ports(&self) -> u16 {
        self.ports
    }

    /// Cyclic wavelength routing: input `p`, wavelength-index `w` exits on
    /// output `(p + w) mod ports`.
    pub fn route(&self, input: u16, wavelength: u16) -> u16 {
        assert!(input < self.ports, "input {input} out of range");
        ((input as u32 + wavelength as u32) % self.ports as u32) as u16
    }

    /// The wavelength index input `p` must use to reach output `q`.
    pub fn wavelength_for(&self, input: u16, output: u16) -> u16 {
        assert!(input < self.ports && output < self.ports);
        ((output as u32 + self.ports as u32 - input as u32) % self.ports as u32) as u16
    }

    /// Insertion loss in dB, calibrated so a 100-port grating loses 6 dB
    /// (the paper's figure) and loss grows logarithmically with port count
    /// as in practical PLC fabrication.
    pub fn insertion_loss_db(&self) -> f64 {
        3.0 * (self.ports as f64).log10()
    }

    /// Output ports silenced when chip `chip` of a disaggregated fixed
    /// laser bank feeding input `input` dies (§3.3 + Fig. 3a).
    ///
    /// The bank carries one always-on laser per wavelength index
    /// `0..ports`, ganged from chips of `chip_capacity` channels each in
    /// the contiguous layout of `FixedLaserBank::new` (chip `c` covers
    /// channels `[c*cap, min((c+1)*cap, ports))`, the last chip possibly
    /// short). Each dead channel `w` silences exactly one output via the
    /// cyclic route relation `(input + w) mod ports` — a whole-chip
    /// failure is therefore a *correlated* blast: a contiguous wavelength
    /// band maps onto a set of distinct output ports, one column each.
    /// Returns the dead outputs in channel order; empty when `chip` is
    /// off the end of the bank.
    pub fn dead_outputs_for_chip(&self, input: u16, chip: u16, chip_capacity: u16) -> Vec<u16> {
        assert!(chip_capacity > 0, "a chip holds at least one channel");
        let lo = (chip as u32).saturating_mul(chip_capacity as u32);
        let hi = (lo + chip_capacity as u32).min(self.ports as u32);
        (lo..hi).map(|w| self.route(input, w as u16)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fig3a_four_port_routing() {
        // Fig. 3a: W(i,j) = j-th wavelength on input i. Wavelength j=0 from
        // input 0 exits output 0; wavelength 1 from input 0 exits output 1;
        // wavelength 3 from input 1 exits output 0 (cyclic wrap).
        let g = Awgr::new(4);
        assert_eq!(g.route(0, 0), 0);
        assert_eq!(g.route(0, 1), 1);
        assert_eq!(g.route(1, 3), 0);
        assert_eq!(g.route(3, 2), 1);
    }

    #[test]
    fn wavelength_for_inverts_route() {
        let g = Awgr::new(16);
        for p in 0..16 {
            for q in 0..16 {
                let w = g.wavelength_for(p, q);
                assert_eq!(g.route(p, w), q);
                assert!(w < 16);
            }
        }
    }

    #[test]
    fn each_wavelength_is_a_permutation() {
        // Physical property: for a fixed wavelength, inputs map 1:1 onto
        // outputs (no two inputs can collide on an output).
        let g = Awgr::new(9);
        for w in 0..9 {
            let mut seen = [false; 9];
            for p in 0..9 {
                let q = g.route(p, w) as usize;
                assert!(!seen[q]);
                seen[q] = true;
            }
        }
    }

    #[test]
    fn chip_death_maps_to_distinct_output_band() {
        let g = Awgr::new(8);
        // Chips of 3 channels over an 8-wavelength bank: 3 + 3 + 2.
        assert_eq!(g.dead_outputs_for_chip(0, 0, 3), vec![0, 1, 2]);
        assert_eq!(g.dead_outputs_for_chip(0, 1, 3), vec![3, 4, 5]);
        assert_eq!(g.dead_outputs_for_chip(0, 2, 3), vec![6, 7]);
        assert!(g.dead_outputs_for_chip(0, 3, 3).is_empty());
        // A nonzero input rotates the band (cyclic route relation), and
        // the dead outputs stay distinct.
        assert_eq!(g.dead_outputs_for_chip(6, 0, 3), vec![6, 7, 0]);
        let all: Vec<u16> = (0..3)
            .flat_map(|c| g.dead_outputs_for_chip(5, c, 3))
            .collect();
        let mut sorted = all.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 8, "chips must partition the outputs: {all:?}");
    }

    #[test]
    fn insertion_loss_matches_paper_anchor() {
        assert!((Awgr::new(100).insertion_loss_db() - 6.0).abs() < 1e-9);
        // Smaller gratings lose less: 16 ports ~ 3.6 dB.
        let l16 = Awgr::new(16).insertion_loss_db();
        assert!(l16 > 3.0 && l16 < 4.0, "16-port loss {l16}");
        assert!(Awgr::new(512).insertion_loss_db() > 6.0);
    }

    proptest! {
        #[test]
        fn cyclic_routing_is_shift_invariant(ports in 1u16..64, p in 0u16..64, w in 0u16..200) {
            let p = p % ports;
            let g = Awgr::new(ports);
            // Adding `ports` to the wavelength index changes nothing (the
            // grating's free spectral range wraps).
            prop_assert_eq!(g.route(p, w), g.route(p, w + ports));
        }
    }
}
