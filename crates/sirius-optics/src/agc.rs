//! Amplitude caching (§4.5): "to equalize the varying optical power a node
//! receives from different sources, we use 'amplitude caching' instead of
//! slower gain control circuitry."
//!
//! Every sender reaches a receiver through a different lightpath (different
//! laser, coupling, grating port), so received power varies per sender by
//! a few dB. A conventional AGC loop settles in microseconds — useless per
//! 100 ns slot. Like the phase cache, the amplitude cache keys the receiver
//! gain by sender: the first burst from a sender runs a (slow) measurement,
//! every later burst loads the cached gain instantly and nudges it with the
//! burst's measured amplitude, tracking slow drift (laser aging, thermal).

/// Residual error after applying a cached gain, in dB.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GainOutcome {
    /// Gain applied at burst start, dB.
    pub applied_db: f64,
    /// |residual| between applied gain and the ideal for this burst, dB.
    pub residual_db: f64,
    /// Whether the cache was warm.
    pub cached: bool,
}

/// Per-sender receiver gain cache.
#[derive(Debug)]
pub struct AmplitudeCache {
    /// Cached gain per sender, dB (NaN = never seen).
    gain: Vec<f64>,
    /// Exponential tracking factor applied per burst (0..1; 1 = jump to
    /// the new measurement immediately).
    alpha: f64,
    /// Residual tolerance for error-free sampling, dB.
    tolerance_db: f64,
    cold: u64,
    warm: u64,
}

impl AmplitudeCache {
    pub fn new(senders: usize) -> AmplitudeCache {
        AmplitudeCache {
            gain: vec![f64::NAN; senders],
            alpha: 0.25,
            tolerance_db: 1.0,
            cold: 0,
            warm: 0,
        }
    }

    /// A burst from `sender` arrives needing `ideal_gain_db`. Returns what
    /// was applied; the cache then updates toward the measurement.
    pub fn on_burst(&mut self, sender: usize, ideal_gain_db: f64) -> GainOutcome {
        let out = match self.gain[sender] {
            g if g.is_nan() => {
                // Cold: a full (slow) AGC acquisition happens this once.
                self.cold += 1;
                GainOutcome {
                    applied_db: ideal_gain_db,
                    residual_db: 0.0,
                    cached: false,
                }
            }
            g => {
                self.warm += 1;
                GainOutcome {
                    applied_db: g,
                    residual_db: (g - ideal_gain_db).abs(),
                    cached: true,
                }
            }
        };
        // Track toward the burst's measured ideal.
        let prev = if self.gain[sender].is_nan() {
            ideal_gain_db
        } else {
            self.gain[sender]
        };
        self.gain[sender] = prev + self.alpha * (ideal_gain_db - prev);
        out
    }

    /// Does the residual stay inside the error-free sampling tolerance?
    pub fn within_tolerance(&self, o: &GainOutcome) -> bool {
        o.residual_db <= self.tolerance_db
    }

    pub fn cold(&self) -> u64 {
        self.cold
    }
    pub fn warm(&self) -> u64 {
        self.warm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_burst_is_cold_then_cached() {
        let mut ac = AmplitudeCache::new(4);
        let a = ac.on_burst(2, -3.0);
        assert!(!a.cached);
        let b = ac.on_burst(2, -3.0);
        assert!(b.cached);
        assert!(b.residual_db < 1e-9);
        assert_eq!(ac.cold(), 1);
        assert_eq!(ac.warm(), 1);
    }

    #[test]
    fn caches_are_per_sender() {
        // Senders at very different received powers must not disturb each
        // other's gain — this is the whole point vs a single AGC loop.
        let mut ac = AmplitudeCache::new(3);
        ac.on_burst(0, 0.0);
        ac.on_burst(1, -6.0);
        let a = ac.on_burst(0, 0.0);
        let b = ac.on_burst(1, -6.0);
        assert!(ac.within_tolerance(&a));
        assert!(ac.within_tolerance(&b));
    }

    #[test]
    fn cache_tracks_slow_drift() {
        // The sender's power drifts 0.02 dB per epoch (thermal); the
        // per-burst exponential update keeps the residual well inside
        // tolerance forever.
        let mut ac = AmplitudeCache::new(1);
        let mut ideal = -2.0;
        ac.on_burst(0, ideal);
        let mut worst: f64 = 0.0;
        for _ in 0..10_000 {
            ideal += 0.02;
            let o = ac.on_burst(0, ideal);
            worst = worst.max(o.residual_db);
            assert!(ac.within_tolerance(&o), "residual {} dB", o.residual_db);
        }
        // Steady-state lag of an EMA tracking a ramp: step/alpha.
        assert!(worst < 0.02 / 0.25 + 0.05, "worst residual {worst}");
    }

    #[test]
    fn step_change_recovers_within_a_few_epochs() {
        // A re-spliced fiber shifts the path loss by 2 dB; the cache
        // converges within ~1/alpha bursts (a handful of epochs).
        let mut ac = AmplitudeCache::new(1);
        ac.on_burst(0, 0.0);
        ac.on_burst(0, 0.0);
        let first = ac.on_burst(0, 2.0);
        assert!(first.residual_db > 1.5, "step not visible: {first:?}");
        let mut bursts = 0;
        loop {
            bursts += 1;
            let o = ac.on_burst(0, 2.0);
            if o.residual_db < 0.2 {
                break;
            }
            assert!(bursts < 20, "no convergence");
        }
        assert!(bursts <= 12, "took {bursts} bursts");
    }
}
