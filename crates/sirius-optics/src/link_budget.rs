//! Optical link budget and laser sharing (§4.5 "Laser sharing").
//!
//! The laser must generate enough optical power that, after every loss on
//! the lightpath (modulator, fiber coupling, the grating's insertion loss)
//! and an engineering margin, the receiver still gets its sensitivity
//! floor. The paper's numbers: a -8 dBm receiver, a 6 dB 100-port grating,
//! 7 dB of modulator+coupling losses and a 2 dB margin require 7 dBm
//! (5 mW) at the transmitter — so a 16 dBm (40 mW) laser can feed up to 8
//! transceivers, amortizing the disaggregated laser's cost. Sharing is
//! possible *because* the cyclic schedule has every transceiver on a node
//! using the same wavelength at every instant.

/// Components of an end-to-end optical power budget, in dB/dBm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkBudget {
    /// Laser output power, dBm.
    pub laser_dbm: f64,
    /// Modulator + fiber-coupling losses, dB.
    pub coupling_loss_db: f64,
    /// Grating insertion loss, dB.
    pub grating_loss_db: f64,
    /// Engineering margin, dB.
    pub margin_db: f64,
    /// Receiver sensitivity for post-FEC error-free operation, dBm.
    pub rx_sensitivity_dbm: f64,
}

/// Convert dBm to mW.
pub fn dbm_to_mw(dbm: f64) -> f64 {
    10f64.powf(dbm / 10.0)
}
/// Convert mW to dBm.
pub fn mw_to_dbm(mw: f64) -> f64 {
    10.0 * mw.log10()
}

impl LinkBudget {
    /// The testbed budget of §4.5.
    pub fn paper() -> LinkBudget {
        LinkBudget {
            laser_dbm: 16.0,
            coupling_loss_db: 7.0,
            grating_loss_db: 6.0,
            margin_db: 2.0,
            rx_sensitivity_dbm: -8.0,
        }
    }

    /// Transmit power each transceiver needs, dBm.
    pub fn required_tx_dbm(&self) -> f64 {
        self.rx_sensitivity_dbm + self.grating_loss_db + self.coupling_loss_db + self.margin_db
    }

    /// Power arriving at the receiver if the transmitter launches
    /// `tx_dbm`, dBm.
    pub fn received_dbm(&self, tx_dbm: f64) -> f64 {
        tx_dbm - self.coupling_loss_db - self.grating_loss_db
    }

    /// Does the budget close with the full laser behind one transceiver?
    pub fn closes(&self) -> bool {
        self.laser_dbm >= self.required_tx_dbm()
    }

    /// Headroom above the requirement, dB.
    pub fn headroom_db(&self) -> f64 {
        self.laser_dbm - self.required_tx_dbm()
    }

    /// How many transceivers one laser can feed. Computed in linear power
    /// with a 2% engineering tolerance (the paper's own arithmetic rounds
    /// 40 mW / 5 mW = 8).
    pub fn max_shared_transceivers(&self) -> usize {
        let ratio = dbm_to_mw(self.laser_dbm) / dbm_to_mw(self.required_tx_dbm());
        (ratio * 1.02).floor().max(0.0) as usize
    }

    /// Tunable laser chips a rack needs for `uplinks` transceivers, plus
    /// `spares` backups (§4.5: "a rack with 256 uplinks would only need 32
    /// tunable laser chips plus any additional lasers for fault
    /// tolerance").
    pub fn lasers_for_rack(&self, uplinks: usize, spares: usize) -> usize {
        let share = self.max_shared_transceivers().max(1);
        uplinks.div_ceil(share) + spares
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_requirement_is_7dbm() {
        let b = LinkBudget::paper();
        assert!((b.required_tx_dbm() - 7.0).abs() < 1e-9);
        assert!(b.closes());
        assert!((b.headroom_db() - 9.0).abs() < 1e-9);
    }

    #[test]
    fn laser_shared_across_8_transceivers() {
        // §4.5: "A single laser can thus be shared across up to 8
        // transceivers."
        assert_eq!(LinkBudget::paper().max_shared_transceivers(), 8);
    }

    #[test]
    fn rack_with_256_uplinks_needs_32_chips() {
        // §4.5 verbatim.
        assert_eq!(LinkBudget::paper().lasers_for_rack(256, 0), 32);
        assert_eq!(LinkBudget::paper().lasers_for_rack(256, 4), 36);
    }

    #[test]
    fn better_receivers_increase_sharing() {
        // §4.5: "receivers with better sensitivity ... would allow an even
        // higher degree of laser sharing".
        let mut b = LinkBudget::paper();
        b.rx_sensitivity_dbm = -11.0;
        assert!(b.max_shared_transceivers() > 8);
    }

    #[test]
    fn budget_fails_when_loss_exceeds_laser() {
        let mut b = LinkBudget::paper();
        b.grating_loss_db = 20.0;
        assert!(!b.closes());
        // The laser cannot feed even one transceiver at this loss.
        assert_eq!(b.max_shared_transceivers(), 0);
    }

    #[test]
    fn received_power_at_paper_operating_point() {
        // A transceiver launching the required 7 dBm delivers exactly the
        // sensitivity floor plus margin.
        let b = LinkBudget::paper();
        let rx = b.received_dbm(b.required_tx_dbm());
        assert!((rx - (-6.0)).abs() < 1e-9); // -8 dBm floor + 2 dB margin
    }

    #[test]
    fn dbm_mw_roundtrip() {
        for dbm in [-8.0, 0.0, 7.0, 16.0] {
            assert!((mw_to_dbm(dbm_to_mw(dbm)) - dbm).abs() < 1e-9);
        }
        assert!((dbm_to_mw(16.0) - 39.81).abs() < 0.01);
        assert!((dbm_to_mw(-8.0) - 0.1585).abs() < 0.001);
    }
}
