//! The ITU C-band wavelength grid used by Sirius' tunable lasers and
//! gratings (§3).
//!
//! Commercial tunable lasers cover ~100 wavelengths at 50 GHz spacing
//! around 1550 nm (§3.2); the paper's DSDBR prototype tunes across 112
//! channels, and the custom chip selects among 19. This module maps
//! channel indices to optical frequency/wavelength so physical-layer models
//! (AWGR routing, tuning transients, Fig. 8b) can speak in nanometres.

/// Speed of light in vacuum, m/s.
pub const C_M_PER_S: f64 = 299_792_458.0;

/// A wavelength-grid definition: `channels` channels spaced `spacing_ghz`
/// apart, with channel 0 at `base_thz`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Grid {
    pub channels: u16,
    pub spacing_ghz: f64,
    pub base_thz: f64,
}

impl Grid {
    /// The C-band grid of the paper's DSDBR laser: 112 channels at 50 GHz.
    /// Anchored so the grid spans ~1548-1570 nm, bracketing the wavelengths
    /// quoted in Fig. 8b (1550.116-1559.389 nm).
    pub fn c_band_112() -> Grid {
        Grid {
            channels: 112,
            spacing_ghz: 50.0,
            base_thz: 190.95, // ~1570 nm end; higher channels = shorter wavelength
        }
    }

    /// The 19-channel grid of the custom InP chip (§6, limited by chip
    /// area).
    pub fn chip_19() -> Grid {
        Grid {
            channels: 19,
            spacing_ghz: 50.0,
            base_thz: 193.0,
        }
    }

    /// Optical frequency of channel `ch` in THz.
    pub fn frequency_thz(&self, ch: u16) -> f64 {
        assert!(ch < self.channels, "channel {ch} outside grid");
        self.base_thz + ch as f64 * self.spacing_ghz / 1000.0
    }

    /// Wavelength of channel `ch` in nm.
    pub fn wavelength_nm(&self, ch: u16) -> f64 {
        C_M_PER_S / (self.frequency_thz(ch) * 1e12) * 1e9
    }

    /// Channel span (|i - j|) between two channels.
    pub fn span(&self, a: u16, b: u16) -> u16 {
        a.abs_diff(b)
    }

    /// Total ordered tuning pairs on this grid (the paper quotes "all
    /// 12,432 pairs of wavelengths" for 112 channels).
    pub fn ordered_pairs(&self) -> u32 {
        self.channels as u32 * (self.channels as u32 - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dsdbr_grid_matches_paper_pair_count() {
        let g = Grid::c_band_112();
        assert_eq!(g.ordered_pairs(), 12_432);
    }

    #[test]
    fn grid_spans_the_fig8b_wavelengths() {
        // Fig. 8b switches between 1550.116 nm and 1559.389 nm — both must
        // lie inside the 112-channel grid.
        let g = Grid::c_band_112();
        let lo = g.wavelength_nm(g.channels - 1);
        let hi = g.wavelength_nm(0);
        assert!(lo < 1550.116 && hi > 1559.389, "grid [{lo}, {hi}] nm");
    }

    #[test]
    fn adjacent_channels_are_0_4nm_apart() {
        // 50 GHz at ~1552 nm is ~0.4 nm, matching Fig. 8b's "adjacent"
        // pair 1552.524 / 1552.926 nm.
        let g = Grid::c_band_112();
        let mid = g.channels / 2;
        let d = (g.wavelength_nm(mid) - g.wavelength_nm(mid + 1)).abs();
        assert!((d - 0.4).abs() < 0.02, "spacing {d} nm");
    }

    #[test]
    fn frequency_monotone_wavelength_antitone() {
        let g = Grid::chip_19();
        for ch in 1..g.channels {
            assert!(g.frequency_thz(ch) > g.frequency_thz(ch - 1));
            assert!(g.wavelength_nm(ch) < g.wavelength_nm(ch - 1));
        }
    }

    #[test]
    #[should_panic(expected = "outside grid")]
    fn out_of_grid_channel_panics() {
        Grid::chip_19().frequency_thz(19);
    }
}
