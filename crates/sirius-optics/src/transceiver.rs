//! End-to-end transceiver composition: what sets the guardband (§4.5, §6).
//!
//! The guardband between timeslots must cover everything that happens when
//! the lightpath is torn down and re-established: the laser retune, the
//! receiver's (cached) CDR lock, residual time-synchronization error, and
//! the burst preamble used to refresh the phase/amplitude caches and align
//! the FEC. The paper's two prototypes:
//!
//! * **Sirius v1** — optimized DSDBR (92 ns worst-case tune), 25G NRZ:
//!   100 ns guardband.
//! * **Sirius v2** — the fabricated SOA-selector chip (912 ps), 50G PAM-4,
//!   sub-ns CDR: **3.84 ns** guardband, "allowing for a slot as low as
//!   38 ns".

use crate::ber::{Modulation, Receiver};
use crate::cdr::CdrConfig;
use crate::laser::TunableSource;
use sirius_core::units::{Duration, Rate};

/// One directional transceiver: a tunable source plus a burst receiver.
pub struct Transceiver<S: TunableSource> {
    pub source: S,
    pub receiver: Receiver,
    pub cdr: CdrConfig,
    /// Residual time-sync error between any two nodes (±5 ps measured in
    /// §6, counted twice: sender + receiver side).
    pub sync_error: Duration,
    /// Burst preamble: cache-refresh pattern + FEC alignment marker.
    pub preamble: Duration,
}

impl<S: TunableSource> Transceiver<S> {
    /// The end-to-end reconfiguration time: no data can flow while the
    /// laser settles, the clocks may disagree, the CDR locks, and the
    /// preamble plays.
    pub fn reconfiguration_time(&self) -> Duration {
        self.source.worst_tuning_latency()
            + self.sync_error * 2
            + self.cdr.cached_lock
            + self.preamble
    }

    /// Guardband overhead at a given slot duration.
    pub fn guardband_overhead(&self, slot: Duration) -> f64 {
        self.reconfiguration_time().as_ps() as f64 / slot.as_ps() as f64
    }

    /// Effective goodput rate of a channel after guardband and cell
    /// framing overheads.
    pub fn effective_rate(&self, slot: Duration, payload_bytes: u32) -> Rate {
        let bits = payload_bytes as u64 * 8;
        let bps = bits as f64 / slot.as_secs_f64();
        Rate::from_bps(bps as u64)
    }
}

/// Sirius v2 composition values (§6): chosen so the components sum to the
/// demonstrated 3.84 ns.
pub mod v2 {
    use super::*;
    use crate::laser::FixedLaserBank;
    use rand::Rng;

    /// Preamble long enough to refresh the amplitude cache and align the
    /// FEC at 50 Gbps: ~2.29 ns (~14 bytes).
    pub const PREAMBLE: Duration = Duration::from_ps(2_293);

    pub fn transceiver<R: Rng + ?Sized>(rng: &mut R) -> Transceiver<FixedLaserBank> {
        Transceiver {
            source: FixedLaserBank::paper_chip(rng),
            receiver: Receiver::new(Modulation::Pam4_50),
            cdr: CdrConfig::paper(),
            sync_error: Duration::from_ps(5),
            preamble: PREAMBLE,
        }
    }
}

/// Sirius v1 composition values (§6): DSDBR + 100 ns guardband.
pub mod v1 {
    use super::*;
    use crate::laser::standard::{DriveMode, DsdbrLaser};

    pub fn transceiver() -> Transceiver<DsdbrLaser> {
        Transceiver {
            source: DsdbrLaser::new(112, DriveMode::Dampened),
            receiver: Receiver::new(Modulation::Nrz25),
            cdr: CdrConfig::paper(),
            sync_error: Duration::from_ps(5),
            preamble: v2::PREAMBLE,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn v2_reconfigures_in_3_84ns() {
        let t = v2::transceiver(&mut SmallRng::seed_from_u64(1));
        let r = t.reconfiguration_time();
        // 912 ps tune + 10 ps sync + 625 ps CDR + 2.293 ns preamble.
        assert_eq!(r, Duration::from_ps(3_840), "reconfiguration = {r}");
    }

    #[test]
    fn v2_meets_the_10ns_target() {
        // §2.2: "we target an end-to-end reconfiguration latency of less
        // than 10 ns".
        let t = v2::transceiver(&mut SmallRng::seed_from_u64(2));
        assert!(t.reconfiguration_time() < Duration::from_ns(10));
    }

    #[test]
    fn v2_allows_38ns_slots() {
        // §4.5: 3.84 ns guardband "allowing for a slot as low as 38 ns"
        // at the 10% overhead target.
        let t = v2::transceiver(&mut SmallRng::seed_from_u64(3));
        let overhead = t.guardband_overhead(Duration::from_ps(38_400));
        assert!((overhead - 0.10).abs() < 0.01, "overhead = {overhead}");
    }

    #[test]
    fn v1_needs_about_100ns() {
        let t = v1::transceiver();
        let r = t.reconfiguration_time();
        // 92 ns tune dominates; the paper budgeted a 100 ns guardband.
        assert!(
            r > Duration::from_ns(90) && r <= Duration::from_ns(100),
            "{r}"
        );
    }

    #[test]
    fn v2_is_25x_faster_than_v1() {
        let v1t = v1::transceiver();
        let v2t = v2::transceiver(&mut SmallRng::seed_from_u64(4));
        let ratio =
            v1t.reconfiguration_time().as_ps() as f64 / v2t.reconfiguration_time().as_ps() as f64;
        assert!(ratio > 20.0, "only {ratio}x faster");
    }

    #[test]
    fn effective_rate_accounts_for_overheads() {
        let t = v2::transceiver(&mut SmallRng::seed_from_u64(5));
        // Paper slot: 562 B cell, 540 B payload, ~100 ns slot at 50 Gbps.
        let slot = Duration::from_ps(99_920);
        let eff = t.effective_rate(slot, 540);
        // 540*8 bits / 99.92 ns = 43.2 Gbps of goodput on a 50 Gbps line.
        let gbps = eff.as_gbps_f64();
        assert!((gbps - 43.2).abs() < 0.1, "effective = {gbps} Gbps");
    }
}
