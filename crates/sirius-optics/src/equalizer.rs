//! Burst-mode adaptive equalization with coefficient caching (§6).
//!
//! 50 Gbps PAM-4 needs equalization to undo bandwidth limitations of the
//! analog front end, but a conventional LMS equalizer takes microseconds
//! of training — useless when the link partner changes every 100 ns slot.
//! The paper: "to cope with the multi-level signal encoding, we also
//! developed a custom digital signal processing algorithm to guarantee
//! fast equalization \[68\]. Both techniques leverage the cyclic schedule to
//! 'cache' the relevant parameters instead of having to learn them from
//! scratch."
//!
//! This module implements exactly that: a per-sender cache of FFE
//! (feed-forward equalizer) tap coefficients. A cold burst trains taps
//! with sign-sign LMS over the preamble; subsequent bursts from the same
//! sender start from the cached taps and converge within a handful of
//! symbols. The channel model is a short FIR (inter-symbol interference)
//! plus noise, per sender.

use rand::Rng;

/// Number of FFE taps (typical short-reach burst receivers use 3-7).
pub const TAPS: usize = 5;

/// A linear channel: FIR impulse response + AWGN sigma, normalized so a
/// clean channel is `[0, 0, 1, 0, 0]` (identity with the cursor centred).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Channel {
    pub taps: [f64; TAPS],
    pub noise: f64,
}

impl Channel {
    /// A random short-reach channel: dominant cursor with pre/post ISI.
    pub fn random<R: Rng + ?Sized>(rng: &mut R) -> Channel {
        let mut taps = [0.0; TAPS];
        taps[TAPS / 2] = 1.0;
        taps[TAPS / 2 - 1] = 0.25 * (rng.gen::<f64>() - 0.5);
        taps[TAPS / 2 + 1] = 0.5 * (rng.gen::<f64>() - 0.5);
        Channel { taps, noise: 0.02 }
    }

    /// Transmit a PAM-4 symbol stream through the channel.
    pub fn transmit<R: Rng + ?Sized>(&self, symbols: &[f64], rng: &mut R) -> Vec<f64> {
        let mut out = vec![0.0; symbols.len()];
        for (i, o) in out.iter_mut().enumerate() {
            let mut acc = 0.0;
            for (k, &h) in self.taps.iter().enumerate() {
                let idx = i as isize + (TAPS / 2) as isize - k as isize;
                if idx >= 0 && (idx as usize) < symbols.len() {
                    acc += h * symbols[idx as usize];
                }
            }
            let n: f64 = {
                let u1: f64 = rng.gen::<f64>().max(1e-12);
                let u2: f64 = rng.gen();
                (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
            };
            *o = acc + self.noise * n;
        }
        out
    }
}

/// PAM-4 symbol alphabet (normalized).
pub const PAM4: [f64; 4] = [-1.0, -1.0 / 3.0, 1.0 / 3.0, 1.0];

/// Slice a sample to the nearest PAM-4 level.
pub fn slice_pam4(x: f64) -> f64 {
    let mut best = PAM4[0];
    for &l in &PAM4[1..] {
        if (x - l).abs() < (x - best).abs() {
            best = l;
        }
    }
    best
}

/// A feed-forward equalizer trained by sign-sign LMS.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ffe {
    pub taps: [f64; TAPS],
}

impl Default for Ffe {
    fn default() -> Self {
        let mut taps = [0.0; TAPS];
        taps[TAPS / 2] = 1.0;
        Ffe { taps }
    }
}

impl Ffe {
    /// Equalize one sample window (centred on index `i` of `rx`).
    fn output(&self, rx: &[f64], i: usize) -> f64 {
        let mut acc = 0.0;
        for (k, &w) in self.taps.iter().enumerate() {
            let idx = i as isize + (TAPS / 2) as isize - k as isize;
            if idx >= 0 && (idx as usize) < rx.len() {
                acc += w * rx[idx as usize];
            }
        }
        acc
    }

    /// One decision-directed sign-sign LMS update; returns |error|.
    fn adapt(&mut self, rx: &[f64], i: usize, target: f64, mu: f64) -> f64 {
        let y = self.output(rx, i);
        let e = y - target;
        for (k, w) in self.taps.iter_mut().enumerate() {
            let idx = i as isize + (TAPS / 2) as isize - k as isize;
            if idx >= 0 && (idx as usize) < rx.len() {
                *w -= mu * e.signum() * rx[idx as usize].signum();
            }
        }
        e.abs()
    }

    /// Train on a known preamble; returns symbols consumed to converge
    /// (mean |error| of a trailing window below `target_err`).
    pub fn train(&mut self, rx: &[f64], preamble: &[f64], target_err: f64) -> usize {
        let mu = 0.005;
        let mut window = [1.0f64; 16];
        for i in 0..preamble.len().min(rx.len()) {
            let e = self.adapt(rx, i, preamble[i], mu);
            window[i % 16] = e;
            let mean: f64 = window.iter().sum::<f64>() / 16.0;
            if i >= 16 && mean < target_err {
                return i + 1;
            }
        }
        preamble.len()
    }

    /// Symbol error rate over a payload with known transmitted symbols.
    pub fn evaluate(&self, rx: &[f64], tx: &[f64]) -> f64 {
        let mut errs = 0usize;
        for (i, &sym) in tx.iter().enumerate().take(rx.len()) {
            if (slice_pam4(self.output(rx, i)) - sym).abs() > 1e-9 {
                errs += 1;
            }
        }
        errs as f64 / tx.len() as f64
    }
}

/// Per-sender equalizer cache at one burst receiver.
#[derive(Debug)]
pub struct EqualizerCache {
    cached: Vec<Option<Ffe>>,
    pub cold_trainings: u64,
    pub warm_trainings: u64,
}

impl EqualizerCache {
    pub fn new(senders: usize) -> EqualizerCache {
        EqualizerCache {
            cached: vec![None; senders],
            cold_trainings: 0,
            warm_trainings: 0,
        }
    }

    /// Process a burst from `sender`: start from the cached taps (or the
    /// identity), train on the preamble, refresh the cache. Returns the
    /// trained FFE and the symbols spent converging.
    pub fn on_burst(
        &mut self,
        sender: usize,
        rx_preamble: &[f64],
        preamble: &[f64],
    ) -> (Ffe, usize) {
        let mut ffe = match self.cached[sender] {
            Some(f) => {
                self.warm_trainings += 1;
                f
            }
            None => {
                self.cold_trainings += 1;
                Ffe::default()
            }
        };
        let spent = ffe.train(rx_preamble, preamble, 0.08);
        self.cached[sender] = Some(ffe);
        (ffe, spent)
    }
}

/// Generate a pseudo-random PAM-4 symbol sequence.
pub fn random_symbols<R: Rng + ?Sized>(rng: &mut R, n: usize) -> Vec<f64> {
    (0..n).map(|_| PAM4[rng.gen_range(0..4usize)]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn slicer_picks_nearest_level() {
        assert_eq!(slice_pam4(0.9), 1.0);
        assert_eq!(slice_pam4(0.2), 1.0 / 3.0);
        assert_eq!(slice_pam4(-0.4), -1.0 / 3.0);
        assert_eq!(slice_pam4(-2.0), -1.0);
    }

    #[test]
    fn equalizer_opens_a_closed_eye() {
        let mut rng = SmallRng::seed_from_u64(1);
        let ch = Channel {
            taps: {
                let mut t = [0.0; TAPS];
                t[TAPS / 2] = 1.0;
                t[TAPS / 2 + 1] = 0.35; // heavy post-cursor ISI
                t
            },
            noise: 0.01,
        };
        let tx = random_symbols(&mut rng, 4000);
        let rx = ch.transmit(&tx, &mut rng);
        // Unequalized: slicing raw samples gives many errors.
        let raw_errs = tx
            .iter()
            .zip(&rx)
            .filter(|(t, r)| (slice_pam4(**r) - **t).abs() > 1e-9)
            .count() as f64
            / tx.len() as f64;
        assert!(raw_errs > 0.02, "channel too easy: {raw_errs}");
        // Equalized: train on the first half, evaluate on the second.
        let mut ffe = Ffe::default();
        ffe.train(&rx[..2000], &tx[..2000], 0.05);
        let ser = ffe.evaluate(&rx[2000..], &tx[2000..]);
        assert!(
            ser < raw_errs / 4.0,
            "FFE did not help: {ser} vs {raw_errs}"
        );
    }

    #[test]
    fn cached_taps_converge_much_faster() {
        // The §6 claim in miniature: warm training from cached taps takes
        // far fewer preamble symbols than cold training.
        let mut rng = SmallRng::seed_from_u64(2);
        let ch = Channel::random(&mut rng);
        let mut cache = EqualizerCache::new(4);
        let preamble = random_symbols(&mut rng, 600);
        let rx = ch.transmit(&preamble, &mut rng);
        let (_, cold) = cache.on_burst(2, &rx, &preamble);
        // Second burst from the same sender, same channel.
        let preamble2 = random_symbols(&mut rng, 600);
        let rx2 = ch.transmit(&preamble2, &mut rng);
        let (_, warm) = cache.on_burst(2, &rx2, &preamble2);
        assert!(
            warm <= cold,
            "warm training ({warm} symbols) not faster than cold ({cold})"
        );
        assert_eq!(cache.cold_trainings, 1);
        assert_eq!(cache.warm_trainings, 1);
    }

    #[test]
    fn caches_are_per_sender() {
        let mut rng = SmallRng::seed_from_u64(3);
        let ch = Channel::random(&mut rng);
        let mut cache = EqualizerCache::new(4);
        let p = random_symbols(&mut rng, 200);
        let rx = ch.transmit(&p, &mut rng);
        cache.on_burst(0, &rx, &p);
        cache.on_burst(1, &rx, &p);
        assert_eq!(cache.cold_trainings, 2);
    }

    #[test]
    fn clean_channel_needs_no_adaptation() {
        let mut rng = SmallRng::seed_from_u64(4);
        let ch = Channel {
            taps: {
                let mut t = [0.0; TAPS];
                t[TAPS / 2] = 1.0;
                t
            },
            noise: 0.005,
        };
        let tx = random_symbols(&mut rng, 1000);
        let rx = ch.transmit(&tx, &mut rng);
        let ffe = Ffe::default();
        assert!(ffe.evaluate(&rx, &tx) < 0.01);
    }
}
