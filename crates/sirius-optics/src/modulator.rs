//! The Mach-Zehnder modulator (§6: "the FPGA was also connected to an
//! external Mach-Zehnder modulator, operating at 25 Gbps using
//! non-return-to-zero coding").
//!
//! An MZM encodes data onto the (gated, unmodulated) light from the
//! wavelength selector. Its transfer function is `cos^2` in the drive
//! voltage; what the link budget cares about is its insertion loss, its
//! modulation loss (biasing at quadrature costs 3 dB for NRZ), and its
//! finite extinction ratio, which closes the eye and costs receiver
//! power — the "modulator losses" inside the paper's 7 dB bucket.

/// A Mach-Zehnder modulator model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mzm {
    /// Passive insertion loss, dB.
    pub insertion_loss_db: f64,
    /// Half-wave voltage (drive swing for full extinction), V.
    pub v_pi: f64,
    /// Actual peak-to-peak drive swing, V.
    pub drive_vpp: f64,
}

impl Mzm {
    /// A short-reach LiNbO3/InP MZM like the prototype's.
    pub fn paper() -> Mzm {
        Mzm {
            insertion_loss_db: 2.5,
            v_pi: 3.5,
            drive_vpp: 2.8, // realistic CMOS driver: under-driven
        }
    }

    /// Normalized optical transmission at drive voltage `v` (biased at
    /// quadrature): `0.5 * (1 + sin(pi * v / v_pi))`.
    pub fn transmission(&self, v: f64) -> f64 {
        0.5 * (1.0 + (std::f64::consts::PI * v / self.v_pi).sin())
    }

    /// Transmission at the one/zero rails for the configured swing.
    pub fn rails(&self) -> (f64, f64) {
        let half = self.drive_vpp / 2.0;
        (self.transmission(half), self.transmission(-half))
    }

    /// Extinction ratio, dB: rail-one power over rail-zero power.
    pub fn extinction_ratio_db(&self) -> f64 {
        let (one, zero) = self.rails();
        10.0 * (one / zero.max(1e-12)).log10()
    }

    /// Modulation loss, dB: average output power relative to the input
    /// (quadrature bias + finite swing means the average sits well below
    /// the peak).
    pub fn modulation_loss_db(&self) -> f64 {
        let (one, zero) = self.rails();
        let avg = 0.5 * (one + zero);
        -10.0 * avg.log10()
    }

    /// Total optical loss through the modulator, dB.
    pub fn total_loss_db(&self) -> f64 {
        self.insertion_loss_db + self.modulation_loss_db()
    }

    /// Receiver power penalty from finite extinction ratio, dB:
    /// `10*log10((ER+1)/(ER-1))` (classic OOK formula).
    pub fn extinction_penalty_db(&self) -> f64 {
        let er = 10f64.powf(self.extinction_ratio_db() / 10.0);
        10.0 * ((er + 1.0) / (er - 1.0)).log10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quadrature_bias_is_half_power() {
        let m = Mzm::paper();
        assert!((m.transmission(0.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn full_swing_gives_full_extinction() {
        let mut m = Mzm::paper();
        m.drive_vpp = m.v_pi; // rails at +-v_pi/2
        let (one, zero) = m.rails();
        assert!(one > 0.999);
        assert!(zero < 1e-3);
        assert!(m.extinction_ratio_db() > 25.0);
    }

    #[test]
    fn paper_mzm_fits_the_7db_bucket() {
        // §4.5 budgets 7 dB for "fiber coupling and modulator losses";
        // the modulator's share (insertion + modulation) must fit inside
        // it with room for ~2 dB of coupling.
        let m = Mzm::paper();
        let loss = m.total_loss_db();
        assert!(
            loss > 4.0 && loss < 6.0,
            "modulator loss {loss} dB leaves no room for ~2 dB of coupling"
        );
    }

    #[test]
    fn underdrive_costs_extinction_and_penalty() {
        let full = Mzm {
            drive_vpp: 3.5,
            ..Mzm::paper()
        };
        let under = Mzm {
            drive_vpp: 2.0,
            ..Mzm::paper()
        };
        assert!(under.extinction_ratio_db() < full.extinction_ratio_db());
        assert!(under.extinction_penalty_db() > full.extinction_penalty_db());
        // Typical short-reach numbers: ER 8-14 dB, penalty under 2 dB.
        let er = Mzm::paper().extinction_ratio_db();
        assert!((6.0..20.0).contains(&er), "ER = {er} dB");
        assert!(Mzm::paper().extinction_penalty_db() < 2.5);
    }

    #[test]
    fn transmission_is_bounded() {
        let m = Mzm::paper();
        for k in -20..=20 {
            let t = m.transmission(k as f64 * 0.25);
            assert!((0.0..=1.0).contains(&t));
        }
    }
}
