//! Offline stand-in for the subset of the `criterion` API this workspace
//! uses: [`Criterion::bench_function`], [`Bencher::iter`], [`black_box`],
//! and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! It is a real (if minimal) benchmark runner, not a no-op: each bench is
//! warmed up, then timed over `sample_size` samples with an
//! auto-calibrated per-sample iteration count targeting
//! `measurement_time / sample_size` per sample, and the min / median /
//! mean per-iteration times are printed. There is no statistical
//! regression analysis, plotting, or baseline store.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark runner configuration + driver.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n >= 2);
        self.sample_size = n;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.warm_up_time = d;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement_time = d;
        self
    }

    /// Run one benchmark: `f` receives a [`Bencher`] and must call
    /// [`Bencher::iter`].
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        // Warm-up: run single iterations until the warm-up budget is spent,
        // measuring the rough per-iteration cost as we go.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        while warm_start.elapsed() < self.warm_up_time {
            f(&mut b);
            warm_iters += b.iters;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;

        // Calibrate iterations per sample so that samples fill the
        // measurement budget.
        let per_sample = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let iters = ((per_sample / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000_000);

        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            samples.push(b.elapsed.as_secs_f64() / iters as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let min = samples[0];
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        println!(
            "{name:<40} min {:>12}  median {:>12}  mean {:>12}  ({} samples x {} iters)",
            fmt_time(min),
            fmt_time(median),
            fmt_time(mean),
            self.sample_size,
            iters,
        );
        self
    }

    pub fn final_summary(&self) {}
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} us", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.2} s")
    }
}

/// Passed to the bench closure; times the supplied routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `f` over this sample's iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// `criterion_group!(name, target...)` or the
/// `name = ...; config = ...; targets = ...` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Entry point running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` executes bench targets with `--test`; benches
            // have nothing to verify beyond compiling, so skip the timed
            // runs there.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $($group();)+
        }
    };
}
