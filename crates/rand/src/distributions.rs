//! Standard and uniform-range sampling.

use crate::RngCore;
use std::ops::{Range, RangeInclusive};

/// A distribution over values of `T`.
pub trait Distribution<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution of a type: `[0, 1)` for floats, the full
/// range for integers, a fair coin for `bool`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 high bits -> uniform dyadic rationals in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Distribution<u128> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u128 {
        (rng.next_u64() as u128) << 64 | rng.next_u64() as u128
    }
}

/// A range that can be sampled from (`a..b`, `a..=b`).
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Multiply-shift bounded sampling: maps a 64-bit word onto `[0, span)`.
/// Bias is at most `span / 2^64` — immaterial for simulation use.
#[inline]
fn bounded(word: u64, span: u64) -> u64 {
    ((word as u128 * span as u128) >> 64) as u64
}

macro_rules! range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + bounded(rng.next_u64(), span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64 + 1; // 0 means the full 2^64 span
                if span == 0 {
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo + bounded(rng.next_u64(), span) as $t
            }
        }
    )*};
}
range_uint!(u8, u16, u32, u64, usize);

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(bounded(rng.next_u64(), span) as i64) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64 + 1;
                if span == 0 {
                    return (lo as i64).wrapping_add(rng.next_u64() as i64) as $t;
                }
                (lo as i64).wrapping_add(bounded(rng.next_u64(), span) as i64) as $t
            }
        }
    )*};
}
range_int!(i8, i16, i32, i64, isize);

macro_rules! range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit: f64 = Standard.sample(rng);
                self.start + (self.end - self.start) * unit as $t
            }
        }
    )*};
}
range_float!(f32, f64);

/// Uniform distribution over a half-open range, mirroring
/// `rand::distributions::Uniform`.
#[derive(Debug, Clone)]
pub struct Uniform<T> {
    range: Range<T>,
}

impl<T: Copy> Uniform<T> {
    pub fn new(low: T, high: T) -> Uniform<T> {
        Uniform { range: low..high }
    }
}

impl<T: Copy> Distribution<T> for Uniform<T>
where
    Range<T>: SampleRange<T>,
{
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
        self.range.clone().sample_single(rng)
    }
}
