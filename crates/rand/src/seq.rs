//! Slice helpers mirroring `rand::seq::SliceRandom`.

use crate::distributions::SampleRange;
use crate::RngCore;

pub trait SliceRandom {
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly random element, `None` if empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (0..=i).sample_single(rng);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[(0..self.len()).sample_single(rng)])
        }
    }
}
