//! Generators. Only [`SmallRng`] is provided: a xoshiro256++ generator,
//! the same family upstream `rand`'s `small_rng` feature uses on 64-bit
//! platforms.

use crate::{RngCore, SeedableRng};

/// SplitMix64 step (public-domain constants, Vigna): used to expand a
/// 64-bit seed into full generator state, mirroring upstream
/// `SeedableRng::seed_from_u64`.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A small, fast, deterministic generator (xoshiro256++).
#[derive(Debug, Clone)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> SmallRng {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = splitmix64(&mut sm);
        }
        // All-zero state is the one degenerate case; SplitMix64 cannot
        // produce it from any seed, but keep the guard explicit.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        SmallRng { s }
    }
}

impl RngCore for SmallRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}
