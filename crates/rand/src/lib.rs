//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the tiny slice of `rand` it actually needs: the [`Rng`] /
//! [`RngCore`] / [`SeedableRng`] traits, [`rngs::SmallRng`] (implemented
//! as xoshiro256++, seeded through SplitMix64 exactly like the upstream
//! `seed_from_u64`), uniform range sampling, and
//! [`seq::SliceRandom`] shuffling.
//!
//! Everything here is deterministic: the same seed always yields the same
//! stream on every platform, which the simulator's run-digest determinism
//! guarantee (see `sirius-sim`) depends on. The generator constants are
//! the published xoshiro256++ / SplitMix64 ones; statistical quality is
//! more than sufficient for simulation workloads.
//!
//! Note the streams are *not* bit-compatible with the real `rand` crate;
//! swapping the real crate back in changes sampled workloads (but not any
//! correctness property — tests in this workspace assert distributional
//! facts, not golden values).

pub mod distributions;
pub mod rngs;
pub mod seq;

use distributions::{Distribution, SampleRange, Standard};

/// Core trait: a source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let w = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Ergonomic sampling methods, mirroring `rand::Rng`.
///
/// Unlike upstream, the methods here do not require `Self: Sized`, so they
/// are directly callable through `R: Rng + ?Sized` bounds.
pub trait Rng: RngCore {
    /// Sample a value from the standard distribution of `T`
    /// (`f64`/`f32` in `[0, 1)`, full range for integers, fair `bool`).
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Sample uniformly from a range (`a..b` or `a..=b`).
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Deterministically build a generator from a 64-bit seed
    /// (SplitMix64-expanded, as in upstream `rand`).
    fn seed_from_u64(state: u64) -> Self;
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_bounds_exclusive_and_inclusive() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = rng.gen_range(3u32..7);
            assert!((3..7).contains(&x));
            let y = rng.gen_range(0u8..=255);
            let _ = y; // full-width inclusive range must not overflow
            let z = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&z));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut counts = [0u32; 10];
        let n = 100_000;
        for _ in 0..n {
            counts[rng.gen_range(0usize..10)] += 1;
        }
        let expect = n as f64 / 10.0;
        for &c in &counts {
            assert!((c as f64 - expect).abs() < expect * 0.08, "{counts:?}");
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "shuffle left the slice sorted (astronomically unlikely)"
        );
    }

    #[test]
    fn choose_none_on_empty() {
        let mut rng = SmallRng::seed_from_u64(5);
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        assert_eq!([7u32].choose(&mut rng), Some(&7));
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = SmallRng::seed_from_u64(6);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((hits as f64 - 30_000.0).abs() < 1_500.0, "hits {hits}");
    }
}
