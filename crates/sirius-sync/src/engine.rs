//! The backend-agnostic sync protocol core (§4.4).
//!
//! One `SyncEngine` is one node's whole protocol state: its disciplined
//! clock (behind [`TimeProvider`]), its PLL, and its view of the rotating
//! leader schedule. The engine is deliberately split into two halves —
//! [`SyncEngine::lead`] produces the epoch's beacon, and
//! [`SyncEngine::on_beacon`] validates and applies one — so that both
//! the lockstep simulation harness and the free-running UDP node binary
//! drive the *same* code: the simulation calls [`SyncEngine::step`] (the
//! strict per-epoch composition over a [`Transport`]), while the live
//! node wraps the same two halves in a wall-clock pacing loop that
//! tolerates scheduler jitter.

use crate::error::SyncError;
use crate::leader::LeaderSchedule;
use crate::pll::Pll;
use crate::proto::Beacon;
use crate::provider::TimeProvider;
use crate::transport::Transport;

/// What one engine did in one epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Step {
    /// This node led: its beacon was broadcast.
    Led(Beacon),
    /// This node followed: one PLL update was applied from the measured
    /// phase error (own phase − leader phase + correction), ps.
    Followed { measured_ps: f64 },
    /// No alive leader exists; the clock free-runs this epoch.
    Idle,
}

/// One node's protocol state over any clock/transport backend.
#[derive(Debug, Clone)]
pub struct SyncEngine<C: TimeProvider> {
    node: usize,
    pll: Pll,
    leaders: LeaderSchedule,
    clock: C,
    /// Newest epoch whose beacon was applied (replay/reorder guard).
    last_applied: Option<u64>,
}

impl<C: TimeProvider> SyncEngine<C> {
    pub fn new(node: usize, leaders: LeaderSchedule, pll: Pll, clock: C) -> SyncEngine<C> {
        SyncEngine {
            node,
            pll,
            leaders,
            clock,
            last_applied: None,
        }
    }

    pub fn node(&self) -> usize {
        self.node
    }
    pub fn clock(&self) -> &C {
        &self.clock
    }
    pub fn clock_mut(&mut self) -> &mut C {
        &mut self.clock
    }

    /// This engine's view of who leads `epoch` (pure function of the
    /// epoch and the alive set — no election traffic).
    pub fn leader_at(&self, epoch: u64) -> Option<usize> {
        self.leaders.leader_at(epoch)
    }

    pub fn is_leader(&self, epoch: u64) -> bool {
        self.leader_at(epoch) == Some(self.node)
    }

    /// Update the local alive-set view (from the failure plane in-sim;
    /// from silence detection live).
    pub fn mark_failed(&mut self, node: usize) {
        self.leaders.mark_failed(node);
    }

    /// Produce this epoch's beacon — `None` unless this node leads it.
    pub fn lead(&mut self, epoch: u64) -> Option<Beacon> {
        if !self.is_leader(epoch) {
            return None;
        }
        self.last_applied = Some(self.last_applied.unwrap_or(0).max(epoch));
        Some(Beacon {
            leader: self.node as u16,
            epoch,
            phase_ps: self.clock.phase_ps(),
        })
    }

    /// Validate one received beacon and apply one PLL update from it.
    /// `correction_ps` is the backend's measurement correction (detector
    /// noise in-sim, −propagation delay live); the measured error is
    /// computed as `(own_phase − beacon_phase) + correction` — the exact
    /// pre-seam expression shape, which the bit-identity tests pin.
    /// Returns the measured phase error, ps.
    pub fn on_beacon(&mut self, b: &Beacon, correction_ps: f64) -> Result<f64, SyncError> {
        let expected = self.leader_at(b.epoch);
        if expected != Some(b.leader as usize) {
            return Err(SyncError::WrongLeader {
                epoch: b.epoch,
                claimed: b.leader as usize,
                expected,
            });
        }
        if let Some(last) = self.last_applied {
            if b.epoch == last {
                return Err(SyncError::Duplicate { epoch: b.epoch });
            }
            if b.epoch < last {
                return Err(SyncError::Stale {
                    epoch: b.epoch,
                    newest: last,
                });
            }
        }
        let measured = self.clock.phase_ps() - b.phase_ps + correction_ps;
        let (dp, df) = self.pll.update(measured);
        self.clock.adjust_phase(dp);
        self.clock.adjust_frequency(df);
        self.last_applied = Some(b.epoch);
        Ok(measured)
    }

    /// One strict lockstep epoch over a transport: lead or follow.
    pub fn step<T: Transport>(&mut self, epoch: u64, t: &mut T) -> Result<Step, SyncError> {
        match self.leader_at(epoch) {
            None => Ok(Step::Idle),
            Some(l) if l == self.node => {
                let b = self.lead(epoch).expect("leader_at said we lead");
                t.broadcast(&b)?;
                Ok(Step::Led(b))
            }
            Some(l) => {
                let b = t.recv_beacon(epoch, l)?;
                let correction = t.correction_ps();
                let measured = self.on_beacon(&b, correction)?;
                Ok(Step::Followed {
                    measured_ps: measured,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::OscillatorSpec;
    use crate::provider::{SharedRng, SimTime};
    use crate::transport::SimTransport;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn cluster(n: usize, seed: u64) -> (Vec<SyncEngine<SimTime>>, SimTransport) {
        let rng: SharedRng = Rc::new(RefCell::new(SmallRng::seed_from_u64(seed)));
        let engines = (0..n)
            .map(|i| {
                SyncEngine::new(
                    i,
                    LeaderSchedule::new(n, 4),
                    Pll::paper_tuning(),
                    SimTime::new(rng.clone(), OscillatorSpec::commodity_xo()),
                )
            })
            .collect();
        (engines, SimTransport::new(0.2, rng))
    }

    #[test]
    fn engines_over_sim_transport_lock() {
        let (mut engines, mut t) = cluster(4, 7);
        for e in 0..30_000u64 {
            for en in engines.iter_mut() {
                en.clock_mut().advance(1.6);
            }
            let lead = engines[0].leader_at(e).unwrap();
            engines[lead].step(e, &mut t).unwrap();
            for (i, en) in engines.iter_mut().enumerate() {
                if i != lead {
                    en.step(e, &mut t).unwrap();
                }
            }
        }
        let phases: Vec<f64> = engines.iter().map(|e| e.clock().phase_ps()).collect();
        let spread = phases.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - phases.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(spread < 10.0, "cluster spread {spread} ps");
    }

    #[test]
    fn on_beacon_rejects_wrong_leader() {
        let (mut engines, _) = cluster(4, 1);
        // Epoch 0 belongs to node 0; a beacon claiming node 2 is forged.
        let forged = Beacon {
            leader: 2,
            epoch: 0,
            phase_ps: 0.0,
        };
        assert_eq!(
            engines[1].on_beacon(&forged, 0.0),
            Err(SyncError::WrongLeader {
                epoch: 0,
                claimed: 2,
                expected: Some(0),
            })
        );
    }

    #[test]
    fn on_beacon_rejects_replay_and_reorder() {
        let (mut engines, _) = cluster(2, 2);
        let b4 = Beacon {
            leader: 1,
            epoch: 4,
            phase_ps: 0.0,
        };
        assert!(engines[0].on_beacon(&b4, 0.0).is_ok());
        assert_eq!(
            engines[0].on_beacon(&b4, 0.0),
            Err(SyncError::Duplicate { epoch: 4 })
        );
        let b0 = Beacon {
            leader: 0,
            epoch: 0,
            phase_ps: 0.0,
        };
        // Node 0 leads epoch 0 itself, so hand the stale beacon to a
        // fresh follower view: epoch 0 < newest applied 4.
        assert_eq!(
            engines[0].on_beacon(&b0, 0.0),
            Err(SyncError::Stale {
                epoch: 0,
                newest: 4
            })
        );
    }

    #[test]
    fn leader_role_follows_rotation_and_failures() {
        let (mut engines, mut t) = cluster(3, 3);
        assert!(matches!(engines[0].step(0, &mut t), Ok(Step::Led(_))));
        for en in engines.iter_mut() {
            en.mark_failed(1);
        }
        // Node 1's turn (epochs 4..8) falls to node 2.
        assert!(engines[2].is_leader(4));
        assert!(!engines[1].is_leader(4));
    }

    #[test]
    fn all_dead_is_idle_not_panic() {
        let (mut engines, mut t) = cluster(2, 4);
        for en in engines.iter_mut() {
            en.mark_failed(0);
            en.mark_failed(1);
        }
        assert_eq!(engines[0].step(0, &mut t), Ok(Step::Idle));
    }
}
