//! One live sync node: the same [`SyncEngine`] the simulator drives, as
//! an OS process over UDP/loopback.
//!
//! N of these are spawned by the `live_sync` bench experiment (or by
//! hand — see README). Startup is a Hello/Go barrier through node 0,
//! followed by a §A.2-style RTT calibration window (DelayRequest/
//! DelayResponse echoes feeding a [`DelayEstimator`]; the measurement
//! correction is −one-way-delay). The epoch loop then free-runs on wall
//! time: whoever the pure-function [`LeaderSchedule`] elects broadcasts
//! a beacon once per epoch, everyone else applies PLL updates via
//! [`SyncEngine::on_beacon`] — the engine half shared verbatim with the
//! lockstep simulation, wrapped here in a pacing loop that tolerates
//! scheduler jitter instead of assuming lockstep.
//!
//! The report file is one `key=value` line (parsed by `live_sync`):
//! applied/error counters, the delay estimate, and the post-warmup
//! |measured offset| percentiles.

use sirius_sync::delay::DelayEstimator;
use sirius_sync::engine::SyncEngine;
use sirius_sync::error::SyncError;
use sirius_sync::leader::LeaderSchedule;
use sirius_sync::pll::Pll;
use sirius_sync::proto::SyncMsg;
use sirius_sync::provider::OsTime;
use sirius_sync::transport::{Transport, UdpTransport};
use std::time::{Duration, Instant};

#[derive(Debug, Clone)]
struct Args {
    node: usize,
    nodes: usize,
    epochs: u64,
    epoch_us: u64,
    port_base: u16,
    rotation: u64,
    calib_ms: u64,
    report: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        node: 0,
        nodes: 2,
        epochs: 1000,
        epoch_us: 2000,
        port_base: 47800,
        rotation: 4,
        calib_ms: 200,
        report: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].as_str();
        let val = argv
            .get(i + 1)
            .ok_or_else(|| format!("{flag} needs a value"))?;
        match flag {
            "--node" => args.node = val.parse().map_err(|e| format!("--node: {e}"))?,
            "--nodes" => args.nodes = val.parse().map_err(|e| format!("--nodes: {e}"))?,
            "--epochs" => args.epochs = val.parse().map_err(|e| format!("--epochs: {e}"))?,
            "--epoch-us" => args.epoch_us = val.parse().map_err(|e| format!("--epoch-us: {e}"))?,
            "--port-base" => {
                args.port_base = val.parse().map_err(|e| format!("--port-base: {e}"))?
            }
            "--rotation" => args.rotation = val.parse().map_err(|e| format!("--rotation: {e}"))?,
            "--calib-ms" => args.calib_ms = val.parse().map_err(|e| format!("--calib-ms: {e}"))?,
            "--report" => args.report = Some(val.clone()),
            other => return Err(format!("unknown flag {other}")),
        }
        i += 2;
    }
    if args.node >= args.nodes || args.nodes < 2 {
        return Err(format!(
            "--node {} out of range for --nodes {}",
            args.node, args.nodes
        ));
    }
    if args.epoch_us == 0 || args.epochs == 0 || args.rotation == 0 {
        return Err("--epochs/--epoch-us/--rotation must be positive".into());
    }
    Ok(args)
}

/// Hello/Go barrier through node 0. Returns the epoch-clock origin `t0`.
/// Followers also accept any beacon as an implicit Go (the cluster
/// evidently started), back-dating `t0` by the beacon's epoch.
fn barrier(t: &mut UdpTransport, a: &Args) -> Result<Instant, String> {
    let deadline = Instant::now() + Duration::from_secs(10);
    t.set_timeout(Duration::from_millis(50));
    if a.node == 0 {
        let mut seen = vec![false; a.nodes];
        seen[0] = true;
        while seen.iter().any(|s| !s) {
            if Instant::now() > deadline {
                let missing: Vec<usize> = (0..a.nodes).filter(|&i| !seen[i]).collect();
                return Err(format!("barrier timeout; missing Hello from {missing:?}"));
            }
            if let Ok(SyncMsg::Hello { node }) = t.poll() {
                if (node as usize) < a.nodes {
                    seen[node as usize] = true;
                }
            }
        }
        // Everyone is listening; release them. Three rounds survive the
        // odd dropped datagram on a loaded box.
        for _ in 0..3 {
            t.send_to_all(&SyncMsg::Go).map_err(|e| e.to_string())?;
        }
        Ok(Instant::now())
    } else {
        let mut next_hello = Instant::now();
        loop {
            if Instant::now() > deadline {
                return Err("barrier timeout waiting for Go".into());
            }
            if Instant::now() >= next_hello {
                t.send_to(0, &SyncMsg::Hello { node: t.node() })
                    .map_err(|e| e.to_string())?;
                next_hello = Instant::now() + Duration::from_millis(50);
            }
            match t.poll() {
                Ok(SyncMsg::Go) => return Ok(Instant::now()),
                Ok(SyncMsg::Beacon(b)) => {
                    return Ok(
                        Instant::now() - Duration::from_micros(b.epoch.saturating_mul(a.epoch_us))
                    );
                }
                _ => {}
            }
        }
    }
}

/// §A.2 over processes: ping the successor for `calib_ms`, echo every
/// probe we see, and average the RTTs. Returns the one-way estimate, ps.
fn calibrate(t: &mut UdpTransport, a: &Args) -> f64 {
    let succ = (a.node + 1) % a.nodes;
    let deadline = Instant::now() + Duration::from_millis(a.calib_ms);
    let mut est = DelayEstimator::new();
    let mut nonce = 0u64;
    let mut outstanding: Option<(u64, Instant)> = None;
    let mut next_ping = Instant::now();
    t.set_timeout(Duration::from_millis(2));
    while Instant::now() < deadline {
        if Instant::now() >= next_ping {
            nonce += 1;
            let _ = t.send_to(
                succ,
                &SyncMsg::DelayRequest {
                    node: t.node(),
                    nonce,
                },
            );
            outstanding = Some((nonce, Instant::now()));
            next_ping = Instant::now() + Duration::from_millis(5);
        }
        match t.poll() {
            Ok(SyncMsg::DelayRequest { node, nonce }) => {
                let _ = t.send_to(
                    node as usize,
                    &SyncMsg::DelayResponse {
                        node: t.node(),
                        nonce,
                    },
                );
            }
            Ok(SyncMsg::DelayResponse { nonce: n, .. }) => {
                if let Some((want, sent)) = outstanding {
                    if n == want {
                        est.record_rtt_ps(sent.elapsed().as_nanos() as f64 * 1000.0);
                        outstanding = None;
                    }
                }
            }
            _ => {}
        }
    }
    est.estimate().map(|d| d.as_ps() as f64).unwrap_or(0.0)
}

#[derive(Debug, Default)]
struct Counters {
    applied: u64,
    led: u64,
    duplicates: u64,
    stale: u64,
    wrong_leader: u64,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn main() {
    let a = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("sirius-sync-node: {e}");
            std::process::exit(2);
        }
    };
    let mut t = match UdpTransport::bind(a.node, a.nodes, a.port_base) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("sirius-sync-node {}: bind failed: {e}", a.node);
            std::process::exit(2);
        }
    };
    let t0 = match barrier(&mut t, &a) {
        Ok(t0) => t0,
        Err(e) => {
            eprintln!("sirius-sync-node {}: {e}", a.node);
            std::process::exit(2);
        }
    };
    let mut delay_est_ps = if a.calib_ms > 0 {
        calibrate(&mut t, &a)
    } else {
        0.0
    };
    t.set_correction_ps(-delay_est_ps);

    let mut engine = SyncEngine::new(
        a.node,
        LeaderSchedule::new(a.nodes, a.rotation),
        Pll::paper_tuning(),
        OsTime::new(),
    );
    let warmup = a.epochs / 5;
    let mut counters = Counters::default();
    let mut samples: Vec<f64> = Vec::new();
    let mut last_led: Option<u64> = None;
    // Continuous §A.2 calibration: the pre-loop RTT measured socket
    // latency under a tight poll loop, but delivery latency *inside* the
    // paced epoch loop also includes both ends' wakeup sleep. Keep
    // pinging the successor and fold the halved RTT into the correction,
    // so the measurement bias the PLL sees tracks the loop's real
    // delivery latency instead of railing the integral term.
    let succ = (a.node + 1) % a.nodes;
    let mut live_est = DelayEstimator::new();
    let mut live_nonce = 1u64 << 32; // distinct from the pre-loop nonces
    let mut outstanding: Option<(u64, Instant)> = None;
    let mut next_ping = Instant::now();
    // The epoch loop paces itself with sleeps (sub-ms accurate) and
    // drains the socket non-blockingly: kernel receive-timeout
    // granularity is several ms, which would make a blocking loop skip
    // entire epochs.
    if let Err(e) = t.set_nonblocking(true) {
        eprintln!("sirius-sync-node {}: set_nonblocking: {e}", a.node);
        std::process::exit(2);
    }

    loop {
        let elapsed_us = t0.elapsed().as_micros() as u64;
        let epoch = elapsed_us / a.epoch_us;
        if epoch >= a.epochs {
            break;
        }
        if engine.is_leader(epoch) && last_led != Some(epoch) {
            if let Some(b) = engine.lead(epoch) {
                let _ = t.broadcast(&b);
                counters.led += 1;
                last_led = Some(epoch);
            }
        }
        if Instant::now() >= next_ping {
            live_nonce += 1;
            let _ = t.send_to(
                succ,
                &SyncMsg::DelayRequest {
                    node: t.node(),
                    nonce: live_nonce,
                },
            );
            outstanding = Some((live_nonce, Instant::now()));
            next_ping = Instant::now() + Duration::from_millis(50);
        }
        // Drain whatever arrived; apply any fresh beacon. The engine's
        // replay/stale guards do the per-message policing.
        loop {
            match t.try_poll() {
                Ok(Some(SyncMsg::Beacon(b))) => {
                    let correction = t.correction_ps();
                    match engine.on_beacon(&b, correction) {
                        Ok(measured) => {
                            counters.applied += 1;
                            if b.epoch >= warmup {
                                samples.push(measured.abs());
                            }
                        }
                        Err(SyncError::Duplicate { .. }) => counters.duplicates += 1,
                        Err(SyncError::Stale { .. }) => counters.stale += 1,
                        Err(SyncError::WrongLeader { .. }) => counters.wrong_leader += 1,
                        Err(_) => {}
                    }
                }
                Ok(Some(SyncMsg::DelayRequest { node, nonce })) => {
                    let _ = t.send_to(
                        node as usize,
                        &SyncMsg::DelayResponse {
                            node: t.node(),
                            nonce,
                        },
                    );
                }
                Ok(Some(SyncMsg::Hello { node })) => {
                    // A straggler still in the barrier: re-release it.
                    if a.node == 0 {
                        let _ = t.send_to(node as usize, &SyncMsg::Go);
                    }
                }
                Ok(Some(SyncMsg::DelayResponse { nonce, .. })) => {
                    if let Some((want, sent)) = outstanding {
                        if nonce == want {
                            live_est.record_rtt_ps(sent.elapsed().as_nanos() as f64 * 1000.0);
                            outstanding = None;
                            if live_est.samples() >= 4 {
                                delay_est_ps =
                                    live_est.estimate().map(|d| d.as_ps() as f64).unwrap_or(0.0);
                                t.set_correction_ps(-delay_est_ps);
                            }
                        }
                    }
                }
                Ok(Some(_)) => {}
                Ok(None) | Err(_) => break,
            }
        }
        // Sleep to the next epoch boundary, capped so incoming beacons
        // are still served a few times per epoch.
        let now_us = t0.elapsed().as_micros() as u64;
        let next_boundary_us = (epoch + 1) * a.epoch_us;
        let sleep_us = next_boundary_us.saturating_sub(now_us).clamp(20, 100);
        std::thread::sleep(Duration::from_micros(sleep_us));
    }

    samples.sort_by(|x, y| x.partial_cmp(y).expect("samples are finite"));
    let report = format!(
        "node={} applied={} led={} duplicates={} stale={} wrong_leader={} \
         timeouts={} malformed={} delay_est_ps={:.0} samples={} \
         p50_ps={:.0} p99_ps={:.0} max_ps={:.0} freq_ppm={:.3}\n",
        a.node,
        counters.applied,
        counters.led,
        counters.duplicates,
        counters.stale,
        counters.wrong_leader,
        t.stats.timeouts,
        t.stats.malformed,
        delay_est_ps,
        samples.len(),
        percentile(&samples, 0.50),
        percentile(&samples, 0.99),
        samples.last().copied().unwrap_or(0.0),
        engine.clock().freq_ppm(),
    );
    print!("{report}");
    if let Some(path) = &a.report {
        if let Err(e) = std::fs::write(path, &report) {
            eprintln!("sirius-sync-node {}: writing {path}: {e}", a.node);
            std::process::exit(2);
        }
    }
}
