//! # sirius-sync
//!
//! Time synchronization for Sirius (§4.4, §A.2): drifting oscillator
//! models ([`clock`]), the PLL/DLL frequency-recovery loop ([`pll`]), the
//! rotating-leader protocol ([`leader`]), propagation-delay calibration
//! with per-node epoch-start offsets ([`delay`]), and the network-wide
//! simulation reproducing the paper's ±5 ps / 24 h measurement
//! ([`sync_sim`]).
//!
//! The protocol core is backend-agnostic: [`engine::SyncEngine`] runs
//! over any clock implementing [`provider::TimeProvider`] and any
//! network implementing [`transport::Transport`], with failures typed by
//! [`error::SyncError`] and messages framed by [`proto`]. The simulation
//! instantiates it over [`provider::SimTime`] +
//! [`transport::SimTransport`]; the `sirius-sync-node` binary runs the
//! *same* engine as one OS process per node over
//! [`transport::UdpTransport`] and a disciplined monotonic clock
//! ([`provider::OsTime`]).
//!
//! The design leans on two properties of the Sirius core: gratings are
//! passive (no retiming, so the sender's clock survives to the receiver)
//! and the cyclic schedule reconnects every node pair every epoch (so a
//! reference is always at most an epoch old, and a dead leader is replaced
//! within microseconds).

pub mod clock;
pub mod delay;
pub mod engine;
pub mod error;
pub mod leader;
pub mod pll;
pub mod proto;
pub mod provider;
pub mod sync_sim;
pub mod transport;

pub use clock::{LocalClock, OscillatorSpec};
pub use delay::{arrival_misalignment, epoch_start_offsets, DelayEstimator};
pub use engine::{Step, SyncEngine};
pub use error::SyncError;
pub use leader::LeaderSchedule;
pub use pll::Pll;
pub use proto::{Beacon, SyncMsg};
pub use provider::{OsTime, SimTime, TimeProvider};
pub use sync_sim::{run as run_sync, Disruption, SyncResult, SyncSimConfig};
pub use transport::{SimTransport, Transport, TransportStats, UdpTransport};
