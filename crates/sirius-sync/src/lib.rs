//! # sirius-sync
//!
//! Time synchronization for Sirius (§4.4, §A.2): drifting oscillator
//! models ([`clock`]), the PLL/DLL frequency-recovery loop ([`pll`]), the
//! rotating-leader protocol ([`leader`]), propagation-delay calibration
//! with per-node epoch-start offsets ([`delay`]), and the network-wide
//! simulation reproducing the paper's ±5 ps / 24 h measurement
//! ([`sync_sim`]).
//!
//! The design leans on two properties of the Sirius core: gratings are
//! passive (no retiming, so the sender's clock survives to the receiver)
//! and the cyclic schedule reconnects every node pair every epoch (so a
//! reference is always at most an epoch old, and a dead leader is replaced
//! within microseconds).

pub mod clock;
pub mod delay;
pub mod leader;
pub mod pll;
pub mod sync_sim;

pub use clock::{LocalClock, OscillatorSpec};
pub use delay::{arrival_misalignment, epoch_start_offsets, DelayEstimator};
pub use leader::LeaderSchedule;
pub use pll::Pll;
pub use sync_sim::{run as run_sync, SyncResult, SyncSimConfig};
