//! Propagation-delay estimation and epoch-start offsets (§A.2).
//!
//! For cells from different nodes to arrive at the grating aligned to the
//! same slot boundary, each node must start its epoch *early* by exactly
//! its own fiber delay to the grating: "the longer this distance is, the
//! sooner it will start so that the different distances are factored out
//! and the packets belonging to the same slot arrive at the AWGR at the
//! same time."
//!
//! The passive core makes measuring that distance easy: the cyclic
//! schedule contains a self-slot (wavelength 0 on the own-group column
//! routes a node's light back to itself), so a node can timestamp a
//! loopback burst and halve the round-trip. We model the measurement with
//! configurable timestamp noise and average over repeated epochs.

use rand::Rng;
use sirius_core::units::{Duration, FIBER_PS_PER_METER};

/// One node's calibration state.
#[derive(Debug, Clone)]
pub struct DelayEstimator {
    /// Accumulated round-trip samples, ps.
    sum_rtt_ps: f64,
    samples: u32,
}

impl Default for DelayEstimator {
    fn default() -> Self {
        DelayEstimator::new()
    }
}

impl DelayEstimator {
    pub fn new() -> DelayEstimator {
        DelayEstimator {
            sum_rtt_ps: 0.0,
            samples: 0,
        }
    }

    /// Record one loopback measurement: the true one-way delay plus
    /// symmetric timestamping noise.
    pub fn record<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        true_one_way: Duration,
        timestamp_noise_ps: f64,
    ) {
        let noise = crate::clock::gauss(rng) * timestamp_noise_ps;
        let rtt = 2.0 * true_one_way.as_ps() as f64 + noise;
        self.sum_rtt_ps += rtt;
        self.samples += 1;
    }

    /// Record one *measured* round-trip, ps — the live-transport flavor
    /// of [`DelayEstimator::record`]: a real RTT (e.g. a
    /// `DelayRequest`/`DelayResponse` echo over UDP) already contains
    /// its own timestamping noise, so nothing is synthesized.
    pub fn record_rtt_ps(&mut self, rtt_ps: f64) {
        self.sum_rtt_ps += rtt_ps;
        self.samples += 1;
    }

    /// Current estimate of the one-way delay.
    pub fn estimate(&self) -> Option<Duration> {
        if self.samples == 0 {
            return None;
        }
        Some(Duration::from_ps(
            (self.sum_rtt_ps / self.samples as f64 / 2.0)
                .round()
                .max(0.0) as u64,
        ))
    }

    pub fn samples(&self) -> u32 {
        self.samples
    }
}

/// Compute per-node epoch-start offsets from estimated delays: the node
/// with the longest fiber starts first (offset 0); everyone else starts
/// `max_delay - own_delay` later, so all first cells hit the grating
/// simultaneously.
pub fn epoch_start_offsets(delays: &[Duration]) -> Vec<Duration> {
    let max = delays.iter().copied().max().unwrap_or(Duration::ZERO);
    delays.iter().map(|&d| max - d).collect()
}

/// Residual per-node arrival error at the grating given true delays and
/// the offsets computed from (noisy) estimates, ps.
pub fn arrival_misalignment(true_delays: &[Duration], offsets: &[Duration]) -> Vec<i64> {
    // Arrival time of node i's slot-0 cell = offset_i + true_delay_i; the
    // misalignment is the deviation from the common (max) arrival target.
    let arrivals: Vec<i64> = true_delays
        .iter()
        .zip(offsets)
        .map(|(d, o)| (d.as_ps() + o.as_ps()) as i64)
        .collect();
    let target = *arrivals.iter().max().unwrap();
    arrivals.iter().map(|&a| a - target).collect()
}

/// Convenience: delay of `meters` of fiber.
pub fn fiber(meters: u64) -> Duration {
    Duration::from_ps(meters * FIBER_PS_PER_METER)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn noiseless_estimate_is_exact() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut est = DelayEstimator::new();
        est.record(&mut rng, fiber(137), 0.0);
        assert_eq!(est.estimate().unwrap(), fiber(137));
    }

    #[test]
    fn averaging_beats_timestamp_noise() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut est = DelayEstimator::new();
        let truth = fiber(420); // 2.1 us
        for _ in 0..1000 {
            est.record(&mut rng, truth, 50.0); // 50 ps timestamp noise
        }
        let err = est.estimate().unwrap().as_ps() as i64 - truth.as_ps() as i64;
        assert!(err.abs() < 5, "residual error {err} ps after averaging");
    }

    #[test]
    fn offsets_align_heterogeneous_fibers() {
        // Nodes at 10 m, 250 m and 500 m from the grating.
        let delays = vec![fiber(10), fiber(250), fiber(500)];
        let offsets = epoch_start_offsets(&delays);
        // Farthest node starts immediately; nearest waits the difference.
        assert_eq!(offsets[2], Duration::ZERO);
        assert_eq!(offsets[0], fiber(490));
        let mis = arrival_misalignment(&delays, &offsets);
        assert!(mis.iter().all(|&m| m == 0), "misalignment {mis:?}");
    }

    #[test]
    fn calibrated_network_aligns_within_guardband_budget() {
        // End-to-end: noisy measurements, offsets from estimates, residual
        // misalignment must be a negligible slice of the 10 ns guardband.
        let mut rng = SmallRng::seed_from_u64(3);
        let true_delays: Vec<Duration> = (0..64).map(|_| fiber(rng.gen_range(5..500))).collect();
        let estimates: Vec<Duration> = true_delays
            .iter()
            .map(|&d| {
                let mut est = DelayEstimator::new();
                for _ in 0..200 {
                    est.record(&mut rng, d, 50.0);
                }
                est.estimate().unwrap()
            })
            .collect();
        let offsets = epoch_start_offsets(&estimates);
        let mis = arrival_misalignment(&true_delays, &offsets);
        let worst = mis.iter().map(|m| m.abs()).max().unwrap();
        assert!(worst < 100, "worst misalignment {worst} ps");
    }

    #[test]
    fn no_samples_no_estimate() {
        assert!(DelayEstimator::new().estimate().is_none());
    }

    #[test]
    fn measured_rtts_average_like_synthesized_ones() {
        let mut est = DelayEstimator::new();
        // Three real 100 us RTTs with asymmetric jitter.
        for rtt in [1.0e8, 1.1e8, 0.9e8] {
            est.record_rtt_ps(rtt);
        }
        assert_eq!(est.samples(), 3);
        assert_eq!(est.estimate().unwrap(), Duration::from_ps(50_000_000));
    }
}
