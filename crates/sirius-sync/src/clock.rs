//! Drifting local oscillators (§4.4).
//!
//! Each node has a free-running oscillator with a frequency offset of a
//! few ppm (ordinary XO-grade parts — the paper stresses that "no atomic
//! clocks are necessary"), slow random-walk drift (temperature/aging), and
//! white phase jitter. Absolute time does not matter; what the network
//! needs is that all clocks *agree with each other*, which the rotating
//! -leader protocol provides.

use rand::Rng;

/// Parameters of a node oscillator.
#[derive(Debug, Clone, Copy)]
pub struct OscillatorSpec {
    /// Initial frequency offset drawn uniformly in +-this, ppm.
    pub init_offset_ppm: f64,
    /// Random-walk step of the frequency offset per update, ppm.
    pub drift_step_ppm: f64,
    /// White phase jitter per update, ps (1-sigma).
    pub jitter_ps: f64,
}

impl OscillatorSpec {
    /// A commodity crystal oscillator: +-20 ppm initial tolerance, slow
    /// drift, sub-ps cycle jitter.
    pub fn commodity_xo() -> OscillatorSpec {
        OscillatorSpec {
            init_offset_ppm: 20.0,
            drift_step_ppm: 1e-5,
            jitter_ps: 0.1,
        }
    }
}

/// A free-running local clock.
#[derive(Debug, Clone)]
pub struct LocalClock {
    /// Phase offset relative to ideal time, ps.
    pub phase_ps: f64,
    /// Frequency offset, ppm (1 ppm = 1 ps of phase per us of real time).
    pub offset_ppm: f64,
    spec: OscillatorSpec,
    /// If set, the oscillator misbehaves: offset jumps around (byzantine
    /// clock failure, §4.4).
    pub byzantine: bool,
}

impl LocalClock {
    pub fn new<R: Rng + ?Sized>(rng: &mut R, spec: OscillatorSpec) -> LocalClock {
        LocalClock {
            phase_ps: 0.0,
            offset_ppm: (rng.gen::<f64>() * 2.0 - 1.0) * spec.init_offset_ppm,
            spec,
            byzantine: false,
        }
    }

    /// Advance the clock by `dt_us` of ideal time: the phase accumulates
    /// the frequency offset plus jitter, and the offset random-walks.
    pub fn advance<R: Rng + ?Sized>(&mut self, rng: &mut R, dt_us: f64) {
        self.phase_ps += self.offset_ppm * dt_us;
        self.phase_ps += gauss(rng) * self.spec.jitter_ps;
        self.offset_ppm += gauss(rng) * self.spec.drift_step_ppm;
        if self.byzantine {
            // Erratic frequency excursions up to +-100 ppm.
            self.offset_ppm += gauss(rng) * 10.0;
            self.offset_ppm = self.offset_ppm.clamp(-100.0, 100.0);
        }
    }

    /// Apply a frequency correction (from the PLL), ppm.
    pub fn adjust_frequency(&mut self, delta_ppm: f64) {
        self.offset_ppm += delta_ppm;
    }

    /// Apply a phase step (from the PLL), ps.
    pub fn adjust_phase(&mut self, delta_ps: f64) {
        self.phase_ps += delta_ps;
    }
}

/// Standard normal sample (Box-Muller).
pub fn gauss<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(1e-12);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn uncorrected_clocks_diverge() {
        let mut rng = SmallRng::seed_from_u64(1);
        let spec = OscillatorSpec::commodity_xo();
        let mut a = LocalClock::new(&mut rng, spec);
        let mut b = LocalClock::new(&mut rng, spec);
        // One second of free running at a 1.6 us update period.
        for _ in 0..625_000 {
            a.advance(&mut rng, 1.6);
            b.advance(&mut rng, 1.6);
        }
        // ppm-scale offsets produce micro-second scale divergence in 1 s.
        let diff_ps = (a.phase_ps - b.phase_ps).abs();
        assert!(diff_ps > 1e4, "clocks implausibly close: {diff_ps} ps");
    }

    #[test]
    fn initial_offsets_within_spec() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..100 {
            let c = LocalClock::new(&mut rng, OscillatorSpec::commodity_xo());
            assert!(c.offset_ppm.abs() <= 20.0);
        }
    }

    #[test]
    fn adjustments_take_effect() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut c = LocalClock::new(&mut rng, OscillatorSpec::commodity_xo());
        let f0 = c.offset_ppm;
        c.adjust_frequency(-f0);
        assert!(c.offset_ppm.abs() < 1e-12);
        c.adjust_phase(-c.phase_ps);
        assert_eq!(c.phase_ps, 0.0);
    }

    #[test]
    fn byzantine_clock_wanders_fast() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut c = LocalClock::new(&mut rng, OscillatorSpec::commodity_xo());
        c.byzantine = true;
        let mut max_excursion = 0f64;
        for _ in 0..10_000 {
            c.advance(&mut rng, 1.6);
            max_excursion = max_excursion.max(c.offset_ppm.abs());
        }
        assert!(max_excursion > 20.0, "byzantine clock stayed tame");
        assert!(max_excursion <= 100.0);
    }

    #[test]
    fn gauss_is_roughly_standard() {
        let mut rng = SmallRng::seed_from_u64(5);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| gauss(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }
}
