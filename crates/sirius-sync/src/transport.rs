//! The network seam: one trait the protocol core sends/receives through,
//! two backends.
//!
//! [`SimTransport`] is the in-memory single-epoch beacon bus the lockstep
//! simulation uses; its "detector noise" correction draws from the same
//! shared RNG stream as the simulated clocks, preserving the pre-seam
//! draw order bit-for-bit. [`UdpTransport`] moves the same
//! [`SyncMsg`] bytes over UDP sockets and maps everything real networks
//! do — timeouts, duplicated, reordered and truncated datagrams — onto
//! the typed [`SyncError`] taxonomy instead of panicking or hanging.

use crate::clock::gauss;
use crate::error::SyncError;
use crate::proto::{Beacon, SyncMsg, WIRE_BYTES};
use crate::provider::SharedRng;
use std::net::{Ipv4Addr, SocketAddr, UdpSocket};
use std::time::{Duration, Instant};

/// What the [`crate::engine::SyncEngine`] needs from a network: leaders
/// broadcast a beacon, followers receive the one expected for an epoch,
/// and every measurement gets a backend-specific phase correction.
pub trait Transport {
    /// Send `beacon` to every peer.
    fn broadcast(&mut self, beacon: &Beacon) -> Result<(), SyncError>;
    /// Receive the beacon for `epoch` from `leader`, classifying
    /// anything else that arrives meanwhile.
    fn recv_beacon(&mut self, epoch: u64, leader: usize) -> Result<Beacon, SyncError>;
    /// Phase correction added to each measurement, ps: detector noise
    /// in-sim, *minus* the calibrated propagation delay on a real
    /// transport (§A.2). May consume randomness, hence `&mut`.
    fn correction_ps(&mut self) -> f64 {
        0.0
    }
}

/// In-memory transport for the lockstep simulation: one beacon slot,
/// overwritten each epoch by whoever leads.
#[derive(Debug, Clone)]
pub struct SimTransport {
    beacon: Option<Beacon>,
    detector_noise_ps: f64,
    rng: SharedRng,
}

impl SimTransport {
    pub fn new(detector_noise_ps: f64, rng: SharedRng) -> SimTransport {
        SimTransport {
            beacon: None,
            detector_noise_ps,
            rng,
        }
    }
}

impl Transport for SimTransport {
    fn broadcast(&mut self, beacon: &Beacon) -> Result<(), SyncError> {
        self.beacon = Some(*beacon);
        Ok(())
    }

    fn recv_beacon(&mut self, epoch: u64, leader: usize) -> Result<Beacon, SyncError> {
        match self.beacon {
            Some(b) if b.epoch == epoch && b.leader as usize == leader => Ok(b),
            Some(b) => Err(SyncError::Stale {
                epoch: b.epoch,
                newest: epoch,
            }),
            None => Err(SyncError::Lost { epoch }),
        }
    }

    fn correction_ps(&mut self) -> f64 {
        // Always draw, even at zero noise: the pre-seam loop drew one
        // gaussian per follower unconditionally, and the shared-stream
        // draw order is part of the bit-identity contract.
        gauss(&mut *self.rng.borrow_mut()) * self.detector_noise_ps
    }
}

/// Per-transport counters of everything the taxonomy classified away.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// recv_beacon deadlines that expired.
    pub timeouts: u64,
    /// Beacons for an epoch already seen (UDP duplication).
    pub duplicates: u64,
    /// Beacons older than the epoch being waited for (reordering).
    pub stale: u64,
    /// Datagrams that failed to decode.
    pub malformed: u64,
}

/// UDP backend: node `i` binds `addr_base + i` and broadcasts to every
/// peer by unicast (loopback has no multicast worth the setup).
#[derive(Debug)]
pub struct UdpTransport {
    socket: UdpSocket,
    node: u16,
    peers: Vec<SocketAddr>,
    timeout: Duration,
    correction_ps: f64,
    /// Newest beacon epoch observed (for duplicate classification).
    newest_seen: Option<u64>,
    /// A beacon that arrived ahead of the epoch being waited for (the
    /// peer's pacing ran ahead); served on the next matching call.
    pending: Option<Beacon>,
    pub stats: TransportStats,
}

impl UdpTransport {
    /// Bind node `node` of `nodes` on fixed loopback ports
    /// `port_base..port_base+nodes` (the live multi-process layout).
    pub fn bind(node: usize, nodes: usize, port_base: u16) -> std::io::Result<UdpTransport> {
        let addr = |i: usize| SocketAddr::from((Ipv4Addr::LOCALHOST, port_base + i as u16));
        let socket = UdpSocket::bind(addr(node))?;
        Ok(UdpTransport::from_socket(
            socket,
            node,
            (0..nodes).map(addr).collect(),
        ))
    }

    /// Bind a whole cluster on OS-assigned ports (in-process tests: no
    /// fixed ports to collide on).
    pub fn bind_cluster(nodes: usize) -> std::io::Result<Vec<UdpTransport>> {
        let sockets: Vec<UdpSocket> = (0..nodes)
            .map(|_| UdpSocket::bind((Ipv4Addr::LOCALHOST, 0)))
            .collect::<std::io::Result<_>>()?;
        let peers: Vec<SocketAddr> = sockets
            .iter()
            .map(|s| s.local_addr())
            .collect::<std::io::Result<_>>()?;
        Ok(sockets
            .into_iter()
            .enumerate()
            .map(|(i, s)| UdpTransport::from_socket(s, i, peers.clone()))
            .collect())
    }

    fn from_socket(socket: UdpSocket, node: usize, peers: Vec<SocketAddr>) -> UdpTransport {
        UdpTransport {
            socket,
            node: node as u16,
            peers,
            timeout: Duration::from_millis(50),
            correction_ps: 0.0,
            newest_seen: None,
            pending: None,
            stats: TransportStats::default(),
        }
    }

    pub fn node(&self) -> u16 {
        self.node
    }

    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.socket.local_addr()
    }

    /// Receive deadline for [`Transport::recv_beacon`] and [`Self::poll`].
    pub fn set_timeout(&mut self, timeout: Duration) {
        self.timeout = timeout;
    }

    /// Set the calibrated measurement correction (−one-way delay, §A.2).
    pub fn set_correction_ps(&mut self, ps: f64) {
        self.correction_ps = ps;
    }

    /// Send one message to one peer.
    pub fn send_to(&self, peer: usize, msg: &SyncMsg) -> Result<(), SyncError> {
        let dst = *self
            .peers
            .get(peer)
            .ok_or(SyncError::PeerDead { node: peer })?;
        self.socket.send_to(&msg.encode(), dst)?;
        Ok(())
    }

    /// Send one message to every peer but self.
    pub fn send_to_all(&self, msg: &SyncMsg) -> Result<(), SyncError> {
        for (i, dst) in self.peers.iter().enumerate() {
            if i != self.node as usize {
                self.socket.send_to(&msg.encode(), *dst)?;
            }
        }
        Ok(())
    }

    /// Receive one datagram within `timeout`, decoded. Malformed
    /// datagrams are counted and reported as errors; the OS-level
    /// would-block/timed-out conditions map to [`SyncError::Timeout`].
    pub fn poll(&mut self) -> Result<SyncMsg, SyncError> {
        self.poll_deadline(Instant::now() + self.timeout)
    }

    /// Switch the socket between blocking (barrier/calibration) and
    /// non-blocking (the paced epoch loop, which drains via
    /// [`Self::try_poll`] and sleeps on its own schedule — kernel
    /// `SO_RCVTIMEO` granularity is far too coarse for ms-scale epochs).
    pub fn set_nonblocking(&mut self, nonblocking: bool) -> std::io::Result<()> {
        self.socket.set_nonblocking(nonblocking)
    }

    /// Non-blocking receive: `Ok(None)` when the socket is drained (not
    /// counted as a timeout — an empty socket between paced wakeups is
    /// the normal state, not a protocol failure). Requires
    /// [`Self::set_nonblocking`]`(true)`.
    pub fn try_poll(&mut self) -> Result<Option<SyncMsg>, SyncError> {
        let mut buf = [0u8; WIRE_BYTES + 8];
        match self.socket.recv_from(&mut buf) {
            Ok((len, _)) => match SyncMsg::decode(&buf[..len]) {
                Ok(msg) => Ok(Some(msg)),
                Err(e) => {
                    self.stats.malformed += 1;
                    Err(e)
                }
            },
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                Ok(None)
            }
            Err(e) => Err(e.into()),
        }
    }

    fn poll_deadline(&mut self, deadline: Instant) -> Result<SyncMsg, SyncError> {
        let mut buf = [0u8; WIRE_BYTES + 8];
        loop {
            let now = Instant::now();
            if now >= deadline {
                self.stats.timeouts += 1;
                return Err(SyncError::Timeout {
                    waited_us: self.timeout.as_micros() as u64,
                });
            }
            // A zero read-timeout would mean "block forever"; floor it.
            self.socket
                .set_read_timeout(Some((deadline - now).max(Duration::from_millis(1))))?;
            match self.socket.recv_from(&mut buf) {
                Ok((len, _)) => match SyncMsg::decode(&buf[..len]) {
                    Ok(msg) => return Ok(msg),
                    Err(e) => {
                        self.stats.malformed += 1;
                        return Err(e);
                    }
                },
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    // Kernel read timeouts quantize coarsely and can wake
                    // early; loop back and let the deadline check decide
                    // whether this was a real timeout.
                    continue;
                }
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Classify a beacon that is *not* the one being waited for.
    fn classify(&mut self, b: Beacon, wanted_epoch: u64) -> Option<SyncError> {
        if self.newest_seen == Some(b.epoch) {
            self.stats.duplicates += 1;
            Some(SyncError::Duplicate { epoch: b.epoch })
        } else if b.epoch < wanted_epoch {
            self.stats.stale += 1;
            Some(SyncError::Stale {
                epoch: b.epoch,
                newest: wanted_epoch,
            })
        } else {
            // Ahead of us: the peer's pacing ran past ours. Hold it.
            self.pending = Some(b);
            self.newest_seen = Some(self.newest_seen.unwrap_or(0).max(b.epoch));
            None
        }
    }
}

impl Transport for UdpTransport {
    fn broadcast(&mut self, beacon: &Beacon) -> Result<(), SyncError> {
        self.send_to_all(&SyncMsg::Beacon(*beacon))
    }

    /// Drain datagrams until the wanted beacon arrives or the deadline
    /// expires. Calibration probes are served inline (a node must echo
    /// [`SyncMsg::DelayRequest`]s even while waiting on its leader);
    /// duplicates/stale/malformed are counted and skipped; a beacon for
    /// the right epoch from the *wrong* node is returned as
    /// [`SyncError::WrongLeader`] — that is schedule-split evidence the
    /// caller must see, not line noise to absorb.
    fn recv_beacon(&mut self, epoch: u64, leader: usize) -> Result<Beacon, SyncError> {
        if let Some(b) = self.pending {
            if b.epoch == epoch {
                self.pending = None;
                if b.leader as usize != leader {
                    return Err(SyncError::WrongLeader {
                        epoch,
                        claimed: b.leader as usize,
                        expected: Some(leader),
                    });
                }
                return Ok(b);
            }
            if b.epoch < epoch {
                self.pending = None;
            }
        }
        let deadline = Instant::now() + self.timeout;
        loop {
            match self.poll_deadline(deadline) {
                Ok(SyncMsg::Beacon(b)) => {
                    if b.epoch == epoch {
                        if b.leader as usize != leader {
                            return Err(SyncError::WrongLeader {
                                epoch,
                                claimed: b.leader as usize,
                                expected: Some(leader),
                            });
                        }
                        self.newest_seen = Some(self.newest_seen.unwrap_or(0).max(b.epoch));
                        return Ok(b);
                    }
                    self.classify(b, epoch);
                }
                Ok(SyncMsg::DelayRequest { node, nonce }) => {
                    let _ = self.send_to(
                        node as usize,
                        &SyncMsg::DelayResponse {
                            node: self.node,
                            nonce,
                        },
                    );
                }
                // Barrier traffic and late calibration echoes are noise
                // here; drop them.
                Ok(_) => {}
                Err(e @ SyncError::Timeout { .. }) => return Err(e),
                Err(SyncError::Malformed { .. }) => {}
                Err(e) => return Err(e),
            }
        }
    }

    fn correction_ps(&mut self) -> f64 {
        self.correction_ps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn beacon(leader: u16, epoch: u64, phase_ps: f64) -> Beacon {
        Beacon {
            leader,
            epoch,
            phase_ps,
        }
    }

    #[test]
    fn sim_transport_delivers_current_epoch_only() {
        use rand::rngs::SmallRng;
        use rand::SeedableRng;
        use std::cell::RefCell;
        use std::rc::Rc;
        let rng = Rc::new(RefCell::new(SmallRng::seed_from_u64(1)));
        let mut t = SimTransport::new(0.0, rng);
        assert_eq!(t.recv_beacon(0, 0), Err(SyncError::Lost { epoch: 0 }));
        t.broadcast(&beacon(0, 0, 1.5)).unwrap();
        assert_eq!(t.recv_beacon(0, 0), Ok(beacon(0, 0, 1.5)));
        // Next epoch: the old beacon is stale, not re-served.
        assert_eq!(
            t.recv_beacon(1, 0),
            Err(SyncError::Stale {
                epoch: 0,
                newest: 1
            })
        );
    }

    #[test]
    fn udp_timeout_is_typed() {
        let mut ts = UdpTransport::bind_cluster(2).unwrap();
        ts[1].set_timeout(Duration::from_millis(20));
        match ts[1].recv_beacon(0, 0) {
            Err(SyncError::Timeout { .. }) => {}
            other => panic!("expected Timeout, got {other:?}"),
        }
        assert_eq!(ts[1].stats.timeouts, 1);
    }

    #[test]
    fn udp_duplicate_beacon_is_classified() {
        let mut ts = UdpTransport::bind_cluster(2).unwrap();
        ts[1].set_timeout(Duration::from_millis(200));
        let b0 = beacon(0, 0, 2.0);
        // The same datagram delivered twice.
        ts[0].broadcast(&b0).unwrap();
        ts[0].broadcast(&b0).unwrap();
        assert_eq!(ts[1].recv_beacon(0, 0), Ok(b0));
        // Waiting for epoch 1 now: the duplicate of epoch 0 must be
        // absorbed and counted, ending in a timeout (not a bogus apply).
        ts[1].set_timeout(Duration::from_millis(30));
        match ts[1].recv_beacon(1, 0) {
            Err(SyncError::Timeout { .. }) => {}
            other => panic!("expected Timeout after duplicate, got {other:?}"),
        }
        assert_eq!(ts[1].stats.duplicates, 1);
    }

    #[test]
    fn udp_reordered_beacon_is_classified_stale() {
        let mut ts = UdpTransport::bind_cluster(2).unwrap();
        ts[1].set_timeout(Duration::from_millis(200));
        // Epoch 4 overtakes epoch 3 in flight.
        ts[0].broadcast(&beacon(1, 4, 4.0)).unwrap();
        ts[0].broadcast(&beacon(0, 3, 3.0)).unwrap();
        // Waiting for 4: it arrives first; the late 3 is still queued.
        assert_eq!(ts[1].recv_beacon(4, 1), Ok(beacon(1, 4, 4.0)));
        ts[1].set_timeout(Duration::from_millis(30));
        match ts[1].recv_beacon(5, 1) {
            Err(SyncError::Timeout { .. }) => {}
            other => panic!("expected Timeout, got {other:?}"),
        }
        assert_eq!(ts[1].stats.stale, 1, "{:?}", ts[1].stats);
    }

    #[test]
    fn udp_ahead_beacon_is_held_for_its_epoch() {
        let mut ts = UdpTransport::bind_cluster(2).unwrap();
        ts[1].set_timeout(Duration::from_millis(200));
        ts[0].broadcast(&beacon(0, 7, 7.0)).unwrap();
        ts[0].broadcast(&beacon(0, 6, 6.0)).unwrap();
        // Waiting for 6 while 7 arrives first: 7 is pended, 6 served.
        assert_eq!(ts[1].recv_beacon(6, 0), Ok(beacon(0, 6, 6.0)));
        assert_eq!(ts[1].recv_beacon(7, 0), Ok(beacon(0, 7, 7.0)));
    }

    #[test]
    fn udp_wrong_leader_is_surfaced() {
        let mut ts = UdpTransport::bind_cluster(3).unwrap();
        ts[1].set_timeout(Duration::from_millis(200));
        ts[2].broadcast(&beacon(2, 5, 0.0)).unwrap();
        assert_eq!(
            ts[1].recv_beacon(5, 0),
            Err(SyncError::WrongLeader {
                epoch: 5,
                claimed: 2,
                expected: Some(0),
            })
        );
    }

    #[test]
    fn udp_malformed_datagram_is_counted() {
        let mut ts = UdpTransport::bind_cluster(2).unwrap();
        ts[1].set_timeout(Duration::from_millis(200));
        let raw = UdpSocket::bind((Ipv4Addr::LOCALHOST, 0)).unwrap();
        raw.send_to(b"garbage", ts[1].local_addr().unwrap())
            .unwrap();
        match ts[1].poll() {
            Err(SyncError::Malformed { .. }) => {}
            other => panic!("expected Malformed, got {other:?}"),
        }
        assert_eq!(ts[1].stats.malformed, 1);
    }

    #[test]
    fn udp_serves_delay_requests_while_waiting() {
        let mut ts = UdpTransport::bind_cluster(2).unwrap();
        ts[1].set_timeout(Duration::from_millis(100));
        ts[0]
            .send_to(1, &SyncMsg::DelayRequest { node: 0, nonce: 42 })
            .unwrap();
        // Node 1 waits for a beacon that never comes, but must echo the
        // calibration probe meanwhile.
        let _ = ts[1].recv_beacon(0, 0);
        ts[0].set_timeout(Duration::from_millis(200));
        assert_eq!(
            ts[0].poll(),
            Ok(SyncMsg::DelayResponse { node: 1, nonce: 42 })
        );
    }
}
