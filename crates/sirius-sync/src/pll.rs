//! Frequency/phase recovery loop (§4.4).
//!
//! Because the gratings are passive and do no retiming, a receiver can
//! extract the *sender's* clock from any incoming bit stream and slave its
//! own oscillator to it with a standard PLL/DLL. Each node applies one
//! update per epoch, when the (current) leader's cell arrives. The DLL
//! variant slew-limits the applied correction, which "digitally filters
//! too large frequency variations, thus partially addressing the case of
//! byzantine clock failures".

/// A proportional-integral phase/frequency tracking loop.
#[derive(Debug, Clone, Copy)]
pub struct Pll {
    /// Proportional gain on the measured phase error (fraction of the
    /// error removed as an immediate phase step).
    pub kp: f64,
    /// Integral gain: ppm of frequency correction per ps of phase error.
    pub ki: f64,
    /// Max |frequency correction| applied per update, ppm (the DLL's
    /// byzantine filter); `f64::INFINITY` disables filtering.
    pub max_slew_ppm: f64,
}

impl Pll {
    /// Gains tuned for one update per 1.6 us epoch.
    pub fn paper_tuning() -> Pll {
        Pll {
            kp: 0.7,
            ki: 0.08,
            max_slew_ppm: 1.0,
        }
    }

    /// Unfiltered variant (plain PLL, no slew limit).
    pub fn unfiltered() -> Pll {
        Pll {
            max_slew_ppm: f64::INFINITY,
            ..Pll::paper_tuning()
        }
    }

    /// One update: given the measured phase error (own phase minus
    /// reference phase, ps), return `(phase_step_ps, freq_step_ppm)` to
    /// apply to the local clock.
    pub fn update(&self, phase_err_ps: f64) -> (f64, f64) {
        let phase_step = -self.kp * phase_err_ps;
        let mut freq_step = -self.ki * phase_err_ps;
        if freq_step.abs() > self.max_slew_ppm {
            freq_step = freq_step.signum() * self.max_slew_ppm;
        }
        (phase_step, freq_step)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::{LocalClock, OscillatorSpec};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Drive a clock against a perfect reference; returns the steady-state
    /// max |phase| over the last half of the run.
    fn lock_and_measure(pll: Pll, seed: u64, epochs: usize) -> f64 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut c = LocalClock::new(&mut rng, OscillatorSpec::commodity_xo());
        let mut worst: f64 = 0.0;
        for e in 0..epochs {
            c.advance(&mut rng, 1.6);
            // Phase measurement with 0.2 ps detector noise.
            let measured = c.phase_ps + crate::clock::gauss(&mut rng) * 0.2;
            let (dp, df) = pll.update(measured);
            c.adjust_phase(dp);
            c.adjust_frequency(df);
            if e > epochs / 2 {
                worst = worst.max(c.phase_ps.abs());
            }
        }
        worst
    }

    #[test]
    fn pll_locks_to_picoseconds() {
        // The §6 measurement: +-5 ps over 24 h. Steady-state must be
        // comfortably inside that.
        let worst = lock_and_measure(Pll::paper_tuning(), 1, 40_000);
        assert!(worst < 5.0, "steady-state phase error {worst} ps");
    }

    #[test]
    fn pll_pulls_in_a_20ppm_offset() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut c = LocalClock::new(&mut rng, OscillatorSpec::commodity_xo());
        c.offset_ppm = 20.0;
        let pll = Pll::paper_tuning();
        for _ in 0..30_000 {
            c.advance(&mut rng, 1.6);
            let (dp, df) = pll.update(c.phase_ps);
            c.adjust_phase(dp);
            c.adjust_frequency(df);
        }
        assert!(
            c.offset_ppm.abs() < 0.5,
            "residual offset {} ppm",
            c.offset_ppm
        );
        assert!(c.phase_ps.abs() < 5.0, "residual phase {} ps", c.phase_ps);
    }

    #[test]
    fn slew_limit_caps_corrections() {
        let pll = Pll::paper_tuning();
        let (_, df) = pll.update(1e6); // absurd 1 us phase error
        assert_eq!(df.abs(), pll.max_slew_ppm);
        let un = Pll::unfiltered();
        let (_, df) = un.update(1e6);
        assert!(df.abs() > 1000.0);
    }

    #[test]
    fn update_signs_oppose_the_error() {
        let pll = Pll::paper_tuning();
        let (dp, df) = pll.update(10.0);
        assert!(dp < 0.0 && df < 0.0);
        let (dp, df) = pll.update(-10.0);
        assert!(dp > 0.0 && df > 0.0);
    }
}
