//! Network-wide synchronization simulation: reproduces the §6 result that
//! clock phase deviation between nodes stays within ±5 ps over 24 hours.
//!
//! Every node runs a drifting oscillator and a PLL; once per epoch each
//! follower measures the current leader's phase (from the leader's cell,
//! with detector noise) and applies one PLL update. The leader rotates
//! every few epochs; failures forfeit turns. We track the maximum pairwise
//! phase deviation among alive nodes.
//!
//! A real 24 h run is 5.4e10 epochs; the deviation process is stationary
//! once locked (verified by comparing window maxima), so the harness runs
//! tens of millions of epochs and reports the stationary maximum — the
//! quantity the paper's oscilloscope measured.

use crate::clock::{gauss, LocalClock, OscillatorSpec};
use crate::leader::LeaderSchedule;
use crate::pll::Pll;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Parameters for a synchronization run.
#[derive(Debug, Clone)]
pub struct SyncSimConfig {
    pub nodes: usize,
    pub epoch_us: f64,
    pub oscillator: OscillatorSpec,
    pub pll: Pll,
    /// Phase-detector noise when reading the leader's clock, ps (1-sigma).
    pub detector_noise_ps: f64,
    pub rotation_epochs: u64,
    pub seed: u64,
}

impl SyncSimConfig {
    /// The paper's measurement setup, scaled to `nodes` nodes.
    pub fn paper(nodes: usize) -> SyncSimConfig {
        SyncSimConfig {
            nodes,
            epoch_us: 1.6,
            oscillator: OscillatorSpec::commodity_xo(),
            pll: Pll::paper_tuning(),
            detector_noise_ps: 0.2,
            rotation_epochs: 4,
            seed: 1,
        }
    }
}

/// Result of a synchronization run.
#[derive(Debug, Clone)]
pub struct SyncResult {
    /// Max |pairwise phase deviation| after lock, ps.
    pub max_deviation_ps: f64,
    /// Max deviation in each quarter of the post-lock window (stationarity
    /// check: these should be of similar magnitude).
    pub window_max_ps: [f64; 4],
    /// Epochs simulated.
    pub epochs: u64,
    /// Max |frequency offset| reached by any *honest* clock, ppm — the
    /// damage a byzantine reference can induce (common-mode, so invisible
    /// to pairwise deviation; bounded by the DLL slew limit).
    pub max_honest_offset_ppm: f64,
}

/// Run with byzantine injections: `byzantine` lists `(node, epoch)` at
/// which a node's oscillator starts misbehaving (wild frequency
/// excursions). The node keeps participating — including taking its
/// leader turns — so this measures how far a bad clock can drag the
/// others. With the slew-limited DLL (the default `Pll::paper_tuning`),
/// followers clamp the correction a byzantine leader can induce (§4.4:
/// "digitally filter too large frequency variations").
pub fn run_with_byzantine(
    cfg: &SyncSimConfig,
    epochs: u64,
    byzantine: &[(usize, u64)],
) -> SyncResult {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut clocks: Vec<LocalClock> = (0..cfg.nodes)
        .map(|_| LocalClock::new(&mut rng, cfg.oscillator))
        .collect();
    let leaders = LeaderSchedule::new(cfg.nodes, cfg.rotation_epochs);
    let mut byz = vec![false; cfg.nodes];
    let warmup = (epochs / 5).max(5_000.min(epochs / 2));
    let mut max_dev = 0f64;
    let mut max_offset = 0f64;
    let mut window_max = [0f64; 4];
    let mut byz_iter = byzantine.iter().peekable();
    for e in 0..epochs {
        while let Some(&&(node, at)) = byz_iter.peek() {
            if at <= e {
                clocks[node].byzantine = true;
                byz[node] = true;
                byz_iter.next();
            } else {
                break;
            }
        }
        for c in clocks.iter_mut() {
            c.advance(&mut rng, cfg.epoch_us);
        }
        if let Some(lead) = leaders.leader_at(e) {
            let ref_phase = clocks[lead].phase_ps;
            for (i, clock) in clocks.iter_mut().enumerate() {
                if i == lead {
                    continue;
                }
                let measured = clock.phase_ps - ref_phase + gauss(&mut rng) * cfg.detector_noise_ps;
                let (dp, df) = cfg.pll.update(measured);
                clock.adjust_phase(dp);
                clock.adjust_frequency(df);
            }
        }
        if e >= warmup {
            // Deviation among the *honest* nodes: the byzantine node is
            // lost, the question is whether it corrupts the rest.
            let dev = pairwise_max_dev(&clocks, &byz);
            max_dev = max_dev.max(dev);
            let quarter = ((e - warmup) * 4 / (epochs - warmup).max(1)).min(3) as usize;
            window_max[quarter] = window_max[quarter].max(dev);
            for (i, c) in clocks.iter().enumerate() {
                if !byz[i] {
                    max_offset = max_offset.max(c.offset_ppm.abs());
                }
            }
        }
    }
    SyncResult {
        max_deviation_ps: max_dev,
        window_max_ps: window_max,
        epochs,
        max_honest_offset_ppm: max_offset,
    }
}

/// Run the synchronization protocol for `epochs` epochs; `failures` lists
/// `(node, epoch)` failure injections.
pub fn run(cfg: &SyncSimConfig, epochs: u64, failures: &[(usize, u64)]) -> SyncResult {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut clocks: Vec<LocalClock> = (0..cfg.nodes)
        .map(|_| LocalClock::new(&mut rng, cfg.oscillator))
        .collect();
    let mut leaders = LeaderSchedule::new(cfg.nodes, cfg.rotation_epochs);
    let mut failed = vec![false; cfg.nodes];

    // Lock-in window: ignore the first 20% (or 5k epochs) for the max.
    let warmup = (epochs / 5).max(5_000.min(epochs / 2));
    let mut max_dev = 0f64;
    let mut window_max = [0f64; 4];

    let mut max_offset = 0f64;
    let mut fail_iter = failures.iter().peekable();
    for e in 0..epochs {
        while let Some(&&(node, at)) = fail_iter.peek() {
            if at <= e {
                leaders.mark_failed(node);
                failed[node] = true;
                fail_iter.next();
            } else {
                break;
            }
        }
        // All clocks free-run for one epoch.
        for (i, c) in clocks.iter_mut().enumerate() {
            if !failed[i] {
                c.advance(&mut rng, cfg.epoch_us);
            }
        }
        // Followers measure the leader once per epoch and update.
        if let Some(lead) = leaders.leader_at(e) {
            let ref_phase = clocks[lead].phase_ps;
            for i in 0..cfg.nodes {
                if i == lead || failed[i] {
                    continue;
                }
                let measured =
                    clocks[i].phase_ps - ref_phase + gauss(&mut rng) * cfg.detector_noise_ps;
                let (dp, df) = cfg.pll.update(measured);
                clocks[i].adjust_phase(dp);
                clocks[i].adjust_frequency(df);
            }
        }
        if e >= warmup {
            let dev = pairwise_max_dev(&clocks, &failed);
            max_dev = max_dev.max(dev);
            let quarter = ((e - warmup) * 4 / (epochs - warmup).max(1)).min(3) as usize;
            window_max[quarter] = window_max[quarter].max(dev);
            for (i, c) in clocks.iter().enumerate() {
                if !failed[i] {
                    max_offset = max_offset.max(c.offset_ppm.abs());
                }
            }
        }
    }
    SyncResult {
        max_deviation_ps: max_dev,
        window_max_ps: window_max,
        epochs,
        max_honest_offset_ppm: max_offset,
    }
}

fn pairwise_max_dev(clocks: &[LocalClock], failed: &[bool]) -> f64 {
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for (c, &f) in clocks.iter().zip(failed) {
        if !f {
            min = min.min(c.phase_ps);
            max = max.max(c.phase_ps);
        }
    }
    if min.is_finite() {
        max - min
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_nodes_stay_within_5ps() {
        // The §6 headline: "Over 24 hours, the maximum deviation was
        // +-5 ps" between two FPGAs. +-5 ps = 10 ps peak-to-peak.
        let r = run(&SyncSimConfig::paper(2), 60_000, &[]);
        assert!(
            r.max_deviation_ps < 10.0,
            "max deviation {} ps",
            r.max_deviation_ps
        );
    }

    #[test]
    fn deviation_process_is_stationary() {
        // Window maxima must be comparable — this is what licenses
        // extrapolating a bounded run to 24 h.
        let r = run(&SyncSimConfig::paper(4), 80_000, &[]);
        let lo = r
            .window_max_ps
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        let hi = r.window_max_ps.iter().cloned().fold(0.0, f64::max);
        assert!(
            hi / lo < 3.0,
            "non-stationary windows: {:?}",
            r.window_max_ps
        );
    }

    #[test]
    fn scales_to_many_nodes() {
        let r = run(&SyncSimConfig::paper(32), 40_000, &[]);
        assert!(
            r.max_deviation_ps < 15.0,
            "32-node deviation {} ps",
            r.max_deviation_ps
        );
    }

    #[test]
    fn survives_leader_failure() {
        // Kill node 0 (the first leader) mid-run: the rotation replaces it
        // and the survivors stay synchronized.
        let r = run(&SyncSimConfig::paper(4), 60_000, &[(0, 30_000)]);
        assert!(
            r.max_deviation_ps < 12.0,
            "deviation with failure {} ps",
            r.max_deviation_ps
        );
    }

    #[test]
    fn slew_limit_contains_a_byzantine_leader() {
        // A byzantine node takes its leader turns and its phase reference
        // jumps wildly; the honest nodes' slew-limited DLL caps how fast
        // they can be dragged, and honest-to-honest deviation stays small
        // relative to the byzantine clock's own excursions.
        let filtered = run_with_byzantine(&SyncSimConfig::paper(8), 40_000, &[(0, 10_000)]);
        let mut unfiltered_cfg = SyncSimConfig::paper(8);
        unfiltered_cfg.pll = Pll::unfiltered();
        let unfiltered = run_with_byzantine(&unfiltered_cfg, 40_000, &[(0, 10_000)]);
        // The byzantine drag is common-mode (all honest followers chase
        // the same wild reference), so pairwise honest deviation stays
        // small either way; the damage shows in the *frequency excursion*
        // honest clocks are driven to, which the slew limit caps.
        // The filter is rate-limiting, not rejecting — the paper calls it
        // "partially addressing the case of byzantine clock failures" —
        // so we assert a clear (not total) reduction in how hard honest
        // clocks get yanked.
        assert!(
            filtered.max_honest_offset_ppm < unfiltered.max_honest_offset_ppm * 0.85,
            "slew limit did not help: filtered {} ppm vs unfiltered {} ppm",
            filtered.max_honest_offset_ppm,
            unfiltered.max_honest_offset_ppm
        );
        // Honest nodes remain mutually usable.
        assert!(
            filtered.max_deviation_ps < 50.0,
            "honest deviation {} ps under byzantine leader",
            filtered.max_deviation_ps
        );
    }

    #[test]
    fn unsynchronized_network_would_be_useless() {
        // Ablation: with the PLL effectively disabled, deviation explodes
        // — quantifying what the protocol buys.
        let mut cfg = SyncSimConfig::paper(2);
        cfg.pll = Pll {
            kp: 0.0,
            ki: 0.0,
            max_slew_ppm: 0.0,
        };
        let r = run(&cfg, 20_000, &[]);
        assert!(
            r.max_deviation_ps > 1000.0,
            "free-running deviation only {} ps",
            r.max_deviation_ps
        );
    }
}
