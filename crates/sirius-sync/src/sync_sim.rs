//! Network-wide synchronization simulation: reproduces the §6 result that
//! clock phase deviation between nodes stays within ±5 ps over 24 hours.
//!
//! Every node runs a drifting oscillator and a PLL; once per epoch each
//! follower measures the current leader's phase (from the leader's cell,
//! with detector noise) and applies one PLL update. The leader rotates
//! every few epochs; failures forfeit turns. We track the maximum pairwise
//! phase deviation among alive nodes.
//!
//! Since the trait-seam refactor this module is only the lockstep
//! *harness*: it builds one [`SyncEngine`] per node over [`SimTime`] +
//! [`SimTransport`] and drives them epoch by epoch. [`run`] (fail-stop
//! injections) and [`run_with_byzantine`] (wandering-oscillator
//! injections) are parameterizations of the same loop over
//! [`Disruption`] scripts — the two pre-seam near-duplicate bodies are
//! gone, and `tests/sync_network.rs` pins that the outputs are
//! bit-identical to what they produced.
//!
//! A real 24 h run is 5.4e10 epochs; the deviation process is stationary
//! once locked (verified by comparing window maxima), so the harness runs
//! tens of millions of epochs and reports the stationary maximum — the
//! quantity the paper's oscilloscope measured.

use crate::clock::OscillatorSpec;
use crate::engine::SyncEngine;
use crate::leader::LeaderSchedule;
use crate::pll::Pll;
use crate::provider::{SharedRng, SimTime, TimeProvider};
use crate::transport::SimTransport;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::cell::RefCell;
use std::rc::Rc;

/// Parameters for a synchronization run.
#[derive(Debug, Clone)]
pub struct SyncSimConfig {
    pub nodes: usize,
    pub epoch_us: f64,
    pub oscillator: OscillatorSpec,
    pub pll: Pll,
    /// Phase-detector noise when reading the leader's clock, ps (1-sigma).
    pub detector_noise_ps: f64,
    pub rotation_epochs: u64,
    pub seed: u64,
}

impl SyncSimConfig {
    /// The paper's measurement setup, scaled to `nodes` nodes.
    pub fn paper(nodes: usize) -> SyncSimConfig {
        SyncSimConfig {
            nodes,
            epoch_us: 1.6,
            oscillator: OscillatorSpec::commodity_xo(),
            pll: Pll::paper_tuning(),
            detector_noise_ps: 0.2,
            rotation_epochs: 4,
            seed: 1,
        }
    }
}

/// Result of a synchronization run.
#[derive(Debug, Clone)]
pub struct SyncResult {
    /// Max |pairwise phase deviation| after lock, ps.
    pub max_deviation_ps: f64,
    /// Max deviation in each quarter of the post-lock window (stationarity
    /// check: these should be of similar magnitude).
    pub window_max_ps: [f64; 4],
    /// Epochs simulated.
    pub epochs: u64,
    /// Max |frequency offset| reached by any *honest* clock, ppm — the
    /// damage a byzantine reference can induce (common-mode, so invisible
    /// to pairwise deviation; bounded by the DLL slew limit).
    pub max_honest_offset_ppm: f64,
}

/// One scripted disruption, applied at epoch `at` (inclusive).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disruption {
    /// Fail-stop: the node's clock freezes, it forfeits leader turns,
    /// and it leaves the deviation statistics.
    Fail { node: usize, at: u64 },
    /// The node's oscillator starts wandering wildly (§4.4 byzantine
    /// clock failure). It keeps participating — including leading — but
    /// leaves the *honest* statistics.
    Byzantine { node: usize, at: u64 },
}

impl Disruption {
    fn at(&self) -> u64 {
        match *self {
            Disruption::Fail { at, .. } | Disruption::Byzantine { at, .. } => at,
        }
    }
}

/// Run the lockstep cluster with an arbitrary disruption script (must be
/// sorted by epoch). This is the single epoch loop both [`run`] and
/// [`run_with_byzantine`] parameterize.
pub fn run_cluster(cfg: &SyncSimConfig, epochs: u64, events: &[Disruption]) -> SyncResult {
    let rng: SharedRng = Rc::new(RefCell::new(SmallRng::seed_from_u64(cfg.seed)));
    let mut engines: Vec<SyncEngine<SimTime>> = (0..cfg.nodes)
        .map(|i| {
            SyncEngine::new(
                i,
                LeaderSchedule::new(cfg.nodes, cfg.rotation_epochs),
                cfg.pll,
                SimTime::new(rng.clone(), cfg.oscillator),
            )
        })
        .collect();
    let mut transport = SimTransport::new(cfg.detector_noise_ps, rng);
    // Fail-stop nodes freeze (no advance, no updates); excluded nodes
    // (failed or byzantine) leave the deviation/offset statistics.
    let mut failed = vec![false; cfg.nodes];
    let mut excluded = vec![false; cfg.nodes];

    // Lock-in window: ignore the first 20% (or 5k epochs) for the max.
    let warmup = (epochs / 5).max(5_000.min(epochs / 2));
    let mut max_dev = 0f64;
    let mut window_max = [0f64; 4];
    let mut max_offset = 0f64;

    let mut events = events.iter().peekable();
    for e in 0..epochs {
        while let Some(&&d) = events.peek() {
            if d.at() > e {
                break;
            }
            match d {
                Disruption::Fail { node, .. } => {
                    for en in engines.iter_mut() {
                        en.mark_failed(node);
                    }
                    failed[node] = true;
                    excluded[node] = true;
                }
                Disruption::Byzantine { node, .. } => {
                    engines[node].clock_mut().set_byzantine(true);
                    excluded[node] = true;
                }
            }
            events.next();
        }
        // All live clocks free-run for one epoch — *before* any protocol
        // step, in node order: the shared-RNG draw order is part of the
        // bit-identity contract with the pre-seam loop.
        for (i, en) in engines.iter_mut().enumerate() {
            if !failed[i] {
                en.clock_mut().advance(cfg.epoch_us);
            }
        }
        // The leader broadcasts, then every live follower measures it
        // and applies one PLL update (again in node order).
        if let Some(lead) = engines[0].leader_at(e) {
            engines[lead]
                .step(e, &mut transport)
                .expect("sim leader step is infallible");
            for i in 0..cfg.nodes {
                if i == lead || failed[i] {
                    continue;
                }
                engines[i]
                    .step(e, &mut transport)
                    .expect("sim follower step is infallible");
            }
        }
        if e >= warmup {
            let dev = pairwise_max_dev(&engines, &excluded);
            max_dev = max_dev.max(dev);
            let quarter = ((e - warmup) * 4 / (epochs - warmup).max(1)).min(3) as usize;
            window_max[quarter] = window_max[quarter].max(dev);
            for (i, en) in engines.iter().enumerate() {
                if !excluded[i] {
                    max_offset = max_offset.max(en.clock().offset_ppm().abs());
                }
            }
        }
    }
    SyncResult {
        max_deviation_ps: max_dev,
        window_max_ps: window_max,
        epochs,
        max_honest_offset_ppm: max_offset,
    }
}

/// Run the synchronization protocol for `epochs` epochs; `failures` lists
/// `(node, epoch)` failure injections.
pub fn run(cfg: &SyncSimConfig, epochs: u64, failures: &[(usize, u64)]) -> SyncResult {
    let events: Vec<Disruption> = failures
        .iter()
        .map(|&(node, at)| Disruption::Fail { node, at })
        .collect();
    run_cluster(cfg, epochs, &events)
}

/// Run with byzantine injections: `byzantine` lists `(node, epoch)` at
/// which a node's oscillator starts misbehaving (wild frequency
/// excursions). The node keeps participating — including taking its
/// leader turns — so this measures how far a bad clock can drag the
/// others. With the slew-limited DLL (the default `Pll::paper_tuning`),
/// followers clamp the correction a byzantine leader can induce (§4.4:
/// "digitally filter too large frequency variations").
pub fn run_with_byzantine(
    cfg: &SyncSimConfig,
    epochs: u64,
    byzantine: &[(usize, u64)],
) -> SyncResult {
    let events: Vec<Disruption> = byzantine
        .iter()
        .map(|&(node, at)| Disruption::Byzantine { node, at })
        .collect();
    run_cluster(cfg, epochs, &events)
}

fn pairwise_max_dev(engines: &[SyncEngine<SimTime>], excluded: &[bool]) -> f64 {
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for (en, &x) in engines.iter().zip(excluded) {
        if !x {
            let p = en.clock().phase_ps();
            min = min.min(p);
            max = max.max(p);
        }
    }
    if min.is_finite() {
        max - min
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_nodes_stay_within_5ps() {
        // The §6 headline: "Over 24 hours, the maximum deviation was
        // +-5 ps" between two FPGAs. +-5 ps = 10 ps peak-to-peak.
        let r = run(&SyncSimConfig::paper(2), 60_000, &[]);
        assert!(
            r.max_deviation_ps < 10.0,
            "max deviation {} ps",
            r.max_deviation_ps
        );
    }

    #[test]
    fn deviation_process_is_stationary() {
        // Window maxima must be comparable — this is what licenses
        // extrapolating a bounded run to 24 h.
        let r = run(&SyncSimConfig::paper(4), 80_000, &[]);
        let lo = r
            .window_max_ps
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        let hi = r.window_max_ps.iter().cloned().fold(0.0, f64::max);
        assert!(
            hi / lo < 3.0,
            "non-stationary windows: {:?}",
            r.window_max_ps
        );
    }

    #[test]
    fn scales_to_many_nodes() {
        let r = run(&SyncSimConfig::paper(32), 40_000, &[]);
        assert!(
            r.max_deviation_ps < 15.0,
            "32-node deviation {} ps",
            r.max_deviation_ps
        );
    }

    #[test]
    fn survives_leader_failure() {
        // Kill node 0 (the first leader) mid-run: the rotation replaces it
        // and the survivors stay synchronized.
        let r = run(&SyncSimConfig::paper(4), 60_000, &[(0, 30_000)]);
        assert!(
            r.max_deviation_ps < 12.0,
            "deviation with failure {} ps",
            r.max_deviation_ps
        );
    }

    #[test]
    fn slew_limit_contains_a_byzantine_leader() {
        // A byzantine node takes its leader turns and its phase reference
        // jumps wildly; the honest nodes' slew-limited DLL caps how fast
        // they can be dragged, and honest-to-honest deviation stays small
        // relative to the byzantine clock's own excursions.
        let filtered = run_with_byzantine(&SyncSimConfig::paper(8), 40_000, &[(0, 10_000)]);
        let mut unfiltered_cfg = SyncSimConfig::paper(8);
        unfiltered_cfg.pll = Pll::unfiltered();
        let unfiltered = run_with_byzantine(&unfiltered_cfg, 40_000, &[(0, 10_000)]);
        // The byzantine drag is common-mode (all honest followers chase
        // the same wild reference), so pairwise honest deviation stays
        // small either way; the damage shows in the *frequency excursion*
        // honest clocks are driven to, which the slew limit caps.
        // The filter is rate-limiting, not rejecting — the paper calls it
        // "partially addressing the case of byzantine clock failures" —
        // so we assert a clear (not total) reduction in how hard honest
        // clocks get yanked.
        assert!(
            filtered.max_honest_offset_ppm < unfiltered.max_honest_offset_ppm * 0.85,
            "slew limit did not help: filtered {} ppm vs unfiltered {} ppm",
            filtered.max_honest_offset_ppm,
            unfiltered.max_honest_offset_ppm
        );
        // Honest nodes remain mutually usable.
        assert!(
            filtered.max_deviation_ps < 50.0,
            "honest deviation {} ps under byzantine leader",
            filtered.max_deviation_ps
        );
    }

    #[test]
    fn unsynchronized_network_would_be_useless() {
        // Ablation: with the PLL effectively disabled, deviation explodes
        // — quantifying what the protocol buys.
        let mut cfg = SyncSimConfig::paper(2);
        cfg.pll = Pll {
            kp: 0.0,
            ki: 0.0,
            max_slew_ppm: 0.0,
        };
        let r = run(&cfg, 20_000, &[]);
        assert!(
            r.max_deviation_ps > 1000.0,
            "free-running deviation only {} ps",
            r.max_deviation_ps
        );
    }

    #[test]
    fn mixed_disruption_script_runs() {
        // The unified loop accepts interleaved fail + byzantine events —
        // something neither pre-seam entry point could express.
        let r = run_cluster(
            &SyncSimConfig::paper(8),
            40_000,
            &[
                Disruption::Byzantine { node: 2, at: 8_000 },
                Disruption::Fail {
                    node: 0,
                    at: 16_000,
                },
            ],
        );
        assert!(
            r.max_deviation_ps < 50.0,
            "honest deviation {} ps under mixed disruptions",
            r.max_deviation_ps
        );
    }
}
