//! The clock seam: one trait the protocol core disciplines, two backends.
//!
//! [`SimTime`] wraps the drifting [`LocalClock`] model and shares one
//! `SmallRng` with every other simulated component, so a whole cluster's
//! randomness is a single reproducible stream (the property the seam
//! -equivalence tests pin bit-for-bit). [`OsTime`] disciplines a real
//! monotonic clock: a process cannot trim its crystal, so frequency
//! corrections become a software rate multiplier applied to raw
//! `Instant` deltas, and phase steps move the software phase directly —
//! the standard adjtime-style discipline, scaled to ps.

use crate::clock::{LocalClock, OscillatorSpec};
use rand::rngs::SmallRng;
use std::cell::RefCell;
use std::rc::Rc;
use std::time::Instant;

/// What the [`crate::engine::SyncEngine`] needs from a clock: read the
/// current phase, and apply the PLL's phase/frequency corrections.
/// Everything backend-specific (advancing a simulated oscillator, real
/// time passing by itself) stays on the concrete type.
pub trait TimeProvider {
    /// Current clock phase, ps. For `SimTime` this is offset from ideal
    /// simulated time; for `OsTime` it is the disciplined software clock
    /// since process start. Only *differences* between nodes matter.
    fn phase_ps(&self) -> f64;
    /// Apply a phase step from the PLL, ps.
    fn adjust_phase(&mut self, delta_ps: f64);
    /// Apply a frequency correction from the PLL, ppm.
    fn adjust_frequency(&mut self, delta_ppm: f64);
}

/// Shared RNG handle: every simulated clock (and the sim transport's
/// detector noise) draws from the same stream, in deterministic order.
pub type SharedRng = Rc<RefCell<SmallRng>>;

/// Simulation backend: a drifting [`LocalClock`] advanced explicitly by
/// the lockstep harness once per epoch.
#[derive(Debug, Clone)]
pub struct SimTime {
    clock: LocalClock,
    rng: SharedRng,
}

impl SimTime {
    /// Draws the clock's initial frequency offset from the shared stream
    /// — construction order across a cluster is part of the RNG
    /// contract.
    pub fn new(rng: SharedRng, spec: OscillatorSpec) -> SimTime {
        let clock = LocalClock::new(&mut *rng.borrow_mut(), spec);
        SimTime { clock, rng }
    }

    /// Free-run for `dt_us` of ideal time (jitter + drift draws).
    pub fn advance(&mut self, dt_us: f64) {
        self.clock.advance(&mut *self.rng.borrow_mut(), dt_us);
    }

    /// Flip the underlying oscillator into byzantine wandering (§4.4).
    pub fn set_byzantine(&mut self, byzantine: bool) {
        self.clock.byzantine = byzantine;
    }

    /// Current frequency offset, ppm — the quantity the byzantine
    /// -containment result bounds for honest nodes.
    pub fn offset_ppm(&self) -> f64 {
        self.clock.offset_ppm
    }
}

impl TimeProvider for SimTime {
    fn phase_ps(&self) -> f64 {
        self.clock.phase_ps
    }
    fn adjust_phase(&mut self, delta_ps: f64) {
        self.clock.adjust_phase(delta_ps);
    }
    fn adjust_frequency(&mut self, delta_ppm: f64) {
        self.clock.adjust_frequency(delta_ppm);
    }
}

/// Live backend: a software clock disciplined over the OS monotonic
/// clock. Piecewise-linear: from the last adjustment anchor, phase
/// advances at `(1 + freq_ppm * 1e-6)` times raw time.
#[derive(Debug, Clone)]
pub struct OsTime {
    origin: Instant,
    /// Raw monotonic time at the last frequency adjustment, ps.
    anchor_raw_ps: f64,
    /// Disciplined phase at `anchor_raw_ps`, ps.
    anchor_phase_ps: f64,
    /// Current software rate trim, ppm.
    freq_ppm: f64,
}

/// Clamp on the software rate trim: ±500 ppm covers any commodity
/// crystal plus PLL overshoot without letting a wild correction make the
/// software clock visibly non-monotonic-ish in rate.
const MAX_TRIM_PPM: f64 = 500.0;

impl Default for OsTime {
    fn default() -> Self {
        OsTime::new()
    }
}

impl OsTime {
    pub fn new() -> OsTime {
        OsTime {
            origin: Instant::now(),
            anchor_raw_ps: 0.0,
            anchor_phase_ps: 0.0,
            freq_ppm: 0.0,
        }
    }

    fn raw_ps(&self) -> f64 {
        self.origin.elapsed().as_nanos() as f64 * 1000.0
    }

    fn phase_at(&self, raw_ps: f64) -> f64 {
        self.anchor_phase_ps + (raw_ps - self.anchor_raw_ps) * (1.0 + self.freq_ppm * 1e-6)
    }

    /// Current rate trim, ppm (reported in live-node statistics).
    pub fn freq_ppm(&self) -> f64 {
        self.freq_ppm
    }
}

impl TimeProvider for OsTime {
    fn phase_ps(&self) -> f64 {
        self.phase_at(self.raw_ps())
    }

    fn adjust_phase(&mut self, delta_ps: f64) {
        self.anchor_phase_ps += delta_ps;
    }

    fn adjust_frequency(&mut self, delta_ppm: f64) {
        // Re-anchor at "now" so the new rate applies only forward.
        let raw = self.raw_ps();
        self.anchor_phase_ps = self.phase_at(raw);
        self.anchor_raw_ps = raw;
        self.freq_ppm = (self.freq_ppm + delta_ppm).clamp(-MAX_TRIM_PPM, MAX_TRIM_PPM);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn shared(seed: u64) -> SharedRng {
        Rc::new(RefCell::new(SmallRng::seed_from_u64(seed)))
    }

    #[test]
    fn sim_time_matches_raw_localclock_stream() {
        // A SimTime over a shared RNG must consume the stream exactly as
        // the bare LocalClock does — the foundation of seam equivalence.
        let mut raw_rng = SmallRng::seed_from_u64(9);
        let mut raw = LocalClock::new(&mut raw_rng, OscillatorSpec::commodity_xo());

        let rng = shared(9);
        let mut sim = SimTime::new(rng, OscillatorSpec::commodity_xo());

        for _ in 0..1000 {
            raw.advance(&mut raw_rng, 1.6);
            sim.advance(1.6);
        }
        assert_eq!(raw.phase_ps.to_bits(), sim.phase_ps().to_bits());
        assert_eq!(raw.offset_ppm.to_bits(), sim.offset_ppm().to_bits());
    }

    #[test]
    fn sim_time_applies_corrections() {
        let mut sim = SimTime::new(shared(1), OscillatorSpec::commodity_xo());
        let f0 = sim.offset_ppm();
        sim.adjust_frequency(-f0);
        assert!(sim.offset_ppm().abs() < 1e-12);
        sim.adjust_phase(-sim.phase_ps());
        assert_eq!(sim.phase_ps(), 0.0);
    }

    #[test]
    fn os_time_advances_monotonically() {
        let t = OsTime::new();
        let a = t.phase_ps();
        std::thread::sleep(std::time::Duration::from_millis(2));
        let b = t.phase_ps();
        // 2 ms = 2e9 ps; allow generous scheduler slop but require real
        // progress at roughly wall rate.
        assert!(b - a > 1e9, "only {} ps elapsed", b - a);
    }

    #[test]
    fn os_time_phase_step_is_immediate() {
        let mut t = OsTime::new();
        let before = t.phase_ps();
        t.adjust_phase(-1e12);
        assert!(t.phase_ps() < before - 0.9e12);
    }

    #[test]
    fn os_time_frequency_trim_changes_rate() {
        let mut fast = OsTime::new();
        // +100 ppm: over 50 ms the trimmed clock gains ~5e6 ps on raw.
        fast.adjust_frequency(100.0);
        let start = fast.phase_ps();
        let wall = Instant::now();
        std::thread::sleep(std::time::Duration::from_millis(50));
        let gained = (fast.phase_ps() - start) - wall.elapsed().as_nanos() as f64 * 1000.0;
        assert!(
            gained > 1e6,
            "trimmed clock gained only {gained} ps over raw"
        );
    }

    #[test]
    fn os_time_trim_is_clamped() {
        let mut t = OsTime::new();
        t.adjust_frequency(1e9);
        assert_eq!(t.freq_ppm(), MAX_TRIM_PPM);
        t.adjust_frequency(-1e9);
        assert_eq!(t.freq_ppm(), -MAX_TRIM_PPM);
    }
}
