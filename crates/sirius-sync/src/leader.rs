//! Rotating-leader frequency synchronization (§4.4).
//!
//! A designated leader's clock, extracted from its cells as they arrive
//! once per epoch at every node, is the common reference everyone slaves
//! to. "For higher robustness, in Sirius we automatically switch the
//! leader every few epochs in a round-robin fashion", so a dead leader is
//! replaced within microseconds — fast enough that no noticeable drift
//! accumulates. Followers do not need to agree on absolute time, only on
//! frequency/phase relative to whoever currently leads.

/// Leader-election state shared by construction (it is a pure function of
/// the epoch number and the alive set — no messages needed).
#[derive(Debug, Clone)]
pub struct LeaderSchedule {
    nodes: usize,
    /// Epochs each node leads before rotating.
    pub rotation_epochs: u64,
    alive: Vec<bool>,
}

impl LeaderSchedule {
    pub fn new(nodes: usize, rotation_epochs: u64) -> LeaderSchedule {
        assert!(nodes > 0 && rotation_epochs > 0);
        LeaderSchedule {
            nodes,
            rotation_epochs,
            alive: vec![true; nodes],
        }
    }

    /// The paper-style default: rotate every few epochs.
    pub fn paper(nodes: usize) -> LeaderSchedule {
        LeaderSchedule::new(nodes, 4)
    }

    pub fn mark_failed(&mut self, node: usize) {
        self.alive[node] = false;
    }
    pub fn mark_recovered(&mut self, node: usize) {
        self.alive[node] = true;
    }
    pub fn is_alive(&self, node: usize) -> bool {
        self.alive[node]
    }

    /// The node leading at `epoch`: round-robin over node ids, skipping
    /// failed nodes (a failed would-be leader forfeits its turn — the next
    /// alive node in the rotation takes over, which is how a dead leader
    /// is "automatically replaced in few microseconds").
    pub fn leader_at(&self, epoch: u64) -> Option<usize> {
        let slot = (epoch / self.rotation_epochs) as usize;
        // Probe the rotation order starting from the nominal leader.
        for k in 0..self.nodes {
            let cand = (slot + k) % self.nodes;
            if self.alive[cand] {
                return Some(cand);
            }
        }
        None
    }

    /// Max consecutive epochs a node can be without a *live* reference
    /// when one leader dies (its remaining turn).
    pub fn max_leaderless_epochs(&self) -> u64 {
        self.rotation_epochs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_over_all_nodes() {
        let ls = LeaderSchedule::new(4, 4);
        assert_eq!(ls.leader_at(0), Some(0));
        assert_eq!(ls.leader_at(3), Some(0));
        assert_eq!(ls.leader_at(4), Some(1));
        assert_eq!(ls.leader_at(15), Some(3));
        assert_eq!(ls.leader_at(16), Some(0)); // wraps
    }

    #[test]
    fn failed_leader_is_replaced_same_rotation() {
        let mut ls = LeaderSchedule::new(4, 4);
        ls.mark_failed(1);
        // Node 1's turn goes to node 2 immediately.
        assert_eq!(ls.leader_at(4), Some(2));
        assert_eq!(ls.leader_at(8), Some(2)); // its own turn unaffected
        ls.mark_recovered(1);
        assert_eq!(ls.leader_at(4), Some(1));
    }

    #[test]
    fn replacement_latency_is_microseconds() {
        // 4 epochs x 1.6 us = 6.4 us worst case without a reference —
        // "sufficient to prevent any noticeable clock drift" (a 20 ppm
        // clock drifts only 0.128 ps in that window).
        let ls = LeaderSchedule::paper(128);
        let window_us = ls.max_leaderless_epochs() as f64 * 1.6;
        let drift_ps = 20.0 * window_us;
        assert!(drift_ps < 1000.0, "drift {drift_ps} ps");
    }

    #[test]
    fn all_dead_means_no_leader() {
        let mut ls = LeaderSchedule::new(2, 1);
        ls.mark_failed(0);
        ls.mark_failed(1);
        assert_eq!(ls.leader_at(0), None);
    }

    #[test]
    fn every_alive_node_eventually_leads() {
        let mut ls = LeaderSchedule::new(8, 2);
        ls.mark_failed(3);
        let mut led = [false; 8];
        for e in 0..16 {
            led[ls.leader_at(e * 2).unwrap()] = true;
        }
        for (i, &l) in led.iter().enumerate() {
            assert_eq!(l, i != 3, "node {i}");
        }
    }
}
