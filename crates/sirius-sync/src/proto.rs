//! Wire format for the sync protocol (§4.4 beacons, §A.2 calibration).
//!
//! One fixed 24-byte little-endian layout for every message keeps
//! encode/decode allocation-free and makes truncation detectable by
//! length alone:
//!
//! ```text
//! offset  size  field
//!      0     2  magic   0x5953 ("SY")
//!      2     1  version (1)
//!      3     1  kind    (Hello | Go | Beacon | DelayRequest | DelayResponse)
//!      4     2  node    (sender for Hello/Delay*, leader for Beacon)
//!      6     2  reserved (0)
//!      8     8  epoch   (Beacon only; 0 otherwise)
//!     16     8  payload (Beacon: f64 phase_ps bits; Delay*: nonce)
//! ```
//!
//! In-sim the same [`Beacon`] struct travels through [`crate::transport::
//! SimTransport`] without serialization; the UDP path round-trips every
//! message through these bytes, so a decode bug cannot hide behind the
//! simulator.

use crate::error::SyncError;

/// Fixed size of every encoded message, bytes.
pub const WIRE_BYTES: usize = 24;
/// Wire magic: "SY" little-endian.
pub const MAGIC: u16 = 0x5953;
/// Wire format version.
pub const VERSION: u8 = 1;

/// The leader's once-per-epoch phase reference — the cell-embedded clock
/// of §4.4 reduced to the one number followers consume.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Beacon {
    /// Node id of the leader that emitted this beacon.
    pub leader: u16,
    /// Epoch the beacon describes.
    pub epoch: u64,
    /// The leader's clock phase at emission, ps.
    pub phase_ps: f64,
}

/// Every message the protocol exchanges.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SyncMsg {
    /// Barrier: "node `node` is bound and listening".
    Hello { node: u16 },
    /// Barrier release from node 0: start the epoch clock now.
    Go,
    /// The leader's phase reference for one epoch.
    Beacon(Beacon),
    /// RTT calibration probe (§A.2 loopback measurement, process flavor).
    DelayRequest { node: u16, nonce: u64 },
    /// Echo of a [`SyncMsg::DelayRequest`], same nonce.
    DelayResponse { node: u16, nonce: u64 },
}

const KIND_HELLO: u8 = 0;
const KIND_GO: u8 = 1;
const KIND_BEACON: u8 = 2;
const KIND_DELAY_REQUEST: u8 = 3;
const KIND_DELAY_RESPONSE: u8 = 4;

impl SyncMsg {
    /// Encode into the fixed wire layout.
    pub fn encode(&self) -> [u8; WIRE_BYTES] {
        let (kind, node, epoch, payload) = match *self {
            SyncMsg::Hello { node } => (KIND_HELLO, node, 0, 0),
            SyncMsg::Go => (KIND_GO, 0, 0, 0),
            SyncMsg::Beacon(b) => (KIND_BEACON, b.leader, b.epoch, b.phase_ps.to_bits()),
            SyncMsg::DelayRequest { node, nonce } => (KIND_DELAY_REQUEST, node, 0, nonce),
            SyncMsg::DelayResponse { node, nonce } => (KIND_DELAY_RESPONSE, node, 0, nonce),
        };
        let mut buf = [0u8; WIRE_BYTES];
        buf[0..2].copy_from_slice(&MAGIC.to_le_bytes());
        buf[2] = VERSION;
        buf[3] = kind;
        buf[4..6].copy_from_slice(&node.to_le_bytes());
        buf[8..16].copy_from_slice(&epoch.to_le_bytes());
        buf[16..24].copy_from_slice(&payload.to_le_bytes());
        buf
    }

    /// Decode one datagram. Anything that is not exactly a valid message
    /// is [`SyncError::Malformed`] with a static reason — the caller
    /// counts and drops, it never panics.
    pub fn decode(buf: &[u8]) -> Result<SyncMsg, SyncError> {
        if buf.len() != WIRE_BYTES {
            return Err(SyncError::Malformed {
                detail: "wrong length",
            });
        }
        if u16::from_le_bytes([buf[0], buf[1]]) != MAGIC {
            return Err(SyncError::Malformed {
                detail: "bad magic",
            });
        }
        if buf[2] != VERSION {
            return Err(SyncError::Malformed {
                detail: "unsupported version",
            });
        }
        let node = u16::from_le_bytes([buf[4], buf[5]]);
        let epoch = u64::from_le_bytes(buf[8..16].try_into().unwrap());
        let payload = u64::from_le_bytes(buf[16..24].try_into().unwrap());
        match buf[3] {
            KIND_HELLO => Ok(SyncMsg::Hello { node }),
            KIND_GO => Ok(SyncMsg::Go),
            KIND_BEACON => {
                let phase_ps = f64::from_bits(payload);
                if !phase_ps.is_finite() {
                    return Err(SyncError::Malformed {
                        detail: "non-finite beacon phase",
                    });
                }
                Ok(SyncMsg::Beacon(Beacon {
                    leader: node,
                    epoch,
                    phase_ps,
                }))
            }
            KIND_DELAY_REQUEST => Ok(SyncMsg::DelayRequest {
                node,
                nonce: payload,
            }),
            KIND_DELAY_RESPONSE => Ok(SyncMsg::DelayResponse {
                node,
                nonce: payload,
            }),
            _ => Err(SyncError::Malformed {
                detail: "unknown kind",
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_roundtrips() {
        let msgs = [
            SyncMsg::Hello { node: 7 },
            SyncMsg::Go,
            SyncMsg::Beacon(Beacon {
                leader: 3,
                epoch: 123_456_789,
                phase_ps: -41.25,
            }),
            SyncMsg::DelayRequest {
                node: 2,
                nonce: 0xdead_beef,
            },
            SyncMsg::DelayResponse {
                node: 1,
                nonce: u64::MAX,
            },
        ];
        for m in msgs {
            let buf = m.encode();
            assert_eq!(SyncMsg::decode(&buf), Ok(m), "{m:?}");
        }
    }

    #[test]
    fn beacon_phase_is_bit_exact() {
        // The follower's PLL consumes the leader's phase verbatim; the
        // wire must not round it.
        let phase = 1.0 / 3.0 * 1e7;
        let b = SyncMsg::Beacon(Beacon {
            leader: 0,
            epoch: 1,
            phase_ps: phase,
        });
        match SyncMsg::decode(&b.encode()).unwrap() {
            SyncMsg::Beacon(d) => assert_eq!(d.phase_ps.to_bits(), phase.to_bits()),
            other => panic!("decoded {other:?}"),
        }
    }

    #[test]
    fn malformed_datagrams_are_classified_not_panicked() {
        let good = SyncMsg::Go.encode();

        assert_eq!(
            SyncMsg::decode(&good[..10]),
            Err(SyncError::Malformed {
                detail: "wrong length"
            })
        );

        let mut bad_magic = good;
        bad_magic[0] = 0;
        assert_eq!(
            SyncMsg::decode(&bad_magic),
            Err(SyncError::Malformed {
                detail: "bad magic"
            })
        );

        let mut bad_version = good;
        bad_version[2] = 9;
        assert_eq!(
            SyncMsg::decode(&bad_version),
            Err(SyncError::Malformed {
                detail: "unsupported version"
            })
        );

        let mut bad_kind = good;
        bad_kind[3] = 200;
        assert_eq!(
            SyncMsg::decode(&bad_kind),
            Err(SyncError::Malformed {
                detail: "unknown kind"
            })
        );

        let nan_beacon = SyncMsg::Beacon(Beacon {
            leader: 0,
            epoch: 0,
            phase_ps: 0.0,
        });
        let mut buf = nan_beacon.encode();
        buf[16..24].copy_from_slice(&f64::NAN.to_bits().to_le_bytes());
        assert_eq!(
            SyncMsg::decode(&buf),
            Err(SyncError::Malformed {
                detail: "non-finite beacon phase"
            })
        );
    }
}
