//! Typed transport/protocol error taxonomy.
//!
//! The pre-seam `sync_sim` had no failure surface at all: the in-memory
//! "network" could not time out, duplicate, or reorder, so every fault
//! mode was either impossible or a panic. Real transports (UDP/loopback,
//! and eventually the datacenter fabric) exhibit all of them, and the
//! protocol core has to *classify* what it saw — a stale beacon is
//! counted and dropped, a timeout forfeits one PLL update, a wrong-leader
//! beacon is evidence of a schedule split. Each variant therefore carries
//! enough context to act on, not just a message string.

use std::fmt;

/// Everything that can go wrong between a [`crate::engine::SyncEngine`]
/// and its peers. `Io` carries the formatted OS error (not
/// `std::io::Error`) so the taxonomy stays `Clone + PartialEq` and
/// cheap to count in per-node statistics.
#[derive(Debug, Clone, PartialEq)]
pub enum SyncError {
    /// Nothing usable arrived before the receive deadline.
    Timeout {
        /// How long the caller was prepared to wait, microseconds.
        waited_us: u64,
    },
    /// The beacon expected for `epoch` was never observed (in-sim: the
    /// leader produced nothing this epoch).
    Lost { epoch: u64 },
    /// A beacon for an epoch that was already applied arrived again
    /// (UDP duplication, or a rebroadcast).
    Duplicate { epoch: u64 },
    /// A beacon older than the newest applied epoch arrived (reordered
    /// delivery); applying it would drag the PLL backwards.
    Stale {
        /// Epoch carried by the late beacon.
        epoch: u64,
        /// Newest epoch already applied.
        newest: u64,
    },
    /// The beacon's claimed leader is not who the local
    /// [`crate::leader::LeaderSchedule`] expects for that epoch — either
    /// a forged beacon or a split alive-set view.
    WrongLeader {
        epoch: u64,
        claimed: usize,
        expected: Option<usize>,
    },
    /// A peer is known-dead; no point waiting on it.
    PeerDead { node: usize },
    /// A datagram that is not a valid wire message (bad magic/version,
    /// truncated, non-finite phase).
    Malformed { detail: &'static str },
    /// Socket-level failure, formatted from the underlying `io::Error`.
    Io(String),
}

impl fmt::Display for SyncError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SyncError::Timeout { waited_us } => {
                write!(f, "timed out after {waited_us} us waiting for a beacon")
            }
            SyncError::Lost { epoch } => write!(f, "beacon for epoch {epoch} was lost"),
            SyncError::Duplicate { epoch } => {
                write!(f, "duplicate beacon for already-applied epoch {epoch}")
            }
            SyncError::Stale { epoch, newest } => {
                write!(
                    f,
                    "stale beacon for epoch {epoch} (newest applied {newest})"
                )
            }
            SyncError::WrongLeader {
                epoch,
                claimed,
                expected,
            } => write!(
                f,
                "beacon for epoch {epoch} claims leader {claimed}, schedule expects {expected:?}"
            ),
            SyncError::PeerDead { node } => write!(f, "peer {node} is marked dead"),
            SyncError::Malformed { detail } => write!(f, "malformed message: {detail}"),
            SyncError::Io(e) => write!(f, "transport I/O error: {e}"),
        }
    }
}

impl std::error::Error for SyncError {}

impl From<std::io::Error> for SyncError {
    fn from(e: std::io::Error) -> SyncError {
        SyncError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_carry_context() {
        let s = SyncError::Stale {
            epoch: 3,
            newest: 7,
        }
        .to_string();
        assert!(s.contains('3') && s.contains('7'), "{s}");
        let s = SyncError::WrongLeader {
            epoch: 12,
            claimed: 5,
            expected: Some(2),
        }
        .to_string();
        assert!(s.contains("claims leader 5"), "{s}");
    }

    #[test]
    fn io_errors_convert_and_compare() {
        let e: SyncError = std::io::Error::new(std::io::ErrorKind::AddrInUse, "busy").into();
        assert_eq!(e, SyncError::Io("busy".into()));
        // The taxonomy must be usable as an error trait object.
        let dynamic: Box<dyn std::error::Error> = Box::new(e);
        assert!(dynamic.to_string().contains("busy"));
    }
}
