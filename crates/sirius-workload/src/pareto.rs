//! Heavy-tailed flow sizes: the Pareto distribution of §7.
//!
//! The paper draws flow sizes from a Pareto distribution with shape 1.05
//! and mean 100 KB — "the majority of flows are small, but the majority of
//! traffic is from large flows". For shape `a` and scale (minimum) `xm`,
//! `mean = a*xm/(a-1)`, so the paper's parameters imply `xm ~ 4.76 KB`; for
//! the Fig. 13 sweep down to a 512 B mean, `xm = 24.4 B` and the median is
//! ~46 B, matching the paper's quoted "median size flow of just 46 byte".

use rand::Rng;

/// Pareto flow-size sampler (optionally truncated at a maximum).
#[derive(Debug, Clone, Copy)]
pub struct Pareto {
    shape: f64,
    scale: f64,
    /// Truncation cap in bytes (simulations need finite flows; the paper's
    /// 200 k-flow runs implicitly truncate at the largest sample).
    cap: f64,
}

impl Pareto {
    /// Construct from shape and *mean*, the paper's parameterization.
    /// Requires `shape > 1` so the mean exists.
    pub fn with_mean(shape: f64, mean_bytes: f64) -> Pareto {
        assert!(shape > 1.0, "Pareto mean requires shape > 1");
        assert!(mean_bytes > 0.0);
        let scale = mean_bytes * (shape - 1.0) / shape;
        Pareto {
            shape,
            scale,
            cap: f64::INFINITY,
        }
    }

    /// Construct from shape and scale (minimum value).
    pub fn with_scale(shape: f64, scale: f64) -> Pareto {
        assert!(shape > 0.0 && scale > 0.0);
        Pareto {
            shape,
            scale,
            cap: f64::INFINITY,
        }
    }

    /// The paper's default workload: shape 1.05, mean 100 KB.
    pub fn paper_default() -> Pareto {
        Pareto::with_mean(1.05, 100_000.0)
    }

    /// Truncate samples at `cap` bytes. Note truncation lowers the
    /// effective mean; [`Pareto::effective_mean`] reports the result.
    pub fn truncated(mut self, cap: f64) -> Pareto {
        assert!(cap >= self.scale);
        self.cap = cap;
        self
    }

    pub fn shape(&self) -> f64 {
        self.shape
    }
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Median of the (untruncated) distribution: `xm * 2^(1/a)`.
    pub fn median(&self) -> f64 {
        self.scale * 2f64.powf(1.0 / self.shape)
    }

    /// Mean of the *truncated* distribution (equals the configured mean
    /// when no cap is set and shape > 1).
    pub fn effective_mean(&self) -> f64 {
        if self.cap.is_infinite() {
            assert!(self.shape > 1.0);
            return self.shape * self.scale / (self.shape - 1.0);
        }
        // E[min(X, cap)] for Pareto(a, xm):
        //   = a*xm/(a-1) - (xm/cap)^a * cap/(a-1)      (a != 1)
        let a = self.shape;
        let xm = self.scale;
        let c = self.cap;
        (a * xm - (xm / c).powf(a) * c) / (a - 1.0)
    }

    /// Draw one flow size in bytes (>= 1).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        // Inverse CDF: xm * U^(-1/a), with U in (0,1].
        let u: f64 = 1.0 - rng.gen::<f64>(); // (0, 1]
        let x = self.scale * u.powf(-1.0 / self.shape);
        x.min(self.cap).max(1.0).round() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn paper_parameters() {
        let p = Pareto::paper_default();
        assert!((p.scale() - 4761.9).abs() < 1.0, "xm = {}", p.scale());
        assert!((p.effective_mean() - 100_000.0).abs() < 1e-6);
        // Median ~ 9.2 KB: "majority of flows are small".
        assert!(
            (p.median() - 9200.0).abs() < 100.0,
            "median = {}",
            p.median()
        );
    }

    #[test]
    fn fig13_small_mean_matches_quoted_median() {
        // "F = 512 byte will result in a median size flow of just 46 byte".
        let p = Pareto::with_mean(1.05, 512.0);
        assert!(
            (p.median() - 46.0).abs() < 2.0,
            "median = {} (paper: ~46 B)",
            p.median()
        );
    }

    #[test]
    fn sample_mean_converges() {
        let p = Pareto::paper_default().truncated(1e9);
        let mut rng = SmallRng::seed_from_u64(1);
        let n = 2_000_000u64;
        let sum: f64 = (0..n).map(|_| p.sample(&mut rng) as f64).sum();
        let mean = sum / n as f64;
        let expect = p.effective_mean();
        // Shape 1.05 converges slowly; allow 20%.
        assert!(
            (mean - expect).abs() / expect < 0.2,
            "mean {mean} vs expected {expect}"
        );
    }

    #[test]
    fn samples_respect_bounds() {
        let p = Pareto::paper_default().truncated(1e6);
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let s = p.sample(&mut rng);
            assert!(s as f64 >= p.scale().floor());
            assert!(s <= 1_000_000);
        }
    }

    #[test]
    fn majority_of_bytes_from_large_flows() {
        // The defining property of the heavy tail the paper relies on.
        let p = Pareto::paper_default().truncated(1e9);
        let mut rng = SmallRng::seed_from_u64(3);
        let samples: Vec<u64> = (0..200_000).map(|_| p.sample(&mut rng)).collect();
        let total: u64 = samples.iter().sum();
        let small_flows = samples.iter().filter(|&&s| s < 100_000).count();
        let small_bytes: u64 = samples.iter().filter(|&&s| s < 100_000).sum();
        // Most flows are below the mean...
        assert!(small_flows as f64 > 0.85 * samples.len() as f64);
        // ...but they carry a minority of the bytes.
        assert!((small_bytes as f64) < 0.5 * total as f64);
    }

    #[test]
    fn truncation_lowers_mean() {
        let p = Pareto::paper_default();
        let t = p.truncated(1e6);
        assert!(t.effective_mean() < p.effective_mean());
        assert!(t.effective_mean() > p.scale());
    }

    #[test]
    #[should_panic(expected = "shape > 1")]
    fn mean_requires_shape_above_one() {
        let _ = Pareto::with_mean(1.0, 100.0);
    }
}
