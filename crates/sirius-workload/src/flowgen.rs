//! Flow generation: Poisson arrivals of Pareto-sized flows (§7).
//!
//! The paper defines network load as `L = F / (R * N * tau)` where `F` is
//! the mean flow size, `R` the per-server bandwidth, `N` the number of
//! servers and `tau` the mean flow inter-arrival time; i.e. at `L = 1` the
//! offered load equals the aggregate server bandwidth. Given a target load
//! the generator derives the Poisson arrival rate and emits a reproducible
//! flow list.

use crate::pareto::Pareto;
use crate::patterns::Pattern;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sirius_core::units::{Duration, Rate, Time};

/// One application flow to inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Flow {
    pub id: u64,
    pub src_server: u32,
    pub dst_server: u32,
    pub bytes: u64,
    pub arrival: Time,
}

/// Workload description, in the paper's parameterization.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// Number of servers `N`.
    pub servers: u32,
    /// Per-server bandwidth `R`.
    pub server_rate: Rate,
    /// Target normalized load `L` (1.0 = aggregate server bandwidth).
    pub load: f64,
    /// Flow-size distribution (mean `F`).
    pub sizes: Pareto,
    /// Number of flows to generate (paper: ~200,000).
    pub flows: u64,
    /// Endpoint selection pattern.
    pub pattern: Pattern,
    /// RNG seed: same seed, same workload, bit for bit.
    pub seed: u64,
}

impl WorkloadSpec {
    /// The paper's §7 default at a given load: 3072 servers, 50 Gbps...
    /// Per-server bandwidth is rack bandwidth / servers-per-rack =
    /// 8 x 50 Gbps / 24 ~ 16.7 Gbps.
    pub fn paper_default(load: f64, flows: u64, seed: u64) -> WorkloadSpec {
        WorkloadSpec {
            servers: 3072,
            server_rate: Rate::from_bps(400_000_000_000 / 24),
            load,
            sizes: Pareto::paper_default().truncated(1e8),
            flows,
            pattern: Pattern::Uniform,
            seed,
        }
    }

    /// Mean inter-arrival time `tau = F / (R * N * L)`.
    pub fn mean_interarrival(&self) -> Duration {
        let f = self.sizes.effective_mean(); // bytes
        let agg_bps = self.server_rate.as_bps() as f64 * self.servers as f64;
        let tau_secs = f * 8.0 / (agg_bps * self.load);
        Duration::from_ps((tau_secs * 1e12).round().max(1.0) as u64)
    }

    /// Generate the flow list (sorted by arrival time by construction).
    pub fn generate(&self) -> Vec<Flow> {
        self.stream().collect()
    }

    /// Stream the same flow sequence one at a time without materializing
    /// it: `spec.stream().collect()` is bit-identical to `generate()`,
    /// but a consumer that admits flows as they arrive holds O(1)
    /// workload state instead of O(flows). This is what lets the
    /// scale-out series push flow counts into the millions.
    pub fn stream(&self) -> FlowStream {
        FlowStream {
            rng: SmallRng::seed_from_u64(self.seed),
            tau: self.mean_interarrival().as_ps() as f64,
            t: 0f64,
            next: 0,
            total: self.flows,
            servers: self.servers,
            sizes: self.sizes,
            pattern: self.pattern.clone(),
        }
    }

    /// Total bytes a generated workload is expected to carry (mean).
    pub fn expected_bytes(&self) -> f64 {
        self.sizes.effective_mean() * self.flows as f64
    }
}

/// Lazy flow generator: yields the exact `generate()` sequence (same
/// seed, same draws, same order) while holding only the RNG and the
/// arrival-time accumulator.
#[derive(Debug, Clone)]
pub struct FlowStream {
    rng: SmallRng,
    /// Mean inter-arrival in picoseconds.
    tau: f64,
    /// Arrival-time accumulator (f64 ps, matching `generate()` exactly).
    t: f64,
    next: u64,
    total: u64,
    servers: u32,
    sizes: Pareto,
    pattern: Pattern,
}

impl Iterator for FlowStream {
    type Item = Flow;

    fn next(&mut self) -> Option<Flow> {
        if self.next >= self.total {
            return None;
        }
        let id = self.next;
        self.next += 1;
        // Exponential inter-arrival via inverse CDF.
        let u: f64 = 1.0 - self.rng.gen::<f64>();
        self.t += -self.tau * u.ln();
        let (src, dst) = self.pattern.pick(&mut self.rng, self.servers, id);
        Some(Flow {
            id,
            src_server: src,
            dst_server: dst,
            bytes: self.sizes.sample(&mut self.rng),
            arrival: Time::from_ps(self.t as u64),
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = (self.total - self.next) as usize;
        (left, Some(left))
    }
}

impl ExactSizeIterator for FlowStream {}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec(load: f64) -> WorkloadSpec {
        WorkloadSpec {
            servers: 64,
            server_rate: Rate::from_gbps(10),
            load,
            sizes: Pareto::paper_default().truncated(1e7),
            flows: 20_000,
            pattern: Pattern::Uniform,
            seed: 42,
        }
    }

    #[test]
    fn arrival_rate_matches_load_definition() {
        let spec = small_spec(0.5);
        let flows = spec.generate();
        let span = flows.last().unwrap().arrival.as_secs_f64();
        let measured_rate = flows.len() as f64 / span;
        let expected = 1.0 / spec.mean_interarrival().as_secs_f64();
        assert!(
            (measured_rate - expected).abs() / expected < 0.05,
            "measured {measured_rate}, expected {expected}"
        );
    }

    #[test]
    fn offered_load_close_to_target() {
        for load in [0.1, 0.5, 1.0] {
            let spec = small_spec(load);
            let flows = spec.generate();
            let bytes: u64 = flows.iter().map(|f| f.bytes).sum();
            let span = flows.last().unwrap().arrival.as_secs_f64();
            let offered_bps = bytes as f64 * 8.0 / span;
            let agg = spec.server_rate.as_bps() as f64 * spec.servers as f64;
            let measured_load = offered_bps / agg;
            // Pareto(1.05) sample means wobble; 25% tolerance.
            assert!(
                (measured_load - load).abs() / load < 0.25,
                "load {load}: measured {measured_load}"
            );
        }
    }

    #[test]
    fn arrivals_are_sorted_and_ids_unique() {
        let flows = small_spec(1.0).generate();
        for w in flows.windows(2) {
            assert!(w[0].arrival <= w[1].arrival);
            assert!(w[0].id < w[1].id);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = small_spec(0.7).generate();
        let b = small_spec(0.7).generate();
        assert_eq!(a, b);
        let mut spec = small_spec(0.7);
        spec.seed = 43;
        assert_ne!(a, spec.generate());
    }

    #[test]
    fn stream_matches_generate_exactly() {
        let spec = small_spec(0.5);
        let streamed: Vec<Flow> = spec.stream().collect();
        assert_eq!(streamed, spec.generate());
        // ExactSizeIterator bookkeeping survives partial consumption.
        let mut s = spec.stream();
        assert_eq!(s.len(), spec.flows as usize);
        s.next();
        assert_eq!(s.len(), spec.flows as usize - 1);
    }

    #[test]
    fn no_self_flows() {
        for f in small_spec(1.0).generate() {
            assert_ne!(f.src_server, f.dst_server);
        }
    }

    #[test]
    fn paper_default_interarrival_scale() {
        // 3072 servers x 16.67 Gbps at L=1 with 100 KB mean flows:
        // arrival rate = L*R*N/F ~ 64e12/8e5 = 8e7 flows/s -> tau ~ 12.5 ns.
        // (Truncation at 100 MB lowers the effective mean slightly, so the
        // derived tau is a bit below the untruncated estimate.)
        let spec = WorkloadSpec::paper_default(1.0, 1000, 1);
        let tau_ns = spec.mean_interarrival().as_ns_f64();
        assert!(tau_ns > 6.0 && tau_ns < 13.0, "tau = {tau_ns} ns");
    }
}
