//! # sirius-workload
//!
//! Workload generation for the Sirius reproduction: heavy-tailed flow
//! sizes ([`pareto`]), Poisson arrivals at a target normalized load
//! ([`flowgen`]), endpoint-selection patterns ([`patterns`]), and the
//! synthetic packet-size distribution matching the production traces the
//! paper analyzed ([`packets`]).
//!
//! Everything is seeded and deterministic: the same [`flowgen::WorkloadSpec`]
//! always generates the same flow list, which is what makes the figure
//! harnesses in `sirius-bench` reproducible.

pub mod burst;
pub mod flowgen;
pub mod packets;
pub mod pareto;
pub mod patterns;
pub mod trace;

pub use flowgen::{Flow, FlowStream, WorkloadSpec};
pub use packets::PacketSizes;
pub use pareto::Pareto;
pub use patterns::Pattern;
