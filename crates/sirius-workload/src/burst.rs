//! ON/OFF bursty sources (§2.2: "datacenter traffic patterns are changing
//! with scenarios like key-value stores and memory disaggregation
//! resulting in very bursty workloads").
//!
//! A two-state Markov-modulated Poisson process: a source alternates
//! between ON periods (flows arrive at a high rate) and OFF periods
//! (silence). The `burstiness` knob is the peak-to-mean rate ratio; 1.0
//! degenerates to plain Poisson. Used by ablation studies to stress the
//! congestion-control protocol's burst absorption (the Fig. 10 Q trade-off).

use crate::flowgen::Flow;
use crate::pareto::Pareto;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use sirius_core::units::{Rate, Time};

/// Bursty workload description.
#[derive(Debug, Clone)]
pub struct BurstySpec {
    pub servers: u32,
    pub server_rate: Rate,
    /// Long-run average normalized load.
    pub load: f64,
    /// Peak-to-mean ratio (>= 1.0): ON-period arrival rate is
    /// `burstiness x` the average.
    pub burstiness: f64,
    /// Mean ON duration in seconds (OFF duration follows from the duty
    /// cycle `1/burstiness`).
    pub mean_on_secs: f64,
    pub sizes: Pareto,
    pub flows: u64,
    pub seed: u64,
}

impl BurstySpec {
    /// Duty cycle: fraction of time sources are ON.
    pub fn duty_cycle(&self) -> f64 {
        1.0 / self.burstiness
    }

    /// Generate flows. The network-wide ON/OFF state is modulated
    /// globally (synchronized bursts — the worst case for the fabric).
    pub fn generate(&self) -> Vec<Flow> {
        assert!(self.burstiness >= 1.0);
        assert!(self.load > 0.0 && self.mean_on_secs > 0.0);
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let mean_bytes = self.sizes.effective_mean();
        let avg_rate = self.load * (self.server_rate.as_bps() as f64 * self.servers as f64)
            / (mean_bytes * 8.0);
        let on_rate = avg_rate * self.burstiness;
        let mean_off = self.mean_on_secs * (self.burstiness - 1.0);

        let mut out = Vec::with_capacity(self.flows as usize);
        let mut t = 0f64;
        let mut on_until = exp(&mut rng, self.mean_on_secs);
        let mut id = 0u64;
        while id < self.flows {
            {
                let u: f64 = 1.0 - rng.gen::<f64>();
                let dt = -u.ln() / on_rate;
                if t + dt > on_until {
                    // ON period over: jump across the OFF gap and start
                    // the next ON period.
                    t = on_until;
                    if mean_off > 0.0 {
                        t += exp(&mut rng, mean_off);
                    }
                    on_until = t + exp(&mut rng, self.mean_on_secs);
                    continue;
                }
                t += dt;
                let src = rng.gen_range(0..self.servers);
                let mut dst = rng.gen_range(0..self.servers - 1);
                if dst >= src {
                    dst += 1;
                }
                out.push(Flow {
                    id,
                    src_server: src,
                    dst_server: dst,
                    bytes: self.sizes.sample(&mut rng),
                    arrival: Time::from_ps((t * 1e12) as u64),
                });
                id += 1;
            }
        }
        out
    }
}

fn exp<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> f64 {
    let u: f64 = 1.0 - rng.gen::<f64>();
    -mean * u.ln()
}

/// Burstiness estimator: peak-to-mean arrival rate over `window_secs`
/// windows (used in tests and to verify generated traces).
pub fn peak_to_mean(flows: &[Flow], window_secs: f64) -> f64 {
    if flows.len() < 2 {
        return 1.0;
    }
    let span = flows.last().unwrap().arrival.as_secs_f64();
    let windows = (span / window_secs).ceil().max(1.0) as usize;
    let mut counts = vec![0u64; windows];
    for f in flows {
        let w = ((f.arrival.as_secs_f64() / window_secs) as usize).min(windows - 1);
        counts[w] += 1;
    }
    let peak = *counts.iter().max().unwrap() as f64;
    let mean = flows.len() as f64 / windows as f64;
    peak / mean
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(burstiness: f64) -> BurstySpec {
        BurstySpec {
            servers: 64,
            server_rate: Rate::from_gbps(10),
            load: 0.5,
            burstiness,
            mean_on_secs: 20e-6,
            sizes: Pareto::paper_default().truncated(1e6),
            flows: 20_000,
            seed: 9,
        }
    }

    #[test]
    fn burstiness_one_is_poisson() {
        let flows = spec(1.0).generate();
        // Poisson: peak-to-mean over coarse windows stays near 1.
        let ptm = peak_to_mean(&flows, 50e-6);
        assert!(ptm < 2.0, "poisson peak-to-mean {ptm}");
    }

    #[test]
    fn high_burstiness_shows_in_the_trace() {
        let calm = peak_to_mean(&spec(1.0).generate(), 20e-6);
        let bursty = peak_to_mean(&spec(8.0).generate(), 20e-6);
        assert!(
            bursty > 2.0 * calm,
            "burstiness invisible: calm {calm}, bursty {bursty}"
        );
    }

    #[test]
    fn average_load_is_preserved() {
        // Same long-run rate regardless of burstiness.
        for b in [1.0, 4.0] {
            let s = spec(b);
            let flows = s.generate();
            let span = flows.last().unwrap().arrival.as_secs_f64();
            let measured = flows.len() as f64 / span;
            let expected = s.load * (10e9 * 64.0) / (s.sizes.effective_mean() * 8.0);
            let err = (measured - expected).abs() / expected;
            assert!(err < 0.25, "b={b}: rate {measured:.0} vs {expected:.0}");
        }
    }

    #[test]
    fn arrivals_sorted_and_valid() {
        let flows = spec(6.0).generate();
        for w in flows.windows(2) {
            assert!(w[0].arrival <= w[1].arrival);
        }
        for f in &flows {
            assert_ne!(f.src_server, f.dst_server);
        }
    }

    #[test]
    fn duty_cycle_definition() {
        assert_eq!(spec(4.0).duty_cycle(), 0.25);
        assert_eq!(spec(1.0).duty_cycle(), 1.0);
    }
}
