//! Flow-trace serialization: record a generated workload to a CSV file and
//! replay it later.
//!
//! The paper's workloads are synthesized from published distributions, but
//! a reproduction should also accept *external* traces (e.g. exported from
//! a production sniffer or another simulator) so results can be compared
//! on identical inputs. The format is one flow per line:
//!
//! ```csv
//! id,src_server,dst_server,bytes,arrival_ps
//! 0,17,203,4096,125000
//! ```

use crate::flowgen::Flow;
use sirius_core::units::Time;
use std::fmt::Write as _;
use std::path::Path;

/// Errors from trace parsing.
#[derive(Debug, PartialEq, Eq)]
pub enum TraceError {
    /// I/O failure (message text).
    Io(String),
    /// Malformed line (1-based line number, description).
    Parse(usize, String),
    /// Arrivals must be non-decreasing.
    Unsorted(usize),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceError::Parse(line, e) => write!(f, "trace line {line}: {e}"),
            TraceError::Unsorted(line) => {
                write!(f, "trace line {line}: arrivals must be non-decreasing")
            }
        }
    }
}
impl std::error::Error for TraceError {}

/// Serialize flows to the CSV trace format.
pub fn to_csv(flows: &[Flow]) -> String {
    let mut out = String::with_capacity(flows.len() * 32 + 64);
    out.push_str("id,src_server,dst_server,bytes,arrival_ps\n");
    for f in flows {
        let _ = writeln!(
            out,
            "{},{},{},{},{}",
            f.id,
            f.src_server,
            f.dst_server,
            f.bytes,
            f.arrival.as_ps()
        );
    }
    out
}

/// Parse a CSV trace (header required).
pub fn from_csv(text: &str) -> Result<Vec<Flow>, TraceError> {
    let mut flows = Vec::new();
    let mut prev = Time::ZERO;
    for (idx, line) in text.lines().enumerate() {
        if idx == 0 {
            if !line.starts_with("id,") {
                return Err(TraceError::Parse(1, "missing header".into()));
            }
            continue;
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split(',');
        let mut field = |name: &str| {
            parts
                .next()
                .ok_or_else(|| TraceError::Parse(idx + 1, format!("missing field {name}")))
        };
        let id: u64 = parse(field("id")?, idx)?;
        let src: u32 = parse(field("src_server")?, idx)?;
        let dst: u32 = parse(field("dst_server")?, idx)?;
        let bytes: u64 = parse(field("bytes")?, idx)?;
        let arrival_ps: u64 = parse(field("arrival_ps")?, idx)?;
        let arrival = Time::from_ps(arrival_ps);
        if arrival < prev {
            return Err(TraceError::Unsorted(idx + 1));
        }
        prev = arrival;
        if src == dst {
            return Err(TraceError::Parse(idx + 1, "src == dst".into()));
        }
        flows.push(Flow {
            id,
            src_server: src,
            dst_server: dst,
            bytes,
            arrival,
        });
    }
    Ok(flows)
}

fn parse<T: std::str::FromStr>(s: &str, idx: usize) -> Result<T, TraceError> {
    s.trim()
        .parse()
        .map_err(|_| TraceError::Parse(idx + 1, format!("bad number {s:?}")))
}

/// Write a trace file.
pub fn save(flows: &[Flow], path: &Path) -> Result<(), TraceError> {
    std::fs::write(path, to_csv(flows)).map_err(|e| TraceError::Io(e.to_string()))
}

/// Read a trace file.
pub fn load(path: &Path) -> Result<Vec<Flow>, TraceError> {
    let text = std::fs::read_to_string(path).map_err(|e| TraceError::Io(e.to_string()))?;
    from_csv(&text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flowgen::WorkloadSpec;
    use crate::pareto::Pareto;
    use crate::patterns::Pattern;
    use sirius_core::units::Rate;

    fn sample_flows() -> Vec<Flow> {
        WorkloadSpec {
            servers: 16,
            server_rate: Rate::from_gbps(10),
            load: 0.5,
            sizes: Pareto::paper_default().truncated(1e6),
            flows: 50,
            pattern: Pattern::Uniform,
            seed: 3,
        }
        .generate()
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let flows = sample_flows();
        let parsed = from_csv(&to_csv(&flows)).unwrap();
        assert_eq!(flows, parsed);
    }

    #[test]
    fn file_roundtrip() {
        let flows = sample_flows();
        let path = std::env::temp_dir().join("sirius_trace_test.csv");
        save(&flows, &path).unwrap();
        assert_eq!(load(&path).unwrap(), flows);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rejects_garbage() {
        assert!(matches!(from_csv("nonsense"), Err(TraceError::Parse(1, _))));
        let bad = "id,src_server,dst_server,bytes,arrival_ps\n0,1,2,abc,5\n";
        assert!(matches!(from_csv(bad), Err(TraceError::Parse(2, _))));
        let missing = "id,src_server,dst_server,bytes,arrival_ps\n0,1,2,100\n";
        assert!(matches!(from_csv(missing), Err(TraceError::Parse(2, _))));
    }

    #[test]
    fn rejects_unsorted_and_self_flows() {
        let unsorted = "id,src_server,dst_server,bytes,arrival_ps\n0,1,2,10,500\n1,2,3,10,100\n";
        assert_eq!(from_csv(unsorted), Err(TraceError::Unsorted(3)));
        let selfy = "id,src_server,dst_server,bytes,arrival_ps\n0,4,4,10,0\n";
        assert!(matches!(from_csv(selfy), Err(TraceError::Parse(2, _))));
    }

    #[test]
    fn tolerates_blank_lines() {
        let text = "id,src_server,dst_server,bytes,arrival_ps\n0,1,2,10,0\n\n1,2,3,20,5\n";
        assert_eq!(from_csv(text).unwrap().len(), 2);
    }
}
