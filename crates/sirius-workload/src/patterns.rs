//! Source/destination selection patterns.
//!
//! The paper's §7 workload picks sources and destinations uniformly at
//! random; the motivation sections describe the patterns that stress a
//! network differently — high-fanout key-value stores (incast), hotspots,
//! and the all-to-all phases of distributed DNN training. All are provided
//! here so examples and ablation benches can exercise them.

use rand::Rng;

/// A traffic pattern: picks `(src, dst)` server pairs.
#[derive(Debug, Clone)]
pub enum Pattern {
    /// Uniformly random source and destination (paper §7 default).
    Uniform,
    /// A fixed random permutation: server `i` always talks to `perm[i]`.
    Permutation(Vec<u32>),
    /// Many-to-one: all sources target one of `targets` victims.
    Incast { targets: Vec<u32> },
    /// A fraction of flows concentrate on a small hot set of destinations.
    HotSpot {
        hot: Vec<u32>,
        /// Probability that a flow targets the hot set.
        p_hot: f64,
    },
    /// Ring all-to-all: server `i` sends to `(i + stride) mod n`, with the
    /// stride advanced per flow — the communication shape of ring
    /// all-reduce in distributed DNN training.
    Ring { stride: u32 },
}

impl Pattern {
    /// Build a random permutation pattern over `n` servers.
    pub fn random_permutation<R: Rng + ?Sized>(rng: &mut R, n: u32) -> Pattern {
        let mut perm: Vec<u32> = (0..n).collect();
        // Fisher-Yates, avoiding fixed points afterwards by rotating any.
        for i in (1..n as usize).rev() {
            let j = rng.gen_range(0..=i);
            perm.swap(i, j);
        }
        // Eliminate self-pairs by shifting them onto a neighbour.
        for i in 0..n {
            if perm[i as usize] == i {
                let j = (i + 1) % n;
                perm.swap(i as usize, j as usize);
            }
        }
        Pattern::Permutation(perm)
    }

    /// Pick a `(src, dst)` pair (`src != dst`) among `n` servers; `k` is a
    /// per-flow counter used by deterministic patterns.
    pub fn pick<R: Rng + ?Sized>(&self, rng: &mut R, n: u32, k: u64) -> (u32, u32) {
        assert!(n >= 2, "need at least two servers");
        match self {
            Pattern::Uniform => {
                let src = rng.gen_range(0..n);
                let mut dst = rng.gen_range(0..n - 1);
                if dst >= src {
                    dst += 1;
                }
                (src, dst)
            }
            Pattern::Permutation(perm) => {
                let src = rng.gen_range(0..n);
                (src, perm[src as usize % perm.len()] % n)
            }
            Pattern::Incast { targets } => {
                let dst = targets[(k % targets.len() as u64) as usize] % n;
                let mut src = rng.gen_range(0..n - 1);
                if src >= dst {
                    src += 1;
                }
                (src, dst)
            }
            Pattern::HotSpot { hot, p_hot } => {
                let src = rng.gen_range(0..n);
                let dst = if rng.gen::<f64>() < *p_hot && !hot.is_empty() {
                    hot[rng.gen_range(0..hot.len())] % n
                } else {
                    rng.gen_range(0..n)
                };
                if dst == src {
                    (src, (dst + 1) % n)
                } else {
                    (src, dst)
                }
            }
            Pattern::Ring { stride } => {
                let src = (k % n as u64) as u32;
                let s = (stride + (k / n as u64) as u32) % n;
                let s = if s == 0 { 1 } else { s };
                (src, (src + s) % n)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_never_self() {
        let mut rng = SmallRng::seed_from_u64(1);
        for k in 0..10_000 {
            let (s, d) = Pattern::Uniform.pick(&mut rng, 16, k);
            assert_ne!(s, d);
            assert!(s < 16 && d < 16);
        }
    }

    #[test]
    fn uniform_is_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut dst_counts = [0u32; 8];
        for k in 0..80_000 {
            let (_, d) = Pattern::Uniform.pick(&mut rng, 8, k);
            dst_counts[d as usize] += 1;
        }
        for &c in &dst_counts {
            assert!((c as f64 - 10_000.0).abs() < 600.0, "{dst_counts:?}");
        }
    }

    #[test]
    fn permutation_is_fixed_point_free() {
        let mut rng = SmallRng::seed_from_u64(3);
        for n in [2u32, 3, 8, 100] {
            let p = Pattern::random_permutation(&mut rng, n);
            if let Pattern::Permutation(perm) = &p {
                for (i, &d) in perm.iter().enumerate() {
                    assert_ne!(i as u32, d, "fixed point at {i} for n={n}");
                }
            } else {
                unreachable!();
            }
        }
    }

    #[test]
    fn incast_targets_victims_only() {
        let mut rng = SmallRng::seed_from_u64(4);
        let p = Pattern::Incast {
            targets: vec![3, 7],
        };
        for k in 0..1000 {
            let (s, d) = p.pick(&mut rng, 16, k);
            assert!(d == 3 || d == 7);
            assert_ne!(s, d);
        }
    }

    #[test]
    fn hotspot_skews_to_hot_set() {
        let mut rng = SmallRng::seed_from_u64(5);
        let p = Pattern::HotSpot {
            hot: vec![0],
            p_hot: 0.5,
        };
        let mut hot = 0;
        let n = 10_000;
        for k in 0..n {
            let (s, d) = p.pick(&mut rng, 100, k);
            assert_ne!(s, d);
            if d == 0 {
                hot += 1;
            }
        }
        // ~50% hot (plus ~0.5% background hits on dst 0).
        assert!((hot as f64 / n as f64 - 0.5).abs() < 0.05, "hot = {hot}");
    }

    #[test]
    fn ring_covers_all_sources() {
        let mut rng = SmallRng::seed_from_u64(6);
        let p = Pattern::Ring { stride: 1 };
        let mut seen = [false; 8];
        for k in 0..8 {
            let (s, d) = p.pick(&mut rng, 8, k);
            assert_ne!(s, d);
            seen[s as usize] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }
}
