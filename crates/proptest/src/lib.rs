//! Offline stand-in for the subset of the `proptest` API this workspace
//! uses.
//!
//! The build environment has no access to crates.io, so this crate
//! provides the pieces the workspace's property tests rely on:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(...)]`),
//! * range strategies (`0u8..=255`, `1usize..6`, `0.05f64..0.4`, ...),
//! * [`collection::vec`] and [`bool::ANY`],
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` /
//!   `prop_assume!`, [`test_runner::TestCaseError`] and
//!   [`test_runner::Config`] (aka `ProptestConfig`).
//!
//! Semantics differences from the real crate, deliberately accepted:
//! no shrinking (a failing case reports its inputs via `Debug` instead),
//! and case generation is seeded deterministically from the test name so
//! every run explores the same inputs (reproducibility over novelty —
//! the same trade the simulator's run-digest determinism makes).

use rand::rngs::SmallRng;
use rand::SeedableRng;

pub mod strategy {
    use rand::distributions::SampleRange;
    use rand::rngs::SmallRng;

    /// A generator of values for one `proptest!` parameter.
    pub trait Strategy {
        type Value;
        fn generate(&self, rng: &mut SmallRng) -> Self::Value;
    }

    impl<T: Copy> Strategy for std::ops::Range<T>
    where
        std::ops::Range<T>: SampleRange<T>,
    {
        type Value = T;
        fn generate(&self, rng: &mut SmallRng) -> T {
            self.clone().sample_single(rng)
        }
    }

    impl<T: Copy> Strategy for std::ops::RangeInclusive<T>
    where
        std::ops::RangeInclusive<T>: SampleRange<T>,
    {
        type Value = T;
        fn generate(&self, rng: &mut SmallRng) -> T {
            self.clone().sample_single(rng)
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use rand::distributions::SampleRange;
    use rand::rngs::SmallRng;
    use std::ops::Range;

    /// Strategy for `Vec`s with lengths drawn from `sizes`.
    pub struct VecStrategy<S> {
        elem: S,
        sizes: Range<usize>,
    }

    /// `proptest::collection::vec(element_strategy, size_range)`.
    pub fn vec<S: Strategy>(elem: S, sizes: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, sizes }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let len = self.sizes.clone().sample_single(rng);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod bool {
    use super::strategy::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;

    /// Strategy yielding a fair coin flip.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// `proptest::bool::ANY`.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut SmallRng) -> bool {
            rng.gen::<bool>()
        }
    }
}

pub mod test_runner {
    /// Why a test case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// An assertion failed: the property is violated.
        Fail(String),
        /// `prop_assume!` rejected the inputs: skip, don't fail.
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(msg.into())
        }
        pub fn reject(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Reject(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "input rejected: {m}"),
            }
        }
    }

    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Runner configuration (`ProptestConfig` in the prelude).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of successful cases required.
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            // The real default is 256; 64 keeps the workspace's heavier
            // simulation properties inside a comfortable test budget while
            // still exploring a meaningful slice of the input space.
            Config { cases: 64 }
        }
    }
}

/// Deterministic per-(test, case) generator: FNV-1a over the test path,
/// mixed with the case index.
pub fn case_rng(test_path: &str, case: u32) -> SmallRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_path.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    SmallRng::seed_from_u64(h ^ ((case as u64) << 32 | case as u64))
}

pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            config = $crate::test_runner::Config::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = $cfg:expr; $($(#[$meta:meta])* fn $name:ident(
        $($p:pat_param in $s:expr),* $(,)?
    ) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::Config = $cfg;
            let __path = concat!(module_path!(), "::", stringify!($name));
            let mut __passed: u32 = 0;
            let mut __attempts: u32 = 0;
            while __passed < __cfg.cases {
                // Cap rejections at 10x the case budget, as upstream does.
                assert!(
                    __attempts < __cfg.cases.saturating_mul(10).max(64),
                    "proptest '{}': too many rejected inputs ({} attempts)",
                    __path,
                    __attempts,
                );
                let mut __rng = $crate::case_rng(__path, __attempts);
                __attempts += 1;
                // Generate one binding per parameter, in declaration order.
                $(let $p = $crate::strategy::Strategy::generate(&($s), &mut __rng);)*
                let __result: $crate::test_runner::TestCaseResult = (|| {
                    $body
                    ::core::result::Result::Ok(())
                })();
                match __result {
                    Ok(()) => __passed += 1,
                    Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest '{}' failed at case {}: {}\n(re-run is deterministic; \
                             inputs are regenerated from the test name and case index)",
                            __path,
                            __attempts - 1,
                            msg,
                        );
                    }
                }
            }
        }
    )*};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a == *__b,
            "assertion failed: {} == {} (left: {:?}, right: {:?})",
            stringify!($a), stringify!($b), __a, __b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a == *__b,
            "{} (left: {:?}, right: {:?})",
            format!($($fmt)+), __a, __b
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a != *__b,
            "assertion failed: {} != {} (both: {:?})",
            stringify!($a),
            stringify!($b),
            __a
        );
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u32..10, y in 0u8..=255, f in 0.1f64..0.9) {
            prop_assert!((3..10).contains(&x));
            let _ = y;
            prop_assert!((0.1..0.9).contains(&f));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]

        /// Vec strategy respects the size range.
        #[test]
        fn vec_sizes(v in crate::collection::vec(0u8..=255, 1..40)) {
            prop_assert!(!v.is_empty() && v.len() < 40);
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn case_rng_is_deterministic() {
        use rand::Rng;
        let mut a = crate::case_rng("some::test", 3);
        let mut b = crate::case_rng("some::test", 3);
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        let mut c = crate::case_rng("some::test", 4);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }
}
