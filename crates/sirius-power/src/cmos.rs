//! CMOS scaling slowdown (Fig. 2b): why the electrical status quo gets
//! worse, not better.
//!
//! The paper plots normalized performance/area and performance/power
//! across transistor nodes (16+ nm in 2014 down to 5 nm in 2022) against
//! the "ideal scaling" line of doubling every generation. The divergence
//! below 7 nm is the quantitative backdrop for §2.1's claim that "the
//! cost and power of switches and transceivers beyond two generations is
//! unlikely to stay constant". The figures here follow published
//! process-node scaling surveys the paper references [5, 52, 64].

/// One generation point of Fig. 2b.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CmosNode {
    /// Marketing node label.
    pub label: &'static str,
    pub year: u32,
    /// Normalized performance per area (16+ nm = 1).
    pub perf_per_area: f64,
    /// Normalized performance per power (16+ nm = 1).
    pub perf_per_power: f64,
}

/// The Fig. 2b series.
pub fn fig2b() -> Vec<CmosNode> {
    vec![
        CmosNode {
            label: "16+",
            year: 2014,
            perf_per_area: 1.0,
            perf_per_power: 1.0,
        },
        CmosNode {
            label: "10",
            year: 2016,
            perf_per_area: 1.9,
            perf_per_power: 1.7,
        },
        CmosNode {
            label: "7",
            year: 2018,
            perf_per_area: 3.3,
            perf_per_power: 2.6,
        },
        CmosNode {
            label: "7+",
            year: 2020,
            perf_per_area: 4.2,
            perf_per_power: 3.1,
        },
        CmosNode {
            label: "5",
            year: 2022,
            perf_per_area: 5.6,
            perf_per_power: 3.6,
        },
    ]
}

/// The ideal-scaling reference: doubling every generation.
pub fn ideal(generation: usize) -> f64 {
    2f64.powi(generation as i32)
}

/// Shortfall of a metric against ideal scaling at each generation.
pub fn shortfall(metric: impl Fn(&CmosNode) -> f64) -> Vec<f64> {
    fig2b()
        .iter()
        .enumerate()
        .map(|(g, n)| metric(n) / ideal(g))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_diverges_from_ideal() {
        // Fig. 2b: "as the CMOS node size reduces below 7nm, the power and
        // area gains are far from the historic doubling every generation".
        let area = shortfall(|n| n.perf_per_area);
        let power = shortfall(|n| n.perf_per_power);
        assert!((area[0] - 1.0).abs() < 1e-9);
        // Monotone decline of achieved/ideal.
        for w in area.windows(2) {
            assert!(w[1] <= w[0] + 1e-9);
        }
        // By 5 nm (generation 4, ideal 16x) both metrics fall well short.
        assert!(area[4] < 0.5, "area shortfall {}", area[4]);
        assert!(power[4] < 0.33, "power shortfall {}", power[4]);
    }

    #[test]
    fn power_scales_worse_than_area() {
        // The SERDES/analog story: power efficiency lags density.
        for n in fig2b().iter().skip(1) {
            assert!(n.perf_per_power < n.perf_per_area);
        }
    }

    #[test]
    fn ideal_doubles() {
        assert_eq!(ideal(0), 1.0);
        assert_eq!(ideal(4), 16.0);
    }
}
