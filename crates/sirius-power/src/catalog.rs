//! Component catalog: the power/cost figures §5 builds its analysis from.
//!
//! Anchors from the paper: a 25.6 Tbps electrical switch burns 500 W and
//! costs ~$5,000; 400 Gbps transceivers burn 10 W and cost $1/Gbps
//! (paper refs 8, 38); fixed lasers burn ~1 W while a fast-tunable laser burns 3-5x that
//! (dominated by its temperature controller); gratings are passive (0 W)
//! and at volume cost under 25% of an electrical switch.

/// Catalog of component power (W) and cost ($) figures.
#[derive(Debug, Clone, Copy)]
pub struct Catalog {
    /// Electrical switch capacity, Tbps (sum of port bandwidth).
    pub switch_tbps: f64,
    /// Electrical switch power, W.
    pub switch_w: f64,
    /// Electrical switch cost, $.
    pub switch_cost: f64,
    /// Transceiver bandwidth, Gbps.
    pub tx_gbps: f64,
    /// Transceiver power, W (fixed-laser short-reach part).
    pub tx_w: f64,
    /// Transceiver cost, $ ($1/Gbps).
    pub tx_cost: f64,
    /// Fixed laser power inside a transceiver, W.
    pub fixed_laser_w: f64,
    /// Fixed laser cost, $.
    pub fixed_laser_cost: f64,
    /// Tunable-to-fixed laser power ratio (Fig. 6a x-axis).
    pub tunable_laser_power_ratio: f64,
    /// Tunable-to-fixed laser cost ratio (3x in Fig. 6b, 5x error bars).
    pub tunable_laser_cost_ratio: f64,
    /// Grating cost as a fraction of an equal-port-count electrical
    /// switch's cost (Fig. 6b x-axis; 25% nominal).
    pub grating_cost_fraction: f64,
    /// Transceivers one tunable laser feeds (8, from the §4.5 link budget).
    pub laser_share: f64,
}

impl Catalog {
    pub fn paper() -> Catalog {
        Catalog {
            switch_tbps: 25.6,
            switch_w: 500.0,
            switch_cost: 5_000.0,
            tx_gbps: 400.0,
            tx_w: 10.0,
            tx_cost: 400.0,
            fixed_laser_w: 1.0,
            fixed_laser_cost: 40.0,
            tunable_laser_power_ratio: 4.0, // 3-5x, midpoint
            tunable_laser_cost_ratio: 3.0,
            grating_cost_fraction: 0.25,
            laser_share: 8.0,
        }
    }

    /// Switch power per Tbps of traversed bandwidth.
    pub fn switch_w_per_tbps(&self) -> f64 {
        self.switch_w / self.switch_tbps
    }
    /// Switch cost per Tbps.
    pub fn switch_cost_per_tbps(&self) -> f64 {
        self.switch_cost / self.switch_tbps
    }
    /// Transceiver power per Tbps (one end of a link).
    pub fn tx_w_per_tbps(&self) -> f64 {
        self.tx_w / (self.tx_gbps / 1000.0)
    }
    /// Transceiver cost per Tbps.
    pub fn tx_cost_per_tbps(&self) -> f64 {
        self.tx_cost / (self.tx_gbps / 1000.0)
    }

    /// Tunable transceiver power per Tbps: the fixed-laser part is
    /// replaced by a shared tunable laser at `tunable_laser_power_ratio`x
    /// the power, amortized over `laser_share` transceivers.
    pub fn tunable_tx_w_per_tbps(&self) -> f64 {
        let electronics = (self.tx_w - self.fixed_laser_w) / (self.tx_gbps / 1000.0);
        // Each 400G-equivalent has 8 x 50G channels, each fed by 1/share of
        // a tunable laser: 8 * ratio * fixed_laser / share per 400G.
        let laser_per_400g =
            8.0 * self.fixed_laser_w * self.tunable_laser_power_ratio / self.laser_share;
        electronics + laser_per_400g / (self.tx_gbps / 1000.0)
    }

    /// Tunable transceiver cost per Tbps (same amortization for cost).
    pub fn tunable_tx_cost_per_tbps(&self) -> f64 {
        let electronics = (self.tx_cost - self.fixed_laser_cost) / (self.tx_gbps / 1000.0);
        let laser_per_400g =
            8.0 * self.fixed_laser_cost * self.tunable_laser_cost_ratio / self.laser_share;
        electronics + laser_per_400g / (self.tx_gbps / 1000.0)
    }

    /// Grating cost per Tbps of capacity.
    pub fn grating_cost_per_tbps(&self) -> f64 {
        self.switch_cost_per_tbps() * self.grating_cost_fraction
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_unit_figures() {
        let c = Catalog::paper();
        assert!((c.switch_w_per_tbps() - 19.53).abs() < 0.01);
        assert!((c.tx_w_per_tbps() - 25.0).abs() < 1e-9);
        assert!((c.tx_cost_per_tbps() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn tunable_tx_power_at_paper_ratios() {
        let mut c = Catalog::paper();
        c.tunable_laser_power_ratio = 1.0;
        // ratio 1: electronics 9 W + 8 lasers/8 share = 10 W per 400G ==
        // a fixed transceiver.
        assert!((c.tunable_tx_w_per_tbps() - 25.0).abs() < 1e-9);
        c.tunable_laser_power_ratio = 8.0;
        // ratio 8: 9 + 8 W per 400G.
        assert!((c.tunable_tx_w_per_tbps() - 42.5).abs() < 1e-9);
    }

    #[test]
    fn tunable_tx_cost_at_3x() {
        let c = Catalog::paper();
        // electronics $360 + 3 x $40 = $480 per 400G -> $1200/Tbps.
        assert!((c.tunable_tx_cost_per_tbps() - 1200.0).abs() < 1e-9);
    }

    #[test]
    fn grating_is_a_quarter_of_a_switch() {
        let c = Catalog::paper();
        assert!((c.grating_cost_per_tbps() - 0.25 * c.switch_cost_per_tbps()).abs() < 1e-9);
    }
}
