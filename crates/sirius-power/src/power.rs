//! Datacenter-level power comparison: Sirius vs an electrically-switched
//! network (Fig. 6a).
//!
//! Accounting is per rack of uplink bandwidth. The ESN path crosses four
//! switch layers with "up to six transceivers across an end-to-end path"
//! (three optical inter-tier links on the up half; the down half belongs
//! to the destination rack's accounting). Sirius replaces everything above
//! the ToR with passive gratings and two tunable transceivers per path.
//!
//! Normalization note: Fig. 6a compares the networks per unit of rack
//! uplink bandwidth; the 1.5-2x transceiver over-provisioning that
//! compensates Valiant load balancing enters the *performance* comparison
//! (Fig. 12). Our model exposes it as `sirius_uplink_factor` — the
//! paper-calibrated default of 1.0 lands on the published 23-26% ratio at
//! 3-5x laser power; setting 2.0 answers "what if the doubled transceivers
//! are charged to the power bill too".

use crate::catalog::Catalog;

/// A datacenter for the §5 analysis.
#[derive(Debug, Clone, Copy)]
pub struct Datacenter {
    pub racks: u32,
    /// Rack uplink bandwidth, Tbps (256 x 50 Gbps = 12.8 Tbps).
    pub rack_uplink_tbps: f64,
    /// Total switch layers in the ESN, including the ToR (paper: 4).
    pub esn_layers: u32,
    /// Aggregation oversubscription of the ESN above the ToR (1 = non-
    /// blocking).
    pub oversubscription: f64,
    /// Uplink capacity multiplier charged to Sirius.
    pub sirius_uplink_factor: f64,
}

impl Datacenter {
    /// §5: "a large datacenter with 4,000 racks", 256 x 50G uplinks.
    pub fn paper() -> Datacenter {
        Datacenter {
            racks: 4_000,
            rack_uplink_tbps: 12.8,
            esn_layers: 4,
            oversubscription: 1.0,
            sirius_uplink_factor: 1.0,
        }
    }
}

/// Through-traffic rates per switch layer and per tier boundary, Tbps per
/// rack. Oversubscription (3:1 "at the aggregation tier beyond the racks")
/// keeps the ToR-aggregation boundary at full rate and shrinks everything
/// above it.
fn esn_structure(dc: &Datacenter) -> (Vec<f64>, Vec<f64>) {
    let b = dc.rack_uplink_tbps;
    let core = b / dc.oversubscription;
    let layers = dc.esn_layers as usize;
    let mut through = vec![core; layers];
    through[0] = b; // ToR
    if layers > 1 {
        through[1] = b; // aggregation still sees full rack rate
    }
    let mut boundaries = vec![core; layers - 1];
    if !boundaries.is_empty() {
        boundaries[0] = b; // ToR <-> aggregation links at full rate
    }
    (through, boundaries)
}

/// Per-rack ESN power, W. Switches are charged at nameplate W/Tbps of
/// through traffic; each tier boundary is an optical link with two
/// transceivers (the paper's "up to six transceivers across an end-to-end
/// path" for 4 layers).
pub fn esn_power_per_rack(cat: &Catalog, dc: &Datacenter) -> f64 {
    let (through, boundaries) = esn_structure(dc);
    let switches: f64 = through.iter().sum::<f64>() * cat.switch_w_per_tbps();
    let tx: f64 = boundaries.iter().sum::<f64>() * 2.0 * cat.tx_w_per_tbps();
    switches + tx
}

/// Per-rack Sirius power, W.
pub fn sirius_power_per_rack(cat: &Catalog, dc: &Datacenter) -> f64 {
    let up = dc.rack_uplink_tbps * dc.sirius_uplink_factor;
    // ToR: through traffic at (possibly over-provisioned) uplink rate.
    let tor = up * cat.switch_w_per_tbps();
    // Tunable transceivers on every uplink; gratings are passive (0 W).
    let tx = up * cat.tunable_tx_w_per_tbps();
    tor + tx
}

/// The Fig. 6a ratio at a given tunable/fixed laser power ratio.
pub fn power_ratio(cat: &Catalog, dc: &Datacenter, laser_ratio: f64) -> f64 {
    let mut c = *cat;
    c.tunable_laser_power_ratio = laser_ratio;
    sirius_power_per_rack(&c, dc) / esn_power_per_rack(&c, dc)
}

/// The full Fig. 6a sweep over the paper's x-axis.
pub fn fig6a(cat: &Catalog, dc: &Datacenter) -> Vec<(f64, f64)> {
    [1.0, 3.0, 5.0, 7.0, 10.0, 20.0]
        .iter()
        .map(|&r| (r, power_ratio(cat, dc, r)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_anchor_23_to_26_percent_at_3_to_5x() {
        // "Even assuming that the tunable laser consumes 3-5x the power of
        // a fixed laser, the overall network power is only 23-26% that of
        // ESN" — i.e. "up to 74-77% lower power" (abstract).
        let cat = Catalog::paper();
        let dc = Datacenter::paper();
        let r3 = power_ratio(&cat, &dc, 3.0);
        let r5 = power_ratio(&cat, &dc, 5.0);
        assert!((0.21..=0.28).contains(&r3), "ratio at 3x = {r3}");
        assert!((0.23..=0.30).contains(&r5), "ratio at 5x = {r5}");
        assert!(r5 > r3);
    }

    #[test]
    fn ratio_grows_slowly_with_laser_power() {
        // Fig. 6a: even a 20x laser keeps Sirius well under half of ESN,
        // because the shared laser is a small slice of transceiver power.
        let cat = Catalog::paper();
        let dc = Datacenter::paper();
        let sweep = fig6a(&cat, &dc);
        assert_eq!(sweep.len(), 6);
        for w in sweep.windows(2) {
            assert!(w[1].1 > w[0].1);
        }
        let r20 = sweep.last().unwrap().1;
        assert!(r20 < 0.5, "ratio at 20x = {r20}");
    }

    #[test]
    fn charging_the_doubled_uplinks_still_saves_power() {
        // Even with the full 2x Valiant over-provisioning on Sirius' bill,
        // the flat network stays well below half of ESN power.
        let cat = Catalog::paper();
        let mut dc = Datacenter::paper();
        dc.sirius_uplink_factor = 2.0;
        let r = power_ratio(&cat, &dc, 4.0);
        assert!(r < 0.5, "doubled-uplink ratio = {r}");
    }

    #[test]
    fn esn_power_scale_sanity() {
        // §5-scale datacenter: ESN in the tens of MW territory per the
        // §1/§2 narrative.
        let cat = Catalog::paper();
        let dc = Datacenter::paper();
        let total_mw = esn_power_per_rack(&cat, &dc) * dc.racks as f64 / 1e6;
        assert!(total_mw > 8.0 && total_mw < 30.0, "ESN total {total_mw} MW");
    }

    #[test]
    fn oversubscribed_esn_uses_less_power() {
        let cat = Catalog::paper();
        let mut dc = Datacenter::paper();
        let nb = esn_power_per_rack(&cat, &dc);
        dc.oversubscription = 3.0;
        let osub = esn_power_per_rack(&cat, &dc);
        assert!(osub < nb);
        assert!(osub > nb / 3.0, "ToR power does not shrink");
    }
}
