//! Co-packaged optics and parallel-network scaling (§5, §4.5).
//!
//! Two forward-looking analyses from the paper:
//!
//! * **Co-packaged optics** — "we also analyzed efforts for network power
//!   reduction like the co-packaging of transceivers with the switch
//!   ASIC. Even with such optical copackaging, expected by 2023 with
//!   51.2 Tbps switches, Sirius offers a similar power advantage."
//! * **Parallel networks** — in a post-Moore's-law world operators may
//!   "build parallel networks \[50\]. Sirius' design is particularly
//!   amenable to such scaling through topology-level parallelism": `k`
//!   parallel Sirius planes scale bandwidth k-fold with k-fold power,
//!   while a deeper electrical hierarchy scales super-linearly.

use crate::catalog::Catalog;
use crate::power::{esn_power_per_rack, power_ratio, sirius_power_per_rack, Datacenter};
use crate::scale_tax;

/// The 2023-era co-packaged catalog: 51.2 Tbps switches and ~2x more
/// efficient optical engines (no pluggable DSP/retimer).
pub fn copackaged_catalog() -> Catalog {
    Catalog {
        switch_tbps: 51.2,
        switch_w: 700.0, // bigger ASIC, better W/Tbps
        switch_cost: 8_000.0,
        tx_w: 5.0, // co-packaged optical engine per 400G-equivalent
        tx_cost: 300.0,
        ..Catalog::paper()
    }
}

/// The Sirius/ESN power ratio when both sides use co-packaged optics.
pub fn copackaged_power_ratio(laser_ratio: f64) -> f64 {
    power_ratio(&copackaged_catalog(), &Datacenter::paper(), laser_ratio)
}

/// Power of `k` parallel Sirius planes for `k`-fold bandwidth, per rack.
pub fn sirius_parallel_power(cat: &Catalog, dc: &Datacenter, k: u32) -> f64 {
    k as f64 * sirius_power_per_rack(cat, dc)
}

/// Power of an ESN scaled to `k`-fold bandwidth by *adding hierarchy
/// levels* (the paper's "datacenter operators may even have to resort to
/// increasing the levels of hierarchy"), per rack: bandwidth scales with
/// the extra layer's radix headroom but each unit of traffic crosses more
/// silicon, so W/Tbps grows with depth.
pub fn esn_deepened_power(cat: &Catalog, dc: &Datacenter, extra_layers: u32) -> f64 {
    let base_layers = dc.esn_layers;
    let w0 = scale_tax::w_per_tbps(cat, base_layers);
    let w1 = scale_tax::w_per_tbps(cat, base_layers + extra_layers);
    esn_power_per_rack(cat, dc) * w1 / w0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copackaging_preserves_the_advantage() {
        // "Even with such optical copackaging ... Sirius offers a similar
        // power advantage": the ratio stays in the same band as Fig. 6a.
        for k in [3.0, 5.0] {
            let classic = power_ratio(&Catalog::paper(), &Datacenter::paper(), k);
            let cpo = copackaged_power_ratio(k);
            assert!(cpo < 0.45, "co-packaged ratio {cpo}");
            assert!(
                (cpo - classic).abs() < 0.2,
                "co-packaging changed the story: {classic} -> {cpo}"
            );
        }
    }

    #[test]
    fn parallel_planes_scale_linearly() {
        let cat = Catalog::paper();
        let dc = Datacenter::paper();
        let one = sirius_parallel_power(&cat, &dc, 1);
        let four = sirius_parallel_power(&cat, &dc, 4);
        assert!((four / one - 4.0).abs() < 1e-9);
    }

    #[test]
    fn deepened_esn_scales_superlinearly() {
        // Adding hierarchy makes each unit of ESN bandwidth *more*
        // expensive, so Sirius' relative gain grows in a post-Moore world.
        let cat = Catalog::paper();
        let dc = Datacenter::paper();
        let now = esn_power_per_rack(&cat, &dc);
        let deeper = esn_deepened_power(&cat, &dc, 1);
        assert!(deeper > now * 1.1, "deepening added only {}", deeper / now);
        // Relative Sirius gain improves.
        let sirius = sirius_power_per_rack(&cat, &dc);
        assert!(sirius / deeper < sirius / now);
    }
}
