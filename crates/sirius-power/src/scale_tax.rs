//! The "scale tax" (Fig. 2a): network power per unit bisection bandwidth
//! as the network grows by adding switch layers.
//!
//! With radix-`k` switches of 400 Gbps ports, `L` layers of folded Clos
//! support up to `2 * (k/2)^L` endpoints. Per unit of bisection bandwidth,
//! the worst-case path crosses `2L-1` switches (each charged at its
//! nameplate W/Tbps) and `2(L-1)` optical inter-switch links (two
//! transceivers each), on top of the endpoint transceiver pair that a
//! directly-connected topology (`L = 0`) already needs — the paper's
//! "50 Watts/Tbps" anchor. This decomposition reproduces the paper's
//! 487 W/Tbps at four layers: 50 + 6 links x 50 + 7 x 19.5 = 486.7.

use crate::catalog::Catalog;

/// One row of Fig. 2a.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScaleRow {
    pub layers: u32,
    /// Max endpoints supported at this layer count.
    pub max_endpoints: u64,
    /// Network power per Tbps of bisection bandwidth.
    pub w_per_tbps: f64,
}

/// Endpoints supported by `layers` layers of radix-`radix` switches.
pub fn max_endpoints(radix: u64, layers: u32) -> u64 {
    if layers == 0 {
        return 2;
    }
    2 * (radix / 2).pow(layers)
}

/// Power per Tbps of bisection bandwidth with `layers` switch layers.
pub fn w_per_tbps(cat: &Catalog, layers: u32) -> f64 {
    // Endpoint transceiver pair (the L = 0 direct-connect baseline).
    let endpoints = 2.0 * cat.tx_w_per_tbps();
    if layers == 0 {
        return endpoints;
    }
    let switch_traversals = (2 * layers - 1) as f64;
    let optical_links = (2 * (layers - 1)) as f64;
    endpoints
        + switch_traversals * cat.switch_w_per_tbps()
        + optical_links * 2.0 * cat.tx_w_per_tbps()
}

/// The full Fig. 2a sweep (layers 0..=4, matching the paper's x-axis of
/// 2, 64, 2K, 65K, 2M endpoints).
pub fn fig2a(cat: &Catalog) -> Vec<ScaleRow> {
    (0..=4)
        .map(|layers| ScaleRow {
            layers,
            max_endpoints: max_endpoints(64, layers),
            w_per_tbps: w_per_tbps(cat, layers),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_counts_match_paper_axis() {
        // Fig. 2a x-axis: 2(0), 64(1), 2K(2), 65K(3), 2M(4).
        assert_eq!(max_endpoints(64, 0), 2);
        assert_eq!(max_endpoints(64, 1), 64);
        assert_eq!(max_endpoints(64, 2), 2_048);
        assert_eq!(max_endpoints(64, 3), 65_536);
        assert_eq!(max_endpoints(64, 4), 2_097_152);
    }

    #[test]
    fn direct_connect_is_50w_per_tbps() {
        // "connecting two nodes directly with an optical transceiver plus
        // fiber consumes only 50 Watts/Tbps".
        let c = Catalog::paper();
        assert!((w_per_tbps(&c, 0) - 50.0).abs() < 1e-9);
    }

    #[test]
    fn four_layers_near_the_487_anchor() {
        // "connecting more than 65 K nodes ... would require four layer of
        // switches, with the additional switches and transceivers adding
        // up to 487 Watts/Tbps". Our worst-case-path model gives ~470-540
        // depending on rounding of their assumptions; assert the ballpark.
        let c = Catalog::paper();
        let w = w_per_tbps(&c, 4);
        assert!(
            (w - 487.0).abs() < 2.0,
            "4-layer power {w} W/Tbps (paper: 487)"
        );
    }

    #[test]
    fn power_strictly_grows_with_hierarchy() {
        let c = Catalog::paper();
        let rows = fig2a(&c);
        assert_eq!(rows.len(), 5);
        for w in rows.windows(2) {
            assert!(w[1].w_per_tbps > w[0].w_per_tbps);
            assert!(w[1].max_endpoints > w[0].max_endpoints);
        }
        // ~10x from direct-connect to a 4-layer datacenter.
        assert!(rows[4].w_per_tbps / rows[0].w_per_tbps > 8.0);
    }

    #[test]
    fn the_100pbps_datacenter_burns_tens_of_mw() {
        // §1: "the power for such a network is a prohibitive 48.7 MW
        // (487 Watts/Tbps x 100 Pbps)".
        let c = Catalog::paper();
        let mw = w_per_tbps(&c, 4) * 100_000.0 / 1e6;
        assert!(mw > 40.0 && mw < 60.0, "{mw} MW");
    }
}
