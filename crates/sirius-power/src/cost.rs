//! Datacenter-level cost comparison (Fig. 6b and the §5 variants).
//!
//! Mirrors the power model with the catalog's cost figures. Three
//! comparisons from §5:
//!
//! * Sirius vs non-blocking ESN — "only 28% ... with gratings costing 25%
//!   of electrical switches and tunable lasers 3x fixed lasers".
//! * Sirius vs a 3:1 oversubscribed ESN — "only costs 53% while offering
//!   non-blocking connectivity".
//! * Sirius vs an electrically-switched Sirius (gratings swapped for
//!   switches + transceivers) — "only 55% of this variant too".

use crate::catalog::Catalog;
use crate::power::Datacenter;

/// Per-rack ESN cost, $ (same through-traffic structure as the power
/// model; see `power::esn_power_per_rack`).
pub fn esn_cost_per_rack(cat: &Catalog, dc: &Datacenter) -> f64 {
    let b = dc.rack_uplink_tbps;
    let core = b / dc.oversubscription;
    let layers = dc.esn_layers as usize;
    let mut through = vec![core; layers];
    through[0] = b;
    if layers > 1 {
        through[1] = b;
    }
    let mut boundaries = vec![core; layers - 1];
    if !boundaries.is_empty() {
        boundaries[0] = b;
    }
    let switches: f64 = through.iter().sum::<f64>() * cat.switch_cost_per_tbps();
    let tx: f64 = boundaries.iter().sum::<f64>() * 2.0 * cat.tx_cost_per_tbps();
    switches + tx
}

/// Per-rack Sirius cost, $.
pub fn sirius_cost_per_rack(cat: &Catalog, dc: &Datacenter) -> f64 {
    let up = dc.rack_uplink_tbps * dc.sirius_uplink_factor;
    let tor = up * cat.switch_cost_per_tbps();
    let tx = up * cat.tunable_tx_cost_per_tbps();
    // Gratings: passive, but not free — in+out port capacity at a
    // fraction of electrical-switch cost.
    let gratings = 2.0 * up * cat.grating_cost_per_tbps();
    tor + tx + gratings
}

/// Per-rack cost of the electrically-switched Sirius variant: same flat
/// topology and routing, but gratings replaced by one layer of electrical
/// switches plus transceivers at the switch ports (§5).
pub fn electrical_sirius_cost_per_rack(cat: &Catalog, dc: &Datacenter) -> f64 {
    let up = dc.rack_uplink_tbps * dc.sirius_uplink_factor;
    let tor = up * cat.switch_cost_per_tbps();
    // Uplinks keep (now fixed-wavelength) transceivers; the core layer
    // adds a switch traversal plus a transceiver at each switch port.
    let tx = up * cat.tx_cost_per_tbps();
    let core_switch = up * cat.switch_cost_per_tbps();
    let core_tx = up * cat.tx_cost_per_tbps();
    tor + tx + core_switch + core_tx
}

/// Fig. 6b: Sirius/ESN cost ratio as the grating cost fraction sweeps,
/// for non-blocking and 3:1-oversubscribed baselines.
pub fn fig6b(cat: &Catalog, dc: &Datacenter) -> Vec<(f64, f64, f64)> {
    [0.05, 0.10, 0.25, 0.50, 0.75, 1.00]
        .iter()
        .map(|&frac| {
            let mut c = *cat;
            c.grating_cost_fraction = frac;
            let sirius = sirius_cost_per_rack(&c, dc);
            let nb = esn_cost_per_rack(&c, dc);
            let mut osub_dc = *dc;
            osub_dc.oversubscription = 3.0;
            let osub = esn_cost_per_rack(&c, &osub_dc);
            (frac, sirius / nb, sirius / osub)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Catalog, Datacenter) {
        (Catalog::paper(), Datacenter::paper())
    }

    #[test]
    fn nonblocking_anchor_near_28_percent() {
        // "Sirius cost is only 28% that of ESN when the grating cost is
        // 25% of electrical switches, assuming a tunable laser is 3x the
        // cost of a fixed laser."
        let (cat, dc) = setup();
        let r = sirius_cost_per_rack(&cat, &dc) / esn_cost_per_rack(&cat, &dc);
        assert!(
            (0.20..=0.33).contains(&r),
            "Sirius/ESN-NB = {r} (paper: 0.28)"
        );
    }

    #[test]
    fn oversubscribed_anchor_near_53_percent() {
        // "Even when comparing to an 3:1 oversubscribed ESN, Sirius only
        // costs 53% while offering non-blocking connectivity."
        let (cat, dc) = setup();
        let mut osub = dc;
        osub.oversubscription = 3.0;
        let r = sirius_cost_per_rack(&cat, &dc) / esn_cost_per_rack(&cat, &osub);
        // Our cost model lands a bit below the paper's 53% (its exact
        // oversubscription accounting is unstated); the structural claim —
        // Sirius beats even a cheap 3:1 network while offering
        // non-blocking connectivity — holds with margin.
        assert!(
            (0.30..=0.65).contains(&r),
            "Sirius/ESN-OSUB = {r} (paper: 0.53)"
        );
    }

    #[test]
    fn electrical_variant_anchor_near_55_percent() {
        // "We find that Sirius' cost is only 55% of this variant too."
        let (cat, dc) = setup();
        let r = sirius_cost_per_rack(&cat, &dc) / electrical_sirius_cost_per_rack(&cat, &dc);
        assert!(
            (0.35..=0.65).contains(&r),
            "Sirius/eSirius = {r} (paper: 0.55)"
        );
    }

    #[test]
    fn fig6b_ratio_grows_with_grating_cost() {
        let (cat, dc) = setup();
        let rows = fig6b(&cat, &dc);
        assert_eq!(rows.len(), 6);
        for w in rows.windows(2) {
            assert!(w[1].1 > w[0].1);
            assert!(w[1].2 > w[0].2);
        }
        // Even at grating cost == switch cost, Sirius stays below ESN-NB.
        assert!(rows.last().unwrap().1 < 1.0);
        // And the OSUB comparison is roughly 2x less favourable throughout.
        for (_, nb, osub) in rows {
            assert!(osub > nb * 1.5 && osub < nb * 3.5);
        }
    }

    #[test]
    fn transceivers_dominate_esn_cost() {
        // The structural reason Sirius wins: 6 transceivers/path at
        // $1/Gbps dwarf switch silicon.
        let (cat, dc) = setup();
        let total = esn_cost_per_rack(&cat, &dc);
        let tx = 3.0 * 2.0 * dc.rack_uplink_tbps * cat.tx_cost_per_tbps();
        assert!(tx / total > 0.6, "transceiver share {}", tx / total);
    }

    #[test]
    fn laser_cost_error_bars() {
        // Fig. 6b error bars: tunable laser at 5x fixed cost.
        let (mut cat, dc) = setup();
        let r3 = sirius_cost_per_rack(&cat, &dc) / esn_cost_per_rack(&cat, &dc);
        cat.tunable_laser_cost_ratio = 5.0;
        let r5 = sirius_cost_per_rack(&cat, &dc) / esn_cost_per_rack(&cat, &dc);
        assert!(r5 > r3 && r5 < r3 + 0.06, "r3={r3} r5={r5}");
    }
}
