//! # sirius-power
//!
//! The power and cost analysis of the paper's §2 and §5: the hierarchical
//! "scale tax" ([`scale_tax`], Fig. 2a), CMOS scaling slowdown ([`cmos`],
//! Fig. 2b), the component catalog with the paper's anchor figures
//! ([`catalog`]), and the datacenter-level Sirius-vs-ESN power and cost
//! models ([`power`] / [`cost`], Figs. 6a/6b).
//!
//! ```
//! use sirius_power::{catalog::Catalog, power::{self, Datacenter}};
//!
//! // The abstract's headline: "up to 74-77% lower power".
//! let r = power::power_ratio(&Catalog::paper(), &Datacenter::paper(), 4.0);
//! assert!(r < 0.3);
//! ```

pub mod catalog;
pub mod cmos;
pub mod copackaged;
pub mod cost;
pub mod power;
pub mod scale_tax;

pub use catalog::Catalog;
pub use power::Datacenter;
