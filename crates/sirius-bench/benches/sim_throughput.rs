//! End-to-end simulator throughput: one full `SiriusSim::run` per
//! congestion-control mode at smoke scale (criterion needs many
//! iterations; the paper-scale number comes from the `sim_throughput`
//! binary, which runs each mode once and reports cells/sec directly).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sirius_bench::experiments::sim_throughput;
use sirius_bench::Scale;
use sirius_sim::{CcMode, SiriusSim, SiriusSimConfig};

fn bench_run(c: &mut Criterion) {
    let scale = Scale::Smoke;
    let net = scale.network();
    let mut spec = scale.workload(0.5, 1);
    spec.flows = sim_throughput::flow_count(scale);
    let wl = spec.generate();
    for (mode, name) in [
        (CcMode::Protocol, "sim_run_smoke_protocol"),
        (CcMode::Ideal, "sim_run_smoke_ideal"),
        (CcMode::Greedy, "sim_run_smoke_greedy"),
    ] {
        let net = net.clone();
        let wl = wl.clone();
        c.bench_function(name, move |b| {
            b.iter(|| {
                let cfg = SiriusSimConfig::new(net.clone())
                    .with_mode(mode)
                    .with_seed(1)
                    .with_audit(false);
                black_box(SiriusSim::new(cfg).run(&wl))
            })
        });
    }
}

criterion_group!(
    name = sim_throughput_bench;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(5));
    targets = bench_run
);
criterion_main!(sim_throughput_bench);
