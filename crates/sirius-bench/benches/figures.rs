//! One criterion bench per paper figure: times a scaled-down run of the
//! exact code path the figure harness uses. (Use the `fig*` binaries for
//! the real tables; pass `--full` there for paper scale.)

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sirius_bench::experiments::{fig10, fig11, fig12, fig13, fig2, fig6, fig8, fig9, sync, tuning};
use sirius_bench::Scale;

fn bench_figures(c: &mut Criterion) {
    c.bench_function("fig2_scale_tax_and_cmos", |b| {
        b.iter(|| {
            black_box(fig2::fig2a_table());
            black_box(fig2::fig2b_table());
        })
    });
    c.bench_function("fig6_power_and_cost", |b| {
        b.iter(|| {
            black_box(fig6::fig6a_table());
            black_box(fig6::fig6b_table());
            black_box(fig6::variants_table());
        })
    });
    c.bench_function("fig8_physical_layer", |b| {
        b.iter(|| {
            black_box(fig8::fig8a_table(7));
            black_box(fig8::fig8b_table(7));
            black_box(fig8::fig8c_table(7));
            black_box(fig8::fig8d_table());
        })
    });
    c.bench_function("fig9_load_point_smoke", |b| {
        b.iter(|| black_box(fig9::run_load(Scale::Smoke, 0.5, 1)))
    });
    c.bench_function("fig10_q_point_smoke", |b| {
        b.iter(|| black_box(fig10::run_point(Scale::Smoke, 4, 0.5, 1)))
    });
    c.bench_function("fig11_guardband_network_scaling", |b| {
        b.iter(|| {
            for &g in &fig11::GUARDBANDS_NS {
                black_box(fig11::network_for_guardband(
                    Scale::Smoke,
                    sirius_core::units::Duration::from_ns(g),
                ));
            }
        })
    });
    c.bench_function("fig12_uplink_point_smoke", |b| {
        b.iter(|| black_box(fig12::run(Scale::Smoke, &[0.5], 1, 1)))
    });
    c.bench_function("fig13_point_64k_smoke", |b| {
        b.iter(|| black_box(fig13::run_point(Scale::Smoke, 65_536, 0.25, 1)))
    });
    c.bench_function("tuning_tables", |b| {
        b.iter(|| {
            black_box(tuning::tuning_table(7));
            black_box(tuning::dsdbr_cdf_table());
        })
    });
    c.bench_function("sync_5k_epochs", |b| {
        b.iter(|| black_box(sync::sync_table(5_000)))
    });
}

criterion_group!(
    name = figures;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(3));
    targets = bench_figures
);
criterion_main!(figures);
