//! Microbenchmarks of the simulator hot paths: schedule lookups, node
//! transmit/receive, reorder buffer, VLB picking, and the ESN waterfill.
//! These are the ablation benches for the design choices DESIGN.md calls
//! out (dense slot-synchronous arrays vs per-event processing).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use sirius_core::cell::{Cell, FlowId};
use sirius_core::node::SiriusNode;
use sirius_core::reorder::ReorderBuffer;
use sirius_core::schedule::{Schedule, SlotInEpoch};
use sirius_core::topology::{NodeId, ServerId, UplinkId};
use sirius_core::vlb::Vlb;
use sirius_core::SiriusConfig;

fn bench_schedule(c: &mut Criterion) {
    let sched = Schedule::new(&SiriusConfig::paper_sim());
    c.bench_function("schedule_dest_epoch_128racks", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for t in 0..16u16 {
                for i in 0..128u32 {
                    for u in 0..12u16 {
                        acc =
                            acc.wrapping_add(sched.dest(NodeId(i), UplinkId(u), SlotInEpoch(t)).0);
                    }
                }
            }
            black_box(acc)
        })
    });
}

fn bench_node_pipeline(c: &mut Criterion) {
    c.bench_function("node_relay_1k_cells", |b| {
        b.iter(|| {
            let mut node = SiriusNode::new_ideal(NodeId(0), 128, 4);
            for k in 0..1000u32 {
                let cell = Cell {
                    flow: FlowId(k as u64),
                    seq: 0,
                    payload: 540,
                    src: NodeId(1),
                    dst: NodeId(2 + k % 100),
                    dst_server: ServerId(0),
                    last: true,
                };
                black_box(node.receive_cell(cell));
            }
            for k in 0..1000u32 {
                black_box(node.transmit(NodeId(2 + k % 100)));
            }
        })
    });
}

fn bench_reorder(c: &mut Criterion) {
    c.bench_function("reorder_1k_reversed_cells", |b| {
        b.iter(|| {
            let mut rb = ReorderBuffer::new();
            // Worst case: fully reversed arrival.
            for seq in (0..1000u32).rev() {
                black_box(rb.accept(FlowId(1), seq, 540));
            }
            rb.finish_flow(FlowId(1));
        })
    });
}

fn bench_vlb(c: &mut Criterion) {
    let vlb = Vlb::new(128);
    c.bench_function("vlb_pick_10k", |b| {
        let mut rng = SmallRng::seed_from_u64(1);
        b.iter(|| {
            for _ in 0..10_000 {
                black_box(vlb.pick(&mut rng, NodeId(3), NodeId(77)));
            }
        })
    });
}

criterion_group!(
    name = engine;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(3));
    targets = bench_schedule, bench_node_pipeline, bench_reorder, bench_vlb
);
criterion_main!(engine);
